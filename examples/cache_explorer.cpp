/**
 * @file
 * Interactive cache-architecture exploration for one benchmark:
 * sweeps the L1 and L2 sizes around the Table-3 defaults and reports
 * execution time, miss rates, and where the time goes — the paper's
 * Section 4.1 methodology applied to any workload in the registry.
 *
 * Usage: cache_explorer [benchmark] [base|vis|pf] [--sampled]
 *                       [--json=PATH]
 *
 * By default every point is simulated exactly (bit-exact cycle
 * counts).  --sampled opts into statistical sampling (sim/sampled.hh):
 * each point reports an estimated cycle count with a 95% confidence
 * half-width, at a fraction of the exact cost — the estimates are
 * clearly printed as "est ± ci" and never replace the exact default.
 * --json=PATH (requires --sampled) additionally writes the sweep as a
 * results-JSON document with the error bars included.
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/table.hh"
#include "core/experiment.hh"

namespace
{

using namespace msim;
using prog::Variant;

/** The swept machine configs, L2 sweep first (order matters for base). */
std::vector<core::Job>
sweepJobs(const std::string &bench, Variant variant)
{
    std::vector<core::Job> jobs;
    for (u32 size : {32u << 10, 128u << 10, 512u << 10, 2u << 20})
        jobs.push_back({bench, variant, sim::withL2Size(size)});
    for (u32 size : {1u << 10, 4u << 10, 16u << 10, 64u << 10})
        jobs.push_back({bench, variant, sim::withL1Size(size)});
    return jobs;
}

void
runExact(const std::string &bench, Variant variant)
{
    {
        std::printf("L2 size sweep (L1 fixed at 64K):\n");
        Table t({"L2", "cycles", "norm", "l1-miss%", "l2-miss%",
                 "mem-stall%"});
        double base = 0;
        for (u32 size : {32u << 10, 128u << 10, 512u << 10, 2u << 20}) {
            const auto r = core::runBenchmark(bench, variant,
                                              sim::withL2Size(size));
            if (base == 0)
                base = static_cast<double>(r.exec.cycles);
            t.addRow({std::to_string(size / 1024) + "K",
                      std::to_string(r.exec.cycles),
                      Table::num(100.0 * double(r.exec.cycles) / base),
                      Table::num(100.0 * r.l1.missRate),
                      Table::num(100.0 * r.l2.missRate),
                      Table::num(100.0 * (r.exec.fracMemL1Hit() +
                                          r.exec.fracMemL1Miss()))});
        }
        std::printf("%s\n", t.render().c_str());
    }

    {
        std::printf("L1 size sweep (L2 fixed at 128K):\n");
        Table t({"L1", "cycles", "norm", "l1-miss%", "mshr-mean",
                 "mem-stall%"});
        double base = 0;
        for (u32 size : {1u << 10, 4u << 10, 16u << 10, 64u << 10}) {
            const auto r = core::runBenchmark(bench, variant,
                                              sim::withL1Size(size));
            if (base == 0)
                base = static_cast<double>(r.exec.cycles);
            t.addRow({std::to_string(size / 1024) + "K",
                      std::to_string(r.exec.cycles),
                      Table::num(100.0 * double(r.exec.cycles) / base),
                      Table::num(100.0 * r.l1.missRate),
                      Table::num(r.l1.mshrMeanOccupancy, 2),
                      Table::num(100.0 * (r.exec.fracMemL1Hit() +
                                          r.exec.fracMemL1Miss()))});
        }
        std::printf("%s\n", t.render().c_str());
    }
}

void
addSampledRow(Table &t, const std::string &label,
              const sim::SampledResult &r, double base)
{
    t.addRow({label,
              std::to_string(static_cast<u64>(r.cycles.mean)) + " ± " +
                  std::to_string(static_cast<u64>(r.cycles.ci95)),
              Table::num(100.0 * r.cycles.mean / base),
              Table::num(100.0 * r.loadL1MissRate.mean),
              Table::num(100.0 * (r.fracMemL1Hit.mean +
                                  r.fracMemL1Miss.mean)),
              r.exact ? "exact" : "est"});
}

void
runSampled(const std::string &bench, Variant variant,
           const std::string &jsonPath)
{
    const std::vector<core::Job> jobs = sweepJobs(bench, variant);
    const sim::SampledParams params;
    const std::vector<sim::SampledResult> results =
        core::runJobsSampled(jobs, params);

    std::printf("L2 size sweep (L1 fixed at 64K), sampled estimates:\n");
    Table t2({"L2", "cycles (est ± 95%ci)", "norm", "ld-l1-miss%",
              "mem-stall%", "mode"});
    const double base2 = results[0].cycles.mean;
    for (size_t i = 0; i < 4; ++i)
        addSampledRow(t2, jobs[i].machine.label, results[i], base2);
    std::printf("%s\n", t2.render().c_str());

    std::printf("L1 size sweep (L2 fixed at 128K), sampled estimates:\n");
    Table t1({"L1", "cycles (est ± 95%ci)", "norm", "ld-l1-miss%",
              "mem-stall%", "mode"});
    const double base1 = results[4].cycles.mean;
    for (size_t i = 4; i < 8; ++i)
        addSampledRow(t1, jobs[i].machine.label, results[i], base1);
    std::printf("%s\n", t1.render().c_str());

    if (!jsonPath.empty()) {
        std::FILE *f = std::fopen(jsonPath.c_str(), "w");
        if (!f)
            fatal("cannot write %s", jsonPath.c_str());
        core::writeSampledResultsJson(f, jobs, results, params);
        std::fclose(f);
        std::printf("results (with error bars): %s\n", jsonPath.c_str());
    }
}

} // namespace

int
main(int argc, char **argv)
{
    std::string bench = "cjpeg";
    Variant variant = Variant::Vis;
    bool sampled = false;
    std::string jsonPath;

    std::vector<std::string> positional;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--sampled")
            sampled = true;
        else if (arg.rfind("--json=", 0) == 0)
            jsonPath = arg.substr(7);
        else if (arg.rfind("--", 0) == 0)
            fatal("unknown option %s (accepted: --sampled, --json=PATH)",
                  arg.c_str());
        else
            positional.push_back(arg);
    }
    if (!positional.empty())
        bench = positional[0];
    if (positional.size() > 1) {
        if (positional[1] == "base")
            variant = Variant::Scalar;
        else if (positional[1] == "pf")
            variant = Variant::VisPrefetch;
    }
    if (!jsonPath.empty() && !sampled)
        fatal("--json requires --sampled (exact sweeps print tables "
              "only)");

    std::printf("cache exploration: %s (%s), 4-way out-of-order core%s\n\n",
                bench.c_str(), prog::variantName(variant),
                sampled ? ", sampled" : "");

    if (sampled)
        runSampled(bench, variant, jsonPath);
    else
        runExact(bench, variant);
    return 0;
}
