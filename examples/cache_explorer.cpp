/**
 * @file
 * Interactive cache-architecture exploration for one benchmark:
 * sweeps the L1 and L2 sizes around the Table-3 defaults and reports
 * execution time, miss rates, and where the time goes — the paper's
 * Section 4.1 methodology applied to any workload in the registry.
 *
 * Usage: cache_explorer [benchmark] [base|vis|pf]
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/table.hh"
#include "core/experiment.hh"

int
main(int argc, char **argv)
{
    using namespace msim;
    using prog::Variant;

    const std::string bench = argc > 1 ? argv[1] : "cjpeg";
    Variant variant = Variant::Vis;
    if (argc > 2) {
        if (std::strcmp(argv[2], "base") == 0)
            variant = Variant::Scalar;
        else if (std::strcmp(argv[2], "pf") == 0)
            variant = Variant::VisPrefetch;
    }

    std::printf("cache exploration: %s (%s), 4-way out-of-order core\n\n",
                bench.c_str(), prog::variantName(variant));

    {
        std::printf("L2 size sweep (L1 fixed at 64K):\n");
        Table t({"L2", "cycles", "norm", "l1-miss%", "l2-miss%",
                 "mem-stall%"});
        double base = 0;
        for (u32 size : {32u << 10, 128u << 10, 512u << 10, 2u << 20}) {
            const auto r = core::runBenchmark(bench, variant,
                                              sim::withL2Size(size));
            if (base == 0)
                base = static_cast<double>(r.exec.cycles);
            t.addRow({std::to_string(size / 1024) + "K",
                      std::to_string(r.exec.cycles),
                      Table::num(100.0 * double(r.exec.cycles) / base),
                      Table::num(100.0 * r.l1.missRate),
                      Table::num(100.0 * r.l2.missRate),
                      Table::num(100.0 * (r.exec.fracMemL1Hit() +
                                          r.exec.fracMemL1Miss()))});
        }
        std::printf("%s\n", t.render().c_str());
    }

    {
        std::printf("L1 size sweep (L2 fixed at 128K):\n");
        Table t({"L1", "cycles", "norm", "l1-miss%", "mshr-mean",
                 "mem-stall%"});
        double base = 0;
        for (u32 size : {1u << 10, 4u << 10, 16u << 10, 64u << 10}) {
            const auto r = core::runBenchmark(bench, variant,
                                              sim::withL1Size(size));
            if (base == 0)
                base = static_cast<double>(r.exec.cycles);
            t.addRow({std::to_string(size / 1024) + "K",
                      std::to_string(r.exec.cycles),
                      Table::num(100.0 * double(r.exec.cycles) / base),
                      Table::num(100.0 * r.l1.missRate),
                      Table::num(r.l1.mshrMeanOccupancy, 2),
                      Table::num(100.0 * (r.exec.fracMemL1Hit() +
                                          r.exec.fracMemL1Miss()))});
        }
        std::printf("%s\n", t.render().c_str());
    }
    return 0;
}
