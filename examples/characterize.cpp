/**
 * @file
 * One-stop workload characterization: runs every registered benchmark
 * (scalar and VIS) on the default out-of-order machine and prints the
 * metrics the paper's analysis is built from — instruction counts, IPC,
 * memory-stall fraction, branch misprediction rate, cache miss rates,
 * and VIS overhead.
 *
 * Usage: characterize [benchmark ...]   (default: all 12)
 */

#include <cstdio>
#include <string>
#include <vector>

#include "common/table.hh"
#include "core/experiment.hh"

int
main(int argc, char **argv)
{
    using namespace msim;
    using prog::Variant;

    std::vector<std::string> names;
    if (argc > 1) {
        for (int i = 1; i < argc; ++i)
            names.emplace_back(argv[i]);
    } else {
        for (const auto *b : core::paperBenchmarks())
            names.push_back(b->name);
    }

    Table t({"benchmark", "cfg", "instrs", "cycles", "ipc", "mem%",
             "mispred%", "l1-miss%", "l2-miss%", "vis-ovh%"});
    for (const auto &name : names) {
        for (Variant var : {Variant::Scalar, Variant::Vis}) {
            const auto r =
                core::runBenchmark(name, var, sim::outOfOrder4Way());
            t.addRow({name, prog::variantName(var),
                      std::to_string(r.tbInstrs),
                      std::to_string(r.exec.cycles),
                      Table::num(double(r.exec.retired) /
                                     double(r.exec.cycles),
                                 2),
                      Table::num(100.0 * (r.exec.fracMemL1Hit() +
                                          r.exec.fracMemL1Miss())),
                      Table::num(100.0 * r.exec.mispredictRate()),
                      Table::num(100.0 * r.l1.missRate),
                      Table::num(100.0 * r.l2.missRate),
                      Table::num(100.0 * r.visOverheadFrac())});
            std::fflush(stdout);
        }
    }
    std::printf("%s", t.render().c_str());
    return 0;
}
