/**
 * @file
 * Quickstart: simulate one image-processing kernel on the paper's three
 * processor configurations, without and with the VIS media ISA
 * extensions, and print the Figure-1 style execution-time breakdown.
 *
 * Usage: quickstart [benchmark-name]   (default: addition)
 */

#include <cstdio>
#include <string>
#include <vector>

#include "core/experiment.hh"
#include "core/report.hh"

int
main(int argc, char **argv)
{
    using namespace msim;
    const std::string bench = argc > 1 ? argv[1] : "addition";

    const std::vector<sim::MachineConfig> machines = {
        sim::inOrder1Way(), sim::inOrder4Way(), sim::outOfOrder4Way()};

    std::printf("benchmark: %s\n\n", bench.c_str());

    // Baseline: scalar code on the single-issue in-order machine.
    std::vector<core::Job> jobs;
    for (prog::Variant var : {prog::Variant::Scalar, prog::Variant::Vis})
        for (const auto &m : machines)
            jobs.push_back({bench, var, m});
    const auto results = core::runJobs(jobs);

    const double base = static_cast<double>(results[0].exec.cycles);
    std::vector<core::BreakdownBar> bars;
    for (size_t i = 0; i < jobs.size(); ++i) {
        const bool vis = jobs[i].variant == prog::Variant::Vis;
        bars.push_back(core::makeBar(
            jobs[i].machine.label + (vis ? " +VIS" : ""), results[i],
            base));
    }
    std::printf("%s\n",
                core::renderBars("normalized execution time (1-way "
                                 "scalar = 100)",
                                 bars)
                    .c_str());

    std::printf("ILP speedup (scalar, ooo vs 1-way): %s\n",
                core::speedupStr(double(results[0].exec.cycles),
                                 double(results[2].exec.cycles))
                    .c_str());
    std::printf("VIS speedup on 4-way ooo:           %s\n",
                core::speedupStr(double(results[2].exec.cycles),
                                 double(results[5].exec.cycles))
                    .c_str());
    std::printf("retired instructions: scalar %llu, VIS %llu\n",
                static_cast<unsigned long long>(results[2].exec.retired),
                static_cast<unsigned long long>(results[5].exec.retired));
    return 0;
}
