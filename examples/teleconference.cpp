/**
 * @file
 * The paper's motivating scenario (Section 1): a video-teleconferencing
 * node that simultaneously encodes its outgoing video, decodes the
 * incoming stream, and composites an overlay (alpha blending).
 *
 * This example simulates the three components on a chosen machine and
 * converts simulated cycles into an achievable frame rate at the 1 GHz
 * clock of Table 2, showing how ILP, VIS, and prefetching move a
 * workload that is hopeless on the base machine toward real-time.
 *
 * Usage: teleconference [base|vis|pf]
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/experiment.hh"

int
main(int argc, char **argv)
{
    using namespace msim;
    using prog::Variant;

    Variant variant = Variant::Vis;
    if (argc > 1) {
        if (std::strcmp(argv[1], "base") == 0)
            variant = Variant::Scalar;
        else if (std::strcmp(argv[1], "pf") == 0)
            variant = Variant::VisPrefetch;
    }

    const std::vector<sim::MachineConfig> machines = {
        sim::inOrder1Way(), sim::inOrder4Way(), sim::outOfOrder4Way()};

    // One conference "tick" = encode 4 frames + decode 4 frames +
    // composite one overlay frame.
    struct Component
    {
        const char *name;
        const char *bench;
        double frames; ///< video frames produced per run
    };
    const Component parts[] = {
        {"encode (mpeg-enc)", "mpeg-enc", 4.0},
        {"decode (mpeg-dec)", "mpeg-dec", 4.0},
        {"overlay (blend)", "blend", 1.0},
    };

    std::printf("video teleconferencing node, %s code paths\n",
                prog::variantName(variant));
    std::printf("(frame rates at the 1 GHz clock of Table 2; paper "
                "intro: such apps manage only a few frames/s on\n"
                " general-purpose processors of the era)\n\n");

    for (const auto &m : machines) {
        std::printf("--- %s ---\n", m.label.c_str());
        double total_per_frame = 0.0;
        for (const Component &part : parts) {
            // mpeg-enc has no +PF variant (paper Figure 3 excludes it).
            Variant v = variant;
            if (v == Variant::VisPrefetch &&
                !core::findBenchmark(part.bench).hasPrefetchVariant)
                v = Variant::Vis;
            const auto r = core::runBenchmark(part.bench, v, m);
            const double cyc_per_frame =
                static_cast<double>(r.exec.cycles) / part.frames;
            total_per_frame += cyc_per_frame;
            std::printf("  %-20s %9.2f Mcycles/frame  (%.1f frames/s "
                        "alone)\n",
                        part.name, cyc_per_frame / 1e6,
                        1e9 / cyc_per_frame);
        }
        std::printf("  => simultaneous pipeline: %.1f frames/s at "
                    "160x128; ~%.1f frames/s projected full-screen "
                    "(640x480)\n\n",
                    1e9 / total_per_frame,
                    1e9 / (total_per_frame * (640.0 * 480) /
                           (160.0 * 128)));
    }
    return 0;
}
