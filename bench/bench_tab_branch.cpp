/**
 * @file
 * Section 3.2.2 reproduction: hardware branch misprediction rates
 * without and with VIS. The paper highlights conv (10% -> 0%), thresh
 * (6% -> 0%), and mpeg-enc (27% -> 10%): VIS eliminates the
 * hard-to-predict saturation/threshold/|a-b| branches.
 */

#include "bench_util.hh"
#include "common/table.hh"
#include "sim/machine.hh"

int
main()
{
    using namespace msim;
    using core::Job;
    using prog::Variant;

    const auto names = bench::paperNames();
    std::vector<Job> jobs;
    for (const auto &name : names)
        for (Variant var : {Variant::Scalar, Variant::Vis})
            jobs.push_back({name, var, sim::outOfOrder4Way()});
    const auto results = bench::runAll(jobs, "branch");

    std::printf("=== Section 3.2.2: branch behaviour without/with VIS "
                "===\n\n");
    Table t({"benchmark", "branches(base)", "mispred%(base)",
             "branches(VIS)", "mispred%(VIS)"});
    for (size_t b = 0; b < names.size(); ++b) {
        const auto &base = results[2 * b].exec;
        const auto &vis = results[2 * b + 1].exec;
        t.addRow({names[b], std::to_string(base.branches),
                  Table::num(100.0 * base.mispredictRate()),
                  std::to_string(vis.branches),
                  Table::num(100.0 * vis.mispredictRate())});
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("paper reference: conv 10%% -> 0%%, thresh 6%% -> 0%%, "
                "mpeg-enc 27%% -> 10%%.\n");
    return 0;
}
