/**
 * @file
 * Sections 3.1 / 4.2 reproduction: MSHR occupancy and load-miss overlap.
 * The paper observes that out-of-order issue overlaps only 2-3 load
 * misses in most cases (the 12 MSHRs are never fully used by loads),
 * and that software prefetching raises utilization past 5 MSHRs for
 * long stretches in the image kernels.
 */

#include "bench_util.hh"
#include "common/table.hh"
#include "sim/machine.hh"

int
main()
{
    using namespace msim;
    using core::Job;
    using prog::Variant;

    const auto names = bench::paperNames();
    std::vector<Job> jobs;
    for (const auto &name : names) {
        jobs.push_back({name, Variant::Vis, sim::outOfOrder4Way()});
        const bool pf = core::findBenchmark(name).hasPrefetchVariant;
        jobs.push_back({name, pf ? Variant::VisPrefetch : Variant::Vis,
                        sim::outOfOrder4Way()});
    }
    const auto results = bench::runAll(jobs, "mshr");

    std::printf("=== Sections 3.1/4.2: L1 MSHR occupancy and load "
                "overlap ===\n\n");
    Table t({"benchmark", "cfg", "mean-occ", "peak", "t(occ>=2)%",
             "t(occ>=5)%", "ld-overlap"});
    for (size_t b = 0; b < names.size(); ++b) {
        for (unsigned v = 0; v < 2; ++v) {
            const auto &r = results[2 * b + v];
            const bool pf =
                v == 1 && core::findBenchmark(names[b]).hasPrefetchVariant;
            if (v == 1 && !pf)
                continue;
            t.addRow({names[b], pf ? "VIS+PF" : "VIS",
                      Table::num(r.l1.mshrMeanOccupancy, 2),
                      std::to_string(r.l1.mshrPeakOccupancy),
                      Table::num(100.0 * r.l1.mshrFracAtLeast2),
                      Table::num(100.0 * r.l1.mshrFracAtLeast5),
                      Table::num(r.l1.loadOverlapMean, 2)});
        }
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("paper: only 2-3 load misses overlapped in most cases "
                "without PF; with PF more than 5 MSHRs are in use\n"
                "for a large fraction of the time in the image "
                "kernels.\n");
    return 0;
}
