/**
 * @file
 * google-benchmark microbenchmarks of the simulator itself: VIS
 * functional-semantics throughput, cache access path cost, pipeline
 * step rate, and the native codec building blocks. These measure the
 * host cost of simulation (useful when sizing experiments), not
 * simulated time.
 */

#include <algorithm>
#include <bit>
#include <vector>

#include <benchmark/benchmark.h>

#include "common/simd.hh"
#include "cpu/batch_replay_engine.hh"
#include "cpu/core.hh"
#include "img/synth.hh"
#include "jpeg/codec.hh"
#include "jpeg/dct.hh"
#include "jpeg/huffman.hh"
#include "mem/batch.hh"
#include "mem/hierarchy.hh"
#include "sim/machine.hh"
#include "mpeg/codec.hh"
#include "prog/trace_builder.hh"
#include "vis/ops.hh"

namespace
{

using namespace msim;

void
BM_VisPackedOps(benchmark::State &state)
{
    u64 a = 0x1234567890abcdefull, b = 0x0fedcba098765432ull;
    const vis::Gsr gsr = vis::makeGsr(3, 4);
    for (auto _ : state) {
        a = vis::fpadd16(a, b);
        b = vis::fmul8x16(a, b);
        a = vis::faligndata(a, b, gsr);
        b = vis::fpack16(a, gsr) | (a << 1);
        benchmark::DoNotOptimize(a);
        benchmark::DoNotOptimize(b);
    }
    state.SetItemsProcessed(state.iterations() * 4);
}
BENCHMARK(BM_VisPackedOps);

void
BM_VisPdist(benchmark::State &state)
{
    u64 a = 0x1234567890abcdefull, b = 0x0fedcba098765432ull;
    u64 acc = 0;
    for (auto _ : state) {
        acc = vis::pdist(a, b, acc);
        a = a * 0x9e3779b97f4a7c15ull + 1;
        benchmark::DoNotOptimize(acc);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_VisPdist);

void
cacheHitLoop(benchmark::State &state, mem::CacheModel model)
{
    mem::MemConfig cfg;
    cfg.model = model;
    mem::Hierarchy h(cfg);
    Cycle t = h.access(0x10000, mem::AccessKind::Load, 0).ready;
    for (auto _ : state) {
        const auto r =
            h.access(0x10000 + (t % 64), mem::AccessKind::Load, t);
        t = r.ready;
        benchmark::DoNotOptimize(r.ready);
    }
    state.SetItemsProcessed(state.iterations());
}

void
BM_CacheHitPath(benchmark::State &state)
{
    cacheHitLoop(state, mem::CacheModel::Fast);
}
BENCHMARK(BM_CacheHitPath);

void
BM_CacheHitPathRef(benchmark::State &state)
{
    cacheHitLoop(state, mem::CacheModel::Reference);
}
BENCHMARK(BM_CacheHitPathRef);

/**
 * Miss/MSHR churn: a strided load stream that misses every access,
 * keeps several MSHRs in flight, and combines a second request onto
 * each line — the paths the O(1) MSHR tracking rewrote (findMshr,
 * findFreeMshr, busyMshrs, allocateMshr).
 */
void
cacheMissLoop(benchmark::State &state, mem::CacheModel model)
{
    mem::MemConfig cfg;
    cfg.model = model;
    mem::Hierarchy h(cfg);
    Cycle t = 0;
    Addr a = 0;
    for (auto _ : state) {
        const auto miss = h.access(a, mem::AccessKind::Load, t);
        const auto comb = h.access(a + 8, mem::AccessKind::Load, t + 1);
        benchmark::DoNotOptimize(comb.ready);
        a += 1 << 20; // new L1/L2 set each time: always a miss
        t = std::max(t + 2, miss.ready > 40 ? miss.ready - 40 : t + 2);
    }
    state.SetItemsProcessed(state.iterations() * 2);
}

void
BM_CacheMissMshrChurn(benchmark::State &state)
{
    cacheMissLoop(state, mem::CacheModel::Fast);
}
BENCHMARK(BM_CacheMissMshrChurn);

void
BM_CacheMissMshrChurnRef(benchmark::State &state)
{
    cacheMissLoop(state, mem::CacheModel::Reference);
}
BENCHMARK(BM_CacheMissMshrChurnRef);

/** Store hits: exercises the single tag scan that marks the way dirty. */
void
cacheStoreHitLoop(benchmark::State &state, mem::CacheModel model)
{
    mem::MemConfig cfg;
    cfg.model = model;
    mem::Hierarchy h(cfg);
    Cycle t = h.access(0x20000, mem::AccessKind::Store, 0).ready;
    for (auto _ : state) {
        const auto r =
            h.access(0x20000 + (t % 64), mem::AccessKind::Store, t);
        t = r.ready;
        benchmark::DoNotOptimize(r.ready);
    }
    state.SetItemsProcessed(state.iterations());
}

void
BM_CacheStoreHit(benchmark::State &state)
{
    cacheStoreHitLoop(state, mem::CacheModel::Fast);
}
BENCHMARK(BM_CacheStoreHit);

void
BM_CacheStoreHitRef(benchmark::State &state)
{
    cacheStoreHitLoop(state, mem::CacheModel::Reference);
}
BENCHMARK(BM_CacheStoreHitRef);

void
BM_CoreStepRate(benchmark::State &state)
{
    // Simulated instructions per host second on a dense integer loop.
    const size_t chunk = 10000;
    for (auto _ : state) {
        mem::Hierarchy h(mem::MemConfig{});
        cpu::PipelineCore core(cpu::CoreConfig::outOfOrder4Way(), h);
        prog::TraceBuilder tb(core, true, false);
        prog::Val v = tb.imm(0);
        for (size_t i = 0; i < chunk; ++i)
            v = tb.add(v, tb.imm(1));
        tb.finish();
        benchmark::DoNotOptimize(core.stats().cycles);
    }
    state.SetItemsProcessed(state.iterations() * chunk);
}
BENCHMARK(BM_CoreStepRate);

/**
 * Cross-lane min reduction over the batch engine's SoA progress
 * columns (cursor audit, per-lane horizon sweeps), through the
 * runtime-dispatched simd kernel.  Run at small / sweep-sized / absurd
 * lane counts; the BM_Simd* entries below isolate each kernel's
 * scalar-vs-dispatched cost on the engine's fixed 64-slot shapes.
 */
void
BM_LaneHorizonMinReduction(benchmark::State &state)
{
    const size_t lanes = static_cast<size_t>(state.range(0));
    std::vector<u8> running(lanes);
    std::vector<u64> values(lanes);
    u64 x = 0x9e3779b97f4a7c15ull;
    for (size_t k = 0; k < lanes; ++k) {
        x = x * 6364136223846793005ull + 1442695040888963407ull;
        running[k] = (x >> 33) % 8 != 0; // ~1/8 lanes finished
        values[k] = x >> 16;
    }
    for (auto _ : state) {
        const u64 m = cpu::BatchReplayEngine::minActiveLane(running, values);
        benchmark::DoNotOptimize(m);
    }
    state.SetItemsProcessed(state.iterations() * lanes);
}
BENCHMARK(BM_LaneHorizonMinReduction)->Arg(8)->Arg(64)->Arg(512);

// ---- host-SIMD kernel layer (common/simd.hh) ------------------------
//
// Each kernel measured once through the scalar reference table and
// once through the host's detected table, on the exact shapes the
// replay engines use (64-slot columns; chunk-length byte columns).
// These localize where BENCH_simd_lanes.json's aggregate win comes
// from — and what the residual scalar floor costs.

/** 64-slot u64 column + mask fixtures shared by the kernel benches. */
struct SimdFixture
{
    alignas(64) u64 values[64];
    alignas(64) u8 counts[64];
    u64 mask;

    SimdFixture()
    {
        u64 x = 0x9e3779b97f4a7c15ull;
        for (int i = 0; i < 64; ++i) {
            x = x * 6364136223846793005ull + 1442695040888963407ull;
            values[i] = x >> 8;
            counts[i] = static_cast<u8>(1 + ((x >> 5) & 3));
        }
        mask = x | 0x8000000000000001ull;
    }
};

const simd::Ops &
tableFor(const benchmark::State &state)
{
    return state.range(0) ? simd::opsFor(simd::detectedLevel())
                          : simd::opsFor(simd::Level::Scalar);
}

void
BM_SimdLeBitmap64(benchmark::State &state)
{
    const SimdFixture fx;
    const simd::Ops &t = tableFor(state);
    const u64 threshold = fx.values[17];
    for (auto _ : state)
        benchmark::DoNotOptimize(t.leBitmap64(fx.values, threshold));
    state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_SimdLeBitmap64)->Arg(0)->Arg(1);

void
BM_SimdMinMaskedU64(benchmark::State &state)
{
    const SimdFixture fx;
    const simd::Ops &t = tableFor(state);
    for (auto _ : state)
        benchmark::DoNotOptimize(t.minMaskedU64(fx.values, fx.mask));
    state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_SimdMinMaskedU64)->Arg(0)->Arg(1);

void
BM_SimdMaxBroadcastU64(benchmark::State &state)
{
    SimdFixture fx;
    const simd::Ops &t = tableFor(state);
    u64 tick = 0;
    for (auto _ : state) {
        t.maxBroadcastU64(fx.values, fx.mask, ++tick);
        benchmark::DoNotOptimize(fx.values[0]);
    }
    state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_SimdMaxBroadcastU64)->Arg(0)->Arg(1);

void
BM_SimdWakeDecU8(benchmark::State &state)
{
    SimdFixture fx;
    const simd::Ops &t = tableFor(state);
    for (auto _ : state) {
        // Saturate back up so counts never stay at zero across iters.
        const u64 zeroed = t.wakeDecU8(fx.counts, fx.mask);
        benchmark::DoNotOptimize(zeroed);
        for (u64 z = zeroed; z != 0; z &= z - 1)
            fx.counts[std::countr_zero(z)] = 3;
    }
    state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_SimdWakeDecU8)->Arg(0)->Arg(1);

void
BM_SimdEqByteBitmap(benchmark::State &state)
{
    // Chunk-length op column, as in the batch constructor's branch
    // extraction (16 Ki default chunk).
    const size_t n = 16384;
    std::vector<u8> bytes(n);
    std::vector<u64> out((n + 63) / 64);
    u64 x = 0x2545f4914f6cdd1dull;
    for (size_t i = 0; i < n; ++i) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        bytes[i] = static_cast<u8>(x & 7);
    }
    const simd::Ops &t = tableFor(state);
    for (auto _ : state) {
        t.eqByteBitmap(bytes.data(), n, 3, out.data());
        benchmark::DoNotOptimize(out[0]);
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SimdEqByteBitmap)->Arg(0)->Arg(1);

void
BM_SimdTestBitBitmap(benchmark::State &state)
{
    const size_t n = 16384;
    std::vector<u8> bytes(n);
    std::vector<u64> out((n + 63) / 64);
    u64 x = 0x2545f4914f6cdd1dull;
    for (size_t i = 0; i < n; ++i) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        bytes[i] = static_cast<u8>(x);
    }
    const simd::Ops &t = tableFor(state);
    for (auto _ : state) {
        t.testBitBitmap(bytes.data(), n, 0x10, out.data());
        benchmark::DoNotOptimize(out[0]);
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SimdTestBitBitmap)->Arg(0)->Arg(1);

void
BM_SimdPopcountWords(benchmark::State &state)
{
    const size_t n = 256;
    std::vector<u64> words(n);
    u64 x = 0x2545f4914f6cdd1dull;
    for (size_t i = 0; i < n; ++i) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        words[i] = x;
    }
    const simd::Ops &t = tableFor(state);
    for (auto _ : state)
        benchmark::DoNotOptimize(t.popcountWords(words.data(), n));
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SimdPopcountWords)->Arg(0)->Arg(1);

void
BM_SimdMinActiveU64(benchmark::State &state)
{
    const size_t lanes = 64;
    std::vector<u8> running(lanes);
    std::vector<u64> values(lanes);
    u64 x = 0x9e3779b97f4a7c15ull;
    for (size_t k = 0; k < lanes; ++k) {
        x = x * 6364136223846793005ull + 1442695040888963407ull;
        running[k] = (x >> 33) % 8 != 0;
        values[k] = x >> 16;
    }
    const simd::Ops &t = tableFor(state);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            t.minActiveU64(running.data(), values.data(), lanes));
    state.SetItemsProcessed(state.iterations() * lanes);
}
BENCHMARK(BM_SimdMinActiveU64)->Arg(0)->Arg(1);

// ---- batched memory layer kernels (mem/batch.hh) --------------------
//
// The shared-column derivation and the multi-lane tag probe, isolated
// from the replay loop.  These localize BENCH_mem_batch.json's A/B
// delta and size the probe's sparse-to-wide behaviour across the lane
// counts real sweeps produce.

void
BM_SimdShrU64Col(benchmark::State &state)
{
    // Chunk-length address column -> shared line-number column, as in
    // BatchMemory::setChunkWindow (16 Ki default chunk, 64 B lines).
    const size_t n = 16384;
    std::vector<u64> addrs(n), lines(n);
    u64 x = 0x2545f4914f6cdd1dull;
    for (size_t i = 0; i < n; ++i) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        addrs[i] = x >> 4;
    }
    const simd::Ops &t = tableFor(state);
    for (auto _ : state) {
        t.shrU64Col(addrs.data(), n, 6, lines.data());
        benchmark::DoNotOptimize(lines[0]);
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SimdShrU64Col)->Arg(0)->Arg(1);

void
BM_SimdEqU64TagProbe(benchmark::State &state)
{
    // One geometry-class set slice: laneCount x assoc lane-major tag
    // slots swept for one line (BatchMemory::probeClass), assoc 2 as
    // in the paper's L1.  Arg 0: lane count (1..64 crosses every
    // vector-width boundary); arg 1: scalar vs detected table.  The
    // measured cutover — where the wide sweep starts beating the
    // scalar loop — is documented in DESIGN.md section 13.
    const size_t lanes = static_cast<size_t>(state.range(0));
    const size_t n = lanes * 2;
    std::vector<u64> tags(n);
    std::vector<u64> out((n + 63) / 64);
    u64 x = 0x9e3779b97f4a7c15ull;
    for (size_t i = 0; i < n; ++i) {
        x = x * 6364136223846793005ull + 1442695040888963407ull;
        tags[i] = (x >> 33) % 4 == 0 ? 42 : x >> 16; // ~1/4 slots hit
    }
    const simd::Ops &t = state.range(1)
                             ? simd::opsFor(simd::detectedLevel())
                             : simd::opsFor(simd::Level::Scalar);
    for (auto _ : state) {
        t.eqU64Bitmap(tags.data(), n, 42, out.data());
        benchmark::DoNotOptimize(out[0]);
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SimdEqU64TagProbe)
    ->Args({1, 0})
    ->Args({1, 1})
    ->Args({2, 0})
    ->Args({2, 1})
    ->Args({4, 0})
    ->Args({4, 1})
    ->Args({8, 0})
    ->Args({8, 1})
    ->Args({16, 0})
    ->Args({16, 1})
    ->Args({32, 0})
    ->Args({32, 1})
    ->Args({64, 0})
    ->Args({64, 1});

void
BM_MemBatchProbeClass(benchmark::State &state)
{
    // End-to-end probe through a real BatchMemory: N duplicate-
    // geometry lanes in one class, states diverged by different access
    // strides, then one multi-lane classification per iteration
    // (includes the set/base arithmetic and the member bit fold).
    const size_t lanes = static_cast<size_t>(state.range(0));
    std::vector<mem::MemConfig> configs(lanes,
                                        sim::outOfOrder4Way().mem);
    mem::BatchMemory bm(configs);
    for (size_t k = 0; k < lanes; ++k) {
        for (u64 i = 0; i < 512; i += k + 1)
            bm.port(k).access(i * 64, mem::AccessKind::Load,
                              static_cast<Cycle>(i));
    }
    u64 bits[1];
    Addr line = 0;
    for (auto _ : state) {
        bm.probeClass(0, 0, line, bits);
        line = (line + 1) & 511;
        benchmark::DoNotOptimize(bits[0]);
    }
    state.SetItemsProcessed(state.iterations() * lanes);
}
BENCHMARK(BM_MemBatchProbeClass)->Arg(1)->Arg(8)->Arg(64);

void
BM_NativeDct(benchmark::State &state)
{
    s16 in[64], out[64];
    for (int i = 0; i < 64; ++i)
        in[i] = static_cast<s16>(i * 3 - 90);
    for (auto _ : state) {
        jpeg::fdct8x8(in, out);
        benchmark::DoNotOptimize(out[0]);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NativeDct);

void
BM_NativeJpegEncode(benchmark::State &state)
{
    const img::Image im = img::makeTestImage(160, 96, 3, 1);
    for (auto _ : state) {
        const auto enc = jpeg::encodeJpeg(im, false, 75);
        benchmark::DoNotOptimize(enc.scans.size());
    }
}
BENCHMARK(BM_NativeJpegEncode);

void
BM_NativeMotionSearch(benchmark::State &state)
{
    mpeg::SeqConfig cfg;
    cfg.width = 64;
    cfg.height = 48;
    const auto frames = mpeg::makeTestSequence(cfg, 3);
    for (auto _ : state) {
        const auto m =
            mpeg::fullSearch(frames[1].y, 16, 16, frames[0].y, 4);
        benchmark::DoNotOptimize(m.sad);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NativeMotionSearch);

void
BM_HuffmanDecode(benchmark::State &state)
{
    std::vector<u64> freq(64);
    for (unsigned i = 0; i < 64; ++i)
        freq[i] = 1 + (i * 37) % 100;
    const jpeg::HuffTable t = jpeg::HuffTable::fromFrequencies(freq);
    jpeg::BitWriter bw;
    for (int i = 0; i < 1000; ++i)
        t.encode(bw, (i * 7) % 64);
    const auto bytes = bw.finish();
    for (auto _ : state) {
        jpeg::BitReader br(bytes);
        unsigned sum = 0;
        for (int i = 0; i < 1000; ++i)
            sum += t.decode(br);
        benchmark::DoNotOptimize(sum);
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_HuffmanDecode);

} // namespace

BENCHMARK_MAIN();
