/**
 * @file
 * Observability overhead A/B: the recorded djpeg L1 sweep run twice —
 * once without a telemetry session, once with one actively sampling —
 * verifying that every RunResult field is bit-identical between the
 * two passes and measuring the enabled-sampling overhead (the ISSUE
 * budget is <5%; zero when no session is started; exactly zero
 * instructions when MSIM_OBS is compiled out).
 *
 * Also the generator for the repo's example telemetry artifacts:
 *
 *   bench_obs --obs-out=examples/obs/djpeg-l1 --obs-period=65536
 *
 * writes djpeg-l1.ndjson (for tools/msim_report) and
 * djpeg-l1.trace.json (load in https://ui.perfetto.dev). `--smoke`
 * shrinks the sweep for the CI obs leg. `--variant=scalar` sweeps the
 * scalar build of the same benchmark, so a scalar and a VIS capture
 * can be compared per kernel with `msim_report --site-diff`.
 */

#include <cstring>

#include "bench_util.hh"
#include "sim/machine.hh"

namespace
{

using namespace msim;

/** Exact comparison; both passes must agree on every field. */
unsigned
compareAll(const std::vector<sim::RunResult> &off,
           const std::vector<sim::RunResult> &on)
{
    unsigned mismatches = 0;
    for (size_t i = 0; i < off.size(); ++i) {
        const sim::RunResult &a = off[i];
        const sim::RunResult &b = on[i];
#define MSIM_CMP(field)                                                      \
    do {                                                                     \
        if (!(a.field == b.field)) {                                         \
            std::fprintf(stderr,                                             \
                         "[obs] MISMATCH job %zu " #field                    \
                         ": off %s != on %s\n",                              \
                         i, std::to_string(a.field).c_str(),                 \
                         std::to_string(b.field).c_str());                   \
            ++mismatches;                                                    \
        }                                                                    \
    } while (0)
        MSIM_CMP(exec.cycles);
        MSIM_CMP(exec.retired);
        MSIM_CMP(exec.busy);
        MSIM_CMP(exec.fuStall);
        MSIM_CMP(exec.memL1Hit);
        MSIM_CMP(exec.memL1Miss);
        MSIM_CMP(exec.branches);
        MSIM_CMP(exec.mispredicts);
        MSIM_CMP(l1.accesses);
        MSIM_CMP(l1.misses);
        MSIM_CMP(l1.missRate);
        MSIM_CMP(l1.mshrMeanOccupancy);
        MSIM_CMP(l1.mshrFracAtLeast2);
        MSIM_CMP(l2.accesses);
        MSIM_CMP(l2.misses);
        MSIM_CMP(l2.missRate);
        MSIM_CMP(l2.mshrMeanOccupancy);
        MSIM_CMP(tbInstrs);
        MSIM_CMP(visOps);
#undef MSIM_CMP
    }
    return mismatches;
}

} // namespace

int
main(int argc, char **argv)
{
    using core::Job;
    using prog::Variant;

    bool smoke = false;
    bool haveObsOut = false;
    Variant variant = Variant::Vis;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            smoke = true;
        } else if (std::strcmp(argv[i], "--variant=scalar") == 0) {
            variant = Variant::Scalar;
        } else if (std::strcmp(argv[i], "--variant=vis") == 0) {
            variant = Variant::Vis;
        } else if (std::strncmp(argv[i], "--obs-", 6) == 0) {
            // No-op (but still accepted) when MSIM_OBS is compiled out.
            obs::handleObsArg(argv[i]);
            haveObsOut = haveObsOut ||
                         std::strncmp(argv[i], "--obs-out=", 10) == 0;
        } else {
            std::fprintf(stderr,
                         "usage: %s [--smoke] [--variant=scalar|vis]\n"
                         "          [--obs-out=BASE] [--obs-period=N]\n"
                         "          [--obs-capacity=N]\n",
                         argv[0]);
            return 2;
        }
    }
    if (!haveObsOut) {
        // Self-contained A/B by default: capture next to the BENCH json.
        obs::handleObsArg("--obs-out=BENCH_obs_capture");
    }

    const std::vector<u32> sizes =
        smoke ? std::vector<u32>{1 << 10, 64 << 10}
              : std::vector<u32>{1 << 10, 4 << 10, 16 << 10, 64 << 10};
    std::vector<Job> jobs;
    for (u32 size : sizes)
        jobs.push_back({"djpeg", variant, sim::withL1Size(size)});

    // Warmup — untimed: without it the first timed pass absorbs page
    // faults and allocator growth and the A/B reads ~10% backwards.
    {
        bench::SelfMeasurement warm;
        bench::runTimed(jobs, warm, 1, core::JobMode::Recorded);
    }

    // Pass 1 — no session: the baseline results and wall-clock.
    // Single-threaded recorded mode so the A/B is purely the sampling
    // hooks, not scheduling noise.
    bench::SelfMeasurement off;
    const auto baseline =
        bench::runTimed(jobs, off, 1, core::JobMode::Recorded);

    // Pass 2 — session active, every engine loop sampling timelines.
    const bool started = obs::startFromArgs();
    bench::SelfMeasurement on;
    const auto sampled =
        bench::runTimed(jobs, on, 1, core::JobMode::Recorded);
    obs::Session::finish();

#if MSIM_OBS_ENABLED
    if (!started) {
        std::fprintf(stderr, "[obs] session failed to start\n");
        return 1;
    }
#else
    (void)started;
    std::fprintf(stderr, "[obs] MSIM_OBS compiled out; A/B measures "
                         "two identical passes\n");
#endif

    const unsigned mismatches = compareAll(baseline, sampled);
    const double overheadPct =
        off.hostSeconds > 0.0
            ? 100.0 * (on.hostSeconds - off.hostSeconds) / off.hostSeconds
            : 0.0;

    std::printf("=== obs sampling overhead (recorded djpeg L1 sweep, "
                "%zu configs) ===\n",
                jobs.size());
    std::printf("obs off: %.3fs    obs on: %.3fs    overhead: %+.2f%%    "
                "bit-identical: %s\n",
                off.hostSeconds, on.hostSeconds, overheadPct,
                mismatches ? "NO" : "yes");

    bench::writeBenchJson("obs", on,
                          {{"off_seconds", off.hostSeconds},
                           {"on_seconds", on.hostSeconds},
                           {"overhead_pct", overheadPct},
                           {"mismatched_fields", double(mismatches)}});
    return mismatches ? 1 : 0;
}
