/**
 * @file
 * Footnote-3 ablation: the paper modified the VSDK kernels to skew the
 * starting addresses of concurrently accessed arrays (and to unroll
 * small loops), reporting 1.2X-6.7X benefits from reduced cache
 * conflicts and branch mispredictions. This bench compares the skewed
 * allocator layout against the conflict-prone way-aligned layout.
 */

#include "bench_util.hh"
#include "common/table.hh"
#include "sim/machine.hh"

int
main()
{
    using namespace msim;
    using core::Job;
    using prog::Variant;

    const std::vector<std::string> kernels = {"addition", "blend",
                                              "copy",     "dotprod",
                                              "scaling",  "thresh"};
    std::vector<Job> jobs;
    for (const auto &name : kernels) {
        sim::MachineConfig skewed = sim::outOfOrder4Way();
        sim::MachineConfig aligned = sim::outOfOrder4Way();
        aligned.skewArrays = false;
        jobs.push_back({name, Variant::Scalar, skewed});
        jobs.push_back({name, Variant::Scalar, aligned});
    }
    const auto results = bench::runAll(jobs, "skew-ablation");

    std::printf("=== Footnote 3 ablation: skewed vs way-aligned array "
                "bases (scalar, 4-way ooo) ===\n\n");
    Table t({"kernel", "cycles(skewed)", "cycles(aligned)", "benefit",
             "l1-miss%(skewed)", "l1-miss%(aligned)"});
    for (size_t b = 0; b < kernels.size(); ++b) {
        const auto &s = results[2 * b];
        const auto &a = results[2 * b + 1];
        t.addRow({kernels[b], std::to_string(s.exec.cycles),
                  std::to_string(a.exec.cycles),
                  Table::num(double(a.exec.cycles) /
                                 double(s.exec.cycles),
                             2) + "X",
                  Table::num(100.0 * s.l1.missRate),
                  Table::num(100.0 * a.l1.missRate)});
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("paper: the skew+unroll modifications gave 1.2X-6.7X on "
                "the VSDK kernels.\n");
    return 0;
}
