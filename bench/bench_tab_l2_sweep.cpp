/**
 * @file
 * Section 4.1 reproduction: L2 cache size sweep (paper: 128K to 2M with
 * the L1 fixed at 64K, on the VIS versions).
 *
 * The paper's images are 1024x640 (JPEG) and 352x240 (MPEG); ours are
 * 320x200 and 160x128, so the working sets — and therefore the cache
 * sizes at which the reuse benchmarks' knees appear — scale down by the
 * same factor. The sweep therefore starts below the default 128K to
 * expose the knee; the "paper-scale" column projects each size by the
 * working-set ratio (about 6.4x) for comparison with the paper's text.
 */

#include "bench_util.hh"
#include "common/table.hh"
#include "sim/machine.hh"

int
main()
{
    using namespace msim;
    using core::Job;
    using prog::Variant;

    const std::vector<u32> sizes = {32 << 10, 64 << 10, 128 << 10,
                                    256 << 10, 512 << 10, 1 << 20,
                                    2 << 20};
    const auto names = bench::paperNames();

    std::vector<Job> jobs;
    for (const auto &name : names)
        for (u32 size : sizes)
            jobs.push_back({name, Variant::Vis, sim::withL2Size(size)});
    const auto results = bench::runAll(jobs, "l2-sweep");

    std::printf("=== Section 4.1: impact of L2 cache size (VIS, 4-way "
                "ooo, 64K L1) ===\n");
    std::printf("(execution time normalized to the smallest L2 = 100; "
                "paper sweeps 128K-2M at ~6.4x our image area)\n\n");

    std::vector<std::string> headers = {"benchmark"};
    for (u32 s : sizes)
        headers.push_back(std::to_string(s / 1024) + "K");
    headers.push_back("max-benefit");
    Table t(std::move(headers));

    for (size_t b = 0; b < names.size(); ++b) {
        const double base =
            static_cast<double>(results[b * sizes.size()].exec.cycles);
        std::vector<std::string> row = {names[b]};
        double best = base;
        for (size_t s = 0; s < sizes.size(); ++s) {
            const double c = static_cast<double>(
                results[b * sizes.size() + s].exec.cycles);
            best = std::min(best, c);
            row.push_back(Table::num(100.0 * c / base));
        }
        row.push_back(Table::num(base / best, 2) + "X");
        t.addRow(std::move(row));
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("paper: no impact on the 6 image kernels and the "
                "non-progressive JPEGs; 1.1X-1.2X for cjpeg, djpeg,\n"
                "mpeg-enc, mpeg-dec once the (display-size-dependent) "
                "working set fits.\n");
    return 0;
}
