/**
 * @file
 * Figure 3 reproduction: effect of software-inserted prefetching on the
 * VIS versions of the benchmarks whose L1-miss stall time is significant
 * (the paper excludes cjpeg-np, djpeg-np, and mpeg-enc, which spend less
 * than 6% of their time on L1 misses). Normalized to VIS (no PF) = 100.
 */

#include "bench_util.hh"
#include "sim/machine.hh"

int
main()
{
    using namespace msim;
    using core::Job;
    using prog::Variant;

    std::vector<std::string> names;
    for (const auto *b : core::paperBenchmarks())
        if (b->hasPrefetchVariant)
            names.push_back(b->name);

    std::vector<Job> jobs;
    for (const auto &name : names)
        for (Variant var : {Variant::Vis, Variant::VisPrefetch})
            jobs.push_back({name, var, sim::outOfOrder4Way()});
    const auto results = bench::runAll(jobs, "fig3");

    std::printf("=== Figure 3: effect of software-inserted prefetching "
                "===\n");
    std::printf("(4-way ooo with VIS; normalized to no-prefetch = 100)"
                "\n\n");

    std::vector<double> kernel_speedups;
    for (size_t b = 0; b < names.size(); ++b) {
        const auto &vis = results[2 * b];
        const auto &pf = results[2 * b + 1];
        const double base = static_cast<double>(vis.exec.cycles);
        std::vector<core::BreakdownBar> bars;
        bars.push_back(core::makeBar("VIS", vis, base));
        bars.push_back(core::makeBar("VIS+PF", pf, base));
        std::printf("%s\n", core::renderBars(names[b], bars).c_str());
        const double speedup =
            base / static_cast<double>(pf.exec.cycles);
        std::printf("  prefetch speedup: %.2fX   prefetches issued: %llu"
                    " (dropped %llu)   remaining memory fraction: "
                    "%.0f%%\n\n",
                    speedup,
                    static_cast<unsigned long long>(
                        pf.exec.prefetchesIssued),
                    static_cast<unsigned long long>(
                        pf.exec.prefetchesDropped),
                    100.0 * (pf.exec.fracMemL1Hit() +
                             pf.exec.fracMemL1Miss()));
        if (core::findBenchmark(names[b]).category ==
            core::Category::ImageKernel)
            kernel_speedups.push_back(speedup);
    }

    std::printf("=== Summary (paper Section 4.2) ===\n");
    std::printf("image kernels prefetch speedup: mean %.1fX"
                "   [paper: avg 1.9X, range 1.4X - 2.5X]\n",
                bench::geomean(kernel_speedups));
    std::printf("with prefetching all benchmarks revert to being "
                "compute-bound (memory fraction < 50%%).\n");
    return 0;
}
