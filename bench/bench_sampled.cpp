/**
 * @file
 * Validation harness for the sampled replay estimator
 * (sim::replayTraceSampled): regenerates the committed accuracy report
 * and the djpeg L1-sweep throughput A/B, and fails the binary if either
 * acceptance bound breaks.
 *
 * Accuracy leg: every paper benchmark x variant — base, VIS, and
 * VIS+prefetch where the benchmark has one (33 cells) — replayed
 * exactly and estimated at the default SampledParams; each cell's CPI
 * error must stay within +/-2%.  The prefetch cells joined the
 * envelope when the default design moved to 4000x12 (finer strata at
 * 1.5x the measured fraction) — see DESIGN.md section 12.
 *
 * Throughput leg: the djpeg L1 sweep (7 sizes, 1KB..64KB), exact
 * sequential replayTrace per point versus prepareSampled once plus
 * replayTraceSampled per point, best-of-3 per side, replay time only
 * (the trace is recorded before the timers start — both sides need it
 * and recording throughput is tracked by BENCH_trace_replay.json).
 * The sampled sweep must clear 5x the exact sweep's points/second
 * (down from 10x at the old 6000x18 rate: the denser sampling that
 * brought the prefetch cells inside 2% measures 1.5x as much trace).
 *
 * Writes BENCH_sampled.json (full mode) or BENCH_sampled_smoke.json
 * (`--smoke`: an addition-kernel sweep, seconds long, plus a loose 5%
 * accuracy sanity check). CI runs the smoke leg and diffs the fresh
 * JSON against the committed baseline with tools/bench_compare.py.
 */

#include <cmath>
#include <cstdlib>
#include <cstring>

#include "bench_util.hh"
#include "kernels/addition.hh"
#include "sim/machine.hh"
#include "sim/runner.hh"
#include "sim/sampled.hh"

namespace
{

using namespace msim;
using prog::Variant;

std::vector<sim::MachineConfig>
l1Sweep()
{
    std::vector<sim::MachineConfig> machines;
    for (u32 size : {1u << 10, 2u << 10, 4u << 10, 8u << 10, 16u << 10,
                     32u << 10, 64u << 10})
        machines.push_back(sim::withL1Size(size));
    return machines;
}

sim::Generator
generatorFor(const std::string &name, Variant variant)
{
    const core::Benchmark &bench = core::findBenchmark(name);
    return [&bench, variant](prog::TraceBuilder &tb) {
        bench.generate(tb, variant);
    };
}

/** JSON-safe key fragment: '-' becomes '_'. */
std::string
keyOf(const std::string &name)
{
    std::string key = name;
    for (char &c : key)
        if (c == '-')
            c = '_';
    return key;
}

struct SweepAb
{
    bench::SelfMeasurement exact;
    bench::SelfMeasurement sampled;

    double
    speedup() const
    {
        return sampled.hostSeconds > 0.0
                   ? exact.hostSeconds / sampled.hostSeconds
                   : 0.0;
    }
};

/**
 * Replay-only A/B over one trace and machine set: exact sequential
 * replayTrace per point versus one prepareSampled plus sampled replay
 * per point, best-of-`repeats` wall time per side.
 */
SweepAb
runSweepAb(const prog::RecordedTrace &trace,
           const std::vector<sim::MachineConfig> &machines, int repeats)
{
    SweepAb ab;
    for (int rep = 0; rep < repeats; ++rep) {
        bench::SelfMeasurement m;
        const auto t0 = std::chrono::steady_clock::now();
        for (const auto &mc : machines) {
            const sim::RunResult r = sim::replayTrace(trace, mc);
            m.simInstructions += r.tbInstrs;
        }
        const auto t1 = std::chrono::steady_clock::now();
        m.hostSeconds = std::chrono::duration<double>(t1 - t0).count();
        m.jobs = machines.size();
        if (rep == 0 || m.hostSeconds < ab.exact.hostSeconds)
            ab.exact = m;
    }
    for (int rep = 0; rep < repeats; ++rep) {
        bench::SelfMeasurement m;
        const auto t0 = std::chrono::steady_clock::now();
        const sim::SampledPlan plan = sim::prepareSampled(trace, {});
        for (const auto &mc : machines) {
            const sim::SampledResult r = sim::replayTraceSampled(plan, mc);
            m.simInstructions += r.instructions;
        }
        const auto t1 = std::chrono::steady_clock::now();
        m.hostSeconds = std::chrono::duration<double>(t1 - t0).count();
        m.jobs = machines.size();
        if (rep == 0 || m.hostSeconds < ab.sampled.hostSeconds)
            ab.sampled = m;
    }
    return ab;
}

struct AccuracyCell
{
    std::string key;     ///< JSON key fragment, e.g. "djpeg_vis"
    double errPct = 0.0; ///< signed CPI error, percent
    double measuredFrac = 0.0;
};

/** Exact vs sampled CPI for one benchmark x variant at the defaults. */
AccuracyCell
measureCell(const core::Benchmark &bench, Variant variant,
            const sim::MachineConfig &m)
{
    const sim::Generator gen = [&](prog::TraceBuilder &tb) {
        bench.generate(tb, variant);
    };
    const prog::RecordedTrace trace =
        sim::recordTrace(gen, m.skewArrays, m.visFeatures);
    const sim::RunResult full = sim::replayTrace(trace, m);
    const double exactCpi = static_cast<double>(full.exec.cycles) /
                            static_cast<double>(full.exec.retired);
    const sim::SampledResult est = sim::replayTraceSampled(trace, m, {});

    AccuracyCell cell;
    cell.key = keyOf(bench.name) +
               (variant == Variant::Scalar       ? "_base"
                : variant == Variant::Vis        ? "_vis"
                                                 : "_pf");
    cell.errPct = 100.0 * (est.cpi.mean - exactCpi) / exactCpi;
    cell.measuredFrac = static_cast<double>(est.measuredInstructions) /
                        static_cast<double>(est.instructions);
    return cell;
}

} // namespace

int
main(int argc, char **argv)
{
    const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
    const sim::MachineConfig base = sim::outOfOrder4Way();

    if (smoke) {
        // Accuracy sanity on a small kernel (loose 5% bound: the smoke
        // trace is short, so per-chunk variance matters more than on
        // the paper-sized runs the 2% claim is made for), then the
        // sweep throughput number the CI gate tracks.  The geometry is
        // sized so the sampled sweep takes a few hundred milliseconds:
        // the committed smoke baseline has to be stable under the 20%
        // comparison gate, and best-of-3 on a tens-of-milliseconds run
        // is not.
        const sim::Generator gen = [](prog::TraceBuilder &tb) {
            kernels::runAddition(tb, Variant::Vis, 2048, 512, 3);
        };
        const prog::RecordedTrace trace =
            sim::recordTrace(gen, base.skewArrays, base.visFeatures);
        const sim::RunResult full = sim::replayTrace(trace, base);
        const double exactCpi = static_cast<double>(full.exec.cycles) /
                                static_cast<double>(full.exec.retired);
        const sim::SampledResult est =
            sim::replayTraceSampled(trace, base, {});
        const double errPct =
            100.0 * (est.cpi.mean - exactCpi) / exactCpi;
        if (est.exact || std::abs(errPct) > 5.0) {
            std::fprintf(stderr,
                         "[sampled] smoke accuracy FAILED: err %+.2f%% "
                         "(exact fallback: %d)\n",
                         errPct, est.exact ? 1 : 0);
            return EXIT_FAILURE;
        }

        const SweepAb ab = runSweepAb(trace, l1Sweep(), 3);
        bench::writeBenchJson(
            "sampled_smoke", ab.sampled,
            {{"exact_seconds", ab.exact.hostSeconds},
             {"sampled_seconds", ab.sampled.hostSeconds},
             {"speedup_x", ab.speedup()},
             {"cpi_err_pct", errPct}});
        std::printf("[sampled] smoke ok: err %+.2f%%, sweep speedup "
                    "%.1fx (%.3fs -> %.3fs)\n",
                    errPct, ab.speedup(), ab.exact.hostSeconds,
                    ab.sampled.hostSeconds);
        return 0;
    }

    // ---- accuracy report: 12 paper benchmarks x every variant --------
    std::fprintf(stderr, "[sampled] accuracy report, 33 cells at "
                 "defaults {%llu, %llu, %llu}\n",
                 static_cast<unsigned long long>(
                     sim::SampledParams{}.chunkInstructions),
                 static_cast<unsigned long long>(
                     sim::SampledParams{}.intervalChunks),
                 static_cast<unsigned long long>(
                     sim::SampledParams{}.warmupMemOps));
    std::map<std::string, double> extra;
    double worst = 0.0, meanAbs = 0.0, fracSum = 0.0;
    std::string worstKey;
    int cells = 0;
    bool accuracyOk = true;
    for (const auto *bench : core::paperBenchmarks()) {
        std::vector<Variant> variants = {Variant::Scalar, Variant::Vis};
        if (bench->hasPrefetchVariant)
            variants.push_back(Variant::VisPrefetch);
        for (Variant v : variants) {
            const AccuracyCell cell = measureCell(*bench, v, base);
            extra["err_pct_" + cell.key] = cell.errPct;
            meanAbs += std::abs(cell.errPct);
            fracSum += cell.measuredFrac;
            ++cells;
            if (std::abs(cell.errPct) > std::abs(worst)) {
                worst = cell.errPct;
                worstKey = cell.key;
            }
            const bool ok = std::abs(cell.errPct) <= 2.0;
            accuracyOk = accuracyOk && ok;
            std::fprintf(stderr, "[sampled]   %-16s %+6.2f%%%s\n",
                         cell.key.c_str(), cell.errPct,
                         ok ? "" : "  ** OVER 2% **");
        }
    }
    meanAbs /= cells;
    fracSum /= cells;
    extra["worst_err_pct"] = worst;
    extra["mean_abs_err_pct"] = meanAbs;
    extra["measured_frac"] = fracSum;

    // ---- throughput: djpeg L1 sweep, exact vs sampled ---------------
    constexpr int kRepeats = 3;
    const auto machines = l1Sweep();
    std::fprintf(stderr,
                 "[sampled] djpeg L1 sweep, %zu points, 1 thread, "
                 "best of %d\n",
                 machines.size(), kRepeats);
    const prog::RecordedTrace djpeg = sim::recordTrace(
        generatorFor("djpeg", Variant::Vis), base.skewArrays,
        base.visFeatures);
    const SweepAb ab = runSweepAb(djpeg, machines, kRepeats);
    extra["exact_seconds"] = ab.exact.hostSeconds;
    extra["sampled_seconds"] = ab.sampled.hostSeconds;
    extra["exact_pps"] = ab.exact.pointsPerSecond();
    extra["speedup_x"] = ab.speedup();

    bench::writeBenchJson("sampled", ab.sampled, extra);
    std::printf("=== Sampled replay validation ===\n");
    std::printf("accuracy: worst %+0.2f%% (%s), mean |err| %.2f%%, "
                "measured %.1f%% of the trace\n",
                worst, worstKey.c_str(), meanAbs, 100.0 * fracSum);
    std::printf("djpeg L1 sweep: exact %.2fs (%.2f pts/s), sampled "
                "%.2fs (%.2f pts/s), speedup %.1fx\n",
                ab.exact.hostSeconds, ab.exact.pointsPerSecond(),
                ab.sampled.hostSeconds, ab.sampled.pointsPerSecond(),
                ab.speedup());

    if (!accuracyOk) {
        std::fprintf(stderr, "[sampled] FAILED: a cell exceeds 2%%\n");
        return EXIT_FAILURE;
    }
    if (ab.speedup() < 5.0) {
        std::fprintf(stderr,
                     "[sampled] FAILED: sweep speedup %.1fx < 5x\n",
                     ab.speedup());
        return EXIT_FAILURE;
    }
    return 0;
}
