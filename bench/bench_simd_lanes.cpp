/**
 * @file
 * Three-way A/B of host-SIMD lane stepping on the djpeg L1 sweep: the
 * same recorded trace replayed (a) sequentially — one sim::replayTrace
 * per point, the pre-batching protocol — (b) through
 * sim::replayTraceBatch with host-SIMD dispatch forced to scalar
 * (sim::withSimd(false)), and (c) batched with native dispatch.
 * Single-threaded, recording included, best-of-N per side — the exact
 * protocol of BENCH_event_skip.json — so all three sides are directly
 * comparable with the committed batch numbers. Results must be
 * bit-identical across the three sides before anything is reported;
 * any divergence fails the binary.
 *
 * Writes BENCH_simd_lanes.json (full mode) or
 * BENCH_simd_lanes_smoke.json (`--smoke`: a tiny addition-kernel
 * sweep, seconds long). CI runs the smoke leg and diffs the fresh JSON
 * against the committed baseline with tools/bench_compare.py. The
 * per-kernel contributions behind the aggregate are measured in
 * bench_micro (BM_Simd* entries).
 */

#include <cstdlib>
#include <cstring>

#include "bench_util.hh"
#include "kernels/addition.hh"
#include "sim/machine.hh"
#include "sim/runner.hh"

namespace
{

using namespace msim;
using prog::Variant;

std::vector<sim::MachineConfig>
l1Sweep()
{
    std::vector<sim::MachineConfig> machines;
    for (u32 size : {1u << 10, 2u << 10, 4u << 10, 8u << 10, 16u << 10,
                     32u << 10, 64u << 10})
        machines.push_back(sim::withL1Size(size));
    return machines;
}

sim::Generator
generatorFor(const std::string &name, Variant variant)
{
    const core::Benchmark &bench = core::findBenchmark(name);
    return [&bench, variant](prog::TraceBuilder &tb) {
        bench.generate(tb, variant);
    };
}

/** How one measured pass drives the sweep. */
enum class Side
{
    Sequential,  ///< one replayTrace per point
    BatchScalar, ///< replayTraceBatch, forced-scalar dispatch
    BatchSimd,   ///< replayTraceBatch, native dispatch
};

struct AbResult
{
    bench::SelfMeasurement seq;
    bench::SelfMeasurement scalar;
    bench::SelfMeasurement simd;
    bool identical = true;

    double
    simdOverSeq() const
    {
        return simd.hostSeconds > 0.0
                   ? seq.hostSeconds / simd.hostSeconds
                   : 0.0;
    }

    double
    simdOverScalar() const
    {
        return simd.hostSeconds > 0.0
                   ? scalar.hostSeconds / simd.hostSeconds
                   : 0.0;
    }
};

/** One measured pass: record the trace, replay every point one way. */
bench::SelfMeasurement
measureOnce(const sim::Generator &gen,
            const std::vector<sim::MachineConfig> &machines, Side side,
            std::vector<sim::RunResult> &results)
{
    const auto guard = sim::withSimd(side == Side::BatchSimd);
    const sim::MachineConfig base = sim::outOfOrder4Way();
    const auto t0 = std::chrono::steady_clock::now();
    const auto trace =
        sim::recordTrace(gen, base.skewArrays, base.visFeatures);
    if (side == Side::Sequential) {
        results.clear();
        results.reserve(machines.size());
        for (const auto &m : machines)
            results.push_back(sim::replayTrace(trace, m));
    } else {
        results = sim::replayTraceBatch(trace, machines);
    }
    const auto t1 = std::chrono::steady_clock::now();
    bench::SelfMeasurement m;
    m.hostSeconds = std::chrono::duration<double>(t1 - t0).count();
    m.jobs = machines.size();
    for (const auto &r : results)
        m.simInstructions += r.tbInstrs;
    return m;
}

bench::SelfMeasurement
bestOf(const sim::Generator &gen,
       const std::vector<sim::MachineConfig> &machines, Side side,
       int repeats, std::vector<sim::RunResult> &best)
{
    bench::SelfMeasurement out;
    for (int rep = 0; rep < repeats; ++rep) {
        std::vector<sim::RunResult> rs;
        const auto m = measureOnce(gen, machines, side, rs);
        if (rep == 0 || m.hostSeconds < out.hostSeconds) {
            out = m;
            best = std::move(rs);
        }
    }
    return out;
}

bool
identicalResults(const sim::RunResult &a, const sim::RunResult &b)
{
    return a.exec.cycles == b.exec.cycles && a.exec.busy == b.exec.busy &&
           a.exec.fuStall == b.exec.fuStall &&
           a.exec.memL1Hit == b.exec.memL1Hit &&
           a.exec.memL1Miss == b.exec.memL1Miss &&
           a.exec.mispredicts == b.exec.mispredicts &&
           a.l1.misses == b.l1.misses && a.l2.misses == b.l2.misses;
}

AbResult
runAb(const sim::Generator &gen,
      const std::vector<sim::MachineConfig> &machines, int repeats)
{
    AbResult ab;
    std::vector<sim::RunResult> seqR, scalarR, simdR;
    ab.seq = bestOf(gen, machines, Side::Sequential, repeats, seqR);
    ab.scalar = bestOf(gen, machines, Side::BatchScalar, repeats, scalarR);
    ab.simd = bestOf(gen, machines, Side::BatchSimd, repeats, simdR);

    for (size_t i = 0; i < machines.size(); ++i) {
        if (!identicalResults(seqR[i], scalarR[i]) ||
            !identicalResults(seqR[i], simdR[i])) {
            std::fprintf(
                stderr,
                "[simd-lanes] MISMATCH at point %zu: seq %llu cycles vs "
                "scalar %llu vs simd %llu\n",
                i, static_cast<unsigned long long>(seqR[i].exec.cycles),
                static_cast<unsigned long long>(scalarR[i].exec.cycles),
                static_cast<unsigned long long>(simdR[i].exec.cycles));
            ab.identical = false;
        }
    }
    return ab;
}

} // namespace

int
main(int argc, char **argv)
{
    const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
    std::fprintf(stderr, "[simd-lanes] host simd: detected %s\n",
                 simd::levelName(simd::detectedLevel()));

    if (smoke) {
        // Big enough that each measured pass takes a sizable fraction
        // of a second: the committed smoke baseline has to be stable
        // under the 20% CI comparison gate.
        const sim::Generator gen = [](prog::TraceBuilder &tb) {
            kernels::runAddition(tb, Variant::Vis, 1024, 256, 3);
        };
        const auto machines = l1Sweep();
        const AbResult ab = runAb(gen, machines, 3);
        if (!ab.identical)
            return EXIT_FAILURE;
        bench::writeBenchJson(
            "simd_lanes_smoke", ab.simd,
            {{"seq_seconds", ab.seq.hostSeconds},
             {"scalar_seconds", ab.scalar.hostSeconds},
             {"simd_seconds", ab.simd.hostSeconds},
             {"simd_over_seq_speedup_x", ab.simdOverSeq()},
             {"simd_over_scalar_speedup_x", ab.simdOverScalar()}});
        std::printf("[simd-lanes] smoke ok: %zu points, seq %.3fs, "
                    "scalar %.3fs, simd %.3fs, identical\n",
                    machines.size(), ab.seq.hostSeconds,
                    ab.scalar.hostSeconds, ab.simd.hostSeconds);
        return 0;
    }

    constexpr int kRepeats = 3;
    const auto machines = l1Sweep();

    std::fprintf(stderr,
                 "[simd-lanes] djpeg L1 sweep, %zu points, 1 thread, "
                 "best of %d\n",
                 machines.size(), kRepeats);
    const AbResult main_ab =
        runAb(generatorFor("djpeg", Variant::Vis), machines, kRepeats);

    std::map<std::string, double> extra = {
        {"seq_seconds", main_ab.seq.hostSeconds},
        {"scalar_seconds", main_ab.scalar.hostSeconds},
        {"simd_seconds", main_ab.simd.hostSeconds},
        {"seq_points_per_second", main_ab.seq.pointsPerSecond()},
        {"scalar_points_per_second", main_ab.scalar.pointsPerSecond()},
        {"simd_points_per_second", main_ab.simd.pointsPerSecond()},
        {"simd_over_seq_speedup_x", main_ab.simdOverSeq()},
        {"simd_over_scalar_speedup_x", main_ab.simdOverScalar()}};
    bool all_identical = main_ab.identical;
    for (const char *name : {"conv", "dotprod", "mpeg-dec"}) {
        std::fprintf(stderr, "[simd-lanes] breakdown: %s\n", name);
        const AbResult ab =
            runAb(generatorFor(name, Variant::Vis), machines, kRepeats);
        all_identical = all_identical && ab.identical;
        std::string key(name);
        for (char &c : key)
            if (c == '-')
                c = '_';
        extra[key + "_seq_pps"] = ab.seq.pointsPerSecond();
        extra[key + "_simd_pps"] = ab.simd.pointsPerSecond();
        extra[key + "_simd_over_seq_speedup_x"] = ab.simdOverSeq();
        extra[key + "_simd_over_scalar_speedup_x"] = ab.simdOverScalar();
    }

    if (!all_identical)
        return EXIT_FAILURE;

    bench::writeBenchJson("simd_lanes", main_ab.simd, extra);
    std::printf("=== Host-SIMD lane stepping A/B (djpeg L1 sweep, "
                "1 thread) ===\n");
    std::printf("sequential:     %6.2fs  (%.2f points/s)\n",
                main_ab.seq.hostSeconds, main_ab.seq.pointsPerSecond());
    std::printf("batch scalar:   %6.2fs  (%.2f points/s)\n",
                main_ab.scalar.hostSeconds,
                main_ab.scalar.pointsPerSecond());
    std::printf("batch simd:     %6.2fs  (%.2f points/s)\n",
                main_ab.simd.hostSeconds, main_ab.simd.pointsPerSecond());
    std::printf("simd over seq:    %6.2fx\n", main_ab.simdOverSeq());
    std::printf("simd over scalar: %6.2fx\n", main_ab.simdOverScalar());
    std::printf("results bit-identical across all %zu points x 3 "
                "sides\n",
                machines.size());
    return 0;
}
