/**
 * @file
 * Section 3.2.3 reproduction: the share of dynamic VIS instructions that
 * are subword rearrangement / alignment overhead (pack, expand, merge,
 * align, GSR manipulation). The paper reports 41% on average.
 */

#include "bench_util.hh"
#include "common/table.hh"
#include "sim/machine.hh"

int
main()
{
    using namespace msim;
    using core::Job;
    using prog::Variant;

    const auto names = bench::paperNames();
    std::vector<Job> jobs;
    for (const auto &name : names)
        jobs.push_back({name, Variant::Vis, sim::outOfOrder4Way()});
    const auto results = bench::runAll(jobs, "vis-overhead");

    std::printf("=== Section 3.2.3: VIS rearrangement/alignment overhead"
                " ===\n\n");
    Table t({"benchmark", "vis-ops", "overhead-ops", "overhead%"});
    std::vector<double> fracs;
    for (size_t b = 0; b < names.size(); ++b) {
        const auto &r = results[b];
        t.addRow({names[b], std::to_string(r.visOps),
                  std::to_string(r.visOverheadOps),
                  Table::num(100.0 * r.visOverheadFrac())});
        if (r.visOps)
            fracs.push_back(r.visOverheadFrac());
    }
    std::printf("%s\n", t.render().c_str());
    double sum = 0;
    for (double f : fracs)
        sum += f;
    std::printf("average overhead: %.0f%%   [paper: 41%%]\n",
                100.0 * sum / static_cast<double>(fracs.size()));
    return 0;
}
