/**
 * @file
 * Section 4.1 reproduction: L1 cache size sweep (1K to 64K with the L2
 * fixed at 128K, VIS versions on the 4-way ooo machine).
 */

#include "bench_util.hh"
#include "common/table.hh"
#include "sim/machine.hh"

int
main()
{
    using namespace msim;
    using core::Job;
    using prog::Variant;

    const std::vector<u32> sizes = {1 << 10, 4 << 10, 16 << 10, 64 << 10};
    const auto names = bench::paperNames();

    std::vector<Job> jobs;
    for (const auto &name : names)
        for (u32 size : sizes)
            jobs.push_back({name, Variant::Vis, sim::withL1Size(size)});
    const auto results = bench::runAll(jobs, "l1-sweep");

    std::printf("=== Section 4.1: impact of L1 cache size (VIS, 4-way "
                "ooo, 128K L2) ===\n");
    std::printf("(execution time normalized to 1K L1 = 100)\n\n");

    std::vector<std::string> headers = {"benchmark"};
    for (u32 s : sizes)
        headers.push_back(std::to_string(s / 1024) + "K");
    headers.push_back("64K-benefit");
    headers.push_back("16K within");
    Table t(std::move(headers));

    for (size_t b = 0; b < names.size(); ++b) {
        const double base =
            static_cast<double>(results[b * sizes.size()].exec.cycles);
        std::vector<std::string> row = {names[b]};
        for (size_t s = 0; s < sizes.size(); ++s)
            row.push_back(Table::num(
                100.0 *
                static_cast<double>(
                    results[b * sizes.size() + s].exec.cycles) /
                base));
        const double t64 = static_cast<double>(
            results[b * sizes.size() + sizes.size() - 1].exec.cycles);
        const double t16 = static_cast<double>(
            results[b * sizes.size() + 2].exec.cycles);
        row.push_back(Table::num(base / t64, 2) + "X");
        row.push_back(Table::num(100.0 * (t16 / t64 - 1.0)) + "%");
        t.addRow(std::move(row));
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("paper: no impact on five kernels; 1.1X-1.3X elsewhere; "
                "4K-16K L1s come within 3%% of 64K (small table\n"
                "working sets: convolution/quantization/color-conversion"
                "/clipping tables).\n");

    // Self-measurement A/B: one benchmark's sweep, live (re-generate the
    // trace per config) vs recorded (capture once, replay per config),
    // single-threaded so the ratio is purely algorithmic.
    std::vector<Job> ab;
    for (u32 size : sizes)
        ab.push_back({"djpeg", Variant::Vis, sim::withL1Size(size)});
    bench::SelfMeasurement live, recorded;
    bench::runTimed(ab, live, 1, core::JobMode::Live);
    bench::runTimed(ab, recorded, 1, core::JobMode::Recorded);
    bench::writeBenchJson(
        "l1-sweep-djpeg-ab", recorded,
        {{"live_seconds", live.hostSeconds},
         {"recorded_seconds", recorded.hostSeconds},
         {"speedup_x", recorded.hostSeconds > 0.0
                           ? live.hostSeconds / recorded.hostSeconds
                           : 0.0}});
    return 0;
}
