/**
 * @file
 * Shared helpers for the figure/table reproduction harnesses.
 */

#ifndef MSIM_BENCH_BENCH_UTIL_HH_
#define MSIM_BENCH_BENCH_UTIL_HH_

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "common/simd.hh"
#include "core/experiment.hh"
#include "core/registry.hh"
#include "core/report.hh"
#include "obs/json.hh"
#include "obs/session.hh"

namespace msim::bench
{

/**
 * Wall-clock self-measurement of one runJobs batch, so the repo's own
 * simulation throughput is tracked across PRs (written as
 * BENCH_<name>.json next to the binary's working directory).
 */
struct SelfMeasurement
{
    double hostSeconds = 0.0;
    u64 jobs = 0;
    u64 simInstructions = 0;

    double
    instructionsPerSecond() const
    {
        return hostSeconds > 0.0
                   ? static_cast<double>(simInstructions) / hostSeconds
                   : 0.0;
    }

    /** Sweep-point throughput: simulated geometry points per second. */
    double
    pointsPerSecond() const
    {
        return hostSeconds > 0.0 ? static_cast<double>(jobs) / hostSeconds
                                 : 0.0;
    }
};

/** Run a batch under a wall-clock timer. */
inline std::vector<sim::RunResult>
runTimed(const std::vector<core::Job> &jobs, SelfMeasurement &meas,
         unsigned threads = 0, core::JobMode mode = core::JobMode::Auto)
{
    const auto t0 = std::chrono::steady_clock::now();
    auto results = core::runJobs(jobs, threads, mode);
    const auto t1 = std::chrono::steady_clock::now();
    meas.hostSeconds = std::chrono::duration<double>(t1 - t0).count();
    meas.jobs = jobs.size();
    meas.simInstructions = 0;
    for (const auto &r : results)
        meas.simInstructions += r.tbInstrs;
    return results;
}

/**
 * Host CPU model string ("model name" from /proc/cpuinfo on Linux,
 * "unknown" elsewhere) — recorded in every BENCH_*.json meta block so
 * committed throughput numbers carry the hardware they came from.
 */
inline std::string
hostCpuModel()
{
    std::string model = "unknown";
    if (std::FILE *f = std::fopen("/proc/cpuinfo", "r")) {
        char line[512];
        while (std::fgets(line, sizeof(line), f)) {
            const char *key = "model name";
            if (std::strncmp(line, key, std::strlen(key)) != 0)
                continue;
            const char *colon = std::strchr(line, ':');
            if (!colon)
                continue;
            model = colon + 1;
            while (!model.empty() &&
                   (model.front() == ' ' || model.front() == '\t'))
                model.erase(model.begin());
            while (!model.empty() &&
                   (model.back() == '\n' || model.back() == '\r'))
                model.pop_back();
            break;
        }
        std::fclose(f);
    }
    return model;
}

/**
 * Write BENCH_<name>.json: the standard self-measurement fields, a
 * meta block identifying the host (CPU model, detected and dispatched
 * host-SIMD level) plus any caller-provided extras (e.g. an A/B
 * comparison).
 */
inline void
writeBenchJson(const std::string &name, const SelfMeasurement &meas,
               const std::map<std::string, double> &extra = {})
{
    const std::string path = "BENCH_" + name + ".json";
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "[%s] cannot write %s\n", name.c_str(),
                     path.c_str());
        return;
    }
    // All BENCH_*.json go through the shared obs serializer; consumers
    // key off schema_version (obs::kSchemaVersion).
    obs::JsonWriter w(f);
    w.beginObject();
    w.field("schema_version", obs::kSchemaVersion);
    w.field("bench", name);
    w.field("host_seconds", meas.hostSeconds);
    w.field("jobs", meas.jobs);
    w.field("sim_instructions", meas.simInstructions);
    w.field("instructions_per_host_second", meas.instructionsPerSecond());
    w.field("points_per_second", meas.pointsPerSecond());
    w.key("meta");
    w.beginObject();
    w.field("host_cpu", hostCpuModel());
    w.field("simd_detected", simd::levelName(simd::detectedLevel()));
    w.field("simd_dispatched", simd::levelName(simd::activeLevel()));
    w.endObject();
    for (const auto &[key, value] : extra)
        w.field(key, value);
    w.endObject();
    w.newline();
    std::fclose(f);
    std::fprintf(stderr, "[%s] %.2fs host, %.0f sim-instructions/s -> %s\n",
                 name.c_str(), meas.hostSeconds,
                 meas.instructionsPerSecond(), path.c_str());
}

/** Run a batch with a stderr progress note and self-measurement. */
inline std::vector<sim::RunResult>
runAll(const std::vector<core::Job> &jobs, const char *what)
{
    std::fprintf(stderr, "[%s] running %zu simulations...\n", what,
                 jobs.size());
    SelfMeasurement meas;
    auto results = runTimed(jobs, meas);
    writeBenchJson(what, meas);
    std::fprintf(stderr, "[%s] done\n", what);
    return results;
}

/** Names of the 12 Table-1 benchmarks, in order. */
inline std::vector<std::string>
paperNames()
{
    std::vector<std::string> names;
    for (const auto *b : core::paperBenchmarks())
        names.push_back(b->name);
    return names;
}

/** Geometric mean. */
inline double
geomean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double x : xs)
        log_sum += std::log(x);
    return std::exp(log_sum / static_cast<double>(xs.size()));
}

} // namespace msim::bench

#endif // MSIM_BENCH_BENCH_UTIL_HH_
