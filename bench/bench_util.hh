/**
 * @file
 * Shared helpers for the figure/table reproduction harnesses.
 */

#ifndef MSIM_BENCH_BENCH_UTIL_HH_
#define MSIM_BENCH_BENCH_UTIL_HH_

#include <cmath>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "core/experiment.hh"
#include "core/registry.hh"
#include "core/report.hh"

namespace msim::bench
{

/** Run a batch with a stderr progress note. */
inline std::vector<sim::RunResult>
runAll(const std::vector<core::Job> &jobs, const char *what)
{
    std::fprintf(stderr, "[%s] running %zu simulations...\n", what,
                 jobs.size());
    auto results = core::runJobs(jobs);
    std::fprintf(stderr, "[%s] done\n", what);
    return results;
}

/** Names of the 12 Table-1 benchmarks, in order. */
inline std::vector<std::string>
paperNames()
{
    std::vector<std::string> names;
    for (const auto *b : core::paperBenchmarks())
        names.push_back(b->name);
    return names;
}

/** Geometric mean. */
inline double
geomean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double x : xs)
        log_sum += std::log(x);
    return std::exp(log_sum / static_cast<double>(xs.size()));
}

} // namespace msim::bench

#endif // MSIM_BENCH_BENCH_UTIL_HH_
