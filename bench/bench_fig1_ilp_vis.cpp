/**
 * @file
 * Figure 1 reproduction: normalized execution time of the 12 benchmarks
 * on {1-way in-order, 4-way in-order, 4-way out-of-order}, without and
 * with the VIS media ISA extensions, broken into Busy / FU stall /
 * L1 hit / L1 miss components (normalized to 1-way scalar = 100).
 *
 * Also prints the Section 3.1/3.2/3.3 summary statistics: ILP speedup
 * range, VIS speedup range, combined speedup, and the memory-bound
 * classification of Section 3.3.
 */

#include <cmath>

#include "bench_util.hh"
#include "sim/machine.hh"

int
main()
{
    using namespace msim;
    using bench::geomean;
    using core::Job;
    using prog::Variant;

    const std::vector<sim::MachineConfig> machines = {
        sim::inOrder1Way(), sim::inOrder4Way(), sim::outOfOrder4Way()};
    const auto names = bench::paperNames();

    std::vector<Job> jobs;
    for (const auto &name : names)
        for (Variant var : {Variant::Scalar, Variant::Vis})
            for (const auto &m : machines)
                jobs.push_back({name, var, m});
    const auto results = bench::runAll(jobs, "fig1");

    std::printf("=== Figure 1: performance of image and video benchmarks"
                " ===\n");
    std::printf("(normalized execution time; 1-way scalar = 100)\n\n");

    std::vector<double> ilp_speedups, vis_speedups, combined, mi_speedups;
    std::vector<std::string> memory_bound;

    for (size_t b = 0; b < names.size(); ++b) {
        const size_t base_idx = b * 6;
        const double base =
            static_cast<double>(results[base_idx].exec.cycles);
        std::vector<core::BreakdownBar> bars;
        for (unsigned v = 0; v < 2; ++v) {
            for (unsigned m = 0; m < 3; ++m) {
                const auto &r = results[base_idx + v * 3 + m];
                bars.push_back(core::makeBar(
                    machines[m].label + (v ? " +VIS" : ""), r, base));
            }
        }
        std::printf("%s\n",
                    core::renderBars(names[b], bars).c_str());

        const double t1 = static_cast<double>(results[base_idx].exec.cycles);
        const double t4 =
            static_cast<double>(results[base_idx + 1].exec.cycles);
        const double to =
            static_cast<double>(results[base_idx + 2].exec.cycles);
        const double tov =
            static_cast<double>(results[base_idx + 5].exec.cycles);
        ilp_speedups.push_back(t1 / to);
        mi_speedups.push_back(t1 / t4);
        vis_speedups.push_back(to / tov);
        combined.push_back(t1 / tov);

        const auto &rv = results[base_idx + 5].exec;
        const double mem_frac =
            rv.fracMemL1Hit() + rv.fracMemL1Miss();
        if (mem_frac > 0.5)
            memory_bound.push_back(names[b]);
        std::printf("  ILP speedup (ooo vs 1-way): %.2fX   "
                    "VIS speedup (on ooo): %.2fX   combined: %.2fX   "
                    "memory fraction (ooo+VIS): %.0f%%\n\n",
                    t1 / to, to / tov, t1 / tov, 100.0 * mem_frac);
    }

    auto minmax = [](const std::vector<double> &v) {
        double lo = v[0], hi = v[0];
        for (double x : v) {
            lo = std::min(lo, x);
            hi = std::max(hi, x);
        }
        return std::pair{lo, hi};
    };

    const auto [ilp_lo, ilp_hi] = minmax(ilp_speedups);
    const auto [mi_lo, mi_hi] = minmax(mi_speedups);
    const auto [vis_lo, vis_hi] = minmax(vis_speedups);
    const auto [all_lo, all_hi] = minmax(combined);

    std::printf("=== Summary (paper Section 3) ===\n");
    std::printf("multiple issue alone:        %.1fX - %.1fX (mean %.1fX)"
                "   [paper: 1.1X - 1.4X, avg 1.2X]\n",
                mi_lo, mi_hi, geomean(mi_speedups));
    std::printf("multiple + out-of-order:     %.1fX - %.1fX (mean %.1fX)"
                "   [paper: 2.3X - 4.2X, avg 3.1X]\n",
                ilp_lo, ilp_hi, geomean(ilp_speedups));
    std::printf("VIS on the ooo machine:      %.1fX - %.1fX (mean %.1fX)"
                "   [paper: 1.1X - 4.2X, avg 1.8X]\n",
                vis_lo, vis_hi, geomean(vis_speedups));
    std::printf("ILP + VIS combined:          %.1fX - %.1fX (mean %.1fX)"
                "   [paper: 3.5X - 18X, avg 5.5X]\n",
                all_lo, all_hi, geomean(combined));
    std::printf("memory-bound after ILP+VIS (>50%% memory stalls): ");
    for (const auto &n : memory_bound)
        std::printf("%s ", n.c_str());
    std::printf("\n  [paper: 5 of the image processing benchmarks]\n");
    return 0;
}
