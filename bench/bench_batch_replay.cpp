/**
 * @file
 * Before/after A/B of batched multi-config replay on the djpeg L1
 * sweep: the same recorded trace replayed once per point through
 * sequential sim::replayTrace (the PR 2 fast path) and once as a
 * single batched traversal through sim::replayTraceBatch. Both sides
 * include the one-time recording and run single-threaded, matching the
 * protocol of BENCH_mem_fastpath.json, so the ratio is purely the
 * traversal/decode amortization. Writes BENCH_batch_replay.json with a
 * per-benchmark breakdown (conv, dotprod, mpeg-dec ride along); the PR
 * target is speedup_x >= 1.5 on the djpeg aggregate with bit-identical
 * results (asserted here).
 *
 * `--smoke`: one tiny sweep, single repeat, identity assert only, no
 * JSON — a seconds-long CI leg that catches perf-path build/runtime
 * breaks without regenerating the committed numbers.
 */

#include <cstdlib>
#include <cstring>

#include "bench_util.hh"
#include "kernels/addition.hh"
#include "sim/machine.hh"
#include "sim/runner.hh"

namespace
{

using namespace msim;
using prog::Variant;

std::vector<sim::MachineConfig>
l1Sweep()
{
    std::vector<sim::MachineConfig> machines;
    for (u32 size : {1u << 10, 2u << 10, 4u << 10, 8u << 10, 16u << 10,
                     32u << 10, 64u << 10})
        machines.push_back(sim::withL1Size(size));
    return machines;
}

sim::Generator
generatorFor(const std::string &name, Variant variant)
{
    const core::Benchmark &bench = core::findBenchmark(name);
    return [&bench, variant](prog::TraceBuilder &tb) {
        bench.generate(tb, variant);
    };
}

struct AbResult
{
    bench::SelfMeasurement seq;
    bench::SelfMeasurement batch;
    bool identical = true;

    double
    speedup() const
    {
        return batch.hostSeconds > 0.0
                   ? seq.hostSeconds / batch.hostSeconds
                   : 0.0;
    }
};

/**
 * One full A/B: per repeat, each side performs its complete measured
 * pass (record once + replay every point) and the fastest wall time
 * per side wins; both sides' kept results are compared counter-exactly.
 */
AbResult
runAb(const sim::Generator &gen,
      const std::vector<sim::MachineConfig> &machines, int repeats)
{
    AbResult ab;
    std::vector<sim::RunResult> seqResults, batchResults;
    const sim::MachineConfig base = sim::outOfOrder4Way();

    for (int rep = 0; rep < repeats; ++rep) {
        const auto t0 = std::chrono::steady_clock::now();
        const auto trace =
            sim::recordTrace(gen, base.skewArrays, base.visFeatures);
        std::vector<sim::RunResult> rs;
        rs.reserve(machines.size());
        for (const auto &m : machines)
            rs.push_back(sim::replayTrace(trace, m));
        const auto t1 = std::chrono::steady_clock::now();
        bench::SelfMeasurement m;
        m.hostSeconds = std::chrono::duration<double>(t1 - t0).count();
        m.jobs = machines.size();
        for (const auto &r : rs)
            m.simInstructions += r.tbInstrs;
        if (rep == 0 || m.hostSeconds < ab.seq.hostSeconds) {
            ab.seq = m;
            seqResults = std::move(rs);
        }
    }

    for (int rep = 0; rep < repeats; ++rep) {
        const auto t0 = std::chrono::steady_clock::now();
        const auto trace =
            sim::recordTrace(gen, base.skewArrays, base.visFeatures);
        auto rs = sim::replayTraceBatch(trace, machines);
        const auto t1 = std::chrono::steady_clock::now();
        bench::SelfMeasurement m;
        m.hostSeconds = std::chrono::duration<double>(t1 - t0).count();
        m.jobs = machines.size();
        for (const auto &r : rs)
            m.simInstructions += r.tbInstrs;
        if (rep == 0 || m.hostSeconds < ab.batch.hostSeconds) {
            ab.batch = m;
            batchResults = std::move(rs);
        }
    }

    for (size_t i = 0; i < machines.size(); ++i) {
        if (seqResults[i].exec.cycles != batchResults[i].exec.cycles ||
            seqResults[i].exec.busy != batchResults[i].exec.busy ||
            seqResults[i].exec.mispredicts !=
                batchResults[i].exec.mispredicts ||
            seqResults[i].l1.misses != batchResults[i].l1.misses ||
            seqResults[i].l2.misses != batchResults[i].l2.misses) {
            std::fprintf(stderr,
                         "[batch-replay] MISMATCH at point %zu: seq %llu "
                         "cycles vs batch %llu cycles\n",
                         i,
                         static_cast<unsigned long long>(
                             seqResults[i].exec.cycles),
                         static_cast<unsigned long long>(
                             batchResults[i].exec.cycles));
            ab.identical = false;
        }
    }
    return ab;
}

} // namespace

int
main(int argc, char **argv)
{
    const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;

    if (smoke) {
        // Tiny sweep, one repeat: proves the batch path still builds,
        // runs, and matches sequential replay, in seconds.
        const sim::Generator gen = [](prog::TraceBuilder &tb) {
            kernels::runAddition(tb, Variant::Vis, 256, 32, 2);
        };
        std::vector<sim::MachineConfig> machines = {
            sim::outOfOrder4Way(), sim::withL1Size(1 << 10),
            sim::withL1Size(4 << 10)};
        const AbResult ab = runAb(gen, machines, 1);
        if (!ab.identical)
            return EXIT_FAILURE;
        std::printf("[batch-replay] smoke ok: %zu points, batch %.3fs, "
                    "seq %.3fs\n",
                    machines.size(), ab.batch.hostSeconds,
                    ab.seq.hostSeconds);
        return 0;
    }

    constexpr int kRepeats = 3;
    const auto machines = l1Sweep();

    std::fprintf(stderr,
                 "[batch-replay] djpeg L1 sweep, %zu points, 1 thread, "
                 "best of %d\n",
                 machines.size(), kRepeats);
    const AbResult main_ab =
        runAb(generatorFor("djpeg", Variant::Vis), machines, kRepeats);

    // Per-benchmark breakdown: the ride-along workloads cover a short
    // kernel, a long kernel, and the other codec family.
    std::map<std::string, double> extra = {
        {"seq_seconds", main_ab.seq.hostSeconds},
        {"batch_seconds", main_ab.batch.hostSeconds},
        {"seq_points_per_second", main_ab.seq.pointsPerSecond()},
        {"batch_points_per_second", main_ab.batch.pointsPerSecond()},
        {"speedup_x", main_ab.speedup()}};
    bool all_identical = main_ab.identical;
    for (const char *name : {"conv", "dotprod", "mpeg-dec"}) {
        std::fprintf(stderr, "[batch-replay] breakdown: %s\n", name);
        const AbResult ab =
            runAb(generatorFor(name, Variant::Vis), machines, kRepeats);
        all_identical = all_identical && ab.identical;
        std::string key(name);
        for (char &c : key)
            if (c == '-')
                c = '_';
        extra[key + "_seq_pps"] = ab.seq.pointsPerSecond();
        extra[key + "_batch_pps"] = ab.batch.pointsPerSecond();
        extra[key + "_speedup_x"] = ab.speedup();
    }

    if (!all_identical)
        return EXIT_FAILURE;

    bench::writeBenchJson("batch_replay", main_ab.batch, extra);
    std::printf("=== Batched replay A/B (djpeg L1 sweep, recorded, "
                "1 thread) ===\n");
    std::printf("sequential: %6.2fs  (%.2f points/s)\n",
                main_ab.seq.hostSeconds, main_ab.seq.pointsPerSecond());
    std::printf("batched:    %6.2fs  (%.2f points/s)\n",
                main_ab.batch.hostSeconds,
                main_ab.batch.pointsPerSecond());
    std::printf("speedup:    %6.2fx  (target >= 1.5x)\n",
                main_ab.speedup());
    std::printf("results bit-identical across all %zu points\n",
                machines.size());
    return 0;
}
