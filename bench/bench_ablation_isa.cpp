/**
 * @file
 * Cross-ISA ablation (paper Section 2.2.2): the media ISA extensions of
 * the era differ mainly in the number and type of instructions. This
 * bench quantifies two of the differences the paper calls out on the
 * benchmarks they matter for:
 *
 *  - a direct 16x16 multiply + packed multiply-add (MMX) vs the 3-op
 *    VIS emulation — dotprod and the DCT-heavy codecs;
 *  - the VIS-unique pdist instruction vs a minimal MVI-style ISA that
 *    must do motion-estimation SAD with scalar code — mpeg-enc.
 */

#include "bench_util.hh"
#include "common/table.hh"
#include "sim/machine.hh"

int
main()
{
    using namespace msim;
    using core::Job;
    using prog::Variant;

    sim::MachineConfig vis_like = sim::outOfOrder4Way();
    sim::MachineConfig mmx_like = sim::outOfOrder4Way();
    mmx_like.visFeatures.direct16x16Mul = true;
    mmx_like.visFeatures.hasPmaddwd = true;
    sim::MachineConfig mvi_like = sim::outOfOrder4Way();
    mvi_like.visFeatures.hasPdist = false;

    const std::vector<std::string> names = {"dotprod", "cjpeg",
                                            "djpeg", "mpeg-enc"};
    std::vector<Job> jobs;
    for (const auto &name : names) {
        jobs.push_back({name, Variant::Vis, vis_like});
        jobs.push_back({name, Variant::Vis, mmx_like});
        jobs.push_back({name, Variant::Vis, mvi_like});
    }
    const auto results = bench::runAll(jobs, "isa-ablation");

    std::printf("=== Section 2.2.2 ablation: media-ISA feature "
                "differences (4-way ooo) ===\n\n");
    Table t({"benchmark", "isa", "instrs", "cycles", "vs-VIS"});
    for (size_t b = 0; b < names.size(); ++b) {
        const char *isas[3] = {"VIS", "MMX-like", "MVI-like"};
        const double base =
            static_cast<double>(results[3 * b].exec.cycles);
        for (unsigned i = 0; i < 3; ++i) {
            const auto &r = results[3 * b + i];
            t.addRow({names[b], isas[i], std::to_string(r.tbInstrs),
                      std::to_string(r.exec.cycles),
                      Table::num(base / double(r.exec.cycles), 2) + "X"});
        }
    }
    std::printf("%s\n", t.render().c_str());
    std::printf(
        "paper context: \"the various ISA extensions mainly differ in "
        "the number, types, and latencies of the individual\n"
        "instructions (e.g., MMX implements direct support for 16x16 "
        "multiply)\"; pdist is unique to VIS and collapses ~48\n"
        "instructions to one, while MVI provides only 13 instructions "
        "total.\n");
    return 0;
}
