/**
 * @file
 * Future-work extension (paper Section 6): multiprocessing. The paper
 * predicts that optimizations which improve computation time, such as
 * multiprocessing, "are likely to expose the memory system bottleneck
 * yet again". This bench row-slices two representative workloads across
 * 1/2/4/8 cores sharing one L2 and one 4-bank memory:
 *
 *  - conv (compute-bound after VIS): should scale close to linearly;
 *  - addition (memory-bound after VIS): should hit the shared-memory
 *    bandwidth wall, confirming the paper's prediction.
 */

#include "bench_util.hh"
#include "common/table.hh"
#include "kernels/addition.hh"
#include "kernels/conv.hh"
#include "sim/multicore.hh"

int
main()
{
    using namespace msim;
    using prog::TraceBuilder;
    using prog::Variant;

    const unsigned width = 320, height = 192;
    struct Workload
    {
        const char *name;
        std::function<sim::Generator(unsigned rows)> makeSlice;
    };
    const Workload workloads[] = {
        {"conv (compute-bound)",
         [&](unsigned rows) {
             return [rows, width](TraceBuilder &tb) {
                 kernels::runConv(tb, Variant::Vis, width, rows);
             };
         }},
        {"addition (memory-bound)",
         [&](unsigned rows) {
             return [rows, width](TraceBuilder &tb) {
                 kernels::runAddition(tb, Variant::Vis, width, rows, 3);
             };
         }},
    };

    std::printf("=== Future work (Section 6): multiprocessor scaling, "
                "shared L2 + 4-bank memory ===\n\n");
    for (const Workload &wl : workloads) {
        Table t({"cores", "makespan", "speedup", "efficiency",
                 "shared-L2 miss%", "dram-lines"});
        double base = 0;
        for (unsigned n : {1u, 2u, 4u, 8u}) {
            std::vector<sim::Generator> gens;
            for (unsigned c = 0; c < n; ++c)
                gens.push_back(wl.makeSlice(height / n));
            const auto r =
                sim::runTraceMulti(gens, sim::outOfOrder4Way());
            if (base == 0)
                base = static_cast<double>(r.makespan);
            const double speedup = base / double(r.makespan);
            t.addRow({std::to_string(n), std::to_string(r.makespan),
                      Table::num(speedup, 2) + "X",
                      Table::num(100.0 * speedup / n) + "%",
                      Table::num(100.0 * r.l2.missRate),
                      std::to_string(r.dramReads + r.dramWrites)});
        }
        std::printf("%s\n%s\n", wl.name, t.render().c_str());
    }
    std::printf("paper (Section 6): compute-side optimizations such as "
                "multiprocessing are expected to re-expose the\n"
                "memory bottleneck; the memory-bound kernel's scaling "
                "should flatten well before 8 cores.\n");
    return 0;
}
