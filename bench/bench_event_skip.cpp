/**
 * @file
 * In-binary A/B of event-driven cycle skipping on the djpeg L1 sweep:
 * the same recorded trace replayed through sim::replayTraceBatch twice,
 * once with skipping forced off (sim::withEventSkip(m, false) — the
 * per-cycle loop with the PR 4 witness fast-forward) and once with it
 * forced on. Single-threaded, recording included, best-of-N per side —
 * the exact protocol of BENCH_batch_replay.json — so skip-on
 * points_per_second is directly comparable with the committed batch
 * numbers. Results must be bit-identical across the two sides before
 * anything is reported; any divergence fails the binary.
 *
 * Writes BENCH_event_skip.json (full mode) or
 * BENCH_event_skip_smoke.json (`--smoke`: a tiny addition-kernel sweep,
 * seconds long). CI runs the smoke leg and diffs the fresh JSON against
 * the committed baseline with tools/bench_compare.py, failing on >20%
 * points_per_second regression.
 */

#include <cstdlib>
#include <cstring>

#include "bench_util.hh"
#include "kernels/addition.hh"
#include "sim/machine.hh"
#include "sim/runner.hh"

namespace
{

using namespace msim;
using prog::Variant;

std::vector<sim::MachineConfig>
l1Sweep()
{
    std::vector<sim::MachineConfig> machines;
    for (u32 size : {1u << 10, 2u << 10, 4u << 10, 8u << 10, 16u << 10,
                     32u << 10, 64u << 10})
        machines.push_back(sim::withL1Size(size));
    return machines;
}

sim::Generator
generatorFor(const std::string &name, Variant variant)
{
    const core::Benchmark &bench = core::findBenchmark(name);
    return [&bench, variant](prog::TraceBuilder &tb) {
        bench.generate(tb, variant);
    };
}

struct AbResult
{
    bench::SelfMeasurement off; ///< skip forced off
    bench::SelfMeasurement on;  ///< skip forced on
    bool identical = true;

    double
    speedup() const
    {
        return on.hostSeconds > 0.0 ? off.hostSeconds / on.hostSeconds
                                    : 0.0;
    }
};

/** One measured pass: record the trace, batch-replay every point. */
bench::SelfMeasurement
measureOnce(const sim::Generator &gen,
            const std::vector<sim::MachineConfig> &machines,
            std::vector<sim::RunResult> &results)
{
    const sim::MachineConfig base = sim::outOfOrder4Way();
    const auto t0 = std::chrono::steady_clock::now();
    const auto trace =
        sim::recordTrace(gen, base.skewArrays, base.visFeatures);
    results = sim::replayTraceBatch(trace, machines);
    const auto t1 = std::chrono::steady_clock::now();
    bench::SelfMeasurement m;
    m.hostSeconds = std::chrono::duration<double>(t1 - t0).count();
    m.jobs = machines.size();
    for (const auto &r : results)
        m.simInstructions += r.tbInstrs;
    return m;
}

AbResult
runAb(const sim::Generator &gen,
      const std::vector<sim::MachineConfig> &machines, int repeats)
{
    AbResult ab;
    std::vector<sim::MachineConfig> offMachines, onMachines;
    for (const auto &m : machines) {
        offMachines.push_back(sim::withEventSkip(m, false));
        onMachines.push_back(sim::withEventSkip(m, true));
    }

    std::vector<sim::RunResult> offResults, onResults;
    for (int rep = 0; rep < repeats; ++rep) {
        std::vector<sim::RunResult> rs;
        const auto m = measureOnce(gen, offMachines, rs);
        if (rep == 0 || m.hostSeconds < ab.off.hostSeconds) {
            ab.off = m;
            offResults = std::move(rs);
        }
    }
    for (int rep = 0; rep < repeats; ++rep) {
        std::vector<sim::RunResult> rs;
        const auto m = measureOnce(gen, onMachines, rs);
        if (rep == 0 || m.hostSeconds < ab.on.hostSeconds) {
            ab.on = m;
            onResults = std::move(rs);
        }
    }

    for (size_t i = 0; i < machines.size(); ++i) {
        const auto &a = offResults[i];
        const auto &b = onResults[i];
        if (a.exec.cycles != b.exec.cycles ||
            a.exec.busy != b.exec.busy ||
            a.exec.fuStall != b.exec.fuStall ||
            a.exec.memL1Hit != b.exec.memL1Hit ||
            a.exec.memL1Miss != b.exec.memL1Miss ||
            a.exec.mispredicts != b.exec.mispredicts ||
            a.l1.misses != b.l1.misses || a.l2.misses != b.l2.misses) {
            std::fprintf(
                stderr,
                "[event-skip] MISMATCH at point %zu: off %llu cycles "
                "(busy %.2f) vs on %llu cycles (busy %.2f)\n",
                i, static_cast<unsigned long long>(a.exec.cycles),
                a.exec.busy, static_cast<unsigned long long>(b.exec.cycles),
                b.exec.busy);
            ab.identical = false;
        }
    }
    return ab;
}

} // namespace

int
main(int argc, char **argv)
{
    const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;

    if (smoke) {
        // A sweep big enough that each measured pass takes a sizable
        // fraction of a second: the committed smoke baseline has to be
        // stable under the 20% CI comparison gate, and best-of-3 on a
        // tens-of-milliseconds run is not.
        const sim::Generator gen = [](prog::TraceBuilder &tb) {
            kernels::runAddition(tb, Variant::Vis, 1024, 256, 3);
        };
        const auto machines = l1Sweep();
        const AbResult ab = runAb(gen, machines, 3);
        if (!ab.identical)
            return EXIT_FAILURE;
        bench::writeBenchJson(
            "event_skip_smoke", ab.on,
            {{"skip_off_seconds", ab.off.hostSeconds},
             {"skip_on_seconds", ab.on.hostSeconds},
             {"speedup_x", ab.speedup()}});
        std::printf("[event-skip] smoke ok: %zu points, on %.3fs, "
                    "off %.3fs, identical\n",
                    machines.size(), ab.on.hostSeconds,
                    ab.off.hostSeconds);
        return 0;
    }

    constexpr int kRepeats = 3;
    const auto machines = l1Sweep();

    std::fprintf(stderr,
                 "[event-skip] djpeg L1 sweep, %zu points, 1 thread, "
                 "best of %d\n",
                 machines.size(), kRepeats);
    const AbResult main_ab =
        runAb(generatorFor("djpeg", Variant::Vis), machines, kRepeats);

    std::map<std::string, double> extra = {
        {"skip_off_seconds", main_ab.off.hostSeconds},
        {"skip_on_seconds", main_ab.on.hostSeconds},
        {"skip_off_points_per_second", main_ab.off.pointsPerSecond()},
        {"skip_on_points_per_second", main_ab.on.pointsPerSecond()},
        {"speedup_x", main_ab.speedup()}};
    bool all_identical = main_ab.identical;
    for (const char *name : {"conv", "dotprod", "mpeg-dec"}) {
        std::fprintf(stderr, "[event-skip] breakdown: %s\n", name);
        const AbResult ab =
            runAb(generatorFor(name, Variant::Vis), machines, kRepeats);
        all_identical = all_identical && ab.identical;
        std::string key(name);
        for (char &c : key)
            if (c == '-')
                c = '_';
        extra[key + "_off_pps"] = ab.off.pointsPerSecond();
        extra[key + "_on_pps"] = ab.on.pointsPerSecond();
        extra[key + "_speedup_x"] = ab.speedup();
    }

    if (!all_identical)
        return EXIT_FAILURE;

    bench::writeBenchJson("event_skip", main_ab.on, extra);
    std::printf("=== Event-skip A/B (djpeg L1 sweep, batched, "
                "1 thread) ===\n");
    std::printf("skip off: %6.2fs  (%.2f points/s)\n",
                main_ab.off.hostSeconds, main_ab.off.pointsPerSecond());
    std::printf("skip on:  %6.2fs  (%.2f points/s)\n",
                main_ab.on.hostSeconds, main_ab.on.pointsPerSecond());
    std::printf("speedup:  %6.2fx\n", main_ab.speedup());
    std::printf("results bit-identical across all %zu points\n",
                machines.size());
    return 0;
}
