/**
 * @file
 * Three-way A/B of the batched memory layer on the djpeg L1 sweep: the
 * same recorded trace replayed (a) sequentially — one sim::replayTrace
 * per point with a private Hierarchy each — (b) through
 * sim::replayTraceBatch with the batched memory layer forced off
 * (mem::ScopedBatchMem(false): the PR 7 lockstep baseline, private
 * hierarchies under one traversal), and (c) batched with
 * mem::BatchMemory forced on (shared line columns + lane-major tag
 * arenas). Single-threaded, recording included, best-of-N per side —
 * the exact protocol of BENCH_simd_lanes.json — so the three sides are
 * directly comparable with the committed lane-stepping numbers.
 * Results must be bit-identical across the three sides before anything
 * is reported; any divergence fails the binary.
 *
 * Writes BENCH_mem_batch.json (full mode) or
 * BENCH_mem_batch_smoke.json (`--smoke`: a tiny addition-kernel sweep,
 * seconds long). CI runs the smoke leg and diffs the fresh JSON
 * against the committed baseline with tools/bench_compare.py. The
 * isolated kernel costs (shrU64Col, eqU64Bitmap probe) are measured in
 * bench_micro (BM_MemBatch* entries).
 */

#include <cstdlib>
#include <cstring>

#include "bench_util.hh"
#include "kernels/addition.hh"
#include "mem/batch.hh"
#include "sim/machine.hh"
#include "sim/runner.hh"

namespace
{

using namespace msim;
using prog::Variant;

std::vector<sim::MachineConfig>
l1Sweep()
{
    std::vector<sim::MachineConfig> machines;
    for (u32 size : {1u << 10, 2u << 10, 4u << 10, 8u << 10, 16u << 10,
                     32u << 10, 64u << 10})
        machines.push_back(sim::withL1Size(size));
    return machines;
}

sim::Generator
generatorFor(const std::string &name, Variant variant)
{
    const core::Benchmark &bench = core::findBenchmark(name);
    return [&bench, variant](prog::TraceBuilder &tb) {
        bench.generate(tb, variant);
    };
}

/** How one measured pass drives the sweep. */
enum class Side
{
    Sequential, ///< one replayTrace per point, private hierarchies
    BatchOff,   ///< replayTraceBatch, batched memory layer disabled
    BatchOn,    ///< replayTraceBatch, mem::BatchMemory serving lanes
};

struct AbResult
{
    bench::SelfMeasurement seq;
    bench::SelfMeasurement off;
    bench::SelfMeasurement on;
    bool identical = true;

    double
    onOverSeq() const
    {
        return on.hostSeconds > 0.0 ? seq.hostSeconds / on.hostSeconds
                                    : 0.0;
    }

    double
    onOverOff() const
    {
        return on.hostSeconds > 0.0 ? off.hostSeconds / on.hostSeconds
                                    : 0.0;
    }
};

/** One measured pass: record the trace, replay every point one way. */
bench::SelfMeasurement
measureOnce(const sim::Generator &gen,
            const std::vector<sim::MachineConfig> &machines, Side side,
            std::vector<sim::RunResult> &results)
{
    const mem::ScopedBatchMem guard(side == Side::BatchOn);
    const sim::MachineConfig base = sim::outOfOrder4Way();
    const auto t0 = std::chrono::steady_clock::now();
    const auto trace =
        sim::recordTrace(gen, base.skewArrays, base.visFeatures);
    if (side == Side::Sequential) {
        results.clear();
        results.reserve(machines.size());
        for (const auto &m : machines)
            results.push_back(sim::replayTrace(trace, m));
    } else {
        results = sim::replayTraceBatch(trace, machines);
    }
    const auto t1 = std::chrono::steady_clock::now();
    bench::SelfMeasurement m;
    m.hostSeconds = std::chrono::duration<double>(t1 - t0).count();
    m.jobs = machines.size();
    for (const auto &r : results)
        m.simInstructions += r.tbInstrs;
    return m;
}

bench::SelfMeasurement
bestOf(const sim::Generator &gen,
       const std::vector<sim::MachineConfig> &machines, Side side,
       int repeats, std::vector<sim::RunResult> &best)
{
    bench::SelfMeasurement out;
    for (int rep = 0; rep < repeats; ++rep) {
        std::vector<sim::RunResult> rs;
        const auto m = measureOnce(gen, machines, side, rs);
        if (rep == 0 || m.hostSeconds < out.hostSeconds) {
            out = m;
            best = std::move(rs);
        }
    }
    return out;
}

bool
identicalResults(const sim::RunResult &a, const sim::RunResult &b)
{
    return a.exec.cycles == b.exec.cycles && a.exec.busy == b.exec.busy &&
           a.exec.fuStall == b.exec.fuStall &&
           a.exec.memL1Hit == b.exec.memL1Hit &&
           a.exec.memL1Miss == b.exec.memL1Miss &&
           a.exec.mispredicts == b.exec.mispredicts &&
           a.l1.misses == b.l1.misses && a.l1.hits == b.l1.hits &&
           a.l1.writebacks == b.l1.writebacks &&
           a.l1.combined == b.l1.combined &&
           a.l1.blocked == b.l1.blocked && a.l2.misses == b.l2.misses &&
           a.l2.hits == b.l2.hits && a.l2.writebacks == b.l2.writebacks;
}

AbResult
runAb(const sim::Generator &gen,
      const std::vector<sim::MachineConfig> &machines, int repeats)
{
    AbResult ab;
    std::vector<sim::RunResult> seqR, offR, onR;
    ab.seq = bestOf(gen, machines, Side::Sequential, repeats, seqR);
    ab.off = bestOf(gen, machines, Side::BatchOff, repeats, offR);
    ab.on = bestOf(gen, machines, Side::BatchOn, repeats, onR);

    for (size_t i = 0; i < machines.size(); ++i) {
        if (!identicalResults(seqR[i], offR[i]) ||
            !identicalResults(seqR[i], onR[i])) {
            std::fprintf(
                stderr,
                "[mem-batch] MISMATCH at point %zu: seq %llu cycles vs "
                "off %llu vs on %llu\n",
                i, static_cast<unsigned long long>(seqR[i].exec.cycles),
                static_cast<unsigned long long>(offR[i].exec.cycles),
                static_cast<unsigned long long>(onR[i].exec.cycles));
            ab.identical = false;
        }
    }
    return ab;
}

} // namespace

int
main(int argc, char **argv)
{
    const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
    std::fprintf(stderr, "[mem-batch] host simd: detected %s\n",
                 simd::levelName(simd::detectedLevel()));

    if (smoke) {
        // Big enough that each measured pass takes a sizable fraction
        // of a second: the committed smoke baseline has to be stable
        // under the 20% CI comparison gate.
        const sim::Generator gen = [](prog::TraceBuilder &tb) {
            kernels::runAddition(tb, Variant::Vis, 1024, 256, 3);
        };
        const auto machines = l1Sweep();
        const AbResult ab = runAb(gen, machines, 3);
        if (!ab.identical)
            return EXIT_FAILURE;
        bench::writeBenchJson(
            "mem_batch_smoke", ab.on,
            {{"seq_seconds", ab.seq.hostSeconds},
             {"off_seconds", ab.off.hostSeconds},
             {"on_seconds", ab.on.hostSeconds},
             {"on_over_seq_speedup_x", ab.onOverSeq()},
             {"on_over_off_speedup_x", ab.onOverOff()}});
        std::printf("[mem-batch] smoke ok: %zu points, seq %.3fs, "
                    "off %.3fs, on %.3fs, identical\n",
                    machines.size(), ab.seq.hostSeconds,
                    ab.off.hostSeconds, ab.on.hostSeconds);
        return 0;
    }

    constexpr int kRepeats = 3;
    const auto machines = l1Sweep();

    std::fprintf(stderr,
                 "[mem-batch] djpeg L1 sweep, %zu points, 1 thread, "
                 "best of %d\n",
                 machines.size(), kRepeats);
    const AbResult main_ab =
        runAb(generatorFor("djpeg", Variant::Vis), machines, kRepeats);

    std::map<std::string, double> extra = {
        {"seq_seconds", main_ab.seq.hostSeconds},
        {"off_seconds", main_ab.off.hostSeconds},
        {"on_seconds", main_ab.on.hostSeconds},
        {"seq_points_per_second", main_ab.seq.pointsPerSecond()},
        {"off_points_per_second", main_ab.off.pointsPerSecond()},
        {"on_points_per_second", main_ab.on.pointsPerSecond()},
        {"on_over_seq_speedup_x", main_ab.onOverSeq()},
        {"on_over_off_speedup_x", main_ab.onOverOff()}};
    bool all_identical = main_ab.identical;
    for (const char *name : {"conv", "dotprod", "mpeg-dec"}) {
        std::fprintf(stderr, "[mem-batch] breakdown: %s\n", name);
        const AbResult ab =
            runAb(generatorFor(name, Variant::Vis), machines, kRepeats);
        all_identical = all_identical && ab.identical;
        std::string key(name);
        for (char &c : key)
            if (c == '-')
                c = '_';
        extra[key + "_seq_pps"] = ab.seq.pointsPerSecond();
        extra[key + "_on_pps"] = ab.on.pointsPerSecond();
        extra[key + "_on_over_seq_speedup_x"] = ab.onOverSeq();
        extra[key + "_on_over_off_speedup_x"] = ab.onOverOff();
    }

    if (!all_identical)
        return EXIT_FAILURE;

    bench::writeBenchJson("mem_batch", main_ab.on, extra);
    std::printf("=== Batched memory layer A/B (djpeg L1 sweep, "
                "1 thread) ===\n");
    std::printf("sequential:      %6.2fs  (%.2f points/s)\n",
                main_ab.seq.hostSeconds, main_ab.seq.pointsPerSecond());
    std::printf("batch, mem off:  %6.2fs  (%.2f points/s)\n",
                main_ab.off.hostSeconds, main_ab.off.pointsPerSecond());
    std::printf("batch, mem on:   %6.2fs  (%.2f points/s)\n",
                main_ab.on.hostSeconds, main_ab.on.pointsPerSecond());
    std::printf("on over seq: %6.2fx\n", main_ab.onOverSeq());
    std::printf("on over off: %6.2fx\n", main_ab.onOverOff());
    std::printf("results bit-identical across all %zu points x 3 "
                "sides\n",
                machines.size());
    return 0;
}
