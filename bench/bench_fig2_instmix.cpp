/**
 * @file
 * Figure 2 reproduction: dynamic (retired) instruction count of each
 * benchmark without and with VIS on the 4-way out-of-order machine,
 * broken into FU / Branch / Memory / VIS categories and normalized to
 * the base (no-VIS) count = 100.
 */

#include "bench_util.hh"
#include "common/table.hh"
#include "sim/machine.hh"

int
main()
{
    using namespace msim;
    using core::Job;
    using prog::Variant;

    const auto names = bench::paperNames();
    std::vector<Job> jobs;
    for (const auto &name : names)
        for (Variant var : {Variant::Scalar, Variant::Vis})
            jobs.push_back({name, var, sim::outOfOrder4Way()});
    const auto results = bench::runAll(jobs, "fig2");

    std::printf("=== Figure 2: impact of VIS on dynamic (retired) "
                "instruction count ===\n");
    std::printf("(components normalized to the base count = 100)\n\n");

    Table t({"benchmark", "config", "total", "fu", "branch", "memory",
             "vis"});
    for (size_t b = 0; b < names.size(); ++b) {
        const auto &base = results[2 * b].exec;
        const auto &vis = results[2 * b + 1].exec;
        const double scale = 100.0 / static_cast<double>(base.retired);
        auto row = [&](const char *cfg, const cpu::ExecStats &e) {
            t.addRow({names[b], cfg,
                      Table::num(scale * double(e.retired)),
                      Table::num(scale * double(e.mixFu)),
                      Table::num(scale * double(e.mixBranch)),
                      Table::num(scale * double(e.mixMemory)),
                      Table::num(scale * double(e.mixVis))});
        };
        row("base", base);
        row("VIS", vis);
    }
    std::printf("%s\n", t.render().c_str());

    std::printf("paper reference (VIS total as %% of base): addition 26, "
                "blend 18, conv 25, dotprod 88, scaling 18, thresh 31,\n"
                "cjpeg 86, djpeg 66, cjpeg-np 67, djpeg-np 58, "
                "mpeg-enc 33, mpeg-dec 66\n");
    return 0;
}
