/**
 * @file
 * Before/after A/B of the memory-hierarchy fast path on the djpeg L1
 * sweep: the same recorded trace replayed through the preserved
 * pre-optimization models (RefCache + RefReplayEngine) and through the
 * fast models (flat-tag Cache + lane-driven ReplayEngine). Both runs
 * are single-threaded on the recorded path, so the ratio is purely
 * algorithmic. Writes BENCH_mem_fastpath.json; the PR target is
 * speedup_x >= 1.5 with bit-identical results (also asserted here).
 */

#include <cstdlib>

#include "bench_util.hh"
#include "sim/machine.hh"

int
main()
{
    using namespace msim;
    using core::Job;
    using prog::Variant;

    constexpr int kRepeats = 3;
    const std::vector<u32> sizes = {1 << 10, 2 << 10,  4 << 10, 8 << 10,
                                    16 << 10, 32 << 10, 64 << 10};

    std::vector<Job> refJobs, fastJobs;
    for (u32 size : sizes) {
        refJobs.push_back(
            {"djpeg", Variant::Vis, sim::asReference(sim::withL1Size(size))});
        fastJobs.push_back({"djpeg", Variant::Vis, sim::withL1Size(size)});
    }

    std::fprintf(stderr, "[mem-fastpath] djpeg L1 sweep, %zu points, "
                 "recorded path, 1 thread, best of %d\n", sizes.size(),
                 kRepeats);
    // Best-of-N per side: each run is a complete record+replay pass and
    // produces identical results, so the fastest wall time is the best
    // estimate of the algorithmic cost (the slower ones measure host
    // scheduling noise).
    bench::SelfMeasurement ref, fast;
    std::vector<sim::RunResult> refResults, fastResults;
    for (int rep = 0; rep < kRepeats; ++rep) {
        bench::SelfMeasurement m;
        auto res = bench::runTimed(refJobs, m, 1, core::JobMode::Recorded);
        if (rep == 0 || m.hostSeconds < ref.hostSeconds) {
            ref = m;
            refResults = std::move(res);
        }
    }
    for (int rep = 0; rep < kRepeats; ++rep) {
        bench::SelfMeasurement m;
        auto res = bench::runTimed(fastJobs, m, 1, core::JobMode::Recorded);
        if (rep == 0 || m.hostSeconds < fast.hostSeconds) {
            fast = m;
            fastResults = std::move(res);
        }
    }

    // The A/B is only meaningful if both paths simulate the same thing.
    for (size_t i = 0; i < sizes.size(); ++i) {
        if (refResults[i].exec.cycles != fastResults[i].exec.cycles ||
            refResults[i].l1.misses != fastResults[i].l1.misses) {
            std::fprintf(stderr,
                         "[mem-fastpath] MISMATCH at point %zu: "
                         "ref %llu cycles vs fast %llu cycles\n",
                         i,
                         static_cast<unsigned long long>(
                             refResults[i].exec.cycles),
                         static_cast<unsigned long long>(
                             fastResults[i].exec.cycles));
            return EXIT_FAILURE;
        }
    }

    const double speedup =
        fast.hostSeconds > 0.0 ? ref.hostSeconds / fast.hostSeconds : 0.0;
    bench::writeBenchJson(
        "mem_fastpath", fast,
        {{"ref_seconds", ref.hostSeconds},
         {"fast_seconds", fast.hostSeconds},
         {"ref_points_per_second", ref.pointsPerSecond()},
         {"fast_points_per_second", fast.pointsPerSecond()},
         {"speedup_x", speedup}});
    std::printf("=== Memory fast path A/B (djpeg L1 sweep, recorded, "
                "1 thread) ===\n");
    std::printf("reference: %6.2fs  (%.2f points/s)\n", ref.hostSeconds,
                ref.pointsPerSecond());
    std::printf("fast:      %6.2fs  (%.2f points/s)\n", fast.hostSeconds,
                fast.pointsPerSecond());
    std::printf("speedup:   %6.2fx  (target >= 1.5x)\n", speedup);
    std::printf("results bit-identical across all %zu points\n",
                sizes.size());
    return 0;
}
