#!/usr/bin/env python3
"""Compare a fresh BENCH_*.json against a committed baseline.

Every BENCH_*.json is a single flat JSON object of numeric (and a few
string) fields written by bench::writeBenchJson.  This tool diffs the
numeric fields of a fresh capture against the committed baseline and
fails when a throughput-like key regresses by more than the threshold,
so CI catches perf-path regressions without regenerating the committed
numbers on every run.

Keys are classified by direction: for names ending in per_second, _pps,
or speedup_x, higher is better and only a *drop* beyond the threshold
fails; for *_seconds keys, lower is better and only a *rise* beyond the
threshold fails.  Other numeric keys are reported but never fail.

    bench_compare.py [--threshold 0.2] [--keys k1,k2] FRESH BASELINE

--keys restricts the failing comparison to the named keys (comma
separated); everything else is informational.  Exit status: 0 ok,
1 regression, 2 usage/IO error.
"""

import argparse
import json
import sys


HIGHER_IS_BETTER = ("per_second", "_pps", "speedup_x")
LOWER_IS_BETTER = ("_seconds",)


def direction(key):
    """+1 higher-is-better, -1 lower-is-better, 0 informational."""
    if key.endswith(HIGHER_IS_BETTER):
        return 1
    if key.endswith(LOWER_IS_BETTER):
        return -1
    return 0


def load(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        sys.exit(f"bench_compare: cannot read {path}: {e}")
    if not isinstance(doc, dict):
        sys.exit(f"bench_compare: {path}: expected a JSON object")
    return doc


def main():
    ap = argparse.ArgumentParser(
        description="Diff a fresh BENCH_*.json against a baseline.")
    ap.add_argument("fresh", help="freshly generated BENCH_*.json")
    ap.add_argument("baseline", help="committed baseline BENCH_*.json")
    ap.add_argument("--threshold", type=float, default=0.2,
                    help="allowed relative regression (default 0.2)")
    ap.add_argument("--keys", default="",
                    help="comma-separated keys that may fail the "
                         "comparison (default: every directional key)")
    args = ap.parse_args()

    fresh = load(args.fresh)
    base = load(args.baseline)
    gate_keys = {k for k in args.keys.split(",") if k} or None

    failures = []
    for key in sorted(set(fresh) & set(base)):
        fv, bv = fresh[key], base[key]
        if not (isinstance(fv, (int, float)) and
                isinstance(bv, (int, float))):
            continue
        if isinstance(fv, bool) or isinstance(bv, bool):
            continue
        delta = (fv - bv) / bv if bv else 0.0
        sign = direction(key)
        gated = sign != 0 and (gate_keys is None or key in gate_keys)
        regressed = gated and (sign * delta) < -args.threshold
        marker = "FAIL" if regressed else ("    " if sign else "info")
        print(f"{marker} {key}: {bv:g} -> {fv:g} ({delta:+.1%})")
        if regressed:
            failures.append(key)

    if failures:
        print(f"bench_compare: {len(failures)} regression(s) beyond "
              f"{args.threshold:.0%}: {', '.join(failures)}")
        return 1
    print("bench_compare: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
