#!/usr/bin/env python3
"""Compare fresh BENCH_*.json captures against committed baselines.

Every BENCH_*.json is a single JSON object of numeric (and a few
string) fields written by bench::writeBenchJson.  This tool diffs the
numeric fields of each fresh capture against its committed baseline and
fails when a throughput-like key regresses by more than the threshold,
so CI catches perf-path regressions without regenerating the committed
numbers on every run.

Keys are classified by direction: for names ending in per_second, _pps,
or speedup_x, higher is better and only a *drop* beyond the threshold
fails; for *_seconds keys, lower is better and only a *rise* beyond the
threshold fails.  Other numeric keys are reported but never fail.
Non-numeric members (e.g. the "meta" host-identification block) are
ignored.  A numeric key present in only one file of a pair (e.g. a
benchmark silently dropped from a sweep) is a structural failure and
fails the gate with a named diff regardless of --keys.

    bench_compare.py [--threshold 0.2] [--keys k1,k2] \\
        FRESH BASELINE [FRESH BASELINE ...]

Any even-length list of FRESH BASELINE pairs is accepted; each pair is
compared independently and labelled by its "bench" field (falling back
to the fresh file name).  On failure the summary is a per-benchmark
table of every regressed key.  --keys restricts the failing comparison
to the named keys (comma separated); everything else is informational.
Exit status: 0 ok, 1 regression, 2 usage/IO error.
"""

import argparse
import json
import sys


HIGHER_IS_BETTER = ("per_second", "_pps", "speedup_x")
LOWER_IS_BETTER = ("_seconds",)


def direction(key):
    """+1 higher-is-better, -1 lower-is-better, 0 informational."""
    if key.endswith(HIGHER_IS_BETTER):
        return 1
    if key.endswith(LOWER_IS_BETTER):
        return -1
    return 0


def load(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        sys.exit(f"bench_compare: cannot read {path}: {e}")
    if not isinstance(doc, dict):
        sys.exit(f"bench_compare: {path}: expected a JSON object")
    return doc


def numeric_keys(doc):
    """The keys this tool would compare: numeric and non-bool."""
    return {k for k, v in doc.items()
            if isinstance(v, (int, float)) and not isinstance(v, bool)}


def compare_pair(fresh_path, base_path, threshold, gate_keys):
    """Diff one pair; returns (bench_name, failures, missing)."""
    fresh = load(fresh_path)
    base = load(base_path)
    name = fresh.get("bench") or base.get("bench") or fresh_path

    # Mismatched key sets are a structural failure, not a regression: a
    # benchmark silently dropped from a sweep (its per-benchmark keys
    # vanish from the fresh file) must fail the gate with a named diff
    # rather than being skipped by an intersection.
    fkeys, bkeys = numeric_keys(fresh), numeric_keys(base)
    missing = [(key, "baseline", base_path)
               for key in sorted(fkeys - bkeys)]
    missing += [(key, "fresh", fresh_path)
                for key in sorted(bkeys - fkeys)]
    for key, where, path in missing:
        print(f"MISS [{name}] {key}: absent from {where} file {path}")

    failures = []
    for key in sorted(fkeys & bkeys):
        fv, bv = fresh[key], base[key]
        delta = (fv - bv) / bv if bv else 0.0
        sign = direction(key)
        gated = sign != 0 and (gate_keys is None or key in gate_keys)
        regressed = gated and (sign * delta) < -threshold
        marker = "FAIL" if regressed else ("    " if sign else "info")
        print(f"{marker} [{name}] {key}: {bv:g} -> {fv:g} ({delta:+.1%})")
        if regressed:
            failures.append((key, bv, fv, delta))
    return name, failures, missing


def main():
    ap = argparse.ArgumentParser(
        description="Diff fresh BENCH_*.json files against baselines.")
    ap.add_argument("files", nargs="+", metavar="FRESH BASELINE",
                    help="one or more fresh/baseline file pairs")
    ap.add_argument("--threshold", type=float, default=0.2,
                    help="allowed relative regression (default 0.2)")
    ap.add_argument("--keys", default="",
                    help="comma-separated keys that may fail the "
                         "comparison (default: every directional key)")
    args = ap.parse_args()

    if len(args.files) % 2 != 0:
        sys.exit("bench_compare: expected an even number of files "
                 "(FRESH BASELINE pairs), got %d" % len(args.files))
    gate_keys = {k for k in args.keys.split(",") if k} or None

    table = []
    miss_table = []
    for i in range(0, len(args.files), 2):
        name, failures, missing = compare_pair(
            args.files[i], args.files[i + 1], args.threshold, gate_keys)
        table.extend((name, key, bv, fv, delta)
                     for key, bv, fv, delta in failures)
        miss_table.extend((name, key, where) for key, where, _ in missing)

    if miss_table:
        print(f"\nbench_compare: {len(miss_table)} mismatched key(s) "
              "between fresh and baseline:")
        for name, key, where in miss_table:
            print(f"  {name}  {key}  (absent from {where})")
    if table:
        print(f"\nbench_compare: {len(table)} regression(s) beyond "
              f"{args.threshold:.0%}:")
        wb = max(len(name) for name, *_ in table)
        wk = max(len(key) for _, key, *_ in table)
        for name, key, bv, fv, delta in table:
            print(f"  {name:<{wb}}  {key:<{wk}}  "
                  f"{bv:>12g} -> {fv:<12g} {delta:+.1%}")
    if table or miss_table:
        return 1
    print("bench_compare: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
