/**
 * @file
 * Seeded config-fuzzer for the differential audit subsystem.
 *
 * Samples randomized MachineConfigs (cache geometry, MSHR/port counts,
 * core queue sizes, issue widths, DRAM interleave/latency) crossed with
 * the paper's 12 benchmarks x {scalar, VIS, VIS+PF} x {live, recorded},
 * and cross-checks the fast path (mem::Cache + cpu::ReplayEngine)
 * against the preserved reference models (sim::asReference) for exact
 * counter/timestamp equality — every integer and double in RunResult
 * must match bit-for-bit. Cycle-level invariant violations (MSIM_AUDIT
 * builds) are collected through an installed InvariantSink.
 *
 * Any failing case is shrunk to a minimal repro by greedily resetting
 * config dimensions toward the defaults while the failure reproduces,
 * then printed as a ready-to-paste regression test for
 * tests/test_audit.cc.
 *
 * `--mode batch` fuzzes the batched replay path instead: a randomized
 * config *set* (sizes 1..7, duplicates and unsupported in-order /
 * reference configs included to exercise the sequential fallback) is
 * replayed in lockstep through sim::replayTraceBatch at a randomized
 * chunk size crossing the interesting boundaries (1, 2, 7, 64, 1024,
 * 8192, engine default) and every lane is cross-checked against
 * sequential sim::replayTrace of the same trace, field-exact. Failing
 * sets shrink by dropping lanes and resetting config dimensions, and
 * print as a ready-to-paste test for tests/test_batch_replay.cc.
 *
 * `--mode skip` fuzzes event-driven cycle skipping: each case replays
 * one randomized out-of-order config's trace four ways — sequential and
 * batched, each with skipping forced off and on (the batched run drives
 * a mixed off/on lane pair through one lockstep traversal, the hardest
 * pause-alignment case) — and requires all four RunResults to match
 * field-exact. Failing cases shrink through the config reductions and
 * then bisect the recorded trace to a minimal failing prefix
 * (prog::RecordedTrace::prefix), printing a ready-to-paste test for
 * tests/test_batch_replay.cc.
 *
 * `--mode membatch` fuzzes the batched memory layer (mem::BatchMemory):
 * randomized config sets with deliberately mixed cache geometries —
 * lanes sharing a geometry class (same line/set/assoc, different MSHR,
 * port and latency timing), all-distinct geometries, exact duplicates,
 * and reference/in-order lanes that must fall back to private
 * Hierarchy objects — replayed through sim::replayTraceBatch with the
 * batched layer forced on and off (mem::ScopedBatchMem) plus
 * sequential sim::replayTrace ground truth and an opposite-host-SIMD
 * recheck, all field-exact. Small chunk sizes (below the window size)
 * additionally stress the ordinal-fallback path for accesses issued
 * from a previous chunk's window. Failing sets shrink by dropping
 * lanes, resetting config dimensions and bisecting the trace prefix,
 * printing a ready-to-paste test for tests/test_mem_batch.cc.
 *
 * `--mode sample` fuzzes the statistical sampling estimator
 * (sim::replayTraceSampled): randomized SampledParams crossing the
 * interesting chunk/interval/warmup boundaries on randomized machines
 * (a slice of which are in-order or reference configs that must take
 * the exact fallback). Each case checks the exact-fallback contract,
 * bit-identical determinism across reruns / the opposite host-SIMD
 * dispatch / event-skip flips, internal estimate identities, and a
 * deliberately generous accuracy envelope against full replay. Failing
 * cases shrink toward the default params/config and bisect the trace
 * prefix, printing a ready-to-paste test for tests/test_sampled.cc.
 *
 * Cases are derived deterministically from (--seed, case index), so a
 * repro needs only the seed and index, independent of scheduling.
 *
 *   audit_fuzz --seed 1 --cases 200               # the CI gate
 *   audit_fuzz --mode batch --seed 1 --cases 80   # the batch CI gate
 *   audit_fuzz --mode membatch --seed 1 --cases 80 # the mem-batch gate
 *   audit_fuzz --mode skip --seed 1 --cases 200   # the skip CI gate
 *   audit_fuzz --mode sample --seed 1 --cases 60  # the sampling CI gate
 *   audit_fuzz --list                             # registered invariants
 */

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "audit/invariants.hh"
#include "core/registry.hh"
#include "mem/batch.hh"
#include "obs/metrics.hh"
#include "obs/span.hh"
#include "sim/machine.hh"
#include "sim/runner.hh"
#include "sim/sampled.hh"

namespace
{

using namespace msim;

/** Deterministic 64-bit generator (same LCG family as the test fuzz). */
class Rng
{
  public:
    explicit Rng(u64 seed) : state_(seed ^ 0x9e3779b97f4a7c15ull)
    {
        next();
        next();
    }

    u64
    next()
    {
        state_ = state_ * 6364136223846793005ull + 1442695040888963407ull;
        return state_ >> 33;
    }

    u32 below(u32 n) { return static_cast<u32>(next() % n); }
    bool chance(u32 percent) { return below(100) < percent; }

  private:
    u64 state_;
};

/** One sampled fuzz case. */
struct CaseConfig
{
    const core::Benchmark *bench = nullptr;
    prog::Variant variant = prog::Variant::Scalar;
    bool live = false; ///< drive both paths live instead of via replay
    sim::MachineConfig machine;
};

/** What happened when a case ran. */
struct Outcome
{
    std::string divergence; ///< first mismatching field, empty if none
    u64 violations = 0;
    std::vector<audit::Violation> violationRecords;

    bool failed() const { return !divergence.empty() || violations != 0; }
};

#if MSIM_OBS_ENABLED
/** Fuzzer totals, visible in any --obs-out session capture. */
struct FuzzMetrics
{
    obs::MetricId cases =
        obs::metricId("fuzz.cases", obs::MetricKind::Counter);
    obs::MetricId failures =
        obs::metricId("fuzz.failures", obs::MetricKind::Counter);
};

const FuzzMetrics &
fuzzMetrics()
{
    static const FuzzMetrics m;
    return m;
}
#endif // MSIM_OBS_ENABLED

/**
 * --progress: periodic stderr lines (cases/sec, ETA, running bug
 * count) so long CI fuzz legs are diagnosable from their logs while
 * they run. Throttled to one line every ~2 s, plus a final line.
 */
class ProgressMeter
{
  public:
    ProgressMeter(bool enabled, unsigned total)
        : enabled_(enabled), total_(total),
          start_(std::chrono::steady_clock::now()), lastPrint_(start_)
    {
    }

    void
    caseDone(unsigned done, unsigned bugs)
    {
        if (!enabled_)
            return;
        const auto now = std::chrono::steady_clock::now();
        const double sinceLast =
            std::chrono::duration<double>(now - lastPrint_).count();
        if (sinceLast < 2.0 && done != total_)
            return;
        lastPrint_ = now;
        const double elapsed =
            std::chrono::duration<double>(now - start_).count();
        const double rate =
            elapsed > 0.0 ? static_cast<double>(done) / elapsed : 0.0;
        const double eta =
            rate > 0.0 ? static_cast<double>(total_ - done) / rate : 0.0;
        std::fprintf(stderr,
                     "[audit_fuzz] %u/%u cases, %.2f cases/s, "
                     "eta %.0fs, %u bugs\n",
                     done, total_, rate, eta, bugs);
    }

  private:
    bool enabled_;
    unsigned total_;
    std::chrono::steady_clock::time_point start_;
    std::chrono::steady_clock::time_point lastPrint_;
};

u64
mixSeed(u64 seed, u64 index)
{
    u64 h = seed ^ (index * 0xbf58476d1ce4e5b9ull);
    h ^= h >> 31;
    h *= 0x94d049bb133111ebull;
    h ^= h >> 29;
    return h;
}

sim::MachineConfig
sampleMachine(Rng &rng)
{
    sim::MachineConfig m;
    switch (rng.below(3)) {
      case 0: m = sim::inOrder1Way(); break;
      case 1: m = sim::inOrder4Way(); break;
      default: m = sim::outOfOrder4Way(); break;
    }
    m.label = "fuzz";

    m.core.issueWidth = 1 + rng.below(4);
    m.core.windowSize = 1u << (2 + rng.below(6));    // 4 .. 128
    m.core.memQueueSize = 1u << (1 + rng.below(5));  // 2 .. 32
    m.core.maxSpecBranches = 1u << rng.below(5);     // 1 .. 16
    m.core.takenBranchesPerCycle = 1 + rng.below(2);
    m.core.mispredictPenalty = 1 + rng.below(8);
    m.core.retireWidth = rng.chance(30) ? 1 + rng.below(4) : 0;
    m.core.predictorEntries = 1u << (6 + rng.below(6)); // 64 .. 2048

    auto &l1 = m.mem.l1;
    l1.lineBytes = 16u << rng.below(3); // 16, 32, 64
    l1.assoc = 1u << rng.below(3);      // 1, 2, 4
    l1.sizeBytes = l1.lineBytes * l1.assoc * (1u << (3 + rng.below(7)));
    l1.ports = 1 + rng.below(2);
    l1.hitLatency = 1 + rng.below(4);
    l1.numMshrs = 1 + rng.below(16);
    l1.maxCombines = 1 + rng.below(8);

    auto &l2 = m.mem.l2;
    // The L2 is indexed with L1 line numbers (see Hierarchy), so its
    // line size matches the L1's.
    l2.lineBytes = l1.lineBytes;
    l2.assoc = 1u << rng.below(4); // 1 .. 8
    l2.sizeBytes = l2.lineBytes * l2.assoc * (1u << (5 + rng.below(7)));
    l2.ports = 1 + rng.below(2);
    l2.hitLatency = 5 + rng.below(26);
    l2.numMshrs = 1 + rng.below(16);
    l2.maxCombines = 1 + rng.below(8);

    m.mem.dram.interleave = 1u << rng.below(4); // 1 .. 8
    m.mem.dram.bankBusy = 1 + rng.below(50);
    m.mem.dram.totalLatency = 20 + rng.below(181);

    m.skewArrays = rng.chance(70);
    m.visFeatures.direct16x16Mul = rng.chance(25);
    m.visFeatures.hasPmaddwd =
        m.visFeatures.direct16x16Mul || rng.chance(15);
    m.visFeatures.hasPdist = rng.chance(75);
    return m;
}

CaseConfig
sampleCase(const std::vector<const core::Benchmark *> &benches, u64 seed,
           unsigned index, u32 live_percent)
{
    Rng rng(mixSeed(seed, index));
    CaseConfig c;
    // The image kernels are weighted up: a kernel case costs
    // milliseconds where a jpeg/mpeg case costs seconds, so this buys
    // config-space coverage while the codecs still appear throughout a
    // 200-case run (~4 cases each).
    const u32 pick = rng.below(100);
    size_t idx;
    if (pick < 76) {
        idx = rng.below(6); // the 6 VSDK kernels
    } else {
        idx = 6 + rng.below(static_cast<u32>(benches.size()) - 6);
    }
    c.bench = benches[idx];

    const u32 nvar = c.bench->hasPrefetchVariant ? 3 : 2;
    c.variant = static_cast<prog::Variant>(rng.below(nvar));
    c.live = rng.below(100) < live_percent;
    c.machine = sampleMachine(rng);
    return c;
}

/**
 * Exact comparison of every field in two RunResults. Doubles are
 * compared with == on purpose: both models execute the same arithmetic
 * in the same order, so even the accumulated floating-point statistics
 * must agree bit-for-bit.
 */
std::string
compareResults(const sim::RunResult &ref, const sim::RunResult &fast)
{
    char buf[256];
#define MSIM_CMP(field)                                                      \
    do {                                                                     \
        if (!(ref.field == fast.field)) {                                    \
            std::snprintf(buf, sizeof(buf), #field ": ref %s != fast %s",    \
                          std::to_string(ref.field).c_str(),                 \
                          std::to_string(fast.field).c_str());               \
            return buf;                                                      \
        }                                                                    \
    } while (0)

    MSIM_CMP(exec.cycles);
    MSIM_CMP(exec.retired);
    MSIM_CMP(exec.busy);
    MSIM_CMP(exec.fuStall);
    MSIM_CMP(exec.memL1Hit);
    MSIM_CMP(exec.memL1Miss);
    MSIM_CMP(exec.mixFu);
    MSIM_CMP(exec.mixBranch);
    MSIM_CMP(exec.mixMemory);
    MSIM_CMP(exec.mixVis);
    MSIM_CMP(exec.branches);
    MSIM_CMP(exec.mispredicts);
    MSIM_CMP(exec.loadsL1);
    MSIM_CMP(exec.loadsL2);
    MSIM_CMP(exec.loadsMem);
    MSIM_CMP(exec.prefetchesIssued);
    MSIM_CMP(exec.prefetchesDropped);

    MSIM_CMP(l1.accesses);
    MSIM_CMP(l1.hits);
    MSIM_CMP(l1.misses);
    MSIM_CMP(l1.writebacks);
    MSIM_CMP(l1.prefetchDrops);
    MSIM_CMP(l1.combined);
    MSIM_CMP(l1.blocked);
    MSIM_CMP(l1.missRate);
    MSIM_CMP(l1.mshrMeanOccupancy);
    MSIM_CMP(l1.mshrPeakOccupancy);
    MSIM_CMP(l1.mshrFracAtLeast2);
    MSIM_CMP(l1.mshrFracAtLeast5);
    MSIM_CMP(l1.loadOverlapMean);

    MSIM_CMP(l2.accesses);
    MSIM_CMP(l2.hits);
    MSIM_CMP(l2.misses);
    MSIM_CMP(l2.writebacks);
    MSIM_CMP(l2.prefetchDrops);
    MSIM_CMP(l2.combined);
    MSIM_CMP(l2.blocked);
    MSIM_CMP(l2.missRate);
    MSIM_CMP(l2.mshrMeanOccupancy);
    MSIM_CMP(l2.mshrPeakOccupancy);
    MSIM_CMP(l2.mshrFracAtLeast2);
    MSIM_CMP(l2.mshrFracAtLeast5);
    MSIM_CMP(l2.loadOverlapMean);

    MSIM_CMP(tbInstrs);
    MSIM_CMP(visOps);
    MSIM_CMP(visOverheadOps);
#undef MSIM_CMP
    return {};
}

Outcome
runCase(const CaseConfig &c)
{
    Outcome out;
    audit::InvariantSink sink;
    {
        audit::ScopedSink guard(sink);
        const sim::Generator gen = [&](prog::TraceBuilder &tb) {
            c.bench->generate(tb, c.variant);
        };
        sim::RunResult fast, ref;
        if (c.live) {
            fast = sim::runTrace(gen, c.machine);
            ref = sim::runTrace(gen, sim::asReference(c.machine));
        } else {
            const prog::RecordedTrace trace = sim::recordTrace(
                gen, c.machine.skewArrays, c.machine.visFeatures);
            fast = sim::replayTrace(trace, c.machine);
            ref = sim::replayTrace(trace, sim::asReference(c.machine));
        }
        // The accounting identity is checked here explicitly as well,
        // so non-MSIM_AUDIT builds of this tool still enforce it.
        double err = 0.0;
        if (!audit::accountingIdentityHolds(fast.exec, &err)) {
            sink.report("accountingIdentityHolds(fast)", __FILE__,
                        __LINE__, "err " + std::to_string(err));
        }
        if (!audit::accountingIdentityHolds(ref.exec, &err)) {
            sink.report("accountingIdentityHolds(ref)", __FILE__,
                        __LINE__, "err " + std::to_string(err));
        }
        out.divergence = compareResults(ref, fast);
    }
    out.violations = sink.violations();
    out.violationRecords = sink.records();
    return out;
}

/**
 * Greedy shrink: repeatedly try resetting one dimension of the failing
 * case toward the default configuration, keeping any reduction that
 * still fails, until a full pass makes no progress. The result is the
 * minimal repro under this reduction set.
 */
CaseConfig
shrinkCase(const CaseConfig &failing)
{
    CaseConfig best = failing;
    const sim::MachineConfig def; // all-default machine (4-way ooo)
    const core::Benchmark &addition = core::findBenchmark("addition");

    using Reduction = std::function<bool(CaseConfig &)>; // false: no-op
    std::vector<Reduction> reductions;

    reductions.push_back([&](CaseConfig &c) {
        if (c.bench == &addition)
            return false;
        c.bench = &addition;
        return true;
    });
    reductions.push_back([](CaseConfig &c) {
        if (!c.live)
            return false;
        c.live = false;
        return true;
    });
    reductions.push_back([](CaseConfig &c) {
        if (c.variant == prog::Variant::Scalar)
            return false;
        c.variant = prog::Variant::Scalar;
        return true;
    });

#define MSIM_REDUCE(field)                                                   \
    reductions.push_back([&](CaseConfig &c) {                                \
        if (c.machine.field == def.field)                                    \
            return false;                                                    \
        c.machine.field = def.field;                                         \
        return true;                                                         \
    })
    MSIM_REDUCE(core.outOfOrder);
    MSIM_REDUCE(core.issueWidth);
    MSIM_REDUCE(core.windowSize);
    MSIM_REDUCE(core.memQueueSize);
    MSIM_REDUCE(core.maxSpecBranches);
    MSIM_REDUCE(core.takenBranchesPerCycle);
    MSIM_REDUCE(core.mispredictPenalty);
    MSIM_REDUCE(core.retireWidth);
    MSIM_REDUCE(core.predictorEntries);
    MSIM_REDUCE(mem.l1.sizeBytes);
    MSIM_REDUCE(mem.l1.assoc);
    MSIM_REDUCE(mem.l1.lineBytes);
    MSIM_REDUCE(mem.l1.ports);
    MSIM_REDUCE(mem.l1.hitLatency);
    MSIM_REDUCE(mem.l1.numMshrs);
    MSIM_REDUCE(mem.l1.maxCombines);
    MSIM_REDUCE(mem.l2.sizeBytes);
    MSIM_REDUCE(mem.l2.assoc);
    MSIM_REDUCE(mem.l2.lineBytes);
    MSIM_REDUCE(mem.l2.ports);
    MSIM_REDUCE(mem.l2.hitLatency);
    MSIM_REDUCE(mem.l2.numMshrs);
    MSIM_REDUCE(mem.l2.maxCombines);
    MSIM_REDUCE(mem.dram.totalLatency);
    MSIM_REDUCE(mem.dram.interleave);
    MSIM_REDUCE(mem.dram.bankBusy);
    MSIM_REDUCE(skewArrays);
    MSIM_REDUCE(visFeatures.direct16x16Mul);
    MSIM_REDUCE(visFeatures.hasPmaddwd);
    MSIM_REDUCE(visFeatures.hasPdist);
#undef MSIM_REDUCE

    bool progressed = true;
    while (progressed) {
        progressed = false;
        for (const auto &reduce : reductions) {
            CaseConfig candidate = best;
            if (!reduce(candidate))
                continue;
            if (runCase(candidate).failed()) {
                best = candidate;
                progressed = true;
            }
        }
    }
    best.machine.label = "shrunk";
    return best;
}

/** Emit `m.<field> = <value>;` lines for every non-default field. */
void
printMachineDelta(const sim::MachineConfig &m)
{
    const sim::MachineConfig def;
#define MSIM_EMIT(field, fmt)                                                \
    do {                                                                     \
        if (!(m.field == def.field))                                         \
            std::printf("    m." #field " = " fmt ";\n",                     \
                        m.field);                                            \
    } while (0)
    MSIM_EMIT(core.outOfOrder, "%d");
    MSIM_EMIT(core.referenceEngine, "%d");
    MSIM_EMIT(core.issueWidth, "%u");
    MSIM_EMIT(core.windowSize, "%u");
    MSIM_EMIT(core.memQueueSize, "%u");
    MSIM_EMIT(core.maxSpecBranches, "%u");
    MSIM_EMIT(core.takenBranchesPerCycle, "%u");
    MSIM_EMIT(core.mispredictPenalty, "%u");
    MSIM_EMIT(core.retireWidth, "%u");
    MSIM_EMIT(core.predictorEntries, "%u");
    MSIM_EMIT(mem.l1.sizeBytes, "%u");
    MSIM_EMIT(mem.l1.assoc, "%u");
    MSIM_EMIT(mem.l1.lineBytes, "%u");
    MSIM_EMIT(mem.l1.ports, "%u");
    MSIM_EMIT(mem.l1.hitLatency, "%" PRIu64);
    MSIM_EMIT(mem.l1.numMshrs, "%u");
    MSIM_EMIT(mem.l1.maxCombines, "%u");
    MSIM_EMIT(mem.l2.sizeBytes, "%u");
    MSIM_EMIT(mem.l2.assoc, "%u");
    MSIM_EMIT(mem.l2.lineBytes, "%u");
    MSIM_EMIT(mem.l2.ports, "%u");
    MSIM_EMIT(mem.l2.hitLatency, "%" PRIu64);
    MSIM_EMIT(mem.l2.numMshrs, "%u");
    MSIM_EMIT(mem.l2.maxCombines, "%u");
    MSIM_EMIT(mem.dram.totalLatency, "%" PRIu64);
    MSIM_EMIT(mem.dram.interleave, "%u");
    MSIM_EMIT(mem.dram.bankBusy, "%" PRIu64);
    MSIM_EMIT(skewArrays, "%d");
    MSIM_EMIT(visFeatures.direct16x16Mul, "%d");
    MSIM_EMIT(visFeatures.hasPmaddwd, "%d");
    MSIM_EMIT(visFeatures.hasPdist, "%d");
#undef MSIM_EMIT
}

const char *
variantExpr(prog::Variant v)
{
    switch (v) {
      case prog::Variant::Scalar: return "prog::Variant::Scalar";
      case prog::Variant::Vis: return "prog::Variant::Vis";
      case prog::Variant::VisPrefetch: return "prog::Variant::VisPrefetch";
    }
    return "prog::Variant::Scalar";
}

/** Print the shrunk case as a ready-to-paste regression test. */
void
printRepro(const CaseConfig &c, const Outcome &out, u64 seed,
           unsigned index)
{
    std::printf("\n// ---- ready-to-paste regression test "
                "(tests/test_audit.cc) ----\n");
    std::printf("TEST(AuditFuzzRegression, Seed%" PRIu64 "Case%u)\n{\n",
                seed, index);
    std::printf("    sim::MachineConfig m;\n");
    printMachineDelta(c.machine);
    std::printf("    expectFastMatchesReference(\"%s\", %s, "
                "/*live=*/%s, m);\n",
                c.bench->name.c_str(), variantExpr(c.variant),
                c.live ? "true" : "false");
    std::printf("}\n");
    if (!out.divergence.empty())
        std::printf("// divergence: %s\n", out.divergence.c_str());
    for (const auto &v : out.violationRecords)
        std::printf("// violation: %s at %s:%d: %s\n", v.check.c_str(),
                    v.file, v.line, v.message.c_str());
    std::printf("// ----------------------------------------------------"
                "----------\n\n");
}

// ---- batch mode -----------------------------------------------------

/** One sampled batch-mode case: a config set replayed in lockstep. */
struct BatchCase
{
    const core::Benchmark *bench = nullptr;
    prog::Variant variant = prog::Variant::Scalar;
    u64 chunk = 0; ///< 0 = engine default
    std::vector<sim::MachineConfig> machines;
};

BatchCase
sampleBatchCase(const std::vector<const core::Benchmark *> &benches,
                u64 seed, unsigned index)
{
    Rng rng(mixSeed(seed, index));
    BatchCase c;
    const u32 pick = rng.below(100);
    if (pick < 76)
        c.bench = benches[rng.below(6)];
    else
        c.bench =
            benches[6 + rng.below(static_cast<u32>(benches.size()) - 6)];
    const u32 nvar = c.bench->hasPrefetchVariant ? 3 : 2;
    c.variant = static_cast<prog::Variant>(rng.below(nvar));

    // Chunk sizes cross the interesting boundaries: one-instruction
    // lockstep, sub-issue-width, odd, exactly one window, production
    // sizes, and 0 for the engine default.
    static constexpr u64 kChunks[] = {1, 2, 7, 64, 1024, 8192, 0};
    c.chunk = kChunks[rng.below(7)];

    // Size-1 sets are sampled on purpose (degenerate batch), and the
    // set may contain unsupported (in-order, reference) configs that
    // must take the sequential fallback inside replayTraceBatch, plus
    // an exact duplicate of an earlier lane.
    const u32 setSize = 1 + rng.below(6);
    c.machines.reserve(setSize + 1);
    for (u32 i = 0; i < setSize; ++i) {
        sim::MachineConfig m = sampleMachine(rng);
        if (rng.chance(12))
            m = sim::asReference(m);
        c.machines.push_back(std::move(m));
    }
    if (rng.chance(25))
        c.machines.push_back(c.machines[rng.below(setSize)]);
    return c;
}

Outcome
runBatchCase(const BatchCase &c)
{
    Outcome out;
    audit::InvariantSink sink;
    {
        audit::ScopedSink guard(sink);
        const sim::Generator gen = [&](prog::TraceBuilder &tb) {
            c.bench->generate(tb, c.variant);
        };
        // All lanes replay one shared trace whose layout/ISA knobs come
        // from the first config, matching how core::runJobs groups.
        const sim::MachineConfig &base = c.machines.front();
        const prog::RecordedTrace trace =
            sim::recordTrace(gen, base.skewArrays, base.visFeatures);
        const auto batch =
            sim::replayTraceBatch(trace, c.machines, c.chunk);
        for (size_t i = 0; i < c.machines.size(); ++i) {
            const sim::RunResult seq =
                sim::replayTrace(trace, c.machines[i]);
            const std::string d = compareResults(seq, batch[i]);
            if (!d.empty()) {
                out.divergence =
                    "lane " + std::to_string(i) + ": " + d;
                break;
            }
        }
        // The same batch under the opposite host-SIMD dispatch must be
        // lane-for-lane identical: a divergence here localizes to a
        // vector kernel, not to the lockstep machinery the sequential
        // comparison above covers.  Flipping (rather than always
        // forcing scalar) keeps the A/B meaningful when the harness
        // itself runs under MSIM_SIMD=0 — the rerun then takes the
        // native-dispatch side.  Vacuous only on scalar-only hosts.
        if (out.divergence.empty()) {
            const bool nativeFirst =
                simd::activeLevel() != simd::Level::Scalar;
            const auto guard = sim::withSimd(!nativeFirst);
            const auto flipped =
                sim::replayTraceBatch(trace, c.machines, c.chunk);
            for (size_t i = 0; i < c.machines.size(); ++i) {
                const std::string d =
                    compareResults(batch[i], flipped[i]);
                if (!d.empty()) {
                    out.divergence = "simd-vs-scalar lane " +
                                     std::to_string(i) + ": " + d;
                    break;
                }
            }
        }
    }
    out.violations = sink.violations();
    out.violationRecords = sink.records();
    return out;
}

/** Per-config field resets toward the default machine, for shrinking. */
const std::vector<std::function<bool(sim::MachineConfig &)>> &
configReductions()
{
    static const std::vector<std::function<bool(sim::MachineConfig &)>>
        reductions = [] {
            std::vector<std::function<bool(sim::MachineConfig &)>> r;
            const sim::MachineConfig def;
#define MSIM_REDUCE(field)                                                   \
    r.push_back([def](sim::MachineConfig &m) {                               \
        if (m.field == def.field)                                            \
            return false;                                                    \
        m.field = def.field;                                                 \
        return true;                                                         \
    })
            MSIM_REDUCE(core.outOfOrder);
            MSIM_REDUCE(core.referenceEngine);
            MSIM_REDUCE(core.issueWidth);
            MSIM_REDUCE(core.windowSize);
            MSIM_REDUCE(core.memQueueSize);
            MSIM_REDUCE(core.maxSpecBranches);
            MSIM_REDUCE(core.takenBranchesPerCycle);
            MSIM_REDUCE(core.mispredictPenalty);
            MSIM_REDUCE(core.retireWidth);
            MSIM_REDUCE(core.predictorEntries);
            MSIM_REDUCE(mem.l1.sizeBytes);
            MSIM_REDUCE(mem.l1.assoc);
            MSIM_REDUCE(mem.l1.lineBytes);
            MSIM_REDUCE(mem.l1.ports);
            MSIM_REDUCE(mem.l1.hitLatency);
            MSIM_REDUCE(mem.l1.numMshrs);
            MSIM_REDUCE(mem.l1.maxCombines);
            MSIM_REDUCE(mem.l2.sizeBytes);
            MSIM_REDUCE(mem.l2.assoc);
            MSIM_REDUCE(mem.l2.lineBytes);
            MSIM_REDUCE(mem.l2.ports);
            MSIM_REDUCE(mem.l2.hitLatency);
            MSIM_REDUCE(mem.l2.numMshrs);
            MSIM_REDUCE(mem.l2.maxCombines);
            MSIM_REDUCE(mem.dram.totalLatency);
            MSIM_REDUCE(mem.dram.interleave);
            MSIM_REDUCE(mem.dram.bankBusy);
            MSIM_REDUCE(skewArrays);
            MSIM_REDUCE(visFeatures.direct16x16Mul);
            MSIM_REDUCE(visFeatures.hasPmaddwd);
            MSIM_REDUCE(visFeatures.hasPdist);
#undef MSIM_REDUCE
            return r;
        }();
    return reductions;
}

/**
 * Greedy batch shrink: benchmark and variant toward the cheapest, then
 * repeatedly drop lanes, reset the chunk, and reset per-lane config
 * dimensions while the failure still reproduces.
 */
BatchCase
shrinkBatchCase(const BatchCase &failing)
{
    BatchCase best = failing;
    const core::Benchmark &addition = core::findBenchmark("addition");
    const auto fails = [](const BatchCase &c) {
        return runBatchCase(c).failed();
    };

    if (best.bench != &addition) {
        BatchCase cand = best;
        cand.bench = &addition;
        if (fails(cand))
            best = std::move(cand);
    }
    if (best.variant != prog::Variant::Scalar) {
        BatchCase cand = best;
        cand.variant = prog::Variant::Scalar;
        if (fails(cand))
            best = std::move(cand);
    }

    bool progressed = true;
    while (progressed) {
        progressed = false;
        for (size_t i = 0;
             best.machines.size() > 1 && i < best.machines.size();) {
            BatchCase cand = best;
            cand.machines.erase(cand.machines.begin() +
                                static_cast<std::ptrdiff_t>(i));
            if (fails(cand)) {
                best = std::move(cand);
                progressed = true;
            } else {
                ++i;
            }
        }
        if (best.chunk != 0) {
            BatchCase cand = best;
            cand.chunk = 0;
            if (fails(cand)) {
                best = std::move(cand);
                progressed = true;
            }
        }
        for (size_t i = 0; i < best.machines.size(); ++i) {
            for (const auto &reduce : configReductions()) {
                BatchCase cand = best;
                if (!reduce(cand.machines[i]))
                    continue;
                if (fails(cand)) {
                    best = std::move(cand);
                    progressed = true;
                }
            }
        }
    }
    for (auto &m : best.machines)
        m.label = "shrunk";
    return best;
}

/** Print the shrunk batch case as a ready-to-paste regression test. */
void
printBatchRepro(const BatchCase &c, const Outcome &out, u64 seed,
                unsigned index)
{
    std::printf("\n// ---- ready-to-paste regression test "
                "(tests/test_batch_replay.cc) ----\n");
    std::printf("TEST(BatchReplay, FuzzSeed%" PRIu64 "Case%u)\n{\n", seed,
                index);
    std::printf("    std::vector<MachineConfig> ms;\n");
    for (const auto &m : c.machines) {
        std::printf("    {\n");
        std::printf("    sim::MachineConfig m;\n");
        printMachineDelta(m);
        std::printf("    ms.push_back(m);\n");
        std::printf("    }\n");
    }
    std::printf("    const auto trace =\n"
                "        recordTrace(generatorFor(\"%s\", %s),\n"
                "                    ms[0].skewArrays, "
                "ms[0].visFeatures);\n",
                c.bench->name.c_str(), variantExpr(c.variant));
    std::printf("    expectBatchMatchesSequential(trace, ms, "
                "/*chunk=*/%" PRIu64 ");\n}\n",
                c.chunk);
    if (!out.divergence.empty())
        std::printf("// divergence: %s\n", out.divergence.c_str());
    for (const auto &v : out.violationRecords)
        std::printf("// violation: %s at %s:%d: %s\n", v.check.c_str(),
                    v.file, v.line, v.message.c_str());
    std::printf("// ----------------------------------------------------"
                "----------\n\n");
}

// ---- membatch mode --------------------------------------------------

/**
 * One sampled membatch-mode case: a config set with deliberately mixed
 * cache geometries, replayed with the batched memory layer forced on
 * and off plus sequential ground truth.  prefixLen < instCount
 * truncates the trace (shrink only).
 */
struct MemBatchCase
{
    const core::Benchmark *bench = nullptr;
    prog::Variant variant = prog::Variant::Scalar;
    u64 chunk = 0;           ///< 0 = engine default
    u64 prefixLen = ~u64{0}; ///< trace prefix to replay (clamped)
    std::vector<sim::MachineConfig> machines;
};

MemBatchCase
sampleMemBatchCase(const std::vector<const core::Benchmark *> &benches,
                   u64 seed, unsigned index)
{
    Rng rng(mixSeed(seed, index));
    MemBatchCase c;
    const u32 pick = rng.below(100);
    if (pick < 76)
        c.bench = benches[rng.below(6)];
    else
        c.bench =
            benches[6 + rng.below(static_cast<u32>(benches.size()) - 6)];
    const u32 nvar = c.bench->hasPrefetchVariant ? 3 : 2;
    c.variant = static_cast<prog::Variant>(rng.below(nvar));

    // Chunks below the window size force accesses whose ordinal falls
    // outside the current chunk's shared column (instructions still in
    // flight from an earlier chunk), exercising LanePort's byte-address
    // fallback alongside the column fast path.
    static constexpr u64 kChunks[] = {1, 2, 7, 64, 1024, 8192, 0};
    c.chunk = kChunks[rng.below(7)];

    const u32 setSize = 1 + rng.below(6);
    c.machines.reserve(setSize + 1);
    for (u32 i = 0; i < setSize; ++i) {
        sim::MachineConfig m = sampleMachine(rng);
        if (rng.chance(80)) {
            // Most lanes must actually reach mem::BatchMemory: force
            // the lockstep-supported core shape (out-of-order, fast
            // engine, window <= 64, power-of-two retire width).
            m.core.outOfOrder = true;
            m.core.referenceEngine = false;
            m.core.windowSize = std::min(m.core.windowSize, 64u);
            m.core.retireWidth = 1u << rng.below(3);
        } else if (rng.chance(40)) {
            // Reference lanes keep private RefCache hierarchies through
            // the sequential fallback; mixing them into a batched set
            // must not perturb either side.
            m = sim::asReference(m);
        }
        if (i > 0 && rng.chance(40)) {
            // Copy an earlier lane's cache geometry while keeping this
            // lane's own MSHR/port/latency/DRAM timing: both lanes land
            // in one geometry class and share a lane-major tag arena,
            // the layout where cross-lane slot arithmetic bugs hide.
            const auto &src = c.machines[rng.below(i)].mem;
            m.mem.l1.sizeBytes = src.l1.sizeBytes;
            m.mem.l1.assoc = src.l1.assoc;
            m.mem.l1.lineBytes = src.l1.lineBytes;
            m.mem.l2.sizeBytes = src.l2.sizeBytes;
            m.mem.l2.assoc = src.l2.assoc;
            m.mem.l2.lineBytes = src.l2.lineBytes;
        }
        c.machines.push_back(std::move(m));
    }
    if (rng.chance(25))
        c.machines.push_back(c.machines[rng.below(setSize)]);
    return c;
}

Outcome
runMemBatchCase(const MemBatchCase &c)
{
    Outcome out;
    audit::InvariantSink sink;
    {
        audit::ScopedSink guard(sink);
        const sim::Generator gen = [&](prog::TraceBuilder &tb) {
            c.bench->generate(tb, c.variant);
        };
        const sim::MachineConfig &base = c.machines.front();
        prog::RecordedTrace trace = sim::recordTrace(
            gen, base.skewArrays, base.visFeatures);
        if (c.prefixLen < trace.instCount())
            trace = trace.prefix(c.prefixLen);

        // The on/off pair differs only in the memory layer under test:
        // same lockstep traversal, batched shared-arena lanes vs
        // private Hierarchy objects.
        std::vector<sim::RunResult> on, off;
        {
            mem::ScopedBatchMem gOn(true);
            on = sim::replayTraceBatch(trace, c.machines, c.chunk);
        }
        {
            mem::ScopedBatchMem gOff(false);
            off = sim::replayTraceBatch(trace, c.machines, c.chunk);
        }
        for (size_t i = 0; i < c.machines.size(); ++i) {
            const std::string d = compareResults(off[i], on[i]);
            if (!d.empty()) {
                out.divergence =
                    "batchmem lane " + std::to_string(i) + ": " + d;
                break;
            }
        }
        // Sequential ground truth (no lockstep, no batched memory)
        // guards against the on/off pair agreeing on a shared wrong
        // answer through some common replayTraceBatch defect.
        if (out.divergence.empty()) {
            for (size_t i = 0; i < c.machines.size(); ++i) {
                const sim::RunResult seq =
                    sim::replayTrace(trace, c.machines[i]);
                const std::string d = compareResults(seq, on[i]);
                if (!d.empty()) {
                    out.divergence =
                        "seq lane " + std::to_string(i) + ": " + d;
                    break;
                }
            }
        }
        // Opposite host-SIMD dispatch of the batched-memory run: a
        // divergence here localizes to the shared-column / tag-probe
        // kernels (shrU64Col, eqU64Bitmap) rather than the arena
        // plumbing the comparisons above cover.
        if (out.divergence.empty()) {
            const bool nativeFirst =
                simd::activeLevel() != simd::Level::Scalar;
            const auto sg = sim::withSimd(!nativeFirst);
            mem::ScopedBatchMem gOn(true);
            const auto flipped =
                sim::replayTraceBatch(trace, c.machines, c.chunk);
            for (size_t i = 0; i < c.machines.size(); ++i) {
                const std::string d = compareResults(on[i], flipped[i]);
                if (!d.empty()) {
                    out.divergence = "simd-vs-scalar lane " +
                                     std::to_string(i) + ": " + d;
                    break;
                }
            }
        }
    }
    out.violations = sink.violations();
    out.violationRecords = sink.records();
    return out;
}

/**
 * Greedy membatch shrink: benchmark and variant toward the cheapest,
 * then repeatedly drop lanes, reset the chunk and reset per-lane
 * config dimensions while the failure reproduces, finishing with a
 * trace-prefix bisection on the shrunk configuration.
 */
MemBatchCase
shrinkMemBatchCase(const MemBatchCase &failing)
{
    MemBatchCase best = failing;
    const core::Benchmark &addition = core::findBenchmark("addition");
    const auto fails = [](const MemBatchCase &c) {
        return runMemBatchCase(c).failed();
    };

    if (best.bench != &addition) {
        MemBatchCase cand = best;
        cand.bench = &addition;
        if (fails(cand))
            best = std::move(cand);
    }
    if (best.variant != prog::Variant::Scalar) {
        MemBatchCase cand = best;
        cand.variant = prog::Variant::Scalar;
        if (fails(cand))
            best = std::move(cand);
    }

    bool progressed = true;
    while (progressed) {
        progressed = false;
        for (size_t i = 0;
             best.machines.size() > 1 && i < best.machines.size();) {
            MemBatchCase cand = best;
            cand.machines.erase(cand.machines.begin() +
                                static_cast<std::ptrdiff_t>(i));
            if (fails(cand)) {
                best = std::move(cand);
                progressed = true;
            } else {
                ++i;
            }
        }
        if (best.chunk != 0) {
            MemBatchCase cand = best;
            cand.chunk = 0;
            if (fails(cand)) {
                best = std::move(cand);
                progressed = true;
            }
        }
        for (size_t i = 0; i < best.machines.size(); ++i) {
            for (const auto &reduce : configReductions()) {
                MemBatchCase cand = best;
                if (!reduce(cand.machines[i]))
                    continue;
                if (fails(cand)) {
                    best = std::move(cand);
                    progressed = true;
                }
            }
        }
    }

    // Trace-prefix bisection (heuristic minimum, re-verified failing
    // before printing; see shrinkSkipCase).
    {
        const sim::Generator gen = [&](prog::TraceBuilder &tb) {
            best.bench->generate(tb, best.variant);
        };
        const sim::MachineConfig &base = best.machines.front();
        const prog::RecordedTrace full = sim::recordTrace(
            gen, base.skewArrays, base.visFeatures);
        u64 hi = std::min(best.prefixLen, full.instCount());
        u64 lo = 0;
        while (lo + 1 < hi) {
            const u64 mid = lo + (hi - lo) / 2;
            MemBatchCase cand = best;
            cand.prefixLen = mid;
            if (fails(cand))
                hi = mid;
            else
                lo = mid;
        }
        best.prefixLen = hi;
    }
    for (auto &m : best.machines)
        m.label = "shrunk";
    return best;
}

/** Print the shrunk membatch case as a ready-to-paste regression test. */
void
printMemBatchRepro(const MemBatchCase &c, const Outcome &out, u64 seed,
                   unsigned index)
{
    std::printf("\n// ---- ready-to-paste regression test "
                "(tests/test_mem_batch.cc) ----\n");
    std::printf("TEST(MemBatch, FuzzSeed%" PRIu64 "Case%u)\n{\n", seed,
                index);
    std::printf("    std::vector<MachineConfig> ms;\n");
    for (const auto &m : c.machines) {
        std::printf("    {\n");
        std::printf("    sim::MachineConfig m;\n");
        printMachineDelta(m);
        std::printf("    ms.push_back(m);\n");
        std::printf("    }\n");
    }
    std::printf("    const auto trace =\n"
                "        recordTrace(generatorFor(\"%s\", %s),\n"
                "                    ms[0].skewArrays, "
                "ms[0].visFeatures)\n"
                "            .prefix(%" PRIu64 ");\n",
                c.bench->name.c_str(), variantExpr(c.variant),
                c.prefixLen);
    std::printf("    expectBatchMemIdentical(trace, ms, "
                "/*chunk=*/%" PRIu64 ");\n}\n",
                c.chunk);
    if (!out.divergence.empty())
        std::printf("// divergence: %s\n", out.divergence.c_str());
    for (const auto &v : out.violationRecords)
        std::printf("// violation: %s at %s:%d: %s\n", v.check.c_str(),
                    v.file, v.line, v.message.c_str());
    std::printf("// ----------------------------------------------------"
                "----------\n\n");
}

// ---- skip mode ------------------------------------------------------

/**
 * One sampled skip-mode case: a single out-of-order config whose trace
 * is replayed with event skipping off and on, sequentially and batched.
 * prefixLen < instCount truncates the trace (shrink only).
 */
struct SkipCase
{
    const core::Benchmark *bench = nullptr;
    prog::Variant variant = prog::Variant::Scalar;
    u64 chunk = 0;          ///< 0 = engine default
    u64 prefixLen = ~u64{0}; ///< trace prefix to replay (clamped)
    sim::MachineConfig machine;
};

SkipCase
sampleSkipCase(const std::vector<const core::Benchmark *> &benches,
               u64 seed, unsigned index)
{
    Rng rng(mixSeed(seed, index));
    SkipCase c;
    const u32 pick = rng.below(100);
    if (pick < 76)
        c.bench = benches[rng.below(6)];
    else
        c.bench =
            benches[6 + rng.below(static_cast<u32>(benches.size()) - 6)];
    const u32 nvar = c.bench->hasPrefetchVariant ? 3 : 2;
    c.variant = static_cast<prog::Variant>(rng.below(nvar));

    static constexpr u64 kChunks[] = {1, 2, 7, 64, 1024, 8192, 0};
    c.chunk = kChunks[rng.below(7)];

    // Skipping only exists in the out-of-order replay engine; in-order
    // configs take PipelineCore and ignore the toggle, so force the
    // sampled machine onto the path under test.  Window sizes above 64
    // are still sampled: those lanes take replayTraceBatch's sequential
    // fallback, which must skip identically too.
    c.machine = sampleMachine(rng);
    c.machine.core.outOfOrder = true;
    c.machine.core.referenceEngine = false;
    return c;
}

Outcome
runSkipCase(const SkipCase &c)
{
    Outcome out;
    audit::InvariantSink sink;
    {
        audit::ScopedSink guard(sink);
        const sim::Generator gen = [&](prog::TraceBuilder &tb) {
            c.bench->generate(tb, c.variant);
        };
        prog::RecordedTrace trace = sim::recordTrace(
            gen, c.machine.skewArrays, c.machine.visFeatures);
        if (c.prefixLen < trace.instCount())
            trace = trace.prefix(c.prefixLen);

        const sim::MachineConfig off = sim::withEventSkip(c.machine, false);
        const sim::MachineConfig on = sim::withEventSkip(c.machine, true);
        const sim::RunResult seqOff = sim::replayTrace(trace, off);
        const sim::RunResult seqOn = sim::replayTrace(trace, on);
        // One lockstep traversal drives an off lane and an on lane: the
        // skipping lane must pause at exactly the same advanceTo chunk
        // limits as its per-cycle twin.
        const std::vector<sim::MachineConfig> lanes = {off, on};
        const auto batch = sim::replayTraceBatch(trace, lanes, c.chunk);

        std::string d = compareResults(seqOff, seqOn);
        if (!d.empty()) {
            out.divergence = "seq skip-on: " + d;
        } else if (!(d = compareResults(seqOff, batch[0])).empty()) {
            out.divergence = "batch skip-off: " + d;
        } else if (!(d = compareResults(seqOff, batch[1])).empty()) {
            out.divergence = "batch skip-on: " + d;
        }
        double err = 0.0;
        if (!audit::accountingIdentityHolds(seqOn.exec, &err)) {
            sink.report("accountingIdentityHolds(skip-on)", __FILE__,
                        __LINE__, "err " + std::to_string(err));
        }
    }
    out.violations = sink.violations();
    out.violationRecords = sink.records();
    return out;
}

/**
 * Greedy skip shrink: benchmark, variant, chunk and config dimensions
 * toward the defaults while the failure reproduces, then bisect the
 * recorded trace to a minimal failing prefix.
 */
SkipCase
shrinkSkipCase(const SkipCase &failing)
{
    SkipCase best = failing;
    const core::Benchmark &addition = core::findBenchmark("addition");
    const auto fails = [](const SkipCase &c) {
        return runSkipCase(c).failed();
    };

    if (best.bench != &addition) {
        SkipCase cand = best;
        cand.bench = &addition;
        if (fails(cand))
            best = std::move(cand);
    }
    if (best.variant != prog::Variant::Scalar) {
        SkipCase cand = best;
        cand.variant = prog::Variant::Scalar;
        if (fails(cand))
            best = std::move(cand);
    }

    bool progressed = true;
    while (progressed) {
        progressed = false;
        if (best.chunk != 0) {
            SkipCase cand = best;
            cand.chunk = 0;
            if (fails(cand)) {
                best = std::move(cand);
                progressed = true;
            }
        }
        for (const auto &reduce : configReductions()) {
            SkipCase cand = best;
            if (!reduce(cand.machine))
                continue;
            // The skip path requires an out-of-order, non-reference
            // engine; never reduce off it.
            cand.machine.core.outOfOrder = true;
            cand.machine.core.referenceEngine = false;
            if (fails(cand)) {
                best = std::move(cand);
                progressed = true;
            }
        }
    }

    // Trace-prefix bisection on the shrunk (cheap) configuration: find
    // a short failing prefix.  Divergence need not be monotone in the
    // prefix length, so this is a heuristic minimum, but the result is
    // re-verified failing before printing.
    {
        const sim::Generator gen = [&](prog::TraceBuilder &tb) {
            best.bench->generate(tb, best.variant);
        };
        const prog::RecordedTrace full = sim::recordTrace(
            gen, best.machine.skewArrays, best.machine.visFeatures);
        u64 hi = std::min(best.prefixLen, full.instCount());
        u64 lo = 0;
        while (lo + 1 < hi) {
            const u64 mid = lo + (hi - lo) / 2;
            SkipCase cand = best;
            cand.prefixLen = mid;
            if (fails(cand))
                hi = mid;
            else
                lo = mid;
        }
        best.prefixLen = hi;
    }
    best.machine.label = "shrunk";
    return best;
}

/** Print the shrunk skip case as a ready-to-paste regression test. */
void
printSkipRepro(const SkipCase &c, const Outcome &out, u64 seed,
               unsigned index)
{
    std::printf("\n// ---- ready-to-paste regression test "
                "(tests/test_batch_replay.cc) ----\n");
    std::printf("TEST(EventSkip, FuzzSeed%" PRIu64 "Case%u)\n{\n", seed,
                index);
    std::printf("    sim::MachineConfig m;\n");
    printMachineDelta(c.machine);
    std::printf("    const auto trace =\n"
                "        recordTrace(generatorFor(\"%s\", %s),\n"
                "                    m.skewArrays, m.visFeatures)\n"
                "            .prefix(%" PRIu64 ");\n",
                c.bench->name.c_str(), variantExpr(c.variant),
                c.prefixLen);
    std::printf("    expectSkipOnOffIdentical(trace, m, "
                "/*chunk=*/%" PRIu64 ");\n}\n",
                c.chunk);
    if (!out.divergence.empty())
        std::printf("// divergence: %s\n", out.divergence.c_str());
    for (const auto &v : out.violationRecords)
        std::printf("// violation: %s at %s:%d: %s\n", v.check.c_str(),
                    v.file, v.line, v.message.c_str());
    std::printf("// ----------------------------------------------------"
                "----------\n\n");
}

// ---- sample mode ----------------------------------------------------

/**
 * One sampled-estimator fuzz case: a randomized machine x benchmark x
 * SampledParams, the estimator cross-checked against full replay of
 * the same trace.  Checks, in order of severity: the exact-fallback
 * contract (unsupported machines and too-short traces must return the
 * bit-exact full result, supported ones must actually sample);
 * estimator determinism (bit-identical estimates across a second run,
 * the opposite host-SIMD dispatch, and event-skip off/on); internal
 * estimate identities; and a generous accuracy envelope against the
 * exact CPI (randomized params are allowed to be far sloppier than the
 * tuned defaults — this only catches estimator *bugs*, not noise).
 */
struct SampleCase
{
    const core::Benchmark *bench = nullptr;
    prog::Variant variant = prog::Variant::Scalar;
    sim::SampledParams params;
    u64 prefixLen = ~u64{0}; ///< trace prefix to replay (shrink only)
    sim::MachineConfig machine;
};

SampleCase
sampleSampleCase(const std::vector<const core::Benchmark *> &benches,
                 u64 seed, unsigned index)
{
    Rng rng(mixSeed(seed, index));
    SampleCase c;
    const u32 pick = rng.below(100);
    if (pick < 76)
        c.bench = benches[rng.below(6)];
    else
        c.bench =
            benches[6 + rng.below(static_cast<u32>(benches.size()) - 6)];
    const u32 nvar = c.bench->hasPrefetchVariant ? 3 : 2;
    c.variant = static_cast<prog::Variant>(rng.below(nvar));

    // Chunk/interval/warmup cross the interesting boundaries: chunks
    // from transient-dominated to aliasing-prone, every-chunk
    // measurement (interval 1), sparse sampling, and warm windows from
    // stone cold to effectively unbounded.
    static constexpr u64 kChunks[] = {500, 1000, 2000, 6000, 10000, 50000};
    static constexpr u64 kIntervals[] = {1, 2, 4, 8, 16, 18, 32};
    static constexpr u64 kWarmups[] = {0, 256, 4096, 32768, 1u << 20};
    c.params.chunkInstructions = kChunks[rng.below(6)];
    c.params.intervalChunks = kIntervals[rng.below(7)];
    c.params.warmupMemOps = kWarmups[rng.below(5)];

    // Most cases force the sampled path (out-of-order fast-model); a
    // slice keeps whatever sampleMachine drew — in-order and reference
    // machines exercise the exact-fallback contract instead.
    c.machine = sampleMachine(rng);
    if (rng.chance(12)) {
        if (rng.chance(50))
            c.machine = sim::asReference(c.machine);
    } else {
        c.machine.core.outOfOrder = true;
        c.machine.core.referenceEngine = false;
    }
    return c;
}

/** Exact equality of two sampled results, doubles compared with ==. */
std::string
compareSampled(const sim::SampledResult &a, const sim::SampledResult &b)
{
    char buf[256];
#define MSIM_CMP(field)                                                      \
    do {                                                                     \
        if (!(a.field == b.field)) {                                         \
            std::snprintf(buf, sizeof(buf), #field ": %s != %s",             \
                          std::to_string(a.field).c_str(),                   \
                          std::to_string(b.field).c_str());                  \
            return buf;                                                      \
        }                                                                    \
    } while (0)
    MSIM_CMP(exact);
    MSIM_CMP(instructions);
    MSIM_CMP(measuredInstructions);
    MSIM_CMP(measuredChunks);
    MSIM_CMP(cpi.mean);
    MSIM_CMP(cpi.ci95);
    MSIM_CMP(cycles.mean);
    MSIM_CMP(cycles.ci95);
    MSIM_CMP(fracBusy.mean);
    MSIM_CMP(fracFuStall.mean);
    MSIM_CMP(fracMemL1Hit.mean);
    MSIM_CMP(fracMemL1Miss.mean);
    MSIM_CMP(mispredictRate.mean);
    MSIM_CMP(loadL1MissRate.mean);
#undef MSIM_CMP
    return {};
}

Outcome
runSampleCase(const SampleCase &c)
{
    Outcome out;
    audit::InvariantSink sink;
    {
        audit::ScopedSink guard(sink);
        const sim::Generator gen = [&](prog::TraceBuilder &tb) {
            c.bench->generate(tb, c.variant);
        };
        prog::RecordedTrace trace = sim::recordTrace(
            gen, c.machine.skewArrays, c.machine.visFeatures);
        if (c.prefixLen < trace.instCount())
            trace = trace.prefix(c.prefixLen);

        const sim::SampledPlan plan =
            sim::prepareSampled(trace, c.params);
        const sim::SampledResult est =
            sim::replayTraceSampled(plan, c.machine);
        const sim::RunResult full = sim::replayTrace(trace, c.machine);

        const bool canSample =
            c.machine.core.outOfOrder &&
            !c.machine.core.referenceEngine &&
            c.machine.mem.model == mem::CacheModel::Fast;
        const bool shouldSample = canSample && !plan.exactFallback();

        if (est.exact == shouldSample) {
            out.divergence = shouldSample
                                 ? "fell back to exact on a machine the "
                                   "sampler supports"
                                 : "claimed to sample an unsupported "
                                   "machine or too-short trace";
        } else if (est.exact) {
            // Fallback contract: the full exact result, zero-width CIs.
            const std::string d = compareResults(full, est.full);
            if (!d.empty())
                out.divergence = "fallback result: " + d;
            else if (est.cpi.ci95 != 0.0 || est.cycles.ci95 != 0.0)
                out.divergence = "fallback with nonzero ci95";
        } else {
            // Determinism: a second run, the opposite host-SIMD
            // dispatch, and event-skip flipped must all be bit-equal.
            std::string d =
                compareSampled(est, sim::replayTraceSampled(plan, c.machine));
            if (!d.empty()) {
                out.divergence = "rerun: " + d;
            }
            if (out.divergence.empty()) {
                const bool nativeFirst =
                    simd::activeLevel() != simd::Level::Scalar;
                const auto simdGuard = sim::withSimd(!nativeFirst);
                d = compareSampled(
                    est, sim::replayTraceSampled(plan, c.machine));
                if (!d.empty())
                    out.divergence = "simd flip: " + d;
            }
            if (out.divergence.empty()) {
                const sim::MachineConfig flipped = sim::withEventSkip(
                    c.machine, !c.machine.core.eventSkip);
                d = compareSampled(
                    est, sim::replayTraceSampled(plan, flipped));
                if (!d.empty())
                    out.divergence = "event-skip flip: " + d;
            }
            // Internal identities of the estimate.
            if (out.divergence.empty()) {
                const double n = static_cast<double>(est.instructions);
                if (est.cycles.mean != est.cpi.mean * n ||
                    est.cycles.ci95 != est.cpi.ci95 * n)
                    out.divergence = "cycles estimate is not cpi scaled "
                                     "to the trace length";
                else if (est.measuredChunks != plan.chunks().size())
                    out.divergence = "measuredChunks != plan chunks";
                else if (est.measuredInstructions !=
                         est.measuredChunks * c.params.chunkInstructions)
                    out.divergence = "measuredInstructions != chunks * "
                                     "chunk size";
            }
            // Accuracy envelope: catastrophic error with a confidence
            // interval that claims precision is an estimator bug.
            // Generous on purpose, and only applied when the params give
            // the estimator a fair shot: sub-2000-instruction chunks are
            // dominated by the window-fill transient and near-zero warm
            // windows measure cold caches — both are *expected* to be
            // far off (consistently, so the ci stays small), and the
            // envelope exists to catch slicing/indexing bugs, not to
            // re-litigate known small-sample bias. Every case is
            // deterministic, so there is no flake to absorb.
            if (out.divergence.empty() &&
                c.params.chunkInstructions >= 2000 &&
                c.params.warmupMemOps >= 4096) {
                const double exactCpi =
                    static_cast<double>(full.exec.cycles) /
                    static_cast<double>(full.exec.retired);
                const double relErr =
                    std::abs(est.cpi.mean - exactCpi) / exactCpi;
                const double relCi = est.cpi.ci95 / est.cpi.mean;
                if (relErr > 0.35 && relErr > 5.0 * relCi) {
                    char buf[160];
                    std::snprintf(buf, sizeof(buf),
                                  "cpi err %.1f%% beyond 5x ci %.1f%% "
                                  "(est %.4f exact %.4f)",
                                  100.0 * relErr, 100.0 * relCi,
                                  est.cpi.mean, exactCpi);
                    out.divergence = buf;
                }
            }
        }
    }
    out.violations = sink.violations();
    out.violationRecords = sink.records();
    return out;
}

/**
 * Greedy sample shrink: benchmark/variant toward the cheapest, params
 * toward the defaults, config dimensions toward the default machine,
 * then trace-prefix bisection on the shrunk case.
 */
SampleCase
shrinkSampleCase(const SampleCase &failing)
{
    SampleCase best = failing;
    const core::Benchmark &addition = core::findBenchmark("addition");
    const auto fails = [](const SampleCase &c) {
        return runSampleCase(c).failed();
    };

    if (best.bench != &addition) {
        SampleCase cand = best;
        cand.bench = &addition;
        if (fails(cand))
            best = std::move(cand);
    }
    if (best.variant != prog::Variant::Scalar) {
        SampleCase cand = best;
        cand.variant = prog::Variant::Scalar;
        if (fails(cand))
            best = std::move(cand);
    }

    const sim::SampledParams defParams;
    bool progressed = true;
    while (progressed) {
        progressed = false;
        const auto tryParam = [&](u64 sim::SampledParams::*field) {
            if (best.params.*field == defParams.*field)
                return;
            SampleCase cand = best;
            cand.params.*field = defParams.*field;
            if (fails(cand)) {
                best = std::move(cand);
                progressed = true;
            }
        };
        tryParam(&sim::SampledParams::chunkInstructions);
        tryParam(&sim::SampledParams::intervalChunks);
        tryParam(&sim::SampledParams::warmupMemOps);
        for (const auto &reduce : configReductions()) {
            SampleCase cand = best;
            if (!reduce(cand.machine))
                continue;
            if (fails(cand)) {
                best = std::move(cand);
                progressed = true;
            }
        }
    }

    // Trace-prefix bisection on the shrunk (cheap) configuration.
    {
        const sim::Generator gen = [&](prog::TraceBuilder &tb) {
            best.bench->generate(tb, best.variant);
        };
        const prog::RecordedTrace full = sim::recordTrace(
            gen, best.machine.skewArrays, best.machine.visFeatures);
        u64 hi = std::min(best.prefixLen, full.instCount());
        u64 lo = 0;
        while (lo + 1 < hi) {
            const u64 mid = lo + (hi - lo) / 2;
            SampleCase cand = best;
            cand.prefixLen = mid;
            if (fails(cand))
                hi = mid;
            else
                lo = mid;
        }
        best.prefixLen = hi;
    }
    best.machine.label = "shrunk";
    return best;
}

/** Print the shrunk sample case as a ready-to-paste regression test. */
void
printSampleRepro(const SampleCase &c, const Outcome &out, u64 seed,
                 unsigned index)
{
    std::printf("\n// ---- ready-to-paste regression test "
                "(tests/test_sampled.cc) ----\n");
    std::printf("TEST(SampledFuzzRegression, Seed%" PRIu64 "Case%u)\n{\n",
                seed, index);
    std::printf("    sim::MachineConfig m;\n");
    printMachineDelta(c.machine);
    std::printf("    const SampledParams p{%" PRIu64 ", %" PRIu64
                ", %" PRIu64 "};\n",
                c.params.chunkInstructions, c.params.intervalChunks,
                c.params.warmupMemOps);
    std::printf("    const auto trace =\n"
                "        recordTrace(generatorFor(\"%s\", %s),\n"
                "                    m.skewArrays, m.visFeatures)\n"
                "            .prefix(%" PRIu64 ");\n",
                c.bench->name.c_str(), variantExpr(c.variant),
                c.prefixLen);
    std::printf("    expectSampledEstimatorSane(trace, m, p);\n}\n");
    if (!out.divergence.empty())
        std::printf("// divergence: %s\n", out.divergence.c_str());
    for (const auto &v : out.violationRecords)
        std::printf("// violation: %s at %s:%d: %s\n", v.check.c_str(),
                    v.file, v.line, v.message.c_str());
    std::printf("// ----------------------------------------------------"
                "----------\n\n");
}

void
printInvariants()
{
    for (const auto &inv : audit::invariants())
        std::printf("%-28s %-20s %s\n", inv.name, inv.component,
                    inv.argument);
}

void
usage(const char *argv0)
{
    std::printf(
        "usage: %s [--mode diff|batch|membatch|skip|sample] [--seed N]\n"
        "          [--cases N]\n"
        "          [--live-frac PCT] [--progress] [--verbose] [--list]\n"
        "          [--help]\n"
        "\n"
        "Differential config fuzzer: random MachineConfigs x benchmarks\n"
        "x variants x {live, recorded}, fast path vs reference models,\n"
        "exact-equality cross-check plus cycle-level invariant audit.\n"
        "\n"
        "  --mode M        diff (default): fast path vs reference;\n"
        "                  batch: randomized config sets through\n"
        "                  replayTraceBatch vs sequential replayTrace;\n"
        "                  membatch: randomized geometry mixes through\n"
        "                  the batched memory layer, forced on vs off\n"
        "                  vs sequential ground truth;\n"
        "                  skip: event-skip on vs off, sequential and\n"
        "                  batched, counter-exact;\n"
        "                  sample: sampled-replay estimator vs full\n"
        "                  replay (fallback contract, determinism,\n"
        "                  accuracy envelope)\n"
        "  --seed N        base seed (default 1); case i derives from\n"
        "                  (seed, i), so repros only need the pair\n"
        "  --cases N       number of cases (default 200)\n"
        "  --live-frac P   percent of cases driven live (default 17,\n"
        "                  diff mode only)\n"
        "  --progress      periodic stderr progress (cases/sec, ETA,\n"
        "                  running bug count)\n"
        "  --verbose       print every case as it runs\n"
        "  --list          print the registered invariant table\n",
        argv0);
}

} // namespace

int
main(int argc, char **argv)
{
    u64 seed = 1;
    unsigned cases = 200;
    u32 live_percent = 17;
    bool verbose = false;
    bool progress = false;
    const char *mode = "diff";

    for (int i = 1; i < argc; ++i) {
        const auto arg = [&](const char *name) {
            return std::strcmp(argv[i], name) == 0;
        };
        if (arg("--mode") && i + 1 < argc) {
            mode = argv[++i];
        } else if (arg("--seed") && i + 1 < argc) {
            seed = std::strtoull(argv[++i], nullptr, 0);
        } else if (arg("--cases") && i + 1 < argc) {
            cases = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 0));
        } else if (arg("--live-frac") && i + 1 < argc) {
            live_percent = static_cast<u32>(
                std::strtoul(argv[++i], nullptr, 0));
        } else if (arg("--progress")) {
            progress = true;
        } else if (arg("--verbose")) {
            verbose = true;
        } else if (arg("--list")) {
            printInvariants();
            return 0;
        } else if (arg("--help")) {
            usage(argv[0]);
            return 0;
        } else {
            std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
            usage(argv[0]);
            return 2;
        }
    }

    const bool batch_mode = std::strcmp(mode, "batch") == 0;
    const bool membatch_mode = std::strcmp(mode, "membatch") == 0;
    const bool skip_mode = std::strcmp(mode, "skip") == 0;
    const bool sample_mode = std::strcmp(mode, "sample") == 0;
    if (!batch_mode && !membatch_mode && !skip_mode && !sample_mode &&
        std::strcmp(mode, "diff") != 0) {
        std::fprintf(stderr, "unknown --mode: %s\n", mode);
        usage(argv[0]);
        return 2;
    }

    const std::vector<const core::Benchmark *> benches =
        core::paperBenchmarks();

    std::printf("audit_fuzz: mode %s, seed %" PRIu64 ", %u cases, "
                "%u%% live, audit checks %s\n",
                mode, seed, cases, live_percent,
                audit::kEnabled ? "compiled in" : "compiled out");

    if (sample_mode) {
        unsigned failures = 0;
        ProgressMeter meter(progress, cases);
        for (unsigned i = 0; i < cases; ++i) {
            const SampleCase c = sampleSampleCase(benches, seed, i);
            if (verbose)
                std::printf("  case %u: %s/%s chunk %" PRIu64
                            " interval %" PRIu64 " warm %" PRIu64 "\n",
                            i, c.bench->name.c_str(),
                            prog::variantName(c.variant),
                            c.params.chunkInstructions,
                            c.params.intervalChunks,
                            c.params.warmupMemOps);
            Outcome out;
            {
                MSIM_OBS_SPAN(span, "fuzz.case", c.bench->name);
                out = runSampleCase(c);
            }
#if MSIM_OBS_ENABLED
            obs::count(fuzzMetrics().cases);
            if (out.failed())
                obs::count(fuzzMetrics().failures);
#endif
            if (!out.failed()) {
                meter.caseDone(i + 1, failures);
                continue;
            }
            ++failures;
            std::printf("FAIL case %u (%s/%s, chunk %" PRIu64
                        " interval %" PRIu64 "): %s%s\n",
                        i, c.bench->name.c_str(),
                        prog::variantName(c.variant),
                        c.params.chunkInstructions,
                        c.params.intervalChunks,
                        out.divergence.empty() ? ""
                                               : out.divergence.c_str(),
                        out.violations
                            ? (" [" + std::to_string(out.violations) +
                               " invariant violations]")
                                  .c_str()
                            : "");
            std::printf("shrinking...\n");
            const SampleCase minimal = shrinkSampleCase(c);
            printSampleRepro(minimal, runSampleCase(minimal), seed, i);
            meter.caseDone(i + 1, failures);
        }
        std::printf("audit_fuzz: %u sample cases: %u failing\n", cases,
                    failures);
        return failures ? 1 : 0;
    }

    if (skip_mode) {
        unsigned failures = 0;
        ProgressMeter meter(progress, cases);
        for (unsigned i = 0; i < cases; ++i) {
            const SkipCase c = sampleSkipCase(benches, seed, i);
            if (verbose)
                std::printf("  case %u: %s/%s chunk %" PRIu64
                            " ws %u iw %u\n",
                            i, c.bench->name.c_str(),
                            prog::variantName(c.variant), c.chunk,
                            c.machine.core.windowSize,
                            c.machine.core.issueWidth);
            Outcome out;
            {
                MSIM_OBS_SPAN(span, "fuzz.case", c.bench->name);
                out = runSkipCase(c);
            }
#if MSIM_OBS_ENABLED
            obs::count(fuzzMetrics().cases);
            if (out.failed())
                obs::count(fuzzMetrics().failures);
#endif
            if (!out.failed()) {
                meter.caseDone(i + 1, failures);
                continue;
            }
            ++failures;
            std::printf("FAIL case %u (%s/%s, chunk %" PRIu64 "): %s%s\n",
                        i, c.bench->name.c_str(),
                        prog::variantName(c.variant), c.chunk,
                        out.divergence.empty() ? ""
                                               : out.divergence.c_str(),
                        out.violations
                            ? (" [" + std::to_string(out.violations) +
                               " invariant violations]")
                                  .c_str()
                            : "");
            std::printf("shrinking...\n");
            const SkipCase minimal = shrinkSkipCase(c);
            printSkipRepro(minimal, runSkipCase(minimal), seed, i);
            meter.caseDone(i + 1, failures);
        }
        std::printf("audit_fuzz: %u skip cases: %u failing\n", cases,
                    failures);
        return failures ? 1 : 0;
    }

    if (membatch_mode) {
        unsigned failures = 0;
        ProgressMeter meter(progress, cases);
        for (unsigned i = 0; i < cases; ++i) {
            const MemBatchCase c = sampleMemBatchCase(benches, seed, i);
            if (verbose)
                std::printf("  case %u: %s/%s %zu lanes chunk %" PRIu64
                            "\n",
                            i, c.bench->name.c_str(),
                            prog::variantName(c.variant),
                            c.machines.size(), c.chunk);
            Outcome out;
            {
                MSIM_OBS_SPAN(span, "fuzz.case", c.bench->name);
                out = runMemBatchCase(c);
            }
#if MSIM_OBS_ENABLED
            obs::count(fuzzMetrics().cases);
            if (out.failed())
                obs::count(fuzzMetrics().failures);
#endif
            if (!out.failed()) {
                meter.caseDone(i + 1, failures);
                continue;
            }
            ++failures;
            std::printf("FAIL case %u (%s/%s, %zu lanes, chunk %" PRIu64
                        "): %s%s\n",
                        i, c.bench->name.c_str(),
                        prog::variantName(c.variant), c.machines.size(),
                        c.chunk,
                        out.divergence.empty() ? ""
                                               : out.divergence.c_str(),
                        out.violations
                            ? (" [" + std::to_string(out.violations) +
                               " invariant violations]")
                                  .c_str()
                            : "");
            std::printf("shrinking...\n");
            const MemBatchCase minimal = shrinkMemBatchCase(c);
            printMemBatchRepro(minimal, runMemBatchCase(minimal), seed,
                               i);
            meter.caseDone(i + 1, failures);
        }
        std::printf("audit_fuzz: %u membatch cases: %u failing\n", cases,
                    failures);
        return failures ? 1 : 0;
    }

    if (batch_mode) {
        unsigned failures = 0;
        ProgressMeter meter(progress, cases);
        for (unsigned i = 0; i < cases; ++i) {
            const BatchCase c = sampleBatchCase(benches, seed, i);
            if (verbose)
                std::printf("  case %u: %s/%s %zu lanes chunk %" PRIu64
                            "\n",
                            i, c.bench->name.c_str(),
                            prog::variantName(c.variant),
                            c.machines.size(), c.chunk);
            Outcome out;
            {
                MSIM_OBS_SPAN(span, "fuzz.case", c.bench->name);
                out = runBatchCase(c);
            }
#if MSIM_OBS_ENABLED
            obs::count(fuzzMetrics().cases);
            if (out.failed())
                obs::count(fuzzMetrics().failures);
#endif
            if (!out.failed()) {
                meter.caseDone(i + 1, failures);
                continue;
            }
            ++failures;
            std::printf("FAIL case %u (%s/%s, %zu lanes, chunk %" PRIu64
                        "): %s%s\n",
                        i, c.bench->name.c_str(),
                        prog::variantName(c.variant), c.machines.size(),
                        c.chunk,
                        out.divergence.empty() ? ""
                                               : out.divergence.c_str(),
                        out.violations
                            ? (" [" + std::to_string(out.violations) +
                               " invariant violations]")
                                  .c_str()
                            : "");
            std::printf("shrinking...\n");
            const BatchCase minimal = shrinkBatchCase(c);
            printBatchRepro(minimal, runBatchCase(minimal), seed, i);
            meter.caseDone(i + 1, failures);
        }
        std::printf("audit_fuzz: %u batch cases: %u failing\n", cases,
                    failures);
        return failures ? 1 : 0;
    }

    unsigned failures = 0;
    unsigned live_cases = 0;
    ProgressMeter meter(progress, cases);
    for (unsigned i = 0; i < cases; ++i) {
        const CaseConfig c = sampleCase(benches, seed, i, live_percent);
        live_cases += c.live;
        if (verbose)
            std::printf("  case %u: %s/%s %s mshrs %u/%u ports %u/%u "
                        "iw %u\n",
                        i, c.bench->name.c_str(),
                        prog::variantName(c.variant),
                        c.live ? "live" : "recorded",
                        c.machine.mem.l1.numMshrs,
                        c.machine.mem.l2.numMshrs,
                        c.machine.mem.l1.ports, c.machine.mem.l2.ports,
                        c.machine.core.issueWidth);
        Outcome out;
        {
            MSIM_OBS_SPAN(span, "fuzz.case", c.bench->name);
            out = runCase(c);
        }
#if MSIM_OBS_ENABLED
        obs::count(fuzzMetrics().cases);
        if (out.failed())
            obs::count(fuzzMetrics().failures);
#endif
        if (!out.failed()) {
            meter.caseDone(i + 1, failures);
            continue;
        }
        ++failures;
        std::printf("FAIL case %u (%s/%s %s): %s%s\n", i,
                    c.bench->name.c_str(), prog::variantName(c.variant),
                    c.live ? "live" : "recorded",
                    out.divergence.empty() ? "" : out.divergence.c_str(),
                    out.violations
                        ? (" [" + std::to_string(out.violations) +
                           " invariant violations]")
                              .c_str()
                        : "");
        std::printf("shrinking...\n");
        const CaseConfig minimal = shrinkCase(c);
        const Outcome minimal_out = runCase(minimal);
        printRepro(minimal, minimal_out, seed, i);
        meter.caseDone(i + 1, failures);
    }

    std::printf("audit_fuzz: %u cases (%u live, %u recorded): "
                "%u failing\n",
                cases, live_cases, cases - live_cases, failures);
    return failures ? 1 : 0;
}
