/**
 * @file
 * Offline reader for the observability layer's NDJSON captures.
 *
 * Consumes the `<base>.ndjson` file written by an --obs-out session
 * (see src/obs/session.cc) and reconstructs the paper-facing views
 * without rerunning any simulation: the §2.3.4 stall breakdown per
 * run, cache/MSHR behaviour, timeline occupancy summaries, harness
 * span totals, the metric registry snapshot, and (schema v2) the
 * per-kernel site attribution tables. `--diff` compares two captures
 * run-by-run (matched on label), `--hot-sites` ranks kernel sites by
 * attributed cycles, `--site-diff` compares the per-kernel stall
 * tables of two captures (paper Table 5 style: scalar vs VIS vs
 * prefetch), and `--validate` checks NDJSON and Chrome-trace files
 * against the checked-in schema in tools/obs_schema.json (accepting
 * any version in its accepted_versions list, so v1 captures stay
 * valid), which is what the CI obs leg gates on.
 *
 *   msim_report out.ndjson                  summary report
 *   msim_report --diff a.ndjson b.ndjson    compare two captures
 *   msim_report --hot-sites [--top N] out.ndjson
 *   msim_report --site-diff a.ndjson b.ndjson
 *   msim_report --validate out.ndjson out.trace.json
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "obs/json.hh"
#include "obs/session.hh"

namespace
{

using namespace msim;
using obs::json::Value;

// ---- NDJSON capture model -------------------------------------------

struct RunRecord
{
    u32 id = 0;
    std::string label;
    double cycles = 0, instructions = 0;
    double busy = 0, fuStall = 0, memL1Hit = 0, memL1Miss = 0;
    double branches = 0, mispredicts = 0;
    double l1Accesses = 0, l1Misses = 0, l2Accesses = 0, l2Misses = 0;
    double l1MshrMean = 0, l2MshrMean = 0;
    double samples = 0, dropped = 0;

    double ipc() const { return cycles > 0 ? instructions / cycles : 0; }
    double frac(double x) const { return cycles > 0 ? x / cycles : 0; }
};

struct SampleRecord
{
    u32 runId = 0;
    double cycle = 0, retired = 0; ///< cumulative since cycle 0
    double busy = 0, fuStall = 0, memL1Hit = 0, memL1Miss = 0;
    double window = 0, memq = 0, mshrL1 = 0, mshrL2 = 0;
};

struct SpanAgg
{
    u64 count = 0;
    double totalUs = 0, maxUs = 0;
};

/** One kernel site's attributed share of a run (schema v2). */
struct SiteRecord
{
    u32 runId = 0;
    u32 site = 0;
    std::string name;
    bool approximate = false;
    double retired = 0, busy = 0, fuStall = 0, memL1Hit = 0, memL1Miss = 0;

    double cycles() const { return busy + fuStall + memL1Hit + memL1Miss; }
    double stalls() const { return fuStall + memL1Hit + memL1Miss; }
};

struct Capture
{
    double schemaVersion = 0;
    std::vector<RunRecord> runs;
    std::vector<SampleRecord> samples;
    std::vector<SiteRecord> sites;
    std::map<std::string, SpanAgg> spans;
    std::vector<Value> metrics; // metric records, in file order
};

bool
loadCapture(const std::string &path, Capture &cap)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "msim_report: cannot open %s\n", path.c_str());
        return false;
    }
    std::string line;
    size_t lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        if (line.empty())
            continue;
        Value v;
        std::string err;
        if (!obs::json::parse(line, v, &err)) {
            std::fprintf(stderr, "msim_report: %s:%zu: %s\n", path.c_str(),
                         lineno, err.c_str());
            return false;
        }
        const std::string type = v.stringOr("type", "");
        if (type == "meta") {
            cap.schemaVersion = v.numberOr("schema_version", 0);
        } else if (type == "run") {
            RunRecord r;
            r.id = static_cast<u32>(v.numberOr("run_id", 0));
            r.label = v.stringOr("label", "");
            r.cycles = v.numberOr("cycles", 0);
            r.instructions = v.numberOr("instructions", 0);
            r.busy = v.numberOr("busy", 0);
            r.fuStall = v.numberOr("fu_stall", 0);
            r.memL1Hit = v.numberOr("mem_l1_hit", 0);
            r.memL1Miss = v.numberOr("mem_l1_miss", 0);
            r.branches = v.numberOr("branches", 0);
            r.mispredicts = v.numberOr("mispredicts", 0);
            r.l1Accesses = v.numberOr("l1_accesses", 0);
            r.l1Misses = v.numberOr("l1_misses", 0);
            r.l2Accesses = v.numberOr("l2_accesses", 0);
            r.l2Misses = v.numberOr("l2_misses", 0);
            r.l1MshrMean = v.numberOr("l1_mshr_mean", 0);
            r.l2MshrMean = v.numberOr("l2_mshr_mean", 0);
            r.samples = v.numberOr("samples", 0);
            r.dropped = v.numberOr("dropped_samples", 0);
            cap.runs.push_back(std::move(r));
        } else if (type == "sample") {
            SampleRecord s;
            s.runId = static_cast<u32>(v.numberOr("run_id", 0));
            s.cycle = v.numberOr("cycle", 0);
            s.retired = v.numberOr("retired", 0);
            s.busy = v.numberOr("busy", 0);
            s.fuStall = v.numberOr("fu_stall", 0);
            s.memL1Hit = v.numberOr("mem_l1_hit", 0);
            s.memL1Miss = v.numberOr("mem_l1_miss", 0);
            s.window = v.numberOr("window", 0);
            s.memq = v.numberOr("memq", 0);
            s.mshrL1 = v.numberOr("mshr_l1", 0);
            s.mshrL2 = v.numberOr("mshr_l2", 0);
            cap.samples.push_back(s);
        } else if (type == "site") {
            SiteRecord s;
            s.runId = static_cast<u32>(v.numberOr("run_id", 0));
            s.site = static_cast<u32>(v.numberOr("site", 0));
            s.name = v.stringOr("name", "?");
            const Value *ap = v.find("approximate");
            s.approximate = ap && ap->isBool() && ap->boolean;
            s.retired = v.numberOr("retired", 0);
            s.busy = v.numberOr("busy", 0);
            s.fuStall = v.numberOr("fu_stall", 0);
            s.memL1Hit = v.numberOr("mem_l1_hit", 0);
            s.memL1Miss = v.numberOr("mem_l1_miss", 0);
            cap.sites.push_back(std::move(s));
        } else if (type == "span") {
            SpanAgg &a = cap.spans[v.stringOr("name", "?")];
            const double d = v.numberOr("dur_us", 0);
            ++a.count;
            a.totalUs += d;
            a.maxUs = std::max(a.maxUs, d);
        } else if (type == "metric") {
            cap.metrics.push_back(std::move(v));
        }
    }
    return true;
}

// ---- summary report -------------------------------------------------

void
printRun(const Capture &cap, const RunRecord &r)
{
    std::printf("run %u: %s\n", r.id, r.label.c_str());
    std::printf("  cycles %.0f  instructions %.0f  ipc %.3f\n", r.cycles,
                r.instructions, r.ipc());
    std::printf("  stall breakdown: busy %5.1f%%  fu %5.1f%%  "
                "l1hit %5.1f%%  l1miss %5.1f%%\n",
                100 * r.frac(r.busy), 100 * r.frac(r.fuStall),
                100 * r.frac(r.memL1Hit), 100 * r.frac(r.memL1Miss));
    std::printf("  branches %.0f (%.2f%% mispredict)  "
                "L1 miss %.2f%%  L2 miss %.2f%%  "
                "mshr mean L1 %.2f L2 %.2f\n",
                r.branches,
                r.branches > 0 ? 100 * r.mispredicts / r.branches : 0.0,
                r.l1Accesses > 0 ? 100 * r.l1Misses / r.l1Accesses : 0.0,
                r.l2Accesses > 0 ? 100 * r.l2Misses / r.l2Accesses : 0.0,
                r.l1MshrMean, r.l2MshrMean);

    double n = 0, wSum = 0, wMax = 0, qSum = 0, qMax = 0, mSum = 0,
           mMax = 0;
    for (const SampleRecord &s : cap.samples) {
        if (s.runId != r.id)
            continue;
        ++n;
        wSum += s.window;
        wMax = std::max(wMax, s.window);
        qSum += s.memq;
        qMax = std::max(qMax, s.memq);
        mSum += s.mshrL1;
        mMax = std::max(mMax, s.mshrL1);
    }
    if (n > 0)
        std::printf("  occupancy (%.0f samples%s): window mean %.1f "
                    "max %.0f, memq mean %.1f max %.0f, "
                    "mshr L1 mean %.1f max %.0f\n",
                    n, r.dropped > 0 ? ", ring wrapped" : "", wSum / n,
                    wMax, qSum / n, qMax, mSum / n, mMax);

    // Per-interval stall rates, differenced from the cumulative sample
    // columns.  Cumulative storage is what makes this safe under
    // event-driven cycle skipping: a clock jump's bulk stall charge
    // lands entirely inside one interval's delta, so intervals spanning
    // skipped regions still conserve (d busy + d fu + d l1hit + d l1miss
    // == d cycle).  Any conservation error or negative delta means the
    // capture is inconsistent and is flagged rather than averaged away.
    const SampleRecord *prev = nullptr;
    double intervals = 0, ipcMin = 0, ipcMax = 0, maxErr = 0;
    bool negative = false;
    for (const SampleRecord &s : cap.samples) {
        if (s.runId != r.id)
            continue;
        if (prev) {
            const double dc = s.cycle - prev->cycle;
            const double dr2 = s.retired - prev->retired;
            const double db = s.busy - prev->busy;
            const double df = s.fuStall - prev->fuStall;
            const double dh = s.memL1Hit - prev->memL1Hit;
            const double dm = s.memL1Miss - prev->memL1Miss;
            if (dc < 0 || dr2 < 0 || db < 0 || df < 0 || dh < 0 || dm < 0)
                negative = true;
            if (dc > 0) {
                const double ipc = dr2 / dc;
                if (intervals == 0) {
                    ipcMin = ipcMax = ipc;
                } else {
                    ipcMin = std::min(ipcMin, ipc);
                    ipcMax = std::max(ipcMax, ipc);
                }
                ++intervals;
                maxErr = std::max(maxErr,
                                  std::fabs(db + df + dh + dm - dc));
            }
        }
        prev = &s;
    }
    if (intervals > 0) {
        std::printf("  intervals (%.0f): ipc min %.3f max %.3f, "
                    "conservation max err %.3g%s\n",
                    intervals, ipcMin, ipcMax, maxErr,
                    negative ? "  [WARN: negative deltas]" : "");
        if (maxErr > 0.5 || negative)
            std::printf("  WARNING: cumulative sample columns do not "
                        "conserve cycles; capture may be corrupt\n");
    }
}

int
report(const std::string &path)
{
    Capture cap;
    if (!loadCapture(path, cap))
        return 1;
    std::printf("%s: schema %.0f, %zu runs, %zu samples, %zu sites, "
                "%zu span kinds, %zu metrics\n\n",
                path.c_str(), cap.schemaVersion, cap.runs.size(),
                cap.samples.size(), cap.sites.size(), cap.spans.size(),
                cap.metrics.size());
    for (const RunRecord &r : cap.runs)
        printRun(cap, r);

    if (!cap.spans.empty()) {
        std::printf("\nhost spans:\n  %-16s %8s %12s %12s\n", "name",
                    "count", "total ms", "max ms");
        for (const auto &[name, a] : cap.spans)
            std::printf("  %-16s %8llu %12.3f %12.3f\n", name.c_str(),
                        static_cast<unsigned long long>(a.count),
                        a.totalUs / 1000.0, a.maxUs / 1000.0);
    }

    if (!cap.metrics.empty()) {
        std::printf("\nmetrics:\n");
        for (const Value &m : cap.metrics) {
            const std::string kind = m.stringOr("kind", "?");
            if (kind == "counter")
                std::printf("  %-32s counter %14.0f\n",
                            m.stringOr("name", "?").c_str(),
                            m.numberOr("count", 0));
            else if (kind == "gauge")
                std::printf("  %-32s gauge   %14.6g\n",
                            m.stringOr("name", "?").c_str(),
                            m.numberOr("value", 0));
            else
                std::printf("  %-32s dist    n %.0f mean %.6g "
                            "min %.6g max %.6g\n",
                            m.stringOr("name", "?").c_str(),
                            m.numberOr("count", 0),
                            m.numberOr("count", 0) > 0
                                ? m.numberOr("sum", 0) /
                                      m.numberOr("count", 1)
                                : 0.0,
                            m.numberOr("min", 0), m.numberOr("max", 0));
        }
    }
    return 0;
}

// ---- per-kernel site views ------------------------------------------

/** One run's site table, hottest (most attributed cycles) first. */
std::vector<const SiteRecord *>
sitesOfRun(const Capture &cap, u32 runId)
{
    std::vector<const SiteRecord *> out;
    for (const SiteRecord &s : cap.sites)
        if (s.runId == runId)
            out.push_back(&s);
    std::sort(out.begin(), out.end(),
              [](const SiteRecord *a, const SiteRecord *b) {
                  return a->cycles() > b->cycles();
              });
    return out;
}

int
hotSites(const std::string &path, unsigned topN)
{
    Capture cap;
    if (!loadCapture(path, cap))
        return 1;
    if (cap.sites.empty()) {
        std::fprintf(stderr,
                     "msim_report: %s has no site records (schema v1 "
                     "capture, or no kernel regions annotated)\n",
                     path.c_str());
        return 1;
    }
    for (const RunRecord &r : cap.runs) {
        const std::vector<const SiteRecord *> sites =
            sitesOfRun(cap, r.id);
        if (sites.empty())
            continue;
        std::printf("run %u: %s\n", r.id, r.label.c_str());
        std::printf("  %-16s %12s %12s %6s %6s %6s %6s %6s\n", "site",
                    "retired", "cycles", "%run", "busy%", "fu%",
                    "l1hit%", "l1mis%");
        unsigned shown = 0;
        for (const SiteRecord *s : sites) {
            if (shown++ >= topN)
                break;
            const double c = s->cycles();
            std::printf("  %-16s %12.0f %12.1f %5.1f%% %5.1f%% %5.1f%% "
                        "%5.1f%% %5.1f%%%s\n",
                        s->name.c_str(), s->retired, c,
                        r.cycles > 0 ? 100 * c / r.cycles : 0.0,
                        c > 0 ? 100 * s->busy / c : 0.0,
                        c > 0 ? 100 * s->fuStall / c : 0.0,
                        c > 0 ? 100 * s->memL1Hit / c : 0.0,
                        c > 0 ? 100 * s->memL1Miss / c : 0.0,
                        s->approximate ? "  ~" : "");
        }
        if (sites.size() > topN)
            std::printf("  (%zu more sites)\n", sites.size() - topN);
        std::printf("\n");
    }
    return 0;
}

/**
 * Per-kernel comparison of two captures (paper Table 5 style): runs
 * matched by label, sites matched by name within each run pair, so
 * `--site-diff scalar.ndjson vis.ndjson` prints each kernel region's
 * cycle count under both ISAs, the speedup, and where the remaining
 * time goes.
 */
int
siteDiff(const std::string &pathA, const std::string &pathB)
{
    Capture a, b;
    if (!loadCapture(pathA, a) || !loadCapture(pathB, b))
        return 1;
    if (a.sites.empty() || b.sites.empty()) {
        std::fprintf(stderr, "msim_report: %s has no site records\n",
                     a.sites.empty() ? pathA.c_str() : pathB.c_str());
        return 1;
    }

    std::map<std::string, const RunRecord *> byLabel;
    for (const RunRecord &r : a.runs)
        byLabel.emplace(r.label, &r); // first wins on duplicate labels

    // Pair runs by label; when no label matches (the usual Table 5
    // case — a scalar capture against a VIS capture carries variant
    // names in every label) fall back to pairing by position.
    std::vector<std::pair<const RunRecord *, const RunRecord *>> pairs;
    for (const RunRecord &rb : b.runs) {
        const auto it = byLabel.find(rb.label);
        if (it != byLabel.end())
            pairs.emplace_back(it->second, &rb);
    }
    bool positional = false;
    if (pairs.empty() && a.runs.size() == b.runs.size()) {
        positional = true;
        for (size_t i = 0; i < a.runs.size(); ++i)
            pairs.emplace_back(&a.runs[i], &b.runs[i]);
    }

    std::printf("site-diff: A=%s  B=%s%s\n", pathA.c_str(), pathB.c_str(),
                positional ? "  (no labels match; paired by position)"
                           : "");
    unsigned matched = 0;
    for (const auto &[pa, pb] : pairs) {
        const RunRecord &ra = *pa;
        const RunRecord &rb = *pb;
        const std::vector<const SiteRecord *> sa = sitesOfRun(a, ra.id);
        const std::vector<const SiteRecord *> sb = sitesOfRun(b, rb.id);
        if (sa.empty() && sb.empty())
            continue;
        ++matched;

        std::map<std::string, const SiteRecord *> aByName;
        for (const SiteRecord *s : sa)
            aByName.emplace(s->name, s);

        std::printf("\n%s\n", rb.label.c_str());
        std::printf("  %-16s %12s %12s %8s   %s\n", "site", "cycles A",
                    "cycles B", "A/B", "B stall split");
        for (const SiteRecord *s : sb) {
            const auto ai = aByName.find(s->name);
            const double ca = ai != aByName.end()
                                  ? ai->second->cycles()
                                  : 0.0;
            const double cb = s->cycles();
            char speed[16];
            if (ca > 0 && cb > 0)
                std::snprintf(speed, sizeof(speed), "%.2fx", ca / cb);
            else
                std::snprintf(speed, sizeof(speed), "%s",
                              ca > 0 ? "gone" : "new");
            std::printf("  %-16s %12.1f %12.1f %8s   busy %4.1f%% "
                        "fu %4.1f%% l1hit %4.1f%% l1mis %4.1f%%%s\n",
                        s->name.c_str(), ca, cb, speed,
                        cb > 0 ? 100 * s->busy / cb : 0.0,
                        cb > 0 ? 100 * s->fuStall / cb : 0.0,
                        cb > 0 ? 100 * s->memL1Hit / cb : 0.0,
                        cb > 0 ? 100 * s->memL1Miss / cb : 0.0,
                        s->approximate ? "  ~" : "");
            if (ai != aByName.end())
                aByName.erase(ai);
        }
        for (const auto &[name, s] : aByName)
            std::printf("  %-16s %12.1f %12s %8s\n", name.c_str(),
                        s->cycles(), "-", "gone");
    }
    std::printf("\n%u run(s) matched\n", matched);
    return matched ? 0 : 1;
}

// ---- diff -----------------------------------------------------------

const char *
pct(double base, double now, char *buf, size_t len)
{
    if (base == 0) {
        std::snprintf(buf, len, "%s", now == 0 ? "  =" : "new");
        return buf;
    }
    std::snprintf(buf, len, "%+.2f%%", 100 * (now - base) / base);
    return buf;
}

int
diff(const std::string &pathA, const std::string &pathB)
{
    Capture a, b;
    if (!loadCapture(pathA, a) || !loadCapture(pathB, b))
        return 1;

    std::map<std::string, const RunRecord *> byLabel;
    for (const RunRecord &r : a.runs)
        byLabel.emplace(r.label, &r); // first wins on duplicate labels

    std::printf("diff: A=%s  B=%s\n\n", pathA.c_str(), pathB.c_str());
    std::printf("%-36s %14s %14s %9s %7s\n", "run", "cycles A",
                "cycles B", "delta", "d-ipc");
    unsigned matched = 0;
    char buf[32];
    for (const RunRecord &rb : b.runs) {
        const auto it = byLabel.find(rb.label);
        if (it == byLabel.end()) {
            std::printf("%-36s %14s %14.0f %9s\n", rb.label.c_str(),
                        "-", rb.cycles, "new");
            continue;
        }
        const RunRecord &ra = *it->second;
        ++matched;
        std::printf("%-36s %14.0f %14.0f %9s %+7.3f\n", rb.label.c_str(),
                    ra.cycles, rb.cycles,
                    pct(ra.cycles, rb.cycles, buf, sizeof(buf)),
                    rb.ipc() - ra.ipc());
        const double dBusy = rb.frac(rb.busy) - ra.frac(ra.busy);
        const double dFu = rb.frac(rb.fuStall) - ra.frac(ra.fuStall);
        const double dHit = rb.frac(rb.memL1Hit) - ra.frac(ra.memL1Hit);
        const double dMiss = rb.frac(rb.memL1Miss) - ra.frac(ra.memL1Miss);
        if (std::fabs(dBusy) + std::fabs(dFu) + std::fabs(dHit) +
                std::fabs(dMiss) >
            1e-9)
            std::printf("%-36s   stall pp: busy %+.2f fu %+.2f "
                        "l1hit %+.2f l1miss %+.2f\n",
                        "", 100 * dBusy, 100 * dFu, 100 * dHit,
                        100 * dMiss);
    }
    for (const RunRecord &ra : a.runs) {
        bool present = false;
        for (const RunRecord &rb : b.runs)
            present = present || rb.label == ra.label;
        if (!present)
            std::printf("%-36s %14.0f %14s %9s\n", ra.label.c_str(),
                        ra.cycles, "-", "gone");
    }
    std::printf("\n%u matched, %zu runs in A, %zu in B\n", matched,
                a.runs.size(), b.runs.size());
    return 0;
}

// ---- schema validation ----------------------------------------------

bool
kindMatches(const Value &v, const std::string &kind)
{
    if (kind == "number")
        return v.isNumber();
    if (kind == "string")
        return v.isString();
    if (kind == "bool")
        return v.isBool();
    if (kind == "object")
        return v.isObject();
    if (kind == "array")
        return v.isArray();
    return false;
}

/** Check @p rec against a schema {"required": {...}, "optional": {...}}. */
bool
checkFields(const Value &rec, const Value &spec, const std::string &where,
            unsigned &errors)
{
    bool ok = true;
    const Value *req = spec.find("required");
    if (req && req->isObject()) {
        for (const auto &[name, kind] : req->object) {
            const Value *f = rec.find(name);
            if (!f) {
                std::fprintf(stderr, "%s: missing field \"%s\"\n",
                             where.c_str(), name.c_str());
                ok = false;
            } else if (!kindMatches(*f, kind.string)) {
                std::fprintf(stderr, "%s: field \"%s\" is not a %s\n",
                             where.c_str(), name.c_str(),
                             kind.string.c_str());
                ok = false;
            }
        }
    }
    const Value *opt = spec.find("optional");
    if (opt && opt->isObject()) {
        for (const auto &[name, kind] : opt->object) {
            const Value *f = rec.find(name);
            if (f && !kindMatches(*f, kind.string)) {
                std::fprintf(stderr, "%s: field \"%s\" is not a %s\n",
                             where.c_str(), name.c_str(),
                             kind.string.c_str());
                ok = false;
            }
        }
    }
    if (!ok)
        ++errors;
    return ok;
}

unsigned
validateNdjson(const std::string &path, const Value &schema)
{
    const Value *records = schema.find("records");
    if (!records || !records->isObject()) {
        std::fprintf(stderr, "schema has no \"records\" object\n");
        return 1;
    }
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "cannot open %s\n", path.c_str());
        return 1;
    }
    unsigned errors = 0;
    bool sawMeta = false;
    std::string line;
    size_t lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        if (line.empty())
            continue;
        const std::string where = path + ":" + std::to_string(lineno);
        Value v;
        std::string err;
        if (!obs::json::parse(line, v, &err)) {
            std::fprintf(stderr, "%s: %s\n", where.c_str(), err.c_str());
            ++errors;
            continue;
        }
        const std::string type = v.stringOr("type", "");
        const Value *spec = records->find(type);
        if (!spec) {
            std::fprintf(stderr, "%s: unknown record type \"%s\"\n",
                         where.c_str(), type.c_str());
            ++errors;
            continue;
        }
        if (type == "meta") {
            sawMeta = true;
            if (lineno != 1) {
                std::fprintf(stderr, "%s: meta record is not line 1\n",
                             where.c_str());
                ++errors;
            }
            if (checkFields(v, *spec, where, errors)) {
                // Any version in the schema's accepted_versions list is
                // valid (older captures stay readable); with no list,
                // only the current version is.
                const double ver = v.numberOr("schema_version", 0);
                bool accepted = ver == obs::kSchemaVersion;
                const Value *acc = schema.find("accepted_versions");
                if (acc && acc->isArray())
                    for (const Value &av : acc->array)
                        accepted = accepted ||
                                   (av.isNumber() && av.number == ver);
                if (!accepted) {
                    std::fprintf(
                        stderr, "%s: schema_version %.0f not accepted\n",
                        where.c_str(), ver);
                    ++errors;
                }
            }
            continue;
        }
        checkFields(v, *spec, where, errors);
    }
    if (!sawMeta) {
        std::fprintf(stderr, "%s: no meta record\n", path.c_str());
        ++errors;
    }
    return errors;
}

unsigned
validateTrace(const std::string &path, const Value &schema)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "cannot open %s\n", path.c_str());
        return 1;
    }
    const std::string text{std::istreambuf_iterator<char>(in),
                           std::istreambuf_iterator<char>()};
    Value v;
    std::string err;
    if (!obs::json::parse(text, v, &err)) {
        std::fprintf(stderr, "%s: %s\n", path.c_str(), err.c_str());
        return 1;
    }
    const Value *events = v.find("traceEvents");
    if (!events || !events->isArray()) {
        std::fprintf(stderr, "%s: no traceEvents array\n", path.c_str());
        return 1;
    }
    const Value *trace = schema.find("trace");
    const Value *req = trace ? trace->find("event_required") : nullptr;
    unsigned errors = 0;
    for (size_t i = 0; i < events->array.size(); ++i) {
        const Value &e = events->array[i];
        const std::string where =
            path + ": traceEvents[" + std::to_string(i) + "]";
        if (!e.isObject()) {
            std::fprintf(stderr, "%s: not an object\n", where.c_str());
            ++errors;
            continue;
        }
        if (req && req->isObject()) {
            for (const auto &[name, kind] : req->object) {
                const Value *f = e.find(name);
                if (!f || !kindMatches(*f, kind.string)) {
                    std::fprintf(stderr,
                                 "%s: field \"%s\" missing or not a %s\n",
                                 where.c_str(), name.c_str(),
                                 kind.string.c_str());
                    ++errors;
                }
            }
        }
    }
    return errors;
}

int
validate(const std::vector<std::string> &paths,
         const std::string &schemaPath)
{
    std::ifstream in(schemaPath);
    if (!in) {
        std::fprintf(stderr, "msim_report: cannot open schema %s\n",
                     schemaPath.c_str());
        return 1;
    }
    const std::string text{std::istreambuf_iterator<char>(in),
                           std::istreambuf_iterator<char>()};
    Value schema;
    std::string err;
    if (!obs::json::parse(text, schema, &err)) {
        std::fprintf(stderr, "msim_report: %s: %s\n", schemaPath.c_str(),
                     err.c_str());
        return 1;
    }

    unsigned errors = 0;
    for (const std::string &p : paths) {
        const bool isTrace =
            p.size() >= 11 && p.rfind(".trace.json") == p.size() - 11;
        const unsigned e = isTrace ? validateTrace(p, schema)
                                   : validateNdjson(p, schema);
        std::printf("%s: %s (%u errors)\n", p.c_str(),
                    e ? "FAIL" : "ok", e);
        errors += e;
    }
    return errors ? 1 : 0;
}

void
usage(const char *argv0)
{
    std::printf(
        "usage: %s <capture.ndjson>                 summary report\n"
        "       %s --diff <a.ndjson> <b.ndjson>     compare two captures\n"
        "       %s --hot-sites [--top N] <capture>  rank kernel sites\n"
        "       %s --site-diff <a> <b>              per-kernel stall diff\n"
        "       %s --validate [--schema P] FILE...  schema-check files\n"
        "\n"
        "Reads the NDJSON written by any msim binary run with\n"
        "--obs-out=<base> and prints per-run stall breakdowns (the\n"
        "paper's Busy/FUstall/L1hit/L1miss split), cache and MSHR\n"
        "summaries, timeline occupancy, host span totals, metric\n"
        "values, and per-kernel site attribution — no simulation rerun\n"
        "needed. --hot-sites ranks annotated kernel regions by\n"
        "attributed cycles (default top 10); --site-diff matches runs\n"
        "by label and sites by name to compare per-kernel stall tables\n"
        "(e.g. scalar vs VIS). Sites flagged '~' are sampled-replay\n"
        "estimates. Files ending in .trace.json validate as Chrome\n"
        "trace-event JSON; everything else as NDJSON. Default schema:\n"
        "tools/obs_schema.json.\n",
        argv0, argv0, argv0, argv0, argv0);
}

} // namespace

int
main(int argc, char **argv)
{
    bool doDiff = false, doValidate = false;
    bool doHotSites = false, doSiteDiff = false;
    unsigned topN = 10;
    std::string schemaPath = "tools/obs_schema.json";
    std::vector<std::string> paths;

    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--diff") == 0) {
            doDiff = true;
        } else if (std::strcmp(argv[i], "--validate") == 0) {
            doValidate = true;
        } else if (std::strcmp(argv[i], "--hot-sites") == 0) {
            doHotSites = true;
        } else if (std::strcmp(argv[i], "--site-diff") == 0) {
            doSiteDiff = true;
        } else if (std::strcmp(argv[i], "--top") == 0 && i + 1 < argc) {
            topN = static_cast<unsigned>(std::atoi(argv[++i]));
        } else if (std::strcmp(argv[i], "--schema") == 0 && i + 1 < argc) {
            schemaPath = argv[++i];
        } else if (std::strcmp(argv[i], "--help") == 0) {
            usage(argv[0]);
            return 0;
        } else if (argv[i][0] == '-') {
            std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
            usage(argv[0]);
            return 2;
        } else {
            paths.push_back(argv[i]);
        }
    }

    if (doValidate && !paths.empty())
        return validate(paths, schemaPath);
    if (doDiff && paths.size() == 2)
        return diff(paths[0], paths[1]);
    if (doSiteDiff && paths.size() == 2)
        return siteDiff(paths[0], paths[1]);
    if (doHotSites && paths.size() == 1)
        return hotSites(paths[0], topN ? topN : 10);
    if (!doDiff && !doValidate && !doHotSites && !doSiteDiff &&
        paths.size() == 1)
        return report(paths[0]);

    usage(argv[0]);
    return 2;
}
