/**
 * @file
 * Figure/table formatting helpers: normalized execution-time breakdowns
 * in the style of the paper's stacked bars.
 */

#ifndef MSIM_CORE_REPORT_HH_
#define MSIM_CORE_REPORT_HH_

#include <string>
#include <vector>

#include "sim/runner.hh"

namespace msim::core
{

/** One stacked bar of Figure 1: components normalized to a baseline. */
struct BreakdownBar
{
    std::string label;
    double total = 0;   ///< normalized execution time (baseline = 100)
    double busy = 0;
    double fuStall = 0;
    double memL1Hit = 0;
    double memL1Miss = 0;
};

/** Build a bar from a run, normalized so @p baseline_cycles == 100. */
BreakdownBar makeBar(const std::string &label, const sim::RunResult &r,
                     double baseline_cycles);

/** Render bars as table rows (label, total, busy, fu, l1hit, l1miss). */
std::string renderBars(const std::string &title,
                       const std::vector<BreakdownBar> &bars);

/** "1.83X" style speedup formatting. */
std::string speedupStr(double base_cycles, double new_cycles);

} // namespace msim::core

#endif // MSIM_CORE_REPORT_HH_
