#include "core/registry.hh"

#include <stdexcept>

#include "common/logging.hh"
#include "jpeg/traced.hh"
#include "kernels/addition.hh"
#include "kernels/blend.hh"
#include "kernels/conv.hh"
#include "kernels/copy_invert.hh"
#include "kernels/dotprod.hh"
#include "kernels/erode.hh"
#include "kernels/lookup.hh"
#include "kernels/scaling.hh"
#include "kernels/sepconv.hh"
#include "kernels/thresh.hh"
#include "kernels/transpose.hh"
#include "mpeg/traced.hh"

namespace msim::core
{

const std::vector<Benchmark> &
allBenchmarks()
{
    static const std::vector<Benchmark> benchmarks = [] {
        std::vector<Benchmark> v;
        auto add = [&v](std::string name, Category cat, bool pf,
                        auto fn) {
            v.push_back(Benchmark{std::move(name), cat, pf,
                                  std::move(fn)});
        };
        using prog::TraceBuilder;

        add("addition", Category::ImageKernel, true,
            [](TraceBuilder &tb, Variant var) {
                kernels::runAddition(tb, var);
            });
        add("blend", Category::ImageKernel, true,
            [](TraceBuilder &tb, Variant var) {
                kernels::runBlend(tb, var);
            });
        add("conv", Category::ImageKernel, true,
            [](TraceBuilder &tb, Variant var) {
                kernels::runConv(tb, var);
            });
        add("dotprod", Category::ImageKernel, true,
            [](TraceBuilder &tb, Variant var) {
                kernels::runDotprod(tb, var);
            });
        add("scaling", Category::ImageKernel, true,
            [](TraceBuilder &tb, Variant var) {
                kernels::runScaling(tb, var);
            });
        add("thresh", Category::ImageKernel, true,
            [](TraceBuilder &tb, Variant var) {
                kernels::runThresh(tb, var);
            });
        add("cjpeg", Category::ImageCoding, true,
            [](TraceBuilder &tb, Variant var) {
                jpeg::runCjpeg(tb, var, /*progressive=*/true);
            });
        add("djpeg", Category::ImageCoding, true,
            [](TraceBuilder &tb, Variant var) {
                jpeg::runDjpeg(tb, var, /*progressive=*/true);
            });
        add("cjpeg-np", Category::ImageCoding, false,
            [](TraceBuilder &tb, Variant var) {
                jpeg::runCjpeg(tb, var, /*progressive=*/false);
            });
        add("djpeg-np", Category::ImageCoding, false,
            [](TraceBuilder &tb, Variant var) {
                jpeg::runDjpeg(tb, var, /*progressive=*/false);
            });
        add("mpeg-enc", Category::VideoCoding, false,
            [](TraceBuilder &tb, Variant var) {
                mpeg::runMpegEnc(tb, var);
            });
        add("mpeg-dec", Category::VideoCoding, true,
            [](TraceBuilder &tb, Variant var) {
                mpeg::runMpegDec(tb, var);
            });
        // The remaining VSDK-style kernels (the paper studied all 14
        // kernels but reported six; these round out the suite and are
        // kept out of paperBenchmarks()).
        add("copy", Category::ImageKernel, false,
            [](TraceBuilder &tb, Variant var) {
                kernels::runCopy(tb, var);
            });
        add("invert", Category::ImageKernel, false,
            [](TraceBuilder &tb, Variant var) {
                kernels::runInvert(tb, var);
            });
        add("sepconv", Category::ImageKernel, true,
            [](TraceBuilder &tb, Variant var) {
                kernels::runSepconv(tb, var);
            });
        add("lookup", Category::ImageKernel, true,
            [](TraceBuilder &tb, Variant var) {
                kernels::runLookup(tb, var);
            });
        add("transpose", Category::ImageKernel, true,
            [](TraceBuilder &tb, Variant var) {
                kernels::runTranspose(tb, var);
            });
        add("erode", Category::ImageKernel, true,
            [](TraceBuilder &tb, Variant var) {
                kernels::runErode(tb, var);
            });
        return v;
    }();
    return benchmarks;
}

std::vector<const Benchmark *>
paperBenchmarks()
{
    std::vector<const Benchmark *> v;
    static const std::vector<std::string> extras = {
        "copy", "invert", "sepconv", "lookup", "transpose", "erode"};
    for (const Benchmark &b : allBenchmarks()) {
        bool extra = false;
        for (const auto &e : extras)
            extra = extra || b.name == e;
        if (!extra)
            v.push_back(&b);
    }
    return v;
}

const Benchmark &
findBenchmark(const std::string &name)
{
    for (const Benchmark &b : allBenchmarks())
        if (b.name == name)
            return b;
    // Thrown (not fatal()) so batch drivers can surface a bad job name
    // to their caller instead of killing the process from a worker.
    throw std::invalid_argument("unknown benchmark '" + name + "'");
}

} // namespace msim::core
