/**
 * @file
 * The public experiment API: run a benchmark variant on a machine, and
 * run batches of independent simulations across host threads (each
 * simulation is fully self-contained).
 */

#ifndef MSIM_CORE_EXPERIMENT_HH_
#define MSIM_CORE_EXPERIMENT_HH_

#include <string>
#include <vector>

#include "core/registry.hh"
#include "sim/runner.hh"

namespace msim::core
{

using sim::MachineConfig;
using sim::RunResult;

/** One simulation request. */
struct Job
{
    std::string benchmark;
    Variant variant = Variant::Scalar;
    MachineConfig machine;
};

/** Run one benchmark variant on one machine. */
RunResult runBenchmark(const std::string &name, Variant variant,
                       const MachineConfig &machine);

/**
 * Run a batch of jobs, using up to @p threads host threads (0 = one
 * per hardware thread). Results are in job order.
 */
std::vector<RunResult> runJobs(const std::vector<Job> &jobs,
                               unsigned threads = 0);

} // namespace msim::core

#endif // MSIM_CORE_EXPERIMENT_HH_
