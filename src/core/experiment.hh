/**
 * @file
 * The public experiment API: run a benchmark variant on a machine, and
 * run batches of independent simulations across host threads.
 *
 * Batches are sweep-aware: jobs are grouped by trace key — (benchmark,
 * variant, skewArrays, visFeatures), the full set of knobs the dynamic
 * instruction stream depends on — and each unique stream is recorded
 * once, then replayed against every machine config in the group
 * (record-once / replay-many; see DESIGN.md).  Workers run on a
 * persistent process-wide pool, and an exception thrown inside a worker
 * (e.g. an unknown benchmark name) is rethrown on the calling thread.
 */

#ifndef MSIM_CORE_EXPERIMENT_HH_
#define MSIM_CORE_EXPERIMENT_HH_

#include <string>
#include <vector>

#include "core/registry.hh"
#include "sim/runner.hh"

namespace msim::core
{

using sim::MachineConfig;
using sim::RunResult;

/** One simulation request. */
struct Job
{
    std::string benchmark;
    Variant variant = Variant::Scalar;
    MachineConfig machine;
};

/** How runJobs drives the timing model. */
enum class JobMode
{
    Auto,     ///< Recorded, unless the MSIM_LIVE_JOBS env var is set
    Recorded, ///< record each unique trace once, replay per config
    Live      ///< re-run the functional benchmark for every job
};

/** Run one benchmark variant on one machine (always live). */
RunResult runBenchmark(const std::string &name, Variant variant,
                       const MachineConfig &machine);

/**
 * Run a batch of jobs, using up to @p threads host threads (0 = one
 * per hardware thread). Results are in job order. The first exception
 * thrown by any job is rethrown here.
 */
std::vector<RunResult> runJobs(const std::vector<Job> &jobs,
                               unsigned threads = 0,
                               JobMode mode = JobMode::Auto);

} // namespace msim::core

#endif // MSIM_CORE_EXPERIMENT_HH_
