/**
 * @file
 * The public experiment API: run a benchmark variant on a machine, and
 * run batches of independent simulations across host threads.
 *
 * Batches are sweep-aware: jobs are grouped by trace key — (benchmark,
 * variant, skewArrays, visFeatures), the full set of knobs the dynamic
 * instruction stream depends on — and each unique stream is recorded
 * once, then replayed against every machine config in the group
 * (record-once / replay-many; see DESIGN.md).  Workers run on a
 * persistent process-wide pool, and an exception thrown inside a worker
 * (e.g. an unknown benchmark name) is rethrown on the calling thread.
 */

#ifndef MSIM_CORE_EXPERIMENT_HH_
#define MSIM_CORE_EXPERIMENT_HH_

#include <string>
#include <vector>

#include <cstdio>

#include "core/registry.hh"
#include "sim/runner.hh"
#include "sim/sampled.hh"

namespace msim::core
{

using sim::MachineConfig;
using sim::RunResult;

/** One simulation request. */
struct Job
{
    std::string benchmark;
    Variant variant = Variant::Scalar;
    MachineConfig machine;
};

/** How runJobs drives the timing model. */
enum class JobMode
{
    Auto,     ///< Recorded, unless the MSIM_LIVE_JOBS env var is set
    Recorded, ///< record each unique trace once, replay per config
    Live      ///< re-run the functional benchmark for every job
};

/** Run one benchmark variant on one machine (always live). */
RunResult runBenchmark(const std::string &name, Variant variant,
                       const MachineConfig &machine);

/**
 * Run a batch of jobs, using up to @p threads host threads (0 = one
 * per hardware thread). Results are in job order. The first exception
 * thrown by any job is rethrown here.
 */
std::vector<RunResult> runJobs(const std::vector<Job> &jobs,
                               unsigned threads = 0,
                               JobMode mode = JobMode::Auto);

/**
 * Statistically sampled variant of runJobs (sim/sampled.hh): each
 * unique trace is recorded once, its machine-independent SampledPlan
 * is prepared once, and every machine config in the group replays the
 * plan's measured chunks only.  Estimates carry 95% confidence
 * half-widths; jobs the sampler cannot drive fall back to exact replay
 * per result (SampledResult::exact).
 *
 * Strictly opt-in: this is a separate entry point — runJobs and every
 * default path stay bit-exact, and nothing routes here implicitly
 * (drivers expose it behind an explicit --sampled flag).
 */
std::vector<sim::SampledResult> runJobsSampled(
    const std::vector<Job> &jobs,
    const sim::SampledParams &params = {}, unsigned threads = 0);

/**
 * Serialize a sampled batch as one results-JSON document (error bars
 * included: every estimate is a {"mean", "ci95"} pair, and exact
 * fallbacks are flagged per result).
 */
void writeSampledResultsJson(std::FILE *f, const std::vector<Job> &jobs,
                             const std::vector<sim::SampledResult> &results,
                             const sim::SampledParams &params);

} // namespace msim::core

#endif // MSIM_CORE_EXPERIMENT_HH_
