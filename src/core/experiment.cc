#include "core/experiment.hh"

#include <atomic>
#include <thread>

namespace msim::core
{

RunResult
runBenchmark(const std::string &name, Variant variant,
             const MachineConfig &machine)
{
    const Benchmark &bench = findBenchmark(name);
    return sim::runTrace(
        [&bench, variant](prog::TraceBuilder &tb) {
            bench.generate(tb, variant);
        },
        machine);
}

std::vector<RunResult>
runJobs(const std::vector<Job> &jobs, unsigned threads)
{
    if (threads == 0) {
        threads = std::thread::hardware_concurrency();
        if (threads == 0)
            threads = 4;
    }
    threads = std::min<unsigned>(threads,
                                 static_cast<unsigned>(jobs.size()));

    std::vector<RunResult> results(jobs.size());
    std::atomic<size_t> next{0};
    auto worker = [&] {
        for (;;) {
            const size_t i = next.fetch_add(1);
            if (i >= jobs.size())
                return;
            results[i] = runBenchmark(jobs[i].benchmark,
                                      jobs[i].variant, jobs[i].machine);
        }
    };
    std::vector<std::thread> pool;
    for (unsigned t = 0; t < threads; ++t)
        pool.emplace_back(worker);
    for (auto &t : pool)
        t.join();
    return results;
}

} // namespace msim::core
