#include "core/experiment.hh"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <numeric>
#include <tuple>

#include "common/thread_pool.hh"

namespace msim::core
{

namespace
{

/** Everything the dynamic instruction stream depends on. */
using TraceKey = std::tuple<std::string, int, bool, bool, bool, bool>;

TraceKey
keyOf(const Job &job)
{
    const prog::VisFeatures &f = job.machine.visFeatures;
    return {job.benchmark, static_cast<int>(job.variant),
            job.machine.skewArrays, f.direct16x16Mul, f.hasPmaddwd,
            f.hasPdist};
}

/** One unique trace shared by all jobs with the same key. */
struct TraceEntry
{
    std::mutex m;
    size_t ordinal = 0; // group's position in key order (for sorting)
    bool ready = false;
    std::exception_ptr error; // recording failed
    prog::RecordedTrace trace;
    size_t remaining = 0; // jobs still needing the trace
};

sim::RunResult
runReplayed(const Job &job, TraceEntry &entry)
{
    {
        std::lock_guard lock(entry.m);
        if (entry.error)
            std::rethrow_exception(entry.error);
        if (!entry.ready) {
            try {
                const Benchmark &bench = findBenchmark(job.benchmark);
                const Variant variant = job.variant;
                entry.trace = sim::recordTrace(
                    [&bench, variant](prog::TraceBuilder &tb) {
                        bench.generate(tb, variant);
                    },
                    job.machine.skewArrays, job.machine.visFeatures);
                entry.ready = true;
            } catch (...) {
                entry.error = std::current_exception();
                throw;
            }
        }
    }
    sim::RunResult r = sim::replayTrace(entry.trace, job.machine);
    {
        std::lock_guard lock(entry.m);
        if (--entry.remaining == 0)
            entry.trace = prog::RecordedTrace{}; // last user: drop buffers
    }
    return r;
}

} // namespace

RunResult
runBenchmark(const std::string &name, Variant variant,
             const MachineConfig &machine)
{
    const Benchmark &bench = findBenchmark(name);
    return sim::runTrace(
        [&bench, variant](prog::TraceBuilder &tb) {
            bench.generate(tb, variant);
        },
        machine);
}

std::vector<RunResult>
runJobs(const std::vector<Job> &jobs, unsigned threads, JobMode mode)
{
    if (mode == JobMode::Auto) {
        const char *live = std::getenv("MSIM_LIVE_JOBS");
        mode = (live && *live && *live != '0') ? JobMode::Live
                                               : JobMode::Recorded;
    }

    std::vector<RunResult> results(jobs.size());

    // Group jobs by trace key and order the work so each group's jobs
    // are contiguous: at most #workers traces are ever live at once,
    // and each is dropped after its group's last replay.
    std::map<TraceKey, std::unique_ptr<TraceEntry>> traces;
    std::vector<TraceEntry *> entryOf(jobs.size(), nullptr);
    std::vector<size_t> order(jobs.size());
    std::iota(order.begin(), order.end(), size_t{0});

    if (mode == JobMode::Recorded) {
        for (size_t i = 0; i < jobs.size(); ++i) {
            auto &slot = traces[keyOf(jobs[i])];
            if (!slot)
                slot = std::make_unique<TraceEntry>();
            ++slot->remaining;
            entryOf[i] = slot.get();
        }
        size_t ord = 0;
        for (auto &[key, entry] : traces)
            entry->ordinal = ord++;
        std::stable_sort(order.begin(), order.end(),
                         [&](size_t a, size_t b) {
                             return entryOf[a]->ordinal <
                                    entryOf[b]->ordinal;
                         });
    }

    globalPool().parallelFor(
        jobs.size(),
        [&](size_t n) {
            const size_t i = order[n];
            const Job &job = jobs[i];
            results[i] = mode == JobMode::Recorded
                             ? runReplayed(job, *entryOf[i])
                             : runBenchmark(job.benchmark, job.variant,
                                            job.machine);
        },
        threads);

    return results;
}

} // namespace msim::core
