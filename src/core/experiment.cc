#include "core/experiment.hh"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <tuple>

#include "common/env.hh"
#include "common/thread_pool.hh"
#include "obs/json.hh"
#include "obs/metrics.hh"
#include "obs/session.hh"
#include "obs/span.hh"

namespace msim::core
{

namespace
{

#if MSIM_OBS_ENABLED

/** Experiment-level metrics (registered once, updated per work unit). */
struct ExperimentMetrics
{
    obs::MetricId jobs = obs::metricId("experiment.jobs",
                                       obs::MetricKind::Counter);
    obs::MetricId traces = obs::metricId("experiment.traces_recorded",
                                         obs::MetricKind::Counter);
    obs::MetricId batchItems = obs::metricId("experiment.batch_items",
                                             obs::MetricKind::Counter);
    obs::MetricId traceInsts = obs::metricId("experiment.trace_instructions",
                                             obs::MetricKind::Dist);
};

const ExperimentMetrics &
experimentMetrics()
{
    static const ExperimentMetrics m;
    return m;
}

/** "benchmark/variant" run label for a job (names obs timelines). */
std::string
labelOf(const Job &job)
{
    return job.benchmark + "/" + prog::variantName(job.variant);
}

#endif // MSIM_OBS_ENABLED

/** Everything the dynamic instruction stream depends on. */
using TraceKey = std::tuple<std::string, int, bool, bool, bool, bool>;

TraceKey
keyOf(const Job &job)
{
    const prog::VisFeatures &f = job.machine.visFeatures;
    return {job.benchmark, static_cast<int>(job.variant),
            job.machine.skewArrays, f.direct16x16Mul, f.hasPmaddwd,
            f.hasPdist};
}

/** One unique trace shared by all jobs with the same key. */
struct TraceEntry
{
    std::mutex m;
    size_t ordinal = 0; // group's position in key order (for sorting)
    bool ready = false;
    std::exception_ptr error; // recording failed
    prog::RecordedTrace trace;
    size_t remaining = 0; // jobs still needing the trace
};

/** Record the group's trace if nobody has yet (first worker wins). */
void
ensureRecorded(const Job &job, TraceEntry &entry)
{
    std::lock_guard lock(entry.m);
    if (entry.error)
        std::rethrow_exception(entry.error);
    if (!entry.ready) {
        try {
            const Benchmark &bench = findBenchmark(job.benchmark);
            const Variant variant = job.variant;
            entry.trace = sim::recordTrace(
                [&bench, variant](prog::TraceBuilder &tb) {
                    bench.generate(tb, variant);
                },
                job.machine.skewArrays, job.machine.visFeatures);
            entry.ready = true;
#if MSIM_OBS_ENABLED
            obs::count(experimentMetrics().traces);
            obs::observe(experimentMetrics().traceInsts,
                         static_cast<double>(entry.trace.instCount()));
#endif
        } catch (...) {
            entry.error = std::current_exception();
            throw;
        }
    }
}

/**
 * One recorded-mode work unit: a contiguous slice of one trace group's
 * jobs, replayed in a single batched trace traversal
 * (sim::replayTraceBatch).  Oversized groups are split across several
 * items so a sweep dominated by one trace still uses every thread.
 */
struct BatchItem
{
    TraceEntry *entry = nullptr;
    std::vector<size_t> jobIdx; ///< original job indices, in job order
};

void
runBatchItem(const std::vector<Job> &jobs, const BatchItem &item,
             std::vector<sim::RunResult> &results)
{
#if MSIM_OBS_ENABLED
    obs::ScopedRunLabel runLabel(labelOf(jobs[item.jobIdx.front()]));
    obs::count(experimentMetrics().batchItems);
    obs::count(experimentMetrics().jobs, item.jobIdx.size());
    MSIM_OBS_SPAN(span, "batch.item", obs::runLabel());
#endif
    ensureRecorded(jobs[item.jobIdx.front()], *item.entry);

    std::vector<sim::MachineConfig> machines;
    machines.reserve(item.jobIdx.size());
    for (const size_t i : item.jobIdx)
        machines.push_back(jobs[i].machine);

    std::vector<sim::RunResult> rs =
        sim::replayTraceBatch(item.entry->trace, machines);
    for (size_t k = 0; k < item.jobIdx.size(); ++k)
        results[item.jobIdx[k]] = rs[k];

    std::lock_guard lock(item.entry->m);
    item.entry->remaining -= item.jobIdx.size();
    if (item.entry->remaining == 0)
        item.entry->trace = prog::RecordedTrace{}; // last user: drop buffers
}

} // namespace

RunResult
runBenchmark(const std::string &name, Variant variant,
             const MachineConfig &machine)
{
    const Benchmark &bench = findBenchmark(name);
#if MSIM_OBS_ENABLED
    obs::ScopedRunLabel runLabel(name + "/" +
                                 prog::variantName(variant));
    obs::count(experimentMetrics().jobs);
#endif
    return sim::runTrace(
        [&bench, variant](prog::TraceBuilder &tb) {
            bench.generate(tb, variant);
        },
        machine);
}

std::vector<RunResult>
runJobs(const std::vector<Job> &jobs, unsigned threads, JobMode mode)
{
    if (mode == JobMode::Auto) {
        mode = envBool("MSIM_LIVE_JOBS", false) ? JobMode::Live
                                                : JobMode::Recorded;
    }

    std::vector<RunResult> results(jobs.size());

    if (mode == JobMode::Recorded) {
        // Group jobs by trace key: each unique stream is recorded once
        // and its whole group replayed in batched trace traversals.  At
        // most #workers traces are ever live at once, and each is
        // dropped after its group's last slice.
        std::map<TraceKey, std::unique_ptr<TraceEntry>> traces;
        std::vector<TraceEntry *> entryOf(jobs.size(), nullptr);
        for (size_t i = 0; i < jobs.size(); ++i) {
            auto &slot = traces[keyOf(jobs[i])];
            if (!slot)
                slot = std::make_unique<TraceEntry>();
            ++slot->remaining;
            entryOf[i] = slot.get();
        }
        size_t ord = 0;
        for (auto &[key, entry] : traces)
            entry->ordinal = ord++;

        std::vector<std::vector<size_t>> groupJobs(traces.size());
        for (size_t i = 0; i < jobs.size(); ++i)
            groupJobs[entryOf[i]->ordinal].push_back(i);
        std::vector<TraceEntry *> entryByOrd(traces.size());
        for (auto &[key, entry] : traces)
            entryByOrd[entry->ordinal] = entry.get();

        // One batch per group keeps the whole-sweep traversal savings;
        // groups larger than their proportional share of the thread
        // budget are split into contiguous slices so a sweep dominated
        // by one trace still occupies every thread.
        const unsigned hw = globalPool().workerCount() + 1;
        const unsigned threadsEff =
            threads == 0 ? hw : std::min(threads, hw);
        std::vector<BatchItem> items;
        items.reserve(traces.size());
        for (size_t g = 0; g < groupJobs.size(); ++g) {
            const std::vector<size_t> &members = groupJobs[g];
            const size_t gs = members.size();
            size_t sub = (gs * threadsEff + jobs.size() - 1) / jobs.size();
            sub = std::clamp<size_t>(sub, 1, gs);
            for (size_t s = 0; s < sub; ++s) {
                const size_t begin = gs * s / sub;
                const size_t end = gs * (s + 1) / sub;
                BatchItem item;
                item.entry = entryByOrd[g];
                item.jobIdx.assign(members.begin() +
                                       static_cast<ptrdiff_t>(begin),
                                   members.begin() +
                                       static_cast<ptrdiff_t>(end));
                items.push_back(std::move(item));
            }
        }

        globalPool().parallelFor(
            items.size(),
            [&](size_t n) { runBatchItem(jobs, items[n], results); },
            threads);
        return results;
    }

    globalPool().parallelFor(
        jobs.size(),
        [&](size_t i) {
            const Job &job = jobs[i];
            results[i] =
                runBenchmark(job.benchmark, job.variant, job.machine);
        },
        threads);

    return results;
}

namespace
{

/**
 * One trace group's shared sampling state: the recorded trace plus the
 * machine-independent plan, prepared by the first worker to need it.
 * The plan references the trace, so both live for the whole batch.
 */
struct SampledEntry
{
    std::mutex m;
    bool ready = false;
    std::exception_ptr error;
    prog::RecordedTrace trace;
    sim::SampledPlan plan;
};

void
ensurePrepared(const Job &job, SampledEntry &entry,
               const sim::SampledParams &params)
{
    std::lock_guard lock(entry.m);
    if (entry.error)
        std::rethrow_exception(entry.error);
    if (!entry.ready) {
        try {
            const Benchmark &bench = findBenchmark(job.benchmark);
            const Variant variant = job.variant;
            entry.trace = sim::recordTrace(
                [&bench, variant](prog::TraceBuilder &tb) {
                    bench.generate(tb, variant);
                },
                job.machine.skewArrays, job.machine.visFeatures);
            entry.plan = sim::prepareSampled(entry.trace, params);
            entry.ready = true;
#if MSIM_OBS_ENABLED
            obs::count(experimentMetrics().traces);
            obs::observe(experimentMetrics().traceInsts,
                         static_cast<double>(entry.trace.instCount()));
#endif
        } catch (...) {
            entry.error = std::current_exception();
            throw;
        }
    }
}

/** Write one {"mean": ..., "ci95": ...} estimate member. */
void
estField(obs::JsonWriter &w, std::string_view name,
         const sim::Estimate &e)
{
    w.key(name);
    w.beginObject();
    w.field("mean", e.mean);
    w.field("ci95", e.ci95);
    w.endObject();
}

} // namespace

std::vector<sim::SampledResult>
runJobsSampled(const std::vector<Job> &jobs,
               const sim::SampledParams &params, unsigned threads)
{
    // Same trace-key grouping as recorded mode: one capture and one
    // plan per unique dynamic stream, shared by every sweep point.
    std::map<TraceKey, std::unique_ptr<SampledEntry>> groups;
    std::vector<SampledEntry *> entryOf(jobs.size(), nullptr);
    for (size_t i = 0; i < jobs.size(); ++i) {
        auto &slot = groups[keyOf(jobs[i])];
        if (!slot)
            slot = std::make_unique<SampledEntry>();
        entryOf[i] = slot.get();
    }

    std::vector<sim::SampledResult> results(jobs.size());
    globalPool().parallelFor(
        jobs.size(),
        [&](size_t i) {
            const Job &job = jobs[i];
#if MSIM_OBS_ENABLED
            obs::ScopedRunLabel runLabel(labelOf(job));
            obs::count(experimentMetrics().jobs);
#endif
            ensurePrepared(job, *entryOf[i], params);
            results[i] =
                sim::replayTraceSampled(entryOf[i]->plan, job.machine);
        },
        threads);
    return results;
}

void
writeSampledResultsJson(std::FILE *f, const std::vector<Job> &jobs,
                        const std::vector<sim::SampledResult> &results,
                        const sim::SampledParams &params)
{
    obs::JsonWriter w(f);
    w.beginObject();
    w.field("schema_version", obs::kSchemaVersion);
    w.field("mode", "sampled");
    w.key("params");
    w.beginObject();
    w.field("chunk_instructions", params.chunkInstructions);
    w.field("interval_chunks", params.intervalChunks);
    w.field("warmup_mem_ops", params.warmupMemOps);
    w.endObject();
    w.key("results");
    w.beginArray();
    for (size_t i = 0; i < results.size() && i < jobs.size(); ++i) {
        const sim::SampledResult &r = results[i];
        w.beginObject();
        w.field("benchmark", jobs[i].benchmark);
        w.field("variant", prog::variantName(jobs[i].variant));
        w.field("machine", jobs[i].machine.label);
        w.field("exact", r.exact);
        w.field("instructions", r.instructions);
        w.field("measured_instructions", r.measuredInstructions);
        w.field("measured_chunks", r.measuredChunks);
        estField(w, "cpi", r.cpi);
        estField(w, "cycles", r.cycles);
        estField(w, "frac_busy", r.fracBusy);
        estField(w, "frac_fu_stall", r.fracFuStall);
        estField(w, "frac_mem_l1_hit", r.fracMemL1Hit);
        estField(w, "frac_mem_l1_miss", r.fracMemL1Miss);
        estField(w, "mispredict_rate", r.mispredictRate);
        estField(w, "load_l1_miss_rate", r.loadL1MissRate);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    w.newline();
}

} // namespace msim::core
