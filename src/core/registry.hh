/**
 * @file
 * The benchmark registry: the paper's 12 workloads (Table 1) plus the
 * two extra VSDK kernels, addressable by name, each parameterized by
 * code-path variant.
 */

#ifndef MSIM_CORE_REGISTRY_HH_
#define MSIM_CORE_REGISTRY_HH_

#include <functional>
#include <string>
#include <vector>

#include "prog/trace_builder.hh"
#include "prog/variant.hh"

namespace msim::core
{

using prog::Variant;

/** Workload category (drives which experiments include it). */
enum class Category : u8
{
    ImageKernel, ///< VSDK image processing kernels
    ImageCoding, ///< JPEG codecs
    VideoCoding  ///< MPEG2 codecs
};

/** One registered benchmark. */
struct Benchmark
{
    std::string name;
    Category category;

    /** Paper Figure 3 includes only benchmarks with significant memory
     *  stall time; this flags the ones with a +PF variant. */
    bool hasPrefetchVariant = false;

    std::function<void(prog::TraceBuilder &, Variant)> generate;
};

/** All benchmarks, in the paper's Table-1 order (plus copy/invert). */
const std::vector<Benchmark> &allBenchmarks();

/** The 12 Table-1 benchmarks only. */
std::vector<const Benchmark *> paperBenchmarks();

/** Lookup by name; throws std::invalid_argument if unknown. */
const Benchmark &findBenchmark(const std::string &name);

} // namespace msim::core

#endif // MSIM_CORE_REGISTRY_HH_
