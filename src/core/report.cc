#include "core/report.hh"

#include <sstream>

#include "common/table.hh"

namespace msim::core
{

BreakdownBar
makeBar(const std::string &label, const sim::RunResult &r,
        double baseline_cycles)
{
    BreakdownBar bar;
    bar.label = label;
    const double scale =
        baseline_cycles > 0 ? 100.0 / baseline_cycles : 0.0;
    bar.total = static_cast<double>(r.exec.cycles) * scale;
    bar.busy = r.exec.busy * scale;
    bar.fuStall = r.exec.fuStall * scale;
    bar.memL1Hit = r.exec.memL1Hit * scale;
    bar.memL1Miss = r.exec.memL1Miss * scale;
    return bar;
}

std::string
renderBars(const std::string &title, const std::vector<BreakdownBar> &bars)
{
    Table t({"config", "total", "busy", "fu-stall", "l1-hit", "l1-miss"});
    for (const BreakdownBar &b : bars) {
        t.addRow({b.label, Table::num(b.total), Table::num(b.busy),
                  Table::num(b.fuStall), Table::num(b.memL1Hit),
                  Table::num(b.memL1Miss)});
    }
    std::ostringstream out;
    out << title << '\n' << t.render();
    return out.str();
}

std::string
speedupStr(double base_cycles, double new_cycles)
{
    if (new_cycles <= 0)
        return "n/a";
    return Table::num(base_cycles / new_cycles, 2) + "X";
}

} // namespace msim::core
