/**
 * @file
 * Telemetry session: the runtime gate and export point for the obs
 * layer. Nothing is recorded — spans are inert, engines get no
 * timeline, metrics still accumulate but go nowhere — until a session
 * is started, normally via `--obs-out=BASE` on a tool or bench command
 * line. While active, the session hands out one TimelineRecorder per
 * simulated run (per sweep lane under batched replay), and on finish()
 * writes two files:
 *
 *   BASE.ndjson      one JSON object per line: a `meta` header, then
 *                    `run` / `sample` / `span` / `metric` records
 *                    (schema: tools/obs_schema.json; consumed by
 *                    tools/msim_report).
 *   BASE.trace.json  Chrome trace-event JSON loadable in Perfetto:
 *                    counter tracks per run over simulated time (IPC,
 *                    stall mix, window/memq/MSHR occupancy; 1 trace µs
 *                    = 1 simulated cycle) plus host-time duration
 *                    events for the harness phases, one track per
 *                    thread.
 *
 * Only compiled when MSIM_OBS is on; inert inline stubs otherwise so
 * tools can keep their CLI plumbing unconditional.
 */

#ifndef MSIM_OBS_SESSION_HH_
#define MSIM_OBS_SESSION_HH_

#include <string>
#include <utility>

#include "common/types.hh"
#include "obs/obs.hh"

namespace msim::obs
{

/**
 * Version stamped into every JSON artifact this repo emits.  v2 added
 * the per-kernel `site` record (attribution profiler); v1 captures
 * remain readable — msim_report validates either version.
 */
inline constexpr int kSchemaVersion = 2;

struct SessionConfig
{
    std::string outBase;          ///< writes outBase.ndjson / .trace.json
    Cycle samplePeriod = 8192;    ///< cycles between timeline samples
    size_t timelineCapacity = 4096; ///< ring rows retained per run
};

#if MSIM_OBS_ENABLED

class TimelineRecorder;

class Session
{
  public:
    /** The active session, or nullptr. */
    static Session *active();

    /** Start recording; false if a session is already active. */
    static bool start(SessionConfig cfg);

    /**
     * Flush both output files and end the session. Idempotent. Must
     * only be called after in-flight runs complete: engines hold raw
     * pointers into the session's timelines.
     */
    static void finish();

    /**
     * New per-run recorder named @p label (falls back to the thread's
     * run label, then "run<N>"). Owned by the session; valid until
     * finish(). Thread-safe. Returns nullptr if capacity is exhausted.
     */
    TimelineRecorder *newTimeline(std::string label);

    const SessionConfig &config() const { return cfg_; }

  private:
    explicit Session(SessionConfig cfg);
    ~Session();

    void flush();

    struct Impl;
    Impl *impl_;
    SessionConfig cfg_;
};

/**
 * Thread-local label ("benchmark/variant@machine") naming the run the
 * calling thread is currently simulating; runner uses it to name
 * timelines when pool workers execute jobs.
 */
const std::string &runLabel();

class ScopedRunLabel
{
  public:
    explicit ScopedRunLabel(std::string label);
    ~ScopedRunLabel();

    ScopedRunLabel(const ScopedRunLabel &) = delete;
    ScopedRunLabel &operator=(const ScopedRunLabel &) = delete;

  private:
    std::string prev_;
};

/**
 * CLI plumbing: recognizes and consumes --obs-out=BASE,
 * --obs-period=N, --obs-capacity=N. Call startFromArgs() once parsing
 * is done; it starts a session iff --obs-out was seen.
 */
bool handleObsArg(const char *arg);
bool startFromArgs();

#else // MSIM_OBS_ENABLED

class TimelineRecorder;

class Session
{
  public:
    static Session *active() { return nullptr; }
    static bool start(const SessionConfig &) { return false; }
    static void finish() {}
    TimelineRecorder *newTimeline(const std::string &) { return nullptr; }
};

inline const std::string &
runLabel()
{
    static const std::string empty;
    return empty;
}

class ScopedRunLabel
{
  public:
    explicit ScopedRunLabel(std::string) {}
};

inline bool handleObsArg(const char *) { return false; }
inline bool startFromArgs() { return false; }

#endif // MSIM_OBS_ENABLED

} // namespace msim::obs

#endif // MSIM_OBS_SESSION_HH_
