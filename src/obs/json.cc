#include "obs/json.hh"

#include <cctype>
#include <cinttypes>
#include <cmath>
#include <cstdlib>
#include <cstring>

namespace msim::obs
{

// --- JsonWriter ------------------------------------------------------

void
JsonWriter::separate()
{
    if (stack_.empty())
        return;
    char &top = stack_.back();
    switch (top) {
      case 'o':
      case 'a':
        top = static_cast<char>(std::toupper(top));
        break;
      case 'O':
      case 'A':
        std::fputc(',', f_);
        break;
      case 'k':
        // The keyed value: key() already wrote the separator.
        top = 'O';
        break;
    }
}

void
JsonWriter::beginObject()
{
    separate();
    std::fputc('{', f_);
    stack_.push_back('o');
}

void
JsonWriter::endObject()
{
    stack_.pop_back();
    std::fputc('}', f_);
}

void
JsonWriter::beginArray()
{
    separate();
    std::fputc('[', f_);
    stack_.push_back('a');
}

void
JsonWriter::endArray()
{
    stack_.pop_back();
    std::fputc(']', f_);
}

void
JsonWriter::key(std::string_view k)
{
    separate();
    writeEscaped(k);
    std::fputc(':', f_);
    stack_.back() = 'k';
}

void
JsonWriter::writeEscaped(std::string_view s)
{
    std::fputc('"', f_);
    for (const char c : s) {
        switch (c) {
          case '"': std::fputs("\\\"", f_); break;
          case '\\': std::fputs("\\\\", f_); break;
          case '\n': std::fputs("\\n", f_); break;
          case '\r': std::fputs("\\r", f_); break;
          case '\t': std::fputs("\\t", f_); break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                std::fprintf(f_, "\\u%04x", c);
            else
                std::fputc(c, f_);
        }
    }
    std::fputc('"', f_);
}

void
JsonWriter::value(std::string_view s)
{
    separate();
    writeEscaped(s);
}

void
JsonWriter::value(double d)
{
    separate();
    if (!std::isfinite(d))
        d = 0.0;
    // %.17g round-trips any double but decorates simple values
    // ("0.10000000000000001"); try the short form first.
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.10g", d);
    if (std::strtod(buf, nullptr) != d)
        std::snprintf(buf, sizeof(buf), "%.17g", d);
    std::fputs(buf, f_);
}

void
JsonWriter::valueFixed(double d, int precision)
{
    separate();
    if (!std::isfinite(d))
        d = 0.0;
    std::fprintf(f_, "%.*f", precision, d);
}

void
JsonWriter::value(u64 v)
{
    separate();
    std::fprintf(f_, "%" PRIu64, v);
}

void
JsonWriter::value(s64 v)
{
    separate();
    std::fprintf(f_, "%" PRId64, v);
}

void
JsonWriter::value(bool b)
{
    separate();
    std::fputs(b ? "true" : "false", f_);
}

void
JsonWriter::newline()
{
    std::fputc('\n', f_);
}

// --- json::parse -----------------------------------------------------

namespace json
{

const Value *
Value::find(const std::string &k) const
{
    if (type != Type::Object)
        return nullptr;
    const auto it = object.find(k);
    return it == object.end() ? nullptr : &it->second;
}

double
Value::numberOr(const std::string &k, double dflt) const
{
    const Value *v = find(k);
    return v && v->isNumber() ? v->number : dflt;
}

std::string
Value::stringOr(const std::string &k, std::string dflt) const
{
    const Value *v = find(k);
    return v && v->isString() ? v->string : std::move(dflt);
}

namespace
{

class Parser
{
  public:
    Parser(std::string_view text, std::string *err)
        : s_(text), err_(err)
    {}

    bool
    document(Value &out)
    {
        skipWs();
        if (!value(out))
            return false;
        skipWs();
        if (pos_ != s_.size())
            return fail("trailing characters after document");
        return true;
    }

  private:
    bool
    fail(const char *why)
    {
        if (err_ && err_->empty())
            *err_ = "json error at offset " + std::to_string(pos_) +
                    ": " + why;
        return false;
    }

    void
    skipWs()
    {
        while (pos_ < s_.size() &&
               (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
                s_[pos_] == '\r'))
            ++pos_;
    }

    bool
    literal(const char *word, size_t n)
    {
        if (s_.size() - pos_ < n || s_.compare(pos_, n, word) != 0)
            return fail("invalid literal");
        pos_ += n;
        return true;
    }

    bool
    string(std::string &out)
    {
        ++pos_; // opening quote
        out.clear();
        while (pos_ < s_.size()) {
            const char c = s_[pos_++];
            if (c == '"')
                return true;
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (pos_ >= s_.size())
                break;
            const char e = s_[pos_++];
            switch (e) {
              case '"': out.push_back('"'); break;
              case '\\': out.push_back('\\'); break;
              case '/': out.push_back('/'); break;
              case 'b': out.push_back('\b'); break;
              case 'f': out.push_back('\f'); break;
              case 'n': out.push_back('\n'); break;
              case 'r': out.push_back('\r'); break;
              case 't': out.push_back('\t'); break;
              case 'u': {
                if (s_.size() - pos_ < 4)
                    return fail("truncated \\u escape");
                unsigned cp = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = s_[pos_++];
                    cp <<= 4;
                    if (h >= '0' && h <= '9')
                        cp |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        cp |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        cp |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        return fail("bad hex digit in \\u escape");
                }
                // UTF-8 encode (surrogate pairs are not recombined;
                // the emitter only escapes control characters).
                if (cp < 0x80) {
                    out.push_back(static_cast<char>(cp));
                } else if (cp < 0x800) {
                    out.push_back(static_cast<char>(0xc0 | (cp >> 6)));
                    out.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
                } else {
                    out.push_back(static_cast<char>(0xe0 | (cp >> 12)));
                    out.push_back(
                        static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
                    out.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
                }
                break;
              }
              default: return fail("unknown escape");
            }
        }
        return fail("unterminated string");
    }

    bool
    number(Value &out)
    {
        const size_t start = pos_;
        if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+'))
            ++pos_;
        while (pos_ < s_.size() &&
               (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
                s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
                s_[pos_] == '-' || s_[pos_] == '+'))
            ++pos_;
        const std::string tok(s_.substr(start, pos_ - start));
        char *end = nullptr;
        out.number = std::strtod(tok.c_str(), &end);
        if (end != tok.c_str() + tok.size() || tok.empty())
            return fail("malformed number");
        out.type = Value::Type::Number;
        return true;
    }

    bool
    value(Value &out)
    {
        if (pos_ >= s_.size())
            return fail("unexpected end of input");
        switch (s_[pos_]) {
          case '{': {
            out.type = Value::Type::Object;
            ++pos_;
            skipWs();
            if (pos_ < s_.size() && s_[pos_] == '}') {
                ++pos_;
                return true;
            }
            for (;;) {
                skipWs();
                if (pos_ >= s_.size() || s_[pos_] != '"')
                    return fail("expected object key");
                std::string k;
                if (!string(k))
                    return false;
                skipWs();
                if (pos_ >= s_.size() || s_[pos_++] != ':')
                    return fail("expected ':'");
                skipWs();
                Value v;
                if (!value(v))
                    return false;
                out.object.emplace(std::move(k), std::move(v));
                skipWs();
                if (pos_ >= s_.size())
                    return fail("unterminated object");
                const char c = s_[pos_++];
                if (c == '}')
                    return true;
                if (c != ',')
                    return fail("expected ',' or '}'");
            }
          }
          case '[': {
            out.type = Value::Type::Array;
            ++pos_;
            skipWs();
            if (pos_ < s_.size() && s_[pos_] == ']') {
                ++pos_;
                return true;
            }
            for (;;) {
                skipWs();
                Value v;
                if (!value(v))
                    return false;
                out.array.push_back(std::move(v));
                skipWs();
                if (pos_ >= s_.size())
                    return fail("unterminated array");
                const char c = s_[pos_++];
                if (c == ']')
                    return true;
                if (c != ',')
                    return fail("expected ',' or ']'");
            }
          }
          case '"':
            out.type = Value::Type::String;
            return string(out.string);
          case 't':
            out.type = Value::Type::Bool;
            out.boolean = true;
            return literal("true", 4);
          case 'f':
            out.type = Value::Type::Bool;
            out.boolean = false;
            return literal("false", 5);
          case 'n':
            out.type = Value::Type::Null;
            return literal("null", 4);
          default:
            return number(out);
        }
    }

    std::string_view s_;
    size_t pos_ = 0;
    std::string *err_;
};

} // namespace

bool
parse(std::string_view text, Value &out, std::string *err)
{
    out = Value{};
    if (err)
        err->clear();
    return Parser(text, err).document(out);
}

} // namespace json

} // namespace msim::obs
