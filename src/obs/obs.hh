/**
 * @file
 * Observability compile gate.
 *
 * The telemetry layer (metrics registry, cycle-sampled timelines,
 * host-time spans, session export) compiles in when the MSIM_OBS CMake
 * option is ON (the default). With -DMSIM_OBS=OFF every hook in the
 * simulation and harness code compiles to nothing: the engine loop
 * members and checks are preprocessed away, the API surface collapses
 * to constexpr no-op inlines, and the binary carries exactly zero
 * added instructions on the simulation paths.
 *
 * Runtime gating is separate (see obs/session.hh): even in an
 * obs-enabled build nothing is recorded until a session is configured
 * (--obs-out=... / MSIM_OBS_OUT), and the per-cycle sampling check is
 * a single always-false compare while no timeline is attached.
 */

#ifndef MSIM_OBS_OBS_HH_
#define MSIM_OBS_OBS_HH_

#ifdef MSIM_OBS_DISABLE
#define MSIM_OBS_ENABLED 0
#else
#define MSIM_OBS_ENABLED 1
#endif

#endif // MSIM_OBS_OBS_HH_
