#include "obs/session.hh"

#if MSIM_OBS_ENABLED

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <vector>

#include "common/logging.hh"
#include "obs/json.hh"
#include "obs/metrics.hh"
#include "obs/span.hh"
#include "obs/timeline.hh"

namespace msim::obs
{

namespace
{

std::mutex gSessionMu;
Session *gSession = nullptr;

thread_local std::string tRunLabel;

const char *
kindStr(MetricKind k)
{
    switch (k) {
      case MetricKind::Counter: return "counter";
      case MetricKind::Gauge: return "gauge";
      case MetricKind::Dist: return "dist";
    }
    return "counter";
}

} // namespace

struct Session::Impl
{
    std::mutex mu;
    std::vector<std::unique_ptr<TimelineRecorder>> timelines;
    u64 startUs = 0;
};

Session::Session(SessionConfig cfg)
    : impl_(new Impl), cfg_(std::move(cfg))
{
    if (cfg_.samplePeriod == 0)
        cfg_.samplePeriod = 1;
    if (cfg_.timelineCapacity == 0)
        cfg_.timelineCapacity = 1;
    impl_->startUs = hostNowUs();
}

Session::~Session()
{
    delete impl_;
}

Session *
Session::active()
{
    std::lock_guard<std::mutex> lock(gSessionMu);
    return gSession;
}

bool
Session::start(SessionConfig cfg)
{
    std::lock_guard<std::mutex> lock(gSessionMu);
    if (gSession)
        return false;
    gSession = new Session(std::move(cfg));
    detail::setSpansActive(true);
    return true;
}

void
Session::finish()
{
    Session *s = nullptr;
    {
        std::lock_guard<std::mutex> lock(gSessionMu);
        s = gSession;
        gSession = nullptr;
    }
    if (!s)
        return;
    detail::setSpansActive(false);
    s->flush();
    delete s;
}

TimelineRecorder *
Session::newTimeline(std::string label)
{
    std::lock_guard<std::mutex> lock(impl_->mu);
    const u32 id = static_cast<u32>(impl_->timelines.size());
    if (label.empty())
        label = runLabel();
    if (label.empty())
        label = "run" + std::to_string(id);
    impl_->timelines.push_back(std::make_unique<TimelineRecorder>(
        id, std::move(label), cfg_.samplePeriod, cfg_.timelineCapacity));
    return impl_->timelines.back().get();
}

namespace
{

void
writeNdjson(std::FILE *f, const SessionConfig &cfg,
            const std::vector<std::unique_ptr<TimelineRecorder>> &timelines,
            const std::vector<SpanRecord> &spans,
            const std::vector<MetricValue> &metrics)
{
    JsonWriter w(f);

    w.beginObject();
    w.field("type", "meta");
    w.field("schema_version", kSchemaVersion);
    w.field("tool", "msim");
    w.field("sample_period", static_cast<u64>(cfg.samplePeriod));
    w.field("timeline_capacity", static_cast<u64>(cfg.timelineCapacity));
    w.endObject();
    w.newline();

    for (const auto &tl : timelines) {
        const RunSummary &s = tl->summary();
        w.beginObject();
        w.field("type", "run");
        w.field("run_id", tl->id());
        w.field("label", tl->label());
        w.field("finished", tl->finished());
        // Sampled-replay runs: cycles/stall columns are statistical
        // estimates, not exact counts; consumers must not diff them
        // against bit-exact captures.
        if (tl->approximate())
            w.field("approximate", true);
        w.field("cycles", s.cycles);
        w.field("instructions", s.instructions);
        w.field("busy", s.busy);
        w.field("fu_stall", s.fuStall);
        w.field("mem_l1_hit", s.memL1Hit);
        w.field("mem_l1_miss", s.memL1Miss);
        w.field("branches", s.branches);
        w.field("mispredicts", s.mispredicts);
        w.field("l1_accesses", s.l1Accesses);
        w.field("l1_misses", s.l1Misses);
        w.field("l2_accesses", s.l2Accesses);
        w.field("l2_misses", s.l2Misses);
        w.field("l1_mshr_mean", s.l1MshrMean);
        w.field("l2_mshr_mean", s.l2MshrMean);
        w.field("samples", tl->totalSamples());
        w.field("dropped_samples", tl->droppedSamples());
        w.endObject();
        w.newline();

        // Per-kernel attribution table (schema v2): one record per
        // site that received any retired instruction or stall charge.
        for (const SiteRow &sr : tl->sites()) {
            if (sr.retired == 0.0 && sr.busy == 0.0 && sr.fuStall == 0.0 &&
                sr.memL1Hit == 0.0 && sr.memL1Miss == 0.0)
                continue;
            w.beginObject();
            w.field("type", "site");
            w.field("run_id", tl->id());
            w.field("site", sr.site);
            w.field("name", sr.name);
            if (tl->approximate())
                w.field("approximate", true);
            w.field("retired", sr.retired);
            w.field("busy", sr.busy);
            w.field("fu_stall", sr.fuStall);
            w.field("mem_l1_hit", sr.memL1Hit);
            w.field("mem_l1_miss", sr.memL1Miss);
            w.endObject();
            w.newline();
        }

        for (size_t i = 0; i < tl->size(); ++i) {
            const TimelineRow r = tl->row(i);
            w.beginObject();
            w.field("type", "sample");
            w.field("run_id", tl->id());
            w.field("cycle", static_cast<u64>(r.cycle));
            w.field("retired", r.retired);
            w.field("busy", r.busy);
            w.field("fu_stall", r.fuStall);
            w.field("mem_l1_hit", r.memL1Hit);
            w.field("mem_l1_miss", r.memL1Miss);
            w.field("window", r.window);
            w.field("memq", r.memq);
            w.field("mshr_l1", r.mshrL1);
            w.field("mshr_l2", r.mshrL2);
            w.endObject();
            w.newline();
        }
    }

    for (const SpanRecord &sp : spans) {
        w.beginObject();
        w.field("type", "span");
        w.field("name", sp.name);
        if (!sp.detail.empty())
            w.field("detail", sp.detail);
        w.field("tid", sp.tid);
        w.field("begin_us", sp.beginUs);
        w.field("dur_us", sp.durUs);
        w.endObject();
        w.newline();
    }

    for (const MetricValue &m : metrics) {
        w.beginObject();
        w.field("type", "metric");
        w.field("name", m.name);
        w.field("kind", kindStr(m.kind));
        switch (m.kind) {
          case MetricKind::Counter:
            w.field("count", m.count);
            break;
          case MetricKind::Gauge:
            w.field("value", m.sum);
            break;
          case MetricKind::Dist:
            w.field("count", m.count);
            w.field("sum", m.sum);
            w.field("min", m.min);
            w.field("max", m.max);
            break;
        }
        w.endObject();
        w.newline();
    }
}

/** pid of a run's process group in the trace; pid 0 is the host. */
u32
tracePid(const TimelineRecorder &tl)
{
    return 1 + tl.id();
}

void
traceMeta(JsonWriter &w, const char *what, u32 pid, u32 tid,
          std::string_view name)
{
    w.beginObject();
    w.field("name", what);
    w.field("ph", "M");
    w.field("pid", static_cast<u64>(pid));
    w.field("tid", static_cast<u64>(tid));
    w.key("args");
    w.beginObject();
    w.field("name", name);
    w.endObject();
    w.endObject();
}

void
beginCounter(JsonWriter &w, u32 pid, const char *name, u64 ts)
{
    w.beginObject();
    w.field("name", name);
    w.field("ph", "C");
    w.field("pid", static_cast<u64>(pid));
    w.field("tid", static_cast<u64>(0));
    w.field("ts", ts);
    w.key("args");
    w.beginObject();
}

void
endCounter(JsonWriter &w)
{
    w.endObject();
    w.endObject();
}

void
writeTrace(std::FILE *f,
           const std::vector<std::unique_ptr<TimelineRecorder>> &timelines,
           const std::vector<SpanRecord> &spans,
           const std::vector<std::pair<u32, std::string>> &threadLabels)
{
    JsonWriter w(f);
    w.beginObject();
    w.field("displayTimeUnit", "ms");
    w.key("traceEvents");
    w.beginArray();

    traceMeta(w, "process_name", 0, 0, "msim host");
    for (const auto &[tid, label] : threadLabels)
        traceMeta(w, "thread_name", 0, tid, label);

    for (const SpanRecord &sp : spans) {
        w.beginObject();
        w.field("name", sp.name);
        w.field("cat", "host");
        w.field("ph", "X");
        w.field("ts", sp.beginUs);
        w.field("dur", sp.durUs);
        w.field("pid", static_cast<u64>(0));
        w.field("tid", static_cast<u64>(sp.tid));
        if (!sp.detail.empty()) {
            w.key("args");
            w.beginObject();
            w.field("detail", sp.detail);
            w.endObject();
        }
        w.endObject();
    }

    // Simulated-time tracks: one trace process per run; 1 trace µs ==
    // 1 simulated cycle. Stall counters are per-interval cycle counts,
    // occupancies are instantaneous at the sample cycle.
    for (const auto &tl : timelines) {
        const u32 pid = tracePid(*tl);
        // The "~" prefix flags estimated (sampled-replay) trajectories
        // in trace viewers, mirroring the run record's approximate flag.
        traceMeta(w, "process_name", pid, 0,
                  (tl->approximate() ? "sim ~" : "sim ") + tl->label());

        // After wraparound the row preceding the oldest retained one is
        // gone, so start differencing from the second retained row.
        const size_t start = tl->droppedSamples() ? 1 : 0;
        TimelineRow prev{};
        if (start)
            prev = tl->row(0);
        for (size_t i = start; i < tl->size(); ++i) {
            const TimelineRow r = tl->row(i);
            const u64 ts = r.cycle;
            const u64 dCycle = r.cycle - prev.cycle;
            const u64 dRetired = r.retired - prev.retired;

            beginCounter(w, pid, "ipc", ts);
            w.field("ipc",
                    dCycle ? static_cast<double>(dRetired) / dCycle : 0.0);
            endCounter(w);

            beginCounter(w, pid, "stall mix", ts);
            w.field("busy", r.busy - prev.busy);
            w.field("fu_stall", r.fuStall - prev.fuStall);
            w.field("mem_l1_hit", r.memL1Hit - prev.memL1Hit);
            w.field("mem_l1_miss", r.memL1Miss - prev.memL1Miss);
            endCounter(w);

            beginCounter(w, pid, "occupancy", ts);
            w.field("window", r.window);
            w.field("memq", r.memq);
            endCounter(w);

            beginCounter(w, pid, "mshr", ts);
            w.field("l1", r.mshrL1);
            w.field("l2", r.mshrL2);
            endCounter(w);

            prev = r;
        }
    }

    w.endArray();
    w.endObject();
    w.newline();
}

} // namespace

void
Session::flush()
{
    // Surface the logging drop counter before snapshotting metrics.
    static const MetricId droppedId =
        metricId("log.dropped_lines", MetricKind::Gauge);
    gaugeSet(droppedId, static_cast<double>(droppedLogLines()));

    const std::vector<SpanRecord> spans = detail::drainSpans();
    const std::vector<MetricValue> metrics = snapshotMetrics();
    const auto labels = detail::threadLabels();

    std::lock_guard<std::mutex> lock(impl_->mu);

    const std::string ndPath = cfg_.outBase + ".ndjson";
    if (std::FILE *f = std::fopen(ndPath.c_str(), "w")) {
        writeNdjson(f, cfg_, impl_->timelines, spans, metrics);
        std::fclose(f);
    } else {
        warn("obs: cannot write %s", ndPath.c_str());
    }

    const std::string trPath = cfg_.outBase + ".trace.json";
    if (std::FILE *f = std::fopen(trPath.c_str(), "w")) {
        writeTrace(f, impl_->timelines, spans, labels);
        std::fclose(f);
    } else {
        warn("obs: cannot write %s", trPath.c_str());
    }
}

const std::string &
runLabel()
{
    return tRunLabel;
}

ScopedRunLabel::ScopedRunLabel(std::string label)
    : prev_(std::move(tRunLabel))
{
    tRunLabel = std::move(label);
}

ScopedRunLabel::~ScopedRunLabel()
{
    tRunLabel = std::move(prev_);
}

namespace
{

SessionConfig gPending;
bool gHavePending = false;

} // namespace

bool
handleObsArg(const char *arg)
{
    if (std::strncmp(arg, "--obs-out=", 10) == 0) {
        gPending.outBase = arg + 10;
        gHavePending = true;
        return true;
    }
    if (std::strncmp(arg, "--obs-period=", 13) == 0) {
        const unsigned long long v = std::strtoull(arg + 13, nullptr, 10);
        gPending.samplePeriod = v ? static_cast<Cycle>(v) : 1;
        return true;
    }
    if (std::strncmp(arg, "--obs-capacity=", 15) == 0) {
        const unsigned long long v = std::strtoull(arg + 15, nullptr, 10);
        gPending.timelineCapacity = v ? static_cast<size_t>(v) : 1;
        return true;
    }
    return false;
}

bool
startFromArgs()
{
    if (!gHavePending)
        return false;
    gHavePending = false;
    return Session::start(gPending);
}

} // namespace msim::obs

#endif // MSIM_OBS_ENABLED
