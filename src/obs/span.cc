#include "obs/span.hh"

#if MSIM_OBS_ENABLED

#include <atomic>
#include <chrono>
#include <map>
#include <mutex>
#include <utility>

namespace msim::obs
{

namespace
{

using SteadyClock = std::chrono::steady_clock;

SteadyClock::time_point
processEpoch()
{
    static const SteadyClock::time_point epoch = SteadyClock::now();
    return epoch;
}

/**
 * Process-wide span buffer. Deliberately never destroyed (leaked
 * singleton) so pool threads exiting after main() can still reach it.
 * Spans are rare (per phase, not per cycle), so one mutex is fine.
 */
struct SpanStore
{
    std::mutex mu;
    std::vector<SpanRecord> records;
    std::map<u32, std::string> labels;
    std::atomic<bool> active{false};
    std::atomic<u32> nextTid{0};
};

SpanStore &
store()
{
    static SpanStore *s = new SpanStore;
    return *s;
}

} // namespace

u64
hostNowUs()
{
    return static_cast<u64>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            SteadyClock::now() - processEpoch())
            .count());
}

u32
obsThreadId()
{
    thread_local const u32 tid =
        store().nextTid.fetch_add(1, std::memory_order_relaxed);
    return tid;
}

void
setObsThreadLabel(std::string label)
{
    SpanStore &s = store();
    const u32 tid = obsThreadId();
    std::lock_guard<std::mutex> lock(s.mu);
    s.labels[tid] = std::move(label);
}

Span::Span(const char *name, std::string detail)
    : name_(name), detail_(std::move(detail))
{
    if (!store().active.load(std::memory_order_relaxed))
        return;
    live_ = true;
    t0_ = hostNowUs();
}

Span::~Span()
{
    if (!live_)
        return;
    const u64 t1 = hostNowUs();
    SpanStore &s = store();
    std::lock_guard<std::mutex> lock(s.mu);
    s.records.push_back(
        {name_, std::move(detail_), t0_, t1 - t0_, obsThreadId()});
}

namespace detail
{

void
setSpansActive(bool active)
{
    store().active.store(active, std::memory_order_relaxed);
}

std::vector<SpanRecord>
drainSpans()
{
    SpanStore &s = store();
    std::lock_guard<std::mutex> lock(s.mu);
    std::vector<SpanRecord> out = std::move(s.records);
    s.records.clear();
    return out;
}

std::vector<std::pair<u32, std::string>>
threadLabels()
{
    SpanStore &s = store();
    std::lock_guard<std::mutex> lock(s.mu);
    return {s.labels.begin(), s.labels.end()};
}

} // namespace detail

} // namespace msim::obs

#endif // MSIM_OBS_ENABLED
