/**
 * @file
 * Shared JSON emission and parsing for the observability layer.
 *
 * JsonWriter is the one serializer every JSON the repo emits goes
 * through — the obs session's NDJSON and Chrome-trace exports, and the
 * BENCH_*.json files from bench/bench_util.hh — so escaping and comma
 * management live in exactly one place. json::Value is the matching
 * minimal recursive-descent parser used by tools/msim_report and the
 * obs tests to read those files back; it supports the full JSON value
 * grammar (objects, arrays, strings with escapes, numbers, booleans,
 * null) but none of the extensions (comments, trailing commas).
 *
 * Always compiled, independent of the MSIM_OBS gate: the bench JSON
 * path needs it even in obs-disabled builds.
 */

#ifndef MSIM_OBS_JSON_HH_
#define MSIM_OBS_JSON_HH_

#include <cstdio>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.hh"

namespace msim::obs
{

/**
 * Streaming JSON writer over a std::FILE. Nesting and element commas
 * are tracked internally: call beginObject/beginArray, then key()
 * before each member value inside an object, then value(); the writer
 * inserts separators. Doubles are emitted with enough digits to
 * round-trip; non-finite doubles are emitted as 0 (JSON has no NaN).
 */
class JsonWriter
{
  public:
    explicit JsonWriter(std::FILE *f) : f_(f) {}

    void beginObject();
    void endObject();
    void beginArray();
    void endArray();

    /** Member key; must be inside an object, before its value. */
    void key(std::string_view k);

    void value(std::string_view s);
    void value(const char *s) { value(std::string_view(s)); }
    void value(double d);
    void value(u64 v);
    void value(s64 v);
    void value(int v) { value(static_cast<s64>(v)); }
    void value(unsigned v) { value(static_cast<u64>(v)); }
    void value(bool b);

    /** Fixed-point double (e.g. the bench files' %.6f convention). */
    void valueFixed(double d, int precision);

    /** key() + value() in one call. */
    template <typename T>
    void
    field(std::string_view k, T v)
    {
        key(k);
        value(v);
    }

    /** Raw newline between top-level values (NDJSON framing). */
    void newline();

  private:
    void separate();
    void writeEscaped(std::string_view s);

    std::FILE *f_;
    /** One char per open container: 'o'/'O' object (first/rest),
     *  'a'/'A' array, 'k' object awaiting the keyed value. */
    std::vector<char> stack_;
};

namespace json
{

/** Parsed JSON value (see file comment). */
struct Value
{
    enum class Type : u8
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object
    };

    Type type = Type::Null;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<Value> array;
    std::map<std::string, Value> object;

    bool isNull() const { return type == Type::Null; }
    bool isBool() const { return type == Type::Bool; }
    bool isNumber() const { return type == Type::Number; }
    bool isString() const { return type == Type::String; }
    bool isArray() const { return type == Type::Array; }
    bool isObject() const { return type == Type::Object; }

    /** Object member lookup; nullptr when absent or not an object. */
    const Value *find(const std::string &k) const;

    /** Convenience accessors with defaults for absent members. */
    double numberOr(const std::string &k, double dflt) const;
    std::string stringOr(const std::string &k, std::string dflt) const;
};

/**
 * Parse one JSON document from @p text. Returns false (and fills
 * @p err with position + reason, if non-null) on malformed input or
 * trailing garbage.
 */
bool parse(std::string_view text, Value &out, std::string *err = nullptr);

} // namespace json

} // namespace msim::obs

#endif // MSIM_OBS_JSON_HH_
