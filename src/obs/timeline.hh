/**
 * @file
 * Cycle-sampled timeline recorder. Every N simulated cycles the engine
 * loop hands the recorder its cumulative retired/StallClass counters
 * and instantaneous window/memory-queue occupancy; the recorder reads
 * the L1/L2 MSHR occupancy off the attached trackers and appends one
 * row to a columnar ring buffer. The session serializes the rows as
 * NDJSON `sample` records and as Chrome trace-event counter tracks
 * (IPC, stall mix, occupancies — one track per resource, one recorder
 * per run or per sweep lane in batched replay).
 *
 * The ring holds the most recent `capacity` rows; older rows are
 * overwritten and counted as dropped. All stored stall/retired values
 * are cumulative since cycle 0 — consumers difference adjacent rows to
 * get per-interval rates, which keeps the hot-path hook to plain
 * copies (no divides, no derived state).
 *
 * Recorders are created by the session (one per run) and driven by a
 * single engine thread; no locking. The engine keeps the returned
 * next-sample threshold in a member, so the per-cycle cost while a
 * timeline is attached is one compare, and kNeverCycle makes the same
 * compare permanently false when none is.
 */

#ifndef MSIM_OBS_TIMELINE_HH_
#define MSIM_OBS_TIMELINE_HH_

#include <string>
#include <vector>

#include "common/types.hh"
#include "obs/obs.hh"

#if MSIM_OBS_ENABLED

#include "common/stats.hh"
#include "obs/site.hh"

namespace msim::obs
{

/** Sample threshold meaning "never sample" (no timeline attached). */
inline constexpr Cycle kNeverCycle = ~Cycle{0};

/** End-of-run aggregates attached to a timeline when its run ends. */
struct RunSummary
{
    u64 cycles = 0;
    u64 instructions = 0;  ///< retired
    double busy = 0.0;     ///< StallClass cycle split, fractional (§2.3.4)
    double fuStall = 0.0;
    double memL1Hit = 0.0;
    double memL1Miss = 0.0;
    u64 branches = 0;
    u64 mispredicts = 0;
    u64 l1Accesses = 0;
    u64 l1Misses = 0;
    u64 l2Accesses = 0;
    u64 l2Misses = 0;
    double l1MshrMean = 0.0;
    double l2MshrMean = 0.0;
};

/**
 * One kernel site's share of a run, attached to a timeline before
 * finish() (sim/runner converts SiteAttribution ticks via the trace's
 * site-name table).  Values are fractional cycles; exact replays carry
 * exact dyadic sums, sampled replays carry scaled estimates flagged by
 * the timeline's approximate bit.
 */
struct SiteRow
{
    u16 site = 0;
    std::string name;
    double retired = 0.0;
    double busy = 0.0;
    double fuStall = 0.0;
    double memL1Hit = 0.0;
    double memL1Miss = 0.0;
};

/**
 * Convert an engine's attribution ticks to exported rows, naming sites
 * from the trace's registry table (RecordedTrace::siteNames()).
 * @p scale scales every count — exact replays pass 1, sampled replay
 * passes each chunk's coverage factor and accumulates.
 */
inline std::vector<SiteRow>
sitesFromAttribution(const SiteAttribution &sa,
                     const std::vector<std::string> &names,
                     double scale = 1.0)
{
    std::vector<SiteRow> rows;
    rows.reserve(sa.numSites());
    for (size_t s = 0; s < sa.numSites(); ++s) {
        SiteRow r;
        r.site = static_cast<u16>(s);
        r.name = s < names.size() ? names[s]
                                  : "(site" + std::to_string(s) + ")";
        r.retired = static_cast<double>(sa.row(s).retired) * scale;
        r.busy = sa.cycles(s, 0) * scale;
        r.fuStall = sa.cycles(s, 1) * scale;
        r.memL1Hit = sa.cycles(s, 2) * scale;
        r.memL1Miss = sa.cycles(s, 3) * scale;
        rows.push_back(std::move(r));
    }
    return rows;
}

/** One exported row, in chronological order. */
struct TimelineRow
{
    Cycle cycle;
    u64 retired; ///< cumulative
    double busy; ///< cumulative (fractional) StallClass cycles
    double fuStall;
    double memL1Hit;
    double memL1Miss;
    u32 window; ///< instantaneous occupancies at the sample cycle
    u32 memq;
    u32 mshrL1;
    u32 mshrL2;
};

class TimelineRecorder
{
  public:
    TimelineRecorder(u32 id, std::string label, Cycle period,
                     size_t capacity);

    /** Point MSHR sampling at the run's hierarchy (may stay null). */
    void attachMem(const OccupancyTracker *l1, const OccupancyTracker *l2);

    /**
     * Record one row; called by the engine when now >= the previously
     * returned threshold. Returns the next threshold.
     */
    Cycle
    sample(Cycle now, u64 retired, double busy, double fuStall,
           double memL1Hit, double memL1Miss, u32 window, u32 memq)
    {
        const size_t at = count_ % rows_.size();
        TimelineRow &r = rows_[at];
        r.cycle = now;
        r.retired = retired;
        r.busy = busy;
        r.fuStall = fuStall;
        r.memL1Hit = memL1Hit;
        r.memL1Miss = memL1Miss;
        r.window = window;
        r.memq = memq;
        r.mshrL1 = l1_ ? l1_->lastOccupancy() : 0;
        r.mshrL2 = l2_ ? l2_->lastOccupancy() : 0;
        ++count_;
        return now + period_;
    }

    /** Attach end-of-run aggregates (idempotent; last call wins). */
    void finish(const RunSummary &summary);

    u32 id() const { return id_; }
    const std::string &label() const { return label_; }
    Cycle period() const { return period_; }
    bool finished() const { return finished_; }
    const RunSummary &summary() const { return summary_; }

    /**
     * Flag this timeline's rows and summary as statistical estimates
     * rather than exact cycle counts (sampled replay sets this; the
     * exporters mark the records so downstream consumers never mistake
     * an estimated trajectory for a bit-exact one).
     */
    void setApproximate(bool a) { approximate_ = a; }
    bool approximate() const { return approximate_; }

    /** Attach the run's per-site attribution table (last call wins). */
    void setSites(std::vector<SiteRow> sites) { sites_ = std::move(sites); }
    const std::vector<SiteRow> &sites() const { return sites_; }

    /** Rows ever sampled (including since-overwritten ones). */
    u64 totalSamples() const { return count_; }
    /** Rows lost to ring wraparound. */
    u64 droppedSamples() const
    {
        return count_ > rows_.size() ? count_ - rows_.size() : 0;
    }
    /** Retained row count. */
    size_t size() const
    {
        return count_ < rows_.size() ? static_cast<size_t>(count_)
                                     : rows_.size();
    }
    /** Retained rows, oldest first. */
    TimelineRow row(size_t i) const;

  private:
    u32 id_;
    std::string label_;
    Cycle period_;
    std::vector<TimelineRow> rows_;
    u64 count_ = 0;
    const OccupancyTracker *l1_ = nullptr;
    const OccupancyTracker *l2_ = nullptr;
    RunSummary summary_;
    std::vector<SiteRow> sites_;
    bool finished_ = false;
    bool approximate_ = false;
};

} // namespace msim::obs

#endif // MSIM_OBS_ENABLED

#endif // MSIM_OBS_TIMELINE_HH_
