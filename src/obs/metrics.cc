#include "obs/metrics.hh"

#if MSIM_OBS_ENABLED

#include <atomic>
#include <limits>
#include <mutex>
#include <unordered_map>

namespace msim::obs
{

namespace
{

/**
 * Per-thread storage for one metric. Single writer (the owning
 * thread); snapshots read concurrently, so fields are relaxed atomics
 * — the merge tolerates a snapshot landing between two updates, it
 * only needs each field individually untorn.
 */
struct Slot
{
    std::atomic<u64> count{0};
    std::atomic<double> sum{0.0};
    std::atomic<double> min{std::numeric_limits<double>::infinity()};
    std::atomic<double> max{-std::numeric_limits<double>::infinity()};
    std::atomic<u64> gaugeSeq{0};
    std::atomic<double> gauge{0.0};
};

/** Plain (merged / retained) form of a Slot. */
struct Folded
{
    u64 count = 0;
    double sum = 0.0;
    double min = std::numeric_limits<double>::infinity();
    double max = -std::numeric_limits<double>::infinity();
    u64 gaugeSeq = 0;
    double gauge = 0.0;

    void
    merge(const Folded &o)
    {
        count += o.count;
        sum += o.sum;
        if (o.min < min)
            min = o.min;
        if (o.max > max)
            max = o.max;
        if (o.gaugeSeq > gaugeSeq) {
            gaugeSeq = o.gaugeSeq;
            gauge = o.gauge;
        }
    }
};

struct Sheet
{
    Slot slots[kMaxMetrics];

    Folded
    fold(MetricId id) const
    {
        const Slot &s = slots[id];
        Folded f;
        f.count = s.count.load(std::memory_order_relaxed);
        f.sum = s.sum.load(std::memory_order_relaxed);
        f.min = s.min.load(std::memory_order_relaxed);
        f.max = s.max.load(std::memory_order_relaxed);
        f.gaugeSeq = s.gaugeSeq.load(std::memory_order_relaxed);
        f.gauge = s.gauge.load(std::memory_order_relaxed);
        return f;
    }

    void
    zero()
    {
        for (Slot &s : slots) {
            s.count.store(0, std::memory_order_relaxed);
            s.sum.store(0.0, std::memory_order_relaxed);
            s.min.store(std::numeric_limits<double>::infinity(),
                        std::memory_order_relaxed);
            s.max.store(-std::numeric_limits<double>::infinity(),
                        std::memory_order_relaxed);
            s.gaugeSeq.store(0, std::memory_order_relaxed);
            s.gauge.store(0.0, std::memory_order_relaxed);
        }
    }
};

struct MetricInfo
{
    std::string name;
    MetricKind kind;
};

struct Registry
{
    std::mutex mu;
    std::vector<MetricInfo> metrics;
    std::unordered_map<std::string, MetricId> byName;
    std::vector<Sheet *> liveSheets;
    std::vector<Folded> retained{kMaxMetrics};
    /** Total order over gauge writes so "latest wins" is well defined
     *  across threads. Incremented on every gaugeSet. */
    std::atomic<u64> gaugeClock{0};
};

Registry &
registry()
{
    // Leaked intentionally: thread-exit hooks of detached/pool threads
    // may run after main() returns and must still find the registry.
    static Registry *r = new Registry;
    return *r;
}

/** Registers this thread's sheet on first use, folds it into the
 *  retained totals on thread exit. */
struct SheetHolder
{
    Sheet sheet;

    SheetHolder()
    {
        Registry &r = registry();
        std::lock_guard<std::mutex> lock(r.mu);
        r.liveSheets.push_back(&sheet);
    }

    ~SheetHolder()
    {
        Registry &r = registry();
        std::lock_guard<std::mutex> lock(r.mu);
        for (MetricId id = 0; id < r.metrics.size() && id < kMaxMetrics; ++id)
            r.retained[id].merge(sheet.fold(id));
        for (auto it = r.liveSheets.begin(); it != r.liveSheets.end(); ++it) {
            if (*it == &sheet) {
                r.liveSheets.erase(it);
                break;
            }
        }
    }
};

Sheet &
mySheet()
{
    thread_local SheetHolder holder;
    return holder.sheet;
}

} // namespace

MetricId
metricId(const char *name, MetricKind kind)
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    const auto it = r.byName.find(name);
    if (it != r.byName.end())
        return r.metrics[it->second].kind == kind ? it->second : kNoMetric;
    if (r.metrics.size() >= kMaxMetrics)
        return kNoMetric;
    const MetricId id = static_cast<MetricId>(r.metrics.size());
    r.metrics.push_back({name, kind});
    r.byName.emplace(name, id);
    return id;
}

void
count(MetricId id, u64 by)
{
    if (id >= kMaxMetrics)
        return;
    Slot &s = mySheet().slots[id];
    s.count.store(s.count.load(std::memory_order_relaxed) + by,
                  std::memory_order_relaxed);
}

void
gaugeSet(MetricId id, double v)
{
    if (id >= kMaxMetrics)
        return;
    const u64 seq =
        registry().gaugeClock.fetch_add(1, std::memory_order_relaxed) + 1;
    Slot &s = mySheet().slots[id];
    s.gauge.store(v, std::memory_order_relaxed);
    s.gaugeSeq.store(seq, std::memory_order_relaxed);
}

void
observe(MetricId id, double v)
{
    if (id >= kMaxMetrics)
        return;
    Slot &s = mySheet().slots[id];
    s.count.store(s.count.load(std::memory_order_relaxed) + 1,
                  std::memory_order_relaxed);
    s.sum.store(s.sum.load(std::memory_order_relaxed) + v,
                std::memory_order_relaxed);
    if (v < s.min.load(std::memory_order_relaxed))
        s.min.store(v, std::memory_order_relaxed);
    if (v > s.max.load(std::memory_order_relaxed))
        s.max.store(v, std::memory_order_relaxed);
}

std::vector<MetricValue>
snapshotMetrics()
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    std::vector<MetricValue> out;
    out.reserve(r.metrics.size());
    for (MetricId id = 0; id < r.metrics.size(); ++id) {
        Folded f = r.retained[id];
        for (const Sheet *sheet : r.liveSheets)
            f.merge(sheet->fold(id));
        MetricValue v;
        v.name = r.metrics[id].name;
        v.kind = r.metrics[id].kind;
        switch (v.kind) {
          case MetricKind::Counter:
            v.count = f.count;
            break;
          case MetricKind::Gauge:
            v.sum = f.gaugeSeq ? f.gauge : 0.0;
            v.count = f.gaugeSeq ? 1 : 0;
            break;
          case MetricKind::Dist:
            v.count = f.count;
            v.sum = f.sum;
            v.min = f.count ? f.min : 0.0;
            v.max = f.count ? f.max : 0.0;
            break;
        }
        out.push_back(std::move(v));
    }
    return out;
}

void
resetMetricsForTest()
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    for (Folded &f : r.retained)
        f = Folded{};
    for (Sheet *sheet : r.liveSheets)
        sheet->zero();
    r.gaugeClock.store(0, std::memory_order_relaxed);
}

} // namespace msim::obs

#endif // MSIM_OBS_ENABLED
