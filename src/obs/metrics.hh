/**
 * @file
 * Hierarchical metrics registry: named counters, gauges, and
 * distributions that harness components (core/experiment,
 * cpu/replay_engine, mem/cache snapshots, common/logging, the audit
 * fuzzer) register into and update from any thread.
 *
 * Updates are lock-free: each thread owns a fixed-size sheet of slots
 * (thread_local), indexed by MetricId, and increments touch only its
 * own slot through relaxed atomics — no shared cache line, no lock.
 * Registration (rare) and snapshotting (once per export) take a
 * mutex; a snapshot merges every live thread's sheet with the totals
 * retained from exited threads, so values are never lost when a pool
 * worker terminates.
 *
 * Names are dot-hierarchical by convention ("experiment.jobs",
 * "replay.cycles", "log.dropped_lines"); the registry itself treats
 * them as opaque. Registering the same name twice returns the same id
 * (the kind must match). The slot table is fixed at kMaxMetrics
 * entries; registration past that returns kNoMetric, whose updates
 * are silently dropped — telemetry must never take the process down.
 *
 * With MSIM_OBS off the whole API collapses to no-op inlines.
 */

#ifndef MSIM_OBS_METRICS_HH_
#define MSIM_OBS_METRICS_HH_

#include <string>
#include <vector>

#include "common/types.hh"
#include "obs/obs.hh"

namespace msim::obs
{

enum class MetricKind : u8
{
    Counter, ///< monotonically accumulating u64
    Gauge,   ///< last-set double (latest write across threads wins)
    Dist     ///< double distribution: count / sum / min / max
};

using MetricId = u32;
inline constexpr MetricId kNoMetric = ~MetricId{0};
inline constexpr size_t kMaxMetrics = 256;

/** One metric's merged value in a snapshot. */
struct MetricValue
{
    std::string name;
    MetricKind kind = MetricKind::Counter;
    u64 count = 0;     ///< counter value, or dist sample count
    double sum = 0.0;  ///< gauge last value, or dist sum
    double min = 0.0;  ///< dist minimum (0 when count == 0)
    double max = 0.0;  ///< dist maximum (0 when count == 0)

    double mean() const { return count ? sum / static_cast<double>(count) : 0.0; }
};

#if MSIM_OBS_ENABLED

/** Register (or look up) @p name; see file comment. */
MetricId metricId(const char *name, MetricKind kind);

/** Counter add. Invalid ids are ignored. */
void count(MetricId id, u64 by = 1);

/** Gauge set (latest write wins across threads). */
void gaugeSet(MetricId id, double v);

/** Distribution sample. */
void observe(MetricId id, double v);

/** Merged view of every registered metric, in registration order. */
std::vector<MetricValue> snapshotMetrics();

/** Zero every slot and retained total (registrations persist). Test use. */
void resetMetricsForTest();

#else

inline MetricId metricId(const char *, MetricKind) { return kNoMetric; }
inline void count(MetricId, u64 = 1) {}
inline void gaugeSet(MetricId, double) {}
inline void observe(MetricId, double) {}
inline std::vector<MetricValue> snapshotMetrics() { return {}; }
inline void resetMetricsForTest() {}

#endif // MSIM_OBS_ENABLED

} // namespace msim::obs

#endif // MSIM_OBS_METRICS_HH_
