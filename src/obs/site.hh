/**
 * @file
 * Per-kernel-site attribution accumulator: the "simulated perf"
 * profiler's data plane.
 *
 * A SiteAttribution is attached to a replay engine (one per run, or
 * per lane in batched replay) the same way a TimelineRecorder is:
 * a raw pointer the engine null-checks at its accounting points.  The
 * engine then attributes every retired instruction and every §2.3.4
 * stall charge to the kernel-region site recorded in the trace's site
 * column (TraceBuilder::pushSite), so a capture can reproduce the
 * paper's *per-kernel* cycle/stall tables, not just run totals.
 *
 * Exactness contract: all accumulation is integral, in ticks of
 * 1/retireWidth cycle.  Each cycle the engine charges `retired` Busy
 * ticks (one at each retired instruction's own site) plus
 * `retireWidth - retired` ticks of the blocking stall class at the
 * window head's site; an event-skip span of dt cycles charges
 * dt * retireWidth ticks in one add.  Summed over sites this
 * reconstructs the engine's own ExecStats identically:
 *
 *   sum(retired)            == stats.retired
 *   sum(all ticks)          == stats.cycles * retireWidth
 *   sum(ticks[c]) / width   == stats.<class c>   (exactly, for the
 *                              power-of-two retire widths the paper
 *                              machines use — every charge is then a
 *                              dyadic rational and double addition is
 *                              exact at these magnitudes)
 *
 * tests/test_obs.cc enforces the conservation property across every
 * benchmark x variant on the sequential, batched, and event-skip
 * paths.  Hooks are read-only with respect to engine state, so
 * attribution can never perturb timing (the standing obs guarantee).
 *
 * Stall classes are indexed by the numeric value of cpu::StallClass
 * (Busy, FuStall, MemL1Hit, MemL1Miss) rather than the enum itself so
 * this header does not pull cpu/ into obs/.
 */

#ifndef MSIM_OBS_SITE_HH_
#define MSIM_OBS_SITE_HH_

#include <vector>

#include "common/types.hh"
#include "obs/obs.hh"

#if MSIM_OBS_ENABLED

namespace msim::obs
{

/** See file comment. One instance accumulates one run (or lane). */
class SiteAttribution
{
  public:
    /** Stall classes, in cpu::StallClass order. */
    static constexpr unsigned kNumClasses = 4;
    static constexpr unsigned kBusy = 0;

    struct Counts
    {
        u64 retired = 0;
        u64 ticks[kNumClasses] = {}; ///< 1 tick = 1/retireWidth cycle
    };

    /**
     * Size for @p numSites kernel sites (site 0, the implicit "(top)"
     * region, always exists) and record the engine's resolved retire
     * width; clears all counts.  Call before attaching.
     */
    void
    reset(size_t numSites, unsigned retireWidth)
    {
        rows_.assign(numSites ? numSites : 1, Counts{});
        retireWidth_ = retireWidth ? retireWidth : 1;
    }

    /** One retired instruction at @p site: 1 retired + 1 Busy tick. */
    void
    retire(u16 site)
    {
        Counts &c = rows_[site < rows_.size() ? site : 0];
        ++c.retired;
        ++c.ticks[kBusy];
    }

    /** Bulk stall charge: @p ticks of class @p cls at @p site. */
    void
    charge(u16 site, unsigned cls, u64 ticks)
    {
        rows_[site < rows_.size() ? site : 0].ticks[cls] += ticks;
    }

    unsigned retireWidth() const { return retireWidth_; }
    size_t numSites() const { return rows_.size(); }
    const Counts &row(size_t site) const { return rows_[site]; }
    const std::vector<Counts> &rows() const { return rows_; }

    /** Ticks of @p cls at @p site converted to (fractional) cycles. */
    double
    cycles(size_t site, unsigned cls) const
    {
        return static_cast<double>(rows_[site].ticks[cls]) /
               static_cast<double>(retireWidth_);
    }

    /** Fold another accumulator in (sampled replay sums chunk runs). */
    void
    add(const SiteAttribution &other)
    {
        if (rows_.size() < other.rows_.size())
            rows_.resize(other.rows_.size());
        for (size_t s = 0; s < other.rows_.size(); ++s) {
            rows_[s].retired += other.rows_[s].retired;
            for (unsigned c = 0; c < kNumClasses; ++c)
                rows_[s].ticks[c] += other.rows_[s].ticks[c];
        }
    }

  private:
    std::vector<Counts> rows_;
    unsigned retireWidth_ = 1;
};

} // namespace msim::obs

#endif // MSIM_OBS_ENABLED

#endif // MSIM_OBS_SITE_HH_
