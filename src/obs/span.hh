/**
 * @file
 * Harness self-profiling spans: scoped host-time timers around the
 * phases the harness spends wall-clock in (trace record, decode,
 * replay, batch chunks, fuzz cases, thread-pool work items). Completed
 * spans are buffered process-wide and drained by the obs session into
 * the Chrome trace export, where they appear as duration events on
 * their thread's track — side by side with the simulated-time tracks.
 *
 * A Span is inert (no clock read, no allocation) unless an obs session
 * is active when it is constructed. Use the MSIM_OBS_SPAN macro at
 * call sites: it compiles to nothing when MSIM_OBS is off, so even the
 * argument expressions vanish from disabled builds.
 */

#ifndef MSIM_OBS_SPAN_HH_
#define MSIM_OBS_SPAN_HH_

#include <string>
#include <vector>

#include "common/types.hh"
#include "obs/obs.hh"

#if MSIM_OBS_ENABLED

#define MSIM_OBS_SPAN(var, ...) ::msim::obs::Span var(__VA_ARGS__)

namespace msim::obs
{

/** One completed span, as drained by the session for export. */
struct SpanRecord
{
    const char *name;   ///< static phase name ("record", "batch.chunk", ...)
    std::string detail; ///< free-form qualifier ("djpeg/media", lane id, ...)
    u64 beginUs;        ///< host time, µs since process epoch
    u64 durUs;
    u32 tid; ///< dense obs thread id (0 = first thread seen)
};

/**
 * RAII phase timer. Captures the start time at construction and
 * appends a SpanRecord at destruction; both ends no-op when no session
 * is active at construction time.
 */
class Span
{
  public:
    explicit Span(const char *name, std::string detail = {});
    ~Span();

    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;

  private:
    const char *name_;
    std::string detail_;
    u64 t0_ = 0;
    bool live_ = false;
};

/** Host time in µs since a fixed process-wide epoch (steady clock). */
u64 hostNowUs();

/** Dense id of the calling thread (assigned on first use). */
u32 obsThreadId();

/** Label the calling thread's track in the trace ("pool-worker-2"). */
void setObsThreadLabel(std::string label);

namespace detail
{

/** Session lifecycle hook: spans record only while active. */
void setSpansActive(bool active);

/** Move out all buffered spans (session export). */
std::vector<SpanRecord> drainSpans();

/** Snapshot of (tid, label) pairs set via setObsThreadLabel. */
std::vector<std::pair<u32, std::string>> threadLabels();

} // namespace detail

} // namespace msim::obs

#else // MSIM_OBS_ENABLED

#define MSIM_OBS_SPAN(var, ...) \
    do {                        \
    } while (false)

namespace msim::obs
{

inline void setObsThreadLabel(const std::string &) {}

} // namespace msim::obs

#endif // MSIM_OBS_ENABLED

#endif // MSIM_OBS_SPAN_HH_
