#include "obs/timeline.hh"

#if MSIM_OBS_ENABLED

#include <utility>

namespace msim::obs
{

TimelineRecorder::TimelineRecorder(u32 id, std::string label, Cycle period,
                                   size_t capacity)
    : id_(id),
      label_(std::move(label)),
      period_(period ? period : 1),
      rows_(capacity ? capacity : 1)
{}

void
TimelineRecorder::attachMem(const OccupancyTracker *l1,
                            const OccupancyTracker *l2)
{
    l1_ = l1;
    l2_ = l2;
}

void
TimelineRecorder::finish(const RunSummary &summary)
{
    summary_ = summary;
    finished_ = true;
}

TimelineRow
TimelineRecorder::row(size_t i) const
{
    const size_t n = size();
    const size_t oldest = count_ > rows_.size() ? count_ % rows_.size() : 0;
    return rows_[(oldest + (i < n ? i : n - 1)) % rows_.size()];
}

} // namespace msim::obs

#endif // MSIM_OBS_ENABLED
