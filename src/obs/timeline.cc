#include "obs/timeline.hh"

#if MSIM_OBS_ENABLED

#include <utility>

namespace msim::obs
{

TimelineRecorder::TimelineRecorder(u32 id, std::string label, Cycle period,
                                   size_t capacity)
    : id_(id),
      label_(std::move(label)),
      period_(period ? period : 1),
      rows_(capacity ? capacity : 1)
{}

void
TimelineRecorder::attachMem(const OccupancyTracker *l1,
                            const OccupancyTracker *l2)
{
    l1_ = l1;
    l2_ = l2;
}

void
TimelineRecorder::finish(const RunSummary &summary)
{
    summary_ = summary;
    // Flush the final partial sampling interval: a run whose length is
    // not a multiple of the period would otherwise lose its tail, and
    // the cumulative retired/stall columns would stop short of the run
    // totals.  The flush row lands at the run's final cycle with the
    // end-of-run cumulative counters; occupancies are zero because the
    // machine has drained.  Guarded so a second finish() (idempotent,
    // last summary wins) does not append a duplicate, and so a run
    // that happened to end exactly on a sample boundary is untouched.
    const bool haveTail =
        count_ == 0 ||
        rows_[(count_ - 1) % rows_.size()].cycle < summary.cycles;
    if (!finished_ && haveTail && summary.cycles > 0) {
        sample(summary.cycles, summary.instructions, summary.busy,
               summary.fuStall, summary.memL1Hit, summary.memL1Miss,
               /*window=*/0, /*memq=*/0);
    }
    finished_ = true;
}

TimelineRow
TimelineRecorder::row(size_t i) const
{
    const size_t n = size();
    const size_t oldest = count_ > rows_.size() ? count_ % rows_.size() : 0;
    return rows_[(oldest + (i < n ? i : n - 1)) % rows_.size()];
}

} // namespace msim::obs

#endif // MSIM_OBS_ENABLED
