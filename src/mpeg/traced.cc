#include "mpeg/traced.hh"

#include <array>
#include <cmath>
#include <vector>

#include "common/bits.hh"
#include "common/logging.hh"
#include "jpeg/traced_xform.hh"
#include "jpeg/zigzag.hh"

namespace msim::mpeg
{

namespace
{

using jpeg::TracedBitReader;
using jpeg::TracedBitWriter;
using jpeg::TracedHuff;
using jpeg::TracedTables;
using prog::TraceBuilder;
using prog::Val;
using prog::Variant;

/** One 4:2:0 frame resident in the arena. */
struct FrameBufs
{
    Addr y = 0, cb = 0, cr = 0;
    unsigned w = 0, h = 0;

    Addr
    planeAddr(unsigned p) const
    {
        return p == 0 ? y : (p == 1 ? cb : cr);
    }

    unsigned strideOf(unsigned p) const { return p == 0 ? w : w / 2; }
};

FrameBufs
allocFrame(TraceBuilder &tb, unsigned w, unsigned h, const char *name)
{
    FrameBufs f;
    f.w = w;
    f.h = h;
    f.y = tb.alloc(size_t{w} * h, name);
    f.cb = tb.alloc(size_t{w / 2} * (h / 2), name);
    f.cr = tb.alloc(size_t{w / 2} * (h / 2), name);
    return f;
}

void
uploadFrame(TraceBuilder &tb, const Ycc420 &src, const FrameBufs &dst)
{
    tb.arena().writeBytes(dst.y, src.y.samples.data(),
                          src.y.samples.size());
    tb.arena().writeBytes(dst.cb, src.cb.samples.data(),
                          src.cb.samples.size());
    tb.arena().writeBytes(dst.cr, src.cr.samples.data(),
                          src.cr.samples.size());
}

Ycc420
downloadFrame(const TraceBuilder &tb, const FrameBufs &src)
{
    Ycc420 f;
    f.y = Plane(src.w, src.h);
    f.cb = Plane(src.w / 2, src.h / 2);
    f.cr = Plane(src.w / 2, src.h / 2);
    tb.arena().readBytes(src.y, f.y.samples.data(), f.y.samples.size());
    tb.arena().readBytes(src.cb, f.cb.samples.data(),
                         f.cb.samples.size());
    tb.arena().readBytes(src.cr, f.cr.samples.data(),
                         f.cr.samples.size());
    return f;
}

// --------------------------------------------------------------------
// Motion estimation emission
// --------------------------------------------------------------------

/**
 * Emit one 16x16 SAD. The scalar path carries the |a-b| branch per
 * pixel; the VIS path uses two pdist per row over faligndata-aligned
 * reference data.
 */
u32
emitSad16(TraceBuilder &tb, Variant variant, Addr cur,
          unsigned cur_stride, Addr ref, unsigned ref_stride)
{
    const prog::ScopedSite site(tb, "mpg.sad");
    const u32 abs_pc = tb.sitePc("me.abs");
    const u32 row_pc = tb.sitePc("me.row");

    // MVI-class ISAs have no pdist; their motion estimation stays scalar.
    if (variant == Variant::Scalar || !tb.features().hasPdist) {
        Val acc = tb.imm(0);
        for (unsigned y = 0; y < 16; ++y) {
            for (unsigned x = 0; x < 16; ++x) {
                Val a = tb.load(cur + size_t{y} * cur_stride + x, 1);
                Val b = tb.load(ref + size_t{y} * ref_stride + x, 1);
                Val d = tb.sub(a, b);
                const bool neg = d.s() < 0;
                Val c = tb.cmpLt(d, tb.imm(0));
                tb.branch(abs_pc, neg, c);
                Val mag = neg ? tb.sub(tb.imm(0), d) : d;
                acc = tb.add(acc, mag);
            }
            tb.branch(row_pc, y + 1 < 16);
        }
        return static_cast<u32>(acc.data);
    }

    Val acc = tb.imm(0);
    for (unsigned y = 0; y < 16; ++y) {
        const Addr crow = cur + size_t{y} * cur_stride;
        const Addr rrow = ref + size_t{y} * ref_stride;
        Val c0 = tb.vload(crow);
        Val c1 = tb.vload(crow + 8);
        const Addr rblk = tb.visAlignAddr(rrow);
        Val r0 = tb.vload(rblk);
        Val r1 = tb.vload(rblk + 8);
        Val r2 = tb.vload(rblk + 16);
        Val ra = tb.vfaligndata(r0, r1);
        Val rb = tb.vfaligndata(r1, r2);
        acc = tb.vpdist(c0, ra, acc);
        acc = tb.vpdist(c1, rb, acc);
        tb.branch(row_pc, y + 1 < 16);
    }
    return static_cast<u32>(acc.data);
}

/** Traced full search; identical candidate order to the native code. */
MotionMatch
emitFullSearch(TraceBuilder &tb, Variant variant, const FrameBufs &cur,
               unsigned mx, unsigned my, const FrameBufs &ref, int range)
{
    const prog::ScopedSite site(tb, "mpg.search");
    const u32 best_pc = tb.sitePc("me.best");

    MotionMatch best;
    best.sad = ~u32{0};
    for (int dy = -range; dy <= range; ++dy) {
        for (int dx = -range; dx <= range; ++dx) {
            const int rx = static_cast<int>(mx) + dx;
            const int ry = static_cast<int>(my) + dy;
            if (rx < 0 || ry < 0 ||
                rx + 16 > static_cast<int>(ref.w) ||
                ry + 16 > static_cast<int>(ref.h))
                continue;
            const u32 sad = emitSad16(
                tb, variant, cur.y + size_t{my} * cur.w + mx, cur.w,
                ref.y + static_cast<size_t>(ry) * ref.w +
                    static_cast<size_t>(rx),
                ref.w);
            // Best-so-far update: compare + (mispredictable) branch.
            Val c = tb.cmpLt(tb.imm(sad), tb.imm(best.sad));
            tb.branch(best_pc, sad < best.sad, c);
            if (sad < best.sad) {
                best.sad = sad;
                best.mv = {dx, dy};
            }
        }
    }
    return best;
}

// --------------------------------------------------------------------
// Prediction fetch / residual / reconstruction emission
// --------------------------------------------------------------------

/** Copy a size x size block at an MV offset into a compact buffer. */
void
emitFetchPred(TraceBuilder &tb, Variant variant, const FrameBufs &ref,
              unsigned plane, unsigned bx, unsigned by, MotionVector mv,
              unsigned size, Addr dst)
{
    const prog::ScopedSite site(tb, "mpg.pred");
    const int dx = size == 16 ? mv.dx : mv.dx / 2;
    const int dy = size == 16 ? mv.dy : mv.dy / 2;
    const unsigned stride = ref.strideOf(plane);
    const Addr base =
        ref.planeAddr(plane) +
        static_cast<Addr>((static_cast<int>(by) + dy)) * stride +
        static_cast<Addr>(static_cast<int>(bx) + dx);

    if (variant == Variant::Scalar) {
        for (unsigned y = 0; y < size; ++y)
            for (unsigned x = 0; x < size; ++x) {
                Val v = tb.load(base + size_t{y} * stride + x, 1);
                tb.store(dst + size_t{y} * size + x, 1, v);
            }
    } else {
        for (unsigned y = 0; y < size; ++y) {
            const Addr row = base + size_t{y} * stride;
            const Addr blk = tb.visAlignAddr(row);
            Val r0 = tb.vload(blk);
            Val r1 = tb.vload(blk + 8);
            Val a = tb.vfaligndata(r0, r1);
            tb.vstore(dst + size_t{y} * size, a);
            if (size == 16) {
                Val r2 = tb.vload(blk + 16);
                Val b = tb.vfaligndata(r1, r2);
                tb.vstore(dst + size_t{y} * size + 8, b);
            }
        }
    }
}

/** Average two compact prediction buffers into a third. */
void
emitAvgPred(TraceBuilder &tb, Variant variant, Addr a, Addr b, Addr dst,
            unsigned n)
{
    const prog::ScopedSite site(tb, "mpg.pred");
    if (variant == Variant::Scalar) {
        for (unsigned i = 0; i < n; ++i) {
            Val x = tb.load(a + i, 1);
            Val y = tb.load(b + i, 1);
            Val s = tb.shr(tb.addi(tb.add(x, y), 1), 1);
            tb.store(dst + i, 1, s);
        }
    } else {
        // fpadd16 on expanded halves, repack; exact (x+y+1)>>1 needs the
        // +1 rounding term folded in before the pack shift.
        tb.setGsrScale(2); // ((v<<4)<<2)>>7 == v>>1
        for (unsigned i = 0; i < n; i += 8) {
            Val x = tb.vload(a + i);
            Val y = tb.vload(b + i);
            tb.visAlignAddr(a + i + 4);
            Val xh = tb.vfaligndata(x, x);
            Val yh = tb.vfaligndata(y, y);
            const Val round = tb.imm(jpeg::lanesOf16(1 << 4));
            Val lo = tb.vfpack16(tb.vfpadd16(
                tb.vfpadd16(tb.vfexpand(x), tb.vfexpand(y)), round));
            Val hi = tb.vfpack16(tb.vfpadd16(
                tb.vfpadd16(tb.vfexpand(xh), tb.vfexpand(yh)), round));
            tb.store(dst + i, 4, lo);
            tb.store(dst + i + 4, 4, hi);
        }
    }
}

/** Residual of one 8x8 block: cur plane block minus compact pred. */
void
emitResidual(TraceBuilder &tb, Variant variant, Addr cur,
             unsigned cur_stride, Addr pred, unsigned pred_stride,
             Addr dst)
{
    const prog::ScopedSite site(tb, "mpg.residual");
    if (variant == Variant::Scalar) {
        for (unsigned y = 0; y < 8; ++y)
            for (unsigned x = 0; x < 8; ++x) {
                Val c = tb.load(cur + size_t{y} * cur_stride + x, 1);
                Val p = tb.load(pred + size_t{y} * pred_stride + x, 1);
                tb.store(dst + 2 * (y * 8 + x), 2, tb.sub(c, p));
            }
    } else {
        for (unsigned y = 0; y < 8; ++y) {
            Val c = tb.vload(cur + size_t{y} * cur_stride);
            Val p = tb.vload(pred + size_t{y} * pred_stride);
            tb.visAlignAddr(4);
            Val ch = tb.vfaligndata(c, c);
            Val ph = tb.vfaligndata(p, p);
            // fexpand carries <<4; the difference keeps the scale, so
            // shift back down with pack-free arithmetic: store the
            // 16-bit difference (cur-pred)<<4 ... instead compute via
            // fpsub16 then scale-correct during the DCT? Keep it exact:
            // (c<<4 - p<<4) >> 4 done with the mul3 primitive (x*16>>8
            // is a >>4). Simpler and exact: subtract expanded values
            // and multiply by 16/256.
            Val dlo = tb.vfpsub16(tb.vfexpand(c), tb.vfexpand(p));
            Val dhi = tb.vfpsub16(tb.vfexpand(ch), tb.vfexpand(ph));
            const Val k16 = tb.imm(jpeg::lanesOf16(16));
            dlo = jpeg::visMul3(tb, dlo, k16);
            dhi = jpeg::visMul3(tb, dhi, k16);
            tb.vstore(dst + 2 * (y * 8), dlo);
            tb.vstore(dst + 2 * (y * 8) + 8, dhi);
        }
    }
}

/** Reconstruct one 8x8 block: pred + s16 residual, saturated. */
void
emitReconAdd(TraceBuilder &tb, Variant variant, Addr pred,
             unsigned pred_stride, Addr resid, Addr dst,
             unsigned dst_stride, bool have_residual)
{
    const prog::ScopedSite site(tb, "mpg.recon");
    const u32 clamp_pc = tb.sitePc("mc.clamp");

    if (variant == Variant::Scalar) {
        for (unsigned y = 0; y < 8; ++y)
            for (unsigned x = 0; x < 8; ++x) {
                Val p = tb.load(pred + size_t{y} * pred_stride + x, 1);
                Val v = p;
                if (have_residual) {
                    Val r = tb.load(resid + 2 * (y * 8 + x), 2, Val{},
                                    true);
                    v = tb.add(p, r);
                    Val res = v;
                    const s64 s = v.s();
                    Val c_low = tb.cmpLt(v, tb.imm(0));
                    tb.branch(clamp_pc, s < 0, c_low);
                    if (s < 0) {
                        res = tb.imm(0);
                    } else {
                        Val c_hi = tb.cmpLt(tb.imm(255), v);
                        tb.branch(clamp_pc, s > 255, c_hi);
                        if (s > 255)
                            res = tb.imm(255);
                    }
                    v = res;
                }
                tb.store(dst + size_t{y} * dst_stride + x, 1, v);
            }
    } else {
        tb.setGsrScale(7);
        for (unsigned y = 0; y < 8; ++y) {
            Val p = tb.vload(pred + size_t{y} * pred_stride);
            if (!have_residual) {
                tb.vstore(dst + size_t{y} * dst_stride, p);
                continue;
            }
            tb.visAlignAddr(4);
            Val ph = tb.vfaligndata(p, p);
            Val r0 = tb.vload(resid + 2 * (y * 8));
            Val r1 = tb.vload(resid + 2 * (y * 8) + 8);
            // expand gives p<<4; bring residual to the same scale.
            const Val k16v = tb.imm(jpeg::lanesOf16(16));
            Val rs0 = jpeg::visMul3(
                tb, r0, tb.imm(jpeg::lanesOf16(16 << 8))); // r<<4
            (void)k16v;
            Val rs1 = jpeg::visMul3(
                tb, r1, tb.imm(jpeg::lanesOf16(16 << 8)));
            Val lo = tb.vfpadd16(tb.vfexpand(p), rs0);
            Val hi = tb.vfpadd16(tb.vfexpand(ph), rs1);
            tb.setGsrScale(3); // (v<<3)>>7 == v>>4
            Val blo = tb.vfpack16(lo);
            Val bhi = tb.vfpack16(hi);
            tb.store(dst + size_t{y} * dst_stride, 4, blo);
            tb.store(dst + size_t{y} * dst_stride + 4, 4, bhi);
        }
    }
}

/** Geometry of the 6 blocks of a macroblock (matches codec.cc). */
struct BlockRef
{
    unsigned plane;
    unsigned x, y;
};

std::array<BlockRef, 6>
mbBlockRefs(unsigned mbx, unsigned mby)
{
    return {{
        {0, mbx * 16, mby * 16},
        {0, mbx * 16 + 8, mby * 16},
        {0, mbx * 16, mby * 16 + 8},
        {0, mbx * 16 + 8, mby * 16 + 8},
        {1, mbx * 8, mby * 8},
        {2, mbx * 8, mby * 8},
    }};
}

/** Read 64 zig-zag coefficients from the arena. */
void
readZz(const TraceBuilder &tb, Addr a, s16 zz[64])
{
    for (unsigned i = 0; i < 64; ++i)
        zz[i] = static_cast<s16>(static_cast<s64>(
            signExtend(tb.arena().read(a + 2 * i, 2), 16)));
}

/** Intra-code one macroblock into @p mb, emitting all six blocks. */
void
emitIntraMb(TraceBuilder &tb, Variant variant, const TracedTables &tables,
            const FrameBufs &src, unsigned mbx, unsigned mby,
            Addr mb_coeff, MbCode &mb)
{
    mb.mode = MbMode::Intra;
    mb.cbp = 0x3f;
    const auto blocks = mbBlockRefs(mbx, mby);
    for (unsigned b = 0; b < 6; ++b) {
        const BlockRef &br = blocks[b];
        const Addr bsrc = src.planeAddr(br.plane) +
                          size_t{br.y} * src.strideOf(br.plane) + br.x;
        jpeg::emitFdctQuantBlock(tb, variant, tables, /*chroma=*/false,
                                 bsrc, src.strideOf(br.plane),
                                 mb_coeff + 128 * b);
        readZz(tb, mb_coeff + 128 * b, mb.blocks[b]);
    }
}

/** Emit the VLC for one macroblock (mirrors writeFrameBits). */
void
emitMbVlc(TraceBuilder &tb, TracedBitWriter &bw, const TracedHuff &dc_h,
          const TracedHuff &ac_h, const TracedHuff &mv_h, const MbCode &mb,
          Addr mb_coeff)
{
    const prog::ScopedSite site(tb, "mpg.vlc");
    bw.put(static_cast<u32>(mb.mode), 2);
    auto put_mv = [&](MotionVector mv) {
        for (const int c : {mv.dx, mv.dy}) {
            const unsigned cat = jpeg::magnitudeCategory(c);
            mv_h.emitEncode(tb, bw, cat);
            if (cat)
                bw.put(jpeg::magnitudeBits(c, cat), cat);
        }
    };
    if (mb.mode == MbMode::Fwd || mb.mode == MbMode::Avg)
        put_mv(mb.fwd);
    if (mb.mode == MbMode::Bwd || mb.mode == MbMode::Avg)
        put_mv(mb.bwd);
    if (mb.mode != MbMode::Intra)
        bw.put(mb.cbp, 6);
    for (unsigned b = 0; b < 6; ++b) {
        if (!(mb.cbp & (1u << b)))
            continue;
        int pred = 0;
        jpeg::emitEncodeBlock(tb, bw, dc_h, ac_h, mb_coeff + 128 * b,
                              mb.blocks[b], pred, 0, 63);
    }
}

double
yPsnr(const Ycc420 &a, const Ycc420 &b)
{
    double mse = 0;
    const size_t n = a.y.samples.size();
    for (size_t i = 0; i < n; ++i) {
        const double d =
            double(a.y.samples[i]) - double(b.y.samples[i]);
        mse += d * d;
    }
    mse /= double(n);
    if (mse == 0)
        return 99.0;
    return 10.0 * std::log10(255.0 * 255.0 / mse);
}

} // namespace

// --------------------------------------------------------------------
// mpeg-enc
// --------------------------------------------------------------------

void
runMpegEnc(TraceBuilder &tb, Variant variant, const SeqConfig &cfg)
{
    const std::vector<Ycc420> src = makeTestSequence(cfg, 91);
    const QuantTable q_intra =
        jpeg::scaleTable(jpeg::lumaBaseTable(), cfg.quality);
    const QuantTable q_inter = interQuantTable();
    // Table slot 0 ("luma") = intra, slot 1 ("chroma") = inter.
    TracedTables tables(tb, q_intra, q_inter);
    TracedHuff dc_h(tb, mpegDcTable());
    TracedHuff ac_h(tb, mpegAcTable());
    TracedHuff mv_h(tb, mpegMvTable());

    const unsigned mbw = cfg.width / 16;
    const unsigned mbh = cfg.height / 16;

    FrameBufs orig[4];
    for (unsigned f = 0; f < 4; ++f) {
        orig[f] = allocFrame(tb, cfg.width, cfg.height, "mpg.orig");
        uploadFrame(tb, src[f], orig[f]);
    }
    FrameBufs recon_i = allocFrame(tb, cfg.width, cfg.height, "mpg.ri");
    FrameBufs recon_p = allocFrame(tb, cfg.width, cfg.height, "mpg.rp");

    const Addr mb_coeff = tb.alloc(6 * 128, "mpg.mbcoeff");
    const Addr pred_y = tb.alloc(256 + 64, "mpg.predy");
    const Addr pred_c = tb.alloc(2 * 64 + 64, "mpg.predc");
    const Addr pred_y2 = tb.alloc(256 + 64, "mpg.predy2");
    const Addr pred_c2 = tb.alloc(2 * 64 + 64, "mpg.predc2");
    const Addr pred_avg = tb.alloc(256 + 64, "mpg.predavg");
    const Addr resid = tb.alloc(128, "mpg.resid");
    const Addr resid_out = tb.alloc(128, "mpg.residout");
    const Addr bits_base = tb.alloc(512 * 1024, "mpg.bits");
    size_t bits_pos = 0;

    EncodedSeq enc;
    enc.cfg = cfg;
    enc.qIntra = q_intra;
    enc.qInter = q_inter;

    /** Reconstruct one intra-coded MB into @p dst. */
    auto recon_intra = [&](const MbCode &mb, unsigned mbx, unsigned mby,
                           const FrameBufs &dst) {
        const auto blocks = mbBlockRefs(mbx, mby);
        for (unsigned b = 0; b < 6; ++b) {
            const BlockRef &br = blocks[b];
            const Addr bdst = dst.planeAddr(br.plane) +
                              size_t{br.y} * dst.strideOf(br.plane) +
                              br.x;
            jpeg::emitIdctBlock(tb, variant, tables, /*chroma=*/false,
                                mb_coeff + 128 * b, bdst,
                                dst.strideOf(br.plane));
        }
        (void)mb;
    };

    /** Inter-code one MB given compact predictions; updates mb. */
    auto code_inter = [&](MbCode &mb, const FrameBufs &cur, unsigned mbx,
                          unsigned mby, Addr py, Addr pc,
                          const FrameBufs *recon_dst) {
        mb.cbp = 0;
        const auto blocks = mbBlockRefs(mbx, mby);
        for (unsigned b = 0; b < 6; ++b) {
            const BlockRef &br = blocks[b];
            const Addr csrc = cur.planeAddr(br.plane) +
                              size_t{br.y} * cur.strideOf(br.plane) +
                              br.x;
            Addr pbase;
            unsigned pstride;
            if (b < 4) {
                pbase = py + (br.y - mby * 16) * 16 + (br.x - mbx * 16);
                pstride = 16;
            } else {
                pbase = pc + (b - 4) * 64;
                pstride = 8;
            }
            emitResidual(tb, variant, csrc, cur.strideOf(br.plane),
                         pbase, pstride, resid);
            jpeg::emitFdctQuantResidual(tb, variant, tables,
                                        /*chroma=*/true, resid, 8,
                                        mb_coeff + 128 * b);
            readZz(tb, mb_coeff + 128 * b, mb.blocks[b]);
            bool nz = false;
            for (unsigned i = 0; i < 64; ++i)
                nz = nz || mb.blocks[b][i] != 0;
            if (nz)
                mb.cbp |= 1u << b;
            if (recon_dst) {
                const Addr bdst =
                    recon_dst->planeAddr(br.plane) +
                    size_t{br.y} * recon_dst->strideOf(br.plane) + br.x;
                if (nz)
                    jpeg::emitIdctBlock(tb, variant, tables, true,
                                        mb_coeff + 128 * b, resid_out, 8,
                                        /*residual=*/true);
                emitReconAdd(tb, variant, pbase, pstride, resid_out,
                             bdst, recon_dst->strideOf(br.plane), nz);
            }
        }
    };

    /** Fetch luma+chroma predictions for an MV into (py, pc). */
    auto fetch_pred = [&](const FrameBufs &ref, unsigned mbx,
                          unsigned mby, MotionVector mv, Addr py,
                          Addr pc) {
        emitFetchPred(tb, variant, ref, 0, mbx * 16, mby * 16, mv, 16,
                      py);
        emitFetchPred(tb, variant, ref, 1, mbx * 8, mby * 8, mv, 8, pc);
        emitFetchPred(tb, variant, ref, 2, mbx * 8, mby * 8, mv, 8,
                      pc + 64);
    };

    // ======== I frame ==================================================
    {
        FrameCode fc;
        fc.type = 'I';
        fc.displayIdx = 0;
        TracedBitWriter bw(tb, bits_base + bits_pos,
                           512 * 1024 - bits_pos);
        for (unsigned mby = 0; mby < mbh; ++mby) {
            for (unsigned mbx = 0; mbx < mbw; ++mbx) {
                MbCode mb;
                emitIntraMb(tb, variant, tables, orig[0], mbx, mby,
                            mb_coeff, mb);
                emitMbVlc(tb, bw, dc_h, ac_h, mv_h, mb, mb_coeff);
                recon_intra(mb, mbx, mby, recon_i);
                fc.mbs.push_back(mb);
            }
        }
        bits_pos += bw.finish();
        fc.bits = writeFrameBits(fc);
        enc.frames.push_back(std::move(fc));
    }

    // ======== P frame (display 3) ======================================
    {
        FrameCode fc;
        fc.type = 'P';
        fc.displayIdx = 3;
        TracedBitWriter bw(tb, bits_base + bits_pos,
                           512 * 1024 - bits_pos);
        for (unsigned mby = 0; mby < mbh; ++mby) {
            for (unsigned mbx = 0; mbx < mbw; ++mbx) {
                MbCode mb;
                const MotionMatch m =
                    emitFullSearch(tb, variant, orig[3], mbx * 16,
                                   mby * 16, recon_i, cfg.searchRange);
                if (m.sad > kIntraSadThreshold) {
                    emitIntraMb(tb, variant, tables, orig[3], mbx, mby,
                                mb_coeff, mb);
                    emitMbVlc(tb, bw, dc_h, ac_h, mv_h, mb, mb_coeff);
                    recon_intra(mb, mbx, mby, recon_p);
                } else {
                    mb.mode = MbMode::Fwd;
                    mb.fwd = m.mv;
                    fetch_pred(recon_i, mbx, mby, m.mv, pred_y, pred_c);
                    code_inter(mb, orig[3], mbx, mby, pred_y, pred_c,
                               &recon_p);
                    emitMbVlc(tb, bw, dc_h, ac_h, mv_h, mb, mb_coeff);
                }
                fc.mbs.push_back(mb);
            }
        }
        bits_pos += bw.finish();
        fc.bits = writeFrameBits(fc);
        enc.frames.push_back(std::move(fc));
    }

    // ======== B frames (display 1, 2) ==================================
    for (unsigned d = 1; d <= 2; ++d) {
        FrameCode fc;
        fc.type = 'B';
        fc.displayIdx = d;
        TracedBitWriter bw(tb, bits_base + bits_pos,
                           512 * 1024 - bits_pos);
        for (unsigned mby = 0; mby < mbh; ++mby) {
            for (unsigned mbx = 0; mbx < mbw; ++mbx) {
                MbCode mb;
                const MotionMatch mf =
                    emitFullSearch(tb, variant, orig[d], mbx * 16,
                                   mby * 16, recon_i, cfg.searchRange);
                const MotionMatch mbk =
                    emitFullSearch(tb, variant, orig[d], mbx * 16,
                                   mby * 16, recon_p, cfg.searchRange);
                // Interpolated candidate: fetch both, average, SAD.
                emitFetchPred(tb, variant, recon_i, 0, mbx * 16,
                              mby * 16, mf.mv, 16, pred_y);
                emitFetchPred(tb, variant, recon_p, 0, mbx * 16,
                              mby * 16, mbk.mv, 16, pred_y2);
                emitAvgPred(tb, variant, pred_y, pred_y2, pred_avg, 256);
                const u32 sad_avg = emitSad16(
                    tb, variant,
                    orig[d].y + size_t{mby * 16} * orig[d].w + mbx * 16,
                    orig[d].w, pred_avg, 16);

                u32 best = mf.sad;
                mb.mode = MbMode::Fwd;
                mb.fwd = mf.mv;
                if (mbk.sad < best) {
                    best = mbk.sad;
                    mb.mode = MbMode::Bwd;
                    mb.bwd = mbk.mv;
                    mb.fwd = MotionVector{};
                }
                if (sad_avg < best) {
                    best = sad_avg;
                    mb.mode = MbMode::Avg;
                    mb.fwd = mf.mv;
                    mb.bwd = mbk.mv;
                }
                if (best > kIntraSadThreshold) {
                    emitIntraMb(tb, variant, tables, orig[d], mbx, mby,
                                mb_coeff, mb);
                    emitMbVlc(tb, bw, dc_h, ac_h, mv_h, mb, mb_coeff);
                } else {
                    // Build the final prediction buffers for the mode.
                    if (mb.mode == MbMode::Fwd) {
                        fetch_pred(recon_i, mbx, mby, mb.fwd, pred_y,
                                   pred_c);
                    } else if (mb.mode == MbMode::Bwd) {
                        fetch_pred(recon_p, mbx, mby, mb.bwd, pred_y,
                                   pred_c);
                    } else {
                        fetch_pred(recon_i, mbx, mby, mb.fwd, pred_y,
                                   pred_c);
                        fetch_pred(recon_p, mbx, mby, mb.bwd, pred_y2,
                                   pred_c2);
                        emitAvgPred(tb, variant, pred_y, pred_y2,
                                    pred_y, 256);
                        emitAvgPred(tb, variant, pred_c, pred_c2,
                                    pred_c, 128);
                    }
                    code_inter(mb, orig[d], mbx, mby, pred_y, pred_c,
                               nullptr);
                    emitMbVlc(tb, bw, dc_h, ac_h, mv_h, mb, mb_coeff);
                }
                fc.mbs.push_back(mb);
            }
        }
        bits_pos += bw.finish();
        fc.bits = writeFrameBits(fc);
        enc.frames.push_back(std::move(fc));
    }

    // --- Verification ---------------------------------------------------
    const std::vector<Ycc420> decoded = decodeMpeg(enc);
    for (unsigned f = 0; f < 4; ++f) {
        const double p = yPsnr(decoded[f], src[f]);
        if (p < 20.0)
            panic("mpeg-enc (%s): frame %u PSNR %.1f dB too low",
                  prog::variantName(variant), f, p);
    }
    // The decoder's reference frames must match the traced encoder's
    // in-loop reconstruction (exactly: the traced pipeline defined the
    // coefficients the decoder consumes and both use the same IDCT for
    // the scalar path; within tolerance for VIS).
    const Ycc420 tr_i = downloadFrame(tb, recon_i);
    const double pi = yPsnr(decoded[0], tr_i);
    const double min_match = variant == Variant::Scalar ? 99.0 : 40.0;
    if (pi < min_match)
        panic("mpeg-enc (%s): I recon mismatch (PSNR %.1f dB)",
              prog::variantName(variant), pi);
}

// --------------------------------------------------------------------
// mpeg-dec
// --------------------------------------------------------------------

void
runMpegDec(TraceBuilder &tb, Variant variant, const SeqConfig &cfg)
{
    const std::vector<Ycc420> src = makeTestSequence(cfg, 91);
    const EncodedSeq enc = encodeMpeg(src, cfg);
    const std::vector<Ycc420> native_out = decodeMpeg(enc);

    TracedTables tables(tb, enc.qIntra, enc.qInter);
    TracedHuff dc_h(tb, mpegDcTable());
    TracedHuff ac_h(tb, mpegAcTable());
    TracedHuff mv_h(tb, mpegMvTable());

    const unsigned mbw = cfg.width / 16;
    const unsigned mbh = cfg.height / 16;

    FrameBufs out[4];
    for (unsigned f = 0; f < 4; ++f)
        out[f] = allocFrame(tb, cfg.width, cfg.height, "mpd.out");
    FrameBufs recon_i = allocFrame(tb, cfg.width, cfg.height, "mpd.ri");
    FrameBufs recon_p = allocFrame(tb, cfg.width, cfg.height, "mpd.rp");

    const Addr mb_coeff = tb.alloc(6 * 128, "mpd.mbcoeff");
    const Addr pred_y = tb.alloc(256 + 64, "mpd.predy");
    const Addr pred_c = tb.alloc(2 * 64 + 64, "mpd.predc");
    const Addr pred_y2 = tb.alloc(256 + 64, "mpd.predy2");
    const Addr pred_c2 = tb.alloc(2 * 64 + 64, "mpd.predc2");
    const Addr resid_out = tb.alloc(128, "mpd.residout");

    auto fetch_pred = [&](const FrameBufs &ref, unsigned mbx,
                          unsigned mby, MotionVector mv, Addr py,
                          Addr pc) {
        if (variant == Variant::VisPrefetch) {
            // Prefetch the reference window of the *next* macroblock.
            const Addr nxt = ref.y + size_t{mby * 16} * ref.w +
                             (mbx + 1) * 16;
            for (unsigned r = 0; r < 16; r += 4)
                tb.prefetch(nxt + size_t{r} * ref.w);
        }
        emitFetchPred(tb, variant, ref, 0, mbx * 16, mby * 16, mv, 16,
                      py);
        emitFetchPred(tb, variant, ref, 1, mbx * 8, mby * 8, mv, 8, pc);
        emitFetchPred(tb, variant, ref, 2, mbx * 8, mby * 8, mv, 8,
                      pc + 64);
    };

    for (const FrameCode &fc : enc.frames) {
        const Addr stream = tb.alloc(fc.bits.size() + 64, "mpd.bits");
        TracedBitReader br(tb, fc.bits, stream);
        FrameBufs &dst = fc.type == 'I'
                             ? recon_i
                             : (fc.type == 'P' ? recon_p
                                               : out[fc.displayIdx]);

        unsigned idx = 0;
        for (unsigned mby = 0; mby < mbh; ++mby) {
            for (unsigned mbx = 0; mbx < mbw; ++mbx) {
                const MbCode &mb = fc.mbs[idx++];
                // Parse: mode, vectors, cbp (ops mirror the bit reads).
                br.getBits(2);
                auto read_mv = [&](MotionVector want) {
                    for (const int c : {want.dx, want.dy}) {
                        const unsigned cat = jpeg::magnitudeCategory(c);
                        const unsigned got = br.decodeSym(mv_h);
                        if (got != cat)
                            panic("mpeg-dec: mv category mismatch");
                        if (cat)
                            br.getBits(cat);
                    }
                };
                if (mb.mode == MbMode::Fwd || mb.mode == MbMode::Avg)
                    read_mv(mb.fwd);
                if (mb.mode == MbMode::Bwd || mb.mode == MbMode::Avg)
                    read_mv(mb.bwd);
                if (mb.mode != MbMode::Intra)
                    br.getBits(6);

                // Coefficient decode into the MB coefficient buffer.
                for (unsigned b = 0; b < 6; ++b) {
                    if (!(mb.cbp & (1u << b)))
                        continue;
                    jpeg::emitZeroBlock(tb, variant, mb_coeff + 128 * b);
                    int pred = 0;
                    jpeg::emitDecodeBlock(tb, br, dc_h, ac_h, pred, 0,
                                          63, mb_coeff + 128 * b);
                }

                const auto blocks = mbBlockRefs(mbx, mby);
                if (mb.mode == MbMode::Intra) {
                    for (unsigned b = 0; b < 6; ++b) {
                        const BlockRef &bref = blocks[b];
                        const Addr bdst =
                            dst.planeAddr(bref.plane) +
                            size_t{bref.y} * dst.strideOf(bref.plane) +
                            bref.x;
                        jpeg::emitIdctBlock(tb, variant, tables, false,
                                            mb_coeff + 128 * b, bdst,
                                            dst.strideOf(bref.plane));
                    }
                } else {
                    if (mb.mode == MbMode::Fwd) {
                        fetch_pred(recon_i, mbx, mby, mb.fwd, pred_y,
                                   pred_c);
                    } else if (mb.mode == MbMode::Bwd) {
                        fetch_pred(recon_p, mbx, mby, mb.bwd, pred_y,
                                   pred_c);
                    } else {
                        fetch_pred(recon_i, mbx, mby, mb.fwd, pred_y,
                                   pred_c);
                        fetch_pred(recon_p, mbx, mby, mb.bwd, pred_y2,
                                   pred_c2);
                        emitAvgPred(tb, variant, pred_y, pred_y2,
                                    pred_y, 256);
                        emitAvgPred(tb, variant, pred_c, pred_c2,
                                    pred_c, 128);
                    }
                    for (unsigned b = 0; b < 6; ++b) {
                        const BlockRef &bref = blocks[b];
                        const bool nz = (mb.cbp & (1u << b)) != 0;
                        if (nz)
                            jpeg::emitIdctBlock(tb, variant, tables,
                                                true, mb_coeff + 128 * b,
                                                resid_out, 8, true);
                        Addr pbase;
                        unsigned pstride;
                        if (b < 4) {
                            pbase = pred_y + (bref.y - mby * 16) * 16 +
                                    (bref.x - mbx * 16);
                            pstride = 16;
                        } else {
                            pbase = pred_c + (b - 4) * 64;
                            pstride = 8;
                        }
                        const Addr bdst =
                            dst.planeAddr(bref.plane) +
                            size_t{bref.y} * dst.strideOf(bref.plane) +
                            bref.x;
                        emitReconAdd(tb, variant, pbase, pstride,
                                     resid_out, bdst,
                                     dst.strideOf(bref.plane), nz);
                    }
                }
            }
        }
    }

    // Copy reference frames into display slots (host-side bookkeeping;
    // the real output of I/P lives in the recon buffers).
    const Ycc420 got_i = downloadFrame(tb, recon_i);
    const Ycc420 got_p = downloadFrame(tb, recon_p);
    const Ycc420 got_b1 = downloadFrame(tb, out[1]);
    const Ycc420 got_b2 = downloadFrame(tb, out[2]);
    const Ycc420 got[4] = {got_i, got_b1, got_b2, got_p};

    const double min_match = variant == Variant::Scalar ? 99.0 : 35.0;
    for (unsigned f = 0; f < 4; ++f) {
        const double pm = yPsnr(got[f], native_out[f]);
        if (pm < min_match)
            panic("mpeg-dec (%s): frame %u mismatch vs native "
                  "(PSNR %.1f dB)",
                  prog::variantName(variant), f, pm);
        const double ps = yPsnr(got[f], src[f]);
        if (ps < 20.0)
            panic("mpeg-dec (%s): frame %u PSNR vs source %.1f dB",
                  prog::variantName(variant), f, ps);
    }
}

} // namespace msim::mpeg
