/**
 * @file
 * The MPEG2 benchmarks (mpeg-enc, mpeg-dec) emitted through the trace
 * builder. Motion estimation dominates mpeg-enc; its VIS path uses the
 * pdist instruction, which collapses the ~48-instruction scalar SAD
 * inner sequence (with its hard-to-predict |a-b| branches) into one
 * instruction per 8 pixels — the paper's marquee special-purpose-
 * instruction result.
 */

#ifndef MSIM_MPEG_TRACED_HH_
#define MSIM_MPEG_TRACED_HH_

#include "mpeg/codec.hh"
#include "prog/trace_builder.hh"
#include "prog/variant.hh"

namespace msim::mpeg
{

/** MPEG2 encoding benchmark: 4 frames, I-B-B-P. */
void runMpegEnc(prog::TraceBuilder &tb, prog::Variant variant,
                const SeqConfig &cfg = SeqConfig{});

/** MPEG2 decoding benchmark over a natively encoded stream. */
void runMpegDec(prog::TraceBuilder &tb, prog::Variant variant,
                const SeqConfig &cfg = SeqConfig{});

} // namespace msim::mpeg

#endif // MSIM_MPEG_TRACED_HH_
