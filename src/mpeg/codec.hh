/**
 * @file
 * Native MPEG2-style video codec (reference implementation).
 *
 * GOP structure I-B-B-P (display order), coded as I, P, B, B. 16x16
 * macroblocks with full-search motion estimation, forward/backward/
 * interpolated prediction for B frames, intra fallback, DCT residual
 * coding with JPEG-style run/size VLC over fixed Huffman tables (MPEG2
 * uses fixed tables, so unlike progressive JPEG there is no statistics
 * pass), and an in-loop reconstruction of reference frames.
 *
 * The traced benchmarks (mpeg/traced.cc) share all arithmetic with this
 * implementation and are verified against it.
 */

#ifndef MSIM_MPEG_CODEC_HH_
#define MSIM_MPEG_CODEC_HH_

#include <vector>

#include "jpeg/codec.hh"
#include "mpeg/motion.hh"

namespace msim::mpeg
{

using jpeg::Plane;
using jpeg::QuantTable;
using jpeg::Ycc420;

/** Sequence parameters (paper: 352x240 mei16v2, scaled). */
struct SeqConfig
{
    unsigned width = 160;
    unsigned height = 128;
    unsigned frames = 4;  ///< display order I B B P
    int searchRange = 2;  ///< full-search window half-width
    int quality = 70;     ///< intra quantizer quality
};

/** Macroblock prediction mode. */
enum class MbMode : u8
{
    Intra = 0,
    Fwd = 1,
    Bwd = 2,
    Avg = 3
};

/** One coded macroblock: mode, vectors, and 6 coefficient blocks. */
struct MbCode
{
    MbMode mode = MbMode::Intra;
    MotionVector fwd;
    MotionVector bwd;
    u8 cbp = 0x3f; ///< coded-block pattern, bits 0..5 = Y0..Y3, Cb, Cr
    s16 blocks[6][64] = {};
};

/** One coded frame, in coding order. */
struct FrameCode
{
    char type = 'I'; ///< 'I', 'P', or 'B'
    unsigned displayIdx = 0;
    std::vector<MbCode> mbs;
    std::vector<u8> bits; ///< VLC payload for this frame
};

/** A complete encoded sequence. */
struct EncodedSeq
{
    SeqConfig cfg;
    QuantTable qIntra{};
    QuantTable qInter{};
    std::vector<FrameCode> frames; ///< coding order: I P B B
    std::vector<Ycc420> recon;     ///< encoder reconstructions (I, P)
};

/** If the best SAD exceeds this, a P/B macroblock is coded intra. */
constexpr u32 kIntraSadThreshold = 16 * 16 * 24;

/** Inter (residual) quantization table: flat, MPEG2-style. */
QuantTable interQuantTable();

/** Synthetic 4:2:0 test sequence with global pan plus a moving object. */
std::vector<Ycc420> makeTestSequence(const SeqConfig &cfg, u64 seed);

/** Fixed tables for the MPEG VLC (shared with the traced encoder). */
const jpeg::HuffTable &mpegDcTable();
const jpeg::HuffTable &mpegAcTable();
const jpeg::HuffTable &mpegMvTable();

/** Encode a 4-frame sequence. */
EncodedSeq encodeMpeg(const std::vector<Ycc420> &frames,
                      const SeqConfig &cfg);

/** Decode to display order. */
std::vector<Ycc420> decodeMpeg(const EncodedSeq &enc);

/** Serialize one frame's macroblocks to bits (also used traced). */
std::vector<u8> writeFrameBits(const FrameCode &frame);

/** Parse one frame's macroblocks from bits. */
void readFrameBits(FrameCode &frame, unsigned num_mbs);

} // namespace msim::mpeg

#endif // MSIM_MPEG_CODEC_HH_
