#include "mpeg/codec.hh"

#include "common/logging.hh"
#include "common/saturate.hh"
#include "img/synth.hh"
#include "jpeg/dct.hh"
#include "jpeg/huffman.hh"
#include "jpeg/zigzag.hh"

namespace msim::mpeg
{

using jpeg::BitReader;
using jpeg::BitWriter;
using jpeg::HuffTable;
using jpeg::Sym;

QuantTable
interQuantTable()
{
    QuantTable t{};
    t.fill(14);
    return t;
}

std::vector<Ycc420>
makeTestSequence(const SeqConfig &cfg, u64 seed)
{
    const auto luma = img::makeTestVideo(cfg.width, cfg.height,
                                         cfg.frames, 1, 1, seed);
    std::vector<Ycc420> out(cfg.frames);
    for (unsigned f = 0; f < cfg.frames; ++f) {
        Ycc420 &ycc = out[f];
        ycc.y = Plane(cfg.width, cfg.height);
        for (unsigned y = 0; y < cfg.height; ++y)
            for (unsigned x = 0; x < cfg.width; ++x)
                ycc.y.at(x, y) = luma[f].at(x, y, 0);
        // Chroma derived from decimated luma so that it translates
        // coherently with the pan (content-linked, like real video).
        ycc.cb = Plane(cfg.width / 2, cfg.height / 2);
        ycc.cr = Plane(cfg.width / 2, cfg.height / 2);
        for (unsigned y = 0; y < cfg.height / 2; ++y) {
            for (unsigned x = 0; x < cfg.width / 2; ++x) {
                const unsigned s =
                    unsigned(ycc.y.at(2 * x, 2 * y)) +
                    ycc.y.at(2 * x + 1, 2 * y) +
                    ycc.y.at(2 * x, 2 * y + 1) +
                    ycc.y.at(2 * x + 1, 2 * y + 1);
                const u8 avg = static_cast<u8>((s + 2) >> 2);
                ycc.cb.at(x, y) = static_cast<u8>(128 + (avg - 128) / 3);
                ycc.cr.at(x, y) = static_cast<u8>(255 - avg / 2);
            }
        }
    }
    return out;
}

const HuffTable &
mpegDcTable()
{
    return jpeg::fixedDcTable();
}

const HuffTable &
mpegAcTable()
{
    return jpeg::fixedAcTable();
}

const HuffTable &
mpegMvTable()
{
    // Small-magnitude vectors dominate.
    static const HuffTable t = [] {
        std::vector<u64> f(12, 1);
        for (unsigned c = 0; c < 6; ++c)
            f[c] += u64{1} << (8 - c);
        return HuffTable::fromFrequencies(f);
    }();
    return t;
}

namespace
{

/** Extract an 8x8 u8 block into s16 with optional level shift. */
void
extractBlock(const Plane &p, unsigned x0, unsigned y0, bool level_shift,
             s16 out[64])
{
    for (unsigned y = 0; y < 8; ++y)
        for (unsigned x = 0; x < 8; ++x)
            out[y * 8 + x] = static_cast<s16>(
                int(p.at(x0 + x, y0 + y)) - (level_shift ? 128 : 0));
}

/** Forward transform + quant + zigzag of an s16 block. */
void
codeBlock(const s16 in[64], const QuantTable &q, s16 zz[64])
{
    s16 freq[64];
    jpeg::fdct8x8(in, freq);
    for (unsigned i = 0; i < 64; ++i)
        freq[i] = jpeg::quantOne(freq[i], q[i]);
    jpeg::toZigzag(freq, zz);
}

/** Inverse: dequant + IDCT (no level unshift). */
void
decodeBlock(const s16 zz[64], const QuantTable &q, s16 out[64])
{
    s16 nat[64];
    jpeg::fromZigzag(zz, nat);
    for (unsigned i = 0; i < 64; ++i)
        nat[i] = static_cast<s16>(
            satS16(jpeg::dequantOne(nat[i], q[i])));
    jpeg::idct8x8(nat, out);
}

bool
anyNonzero(const s16 zz[64])
{
    for (unsigned i = 0; i < 64; ++i)
        if (zz[i])
            return true;
    return false;
}

/** Geometry of the 6 blocks of a macroblock. */
struct BlockRef
{
    bool chroma;
    unsigned plane; ///< 0 = Y, 1 = Cb, 2 = Cr
    unsigned x, y;  ///< top-left in its plane
};

std::array<BlockRef, 6>
mbBlocks(unsigned mbx, unsigned mby)
{
    return {{
        {false, 0, mbx * 16, mby * 16},
        {false, 0, mbx * 16 + 8, mby * 16},
        {false, 0, mbx * 16, mby * 16 + 8},
        {false, 0, mbx * 16 + 8, mby * 16 + 8},
        {true, 1, mbx * 8, mby * 8},
        {true, 2, mbx * 8, mby * 8},
    }};
}

Plane &
planeOf(Ycc420 &f, unsigned idx)
{
    return idx == 0 ? f.y : (idx == 1 ? f.cb : f.cr);
}

const Plane &
planeOf(const Ycc420 &f, unsigned idx)
{
    return idx == 0 ? f.y : (idx == 1 ? f.cb : f.cr);
}

/** Reconstruct one intra block into a frame. */
void
reconIntraBlock(const MbCode &mb, unsigned b, const BlockRef &br,
                const QuantTable &q, Ycc420 &dst)
{
    s16 px[64];
    decodeBlock(mb.blocks[b], q, px);
    Plane &p = planeOf(dst, br.plane);
    for (unsigned y = 0; y < 8; ++y)
        for (unsigned x = 0; x < 8; ++x)
            p.at(br.x + x, br.y + y) = satU8(px[y * 8 + x] + 128);
}

/** Build the full 16x16+8x8+8x8 prediction for a macroblock. */
void
buildPrediction(const MbCode &mb, unsigned mbx, unsigned mby,
                const Ycc420 *fwd_ref, const Ycc420 *bwd_ref,
                u8 pred_y[256], u8 pred_cb[64], u8 pred_cr[64])
{
    u8 tmp_y[256], tmp_cb[64], tmp_cr[64];
    auto fetch = [&](const Ycc420 &ref, MotionVector mv, u8 *py, u8 *pcb,
                     u8 *pcr) {
        fetchPrediction(ref.y, mbx * 16, mby * 16, mv, 16, py);
        fetchPrediction(ref.cb, mbx * 8, mby * 8, mv, 8, pcb);
        fetchPrediction(ref.cr, mbx * 8, mby * 8, mv, 8, pcr);
    };
    switch (mb.mode) {
      case MbMode::Fwd:
        fetch(*fwd_ref, mb.fwd, pred_y, pred_cb, pred_cr);
        break;
      case MbMode::Bwd:
        fetch(*bwd_ref, mb.bwd, pred_y, pred_cb, pred_cr);
        break;
      case MbMode::Avg:
        fetch(*fwd_ref, mb.fwd, pred_y, pred_cb, pred_cr);
        fetch(*bwd_ref, mb.bwd, tmp_y, tmp_cb, tmp_cr);
        averagePrediction(pred_y, tmp_y, 256, pred_y);
        averagePrediction(pred_cb, tmp_cb, 64, pred_cb);
        averagePrediction(pred_cr, tmp_cr, 64, pred_cr);
        break;
      default:
        panic("buildPrediction: intra macroblock");
    }
}

/** Code one inter macroblock's residual blocks and set its cbp. */
void
codeInterResidual(MbCode &mb, const Ycc420 &cur, unsigned mbx,
                  unsigned mby, const u8 pred_y[256],
                  const u8 pred_cb[64], const u8 pred_cr[64],
                  const QuantTable &q_inter)
{
    mb.cbp = 0;
    const auto blocks = mbBlocks(mbx, mby);
    for (unsigned b = 0; b < 6; ++b) {
        const BlockRef &br = blocks[b];
        const Plane &p = planeOf(cur, br.plane);
        s16 resid[64];
        for (unsigned y = 0; y < 8; ++y) {
            for (unsigned x = 0; x < 8; ++x) {
                int pv;
                if (b < 4) {
                    const unsigned ly = (br.y - mby * 16) + y;
                    const unsigned lx = (br.x - mbx * 16) + x;
                    pv = pred_y[ly * 16 + lx];
                } else {
                    pv = (b == 4 ? pred_cb : pred_cr)[y * 8 + x];
                }
                resid[y * 8 + x] =
                    static_cast<s16>(int(p.at(br.x + x, br.y + y)) - pv);
            }
        }
        codeBlock(resid, q_inter, mb.blocks[b]);
        if (anyNonzero(mb.blocks[b]))
            mb.cbp |= 1u << b;
    }
}

/** Reconstruct one inter macroblock from prediction + residuals. */
void
reconInterMb(const MbCode &mb, unsigned mbx, unsigned mby,
             const u8 pred_y[256], const u8 pred_cb[64],
             const u8 pred_cr[64], const QuantTable &q_inter, Ycc420 &dst)
{
    const auto blocks = mbBlocks(mbx, mby);
    for (unsigned b = 0; b < 6; ++b) {
        const BlockRef &br = blocks[b];
        s16 resid[64] = {};
        if (mb.cbp & (1u << b))
            decodeBlock(mb.blocks[b], q_inter, resid);
        Plane &p = planeOf(dst, br.plane);
        for (unsigned y = 0; y < 8; ++y) {
            for (unsigned x = 0; x < 8; ++x) {
                int pv;
                if (b < 4) {
                    const unsigned ly = (br.y - mby * 16) + y;
                    const unsigned lx = (br.x - mbx * 16) + x;
                    pv = pred_y[ly * 16 + lx];
                } else {
                    pv = (b == 4 ? pred_cb : pred_cr)[y * 8 + x];
                }
                p.at(br.x + x, br.y + y) =
                    satU8(pv + resid[y * 8 + x]);
            }
        }
    }
}

void
encodeMv(BitWriter &bw, MotionVector mv)
{
    for (const int c : {mv.dx, mv.dy}) {
        const unsigned cat = jpeg::magnitudeCategory(c);
        mpegMvTable().encode(bw, cat);
        if (cat)
            bw.put(jpeg::magnitudeBits(c, cat), cat);
    }
}

MotionVector
decodeMv(BitReader &br)
{
    MotionVector mv;
    for (int *c : {&mv.dx, &mv.dy}) {
        const unsigned cat = mpegMvTable().decode(br);
        *c = cat ? jpeg::magnitudeExtend(br.getBits(cat), cat) : 0;
    }
    return mv;
}

} // namespace

std::vector<u8>
writeFrameBits(const FrameCode &frame)
{
    BitWriter bw;
    for (const MbCode &mb : frame.mbs) {
        bw.put(static_cast<u32>(mb.mode), 2);
        if (mb.mode == MbMode::Fwd || mb.mode == MbMode::Avg)
            encodeMv(bw, mb.fwd);
        if (mb.mode == MbMode::Bwd || mb.mode == MbMode::Avg)
            encodeMv(bw, mb.bwd);
        if (mb.mode != MbMode::Intra)
            bw.put(mb.cbp, 6);
        for (unsigned b = 0; b < 6; ++b) {
            if (!(mb.cbp & (1u << b)))
                continue;
            std::vector<Sym> syms;
            int pred = 0;
            jpeg::blockToSymbols(mb.blocks[b], pred, 0, 63, syms);
            bool first = true;
            for (const Sym &s : syms) {
                (first ? mpegDcTable() : mpegAcTable()).encode(bw, s.sym);
                first = false;
                if (s.nbits)
                    bw.put(s.bits, s.nbits);
            }
        }
    }
    return bw.finish();
}

void
readFrameBits(FrameCode &frame, unsigned num_mbs)
{
    BitReader br(frame.bits);
    frame.mbs.assign(num_mbs, MbCode{});
    for (MbCode &mb : frame.mbs) {
        mb.mode = static_cast<MbMode>(br.getBits(2));
        if (mb.mode == MbMode::Fwd || mb.mode == MbMode::Avg)
            mb.fwd = decodeMv(br);
        if (mb.mode == MbMode::Bwd || mb.mode == MbMode::Avg)
            mb.bwd = decodeMv(br);
        mb.cbp = mb.mode == MbMode::Intra
                     ? 0x3f
                     : static_cast<u8>(br.getBits(6));
        for (unsigned b = 0; b < 6; ++b) {
            if (!(mb.cbp & (1u << b)))
                continue;
            int pred = 0;
            jpeg::symbolsToBlock(br, mpegDcTable(), mpegAcTable(), pred,
                                 0, 63, mb.blocks[b]);
        }
    }
}

EncodedSeq
encodeMpeg(const std::vector<Ycc420> &frames, const SeqConfig &cfg)
{
    if (frames.size() != 4)
        fatal("encodeMpeg: expected 4 frames (I B B P), got %zu",
              frames.size());
    if (cfg.width % 16 || cfg.height % 16)
        fatal("encodeMpeg: dimensions must be multiples of 16");

    EncodedSeq enc;
    enc.cfg = cfg;
    enc.qIntra = jpeg::scaleTable(jpeg::lumaBaseTable(), cfg.quality);
    enc.qInter = interQuantTable();

    const unsigned mbw = cfg.width / 16;
    const unsigned mbh = cfg.height / 16;

    Ycc420 recon_i = frames[0]; // shape template; contents overwritten
    Ycc420 recon_p = frames[3];

    // --- I frame (display 0) ------------------------------------------
    FrameCode fi;
    fi.type = 'I';
    fi.displayIdx = 0;
    for (unsigned mby = 0; mby < mbh; ++mby) {
        for (unsigned mbx = 0; mbx < mbw; ++mbx) {
            MbCode mb;
            mb.mode = MbMode::Intra;
            mb.cbp = 0x3f;
            const auto blocks = mbBlocks(mbx, mby);
            for (unsigned b = 0; b < 6; ++b) {
                s16 in[64];
                extractBlock(planeOf(frames[0], blocks[b].plane),
                             blocks[b].x, blocks[b].y, true, in);
                codeBlock(in, enc.qIntra, mb.blocks[b]);
                reconIntraBlock(mb, b, blocks[b], enc.qIntra, recon_i);
            }
            fi.mbs.push_back(mb);
        }
    }
    fi.bits = writeFrameBits(fi);
    enc.frames.push_back(std::move(fi));

    // --- P frame (display 3, ref = recon I) ----------------------------
    FrameCode fp;
    fp.type = 'P';
    fp.displayIdx = 3;
    for (unsigned mby = 0; mby < mbh; ++mby) {
        for (unsigned mbx = 0; mbx < mbw; ++mbx) {
            MbCode mb;
            const MotionMatch m = fullSearch(frames[3].y, mbx * 16,
                                             mby * 16, recon_i.y,
                                             cfg.searchRange);
            if (m.sad > kIntraSadThreshold) {
                mb.mode = MbMode::Intra;
                mb.cbp = 0x3f;
                const auto blocks = mbBlocks(mbx, mby);
                for (unsigned b = 0; b < 6; ++b) {
                    s16 in[64];
                    extractBlock(planeOf(frames[3], blocks[b].plane),
                                 blocks[b].x, blocks[b].y, true, in);
                    codeBlock(in, enc.qIntra, mb.blocks[b]);
                    reconIntraBlock(mb, b, blocks[b], enc.qIntra,
                                    recon_p);
                }
            } else {
                mb.mode = MbMode::Fwd;
                mb.fwd = m.mv;
                u8 py[256], pcb[64], pcr[64];
                buildPrediction(mb, mbx, mby, &recon_i, nullptr, py, pcb,
                                pcr);
                codeInterResidual(mb, frames[3], mbx, mby, py, pcb, pcr,
                                  enc.qInter);
                reconInterMb(mb, mbx, mby, py, pcb, pcr, enc.qInter,
                             recon_p);
            }
            fp.mbs.push_back(mb);
        }
    }
    fp.bits = writeFrameBits(fp);
    enc.frames.push_back(std::move(fp));

    // --- B frames (display 1, 2; refs = recon I, recon P) --------------
    for (unsigned d = 1; d <= 2; ++d) {
        FrameCode fb;
        fb.type = 'B';
        fb.displayIdx = d;
        for (unsigned mby = 0; mby < mbh; ++mby) {
            for (unsigned mbx = 0; mbx < mbw; ++mbx) {
                MbCode mb;
                const MotionMatch mf = fullSearch(frames[d].y, mbx * 16,
                                                  mby * 16, recon_i.y,
                                                  cfg.searchRange);
                const MotionMatch mbk = fullSearch(frames[d].y, mbx * 16,
                                                   mby * 16, recon_p.y,
                                                   cfg.searchRange);
                // Interpolated candidate with the two best vectors.
                u8 pf[256], pb[256], pa[256];
                fetchPrediction(recon_i.y, mbx * 16, mby * 16, mf.mv, 16,
                                pf);
                fetchPrediction(recon_p.y, mbx * 16, mby * 16, mbk.mv,
                                16, pb);
                averagePrediction(pf, pb, 256, pa);
                u32 sad_avg = 0;
                for (unsigned y = 0; y < 16; ++y)
                    for (unsigned x = 0; x < 16; ++x) {
                        const int c =
                            frames[d].y.at(mbx * 16 + x, mby * 16 + y);
                        const int diff = c - pa[y * 16 + x];
                        sad_avg += static_cast<u32>(
                            diff < 0 ? -diff : diff);
                    }

                u32 best = mf.sad;
                mb.mode = MbMode::Fwd;
                mb.fwd = mf.mv;
                if (mbk.sad < best) {
                    best = mbk.sad;
                    mb.mode = MbMode::Bwd;
                    mb.bwd = mbk.mv;
                    mb.fwd = MotionVector{};
                }
                if (sad_avg < best) {
                    best = sad_avg;
                    mb.mode = MbMode::Avg;
                    mb.fwd = mf.mv;
                    mb.bwd = mbk.mv;
                }
                if (best > kIntraSadThreshold) {
                    mb.mode = MbMode::Intra;
                    mb.cbp = 0x3f;
                    const auto blocks = mbBlocks(mbx, mby);
                    for (unsigned b = 0; b < 6; ++b) {
                        s16 in[64];
                        extractBlock(planeOf(frames[d], blocks[b].plane),
                                     blocks[b].x, blocks[b].y, true, in);
                        codeBlock(in, enc.qIntra, mb.blocks[b]);
                    }
                } else {
                    u8 py[256], pcb[64], pcr[64];
                    buildPrediction(mb, mbx, mby, &recon_i, &recon_p, py,
                                    pcb, pcr);
                    codeInterResidual(mb, frames[d], mbx, mby, py, pcb,
                                      pcr, enc.qInter);
                }
                fb.mbs.push_back(mb);
            }
        }
        fb.bits = writeFrameBits(fb);
        enc.frames.push_back(std::move(fb));
    }

    enc.recon.push_back(std::move(recon_i));
    enc.recon.push_back(std::move(recon_p));
    return enc;
}

std::vector<Ycc420>
decodeMpeg(const EncodedSeq &enc)
{
    const unsigned mbw = enc.cfg.width / 16;
    const unsigned mbh = enc.cfg.height / 16;

    auto blank = [&] {
        Ycc420 f;
        f.y = Plane(enc.cfg.width, enc.cfg.height);
        f.cb = Plane(enc.cfg.width / 2, enc.cfg.height / 2);
        f.cr = Plane(enc.cfg.width / 2, enc.cfg.height / 2);
        return f;
    };

    std::vector<Ycc420> display(4, blank());
    Ycc420 recon_i = blank(), recon_p = blank();

    for (const FrameCode &fc_in : enc.frames) {
        FrameCode fc;
        fc.type = fc_in.type;
        fc.displayIdx = fc_in.displayIdx;
        fc.bits = fc_in.bits;
        readFrameBits(fc, mbw * mbh);

        Ycc420 out = blank();
        const Ycc420 *fwd_ref = &recon_i;
        const Ycc420 *bwd_ref = &recon_p;

        unsigned idx = 0;
        for (unsigned mby = 0; mby < mbh; ++mby) {
            for (unsigned mbx = 0; mbx < mbw; ++mbx) {
                const MbCode &mb = fc.mbs[idx++];
                if (mb.mode == MbMode::Intra) {
                    const auto blocks = mbBlocks(mbx, mby);
                    for (unsigned b = 0; b < 6; ++b)
                        reconIntraBlock(mb, b, blocks[b],
                                        enc.qIntra, out);
                } else {
                    u8 py[256], pcb[64], pcr[64];
                    buildPrediction(mb, mbx, mby, fwd_ref, bwd_ref, py,
                                    pcb, pcr);
                    reconInterMb(mb, mbx, mby, py, pcb, pcr, enc.qInter,
                                 out);
                }
            }
        }
        if (fc.type == 'I')
            recon_i = out;
        else if (fc.type == 'P')
            recon_p = out;
        display[fc.displayIdx] = std::move(out);
    }
    return display;
}

} // namespace msim::mpeg
