#include "mpeg/motion.hh"

#include <cstdlib>

#include "common/logging.hh"

namespace msim::mpeg
{

u32
sadBlock(const Plane &a, unsigned ax, unsigned ay, const Plane &b,
         unsigned bx, unsigned by, unsigned w, unsigned h)
{
    u32 sad = 0;
    for (unsigned y = 0; y < h; ++y)
        for (unsigned x = 0; x < w; ++x)
            sad += static_cast<u32>(
                std::abs(int(a.at(ax + x, ay + y)) -
                         int(b.at(bx + x, by + y))));
    return sad;
}

MotionMatch
fullSearch(const Plane &cur, unsigned mx, unsigned my, const Plane &ref,
           int range)
{
    MotionMatch best;
    best.sad = ~u32{0};
    for (int dy = -range; dy <= range; ++dy) {
        for (int dx = -range; dx <= range; ++dx) {
            const int rx = static_cast<int>(mx) + dx;
            const int ry = static_cast<int>(my) + dy;
            if (rx < 0 || ry < 0 || rx + 16 > static_cast<int>(ref.w) ||
                ry + 16 > static_cast<int>(ref.h))
                continue;
            const u32 sad =
                sadBlock(cur, mx, my, ref, static_cast<unsigned>(rx),
                         static_cast<unsigned>(ry), 16, 16);
            // Ties go to the earlier (row-major) candidate, and to the
            // zero vector first — matching the traced search order.
            if (sad < best.sad) {
                best.sad = sad;
                best.mv = {dx, dy};
            }
        }
    }
    if (best.sad == ~u32{0})
        panic("fullSearch: empty candidate window");
    return best;
}

void
fetchPrediction(const Plane &ref, unsigned mx, unsigned my,
                MotionVector mv, unsigned size, u8 *out)
{
    const int dx = size == 16 ? mv.dx : mv.dx / 2;
    const int dy = size == 16 ? mv.dy : mv.dy / 2;
    const int bx = static_cast<int>(mx) + dx;
    const int by = static_cast<int>(my) + dy;
    if (bx < 0 || by < 0 || bx + int(size) > int(ref.w) ||
        by + int(size) > int(ref.h))
        panic("fetchPrediction: block out of bounds");
    for (unsigned y = 0; y < size; ++y)
        for (unsigned x = 0; x < size; ++x)
            out[y * size + x] = ref.at(bx + x, by + y);
}

void
averagePrediction(const u8 *a, const u8 *b, unsigned n, u8 *out)
{
    for (unsigned i = 0; i < n; ++i)
        out[i] = static_cast<u8>((unsigned(a[i]) + b[i] + 1) >> 1);
}

} // namespace msim::mpeg
