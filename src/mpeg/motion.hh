/**
 * @file
 * Motion estimation and compensation primitives (native reference).
 *
 * Full-search block matching over a clamped window, 16x16 luma
 * macroblocks, sum-of-absolute-differences cost — the computation the
 * VIS pdist instruction targets (paper Section 3.2.2).
 */

#ifndef MSIM_MPEG_MOTION_HH_
#define MSIM_MPEG_MOTION_HH_

#include "jpeg/color.hh"

namespace msim::mpeg
{

using jpeg::Plane;

/** A motion vector in integer pixels. */
struct MotionVector
{
    int dx = 0;
    int dy = 0;

    bool operator==(const MotionVector &) const = default;
};

/** Result of a full search. */
struct MotionMatch
{
    MotionVector mv;
    u32 sad = 0;
};

/** SAD between the WxH block at (ax,ay) in @p a and (bx,by) in @p b. */
u32 sadBlock(const Plane &a, unsigned ax, unsigned ay, const Plane &b,
             unsigned bx, unsigned by, unsigned w, unsigned h);

/**
 * Exhaustive search for the best 16x16 match around (mx,my) within
 * +-range, clamped to the reference bounds.
 */
MotionMatch fullSearch(const Plane &cur, unsigned mx, unsigned my,
                       const Plane &ref, int range);

/**
 * Fetch the 16x16 (luma) or 8x8 (chroma) prediction block at
 * (mx+dx, my+dy); chroma uses the half-resolution vector dx/2, dy/2.
 */
void fetchPrediction(const Plane &ref, unsigned mx, unsigned my,
                     MotionVector mv, unsigned size, u8 *out);

/** Average two prediction blocks (B-frame interpolated mode). */
void averagePrediction(const u8 *a, const u8 *b, unsigned n, u8 *out);

} // namespace msim::mpeg

#endif // MSIM_MPEG_MOTION_HH_
