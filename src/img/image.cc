#include "img/image.hh"

#include <cmath>
#include <cstdlib>

#include "common/logging.hh"

namespace msim::img
{

Image::Image(unsigned width, unsigned height, unsigned bands)
    : width_(width), height_(height), bands_(bands),
      data_(static_cast<size_t>(width) * height * bands, 0)
{
    if (bands < 1 || bands > 4)
        fatal("image band count %u out of range [1,4]", bands);
}

u8 &
Image::at(unsigned x, unsigned y, unsigned band)
{
    return data_[(static_cast<size_t>(y) * width_ + x) * bands_ + band];
}

u8
Image::at(unsigned x, unsigned y, unsigned band) const
{
    return data_[(static_cast<size_t>(y) * width_ + x) * bands_ + band];
}

namespace
{

void
checkShape(const Image &a, const Image &b)
{
    if (a.width() != b.width() || a.height() != b.height() ||
        a.bands() != b.bands()) {
        panic("image shape mismatch: %ux%ux%u vs %ux%ux%u", a.width(),
              a.height(), a.bands(), b.width(), b.height(), b.bands());
    }
}

} // namespace

double
psnr(const Image &a, const Image &b)
{
    checkShape(a, b);
    double mse = 0.0;
    const size_t n = a.sizeBytes();
    for (size_t i = 0; i < n; ++i) {
        const double d = static_cast<double>(a.data()[i]) - b.data()[i];
        mse += d * d;
    }
    mse /= static_cast<double>(n);
    if (mse == 0.0)
        return 99.0; // conventionally "identical"
    return 10.0 * std::log10(255.0 * 255.0 / mse);
}

double
meanAbsDiff(const Image &a, const Image &b)
{
    checkShape(a, b);
    u64 sum = 0;
    const size_t n = a.sizeBytes();
    for (size_t i = 0; i < n; ++i)
        sum += static_cast<u64>(std::abs(int(a.data()[i]) - int(b.data()[i])));
    return static_cast<double>(sum) / static_cast<double>(n);
}

unsigned
maxAbsDiff(const Image &a, const Image &b)
{
    checkShape(a, b);
    unsigned m = 0;
    const size_t n = a.sizeBytes();
    for (size_t i = 0; i < n; ++i) {
        const unsigned d =
            static_cast<unsigned>(std::abs(int(a.data()[i]) - int(b.data()[i])));
        if (d > m)
            m = d;
    }
    return m;
}

} // namespace msim::img
