/**
 * @file
 * Multi-band 8-bit image container used as benchmark input/output.
 *
 * Pixels are stored band-interleaved (RGBRGB... for 3-band images), the
 * same layout the Sun VSDK kernels operate on, so a row of a 3-band image
 * is 3*width consecutive bytes.
 */

#ifndef MSIM_IMG_IMAGE_HH_
#define MSIM_IMG_IMAGE_HH_

#include <vector>

#include "common/types.hh"

namespace msim::img
{

/** A width x height image with 1..4 interleaved 8-bit bands. */
class Image
{
  public:
    Image() = default;

    /** Create a zero-filled image. */
    Image(unsigned width, unsigned height, unsigned bands);

    unsigned width() const { return width_; }
    unsigned height() const { return height_; }
    unsigned bands() const { return bands_; }

    /** Bytes per row (width * bands). */
    unsigned rowBytes() const { return width_ * bands_; }

    /** Total payload size in bytes. */
    size_t sizeBytes() const { return data_.size(); }

    u8 &at(unsigned x, unsigned y, unsigned band);
    u8 at(unsigned x, unsigned y, unsigned band) const;

    u8 *data() { return data_.data(); }
    const u8 *data() const { return data_.data(); }

    bool operator==(const Image &other) const = default;

  private:
    unsigned width_ = 0;
    unsigned height_ = 0;
    unsigned bands_ = 0;
    std::vector<u8> data_;
};

/** Peak signal-to-noise ratio between two same-shaped images, in dB. */
double psnr(const Image &a, const Image &b);

/** Mean absolute per-sample difference between two same-shaped images. */
double meanAbsDiff(const Image &a, const Image &b);

/** Largest per-sample absolute difference. */
unsigned maxAbsDiff(const Image &a, const Image &b);

} // namespace msim::img

#endif // MSIM_IMG_IMAGE_HH_
