/**
 * @file
 * Deterministic synthetic image and video generation.
 *
 * The paper's inputs (sf16.ppm, rose16.ppm, winter16.ppm, mei16v2) are
 * not redistributable, so the workloads are synthesized with controlled
 * statistics: smooth low-frequency gradients (realistic DCT energy
 * compaction), mid-frequency texture (non-trivial Huffman symbol
 * distribution), and noise (data-dependent saturation/threshold branch
 * behaviour). Video frames add translational global motion plus a moving
 * object so motion estimation has real work to do.
 */

#ifndef MSIM_IMG_SYNTH_HH_
#define MSIM_IMG_SYNTH_HH_

#include <vector>

#include "img/image.hh"

namespace msim::img
{

/**
 * Deterministic "photograph-like" test image.
 *
 * @param width   Image width in pixels.
 * @param height  Image height in pixels.
 * @param bands   Number of interleaved bands (1 or 3).
 * @param seed    Content selector; different seeds give independent images.
 */
Image makeTestImage(unsigned width, unsigned height, unsigned bands,
                    u64 seed);

/**
 * Synthetic video: @p frames frames of @p width x @p height luma with a
 * globally panning background and a locally moving block, suitable for
 * exercising full-search motion estimation. Returned images are 1-band.
 *
 * @param dx Global pan in pixels/frame (x).
 * @param dy Global pan in pixels/frame (y).
 */
std::vector<Image> makeTestVideo(unsigned width, unsigned height,
                                 unsigned frames, int dx, int dy, u64 seed);

} // namespace msim::img

#endif // MSIM_IMG_SYNTH_HH_
