#include "img/synth.hh"

#include <cmath>

#include "common/rng.hh"
#include "common/saturate.hh"

namespace msim::img
{

namespace
{

/**
 * Content function: low-frequency gradient + two sinusoidal textures +
 * band-dependent phase, evaluated at world coordinates so that shifted
 * evaluations produce genuinely translated content for video.
 */
u8
contentAt(double wx, double wy, unsigned band, u64 seed)
{
    const double s = static_cast<double>(seed % 1024) * 0.13;
    const double base = 118.0 + 72.0 * std::sin(wx * 0.041 + s) +
                        52.0 * std::cos(wy * 0.057 + 0.7 * band);
    const double texture = 26.0 * std::sin(wx * 0.19 + wy * 0.11 + band) +
                           16.0 * std::cos(wx * 0.07 - wy * 0.23 + s);
    return satU8(static_cast<s64>(std::lround(base + texture)));
}

} // namespace

Image
makeTestImage(unsigned width, unsigned height, unsigned bands, u64 seed)
{
    Image im(width, height, bands);
    Rng rng(seed * 0x9e3779b97f4a7c15ull + 1);
    for (unsigned y = 0; y < height; ++y) {
        for (unsigned x = 0; x < width; ++x) {
            for (unsigned b = 0; b < bands; ++b) {
                const int noise = static_cast<int>(rng.nextBelow(17)) - 8;
                im.at(x, y, b) =
                    satU8(contentAt(x, y, b, seed) + noise);
            }
        }
    }
    return im;
}

std::vector<Image>
makeTestVideo(unsigned width, unsigned height, unsigned frames, int dx,
              int dy, u64 seed)
{
    std::vector<Image> video;
    video.reserve(frames);
    Rng rng(seed ^ 0xabcdef1234567ull);
    // Static per-sequence noise texture, translated with the pan so that
    // motion search finds coherent matches.
    for (unsigned f = 0; f < frames; ++f) {
        Image im(width, height, 1);
        const double ox = static_cast<double>(dx) * f;
        const double oy = static_cast<double>(dy) * f;
        // Moving foreground object: a bright square with its own velocity.
        const int objx =
            static_cast<int>((width / 4 + 3 * f) % (width - 16));
        const int objy =
            static_cast<int>((height / 4 + 2 * f) % (height - 16));
        for (unsigned y = 0; y < height; ++y) {
            for (unsigned x = 0; x < width; ++x) {
                u8 v = contentAt(x + ox, y + oy, 0, seed);
                const bool in_obj = static_cast<int>(x) >= objx &&
                                    static_cast<int>(x) < objx + 16 &&
                                    static_cast<int>(y) >= objy &&
                                    static_cast<int>(y) < objy + 16;
                if (in_obj)
                    v = satU8(v + 70);
                im.at(x, y, 0) = v;
            }
        }
        video.push_back(std::move(im));
    }
    return video;
}

} // namespace msim::img
