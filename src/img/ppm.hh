/**
 * @file
 * PPM (P6) / PGM (P5) reader and writer.
 *
 * The paper ran the image kernels on PPM inputs from the Intel Media
 * Benchmark. Our default workloads are synthesized (see img/synth.hh),
 * but real images can be substituted through these functions.
 */

#ifndef MSIM_IMG_PPM_HH_
#define MSIM_IMG_PPM_HH_

#include <iosfwd>
#include <string>

#include "img/image.hh"

namespace msim::img
{

/** Parse a binary PPM (P6, 3 bands) or PGM (P5, 1 band) stream. */
Image readPpm(std::istream &in);

/** Load a PPM/PGM file; calls fatal() on I/O or format errors. */
Image readPpmFile(const std::string &path);

/** Write @p im as P6 (3 bands) or P5 (1 band). */
void writePpm(std::ostream &out, const Image &im);

/** Save @p im to @p path; calls fatal() on I/O errors. */
void writePpmFile(const std::string &path, const Image &im);

} // namespace msim::img

#endif // MSIM_IMG_PPM_HH_
