#include "img/ppm.hh"

#include <fstream>
#include <istream>
#include <ostream>
#include <string>

#include "common/logging.hh"

namespace msim::img
{

namespace
{

/** Skip whitespace and '#' comments between PPM header tokens. */
void
skipSeparators(std::istream &in)
{
    for (;;) {
        const int c = in.peek();
        if (c == '#') {
            std::string line;
            std::getline(in, line);
        } else if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
            in.get();
        } else {
            return;
        }
    }
}

unsigned
readHeaderInt(std::istream &in)
{
    skipSeparators(in);
    unsigned v = 0;
    if (!(in >> v))
        fatal("ppm: malformed header integer");
    return v;
}

} // namespace

Image
readPpm(std::istream &in)
{
    char magic[2] = {0, 0};
    in.read(magic, 2);
    unsigned bands = 0;
    if (magic[0] == 'P' && magic[1] == '6')
        bands = 3;
    else if (magic[0] == 'P' && magic[1] == '5')
        bands = 1;
    else
        fatal("ppm: unsupported magic '%c%c'", magic[0], magic[1]);

    const unsigned width = readHeaderInt(in);
    const unsigned height = readHeaderInt(in);
    const unsigned maxval = readHeaderInt(in);
    if (maxval != 255)
        fatal("ppm: only maxval 255 supported, got %u", maxval);
    in.get(); // the single whitespace byte after maxval

    Image im(width, height, bands);
    in.read(reinterpret_cast<char *>(im.data()),
            static_cast<std::streamsize>(im.sizeBytes()));
    if (!in)
        fatal("ppm: truncated pixel data");
    return im;
}

Image
readPpmFile(const std::string &path)
{
    std::ifstream f(path, std::ios::binary);
    if (!f)
        fatal("ppm: cannot open '%s'", path.c_str());
    return readPpm(f);
}

void
writePpm(std::ostream &out, const Image &im)
{
    if (im.bands() == 3)
        out << "P6\n";
    else if (im.bands() == 1)
        out << "P5\n";
    else
        fatal("ppm: cannot write %u-band image", im.bands());
    out << im.width() << ' ' << im.height() << "\n255\n";
    out.write(reinterpret_cast<const char *>(im.data()),
              static_cast<std::streamsize>(im.sizeBytes()));
}

void
writePpmFile(const std::string &path, const Image &im)
{
    std::ofstream f(path, std::ios::binary);
    if (!f)
        fatal("ppm: cannot open '%s' for writing", path.c_str());
    writePpm(f, im);
    if (!f)
        fatal("ppm: write to '%s' failed", path.c_str());
}

} // namespace msim::img
