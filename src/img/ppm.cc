#include "img/ppm.hh"

#include <fstream>
#include <istream>
#include <ostream>
#include <string>

#include "common/logging.hh"

namespace msim::img
{

namespace
{

/** Skip whitespace and '#' comments between PPM header tokens. */
void
skipSeparators(std::istream &in)
{
    for (;;) {
        const int c = in.peek();
        if (c == '#') {
            std::string line;
            std::getline(in, line);
        } else if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
            in.get();
        } else {
            return;
        }
    }
}

unsigned
readHeaderInt(std::istream &in, const char *field)
{
    skipSeparators(in);
    // Detect end-of-stream inside the header explicitly: a '#' comment
    // at EOF (or a plain truncated header) otherwise surfaces as a
    // generic extraction failure with no hint of what was missing.
    if (in.peek() == std::istream::traits_type::eof())
        fatal("ppm: end of stream inside header (reading %s)", field);
    unsigned v = 0;
    if (!(in >> v))
        fatal("ppm: malformed header integer (reading %s)", field);
    return v;
}

} // namespace

Image
readPpm(std::istream &in)
{
    char magic[2] = {0, 0};
    if (!in.read(magic, 2))
        fatal("ppm: end of stream reading magic");
    unsigned bands = 0;
    if (magic[0] == 'P' && magic[1] == '6')
        bands = 3;
    else if (magic[0] == 'P' && magic[1] == '5')
        bands = 1;
    else
        fatal("ppm: unsupported magic '%c%c'", magic[0], magic[1]);

    const unsigned width = readHeaderInt(in, "width");
    const unsigned height = readHeaderInt(in, "height");
    const unsigned maxval = readHeaderInt(in, "maxval");
    if (width == 0 || height == 0)
        fatal("ppm: zero image dimension (%ux%u)", width, height);
    // The payload size must be computed in 64 bits: width * height *
    // bands in unsigned arithmetic wraps for dimensions as small as
    // 65536x65536, constructing a tiny allocation with giant
    // dimensions that kernels would then index out of bounds.
    const u64 payload =
        static_cast<u64>(width) * static_cast<u64>(height) * bands;
    constexpr u64 kMaxPayload = u64{1} << 30; // 1 GiB sanity cap
    if (payload > kMaxPayload)
        fatal("ppm: image too large (%ux%ux%u = %llu bytes)", width,
              height, bands, static_cast<unsigned long long>(payload));
    if (maxval != 255)
        fatal("ppm: only maxval 255 supported, got %u", maxval);
    in.get(); // the single whitespace byte after maxval

    Image im(width, height, bands);
    in.read(reinterpret_cast<char *>(im.data()),
            static_cast<std::streamsize>(im.sizeBytes()));
    if (!in)
        fatal("ppm: truncated pixel data");
    return im;
}

Image
readPpmFile(const std::string &path)
{
    std::ifstream f(path, std::ios::binary);
    if (!f)
        fatal("ppm: cannot open '%s'", path.c_str());
    return readPpm(f);
}

void
writePpm(std::ostream &out, const Image &im)
{
    if (im.bands() == 3)
        out << "P6\n";
    else if (im.bands() == 1)
        out << "P5\n";
    else
        fatal("ppm: cannot write %u-band image", im.bands());
    out << im.width() << ' ' << im.height() << "\n255\n";
    out.write(reinterpret_cast<const char *>(im.data()),
              static_cast<std::streamsize>(im.sizeBytes()));
}

void
writePpmFile(const std::string &path, const Image &im)
{
    std::ofstream f(path, std::ios::binary);
    if (!f)
        fatal("ppm: cannot open '%s' for writing", path.c_str());
    writePpm(f, im);
    if (!f)
        fatal("ppm: write to '%s' failed", path.c_str());
}

} // namespace msim::img
