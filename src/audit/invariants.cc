#include "audit/invariants.hh"

#include <cmath>
#include <cstdarg>
#include <cstdio>

#include "common/logging.hh"
#include "cpu/accounting.hh"

namespace msim::audit
{

namespace
{

thread_local InvariantSink *tl_sink = nullptr;

/**
 * Built-in invariant table: every cycle-level check wired into the
 * timing components, with the argument for why each must hold. Kept
 * here (not scattered as static registrars) so the list survives
 * static-library link-time TU pruning and has no init-order hazards.
 */
std::vector<InvariantInfo> &
table()
{
    static std::vector<InvariantInfo> t = {
        {"mshr-conservation", "mem/cache",
         "sorted fill-time arrays are incrementally maintained mirrors of "
         "the MSHR columns; any drift means busyMshrs()/findFreeMshr() "
         "answer from state the reference model does not see"},
        {"mshr-combine-bound", "mem/cache",
         "each MSHR combines at most max(1, maxCombines) requests (paper "
         "section 2.2: 12 MSHRs x 8 combining slots); the counter is set "
         "to 1 on allocation and bumped only below the cap"},
        {"tag-store-consistency", "mem/cache",
         "a line's tag must map to the set slice it is stored in and "
         "appear in at most one way; a duplicate or misplaced tag makes "
         "the flat SoA store diverge from set semantics"},
        {"port-occupancy", "mem/cache",
         "the port free-time array must stay sorted ascending with "
         "exactly `ports` entries, or [0] is no longer the min_element "
         "the reference computes"},
        {"retire-order-monotonicity", "cpu/replay_engine",
         "instructions retire in program order at non-decreasing cycles; "
         "the head slot must have issued and be ready by the retire "
         "cycle, or the window ring has corrupted in-flight state"},
        {"window-occupancy", "cpu/replay_engine",
         "in-flight count <= windowSize, memory-queue count <= "
         "memQueueSize, speculative branches <= maxSpecBranches: the "
         "structural limits dispatch stalls on can never be exceeded"},
        {"accounting-identity", "sim/runner",
         "section 2.3.4: Busy + FUstall + L1hit + L1miss == total cycles "
         "per run (to FP tolerance); every simulated cycle is charged to "
         "exactly one component"},
        {"batch-chunk-monotonicity", "cpu/batch_replay_engine",
         "chunk boundaries strictly increase and never pass the trace "
         "length; a stalled or reversed boundary would re-decode or skip "
         "instructions for every lane at once"},
        {"batch-lane-cursor-agreement", "cpu/batch_replay_engine",
         "after each chunk every unfinished lane's fetch cursor sits in "
         "[chunkEnd, chunkEnd + issueWidth): all lanes agree on the trace "
         "index up to the one-cycle dispatch overrun, so each decoded "
         "window covers every read any lane performs"},
        {"skip-horizon-soundness", "cpu/replay_engine",
         "an event-skip jump from t to h may only cross cycles where no "
         "retire, issue or dispatch can occur: ready-heap entries, staged "
         "wakeups and the head's completion must all lie at or beyond h, "
         "or the skipped region was not dead and the bulk stall charge "
         "diverges from per-cycle accounting"},
        {"batch-lane-occupancy", "cpu/batch_replay_engine",
         "per lane, in-flight instructions never exceed that lane's "
         "windowSize at a chunk boundary, and a finished lane has fully "
         "drained (cursor at instCount, empty window); lockstep pausing "
         "must not leak window occupancy across chunks"},
        {"batchmem-column-consistency", "mem/batch",
         "every lane-port access served from a shared per-chunk line "
         "column must read exactly addr >> lineShift for its memory-lane "
         "ordinal, and the chunk window handed over by the batch driver "
         "must lie inside the bound memory lane; a skewed ordinal or a "
         "stale column would route the access to the wrong line with no "
         "other symptom than silently divergent timing"},
        {"batchmem-tag-soa", "mem/batch",
         "probing a geometry class's lane-major shared tag arena with "
         "one multi-lane compare sweep must classify every member lane "
         "exactly as that lane's own cache does through its private "
         "slot arithmetic (stride/base from Cache::bindTagArena); "
         "checked once per chunk on a live address, so an arena layout "
         "bug is caught at the first chunk, not at end-of-run stat "
         "comparison"},
        {"simd-kernel-identity", "common/simd",
         "every dispatched vector kernel must return exactly what its "
         "scalar twin returns on the same inputs (all kernels are exact "
         "integer min/max/compare/popcount); under audit builds the "
         "dispatch table wraps each vector entry in a checker that "
         "re-runs the scalar reference and compares, so any divergence "
         "between MSIM_SIMD=0 and native dispatch is caught at the "
         "first differing call, not at end-of-run stat comparison"},
    };
    return t;
}

} // namespace

InvariantSink *
currentSink()
{
    return tl_sink;
}

ScopedSink::ScopedSink(InvariantSink &sink) : prev_(tl_sink)
{
    tl_sink = &sink;
}

ScopedSink::~ScopedSink()
{
    tl_sink = prev_;
}

void
fail(const char *check, const char *file, int line, const char *fmt, ...)
{
    char buf[512];
    va_list args;
    va_start(args, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, args);
    va_end(args);

    if (tl_sink) {
        tl_sink->report(check, file, line, buf);
        return;
    }
    panic("audit: invariant failed at %s:%d: %s (%s)", file, line, check,
          buf);
}

void
registerInvariant(const InvariantInfo &info)
{
    table().push_back(info);
}

const std::vector<InvariantInfo> &
invariants()
{
    return table();
}

bool
accountingIdentityHolds(const cpu::ExecStats &stats, double *err)
{
    const double sum =
        stats.busy + stats.fuStall + stats.memL1Hit + stats.memL1Miss;
    const double cycles = static_cast<double>(stats.cycles);
    const double e = std::fabs(sum - cycles);
    if (err)
        *err = e;
    return e <= 1e-6 * cycles + 1e-6;
}

} // namespace msim::audit
