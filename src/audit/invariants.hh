/**
 * @file
 * Differential-audit invariant layer.
 *
 * Cheap cycle-level assertions compiled in under MSIM_AUDIT (and
 * always-on in Debug builds, so CI Debug jobs get them for free).
 * Default RelWithDebInfo/Release builds compile every check to nothing:
 * the fast paths added in PRs 1–2 pay zero cost.
 *
 * Usage inside a timing component:
 *
 *     MSIM_AUDIT_CHECK(count <= cap, "occupancy %u > cap %u", count, cap);
 *
 * When no InvariantSink is installed a failing check panic()s — a run
 * that trips an invariant is a simulator bug, not a recoverable
 * condition. The audit_fuzz driver installs a ScopedSink so it can
 * collect violations across thousands of randomized configs, shrink
 * the failing case, and print a repro instead of dying on the first.
 *
 * Every invariant is also registered (name, component, and the
 * argument for why it must hold) in a global table; `audit_fuzz
 * --list` prints it, and ROADMAP.md requires new timing components to
 * add their invariants here.
 */

#ifndef MSIM_AUDIT_INVARIANTS_HH_
#define MSIM_AUDIT_INVARIANTS_HH_

#include <string>
#include <vector>

#include "common/types.hh"

#if defined(MSIM_AUDIT) || !defined(NDEBUG)
#define MSIM_AUDIT_ENABLED 1
#else
#define MSIM_AUDIT_ENABLED 0
#endif

namespace msim::cpu
{
struct ExecStats;
} // namespace msim::cpu

namespace msim::audit
{

/** True when MSIM_AUDIT_CHECK compiles to a real check. */
inline constexpr bool kEnabled = MSIM_AUDIT_ENABLED != 0;

/** One recorded invariant failure. */
struct Violation
{
    std::string check;   ///< stringized condition
    std::string message; ///< formatted detail
    const char *file;
    int line;
};

/**
 * Collector for invariant violations. Install with ScopedSink; while
 * installed, failing checks record here instead of panicking. The
 * record list is capped so a hot-loop invariant going bad on every
 * cycle cannot eat all memory; the violation *count* is exact.
 */
class InvariantSink
{
  public:
    static constexpr size_t kMaxRecords = 32;

    void
    report(const char *check, const char *file, int line, std::string msg)
    {
        ++count_;
        if (records_.size() < kMaxRecords)
            records_.push_back({check, std::move(msg), file, line});
    }

    u64 violations() const { return count_; }
    const std::vector<Violation> &records() const { return records_; }

    void
    clear()
    {
        count_ = 0;
        records_.clear();
    }

  private:
    u64 count_ = 0;
    std::vector<Violation> records_;
};

/** The sink installed on this thread, or nullptr (checks panic). */
InvariantSink *currentSink();

/** RAII installer for a thread-local InvariantSink. */
class ScopedSink
{
  public:
    explicit ScopedSink(InvariantSink &sink);
    ~ScopedSink();

    ScopedSink(const ScopedSink &) = delete;
    ScopedSink &operator=(const ScopedSink &) = delete;

  private:
    InvariantSink *prev_;
};

/**
 * Invariant-check failure entry point (called by MSIM_AUDIT_CHECK).
 * Records into the installed sink, or panics when none is installed.
 */
void fail(const char *check, const char *file, int line, const char *fmt,
          ...) __attribute__((format(printf, 4, 5)));

/** Registry entry: what is checked, where, and why it must hold. */
struct InvariantInfo
{
    const char *name;      ///< short kebab-case id
    const char *component; ///< e.g. "mem/cache", "cpu/replay_engine"
    const char *argument;  ///< one-line reason the invariant holds
};

/**
 * Append to the global invariant table. The built-in invariants are
 * seeded in invariants.cc; new timing components register theirs there
 * (or call this at startup) so `audit_fuzz --list` stays complete.
 */
void registerInvariant(const InvariantInfo &info);

/** All registered invariants, in registration order. */
const std::vector<InvariantInfo> &invariants();

/**
 * §2.3.4 accounting identity: Busy + FUstall + L1hit + L1miss must
 * equal total cycles. Charges are accumulated in doubles (fractions of
 * a cycle per retire slot), so the comparison uses a tolerance of
 * 1e-6 * cycles + 1e-6 — generous against rounding drift across ~1e8
 * additions, tight enough that any systematic misaccounting (a cycle
 * charged twice or not at all on a code path) trips it. Always
 * compiled, regardless of MSIM_AUDIT, so audit_fuzz and tests can call
 * it in any build type.
 *
 * @param[out] err  If non-null, receives |sum - cycles|.
 */
bool accountingIdentityHolds(const cpu::ExecStats &stats,
                             double *err = nullptr);

} // namespace msim::audit

namespace msim::sim
{
// The audit layer is surfaced to simulator users under sim:: as well.
using InvariantSink = audit::InvariantSink;
using ScopedAuditSink = audit::ScopedSink;
} // namespace msim::sim

#if MSIM_AUDIT_ENABLED
#define MSIM_AUDIT_CHECK(cond, ...)                                          \
    do {                                                                     \
        if (!(cond)) [[unlikely]]                                            \
            ::msim::audit::fail(#cond, __FILE__, __LINE__, __VA_ARGS__);     \
    } while (0)
#else
#define MSIM_AUDIT_CHECK(cond, ...)                                          \
    do {                                                                     \
    } while (0)
#endif

#endif // MSIM_AUDIT_INVARIANTS_HH_
