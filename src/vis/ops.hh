/**
 * @file
 * Functional semantics of the VIS instruction subset used by the paper's
 * benchmarks, operating on 64-bit packed values.
 *
 * Lane convention: lane 0 lives in the least significant bits (see
 * common/bits.hh); the trace builder's 64-bit loads place the byte at
 * address A+i into byte lane i, so faligndata/edge masks compose with
 * memory exactly as on the big-endian original.
 *
 * Packed adds/subtracts wrap (modulo), as on real VIS; saturation happens
 * only in the fpack* instructions, which is precisely why VIS kernels can
 * drop explicit saturation branches (paper Section 3.2.2).
 */

#ifndef MSIM_VIS_OPS_HH_
#define MSIM_VIS_OPS_HH_

#include "common/types.hh"
#include "vis/gsr.hh"

namespace msim::vis
{

// --- Packed arithmetic (wraparound) --------------------------------------

/** Four parallel 16-bit adds (modulo 2^16 per lane). */
u64 fpadd16(u64 a, u64 b);

/** Four parallel 16-bit subtracts. */
u64 fpsub16(u64 a, u64 b);

/** Two parallel 32-bit adds. */
u64 fpadd32(u64 a, u64 b);

/** Two parallel 32-bit subtracts. */
u64 fpsub32(u64 a, u64 b);

// --- Packed multiplies ----------------------------------------------------

/**
 * fmul8x16: lane i of the result is round((u8)a_byte[i] * (s16)b_half[i]
 * / 256), i.e. an unsigned pixel scaled by a signed 8.8 fixed-point
 * coefficient. Only byte lanes 0..3 of @p a participate.
 */
u64 fmul8x16(u64 a, u64 b);

/** fmul8x16au: all four pixels multiplied by the upper 16 bits of b. */
u64 fmul8x16au(u64 a, u32 b);

/** fmul8x16al: all four pixels multiplied by the lower 16 bits of b. */
u64 fmul8x16al(u64 a, u32 b);

/**
 * fmul8sux16: signed upper byte of each 16-bit a-lane times the b-lane;
 * the upper 16 bits of the 24-bit product per lane.
 */
u64 fmul8sux16(u64 a, u64 b);

/**
 * fmul8ulx16: unsigned lower byte of each 16-bit a-lane times the b-lane,
 * sign-extended upper 16 bits of the 24-bit product per lane.
 *
 * fpadd16(fmul8sux16(a,b), fmul8ulx16(a,b)) == per-lane (a*b) >> 8 (mod
 * 2^16) — the 3-instruction 16x16 multiply emulation the paper describes.
 */
u64 fmul8ulx16(u64 a, u64 b);

/**
 * fmuld8sux16: 16-bit lanes 0..1 only; signed upper byte times the
 * b-lane, shifted left 8, as two 32-bit results.
 *
 * fpadd32(fmuld8sux16(a,b), fmuld8ulx16(a,b)) is the *exact* 32-bit
 * product of the signed 16-bit lanes — the full-precision multiply pair
 * used by the VSDK dot-product kernel.
 */
u64 fmuld8sux16(u64 a, u64 b);

/** fmuld8ulx16: unsigned lower byte times b-lane, 32-bit results. */
u64 fmuld8ulx16(u64 a, u64 b);

/**
 * mul16: MMX-style direct multiply, per-lane (a*b) >> 8 (mod 2^16) —
 * exactly what the 3-op VIS emulation computes, in one instruction.
 */
u64 mul16(u64 a, u64 b);

/**
 * pmaddwd: MMX-style multiply-add of adjacent signed 16-bit pairs:
 * word 0 = a0*b0 + a1*b1, word 1 = a2*b2 + a3*b3.
 */
u64 pmaddwd(u64 a, u64 b);

// --- Subword rearrangement and alignment ----------------------------------

/**
 * fexpand: byte lanes 0..3 of @p a widened to 16-bit lanes, each shifted
 * left by 4 (the VIS fixed-point pixel format).
 */
u64 fexpand(u64 a);

/**
 * fpack16: each signed 16-bit lane is left-shifted by gsr.scale, the
 * integer part (bits 14..7 after the shift) is extracted and saturated
 * to [0,255]. With gsr.scale == 3 this exactly inverts fexpand.
 */
u64 fpack16(u64 a, const Gsr &gsr); // result in byte lanes 0..3

/**
 * fpackfix: each signed 32-bit lane shifted left by gsr.scale, then bits
 * 30..16 taken and saturated to signed 16-bit; results in half lanes 0..1.
 */
u64 fpackfix(u64 a, const Gsr &gsr);

/** fpmerge: interleave byte lanes 0..3 of a and b: a0 b0 a1 b1 a2 b2 a3 b3. */
u64 fpmerge(u64 a, u64 b);

/**
 * faligndata: treat a then b as 16 consecutive bytes (a's lane j is byte
 * j) and extract 8 bytes starting at byte gsr.align.
 */
u64 faligndata(u64 a, u64 b, const Gsr &gsr);

/** alignaddr: returns addr & ~7; the caller stores addr & 7 into the GSR. */
Addr alignaddr(Addr addr, Gsr &gsr);

// --- Logical --------------------------------------------------------------

u64 fand(u64 a, u64 b);
u64 forOp(u64 a, u64 b);
u64 fxor(u64 a, u64 b);
u64 fnot(u64 a);
u64 fandnot(u64 a, u64 b); ///< ~a & b

// --- Partitioned compares and edge masks -----------------------------------

/** fcmpgt16: bit i of result set iff (s16)a_lane[i] > (s16)b_lane[i]. */
u32 fcmpgt16(u64 a, u64 b);

/** fcmple16: bit i set iff (s16)a_lane[i] <= (s16)b_lane[i]. */
u32 fcmple16(u64 a, u64 b);

/** fcmpeq16. */
u32 fcmpeq16(u64 a, u64 b);

/** fcmpgt32 / fcmple32 over the two 32-bit lanes. */
u32 fcmpgt32(u64 a, u64 b);
u32 fcmple32(u64 a, u64 b);

/**
 * edge8: byte-lane validity mask for a loop writing [addr1, addr2].
 * Lanes below addr1's offset within its 8-byte block are masked off; if
 * addr2 falls in the same block, lanes above addr2's offset are too.
 */
u8 edge8(Addr addr1, Addr addr2);

/** edge16: like edge8 over four 16-bit lanes. */
u8 edge16(Addr addr1, Addr addr2);

/** edge32: like edge8 over two 32-bit lanes. */
u8 edge32(Addr addr1, Addr addr2);

// --- Special purpose --------------------------------------------------------

/** pdist: acc + sum over 8 byte lanes of |a_i - b_i| (motion-estimation SAD). */
u64 pdist(u64 a, u64 b, u64 acc);

/** Expand a 4-bit fcmp mask to a 4x16 all-ones/all-zeros lane mask. */
u64 maskToLanes16(u32 mask);

} // namespace msim::vis

#endif // MSIM_VIS_OPS_HH_
