#include "vis/ops.hh"

#include <cstdlib>

#include "common/bits.hh"
#include "common/saturate.hh"

namespace msim::vis
{

u64
fpadd16(u64 a, u64 b)
{
    u64 r = 0;
    for (unsigned i = 0; i < 4; ++i)
        r = setHalfLane(r, i, static_cast<u16>(halfLane(a, i) + halfLane(b, i)));
    return r;
}

u64
fpsub16(u64 a, u64 b)
{
    u64 r = 0;
    for (unsigned i = 0; i < 4; ++i)
        r = setHalfLane(r, i, static_cast<u16>(halfLane(a, i) - halfLane(b, i)));
    return r;
}

u64
fpadd32(u64 a, u64 b)
{
    u64 r = 0;
    for (unsigned i = 0; i < 2; ++i)
        r = setWordLane(r, i, wordLane(a, i) + wordLane(b, i));
    return r;
}

u64
fpsub32(u64 a, u64 b)
{
    u64 r = 0;
    for (unsigned i = 0; i < 2; ++i)
        r = setWordLane(r, i, wordLane(a, i) - wordLane(b, i));
    return r;
}

u64
fmul8x16(u64 a, u64 b)
{
    u64 r = 0;
    for (unsigned i = 0; i < 4; ++i) {
        const s32 pixel = byteLane(a, i);
        const s32 coeff = static_cast<s16>(halfLane(b, i));
        const s32 prod = (pixel * coeff + 128) >> 8;
        r = setHalfLane(r, i, static_cast<u16>(prod));
    }
    return r;
}

u64
fmul8x16au(u64 a, u32 b)
{
    u64 coeffs = 0;
    const u16 c = static_cast<u16>(b >> 16);
    for (unsigned i = 0; i < 4; ++i)
        coeffs = setHalfLane(coeffs, i, c);
    return fmul8x16(a, coeffs);
}

u64
fmul8x16al(u64 a, u32 b)
{
    u64 coeffs = 0;
    const u16 c = static_cast<u16>(b);
    for (unsigned i = 0; i < 4; ++i)
        coeffs = setHalfLane(coeffs, i, c);
    return fmul8x16(a, coeffs);
}

u64
fmul8sux16(u64 a, u64 b)
{
    u64 r = 0;
    for (unsigned i = 0; i < 4; ++i) {
        const s32 hi = static_cast<s8>(halfLane(a, i) >> 8);
        const s32 coeff = static_cast<s16>(halfLane(b, i));
        // hi*coeff is the contribution of the upper byte; it already sits
        // at bit 8 of the full product, so no shift is required here.
        r = setHalfLane(r, i, static_cast<u16>(hi * coeff));
    }
    return r;
}

u64
fmul8ulx16(u64 a, u64 b)
{
    u64 r = 0;
    for (unsigned i = 0; i < 4; ++i) {
        const s32 lo = static_cast<u8>(halfLane(a, i));
        const s32 coeff = static_cast<s16>(halfLane(b, i));
        r = setHalfLane(r, i, static_cast<u16>((lo * coeff) >> 8));
    }
    return r;
}

u64
fmuld8sux16(u64 a, u64 b)
{
    u64 r = 0;
    for (unsigned i = 0; i < 2; ++i) {
        const s32 hi = static_cast<s8>(halfLane(a, i) >> 8);
        const s32 coeff = static_cast<s16>(halfLane(b, i));
        r = setWordLane(r, i, static_cast<u32>((hi * coeff) << 8));
    }
    return r;
}

u64
fmuld8ulx16(u64 a, u64 b)
{
    u64 r = 0;
    for (unsigned i = 0; i < 2; ++i) {
        const s32 lo = static_cast<u8>(halfLane(a, i));
        const s32 coeff = static_cast<s16>(halfLane(b, i));
        r = setWordLane(r, i, static_cast<u32>(lo * coeff));
    }
    return r;
}

u64
mul16(u64 a, u64 b)
{
    return fpadd16(fmul8sux16(a, b), fmul8ulx16(a, b));
}

u64
pmaddwd(u64 a, u64 b)
{
    u64 r = 0;
    for (unsigned p = 0; p < 2; ++p) {
        const s32 x0 = static_cast<s16>(halfLane(a, 2 * p));
        const s32 y0 = static_cast<s16>(halfLane(b, 2 * p));
        const s32 x1 = static_cast<s16>(halfLane(a, 2 * p + 1));
        const s32 y1 = static_cast<s16>(halfLane(b, 2 * p + 1));
        r = setWordLane(r, p, static_cast<u32>(x0 * y0 + x1 * y1));
    }
    return r;
}

u64
fexpand(u64 a)
{
    u64 r = 0;
    for (unsigned i = 0; i < 4; ++i)
        r = setHalfLane(r, i, static_cast<u16>(byteLane(a, i) << 4));
    return r;
}

u64
fpack16(u64 a, const Gsr &gsr)
{
    u64 r = 0;
    for (unsigned i = 0; i < 4; ++i) {
        const s32 v = static_cast<s16>(halfLane(a, i));
        const s32 shifted = v << gsr.scale;
        r = setByteLane(r, i, satU8(shifted >> 7));
    }
    return r;
}

u64
fpackfix(u64 a, const Gsr &gsr)
{
    u64 r = 0;
    for (unsigned i = 0; i < 2; ++i) {
        const s64 v = static_cast<s32>(wordLane(a, i));
        const s64 shifted = v << gsr.scale;
        r = setHalfLane(r, i, static_cast<u16>(satS16(shifted >> 16)));
    }
    return r;
}

u64
fpmerge(u64 a, u64 b)
{
    u64 r = 0;
    for (unsigned i = 0; i < 4; ++i) {
        r = setByteLane(r, 2 * i, byteLane(a, i));
        r = setByteLane(r, 2 * i + 1, byteLane(b, i));
    }
    return r;
}

u64
faligndata(u64 a, u64 b, const Gsr &gsr)
{
    u64 r = 0;
    for (unsigned i = 0; i < 8; ++i) {
        const unsigned src = gsr.align + i;
        const u8 byte = src < 8 ? byteLane(a, src) : byteLane(b, src - 8);
        r = setByteLane(r, i, byte);
    }
    return r;
}

Addr
alignaddr(Addr addr, Gsr &gsr)
{
    gsr.align = static_cast<unsigned>(addr & 7);
    return addr & ~Addr{7};
}

u64 fand(u64 a, u64 b) { return a & b; }
u64 forOp(u64 a, u64 b) { return a | b; }
u64 fxor(u64 a, u64 b) { return a ^ b; }
u64 fnot(u64 a) { return ~a; }
u64 fandnot(u64 a, u64 b) { return ~a & b; }

namespace
{

template <typename Lane, unsigned N, typename Get>
u32
cmpMask(u64 a, u64 b, Get get, bool greater, bool or_equal)
{
    u32 mask = 0;
    for (unsigned i = 0; i < N; ++i) {
        const auto x = static_cast<Lane>(get(a, i));
        const auto y = static_cast<Lane>(get(b, i));
        bool hit;
        if (greater)
            hit = or_equal ? x >= y : x > y;
        else
            hit = or_equal ? x <= y : x < y;
        if (hit)
            mask |= 1u << i;
    }
    return mask;
}

} // namespace

u32
fcmpgt16(u64 a, u64 b)
{
    return cmpMask<s16, 4>(a, b, halfLane, true, false);
}

u32
fcmple16(u64 a, u64 b)
{
    return cmpMask<s16, 4>(a, b, halfLane, false, true);
}

u32
fcmpeq16(u64 a, u64 b)
{
    u32 mask = 0;
    for (unsigned i = 0; i < 4; ++i)
        if (halfLane(a, i) == halfLane(b, i))
            mask |= 1u << i;
    return mask;
}

u32
fcmpgt32(u64 a, u64 b)
{
    return cmpMask<s32, 2>(a, b, wordLane, true, false);
}

u32
fcmple32(u64 a, u64 b)
{
    return cmpMask<s32, 2>(a, b, wordLane, false, true);
}

namespace
{

/** Shared edge-mask logic for lane widths of 1, 2, or 4 bytes. */
u8
edgeMask(Addr addr1, Addr addr2, unsigned lane_bytes)
{
    const unsigned lanes = 8 / lane_bytes;
    const unsigned lo = static_cast<unsigned>(addr1 & 7) / lane_bytes;
    u8 mask = 0;
    for (unsigned i = lo; i < lanes; ++i)
        mask |= 1u << i;
    if ((addr1 & ~Addr{7}) == (addr2 & ~Addr{7})) {
        const unsigned hi = static_cast<unsigned>(addr2 & 7) / lane_bytes;
        u8 upper = 0;
        for (unsigned i = 0; i <= hi; ++i)
            upper |= 1u << i;
        mask &= upper;
    }
    return mask;
}

} // namespace

u8 edge8(Addr addr1, Addr addr2) { return edgeMask(addr1, addr2, 1); }
u8 edge16(Addr addr1, Addr addr2) { return edgeMask(addr1, addr2, 2); }
u8 edge32(Addr addr1, Addr addr2) { return edgeMask(addr1, addr2, 4); }

u64
pdist(u64 a, u64 b, u64 acc)
{
    u64 sum = 0;
    for (unsigned i = 0; i < 8; ++i)
        sum += static_cast<u64>(
            std::abs(int(byteLane(a, i)) - int(byteLane(b, i))));
    return acc + sum;
}

u64
maskToLanes16(u32 mask)
{
    u64 r = 0;
    for (unsigned i = 0; i < 4; ++i)
        if (mask & (1u << i))
            r = setHalfLane(r, i, 0xffff);
    return r;
}

} // namespace msim::vis
