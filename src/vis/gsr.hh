/**
 * @file
 * Graphics Status Register (GSR) model.
 *
 * VIS keeps two pieces of state in a special register: the pack scale
 * factor used by the fpack* instructions and the byte offset used by
 * faligndata. alignaddr writes the align field as a side effect.
 */

#ifndef MSIM_VIS_GSR_HH_
#define MSIM_VIS_GSR_HH_

#include "common/types.hh"

namespace msim::vis
{

/** The two GSR fields consumed by VIS instructions. */
struct Gsr
{
    unsigned scale = 0; ///< fpack scale factor, 0..15
    unsigned align = 0; ///< faligndata byte offset, 0..7
};

/** Clamp raw field values into their architectural ranges. */
Gsr makeGsr(unsigned scale, unsigned align);

} // namespace msim::vis

#endif // MSIM_VIS_GSR_HH_
