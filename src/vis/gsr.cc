#include "vis/gsr.hh"

namespace msim::vis
{

Gsr
makeGsr(unsigned scale, unsigned align)
{
    return Gsr{scale & 0xf, align & 0x7};
}

} // namespace msim::vis
