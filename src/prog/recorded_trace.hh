/**
 * @file
 * Record-once / replay-many trace capture.
 *
 * A RecordedTrace stores one benchmark variant's complete dynamic
 * instruction stream in structure-of-arrays form: one byte-wide column
 * per hot field (opcode, flags, source count) plus side streams that
 * only memory and branch instructions consume (address + access width,
 * branch site + outcome).  Source operands are stored CSR-style — a
 * flat ValId stream indexed by the running numSrcs sum — because replay
 * is strictly sequential.
 *
 * The stream emitted by the trace-builder DSL depends only on
 * (benchmark, variant, skewArrays, visFeatures); it never observes the
 * machine's timing.  A trace captured once can therefore be replayed
 * against every point of a cache/latency sweep and produce results
 * bit-identical to re-running the benchmark live (see DESIGN.md,
 * "Trace capture & replay").
 *
 * Recording also precomputes two timing-independent facts the replay
 * engine exploits:
 *  - For every load, the ordinal of the youngest older store whose
 *    access fully covers the load (the store-to-load forwarding
 *    candidate).  Whether that store is still in the 64-entry
 *    forwarding ring at load-issue time *is* timing-dependent, but
 *    reduces to an O(1) dispatched-store-count comparison at replay.
 *  - For every source operand, the instruction index of its producer
 *    (kNoProducer for pre-run values).  A retired producer's value is
 *    always ready, so the replay engine resolves dependences entirely
 *    within its fixed-size window instead of keeping a ready-time
 *    table over the whole SSA id space.
 *  - Per-opcode totals, so replay derives instruction-mix and VIS
 *    overhead statistics without re-tallying per instruction.
 *  - A memory-side lane: per memory op, the access kind and the
 *    already-resolved auxiliary ordinal (a load's forwarding candidate,
 *    a store's ring ordinal). The replay inner loop walks this dense
 *    (kind, address, aux) stream with a single cursor instead of
 *    re-classifying opcodes and splitting per-kind side streams, and
 *    core::runJobs shares one copy across every geometry point of a
 *    sweep group.
 */

#ifndef MSIM_PROG_RECORDED_TRACE_HH_
#define MSIM_PROG_RECORDED_TRACE_HH_

#include <string>
#include <vector>

#include "isa/inst.hh"

namespace msim::prog
{

/** No forwarding candidate for a load. */
constexpr u32 kNoFwdStore = ~u32{0};

/** A source value produced before recording started (always ready). */
constexpr u32 kNoProducer = ~u32{0};

/**
 * Size of the core's store-to-load forwarding ring, mirrored by the
 * recorder: a load's candidate store is evicted from the ring exactly
 * when more than this many stores have dispatched after it.
 */
constexpr unsigned kFwdWindow = 64;

/** Memory-lane access kinds (values of the memKind column). */
enum MemKind : u8
{
    kMemLoad = 0,
    kMemStore = 1,
    kMemPrefetch = 2,
};

/** See file comment. Populated by TraceRecorder; immutable afterwards. */
class RecordedTrace
{
  public:
    /** Number of dynamic instructions. */
    u64 instCount() const { return op_.size(); }

    /** Dynamic count of one opcode. */
    u64
    countOf(isa::Op op) const
    {
        return opCount_[static_cast<unsigned>(op)];
    }

    /** Largest SSA value id assigned (0 if the trace is empty). */
    ValId maxValId() const { return maxValId_; }

    /** Number of store instructions (forwarding-ring ordinal space). */
    u32 numStores() const { return numStores_; }

    /** Number of memory operations (length of the memory lane). */
    u64 numMemOps() const { return memAddr_.size(); }

    /** Approximate in-memory footprint, for cache accounting. */
    size_t byteSize() const;

    /**
     * Running side-stream offsets at an instruction boundary.  The
     * per-instruction columns are indexed directly, but the CSR source
     * stream, the memory lane, and the branch stream advance at
     * data-dependent rates; a Mark pins all of them to one boundary so
     * repeated slicing (the sampler walks a trace chunk by chunk) costs
     * O(chunk) instead of O(boundary) per slice.
     */
    struct Mark
    {
        u64 inst = 0;     ///< instruction index
        u64 srcs = 0;     ///< CSR source-stream offset
        u64 memOps = 0;   ///< memory-lane offset
        u64 branches = 0; ///< branch-stream offset
        u32 stores = 0;   ///< store ordinals consumed so far
    };

    /** Walk @p from forward to instruction @p toInst (clamped). */
    Mark advance(Mark from, u64 toInst) const;

    /**
     * Instructions [begin.inst, end) as a self-contained trace.
     *
     * Backward references that cross the lower boundary are rebased or
     * clamped so the result is indistinguishable from a trace whose
     * recording started at the boundary with no prior state: source
     * producer indices shift down by begin.inst (producers before the
     * slice become kNoProducer — a pre-run value, always ready), store
     * ordinals shift down by begin.stores, and a load whose forwarding
     * candidate predates the slice gets kNoFwdStore (the candidate's
     * data is not observable in the slice; without the clamp its old
     * ordinal would alias a different in-slice store).  @p end clamps
     * to instCount(); an empty range yields an empty trace.
     */
    RecordedTrace slice(const Mark &begin, u64 end) const;

    /** Convenience overload: computes the Mark by scanning from 0. */
    RecordedTrace slice(u64 begin, u64 end) const;

    /**
     * The first @p n dynamic instructions as a self-contained trace —
     * slice(0, n), with both n = 0 (empty trace) and n >= instCount()
     * (full copy) well-defined.  In a prefix every cross-column
     * reference already points backwards into the kept range, so no
     * clamping fires.  Used by the audit fuzzer to shrink a diverging
     * replay to a minimal trace prefix, and by the sampled-replay
     * chunking.
     */
    RecordedTrace prefix(u64 n) const;

    /**
     * Reconstruct the stream and feed it to @p sink in program order,
     * finishing with sink.finish().  Every isa::Inst field is rebuilt
     * exactly as the trace builder emitted it.
     */
    void replayInto(isa::InstSink &sink) const;

    /**
     * Sequential read cursor over the structure-of-arrays columns.
     * next() rebuilds one isa::Inst and exposes the side-stream
     * ordinals the replay engine needs (load forwarding candidate,
     * store ordinal).
     */
    class Cursor
    {
      public:
        explicit Cursor(const RecordedTrace &t) : t_(t) {}

        bool atEnd() const { return pos_ == t_.op_.size(); }

        /** Opcode of the next instruction without consuming it. */
        isa::Op peekOp() const
        {
            return static_cast<isa::Op>(t_.op_[pos_]);
        }

        /**
         * Consume the next instruction.
         * @param inst      Rebuilt instruction (all fields).
         * @param fwd_store Forwarding-candidate store ordinal for loads
         *                  (kNoFwdStore otherwise).
         * @param store_ord This store's ring ordinal (stores only).
         */
        void next(isa::Inst &inst, u32 &fwd_store, u32 &store_ord);

      private:
        const RecordedTrace &t_;
        size_t pos_ = 0;
        size_t srcPos_ = 0;
        size_t memPos_ = 0;
        size_t branchPos_ = 0;
    };

    // Raw column access for the optimized replay engine (reads the
    // structure-of-arrays streams directly, without materializing an
    // isa::Inst per dynamic instruction).
    const std::vector<u8> &opCol() const { return op_; }
    const std::vector<u8> &flagsCol() const { return flags_; }
    const std::vector<u8> &numSrcsCol() const { return numSrcs_; }
    const std::vector<ValId> &dstCol() const { return dst_; }
    const std::vector<ValId> &srcsCol() const { return srcs_; }
    const std::vector<u32> &srcProdCol() const { return srcProd_; }
    const std::vector<Addr> &memAddrCol() const { return memAddr_; }
    const std::vector<u32> &branchPcCol() const { return branchPc_; }
    const std::vector<u8> &memKindCol() const { return memKind_; }
    const std::vector<u32> &memAuxCol() const { return memAux_; }
    const std::vector<u16> &siteCol() const { return site_; }

    /**
     * Kernel-region names indexed by site id (index 0 is the implicit
     * "(top)" region).  Site ids are registry ids, not positions: a
     * slice copies its per-instruction site values verbatim and keeps
     * the whole table, so ids stay comparable across slices of one
     * recording — no rebasing, unlike producer indices.
     */
    const std::vector<std::string> &siteNames() const { return siteNames_; }

  private:
    friend class TraceRecorder;

    // Per-instruction columns.
    std::vector<u8> op_;
    std::vector<u8> flags_;
    std::vector<u8> numSrcs_;
    std::vector<ValId> dst_;
    std::vector<ValId> srcs_; ///< CSR stream, numSrcs_ entries per inst
    std::vector<u32> srcProd_; ///< per source: producer instruction index
    std::vector<u16> site_;   ///< per inst: kernel-region id (0 = top)

    // Side streams, consumed sequentially by the matching op classes.
    // memAddr/memKind/memAux form the dense memory lane (one entry per
    // Load/Store/Prefetch in program order).
    std::vector<Addr> memAddr_;   ///< per memory op
    std::vector<u8> memSize_;     ///< per memory op
    std::vector<u8> memKind_;     ///< per memory op: MemKind
    std::vector<u32> memAux_;     ///< load: fwd candidate; store: ordinal
    std::vector<u32> branchPc_;   ///< per branch

    u64 opCount_[isa::kNumOps] = {};
    ValId maxValId_ = 0;
    u32 numStores_ = 0;

    std::vector<std::string> siteNames_ = {"(top)"};
};

/**
 * InstSink that captures a stream into a RecordedTrace.  Point the
 * trace builder at one of these instead of a timing core; after
 * finish() the trace is complete.
 */
class TraceRecorder : public isa::InstSink
{
  public:
    void feed(const isa::Inst &inst) override;
    void defineSite(u16 id, const std::string &name) override;
    void finish() override {}

    /** The captured trace; valid once the generator has run. */
    RecordedTrace take() { return std::move(trace_); }

  private:
    /** Mirror of the core's 64-entry store-forwarding ring. */
    struct RingStore
    {
        u32 ordinal = kNoFwdStore;
        Addr addr = 0;
        unsigned size = 0;
    };

    static constexpr unsigned kRingSize = 64;

    u32 forwardingCandidate(Addr lo, Addr hi) const;

    RecordedTrace trace_;
    RingStore ring_[kRingSize];
    unsigned ringNext_ = 0;
    std::vector<u32> producer_; ///< ValId -> producing instruction index

    // Coverage filter over the ring, so streaming loads (the common
    // case: no covering store) skip the scan.  Each store sets the bits
    // of the 8-byte blocks it touches; a covering store necessarily
    // touches the load's first block.  Bits cannot be cleared per
    // eviction, so two epoch filters rotate every kRingSize stores —
    // their union always covers at least the last 2*kRingSize stores, a
    // superset of the ring, hence no false negatives.
    u64 fwdFilterCur_ = 0;
    u64 fwdFilterPrev_ = 0;
    unsigned fwdEpochStores_ = 0;
};

} // namespace msim::prog

#endif // MSIM_PROG_RECORDED_TRACE_HH_
