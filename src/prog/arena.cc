#include "prog/arena.hh"

#include <algorithm>

#include "common/bits.hh"
#include "common/logging.hh"

namespace msim::prog
{

Arena::Arena(bool skew_arrays, Addr base)
    : skew(skew_arrays), base_(base ? base : kDefaultBase),
      next(base ? base : kDefaultBase)
{}

Addr
Arena::alloc(size_t bytes_wanted, const std::string &name, size_t align)
{
    (void)name; // names are for debugging; keep the signature documented
    if (!isPow2(align))
        fatal("arena: alignment %zu is not a power of two", align);
    if (!skew && bytes_wanted >= 4096) {
        // Unmodified-VSDK layout: large arrays land on nice round
        // boundaries (one L1 way), so same-index streams conflict.
        align = std::max<size_t>(align, 32 * 1024);
    }
    next = roundUp(next, align);
    if (skew) {
        // Distinct sub-page offsets per array so that same-index streams
        // through equal-sized arrays land in different cache sets.
        next += (static_cast<Addr>(allocCount) * 5 % 16) * 64 + 64;
        next = roundUp(next, align);
    }
    const Addr base = next;
    next += bytes_wanted;
    ++allocCount;
    return base;
}

void
Arena::ensure(Addr a, size_t n) const
{
    if (a < base_)
        panic("arena: access to unallocated low address 0x%llx",
              static_cast<unsigned long long>(a));
    const size_t need = static_cast<size_t>(a - base_) + n;
    if (need > bytes.size())
        bytes.resize(roundUp(need, 4096), 0);
}

u64
Arena::read(Addr a, unsigned size) const
{
    ensure(a, size);
    u64 v = 0;
    for (unsigned i = 0; i < size; ++i)
        v |= u64{bytes[a - base_ + i]} << (8 * i);
    return v;
}

void
Arena::write(Addr a, unsigned size, u64 v)
{
    ensure(a, size);
    for (unsigned i = 0; i < size; ++i)
        bytes[a - base_ + i] = static_cast<u8>(v >> (8 * i));
}

void
Arena::writeMasked(Addr a, u64 v, u8 mask)
{
    ensure(a, 8);
    for (unsigned i = 0; i < 8; ++i)
        if (mask & (1u << i))
            bytes[a - base_ + i] = static_cast<u8>(v >> (8 * i));
}

void
Arena::writeBytes(Addr a, const u8 *src, size_t n)
{
    ensure(a, n);
    for (size_t i = 0; i < n; ++i)
        bytes[a - base_ + i] = src[i];
}

void
Arena::readBytes(Addr a, u8 *dst, size_t n) const
{
    ensure(a, n);
    for (size_t i = 0; i < n; ++i)
        dst[i] = bytes[a - base_ + i];
}

} // namespace msim::prog
