#include "prog/variant.hh"

namespace msim::prog
{

const char *
variantName(Variant v)
{
    switch (v) {
      case Variant::Scalar: return "base";
      case Variant::Vis: return "VIS";
      case Variant::VisPrefetch: return "VIS+PF";
      default: return "?";
    }
}

} // namespace msim::prog
