/**
 * @file
 * The trace-builder DSL: benchmarks execute through this interface,
 * computing real results while streaming the dynamic instruction trace
 * into an isa::InstSink (a timing core or a counting sink).
 *
 * Values are SSA handles: each operation allocates a fresh ValId and
 * carries its concrete 64-bit result in the handle, so host code can
 * branch on real data (and must then emit the corresponding Branch
 * instruction so the predictor sees it). Immediates are free — compiled
 * loops keep constants in registers.
 */

#ifndef MSIM_PROG_TRACE_BUILDER_HH_
#define MSIM_PROG_TRACE_BUILDER_HH_

#include <map>
#include <string>
#include <vector>

#include "isa/inst.hh"
#include "prog/arena.hh"
#include "prog/variant.hh"
#include "vis/gsr.hh"

namespace msim::prog
{

/** An SSA value: id for dependence tracking, data for functional use. */
struct Val
{
    ValId id = kNoVal;
    u64 data = 0;

    /** The value as signed. */
    s64 s() const { return static_cast<s64>(data); }
};

/** See file comment. One TraceBuilder per benchmark run. */
class TraceBuilder
{
  public:
    /**
     * @param sink         Receives the dynamic instruction stream.
     * @param skew_arrays  Forwarded to the Arena (paper footnote 3).
     * @param explicit_addressing
     *                     Emit one integer address-computation op per
     *                     memory access, as compiled code of the era
     *                     does. On by default; the cpu tests disable it
     *                     to get exact instruction placement.
     */
    explicit TraceBuilder(isa::InstSink &sink, bool skew_arrays = true,
                          bool explicit_addressing = true,
                          VisFeatures features = VisFeatures{},
                          Addr arena_base = 0);

    const VisFeatures &features() const { return features_; }

    Arena &arena() { return arena_; }
    const Arena &arena() const { return arena_; }

    /** Allocate a named array in the arena. */
    Addr
    alloc(size_t bytes, const std::string &name = "", size_t align = 64)
    {
        return arena_.alloc(bytes, name, align);
    }

    /** Allocate a static branch-site id. */
    u32 makePc(const char *tag);

    /**
     * Memoized branch-site id: one id per distinct @p tag for the
     * lifetime of this builder. Use for sites inside helpers called
     * many times per run (a fresh makePc per call would give every
     * dynamic branch its own predictor entry). Never cache the result
     * in function-local statics — those outlive the builder and leak a
     * stale id into the next run's independently-numbered pc space,
     * making the emitted stream depend on run order.
     */
    u32 sitePc(const char *tag);

    // --- Kernel regions (attribution sites) --------------------------------

    /**
     * Enter a named kernel region: every instruction emitted until the
     * matching popSite() carries this site id in Inst::site.  Ids are
     * memoized per tag like sitePc(), but live in their own registry —
     * they never consume branch-pc numbers, so annotating a kernel
     * cannot shift predictor indexing (sites are pure metadata; the
     * emitted timing stream is unchanged).  Regions nest; id 0 is the
     * implicit "(top)" region.  Emits no instructions.
     */
    u16 pushSite(const char *tag);

    /** Leave the current kernel region (no-op at top level). */
    void popSite();

    /** Current region id (0 when outside any pushSite). */
    u16 currentSite() const { return curSite_; }

    /** Register-resident constant; emits no instruction. */
    Val imm(u64 v) { return Val{kNoVal, v}; }

    // --- Scalar integer ---------------------------------------------------

    Val add(Val a, Val b);
    Val sub(Val a, Val b);
    Val mul(Val a, Val b);       ///< integer multiply (7 cycles)
    Val div(Val a, Val b);       ///< integer divide (12 cycles)
    Val andOp(Val a, Val b);
    Val orOp(Val a, Val b);
    Val xorOp(Val a, Val b);
    Val notOp(Val a);
    Val shl(Val a, unsigned k);
    Val shr(Val a, unsigned k);  ///< logical right shift
    Val sra(Val a, unsigned k);  ///< arithmetic right shift

    Val addi(Val a, s64 k) { return add(a, imm(static_cast<u64>(k))); }

    /** Signed compares producing 0/1. */
    Val cmpLt(Val a, Val b);
    Val cmpLe(Val a, Val b);
    Val cmpEq(Val a, Val b);

    /** Select via computed value; models a compare+cmov (2 IntAlu ops). */
    Val select(Val cond, Val if_true, Val if_false);

    // --- Scalar floating point ---------------------------------------------

    /** Floating values are doubles bit-cast into the 64-bit payload. */
    Val fimm(double v);
    Val fadd(Val a, Val b);
    Val fsub(Val a, Val b);
    Val fmul(Val a, Val b);
    Val fdiv(Val a, Val b);
    Val fcvtFromInt(Val a); ///< int -> double (FpMov class)
    Val fcvtToInt(Val a);   ///< double -> int, truncating

    static double asF(Val v);

    // --- Control -----------------------------------------------------------

    /**
     * Emit a conditional branch at static site @p pc with outcome
     * @p taken, data-dependent on @p dep (e.g. the compare result).
     */
    void branch(u32 pc, bool taken, Val dep = {});

    // --- Memory -------------------------------------------------------------

    /**
     * Load @p size bytes at @p a.
     * @param addr_dep  Value the address computation depends on (e.g. the
     *                  induction variable), if any.
     * @param sign      Sign-extend the loaded value.
     */
    Val load(Addr a, unsigned size, Val addr_dep = {}, bool sign = false);

    /** Store the low @p size bytes of @p v at @p a. */
    void store(Addr a, unsigned size, Val v, Val addr_dep = {});

    /** Non-binding software prefetch of the line containing @p a. */
    void prefetch(Addr a, Val addr_dep = {});

    // --- VIS ----------------------------------------------------------------

    /** Set the GSR pack-scale field (emits a VisGsr instruction). */
    void setGsrScale(unsigned scale);

    const vis::Gsr &gsr() const { return gsr_; }

    /**
     * alignaddr: emits a VisAlign op, sets GSR.align from @p a, and
     * returns the aligned address.
     */
    Addr visAlignAddr(Addr a, Val addr_dep = {});

    /** 8-byte VIS load; byte at a+i lands in byte lane i. */
    Val vload(Addr a, Val addr_dep = {});

    /** 8-byte VIS store. */
    void vstore(Addr a, Val v, Val addr_dep = {});

    /**
     * Partial store: write only the byte lanes selected by the mask
     * value @p mask (low 8 bits), as produced by vedge8/vfcmp*.
     */
    void vstorePartial(Addr a, Val v, Val mask, Val addr_dep = {});

    Val vfpadd16(Val a, Val b);
    Val vfpsub16(Val a, Val b);
    Val vfpadd32(Val a, Val b);
    Val vfpsub32(Val a, Val b);

    Val vfmul8x16(Val a, Val b);
    Val vfmul8x16au(Val a, Val b);
    Val vfmul8x16al(Val a, Val b);
    Val vfmul8sux16(Val a, Val b);
    Val vfmul8ulx16(Val a, Val b);
    Val vfmuld8sux16(Val a, Val b);
    Val vfmuld8ulx16(Val a, Val b);

    /**
     * Per-lane (a*b)>>8: one instruction when the ISA has a direct
     * 16x16 multiply (MMX-like), the 3-op VIS emulation otherwise.
     */
    Val vmul16(Val a, Val b);

    /** MMX pmaddwd; only valid when features().hasPmaddwd. */
    Val vpmaddwd(Val a, Val b);

    Val vfexpand(Val a);
    Val vfpack16(Val a);
    Val vfpackfix(Val a);
    Val vfpmerge(Val a, Val b);
    Val vfaligndata(Val a, Val b);

    Val vand(Val a, Val b);
    Val vor(Val a, Val b);
    Val vxor(Val a, Val b);
    Val vnot(Val a);
    Val vandnot(Val a, Val b);

    Val vfcmpgt16(Val a, Val b);
    Val vfcmple16(Val a, Val b);
    Val vfcmpeq16(Val a, Val b);

    /** Edge mask for the block at @p a1 given final address @p a2. */
    Val vedge8(Addr a1, Addr a2);
    Val vedge16(Addr a1, Addr a2);

    /** Expand a 4-bit compare mask into 4x16 lane masks (VisPack class). */
    Val vmaskLanes16(Val mask);

    /** pdist: SAD of 8 byte pairs accumulated into @p acc. */
    Val vpdist(Val a, Val b, Val acc);

    // --- Introspection -------------------------------------------------------

    u64 instCount() const { return count_; }
    u64 countOf(isa::Op op) const
    {
        return opCount[static_cast<unsigned>(op)];
    }

    /** End of program: forwards finish() to the sink. */
    void finish();

  private:
    Val emit2(isa::Op op, u64 result, Val a, Val b = {}, Val c = {});
    void emitMem(isa::Op op, Addr a, unsigned size, Val data, Val addr_dep,
                 u8 flags = 0);

    /** Emit the explicit address-computation op, when enabled. */
    Val addrCalc(Addr a, Val addr_dep);

    isa::InstSink &sink;
    Arena arena_;
    bool explicitAddressing;
    VisFeatures features_;
    vis::Gsr gsr_;
    ValId nextId = 1;
    u32 nextPc = 1;
    std::map<std::string, u32> sitePcs_;
    std::map<std::string, u16> siteIds_;
    std::vector<u16> siteStack_;
    u16 curSite_ = 0;
    u16 nextSite_ = 1; ///< 0 is the implicit "(top)" region
    u64 count_ = 0;
    u64 opCount[isa::kNumOps] = {};
};

/** RAII pushSite/popSite pair for annotating a kernel's hot loop. */
class ScopedSite
{
  public:
    ScopedSite(TraceBuilder &tb, const char *tag) : tb_(tb)
    {
        tb_.pushSite(tag);
    }

    ~ScopedSite() { tb_.popSite(); }

    ScopedSite(const ScopedSite &) = delete;
    ScopedSite &operator=(const ScopedSite &) = delete;

  private:
    TraceBuilder &tb_;
};

} // namespace msim::prog

#endif // MSIM_PROG_TRACE_BUILDER_HH_
