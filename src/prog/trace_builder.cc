#include "prog/trace_builder.hh"

#include <bit>

#include "common/bits.hh"
#include "common/logging.hh"
#include "vis/ops.hh"

namespace msim::prog
{

using isa::Inst;
using isa::Op;

TraceBuilder::TraceBuilder(isa::InstSink &sink, bool skew_arrays,
                           bool explicit_addressing, VisFeatures features,
                           Addr arena_base)
    : sink(sink), arena_(skew_arrays, arena_base),
      explicitAddressing(explicit_addressing), features_(features)
{}

Val
TraceBuilder::addrCalc(Addr a, Val addr_dep)
{
    if (!explicitAddressing)
        return addr_dep;
    return emit2(Op::IntAlu, a, addr_dep);
}

u32
TraceBuilder::makePc(const char *tag)
{
    (void)tag;
    return nextPc++;
}

u32
TraceBuilder::sitePc(const char *tag)
{
    auto [it, inserted] = sitePcs_.try_emplace(tag, 0);
    if (inserted)
        it->second = makePc(tag);
    return it->second;
}

u16
TraceBuilder::pushSite(const char *tag)
{
    auto [it, inserted] = siteIds_.try_emplace(tag, 0);
    if (inserted) {
        // Sites number from their own counter, never from nextPc: a
        // shared counter would shift branch-pc assignment (predictor
        // indexing) whenever a kernel gains or loses an annotation.
        it->second = nextSite_++;
        sink.defineSite(it->second, it->first);
    }
    siteStack_.push_back(curSite_);
    curSite_ = it->second;
    return it->second;
}

void
TraceBuilder::popSite()
{
    if (siteStack_.empty()) {
        curSite_ = 0;
        return;
    }
    curSite_ = siteStack_.back();
    siteStack_.pop_back();
}

Val
TraceBuilder::emit2(Op op, u64 result, Val a, Val b, Val c)
{
    Inst inst;
    inst.op = op;
    inst.site = curSite_;
    inst.dst = nextId++;
    unsigned n = 0;
    for (const Val *v : {&a, &b, &c}) {
        if (v->id != kNoVal)
            inst.src[n++] = v->id;
    }
    inst.numSrcs = static_cast<u8>(n);
    ++count_;
    ++opCount[static_cast<unsigned>(op)];
    sink.feed(inst);
    return Val{inst.dst, result};
}

void
TraceBuilder::emitMem(Op op, Addr a, unsigned size, Val data, Val addr_dep,
                      u8 flags)
{
    Inst inst;
    inst.op = op;
    inst.site = curSite_;
    inst.memSize = static_cast<u8>(size);
    inst.flags = flags;
    inst.addr = a;
    unsigned n = 0;
    if (data.id != kNoVal)
        inst.src[n++] = data.id;
    if (addr_dep.id != kNoVal)
        inst.src[n++] = addr_dep.id;
    inst.numSrcs = static_cast<u8>(n);
    ++count_;
    ++opCount[static_cast<unsigned>(op)];
    sink.feed(inst);
}

// --- Scalar integer ---------------------------------------------------------

Val
TraceBuilder::add(Val a, Val b)
{
    return emit2(Op::IntAlu, a.data + b.data, a, b);
}

Val
TraceBuilder::sub(Val a, Val b)
{
    return emit2(Op::IntAlu, a.data - b.data, a, b);
}

Val
TraceBuilder::mul(Val a, Val b)
{
    return emit2(Op::IntMul, a.data * b.data, a, b);
}

Val
TraceBuilder::div(Val a, Val b)
{
    if (b.data == 0)
        panic("trace builder: integer divide by zero");
    return emit2(Op::IntDiv, static_cast<u64>(a.s() / b.s()), a, b);
}

Val
TraceBuilder::andOp(Val a, Val b)
{
    return emit2(Op::IntAlu, a.data & b.data, a, b);
}

Val
TraceBuilder::orOp(Val a, Val b)
{
    return emit2(Op::IntAlu, a.data | b.data, a, b);
}

Val
TraceBuilder::xorOp(Val a, Val b)
{
    return emit2(Op::IntAlu, a.data ^ b.data, a, b);
}

Val
TraceBuilder::notOp(Val a)
{
    return emit2(Op::IntAlu, ~a.data, a);
}

Val
TraceBuilder::shl(Val a, unsigned k)
{
    return emit2(Op::IntAlu, a.data << k, a);
}

Val
TraceBuilder::shr(Val a, unsigned k)
{
    return emit2(Op::IntAlu, a.data >> k, a);
}

Val
TraceBuilder::sra(Val a, unsigned k)
{
    return emit2(Op::IntAlu, static_cast<u64>(a.s() >> k), a);
}

Val
TraceBuilder::cmpLt(Val a, Val b)
{
    return emit2(Op::IntAlu, a.s() < b.s() ? 1 : 0, a, b);
}

Val
TraceBuilder::cmpLe(Val a, Val b)
{
    return emit2(Op::IntAlu, a.s() <= b.s() ? 1 : 0, a, b);
}

Val
TraceBuilder::cmpEq(Val a, Val b)
{
    return emit2(Op::IntAlu, a.data == b.data ? 1 : 0, a, b);
}

Val
TraceBuilder::select(Val cond, Val if_true, Val if_false)
{
    // compare + conditional move: two dependent IntAlu ops
    Val t = emit2(Op::IntAlu, cond.data, cond);
    return emit2(Op::IntAlu, cond.data ? if_true.data : if_false.data, t,
                 if_true, if_false);
}

// --- Scalar floating point ----------------------------------------------------

Val
TraceBuilder::fimm(double v)
{
    return Val{kNoVal, std::bit_cast<u64>(v)};
}

double
TraceBuilder::asF(Val v)
{
    return std::bit_cast<double>(v.data);
}

Val
TraceBuilder::fadd(Val a, Val b)
{
    return emit2(Op::FpAlu, std::bit_cast<u64>(asF(a) + asF(b)), a, b);
}

Val
TraceBuilder::fsub(Val a, Val b)
{
    return emit2(Op::FpAlu, std::bit_cast<u64>(asF(a) - asF(b)), a, b);
}

Val
TraceBuilder::fmul(Val a, Val b)
{
    return emit2(Op::FpMul, std::bit_cast<u64>(asF(a) * asF(b)), a, b);
}

Val
TraceBuilder::fdiv(Val a, Val b)
{
    return emit2(Op::FpDiv, std::bit_cast<u64>(asF(a) / asF(b)), a, b);
}

Val
TraceBuilder::fcvtFromInt(Val a)
{
    return emit2(Op::FpMov, std::bit_cast<u64>(static_cast<double>(a.s())),
                 a);
}

Val
TraceBuilder::fcvtToInt(Val a)
{
    return emit2(Op::FpMov, static_cast<u64>(static_cast<s64>(asF(a))), a);
}

// --- Control -------------------------------------------------------------------

void
TraceBuilder::branch(u32 pc, bool taken, Val dep)
{
    Inst inst;
    inst.op = Op::Branch;
    inst.site = curSite_;
    inst.pc = pc;
    inst.flags = taken ? isa::kFlagTaken : 0;
    if (dep.id != kNoVal) {
        inst.src[0] = dep.id;
        inst.numSrcs = 1;
    }
    ++count_;
    ++opCount[static_cast<unsigned>(Op::Branch)];
    sink.feed(inst);
}

// --- Memory ----------------------------------------------------------------------

Val
TraceBuilder::load(Addr a, unsigned size, Val addr_dep, bool sign)
{
    addr_dep = addrCalc(a, addr_dep);
    u64 v = arena_.read(a, size);
    if (sign)
        v = static_cast<u64>(signExtend(v, 8 * size));
    Inst inst;
    inst.op = Op::Load;
    inst.site = curSite_;
    inst.memSize = static_cast<u8>(size);
    inst.addr = a;
    inst.dst = nextId++;
    if (addr_dep.id != kNoVal) {
        inst.src[0] = addr_dep.id;
        inst.numSrcs = 1;
    }
    ++count_;
    ++opCount[static_cast<unsigned>(Op::Load)];
    sink.feed(inst);
    return Val{inst.dst, v};
}

void
TraceBuilder::store(Addr a, unsigned size, Val v, Val addr_dep)
{
    addr_dep = addrCalc(a, addr_dep);
    arena_.write(a, size, v.data);
    emitMem(Op::Store, a, size, v, addr_dep);
}

void
TraceBuilder::prefetch(Addr a, Val addr_dep)
{
    addr_dep = addrCalc(a, addr_dep);
    emitMem(Op::Prefetch, a, 64, Val{}, addr_dep);
}

// --- VIS ------------------------------------------------------------------------

void
TraceBuilder::setGsrScale(unsigned scale)
{
    gsr_.scale = scale & 0xf;
    emit2(Op::VisGsr, gsr_.scale, Val{});
}

Addr
TraceBuilder::visAlignAddr(Addr a, Val addr_dep)
{
    const Addr aligned = vis::alignaddr(a, gsr_);
    emit2(Op::VisAlign, aligned, addr_dep);
    return aligned;
}

Val
TraceBuilder::vload(Addr a, Val addr_dep)
{
    addr_dep = addrCalc(a, addr_dep);
    const u64 v = arena_.read(a, 8);
    Inst inst;
    inst.op = Op::Load;
    inst.site = curSite_;
    inst.memSize = 8;
    inst.addr = a;
    inst.dst = nextId++;
    if (addr_dep.id != kNoVal) {
        inst.src[0] = addr_dep.id;
        inst.numSrcs = 1;
    }
    ++count_;
    ++opCount[static_cast<unsigned>(Op::Load)];
    sink.feed(inst);
    return Val{inst.dst, v};
}

void
TraceBuilder::vstore(Addr a, Val v, Val addr_dep)
{
    addr_dep = addrCalc(a, addr_dep);
    arena_.write(a, 8, v.data);
    emitMem(Op::Store, a, 8, v, addr_dep);
}

void
TraceBuilder::vstorePartial(Addr a, Val v, Val mask, Val addr_dep)
{
    addr_dep = addrCalc(a, addr_dep);
    arena_.writeMasked(a, v.data, static_cast<u8>(mask.data));
    Inst inst;
    inst.op = Op::Store;
    inst.site = curSite_;
    inst.memSize = 8;
    inst.flags = isa::kFlagPartialStore;
    inst.addr = a;
    unsigned n = 0;
    inst.src[n++] = v.id;
    if (mask.id != kNoVal)
        inst.src[n++] = mask.id;
    if (addr_dep.id != kNoVal)
        inst.src[n++] = addr_dep.id;
    inst.numSrcs = static_cast<u8>(n);
    ++count_;
    ++opCount[static_cast<unsigned>(Op::Store)];
    sink.feed(inst);
}

Val
TraceBuilder::vfpadd16(Val a, Val b)
{
    return emit2(Op::VisAdd, vis::fpadd16(a.data, b.data), a, b);
}

Val
TraceBuilder::vfpsub16(Val a, Val b)
{
    return emit2(Op::VisAdd, vis::fpsub16(a.data, b.data), a, b);
}

Val
TraceBuilder::vfpadd32(Val a, Val b)
{
    return emit2(Op::VisAdd, vis::fpadd32(a.data, b.data), a, b);
}

Val
TraceBuilder::vfpsub32(Val a, Val b)
{
    return emit2(Op::VisAdd, vis::fpsub32(a.data, b.data), a, b);
}

Val
TraceBuilder::vfmul8x16(Val a, Val b)
{
    return emit2(Op::VisMul, vis::fmul8x16(a.data, b.data), a, b);
}

Val
TraceBuilder::vfmul8x16au(Val a, Val b)
{
    return emit2(Op::VisMul,
                 vis::fmul8x16au(a.data, static_cast<u32>(b.data)), a, b);
}

Val
TraceBuilder::vfmul8x16al(Val a, Val b)
{
    return emit2(Op::VisMul,
                 vis::fmul8x16al(a.data, static_cast<u32>(b.data)), a, b);
}

Val
TraceBuilder::vfmul8sux16(Val a, Val b)
{
    return emit2(Op::VisMul, vis::fmul8sux16(a.data, b.data), a, b);
}

Val
TraceBuilder::vfmul8ulx16(Val a, Val b)
{
    return emit2(Op::VisMul, vis::fmul8ulx16(a.data, b.data), a, b);
}

Val
TraceBuilder::vfmuld8sux16(Val a, Val b)
{
    return emit2(Op::VisMul, vis::fmuld8sux16(a.data, b.data), a, b);
}

Val
TraceBuilder::vfmuld8ulx16(Val a, Val b)
{
    return emit2(Op::VisMul, vis::fmuld8ulx16(a.data, b.data), a, b);
}

Val
TraceBuilder::vmul16(Val a, Val b)
{
    if (features_.direct16x16Mul)
        return emit2(Op::VisMul, vis::mul16(a.data, b.data), a, b);
    Val su = vfmul8sux16(a, b);
    Val ul = vfmul8ulx16(a, b);
    return vfpadd16(su, ul);
}

Val
TraceBuilder::vpmaddwd(Val a, Val b)
{
    if (!features_.hasPmaddwd)
        panic("vpmaddwd: ISA has no packed multiply-add");
    return emit2(Op::VisMul, vis::pmaddwd(a.data, b.data), a, b);
}

Val
TraceBuilder::vfexpand(Val a)
{
    return emit2(Op::VisPack, vis::fexpand(a.data), a);
}

Val
TraceBuilder::vfpack16(Val a)
{
    return emit2(Op::VisPack, vis::fpack16(a.data, gsr_), a);
}

Val
TraceBuilder::vfpackfix(Val a)
{
    return emit2(Op::VisPack, vis::fpackfix(a.data, gsr_), a);
}

Val
TraceBuilder::vfpmerge(Val a, Val b)
{
    return emit2(Op::VisPack, vis::fpmerge(a.data, b.data), a, b);
}

Val
TraceBuilder::vfaligndata(Val a, Val b)
{
    return emit2(Op::VisAlign, vis::faligndata(a.data, b.data, gsr_), a, b);
}

Val
TraceBuilder::vand(Val a, Val b)
{
    return emit2(Op::VisAdd, vis::fand(a.data, b.data), a, b);
}

Val
TraceBuilder::vor(Val a, Val b)
{
    return emit2(Op::VisAdd, vis::forOp(a.data, b.data), a, b);
}

Val
TraceBuilder::vxor(Val a, Val b)
{
    return emit2(Op::VisAdd, vis::fxor(a.data, b.data), a, b);
}

Val
TraceBuilder::vnot(Val a)
{
    return emit2(Op::VisAdd, vis::fnot(a.data), a);
}

Val
TraceBuilder::vandnot(Val a, Val b)
{
    return emit2(Op::VisAdd, vis::fandnot(a.data, b.data), a, b);
}

Val
TraceBuilder::vfcmpgt16(Val a, Val b)
{
    return emit2(Op::VisAdd, vis::fcmpgt16(a.data, b.data), a, b);
}

Val
TraceBuilder::vfcmple16(Val a, Val b)
{
    return emit2(Op::VisAdd, vis::fcmple16(a.data, b.data), a, b);
}

Val
TraceBuilder::vfcmpeq16(Val a, Val b)
{
    return emit2(Op::VisAdd, vis::fcmpeq16(a.data, b.data), a, b);
}

Val
TraceBuilder::vedge8(Addr a1, Addr a2)
{
    return emit2(Op::VisAdd, vis::edge8(a1, a2), Val{});
}

Val
TraceBuilder::vedge16(Addr a1, Addr a2)
{
    return emit2(Op::VisAdd, vis::edge16(a1, a2), Val{});
}

Val
TraceBuilder::vmaskLanes16(Val mask)
{
    return emit2(Op::VisPack,
                 vis::maskToLanes16(static_cast<u32>(mask.data)), mask);
}

Val
TraceBuilder::vpdist(Val a, Val b, Val acc)
{
    return emit2(Op::VisPdist, vis::pdist(a.data, b.data, acc.data), a, b,
                 acc);
}

void
TraceBuilder::finish()
{
    sink.finish();
}

} // namespace msim::prog
