#include "prog/recorded_trace.hh"

#include <algorithm>

namespace msim::prog
{

using isa::Inst;
using isa::Op;

size_t
RecordedTrace::byteSize() const
{
    // Every stream, accounted per column, so trace-cache budgets see
    // the true footprint: four per-instruction byte/word columns plus
    // the site column, the CSR source stream with its producer lane,
    // the full memory lane (address, size, kind, aux), the branch
    // stream, and the site name table.
    size_t names = siteNames_.size() * sizeof(std::string);
    for (const std::string &n : siteNames_)
        names += n.size();
    return op_.size() * sizeof(u8) + flags_.size() * sizeof(u8) +
           numSrcs_.size() * sizeof(u8) + dst_.size() * sizeof(ValId) +
           site_.size() * sizeof(u16) +
           srcs_.size() * sizeof(ValId) + srcProd_.size() * sizeof(u32) +
           memAddr_.size() * sizeof(Addr) + memSize_.size() * sizeof(u8) +
           memKind_.size() * sizeof(u8) + memAux_.size() * sizeof(u32) +
           branchPc_.size() * sizeof(u32) + names;
}

RecordedTrace::Mark
RecordedTrace::advance(Mark from, u64 toInst) const
{
    toInst = std::min(toInst, instCount());
    for (u64 i = from.inst; i < toInst; ++i) {
        from.srcs += numSrcs_[i];
        const auto op = static_cast<Op>(op_[i]);
        if (op == Op::Load || op == Op::Store || op == Op::Prefetch) {
            if (memKind_[from.memOps] == kMemStore)
                ++from.stores;
            ++from.memOps;
        } else if (op == Op::Branch) {
            ++from.branches;
        }
    }
    from.inst = toInst;
    return from;
}

RecordedTrace
RecordedTrace::slice(const Mark &begin, u64 end) const
{
    end = std::min(end, instCount());
    const u64 b = std::min(begin.inst, end);
    const u64 n = end - b;
    RecordedTrace p;
    p.op_.assign(op_.begin() + b, op_.begin() + end);
    p.flags_.assign(flags_.begin() + b, flags_.begin() + end);
    p.numSrcs_.assign(numSrcs_.begin() + b, numSrcs_.begin() + end);
    p.dst_.assign(dst_.begin() + b, dst_.begin() + end);
    // Site ids are registry ids (see siteNames()), not positions: copy
    // the per-instruction values verbatim and the whole name table.
    p.site_.assign(site_.begin() + b, site_.begin() + end);
    p.siteNames_ = siteNames_;

    // One pass over the kept instructions rebuilds the side-stream
    // lengths and the derived totals the recorder maintained online.
    // A mid-trace slice's sources can name values produced before the
    // boundary, so maxValId_ covers the source column too — the replay
    // cores size their readiness tables from it.
    u64 srcs = 0, memOps = 0, branches = 0;
    for (u64 i = 0; i < n; ++i) {
        const unsigned ns = numSrcs_[b + i];
        for (unsigned s = 0; s < ns; ++s)
            p.maxValId_ = std::max(p.maxValId_, srcs_[begin.srcs + srcs + s]);
        srcs += ns;
        const auto op = static_cast<Op>(op_[b + i]);
        if (op == Op::Load || op == Op::Store || op == Op::Prefetch)
            ++memOps;
        else if (op == Op::Branch)
            ++branches;
        ++p.opCount_[op_[b + i]];
        p.maxValId_ = std::max(p.maxValId_, dst_[b + i]);
    }

    p.srcs_.assign(srcs_.begin() + begin.srcs,
                   srcs_.begin() + begin.srcs + srcs);
    p.srcProd_.resize(srcs);
    for (u64 s = 0; s < srcs; ++s) {
        const u32 prod = srcProd_[begin.srcs + s];
        p.srcProd_[s] = (prod == kNoProducer || prod < b)
                            ? kNoProducer
                            : prod - static_cast<u32>(b);
    }

    p.memAddr_.assign(memAddr_.begin() + begin.memOps,
                      memAddr_.begin() + begin.memOps + memOps);
    p.memSize_.assign(memSize_.begin() + begin.memOps,
                      memSize_.begin() + begin.memOps + memOps);
    p.memKind_.assign(memKind_.begin() + begin.memOps,
                      memKind_.begin() + begin.memOps + memOps);
    p.memAux_.resize(memOps);
    for (u64 m = 0; m < memOps; ++m) {
        const u32 aux = memAux_[begin.memOps + m];
        switch (memKind_[begin.memOps + m]) {
          case kMemStore:
            // Store ordinals are assigned in program order, so every
            // kept store's ordinal is >= begin.stores by construction.
            p.memAux_[m] = aux - begin.stores;
            ++p.numStores_;
            break;
          case kMemLoad:
            p.memAux_[m] = (aux == kNoFwdStore || aux < begin.stores)
                               ? kNoFwdStore
                               : aux - begin.stores;
            break;
          default:
            p.memAux_[m] = kNoFwdStore;
            break;
        }
    }

    p.branchPc_.assign(branchPc_.begin() + begin.branches,
                       branchPc_.begin() + begin.branches + branches);
    return p;
}

RecordedTrace
RecordedTrace::slice(u64 begin, u64 end) const
{
    return slice(advance(Mark{}, begin), end);
}

RecordedTrace
RecordedTrace::prefix(u64 n) const
{
    return slice(Mark{}, std::min(n, instCount()));
}

void
RecordedTrace::Cursor::next(Inst &inst, u32 &fwd_store, u32 &store_ord)
{
    inst = Inst{};
    inst.op = static_cast<Op>(t_.op_[pos_]);
    inst.flags = t_.flags_[pos_];
    inst.site = t_.site_[pos_];
    inst.dst = t_.dst_[pos_];
    inst.numSrcs = t_.numSrcs_[pos_];
    for (unsigned i = 0; i < inst.numSrcs; ++i)
        inst.src[i] = t_.srcs_[srcPos_ + i];
    srcPos_ += inst.numSrcs;

    fwd_store = kNoFwdStore;
    store_ord = kNoFwdStore;
    if (inst.isMem()) {
        inst.addr = t_.memAddr_[memPos_];
        inst.memSize = t_.memSize_[memPos_];
        const u8 mk = t_.memKind_[memPos_];
        if (mk == kMemLoad)
            fwd_store = t_.memAux_[memPos_];
        else if (mk == kMemStore)
            store_ord = t_.memAux_[memPos_];
        ++memPos_;
    } else if (inst.isBranch()) {
        inst.pc = t_.branchPc_[branchPos_++];
    }
    ++pos_;
}

void
RecordedTrace::replayInto(isa::InstSink &sink) const
{
    Cursor cur(*this);
    Inst inst;
    u32 fwd, ord;
    while (!cur.atEnd()) {
        cur.next(inst, fwd, ord);
        sink.feed(inst);
    }
    sink.finish();
}

void
TraceRecorder::defineSite(u16 id, const std::string &name)
{
    std::vector<std::string> &names = trace_.siteNames_;
    if (names.size() <= id)
        names.resize(id + 1);
    names[id] = name;
}

u32
TraceRecorder::forwardingCandidate(Addr lo, Addr hi) const
{
    // Youngest (max-ordinal) older store covering [lo, hi). The core's
    // ring keeps the last kRingSize dispatched stores, so anything
    // older than that can never match at replay time either.
    //
    // Fast reject: a covering store wrote the load's first 8-byte
    // block, so its filter bit is set (the filters never miss a
    // ring-resident store; see the field comment).
    if (((fwdFilterCur_ | fwdFilterPrev_) &
         (u64{1} << ((lo >> 3) & 63))) == 0)
        return kNoFwdStore;
    // The ring is ordinal-ordered, so scanning from the most recent
    // entry backwards returns the youngest cover at the first hit.
    for (unsigned back = 1; back <= kRingSize; ++back) {
        const RingStore &s =
            ring_[(ringNext_ + kRingSize - back) % kRingSize];
        if (s.ordinal == kNoFwdStore)
            break; // older entries are unfilled too
        if (lo >= s.addr && hi <= s.addr + s.size)
            return s.ordinal;
    }
    return kNoFwdStore;
}

void
TraceRecorder::feed(const Inst &inst)
{
    RecordedTrace &t = trace_;
    const u32 index = static_cast<u32>(t.op_.size());
    t.op_.push_back(static_cast<u8>(inst.op));
    t.flags_.push_back(inst.flags);
    t.numSrcs_.push_back(inst.numSrcs);
    t.dst_.push_back(inst.dst);
    t.site_.push_back(inst.site);
    for (unsigned i = 0; i < inst.numSrcs; ++i) {
        const ValId s = inst.src[i];
        t.srcs_.push_back(s);
        t.srcProd_.push_back(s < producer_.size() ? producer_[s]
                                                  : kNoProducer);
    }
    if (inst.dst != kNoVal) {
        if (inst.dst >= producer_.size()) {
            size_t n = std::max<size_t>(producer_.size() * 2, 8192);
            n = std::max<size_t>(n, static_cast<size_t>(inst.dst) + 1);
            producer_.resize(n, kNoProducer);
        }
        producer_[inst.dst] = index;
    }
    t.maxValId_ = std::max(t.maxValId_, inst.dst);

    if (inst.isMem()) {
        t.memAddr_.push_back(inst.addr);
        t.memSize_.push_back(inst.memSize);
        if (inst.isLoad()) {
            t.memKind_.push_back(kMemLoad);
            t.memAux_.push_back(forwardingCandidate(
                inst.addr, inst.addr + inst.memSize));
        } else if (inst.isStore()) {
            t.memKind_.push_back(kMemStore);
            t.memAux_.push_back(t.numStores_);
            ring_[ringNext_] = RingStore{t.numStores_, inst.addr,
                                         inst.memSize};
            ringNext_ = (ringNext_ + 1) % kRingSize;
            ++t.numStores_;
            const Addr last =
                inst.addr + std::max<unsigned>(inst.memSize, 1) - 1;
            for (Addr b = inst.addr >> 3; b <= last >> 3; ++b)
                fwdFilterCur_ |= u64{1} << (b & 63);
            if (++fwdEpochStores_ == kRingSize) {
                fwdFilterPrev_ = fwdFilterCur_;
                fwdFilterCur_ = 0;
                fwdEpochStores_ = 0;
            }
        } else {
            t.memKind_.push_back(kMemPrefetch);
            t.memAux_.push_back(kNoFwdStore);
        }
    } else if (inst.isBranch()) {
        t.branchPc_.push_back(inst.pc);
    }
    ++t.opCount_[static_cast<unsigned>(inst.op)];
}

} // namespace msim::prog
