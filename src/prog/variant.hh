/**
 * @file
 * Benchmark code-path variants, shared by all workload generators.
 */

#ifndef MSIM_PROG_VARIANT_HH_
#define MSIM_PROG_VARIANT_HH_

#include "common/types.hh"

namespace msim::prog
{

/** Which code path a benchmark run uses. */
enum class Variant : u8
{
    Scalar,      ///< compiled-C style scalar code
    Vis,         ///< VIS media-ISA code path
    VisPrefetch  ///< VIS plus Mowry-style software prefetching
};

/** Short name for reports ("base", "VIS", "VIS+PF"). */
const char *variantName(Variant v);

/**
 * ISA feature knobs distinguishing the media extensions the paper
 * compares in Section 2.2.2. VIS is the default; MMX-like ISAs add a
 * direct 16x16 multiply (and pmaddwd); MVI-like minimal ISAs lack the
 * special-purpose pdist instruction entirely.
 */
struct VisFeatures
{
    /** Single-instruction 16x16 multiply (MMX) instead of the 3-op
     *  fmul8sux16/fmul8ulx16/fpadd16 emulation. */
    bool direct16x16Mul = false;

    /** Packed multiply-add of adjacent pairs (MMX pmaddwd). Implied by
     *  direct16x16Mul in our model. */
    bool hasPmaddwd = false;

    /** The pixel-distance (SAD) instruction; VIS-specific. */
    bool hasPdist = true;
};

} // namespace msim::prog

#endif // MSIM_PROG_VARIANT_HH_
