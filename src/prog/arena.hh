/**
 * @file
 * Virtual-memory arena backing a benchmark's data.
 *
 * Benchmarks allocate named arrays from a bump allocator; loads and
 * stores issued through the trace builder read and write real bytes
 * here, and the same virtual addresses drive the cache hierarchy.
 *
 * The allocator optionally *skews* successive allocations by one cache
 * line plus a per-array offset. The paper (footnote 3) modified the VSDK
 * kernels to skew the bases of concurrently accessed arrays to avoid
 * cache conflicts; skewing is on by default and can be disabled to
 * reproduce that ablation.
 */

#ifndef MSIM_PROG_ARENA_HH_
#define MSIM_PROG_ARENA_HH_

#include <string>
#include <vector>

#include "common/types.hh"

namespace msim::prog
{

/** Byte-addressable flat memory with a bump allocator. */
class Arena
{
  public:
    /**
     * @param skew_arrays  Offset successive array bases by distinct
     *                     sub-way offsets to avoid set conflicts.
     * @param base         First valid address (multi-core runs give each
     *                     core a disjoint region so a shared cache sees
     *                     distinct lines). 0 selects the default.
     */
    explicit Arena(bool skew_arrays = true, Addr base = 0);

    /** Allocate @p bytes aligned to @p align; returns the base address. */
    Addr alloc(size_t bytes, const std::string &name = "",
               size_t align = 64);

    /** Read @p size little-endian bytes at @p a (host-side, untimed). */
    u64 read(Addr a, unsigned size) const;

    /** Write the low @p size bytes of @p v at @p a (host-side, untimed). */
    void write(Addr a, unsigned size, u64 v);

    /** Write @p v at byte lanes of @p a selected by @p mask (8 bytes). */
    void writeMasked(Addr a, u64 v, u8 mask);

    /** Bulk host-side copy into the arena. */
    void writeBytes(Addr a, const u8 *src, size_t n);

    /** Bulk host-side copy out of the arena. */
    void readBytes(Addr a, u8 *dst, size_t n) const;

    /** Total bytes allocated so far. */
    size_t bytesAllocated() const { return next - base_; }

  private:
    /** Default first valid address; zero stays invalid. */
    static constexpr Addr kDefaultBase = 0x10000;

    void ensure(Addr a, size_t n) const;

    bool skew;
    Addr base_ = kDefaultBase;
    Addr next = kDefaultBase;
    unsigned allocCount = 0;
    mutable std::vector<u8> bytes;
};

} // namespace msim::prog

#endif // MSIM_PROG_ARENA_HH_
