#include "sim/multicore.hh"

#include <algorithm>
#include <memory>

#include "cpu/core.hh"
#include "mem/cache.hh"
#include "mem/dram.hh"
#include "mem/hierarchy.hh"
#include "prog/trace_builder.hh"

namespace msim::sim
{

namespace
{

/** Address-region stride between cores' arenas (disjoint data). */
constexpr Addr kCoreRegion = Addr{1} << 28;

/** A core's memory port: a private L1 missing into the shared L2. */
class SharedL2View : public mem::MemoryPort
{
  public:
    SharedL2View(const mem::CacheConfig &l1_cfg, mem::Cache &shared_l2)
        : l1_(l1_cfg, shared_l2, mem::HitLevel::L1)
    {}

    mem::AccessResult
    access(Addr addr, mem::AccessKind kind, Cycle t) override
    {
        return l1_.access(addr, kind, t);
    }

    const mem::Cache &l1() const { return l1_; }

  private:
    mem::Cache l1_;
};

CacheSnap
snapShared(const mem::Cache &c)
{
    CacheSnap s;
    s.accesses = c.accesses();
    s.hits = c.hits();
    s.misses = c.misses();
    s.writebacks = c.writebacks();
    s.missRate = c.missRate();
    s.mshrMeanOccupancy = c.mshrOccupancy().meanOccupancy();
    s.mshrPeakOccupancy = c.mshrOccupancy().peakOccupancy();
    return s;
}

} // namespace

MultiRunResult
runTraceMulti(const std::vector<Generator> &core_gens,
              const MachineConfig &machine, Cycle quantum)
{
    const unsigned n = static_cast<unsigned>(core_gens.size());

    // Shared levels.
    mem::Dram dram(machine.mem.dram);
    mem::Cache l2(machine.mem.l2, dram, mem::HitLevel::L2);

    // Private L1 views and cores.
    std::vector<std::unique_ptr<SharedL2View>> views;
    std::vector<std::unique_ptr<cpu::PipelineCore>> cores;
    for (unsigned c = 0; c < n; ++c) {
        views.push_back(
            std::make_unique<SharedL2View>(machine.mem.l1, l2));
        cores.push_back(std::make_unique<cpu::PipelineCore>(
            machine.core, *views[c]));
        cores[c]->setManualPump(true);
    }

    // Generate each core's full trace into its (buffering) core, with
    // disjoint address regions so the shared L2 sees distinct lines.
    std::vector<std::unique_ptr<prog::TraceBuilder>> tbs;
    for (unsigned c = 0; c < n; ++c) {
        tbs.push_back(std::make_unique<prog::TraceBuilder>(
            *cores[c], machine.skewArrays, true, machine.visFeatures,
            Addr{0x10000} + kCoreRegion * c));
        core_gens[c](*tbs[c]);
    }

    // Quantum-synchronized advance (gem5-style loose lockstep).
    Cycle horizon = quantum;
    for (;;) {
        bool all_done = true;
        for (auto &core : cores) {
            core->runTo(horizon);
            all_done = all_done && core->done();
        }
        if (all_done)
            break;
        horizon += quantum;
    }

    MultiRunResult r;
    for (unsigned c = 0; c < n; ++c) {
        tbs[c]->finish();
        r.cores.push_back(cores[c]->stats());
        r.makespan = std::max(r.makespan, cores[c]->stats().cycles);
    }
    r.l2 = snapShared(l2);
    r.dramReads = dram.reads();
    r.dramWrites = dram.writes();
    return r;
}

} // namespace msim::sim
