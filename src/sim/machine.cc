#include "sim/machine.hh"

#include <cstdio>

namespace msim::sim
{

MachineConfig
inOrder1Way()
{
    MachineConfig m;
    m.core = cpu::CoreConfig::inOrder1Way();
    m.label = "1-way";
    return m;
}

MachineConfig
inOrder4Way()
{
    MachineConfig m;
    m.core = cpu::CoreConfig::inOrder4Way();
    m.label = "4-way";
    return m;
}

MachineConfig
outOfOrder4Way()
{
    MachineConfig m;
    m.core = cpu::CoreConfig::outOfOrder4Way();
    m.label = "4-way ooo";
    return m;
}

MachineConfig
withL2Size(u32 bytes)
{
    MachineConfig m = outOfOrder4Way();
    m.mem.l2.sizeBytes = bytes;
    char buf[32];
    std::snprintf(buf, sizeof(buf), "L2=%uK", bytes / 1024);
    m.label = buf;
    return m;
}

MachineConfig
withL1Size(u32 bytes)
{
    MachineConfig m = outOfOrder4Way();
    m.mem.l1.sizeBytes = bytes;
    char buf[32];
    std::snprintf(buf, sizeof(buf), "L1=%uK", bytes / 1024);
    m.label = buf;
    return m;
}

MachineConfig
asReference(MachineConfig m)
{
    m.mem.model = mem::CacheModel::Reference;
    m.core.referenceEngine = true;
    return m;
}

MachineConfig
withEventSkip(MachineConfig m, bool on)
{
    m.core.eventSkip = on;
    return m;
}

simd::ScopedLevel
withSimd(bool on)
{
    return simd::ScopedLevel(on ? simd::detectedLevel()
                                : simd::Level::Scalar);
}

} // namespace msim::sim
