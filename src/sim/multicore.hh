/**
 * @file
 * Multiprocessor extension (the paper's Section 6 future work:
 * "architectural optimizations that improve computation time (e.g.,
 * multiprocessing) ... are likely to expose the memory system
 * bottleneck yet again").
 *
 * N cores, each with a private L1, share one L2 and one interleaved
 * memory. Each core runs its own workload generator in a disjoint
 * address region (an SPMD row-sliced split of a data-parallel kernel),
 * so no coherence traffic arises; the interesting contention is for the
 * shared L2 port/capacity and the DRAM banks. Cores are advanced in
 * fixed quanta so their clocks stay loosely synchronized — the standard
 * quantum-based multiprocessor simulation approach.
 */

#ifndef MSIM_SIM_MULTICORE_HH_
#define MSIM_SIM_MULTICORE_HH_

#include <vector>

#include "sim/runner.hh"

namespace msim::sim
{

/** Result of a multi-core run. */
struct MultiRunResult
{
    /** Per-core execution statistics. */
    std::vector<cpu::ExecStats> cores;

    /** Completion time of the slowest core (the parallel makespan). */
    Cycle makespan = 0;

    /** Shared-L2 and memory statistics. */
    CacheSnap l2;
    u64 dramReads = 0;
    u64 dramWrites = 0;
};

/**
 * Run one generator per core on @p machine with a shared L2 and DRAM.
 *
 * @param core_gens  One workload generator per core; each receives a
 *                   trace builder whose arena occupies a disjoint
 *                   address region.
 * @param machine    Per-core pipeline config and the (shared) memory
 *                   configuration.
 * @param quantum    Synchronization quantum in cycles.
 */
MultiRunResult runTraceMulti(const std::vector<Generator> &core_gens,
                             const MachineConfig &machine,
                             Cycle quantum = 500);

} // namespace msim::sim

#endif // MSIM_SIM_MULTICORE_HH_
