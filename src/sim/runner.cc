#include "sim/runner.hh"

#include "audit/invariants.hh"
#include "cpu/batch_replay_engine.hh"
#include "cpu/core.hh"
#include "isa/inst.hh"
#include "mem/hierarchy.hh"

namespace msim::sim
{

namespace
{

/**
 * VIS instruction tally (paper §3.2.3): total dynamic VIS ops and the
 * rearrangement/alignment overhead subset. @p counts is anything with
 * countOf(isa::Op) — the trace builder on the live path, the recorded
 * trace on the replay paths.
 */
template <typename Counts>
void
tallyVisOps(RunResult &r, const Counts &counts)
{
    using isa::Op;
    const u64 pack = counts.countOf(Op::VisPack);
    const u64 align = counts.countOf(Op::VisAlign);
    const u64 gsr = counts.countOf(Op::VisGsr);
    r.visOverheadOps = pack + align + gsr;
    r.visOps = r.visOverheadOps + counts.countOf(Op::VisAdd) +
               counts.countOf(Op::VisMul) + counts.countOf(Op::VisPdist);
}

/**
 * accounting-identity (§2.3.4): every simulated cycle must be charged
 * to exactly one of Busy / FUstall / L1hit / L1miss. Checked once per
 * run, on both the live and replay paths.
 */
void
auditAccounting([[maybe_unused]] const cpu::ExecStats &stats)
{
#if MSIM_AUDIT_ENABLED
    double err = 0.0;
    MSIM_AUDIT_CHECK(audit::accountingIdentityHolds(stats, &err),
                     "busy %.6f + fu %.6f + l1hit %.6f + l1miss %.6f != "
                     "cycles %llu (err %.6f)",
                     stats.busy, stats.fuStall, stats.memL1Hit,
                     stats.memL1Miss,
                     static_cast<unsigned long long>(stats.cycles), err);
#endif
}

CacheSnap
snapOf(const mem::CacheLevel &c)
{
    CacheSnap s;
    s.accesses = c.accesses();
    s.hits = c.hits();
    s.misses = c.misses();
    s.writebacks = c.writebacks();
    s.prefetchDrops = c.prefetchDrops();
    s.combined = c.combinedRequests();
    s.blocked = c.blockedRequests();
    s.missRate = c.missRate();
    s.mshrMeanOccupancy = c.mshrOccupancy().meanOccupancy();
    s.mshrPeakOccupancy = c.mshrOccupancy().peakOccupancy();
    s.mshrFracAtLeast2 = c.mshrOccupancy().fracAtLeast(2);
    s.mshrFracAtLeast5 = c.mshrOccupancy().fracAtLeast(5);
    s.loadOverlapMean = c.loadOverlap().mean();
    return s;
}

} // namespace

RunResult
runTrace(const Generator &generate, const MachineConfig &machine)
{
    mem::Hierarchy hierarchy(machine.mem);
    cpu::PipelineCore core(machine.core, hierarchy);
    prog::TraceBuilder tb(core, machine.skewArrays, true,
                          machine.visFeatures);

    generate(tb);
    tb.finish();

    RunResult r;
    r.exec = core.stats();
    auditAccounting(r.exec);
    r.l1 = snapOf(hierarchy.l1());
    r.l2 = snapOf(hierarchy.l2());
    r.tbInstrs = tb.instCount();
    tallyVisOps(r, tb);
    return r;
}

prog::RecordedTrace
recordTrace(const Generator &generate, bool skewArrays,
            prog::VisFeatures visFeatures)
{
    prog::TraceRecorder recorder;
    prog::TraceBuilder tb(recorder, skewArrays, true, visFeatures);
    generate(tb);
    tb.finish();
    return recorder.take();
}

RunResult
replayTrace(const prog::RecordedTrace &trace, const MachineConfig &machine)
{
    mem::Hierarchy hierarchy(machine.mem);
    cpu::PipelineCore core(machine.core, hierarchy);
    core.runRecorded(trace);

    RunResult r;
    r.exec = core.stats();
    auditAccounting(r.exec);
    r.l1 = snapOf(hierarchy.l1());
    r.l2 = snapOf(hierarchy.l2());
    r.tbInstrs = trace.instCount();
    tallyVisOps(r, trace);
    return r;
}

std::vector<RunResult>
replayTraceBatch(const prog::RecordedTrace &trace,
                 std::span<const MachineConfig> machines,
                 u64 chunkInstructions)
{
    std::vector<RunResult> results(machines.size());

    // Group the lockstep-capable configs into one batch; everything the
    // batch engine cannot drive bit-identically (in-order cores, the
    // preserved reference engine, oversized windows) replays
    // sequentially into its result slot.
    std::vector<size_t> batched;
    batched.reserve(machines.size());
    for (size_t i = 0; i < machines.size(); ++i) {
        if (cpu::BatchReplayEngine::supports(machines[i].core))
            batched.push_back(i);
        else
            results[i] = replayTrace(trace, machines[i]);
    }

    if (!batched.empty()) {
        // One hierarchy per lane; Hierarchy is movable, so the vector
        // can be built without pointer indirection.
        std::vector<mem::Hierarchy> hierarchies;
        hierarchies.reserve(batched.size());
        std::vector<cpu::BatchReplayEngine::Lane> lanes;
        lanes.reserve(batched.size());
        for (const size_t i : batched)
            hierarchies.emplace_back(machines[i].mem);
        for (size_t k = 0; k < batched.size(); ++k)
            lanes.push_back({&machines[batched[k]].core, &hierarchies[k]});

        cpu::BatchReplayEngine engine(
            trace, lanes,
            chunkInstructions ? chunkInstructions
                              : cpu::BatchReplayEngine::kDefaultChunk);
        engine.run();

        for (size_t k = 0; k < batched.size(); ++k) {
            RunResult &r = results[batched[k]];
            r.exec = engine.takeStats(k);
            auditAccounting(r.exec);
            r.l1 = snapOf(hierarchies[k].l1());
            r.l2 = snapOf(hierarchies[k].l2());
            r.tbInstrs = trace.instCount();
            tallyVisOps(r, trace);
        }
    }
    return results;
}

} // namespace msim::sim
