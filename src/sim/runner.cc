#include "sim/runner.hh"

#include "audit/invariants.hh"
#include "cpu/core.hh"
#include "isa/inst.hh"
#include "mem/hierarchy.hh"

namespace msim::sim
{

namespace
{

/**
 * accounting-identity (§2.3.4): every simulated cycle must be charged
 * to exactly one of Busy / FUstall / L1hit / L1miss. Checked once per
 * run, on both the live and replay paths.
 */
void
auditAccounting([[maybe_unused]] const cpu::ExecStats &stats)
{
#if MSIM_AUDIT_ENABLED
    double err = 0.0;
    MSIM_AUDIT_CHECK(audit::accountingIdentityHolds(stats, &err),
                     "busy %.6f + fu %.6f + l1hit %.6f + l1miss %.6f != "
                     "cycles %llu (err %.6f)",
                     stats.busy, stats.fuStall, stats.memL1Hit,
                     stats.memL1Miss,
                     static_cast<unsigned long long>(stats.cycles), err);
#endif
}

CacheSnap
snapOf(const mem::CacheLevel &c)
{
    CacheSnap s;
    s.accesses = c.accesses();
    s.hits = c.hits();
    s.misses = c.misses();
    s.writebacks = c.writebacks();
    s.prefetchDrops = c.prefetchDrops();
    s.combined = c.combinedRequests();
    s.blocked = c.blockedRequests();
    s.missRate = c.missRate();
    s.mshrMeanOccupancy = c.mshrOccupancy().meanOccupancy();
    s.mshrPeakOccupancy = c.mshrOccupancy().peakOccupancy();
    s.mshrFracAtLeast2 = c.mshrOccupancy().fracAtLeast(2);
    s.mshrFracAtLeast5 = c.mshrOccupancy().fracAtLeast(5);
    s.loadOverlapMean = c.loadOverlap().mean();
    return s;
}

} // namespace

RunResult
runTrace(const Generator &generate, const MachineConfig &machine)
{
    mem::Hierarchy hierarchy(machine.mem);
    cpu::PipelineCore core(machine.core, hierarchy);
    prog::TraceBuilder tb(core, machine.skewArrays, true,
                          machine.visFeatures);

    generate(tb);
    tb.finish();

    RunResult r;
    r.exec = core.stats();
    auditAccounting(r.exec);
    r.l1 = snapOf(hierarchy.l1());
    r.l2 = snapOf(hierarchy.l2());
    r.tbInstrs = tb.instCount();

    using isa::Op;
    const u64 pack = tb.countOf(Op::VisPack);
    const u64 align = tb.countOf(Op::VisAlign);
    const u64 gsr = tb.countOf(Op::VisGsr);
    r.visOverheadOps = pack + align + gsr;
    r.visOps = r.visOverheadOps + tb.countOf(Op::VisAdd) +
               tb.countOf(Op::VisMul) + tb.countOf(Op::VisPdist);
    return r;
}

prog::RecordedTrace
recordTrace(const Generator &generate, bool skewArrays,
            prog::VisFeatures visFeatures)
{
    prog::TraceRecorder recorder;
    prog::TraceBuilder tb(recorder, skewArrays, true, visFeatures);
    generate(tb);
    tb.finish();
    return recorder.take();
}

RunResult
replayTrace(const prog::RecordedTrace &trace, const MachineConfig &machine)
{
    mem::Hierarchy hierarchy(machine.mem);
    cpu::PipelineCore core(machine.core, hierarchy);
    core.runRecorded(trace);

    RunResult r;
    r.exec = core.stats();
    auditAccounting(r.exec);
    r.l1 = snapOf(hierarchy.l1());
    r.l2 = snapOf(hierarchy.l2());
    r.tbInstrs = trace.instCount();

    using isa::Op;
    const u64 pack = trace.countOf(Op::VisPack);
    const u64 align = trace.countOf(Op::VisAlign);
    const u64 gsr = trace.countOf(Op::VisGsr);
    r.visOverheadOps = pack + align + gsr;
    r.visOps = r.visOverheadOps + trace.countOf(Op::VisAdd) +
               trace.countOf(Op::VisMul) + trace.countOf(Op::VisPdist);
    return r;
}

} // namespace msim::sim
