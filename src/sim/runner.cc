#include "sim/runner.hh"

#include <optional>

#include "audit/invariants.hh"
#include "cpu/batch_replay_engine.hh"
#include "cpu/core.hh"
#include "isa/inst.hh"
#include "mem/batch.hh"
#include "mem/hierarchy.hh"
#include "obs/metrics.hh"
#include "obs/session.hh"
#include "obs/site.hh"
#include "obs/span.hh"
#include "obs/timeline.hh"

namespace msim::sim
{

namespace
{

/**
 * VIS instruction tally (paper §3.2.3): total dynamic VIS ops and the
 * rearrangement/alignment overhead subset. @p counts is anything with
 * countOf(isa::Op) — the trace builder on the live path, the recorded
 * trace on the replay paths.
 */
template <typename Counts>
void
tallyVisOps(RunResult &r, const Counts &counts)
{
    using isa::Op;
    const u64 pack = counts.countOf(Op::VisPack);
    const u64 align = counts.countOf(Op::VisAlign);
    const u64 gsr = counts.countOf(Op::VisGsr);
    r.visOverheadOps = pack + align + gsr;
    r.visOps = r.visOverheadOps + counts.countOf(Op::VisAdd) +
               counts.countOf(Op::VisMul) + counts.countOf(Op::VisPdist);
}

/**
 * accounting-identity (§2.3.4): every simulated cycle must be charged
 * to exactly one of Busy / FUstall / L1hit / L1miss. Checked once per
 * run, on both the live and replay paths.
 */
void
auditAccounting([[maybe_unused]] const cpu::ExecStats &stats)
{
#if MSIM_AUDIT_ENABLED
    double err = 0.0;
    MSIM_AUDIT_CHECK(audit::accountingIdentityHolds(stats, &err),
                     "busy %.6f + fu %.6f + l1hit %.6f + l1miss %.6f != "
                     "cycles %llu (err %.6f)",
                     stats.busy, stats.fuStall, stats.memL1Hit,
                     stats.memL1Miss,
                     static_cast<unsigned long long>(stats.cycles), err);
#endif
}

CacheSnap
snapOf(const mem::CacheLevel &c)
{
    CacheSnap s;
    s.accesses = c.accesses();
    s.hits = c.hits();
    s.misses = c.misses();
    s.writebacks = c.writebacks();
    s.prefetchDrops = c.prefetchDrops();
    s.combined = c.combinedRequests();
    s.blocked = c.blockedRequests();
    s.missRate = c.missRate();
    s.mshrMeanOccupancy = c.mshrOccupancy().meanOccupancy();
    s.mshrPeakOccupancy = c.mshrOccupancy().peakOccupancy();
    s.mshrFracAtLeast2 = c.mshrOccupancy().fracAtLeast(2);
    s.mshrFracAtLeast5 = c.mshrOccupancy().fracAtLeast(5);
    s.loadOverlapMean = c.loadOverlap().mean();
    return s;
}

#if MSIM_OBS_ENABLED

/** Retire width as the replay engines resolve it (0 = issue width). */
unsigned
resolvedRetireWidth(const cpu::CoreConfig &core)
{
    return core.retireWidth ? core.retireWidth : core.issueWidth;
}

/**
 * New per-run timeline when a session is active: named by the thread's
 * run label (set by core/experiment) or the machine label, with MSHR
 * sampling attached to the run's own hierarchy.
 */
obs::TimelineRecorder *
newRunTimeline(const MachineConfig &machine, const mem::CacheLevel &l1,
               const mem::CacheLevel &l2)
{
    obs::Session *s = obs::Session::active();
    if (!s)
        return nullptr;
    std::string label = obs::runLabel();
    if (label.empty())
        label = machine.label;
    else
        label += "@" + machine.label;
    obs::TimelineRecorder *tl = s->newTimeline(std::move(label));
    if (tl)
        tl->attachMem(&l1.mshrOccupancy(), &l2.mshrOccupancy());
    return tl;
}

/** Per-run metrics: simulation totals, §2.3.4 stall split, cache/MSHR
 *  behaviour. Registered once; updated once per completed run. */
struct RunMetrics
{
    obs::MetricId cycles =
        obs::metricId("sim.cycles", obs::MetricKind::Counter);
    obs::MetricId instructions =
        obs::metricId("sim.instructions", obs::MetricKind::Counter);
    obs::MetricId fracBusy =
        obs::metricId("stall.frac_busy", obs::MetricKind::Dist);
    obs::MetricId fracFu =
        obs::metricId("stall.frac_fu", obs::MetricKind::Dist);
    obs::MetricId fracL1Hit =
        obs::metricId("stall.frac_mem_l1_hit", obs::MetricKind::Dist);
    obs::MetricId fracL1Miss =
        obs::metricId("stall.frac_mem_l1_miss", obs::MetricKind::Dist);
    obs::MetricId l1MissRate =
        obs::metricId("cache.l1.miss_rate", obs::MetricKind::Dist);
    obs::MetricId l2MissRate =
        obs::metricId("cache.l2.miss_rate", obs::MetricKind::Dist);
    obs::MetricId l1MshrMean =
        obs::metricId("cache.l1.mshr_mean", obs::MetricKind::Dist);
    obs::MetricId l2MshrMean =
        obs::metricId("cache.l2.mshr_mean", obs::MetricKind::Dist);
};

/** Close @p tl with the run's final aggregates. */
void
finishTimeline(obs::TimelineRecorder *tl, const RunResult &r)
{
    if (!tl)
        return;
    static const RunMetrics m;
    obs::count(m.cycles, r.exec.cycles);
    obs::count(m.instructions, r.exec.retired);
    obs::observe(m.fracBusy, r.exec.fracBusy());
    obs::observe(m.fracFu, r.exec.fracFuStall());
    obs::observe(m.fracL1Hit, r.exec.fracMemL1Hit());
    obs::observe(m.fracL1Miss, r.exec.fracMemL1Miss());
    obs::observe(m.l1MissRate, r.l1.missRate);
    obs::observe(m.l2MissRate, r.l2.missRate);
    obs::observe(m.l1MshrMean, r.l1.mshrMeanOccupancy);
    obs::observe(m.l2MshrMean, r.l2.mshrMeanOccupancy);
    obs::RunSummary s;
    s.cycles = r.exec.cycles;
    s.instructions = r.exec.retired;
    s.busy = r.exec.busy;
    s.fuStall = r.exec.fuStall;
    s.memL1Hit = r.exec.memL1Hit;
    s.memL1Miss = r.exec.memL1Miss;
    s.branches = r.exec.branches;
    s.mispredicts = r.exec.mispredicts;
    s.l1Accesses = r.l1.accesses;
    s.l1Misses = r.l1.misses;
    s.l2Accesses = r.l2.accesses;
    s.l2Misses = r.l2.misses;
    s.l1MshrMean = r.l1.mshrMeanOccupancy;
    s.l2MshrMean = r.l2.mshrMeanOccupancy;
    tl->finish(s);
}

#endif // MSIM_OBS_ENABLED

} // namespace

RunResult
runTrace(const Generator &generate, const MachineConfig &machine)
{
    mem::Hierarchy hierarchy(machine.mem);
    cpu::PipelineCore core(machine.core, hierarchy);
    prog::TraceBuilder tb(core, machine.skewArrays, true,
                          machine.visFeatures);

#if MSIM_OBS_ENABLED
    obs::TimelineRecorder *tl =
        newRunTimeline(machine, hierarchy.l1(), hierarchy.l2());
    core.setTimeline(tl);
    MSIM_OBS_SPAN(span, "live", machine.label);
#endif
    generate(tb);
    tb.finish();

    RunResult r;
    r.exec = core.stats();
    auditAccounting(r.exec);
    r.l1 = snapOf(hierarchy.l1());
    r.l2 = snapOf(hierarchy.l2());
    r.tbInstrs = tb.instCount();
    tallyVisOps(r, tb);
#if MSIM_OBS_ENABLED
    finishTimeline(tl, r);
#endif
    return r;
}

prog::RecordedTrace
recordTrace(const Generator &generate, bool skewArrays,
            prog::VisFeatures visFeatures)
{
    MSIM_OBS_SPAN(span, "record");
    prog::TraceRecorder recorder;
    prog::TraceBuilder tb(recorder, skewArrays, true, visFeatures);
    generate(tb);
    tb.finish();
    return recorder.take();
}

RunResult
replayTrace(const prog::RecordedTrace &trace, const MachineConfig &machine)
{
    mem::Hierarchy hierarchy(machine.mem);
    cpu::PipelineCore core(machine.core, hierarchy);
#if MSIM_OBS_ENABLED
    obs::TimelineRecorder *tl =
        newRunTimeline(machine, hierarchy.l1(), hierarchy.l2());
    core.setTimeline(tl);
    obs::SiteAttribution sa;
    if (tl) {
        sa.reset(trace.siteNames().size(),
                 resolvedRetireWidth(machine.core));
        core.setSiteAttribution(&sa);
    }
    MSIM_OBS_SPAN(span, "replay", machine.label);
#endif
    core.runRecorded(trace);

    RunResult r;
    r.exec = core.stats();
    auditAccounting(r.exec);
    r.l1 = snapOf(hierarchy.l1());
    r.l2 = snapOf(hierarchy.l2());
    r.tbInstrs = trace.instCount();
    tallyVisOps(r, trace);
#if MSIM_OBS_ENABLED
    if (tl)
        tl->setSites(obs::sitesFromAttribution(sa, trace.siteNames()));
    finishTimeline(tl, r);
#endif
    return r;
}

std::vector<RunResult>
replayTraceBatch(const prog::RecordedTrace &trace,
                 std::span<const MachineConfig> machines,
                 u64 chunkInstructions)
{
    std::vector<RunResult> results(machines.size());

    // Group the lockstep-capable configs into one batch; everything the
    // batch engine cannot drive bit-identically (in-order cores, the
    // preserved reference engine, oversized windows) replays
    // sequentially into its result slot.
    std::vector<size_t> batched;
    batched.reserve(machines.size());
    for (size_t i = 0; i < machines.size(); ++i) {
        if (cpu::BatchReplayEngine::supports(machines[i].core))
            batched.push_back(i);
        else
            results[i] = replayTrace(trace, machines[i]);
    }

    if (!batched.empty()) {
        // Lanes on the fast cache model share one batched memory
        // object (shared per-chunk line columns + geometry-class tag
        // arenas, see mem::BatchMemory); reference-model lanes — and
        // every lane when MSIM_MEM_BATCH=0 — keep a private Hierarchy
        // but still replay in the same CPU lockstep group.
        constexpr size_t kNone = ~size_t{0};
        const bool useBatchMem = mem::batchMemEnabled();
        std::vector<size_t> bmIndex(batched.size(), kNone);
        std::vector<size_t> hierIndex(batched.size(), kNone);
        std::vector<mem::MemConfig> bmConfigs;
        size_t nHier = 0;
        for (size_t k = 0; k < batched.size(); ++k) {
            const mem::MemConfig &mc = machines[batched[k]].mem;
            if (useBatchMem && mem::BatchMemory::supports(mc)) {
                bmIndex[k] = bmConfigs.size();
                bmConfigs.push_back(mc);
            } else {
                hierIndex[k] = nHier++;
            }
        }

        std::optional<mem::BatchMemory> bm;
        if (!bmConfigs.empty()) {
            bm.emplace(std::span<const mem::MemConfig>(bmConfigs));
            bm->bind(trace.memAddrCol().data(),
                     trace.memAddrCol().size());
        }
        std::vector<mem::Hierarchy> hierarchies;
        hierarchies.reserve(nHier);
        for (size_t k = 0; k < batched.size(); ++k)
            if (hierIndex[k] != kNone)
                hierarchies.emplace_back(machines[batched[k]].mem);

        std::vector<cpu::BatchReplayEngine::Lane> lanes;
        lanes.reserve(batched.size());
        for (size_t k = 0; k < batched.size(); ++k) {
            mem::MemoryPort *port =
                bmIndex[k] != kNone
                    ? &bm->port(bmIndex[k])
                    : static_cast<mem::MemoryPort *>(
                          &hierarchies[hierIndex[k]]);
            lanes.push_back({&machines[batched[k]].core, port});
        }

        const auto l1Of = [&](size_t k) -> const mem::CacheLevel & {
            return bmIndex[k] != kNone ? bm->l1(bmIndex[k])
                                       : hierarchies[hierIndex[k]].l1();
        };
        const auto l2Of = [&](size_t k) -> const mem::CacheLevel & {
            return bmIndex[k] != kNone ? bm->l2(bmIndex[k])
                                       : hierarchies[hierIndex[k]].l2();
        };

        cpu::BatchReplayEngine engine(
            trace, lanes,
            chunkInstructions ? chunkInstructions
                              : cpu::BatchReplayEngine::kDefaultChunk);
        if (bm)
            engine.setBatchMemory(&*bm);
#if MSIM_OBS_ENABLED
        // One timeline track and one attribution table per sweep lane
        // (the vector is sized once, so lane pointers stay stable).
        std::vector<obs::TimelineRecorder *> laneTl(batched.size(),
                                                    nullptr);
        std::vector<obs::SiteAttribution> laneSa(batched.size());
        for (size_t k = 0; k < batched.size(); ++k) {
            laneTl[k] = newRunTimeline(machines[batched[k]], l1Of(k),
                                       l2Of(k));
            engine.setLaneTimeline(k, laneTl[k]);
            if (laneTl[k]) {
                laneSa[k].reset(
                    trace.siteNames().size(),
                    resolvedRetireWidth(machines[batched[k]].core));
                engine.setLaneSiteAttribution(k, &laneSa[k]);
            }
        }
        MSIM_OBS_SPAN(span, "batch.run");
#endif
        engine.run();

        for (size_t k = 0; k < batched.size(); ++k) {
            RunResult &r = results[batched[k]];
            r.exec = engine.takeStats(k);
            auditAccounting(r.exec);
            r.l1 = snapOf(l1Of(k));
            r.l2 = snapOf(l2Of(k));
            r.tbInstrs = trace.instCount();
            tallyVisOps(r, trace);
#if MSIM_OBS_ENABLED
            if (laneTl[k])
                laneTl[k]->setSites(obs::sitesFromAttribution(
                    laneSa[k], trace.siteNames()));
            finishTimeline(laneTl[k], r);
#endif
        }
    }
    return results;
}

} // namespace msim::sim
