/**
 * @file
 * Statistical sampling for sweeps: SMARTS-style systematic sampled
 * replay of a RecordedTrace.
 *
 * The trace is divided into fixed-size chunks; one chunk out of every
 * N (at a deterministic stratified offset — see prepareSampled) is
 * measured in full detail by the bit-exact ReplayEngine, and the gaps
 * between samples are fast-forwarded with *functional warming* only —
 * cache tag/LRU/dirty state and the branch predictor advance, but no
 * cycle accounting happens (see mem::Level::warmLine and the shared
 * mispredict column).  The warming stream carries every memory-op
 * kind, including tagged prefetch touches: software-prefetch variants
 * fetch nearly their whole working set through prefetches, so a
 * warming pass that dropped them would start measured chunks against
 * cold tags and overshoot CPI by 20-60% on the prefetch cells.  Per-chunk CPI and stall-mix measurements feed a
 * Welford accumulator (common::MeanVar), so every reported metric
 * carries a normal-theory 95% confidence half-width.
 *
 * The expensive part of setting up a sampled run — walking the trace
 * once to pin chunk boundaries (RecordedTrace::Mark), materializing
 * the measured-chunk slices, and extracting the branch-outcome bits —
 * depends only on (trace, params), never on the machine.  prepareSampled
 * builds that SampledPlan once; replayTraceSampled then runs one sweep
 * point against it, so an L1-size sweep pays the O(trace) preparation a
 * single time and each point costs O(measured + warmed) work.  That
 * amortization is what keeps the djpeg L1 sweep several times faster
 * than exact replay at the default sampling rate
 * (bench/bench_sampled.cpp measures and gates it).
 *
 * Sampling is strictly opt-in: nothing in the exact paths calls into
 * this file, and machines the sampler cannot drive (in-order cores, the
 * reference engine or reference cache model) transparently fall back to
 * exact replayTrace with zero-width confidence intervals and the
 * `exact` flag set.  Estimates are bit-reproducible: measured chunks
 * run the same deterministic engine as exact replay, and the warming
 * and plan construction are scalar code, so a given
 * (trace, params, machine) always produces the identical estimate —
 * across runs, host-SIMD dispatch levels, and event-skip settings
 * (enforced by tests/test_sampled.cc and `audit_fuzz --mode sample`).
 */

#ifndef MSIM_SIM_SAMPLED_HH_
#define MSIM_SIM_SAMPLED_HH_

#include <vector>

#include "prog/recorded_trace.hh"
#include "sim/runner.hh"

namespace msim::sim
{

/** Knobs of the systematic sampler. */
struct SampledParams
{
    // Default sampling rate: 1/12 of the trace in 4000-instruction
    // chunks.  The paper kernels are strongly periodic (per-scanline /
    // per-macroblock phases), so plain systematic sampling at a fixed
    // slot aliases with that structure (e.g. 50k-instruction chunks at
    // 1/10 put djpeg's CPI off by >15%); prepareSampled therefore
    // draws one chunk per interval at a deterministic pseudo-random
    // offset (stratified sampling).  The design point matters in both
    // directions: larger chunks (12k-48k) *lose* accuracy on the codec
    // traces because fewer, coarser strata stop averaging over the
    // long-range phase structure, while the original 6000x18 left the
    // prefetch variants' worst cell near +3.7% — pure sampling
    // variance, not warming bias (measuring every chunk puts the same
    // cell at +0.2%).  4000x12 quadruples the stratum density for 1.5x
    // the measured fraction (~8.3%) and holds all 33 benchmark x
    // variant cells — prefetch included — within 2% of the exact CPI
    // (bench/bench_sampled.cpp regenerates the accuracy report).

    /** Instructions per chunk (measurement unit). */
    u64 chunkInstructions = 4000;

    /** Measure one chunk per consecutive group of this many chunks. */
    u64 intervalChunks = 12;

    /**
     * Length of the functional-warming window, in memory operations,
     * replayed into the cache hierarchy immediately before each
     * measured chunk.  The window never reaches back past the previous
     * measured chunk (its timed accesses already updated the tags).
     */
    u64 warmupMemOps = 32768;
};

/** A point estimate with its 95% confidence half-width. */
struct Estimate
{
    double mean = 0.0;
    double ci95 = 0.0;
};

/** What one sampled replay reports. */
struct SampledResult
{
    Estimate cpi;            ///< cycles per retired instruction
    Estimate cycles;         ///< cpi scaled to the whole trace
    Estimate fracBusy;       ///< StallClass split (fractions of cycles)
    Estimate fracFuStall;
    Estimate fracMemL1Hit;
    Estimate fracMemL1Miss;
    Estimate mispredictRate; ///< per retired branch
    Estimate loadL1MissRate; ///< loads satisfied beyond L1, per load

    u64 instructions = 0;         ///< whole-trace dynamic count
    u64 measuredInstructions = 0; ///< retired inside measured chunks
    u64 measuredChunks = 0;

    /**
     * True when the run fell back to exact replay (trace too short to
     * sample, or a machine the sampler cannot drive); `full` then
     * holds the complete exact result and every ci95 is 0.
     */
    bool exact = false;
    RunResult full;
};

/**
 * The machine-independent half of a sampled run: measured-chunk
 * slices, their side-stream offsets and warm windows, and the
 * whole-trace branch outcome bits.  Holds a reference to the trace —
 * the trace must outlive the plan and every replayTraceSampled call
 * made against it.
 */
class SampledPlan
{
  public:
    struct MeasuredChunk
    {
        prog::RecordedTrace slice; ///< rebased copy of [begin, end)
        u64 begin = 0;             ///< dynamic instruction range
        u64 end = 0;
        u64 branchOffset = 0;      ///< dynamic branch ordinal at begin
        u64 warmMemBegin = 0;      ///< warm window [warmMemBegin, memBegin)
        u64 memBegin = 0;
    };

    const prog::RecordedTrace &trace() const { return *trace_; }
    const SampledParams &params() const { return params_; }
    const std::vector<MeasuredChunk> &chunks() const { return chunks_; }

    /** Branch outcomes (1 = taken) by dynamic branch ordinal. */
    const std::vector<u8> &branchTaken() const { return branchTaken_; }

    /**
     * Whether this trace is too short to estimate from: fewer than two
     * full measured chunks means no spread information, so sampled
     * runs replay it exactly instead.
     */
    bool exactFallback() const { return chunks_.size() < 2; }

  private:
    friend SampledPlan prepareSampled(const prog::RecordedTrace &trace,
                                      const SampledParams &params);

    const prog::RecordedTrace *trace_ = nullptr;
    SampledParams params_;
    std::vector<MeasuredChunk> chunks_;
    std::vector<u8> branchTaken_;
};

/** Build the machine-independent sampling plan (one O(trace) pass). */
SampledPlan prepareSampled(const prog::RecordedTrace &trace,
                           const SampledParams &params);

/**
 * Run one machine against a prepared plan.  Deterministic for a given
 * (plan, machine); see the file comment for the fallback rules.
 */
SampledResult replayTraceSampled(const SampledPlan &plan,
                                 const MachineConfig &machine);

/** Convenience: prepare + run for a single point. */
SampledResult replayTraceSampled(const prog::RecordedTrace &trace,
                                 const MachineConfig &machine,
                                 const SampledParams &params = {});

} // namespace msim::sim

#endif // MSIM_SIM_SAMPLED_HH_
