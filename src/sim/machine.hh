/**
 * @file
 * Full-machine configuration: a core (Table 2) plus a memory hierarchy
 * (Table 3), and the named configurations used throughout the paper.
 */

#ifndef MSIM_SIM_MACHINE_HH_
#define MSIM_SIM_MACHINE_HH_

#include <string>

#include "common/simd.hh"
#include "cpu/core.hh"
#include "mem/config.hh"
#include "prog/variant.hh"

namespace msim::sim
{

/** A complete simulated machine. */
struct MachineConfig
{
    cpu::CoreConfig core = cpu::CoreConfig::outOfOrder4Way();
    mem::MemConfig mem{};

    /** Skew concurrently accessed array bases (paper footnote 3). */
    bool skewArrays = true;

    /** Media-ISA feature set (Section 2.2.2 cross-ISA ablations). */
    prog::VisFeatures visFeatures{};

    /** Short label used in reports ("1-way", "4-way", "4-way ooo"). */
    std::string label = "4-way ooo";
};

/** The three Figure-1 processor configurations with default caches. */
MachineConfig inOrder1Way();
MachineConfig inOrder4Way();
MachineConfig outOfOrder4Way();

/** Default machine with the L2 size overridden (Section 4.1 sweep). */
MachineConfig withL2Size(u32 bytes);

/** Default machine with the L1 size overridden (Section 4.1 sweep). */
MachineConfig withL1Size(u32 bytes);

/**
 * The same machine, switched onto the preserved pre-optimization models
 * (RefCache + RefReplayEngine). Bit-identical results by construction;
 * used as the baseline in regression tests and A/B benchmarks.
 */
MachineConfig asReference(MachineConfig m);

/**
 * The same machine with event-driven cycle skipping forced on or off
 * (overriding the MSIM_EVENT_SKIP default). Bit-identical results by
 * construction; used by the skip-mode fuzzer and A/B benchmarks.
 */
MachineConfig withEventSkip(MachineConfig m, bool on);

/**
 * Scoped process-wide host-SIMD dispatch override for A/B runs: while
 * the returned guard is alive, every engine constructed dispatches the
 * kernel table at the host's detected level (on) or forced scalar
 * (off), overriding the MSIM_SIMD default. Bit-identical results by
 * construction (see common/simd.hh); used by the batch fuzzer, the
 * differential tests and the lane-stepping A/B benchmarks. Install the
 * guard before constructing engines — replayTrace/replayTraceBatch
 * construct per call, so wrapping the call is sufficient.
 */
simd::ScopedLevel withSimd(bool on);

} // namespace msim::sim

#endif // MSIM_SIM_MACHINE_HH_
