#include "sim/sampled.hh"

#include <algorithm>

#include "common/stats.hh"
#include "cpu/branch_predictor.hh"
#include "cpu/core.hh"
#include "cpu/replay_engine.hh"
#include "isa/inst.hh"
#include "mem/hierarchy.hh"
#include "obs/metrics.hh"
#include "obs/session.hh"
#include "obs/site.hh"
#include "obs/span.hh"
#include "obs/timeline.hh"

namespace msim::sim
{

namespace
{

#if MSIM_OBS_ENABLED

struct SampledMetrics
{
    obs::MetricId runs = obs::metricId("sampled.runs",
                                       obs::MetricKind::Counter);
    obs::MetricId fallbacks = obs::metricId("sampled.exact_fallbacks",
                                            obs::MetricKind::Counter);
    obs::MetricId chunks = obs::metricId("sampled.measured_chunks",
                                         obs::MetricKind::Counter);
    obs::MetricId cpiCiRel = obs::metricId("sampled.cpi_ci95_rel",
                                           obs::MetricKind::Dist);
    obs::MetricId measuredFrac = obs::metricId("sampled.measured_frac",
                                               obs::MetricKind::Dist);
};

const SampledMetrics &
sampledMetrics()
{
    static const SampledMetrics m;
    return m;
}

/** Approximate per-run timeline (see TimelineRecorder::setApproximate). */
obs::TimelineRecorder *
newSampledTimeline(const MachineConfig &machine)
{
    obs::Session *s = obs::Session::active();
    if (!s)
        return nullptr;
    std::string label = obs::runLabel();
    if (label.empty())
        label = machine.label;
    else
        label += "@" + machine.label;
    obs::TimelineRecorder *tl = s->newTimeline(std::move(label));
    if (tl)
        tl->setApproximate(true);
    return tl;
}

#endif // MSIM_OBS_ENABLED

/** Fill every estimate from a complete exact result (ci95 stays 0). */
void
fillFromExact(SampledResult &r, const RunResult &full)
{
    const cpu::ExecStats &e = full.exec;
    const double instr = static_cast<double>(e.retired);
    r.cpi.mean = e.retired
                     ? static_cast<double>(e.cycles) / instr
                     : 0.0;
    r.cycles.mean = static_cast<double>(e.cycles);
    r.fracBusy.mean = e.fracBusy();
    r.fracFuStall.mean = e.fracFuStall();
    r.fracMemL1Hit.mean = e.fracMemL1Hit();
    r.fracMemL1Miss.mean = e.fracMemL1Miss();
    r.mispredictRate.mean = e.mispredictRate();
    const u64 loads = e.loadsL1 + e.loadsL2 + e.loadsMem;
    r.loadL1MissRate.mean =
        loads ? static_cast<double>(e.loadsL2 + e.loadsMem) / loads : 0.0;
    r.measuredInstructions = e.retired;
}

Estimate
estimateOf(const MeanVar &mv)
{
    return {mv.mean(), mv.ci95()};
}

} // namespace

SampledPlan
prepareSampled(const prog::RecordedTrace &trace, const SampledParams &params)
{
    SampledPlan plan;
    plan.trace_ = &trace;
    plan.params_ = params;

    // Degenerate knobs clamp to the smallest meaningful value rather
    // than fatal(): the fuzzer explores the parameter space freely.
    const u64 chunk = std::max<u64>(1, params.chunkInstructions);
    const u64 interval = std::max<u64>(1, params.intervalChunks);
    const u64 n = trace.instCount();

    // Branch outcomes by dynamic ordinal.  Scalar extraction: this runs
    // once per plan, and keeping it off the SIMD dispatch table makes
    // the plan trivially invariant across MSIM_SIMD levels.
    const u8 *ops = trace.opCol().data();
    const u8 *flags = trace.flagsCol().data();
    plan.branchTaken_.reserve(trace.branchPcCol().size());
    for (u64 i = 0; i < n; ++i)
        if (static_cast<isa::Op>(ops[i]) == isa::Op::Branch)
            plan.branchTaken_.push_back(
                (flags[i] & isa::kFlagTaken) ? 1 : 0);

    // Stratified systematic sampling: one measured chunk per interval
    // of `interval` chunks, at a per-interval pseudo-random offset.
    // Measuring a fixed slot (always the interval's first chunk)
    // aliases badly with the kernels' periodic phase structure —
    // per-scanline and per-macroblock periods near the sampling period
    // put the estimate off by several percent in whichever direction
    // the fixed slot happens to land.  The offsets come from a fixed
    // splitmix64 sequence, so the plan is a pure function of
    // (trace, params): bit-reproducible everywhere, no run-to-run
    // jitter.
    const u64 fullChunks = n / chunk;
    const auto offsetIn = [](u64 k, u64 width) {
        u64 z = (k + 1) * 0x9e3779b97f4a7c15ull;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return (z ^ (z >> 31)) % width;
    };

    // Pin every measured chunk with one incremental Mark walk: the
    // cursor only ever moves forward, so the whole preparation is a
    // single O(n) pass regardless of how many chunks are measured.
    // Only *full* chunks are measured — a short tail would weight the
    // per-chunk CPI samples unevenly.
    prog::RecordedTrace::Mark cursor;
    u64 prevMeasuredMemEnd = 0;
    for (u64 stratum = 0; stratum * interval < fullChunks; ++stratum) {
        const u64 width =
            std::min(interval, fullChunks - stratum * interval);
        const u64 begin =
            (stratum * interval + offsetIn(stratum, width)) * chunk;
        cursor = trace.advance(cursor, begin);
        const prog::RecordedTrace::Mark endMark =
            trace.advance(cursor, begin + chunk);

        SampledPlan::MeasuredChunk mc;
        mc.slice = trace.slice(cursor, begin + chunk);
        mc.begin = begin;
        mc.end = begin + chunk;
        mc.branchOffset = cursor.branches;
        mc.memBegin = cursor.memOps;
        // The warm window reaches back up to warmupMemOps but never
        // past the previous measured chunk: its timed accesses already
        // left the tags in exactly the warmed state.
        const u64 span = std::min<u64>(params.warmupMemOps, cursor.memOps);
        mc.warmMemBegin = std::max(prevMeasuredMemEnd,
                                   cursor.memOps - span);
        prevMeasuredMemEnd = endMark.memOps;
        plan.chunks_.push_back(std::move(mc));
        cursor = endMark;
    }
    return plan;
}

SampledResult
replayTraceSampled(const SampledPlan &plan, const MachineConfig &machine)
{
    const prog::RecordedTrace &trace = plan.trace();
    SampledResult r;
    r.instructions = trace.instCount();

    // Machines the sampler cannot drive: in-order cores (ReplayEngine
    // is the out-of-order scheduler), the reference replay engine, and
    // the reference cache model (kept verbatim; it grows no
    // warm/quiesce surface).  All fall back to exact replay — sampling
    // never silently changes what a configuration means.
    const bool canSample = machine.core.outOfOrder &&
                           !machine.core.referenceEngine &&
                           machine.mem.model == mem::CacheModel::Fast;

#if MSIM_OBS_ENABLED
    obs::count(sampledMetrics().runs);
    MSIM_OBS_SPAN(span, "replay.sampled", machine.label);
#endif

    if (plan.exactFallback() || !canSample) {
#if MSIM_OBS_ENABLED
        obs::count(sampledMetrics().fallbacks);
#endif
        r.exact = true;
        r.full = replayTrace(trace, machine);
        fillFromExact(r, r.full);
        return r;
    }

    // The prediction sequence is a pure function of the dynamic branch
    // stream and the table size (same argument as BatchReplayEngine),
    // so one whole-trace predictor pass yields perfectly warmed branch
    // outcomes for every measured chunk via an offset into the column.
    const std::vector<u8> &taken = plan.branchTaken();
    std::vector<u8> mispredicts(taken.size());
    {
        cpu::BranchPredictor predictor(machine.core.predictorEntries);
        const u32 *pcs = trace.branchPcCol().data();
        for (size_t j = 0; j < taken.size(); ++j)
            mispredicts[j] =
                predictor.predictAndUpdate(pcs[j], taken[j] != 0) ? 0 : 1;
    }

    mem::Hierarchy memory(machine.mem);

    // Measured chunks always replay with event-skip on, whatever the
    // machine (or MSIM_EVENT_SKIP) says.  Skipping is a pure-performance
    // knob for the integer counters, but the *fractional* stall
    // attribution of a skipped span is one bulk add where per-cycle
    // stepping adds 1.0 repeatedly — with a non-power-of-two retire
    // width the accumulator carries non-dyadic fractions and the two
    // association orders can double-round a bit apart.  Whole-trace
    // replays never see it (the accumulator lives at magnitudes where
    // binade crossings are rare), but chunk-sized replays keep it small
    // where crossings are dense.  Canonicalizing the knob makes the
    // estimate a pure function of (plan, machine) again.
    cpu::CoreConfig measuredCore = machine.core;
    measuredCore.eventSkip = true;

#if MSIM_OBS_ENABLED
    obs::TimelineRecorder *tl = newSampledTimeline(machine);
    double estCycles = 0.0;
    double estBusy = 0.0, estFu = 0.0, estHit = 0.0, estMiss = 0.0;
    // Per-kernel attribution, sampled flavor: each measured chunk's
    // exact per-site ticks are scaled by the span the chunk represents
    // and summed — approximate estimates, flagged by the timeline's
    // approximate bit like every other sampled quantity.
    obs::SiteAttribution chunkSa;
    std::vector<obs::SiteRow> siteEst;
    const unsigned retireW = measuredCore.retireWidth
                                 ? measuredCore.retireWidth
                                 : measuredCore.issueWidth;
#endif

    MeanVar cpi, fracBusy, fracFu, fracHit, fracMiss, misRate, loadMiss;
    const std::vector<SampledPlan::MeasuredChunk> &chunks = plan.chunks();
    for (size_t c = 0; c < chunks.size(); ++c) {
        const SampledPlan::MeasuredChunk &mc = chunks[c];

        // Fast-forward: functional warming of the tag state over the
        // window before the chunk, then reset the timing-coupled state
        // so the chunk's fresh engine (clock restarting at 0) sees
        // idle ports and MSHRs but warmed tags.
        cpu::ReplayEngine::warmMemory(trace, mc.warmMemBegin, mc.memBegin,
                                      memory);
        memory.quiesce();

        cpu::ReplayEngine engine(measuredCore, memory);
        engine.bind(mc.slice);
        engine.setSharedMispredicts(mispredicts.data() + mc.branchOffset);
#if MSIM_OBS_ENABLED
        if (tl) {
            chunkSa.reset(trace.siteNames().size(), retireW);
            engine.setSiteAttribution(&chunkSa);
        }
#endif
        engine.advanceTo(mc.slice.instCount());
        const cpu::ExecStats st = engine.takeStats();

        const double instr = static_cast<double>(st.retired);
        cpi.add(static_cast<double>(st.cycles) / instr);
        fracBusy.add(st.fracBusy());
        fracFu.add(st.fracFuStall());
        fracHit.add(st.fracMemL1Hit());
        fracMiss.add(st.fracMemL1Miss());
        misRate.add(st.mispredictRate());
        const u64 loads = st.loadsL1 + st.loadsL2 + st.loadsMem;
        loadMiss.add(loads ? static_cast<double>(st.loadsL2 + st.loadsMem) /
                                 loads
                           : 0.0);
        r.measuredInstructions += st.retired;

#if MSIM_OBS_ENABLED
        if (tl) {
            // One estimated-trajectory row per measured chunk: the
            // chunk's measurements scaled to the span it represents
            // (its start to the next measured start, or trace end).
            const u64 coveredEnd =
                c + 1 < chunks.size() ? chunks[c + 1].begin : r.instructions;
            const double scale =
                static_cast<double>(coveredEnd - mc.begin) / instr;
            estCycles += static_cast<double>(st.cycles) * scale;
            estBusy += st.busy * scale;
            estFu += st.fuStall * scale;
            estHit += st.memL1Hit * scale;
            estMiss += st.memL1Miss * scale;
            tl->sample(static_cast<Cycle>(estCycles), coveredEnd, estBusy,
                       estFu, estHit, estMiss, /*window=*/0, /*memq=*/0);

            std::vector<obs::SiteRow> rows = obs::sitesFromAttribution(
                chunkSa, trace.siteNames(), scale);
            if (siteEst.empty()) {
                siteEst = std::move(rows);
            } else {
                for (size_t s = 0; s < rows.size(); ++s) {
                    siteEst[s].retired += rows[s].retired;
                    siteEst[s].busy += rows[s].busy;
                    siteEst[s].fuStall += rows[s].fuStall;
                    siteEst[s].memL1Hit += rows[s].memL1Hit;
                    siteEst[s].memL1Miss += rows[s].memL1Miss;
                }
            }
        }
#endif
    }

    r.measuredChunks = chunks.size();
    r.cpi = estimateOf(cpi);
    const double n = static_cast<double>(r.instructions);
    r.cycles = {r.cpi.mean * n, r.cpi.ci95 * n};
    r.fracBusy = estimateOf(fracBusy);
    r.fracFuStall = estimateOf(fracFu);
    r.fracMemL1Hit = estimateOf(fracHit);
    r.fracMemL1Miss = estimateOf(fracMiss);
    r.mispredictRate = estimateOf(misRate);
    r.loadL1MissRate = estimateOf(loadMiss);

#if MSIM_OBS_ENABLED
    obs::count(sampledMetrics().chunks, r.measuredChunks);
    if (r.cpi.mean > 0.0)
        obs::observe(sampledMetrics().cpiCiRel, r.cpi.ci95 / r.cpi.mean);
    if (r.instructions)
        obs::observe(sampledMetrics().measuredFrac,
                     static_cast<double>(r.measuredInstructions) /
                         static_cast<double>(r.instructions));
    if (tl) {
        obs::RunSummary s;
        s.cycles = static_cast<u64>(r.cycles.mean);
        s.instructions = r.instructions;
        s.busy = estBusy;
        s.fuStall = estFu;
        s.memL1Hit = estHit;
        s.memL1Miss = estMiss;
        tl->setSites(std::move(siteEst));
        tl->finish(s);
    }
#endif
    return r;
}

SampledResult
replayTraceSampled(const prog::RecordedTrace &trace,
                   const MachineConfig &machine, const SampledParams &params)
{
    return replayTraceSampled(prepareSampled(trace, params), machine);
}

} // namespace msim::sim
