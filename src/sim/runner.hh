/**
 * @file
 * Glue that wires a workload generator to a machine: trace builder ->
 * pipeline core -> cache hierarchy, with a consolidated result record.
 */

#ifndef MSIM_SIM_RUNNER_HH_
#define MSIM_SIM_RUNNER_HH_

#include <functional>

#include "cpu/accounting.hh"
#include "prog/trace_builder.hh"
#include "sim/machine.hh"

namespace msim::sim
{

/** Snapshot of one cache level's statistics. */
struct CacheSnap
{
    u64 accesses = 0;
    u64 hits = 0;
    u64 misses = 0;
    u64 writebacks = 0;
    u64 prefetchDrops = 0;
    u64 combined = 0;
    u64 blocked = 0;
    double missRate = 0.0;
    double mshrMeanOccupancy = 0.0;
    unsigned mshrPeakOccupancy = 0;
    double mshrFracAtLeast2 = 0.0;
    double mshrFracAtLeast5 = 0.0;
    double loadOverlapMean = 0.0;
};

/** Everything measured in one simulation run. */
struct RunResult
{
    cpu::ExecStats exec;
    CacheSnap l1;
    CacheSnap l2;
    u64 tbInstrs = 0;

    /** Dynamic VIS instruction count and its rearrangement/alignment
     *  subset (paper Section 3.2.3 overhead metric). */
    u64 visOps = 0;
    u64 visOverheadOps = 0;

    double
    visOverheadFrac() const
    {
        return visOps ? static_cast<double>(visOverheadOps) / visOps
                      : 0.0;
    }
};

/** A workload: everything the benchmark emits through the builder. */
using Generator = std::function<void(prog::TraceBuilder &)>;

/** Run @p generate on @p machine and collect the results. */
RunResult runTrace(const Generator &generate,
                   const MachineConfig &machine);

} // namespace msim::sim

#endif // MSIM_SIM_RUNNER_HH_
