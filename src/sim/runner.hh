/**
 * @file
 * Glue that wires a workload generator to a machine: trace builder ->
 * pipeline core -> cache hierarchy, with a consolidated result record.
 */

#ifndef MSIM_SIM_RUNNER_HH_
#define MSIM_SIM_RUNNER_HH_

#include <functional>
#include <span>
#include <vector>

#include "cpu/accounting.hh"
#include "prog/recorded_trace.hh"
#include "prog/trace_builder.hh"
#include "sim/machine.hh"

namespace msim::sim
{

/** Snapshot of one cache level's statistics. */
struct CacheSnap
{
    u64 accesses = 0;
    u64 hits = 0;
    u64 misses = 0;
    u64 writebacks = 0;
    u64 prefetchDrops = 0;
    u64 combined = 0;
    u64 blocked = 0;
    double missRate = 0.0;
    double mshrMeanOccupancy = 0.0;
    unsigned mshrPeakOccupancy = 0;
    double mshrFracAtLeast2 = 0.0;
    double mshrFracAtLeast5 = 0.0;
    double loadOverlapMean = 0.0;
};

/** Everything measured in one simulation run. */
struct RunResult
{
    cpu::ExecStats exec;
    CacheSnap l1;
    CacheSnap l2;
    u64 tbInstrs = 0;

    /** Dynamic VIS instruction count and its rearrangement/alignment
     *  subset (paper Section 3.2.3 overhead metric). */
    u64 visOps = 0;
    u64 visOverheadOps = 0;

    double
    visOverheadFrac() const
    {
        return visOps ? static_cast<double>(visOverheadOps) / visOps
                      : 0.0;
    }
};

/** A workload: everything the benchmark emits through the builder. */
using Generator = std::function<void(prog::TraceBuilder &)>;

/** Run @p generate on @p machine and collect the results. */
RunResult runTrace(const Generator &generate,
                   const MachineConfig &machine);

/**
 * Run @p generate once with a recording sink instead of a timing core,
 * capturing the dynamic instruction stream. The stream depends only on
 * (generator, skewArrays, visFeatures) — never on core or memory
 * timing — so one capture serves every machine config that shares
 * those knobs (see DESIGN.md, "Trace capture & replay").
 */
prog::RecordedTrace recordTrace(const Generator &generate,
                                bool skewArrays,
                                prog::VisFeatures visFeatures);

/**
 * Replay a captured trace against @p machine without re-running the
 * benchmark's functional computation. Bit-identical to runTrace() with
 * the generator that produced @p trace, provided machine.skewArrays and
 * machine.visFeatures match the capture (enforced by test_replay).
 */
RunResult replayTrace(const prog::RecordedTrace &trace,
                      const MachineConfig &machine);

/**
 * Replay one captured trace against a whole sweep group in a single
 * trace traversal (cpu::BatchReplayEngine): the trace streams in
 * chunks, each chunk is decoded once, and every machine steps through
 * it before the traversal advances.  Results are bit-identical to
 * calling replayTrace() per machine, in the same order (enforced by
 * test_batch_replay and `audit_fuzz --mode batch`); machines the
 * lockstep engine cannot drive (in-order cores, the reference engine)
 * transparently fall back to sequential replayTrace().
 *
 * @param chunkInstructions  Lockstep granularity; 0 means the engine
 *                           default.
 */
std::vector<RunResult> replayTraceBatch(
    const prog::RecordedTrace &trace,
    std::span<const MachineConfig> machines, u64 chunkInstructions = 0);

} // namespace msim::sim

#endif // MSIM_SIM_RUNNER_HH_
