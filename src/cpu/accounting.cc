#include "cpu/accounting.hh"

#include <cstdio>

namespace msim::cpu
{

double
ExecStats::mispredictRate() const
{
    return branches ? static_cast<double>(mispredicts) / branches : 0.0;
}

double
ExecStats::fracBusy() const
{
    return cycles ? busy / cycles : 0.0;
}

double
ExecStats::fracFuStall() const
{
    return cycles ? fuStall / cycles : 0.0;
}

double
ExecStats::fracMemL1Hit() const
{
    return cycles ? memL1Hit / cycles : 0.0;
}

double
ExecStats::fracMemL1Miss() const
{
    return cycles ? memL1Miss / cycles : 0.0;
}

std::string
ExecStats::summary() const
{
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "cycles=%llu retired=%llu ipc=%.2f busy=%.0f%% fu=%.0f%% "
                  "l1hit=%.0f%% l1miss=%.0f%% mispred=%.1f%%",
                  static_cast<unsigned long long>(cycles),
                  static_cast<unsigned long long>(retired),
                  cycles ? static_cast<double>(retired) / cycles : 0.0,
                  100.0 * fracBusy(), 100.0 * fracFuStall(),
                  100.0 * fracMemL1Hit(), 100.0 * fracMemL1Miss(),
                  100.0 * mispredictRate());
    return buf;
}

} // namespace msim::cpu
