#include "cpu/batch_replay_engine.hh"

#include <algorithm>
#include <bit>

#include "audit/invariants.hh"
#include "common/logging.hh"
#include "common/simd.hh"
#include "cpu/core.hh"
#include "mem/batch.hh"
#include "obs/metrics.hh"
#include "obs/span.hh"

namespace msim::cpu
{

#if MSIM_OBS_ENABLED
namespace
{

/** Batch-engine SIMD instrumentation: dispatch level + kernel calls. */
struct BatchSimdMetrics
{
    obs::MetricId level, minActive, eqByte, testBit, popcount;
};

const BatchSimdMetrics &
batchSimdMetrics()
{
    static const BatchSimdMetrics m = {
        obs::metricId("batch.simd_level", obs::MetricKind::Gauge),
        obs::metricId("simd.min_active_lane", obs::MetricKind::Counter),
        obs::metricId("simd.eq_byte_bitmap", obs::MetricKind::Counter),
        obs::metricId("simd.testbit_bitmap", obs::MetricKind::Counter),
        obs::metricId("simd.popcount_words", obs::MetricKind::Counter),
    };
    return m;
}

} // namespace
#endif

bool
BatchReplayEngine::supports(const CoreConfig &config)
{
    // In-order configurations replay inside PipelineCore, and the
    // reference engine exists precisely to be driven sequentially.
    // The fused decoded cycle loop (ReplayEngine::advanceDecoded)
    // additionally needs the window ring to fit one 64-bit eligibility
    // bitmap per unit class — which also keeps every live producer
    // within u16 source-delta range — and a power-of-two retire width
    // so its reassociated stall accounting stays exact (see the proof
    // on advanceDecoded).
    const unsigned rw =
        config.retireWidth ? config.retireWidth : config.issueWidth;
    return config.outOfOrder && !config.referenceEngine &&
           config.windowSize <= 64 && std::has_single_bit(rw);
}

BatchReplayEngine::BatchReplayEngine(const prog::RecordedTrace &trace,
                                     std::span<const Lane> lanes,
                                     u64 chunkInstructions)
    : trace_(trace), chunk_(std::max<u64>(1, chunkInstructions)),
      lanes_(lanes.begin(), lanes.end())
{
    for (unsigned n = 0; n < isa::kNumOps; ++n) {
        const auto op = static_cast<isa::Op>(n);
        unsigned mkBits;
        switch (op) {
          case isa::Op::Load: mkBits = prog::kMemLoad; break;
          case isa::Op::Store: mkBits = prog::kMemStore; break;
          case isa::Op::Prefetch: mkBits = prog::kMemPrefetch; break;
          default: mkBits = ReplayEngine::kDecMemNone; break;
        }
        metaTable_[n] = static_cast<u8>(
            static_cast<unsigned>(isa::fuClassOf(op)) |
            (mkBits << ReplayEngine::kDecMemShift));
    }

    // One taken-bit extraction pass over the op/flags columns feeds the
    // shared predictor passes and the per-chunk decode.  Both columns
    // are compressed to bitmaps with one compare->movemask sweep each
    // (16-32 bytes per vector op instead of a per-instruction branch),
    // then the branch-ordered taken vector is filled by iterating only
    // the set bits of the branch bitmap — ascending word/bit order
    // preserves program order exactly as the scalar loop did.
    const u8 *ops = trace_.opCol().data();
    const u8 *flags = trace_.flagsCol().data();
    const u64 n = trace_.instCount();
    const simd::Ops &sv = simd::ops();
    const u64 nw = (n + 63) / 64;
    std::vector<u64> brWords(nw), takenWords(nw);
    if (n != 0) {
        sv.eqByteBitmap(ops, n, static_cast<u8>(isa::Op::Branch),
                        brWords.data());
        sv.testBitBitmap(flags, n, isa::kFlagTaken, takenWords.data());
    }
    const u64 nb = sv.popcountWords(brWords.data(), nw);
    MSIM_AUDIT_CHECK(nb == trace_.branchPcCol().size(),
                     "branch bitmap count %llu != branch PC column %zu",
                     static_cast<unsigned long long>(nb),
                     trace_.branchPcCol().size());
#if MSIM_OBS_ENABLED
    const BatchSimdMetrics &bsm = batchSimdMetrics();
    obs::gaugeSet(bsm.level,
                  static_cast<double>(static_cast<u8>(sv.level)));
    obs::count(bsm.eqByte);
    obs::count(bsm.testBit);
    obs::count(bsm.popcount);
#endif
    branchTaken_.resize(nb);
    u64 j = 0;
    for (u64 w = 0; w < nw; ++w) {
        const u64 tw = takenWords[w];
        for (u64 b = brWords[w]; b != 0; b &= b - 1) {
            const unsigned bit = std::countr_zero(b);
            branchTaken_[j++] = static_cast<u8>((tw >> bit) & 1);
        }
    }

    engines_.reserve(lanes_.size());
    for (const Lane &lane : lanes_) {
        if (!supports(*lane.config))
            panic("batch replay lane config not supported");
        margin_ = std::max(margin_, lane.config->issueWidth);
        engines_.emplace_back(*lane.config, *lane.memory);
        engines_.back().bind(trace_);

        // The prediction sequence is a pure function of the dynamic
        // branch stream and the table size, so one predictor pass per
        // distinct predictorEntries serves every lane with that size.
        const unsigned entries = lane.config->predictorEntries;
        auto it = std::find_if(
            mispredicts_.begin(), mispredicts_.end(),
            [entries](const auto &p) { return p.first == entries; });
        if (it == mispredicts_.end()) {
            const u32 *pcs = trace_.branchPcCol().data();
            const u64 nb = branchTaken_.size();
            std::vector<u8> mis(nb);
            BranchPredictor pred(entries);
            for (u64 j = 0; j < nb; ++j) {
                mis[j] =
                    pred.predictAndUpdate(pcs[j], branchTaken_[j] != 0)
                        ? 0
                        : 1;
            }
            mispredicts_.emplace_back(entries, std::move(mis));
            it = mispredicts_.end() - 1;
        }
        engines_.back().setSharedMispredicts(it->second.data());
    }

    decoded_.reserve(std::min<u64>(n, chunk_ + margin_));
    laneRunning_.assign(lanes_.size(), 1);
    laneCursor_.assign(lanes_.size(), 0);
    laneWindow_.assign(lanes_.size(), 0);
}

u64
BatchReplayEngine::minActiveLane(std::span<const u8> running,
                                 std::span<const u64> values)
{
    // Tolerate mismatched spans defensively: sweep only the shorter
    // prefix so a caller slicing the progress columns can never read
    // out of bounds through the kernel.
    const size_t k = std::min(running.size(), values.size());
#if MSIM_OBS_ENABLED
    obs::count(batchSimdMetrics().minActive);
#endif
    return simd::ops().minActiveU64(running.data(), values.data(), k);
}

void
BatchReplayEngine::decodeChunk(u64 start, u64 end, u64 limit)
{
    const u8 *ops = trace_.opCol().data();
    const u8 *flags = trace_.flagsCol().data();
    const u8 *numSrcs = trace_.numSrcsCol().data();
    const u32 *srcProds = trace_.srcProdCol().data();

    decoded_.resize(limit - start);
    ReplayEngine::DecodedInst *out = decoded_.data();
    u64 sc = srcCursorNext_; // CSR offset of instruction `start`
    u64 mc = memCursorNext_; // memory-lane ordinal of instruction `start`
    chunkMemBegin_ = mc;
    for (u64 i = start; i < limit; ++i) {
        ReplayEngine::DecodedInst &d = out[i - start];
        const unsigned opn = ops[i];
        u8 meta = metaTable_[opn];
        if (static_cast<isa::Op>(opn) == isa::Op::Branch &&
            (flags[i] & isa::kFlagTaken))
            meta |= ReplayEngine::kDecTakenBit;
        const unsigned ns = numSrcs[i];
        d.op = static_cast<u8>(opn);
        d.meta = meta | static_cast<u8>(ns << ReplayEngine::kDecSrcShift);
        for (unsigned k = 0; k < ns; ++k) {
            const u32 prod = srcProds[sc + k];
            // Distance 0 encodes both "no producer" and producers too
            // far back for u16 — outside every supported window either
            // way, so dispatch treats them identically (always ready).
            u64 delta = 0;
            if (prod != prog::kNoProducer) {
                delta = i - prod;
                if (delta > 0xffff)
                    delta = 0;
            }
            d.srcDelta[k] = static_cast<u16>(delta);
        }
        sc += ns;
        if (((meta >> ReplayEngine::kDecMemShift) & 3u) !=
            ReplayEngine::kDecMemNone)
            ++mc;
        if (i + 1 == end) {
            srcCursorNext_ = sc; // next chunk decodes from `end`
            memCursorNext_ = mc;
        }
    }
    chunkMemEnd_ = mc; // covers the margin past `end` too
}

void
BatchReplayEngine::run()
{
    const u64 n = trace_.instCount();
#if MSIM_AUDIT_ENABLED
    u64 prevEnd = 0;
    bool firstChunk = true;
#endif
    u64 start = 0;
    for (;;) {
        const u64 end = std::min(start + chunk_, n);
        const u64 limit = std::min(end + margin_, n);
        MSIM_AUDIT_CHECK((end > prevEnd || (firstChunk && end == 0)) &&
                             end <= n,
                         "chunk boundary %llu after %llu (trace %llu)",
                         static_cast<unsigned long long>(end),
                         static_cast<unsigned long long>(prevEnd),
                         static_cast<unsigned long long>(n));
#if MSIM_AUDIT_ENABLED
        prevEnd = end;
        firstChunk = false;
#endif
        {
            MSIM_OBS_SPAN(span, "batch.decode");
            decodeChunk(start, end, limit);
        }
        // The shared line columns must be live before any lane issues
        // an access keyed by an ordinal in this chunk's window.
        if (batchMem_)
            batchMem_->setChunkWindow(chunkMemBegin_, chunkMemEnd_);
        MSIM_OBS_SPAN(span, "batch.chunk");
        for (size_t k = 0; k < engines_.size(); ++k) {
            if (!laneRunning_[k])
                continue;
            engines_[k].setDecodedWindow(decoded_.data(), start);
            const bool finished = engines_[k].advanceTo(end);
            if (finished)
                laneRunning_[k] = 0;
            laneCursor_[k] = engines_[k].fetchPos();
            laneWindow_[k] = engines_[k].windowInFlight();
            MSIM_AUDIT_CHECK(
                finished
                    ? (engines_[k].fetchPos() == n &&
                       engines_[k].windowInFlight() == 0)
                    : (engines_[k].fetchPos() >= end &&
                       engines_[k].fetchPos() <
                           end + lanes_[k].config->issueWidth),
                "lane %zu cursor %llu window %llu at chunk end %llu",
                k, static_cast<unsigned long long>(engines_[k].fetchPos()),
                static_cast<unsigned long long>(
                    engines_[k].windowInFlight()),
                static_cast<unsigned long long>(end));
            MSIM_AUDIT_CHECK(
                engines_[k].windowInFlight() <=
                    lanes_[k].config->windowSize,
                "lane %zu in-flight %llu > window %u", k,
                static_cast<unsigned long long>(
                    engines_[k].windowInFlight()),
                lanes_[k].config->windowSize);
        }
        // Lockstep invariant over the whole group: no running lane's
        // cursor is behind the chunk boundary just driven.
        MSIM_AUDIT_CHECK(minActiveLane(laneRunning_, laneCursor_) >= end,
                         "running lane cursor %llu behind chunk end %llu",
                         static_cast<unsigned long long>(
                             minActiveLane(laneRunning_, laneCursor_)),
                         static_cast<unsigned long long>(end));
        if (end == n)
            break;
        start = end;
    }
}

ExecStats
BatchReplayEngine::takeStats(size_t lane)
{
    return engines_[lane].takeStats();
}

} // namespace msim::cpu
