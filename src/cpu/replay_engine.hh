/**
 * @file
 * Compact out-of-order replay engine for recorded traces.
 *
 * PipelineCore is the reference timing model; it keeps a deque of
 * full-width DynInst records and rebuilds an isa::Inst per dynamic
 * instruction when replaying.  That generality costs more than the
 * simulation itself once a trace is recorded: replay needs no fetch
 * buffer, no store-forwarding ring scan, and no per-instruction
 * allocation.
 *
 * ReplayEngine is an exact transliteration of the reference
 * out-of-order scheduler onto replay-shaped data structures:
 *
 *  - The instruction window is a fixed ring of lean Slot records
 *    (the window can never exceed CoreConfig::windowSize), indexed by
 *    sequence number; no deque churn, the whole window stays cache-hot.
 *  - Operands are read straight from the trace's structure-of-arrays
 *    columns; no isa::Inst is materialized.  Memory operands come from
 *    the trace's dense memory lane (kind, address, aux), advanced by a
 *    single cursor.
 *  - Issue selection is dependency-driven: an instruction enters the
 *    ready set only when its last unknown source producer issues, via
 *    per-slot waiter chains.  The eligible set is one sequence-ordered
 *    queue per unit class; each cycle issues the minimum-sequence head
 *    among classes with a free unit, so a class whose only unit is
 *    saturated parks its whole queue at O(1) per cycle instead of
 *    being rescanned entry by entry.  This reproduces the reference
 *    program-order scan exactly: availability is resolved lazily at
 *    the first touch of a class each cycle (no same-class issue can
 *    precede it), re-resolved only after an issue from that class
 *    (nothing else changes its units within a cycle), and picking the
 *    global minimum sequence among free-class heads yields the same
 *    issue set in the same ascending order as scanning all eligible
 *    instructions and skipping busy classes.
 *  - Dispatch feeds already-ready instructions straight into their
 *    class queue (their sequence number exceeds everything present),
 *    bypassing the ready heap.  Instructions becoming ready exactly
 *    next cycle — the dominant wake-up case — take a staging vector
 *    drained unconditionally at the next execute step; only farther
 *    futures pay for heap ordering.
 *  - Event queues (memory-queue slots, speculative branches) are
 *    sorted time rings instead of binary heaps (event times correlate
 *    with the advancing cycle, so inserts land at the tail), drained
 *    lazily at the points that read them — the dispatch gates and the
 *    fast-forward bound — instead of every cycle.  The drained counts
 *    at those points equal the reference's start-of-cycle values, so
 *    every gate decision and fast-forward distance is unchanged.
 *  - Store-to-load forwarding uses the trace's precomputed candidate
 *    store plus an O(1) ring-residency comparison.
 *
 * Every cycle performs the same retire / execute / dispatch /
 * accounting sequence with the same fast-forward rule as
 * PipelineCore::step(), so results are bit-identical to feeding the
 * trace live (enforced by tests/test_replay.cc and
 * tests/test_mem_fastpath.cc, the latter against the preserved
 * pre-optimization RefReplayEngine).  The in-order configurations
 * replay inside PipelineCore itself, where program-order issue makes
 * the reference scan already cheap.
 */

#ifndef MSIM_CPU_REPLAY_ENGINE_HH_
#define MSIM_CPU_REPLAY_ENGINE_HH_

#include <algorithm>
#include <vector>

#include "audit/invariants.hh"
#include "common/simd.hh"
#include "cpu/accounting.hh"
#include "cpu/branch_predictor.hh"
#include "isa/timing.hh"
#include "mem/hierarchy.hh"
#include "obs/site.hh"
#include "obs/timeline.hh"
#include "prog/recorded_trace.hh"

namespace msim::cpu
{

struct CoreConfig;

/** See file comment. One engine instance runs one trace once. */
class ReplayEngine
{
  public:
    /**
     * @param config  Pipeline parameters; must be an out-of-order
     *                configuration.
     * @param memory  The memory port accesses are issued to.
     */
    ReplayEngine(const CoreConfig &config, mem::MemoryPort &memory);

    /** Replay @p trace to completion and return the execution stats. */
    ExecStats run(const prog::RecordedTrace &trace);

    // --- Batched lockstep driving (cpu::BatchReplayEngine) -------------
    //
    // The batch engine replays one trace against many machine configs by
    // streaming it in chunks: bind() once, then advanceTo() per chunk
    // boundary, then takeStats() after the final chunk.  run() is
    // exactly bind + advanceTo(instCount) + takeStats, so the paused
    // path cannot drift from the sequential one.

    /**
     * One instruction's dispatch facts, decoded once per chunk by the
     * batch driver and shared by every lane (see BatchReplayEngine):
     * resolved unit class and memory kind, the branch outcome, and the
     * source producers as backward distances.  A delta of 0 means "no
     * producer in any legal window": real producers closer than 2^16
     * instructions are stored exactly, farther ones are clamped to 0,
     * which is equivalent because windowSize < 2^16 - 1 (enforced by
     * BatchReplayEngine::supports) keeps them outside every window.
     */
    struct DecodedInst
    {
        u8 op;           ///< isa::Op
        u8 meta;         ///< cls | memKind<<3 (3 = none) | taken | nsrcs<<6
        u16 srcDelta[3]; ///< per source: own index minus producer index
    };

    static constexpr unsigned kDecClsMask = 0x7;
    static constexpr unsigned kDecMemShift = 3;
    static constexpr unsigned kDecMemNone = 3;
    static constexpr u8 kDecTakenBit = 1u << 5;
    static constexpr unsigned kDecSrcShift = 6;

    /** Attach @p trace's columns; resets nothing else (call once). */
    void bind(const prog::RecordedTrace &trace);

    /**
     * Point dispatch at decoded metadata for instructions [base, ...):
     * decoded[i - base] describes instruction i. While a decoded window
     * is set, dispatch reads it instead of the raw op/flags/source
     * columns and takes branch outcomes from the shared mispredict
     * column instead of running a private predictor.
     */
    void
    setDecodedWindow(const DecodedInst *decoded, u64 base)
    {
        decoded_ = decoded;
        decodedBase_ = base;
    }

    /**
     * Shared per-branch outcome column (1 = mispredicted), indexed by
     * dynamic branch ordinal; computed once per predictor size by the
     * batch driver (the predictor's update sequence depends only on the
     * trace, never on machine timing).
     */
    void setSharedMispredicts(const u8 *col) { mispredictCol_ = col; }

    /**
     * Functional warming for sampled replay: stream entries
     * [memBegin, memEnd) of @p trace's dense memory lane into
     * @p memory as warm accesses (tag/LRU/dirty updates only — see
     * Level::warmLine).  Static because it touches no engine state:
     * warming happens between engines, on the shared hierarchy.
     */
    static void warmMemory(const prog::RecordedTrace &trace, u64 memBegin,
                           u64 memEnd, mem::Hierarchy &memory);

    /**
     * Run whole cycles until the fetch cursor reaches @p fetchLimit (or
     * the trace is complete).  A pause happens only between cycles, so
     * resuming continues bit-identically to an uninterrupted run; with
     * fetchLimit >= instCount the window is also drained.
     * @return true when the trace has fully retired.
     */
    bool advanceTo(u64 fetchLimit);

    /** Finalize cycles + instruction-mix totals; call exactly once. */
    ExecStats takeStats();

    /** Dispatch cursor: dynamic index of the next instruction. */
    u64 fetchPos() const { return fetchPos_; }

    /** Instructions currently in flight in the window. */
    u64 windowInFlight() const { return windowCount_; }

#if MSIM_OBS_ENABLED
    /**
     * Attach a per-run timeline recorder (nullptr detaches). The cycle
     * loops then sample cumulative stats and occupancies every
     * recorder period; with no recorder the per-cycle cost is one
     * always-false compare against kNeverCycle.
     */
    void
    setTimeline(obs::TimelineRecorder *tl)
    {
        timeline_ = tl;
        obsNextAt_ = tl ? now_ + tl->period() : obs::kNeverCycle;
    }

    /**
     * Attach a per-site attribution accumulator (nullptr detaches).
     * The accounting points then mirror every retired instruction and
     * every stall charge into it, keyed by the trace's site column —
     * read-only hooks, integral tick arithmetic (see obs/site.hh), so
     * timing and stats stay bit-identical with or without it.  The
     * caller resets the accumulator for the trace's site-table size
     * and this engine's resolved retire width.
     */
    void setSiteAttribution(obs::SiteAttribution *sa) { siteAttr_ = sa; }
#endif

  private:
    static constexpr Cycle kNever = ~Cycle{0};
    static constexpr u32 kNil = ~u32{0};
    static constexpr u8 kNotMem = 0xff;

    /**
     * One window entry, packed to exactly one cache line: the aux
     * ordinal is a load's forwarding candidate or a store's ring
     * ordinal (never both), and the sequence number is reconstructed
     * from the ring index instead of stored (see seqOf()).
     */
    struct alignas(64) Slot
    {
        Addr addr;
        Cycle readyTime;
        Cycle depTime;     ///< max known source ready time
        Cycle memFreeTime;
        u32 aux;           ///< load: candidate store; store: ring ordinal
        u32 memOrd;        ///< memory-lane ordinal (mem ops only): keys
                           ///< the batched layer's shared line columns
        u32 waiterHead;    ///< chain of (slot << 2 | src) waiting on dst
        u32 waiterNext[3];
        isa::Op op;
        u8 cls;            ///< functional-unit class of op
        u8 unknownSrcs;
        mem::HitLevel level;
        bool issued;
        bool mispredicted;
    };

    /**
     * Sorted ring of event times (ascending, min at the head): the
     * occupancy-bounded event sets (memory-queue releases, branch
     * resolutions) need push, pop-all-below and peek-min.  A binary
     * heap pays a sift per push; here event times correlate with the
     * advancing cycle counter, so the backward-shift insert almost
     * always lands at the tail, and both pop and peek are O(1).
     * Indices grow monotonically and are masked on access (capacity is
     * a power of two >= the occupancy bound, so they never collide).
     */
    struct TimeRing
    {
        std::vector<Cycle> buf;
        u32 mask = 0;
        u32 head = 0;
        u32 tail = 0;

        void
        init(unsigned bound)
        {
            u32 cap = 1;
            while (cap < bound + 1)
                cap <<= 1;
            buf.assign(cap, 0);
            mask = cap - 1;
        }

        bool empty() const { return head == tail; }
        Cycle front() const { return buf[head & mask]; }
        void popFront() { ++head; }

        void
        push(Cycle t)
        {
            u32 i = tail++;
            while (i != head && buf[(i - 1) & mask] > t) {
                buf[i & mask] = buf[(i - 1) & mask];
                --i;
            }
            buf[i & mask] = t;
        }
    };

    /**
     * Inline mirror of FuPool with the identical reservation policy
     * (first earliest-free unit of the class); keeps the per-issue unit
     * bookkeeping out of call-heavy shared code on the replay hot path.
     */
    struct UnitClass
    {
        Cycle busy[2] = {0, 0}; ///< per-unit busy-until (Table 2: <= 2)
        unsigned count = 1;
    };

    Slot &at(u64 seq) { return slots_[seq & slotMask_]; }
    const Slot &at(u64 seq) const { return slots_[seq & slotMask_]; }

    /**
     * Sequence number of the live instruction in ring slot @p idx: the
     * window spans [headSeq_, headSeq_ + capacity), so the index's
     * offset from the head (mod capacity) identifies it uniquely.
     */
    u64
    seqOf(u64 idx) const
    {
        return headSeq_ + ((idx - headSeq_) & slotMask_);
    }

    bool
    unitAvailable(unsigned cls, Cycle t) const
    {
        const UnitClass &u = units_[cls];
        for (unsigned i = 0; i < u.count; ++i)
            if (u.busy[i] <= t)
                return true;
        return false;
    }

    Cycle
    unitNextFree(unsigned cls, Cycle t) const
    {
        const UnitClass &u = units_[cls];
        Cycle m = u.busy[0];
        for (unsigned i = 1; i < u.count; ++i)
            m = std::min(m, u.busy[i]);
        return std::max(t, m);
    }

    Cycle
    unitReserve(isa::Op op, Cycle t)
    {
        const OpInfo info = opInfo_[static_cast<unsigned>(op)];
        UnitClass &u = units_[info.cls];
        unsigned best = 0;
        for (unsigned i = 1; i < u.count; ++i)
            if (u.busy[i] < u.busy[best])
                best = i;
        const Cycle start = std::max(t, u.busy[best]);
        u.busy[best] = start + (info.pipelined ? 1u : info.latency);
        return start + info.latency;
    }

    unsigned tryRetire();
    unsigned tryExecute();
    unsigned tryDispatch();
    bool advanceRaw(u64 fetchLimit);
    bool advanceDecoded(u64 fetchLimit);

    /**
     * Event-skip horizon for the member-state (raw) cycle loop: the
     * earliest future cycle at which any retire, issue or dispatch can
     * occur, evaluated after this cycle's phases.  Returns 0 when an
     * event may land as soon as now_ + 1 (the caller just ticks) —
     * including at a batched-replay chunk boundary, where the next
     * chunk's dispatch times are unknowable and the lane must pause on
     * a plain tick.  Every component is a sound lower bound: landing on
     * a still-dead cycle re-evaluates and skips again, with the charges
     * splitting exactly (see DESIGN.md "Event-driven cycle skipping").
     * Panics on a true deadlock (in-flight window, horizon at infinity).
     */
    Cycle skipHorizon(u64 fetchLimit, bool final) const;

#if MSIM_AUDIT_ENABLED
    /// skip-horizon-soundness: no ready event strictly inside [now+1, h).
    /// @p waitBits is the decoded-mode wait set (0 on the raw path,
    /// whose future-dep entries live in readyHeap_ instead).
    void auditSkipSpan(Cycle now, Cycle h, u64 headSeq, u64 wcount,
                       bool eligEmpty, u64 waitBits) const;
#endif
    void issueSlot(Slot &s);
    void wakeWaiters(Slot &producer);
    void drainMemq();
    void drainBranches();
    StallClass classifyBlock() const;
    Cycle nextEventTime();
    Cycle forwardingReady(const Slot &load) const;
    void eligInsert(u64 seq);

    // Configuration (retireWidth resolved).
    unsigned issueWidth_;
    unsigned windowSize_;
    unsigned memQueueSize_;
    unsigned maxSpecBranches_;
    unsigned takenBranchesPerCycle_;
    unsigned mispredictPenalty_;
    unsigned retireWidth_;
    bool eventSkip_; ///< CoreConfig::eventSkip (see skipHorizon())

    mem::MemoryPort &mem_;
    BranchPredictor predictor_;

    /** Per-opcode timing facts, packed so dispatch reads one word. */
    struct OpInfo
    {
        u8 cls;       ///< functional-unit class
        u8 latency;
        u8 pipelined; ///< 0/1
        u8 memKind;   ///< prog::MemKind or kNotMem
    };

    // Functional units and opcode timing, flattened for inlining.
    UnitClass units_[isa::kNumFuClasses];
    OpInfo opInfo_[isa::kNumOps] = {};

    // Trace columns (raw pointers into the RecordedTrace) and cursors.
    // The memory lane (memAddrs_/memKinds_/memAux_) advances with the
    // single memPos_ cursor.
    const u8 *ops_ = nullptr;
    const u8 *flags_ = nullptr;
    const u8 *numSrcs_ = nullptr;
    const u32 *srcProds_ = nullptr;
    const Addr *memAddrs_ = nullptr;
    const u8 *memKinds_ = nullptr;
    const u32 *memAux_ = nullptr;
    const u32 *branchPcs_ = nullptr;
    const u16 *sites_ = nullptr;
    u64 instCount_ = 0;
    u64 fetchPos_ = 0;
    u64 srcPos_ = 0;
    u64 memPos_ = 0;
    u64 branchPos_ = 0;

    // Batched-replay inputs (see setDecodedWindow / setSharedMispredicts):
    // when decoded_ is set, dispatch reads DecodedInst records indexed
    // by fetchPos_ - decodedBase_ and branch outcomes from
    // mispredictCol_[branchPos_]; the raw columns above still feed the
    // memory lane and the end-of-run mix tally.
    const DecodedInst *decoded_ = nullptr;
    u64 decodedBase_ = 0;
    const u8 *mispredictCol_ = nullptr;
    const prog::RecordedTrace *trace_ = nullptr;

    // Window ring (capacity = windowSize rounded up to a power of two).
    std::vector<Slot> slots_;
    u64 slotMask_ = 0;
    u64 headSeq_ = 0;
    u64 windowCount_ = 0;

    // No value-readiness table: the trace records each source's
    // producer instruction index, the producer's index equals its
    // sequence number, and a retired producer's value is always ready
    // (an instruction cannot retire before its result time).  Exact
    // ready times in the past are interchangeable — only times beyond
    // the current cycle order the heap or bound the fast-forward — so
    // dependences resolve entirely within the window ring.

    // Store-to-load forwarding: data-ready cycle per store ordinal
    // (kNever until the store issues), plus the dispatched-store count
    // that decides forwarding-ring residency.
    std::vector<Cycle> storeDone_;
    u32 dispatchedStores_ = 0;

    // Issue scheduling: (depTime, seq) min-heap of instructions whose
    // sources all have known ready times but lie in the future, drained
    // into the per-class eligible queues once that time arrives.
    // Dispatch inserts already-ready instructions into their queue
    // directly.
    std::vector<std::pair<Cycle, u64>> readyHeap_;

    // Staging lane for the dominant wake-up case, dep == now + 1
    // (single-cycle producers): the cycle counter strictly increases
    // between execute steps, so at the next drain every entry already
    // satisfies dep <= now and the whole vector empties unconditionally
    // — same issue cycle as the heap route, none of its sifting.
    std::vector<u64> readyNext_;

    /**
     * Per-class eligible queue: sequence numbers ascending, live
     * entries are [head, size). Issue pops the head; the consumed
     * prefix is recycled when the queue drains or grows long.
     */
    struct EligQueue
    {
        std::vector<u64> seqs;
        size_t head = 0;

        bool empty() const { return head == seqs.size(); }
        u64 front() const { return seqs[head]; }

        void
        popFront()
        {
            if (++head == seqs.size()) {
                seqs.clear();
                head = 0;
            } else if (head >= 128) {
                seqs.erase(seqs.begin(),
                           seqs.begin() + static_cast<ptrdiff_t>(head));
                head = 0;
            }
        }

        /** Append a sequence number known to exceed every live entry. */
        void pushBack(u64 seq) { seqs.push_back(seq); }

        /**
         * Sorted insert (drained entries arrive out of order, but
         * mostly ascending): shift from the back, which is free in the
         * common append case.
         */
        void
        insert(u64 seq)
        {
            const size_t n = seqs.size();
            seqs.push_back(seq);
            u64 *base = seqs.data();
            size_t i = n;
            while (i > head && base[i - 1] > seq) {
                base[i] = base[i - 1];
                --i;
            }
            base[i] = seq;
        }
    };

    EligQueue elig_[isa::kNumFuClasses];
    u8 eligMask_ = 0; ///< bit c set iff elig_[c] is non-empty

    // Decoded-mode eligible set: one bit per ring slot, per class, plus
    // the union. The batch gate (BatchReplayEngine::supports) keeps the
    // ring capacity <= 64, so the whole scheduling state is three dozen
    // bytes and the min-sequence scan is a rotate + count-trailing-zeros
    // instead of a per-class sorted queue (see advanceDecoded()). The
    // raw path never touches these; the decoded path never touches
    // elig_/eligMask_.
    u64 eligBits_[isa::kNumFuClasses] = {};
    u64 eligAll_ = 0; ///< union of eligBits_

    // Decoded-mode scheduler columns (see advanceDecoded): fixed
    // 64-entry SoA mirrors of the per-slot fields the scheduling scans
    // touch, indexed by ring slot, sized for the simd::Ops 64-lane
    // kernels.  They subsume readyNext_/readyHeap_ and the intrusive
    // waiter chains on the decoded path: an instruction whose sources
    // all have known future ready times sits in waitBits_ with its
    // dependence time in depCol_, drained by one compare->bitmap when
    // minWaitDep_ falls due; a producer's waiters are a bitmap in
    // waiterMask_, woken by one masked max-broadcast plus a masked
    // decrement of unknownCol_.  The raw path never touches any of
    // these (its structural twin stays the heap + chain scheduler).
    alignas(64) Cycle depCol_[64] = {};   ///< max known source ready time
    alignas(64) Cycle readyCol_[64] = {}; ///< result time once issued
    alignas(64) u64 waiterMask_[64] = {}; ///< waiters per producer slot
    alignas(64) u8 unknownCol_[64] = {};  ///< unissued-producer count
    u64 waitBits_ = 0;                    ///< dep known, in the future
    u64 waitCls_[isa::kNumFuClasses] = {}; ///< waitBits_ split by class
    u64 issuedBits_ = 0;                  ///< issued, not yet recycled
    u64 storeBits_ = 0;                   ///< dispatched stores in window
    Cycle minWaitDep_ = kNever;           ///< exact min depCol_ | waitBits_
    const simd::Ops *simd_ = nullptr;     ///< dispatch table, cached

    /// Memory-queue occupancy: +1 at dispatch, -1 when the ring entry
    /// pushed at issue time expires (drained lazily at the readers).
    unsigned memqUsed_ = 0;
    TimeRing memqFrees_;

    /// Unresolved speculated branches: +1 at dispatch, -1 at resolution.
    unsigned specBranches_ = 0;
    TimeRing branchResolves_;

    /// Stall classes of stores still holding memory-queue slots after
    /// retirement, with their release times (for attribution). Expired
    /// entries are filtered by the reader and garbage-collected when
    /// the list grows past a small bound.
    std::vector<std::pair<Cycle, StallClass>> pendingStores_;

    Cycle now_ = 0;
    Cycle dispatchBlockedUntil_ = 0;
    bool awaitingRedirect_ = false;

#if MSIM_AUDIT_ENABLED
    /// Cycle of the most recent retirement (retire-order audit).
    Cycle auditLastRetire_ = 0;
#endif

#if MSIM_OBS_ENABLED
    obs::TimelineRecorder *timeline_ = nullptr;
    Cycle obsNextAt_ = obs::kNeverCycle;
    obs::SiteAttribution *siteAttr_ = nullptr;

    /**
     * Site charged for a non-Busy stall: the window head's (the §2.3.4
     * blocking instruction), or the next instruction to dispatch when
     * the window is empty.  During an event-skip span neither cursor
     * moves, so like the stall class the site is constant across the
     * span and one bulk charge equals per-cycle charging exactly.
     */
    u16
    blockSite(u64 headSeq, u64 windowCount, u64 fetchPos) const
    {
        if (windowCount != 0)
            return sites_[headSeq];
        return fetchPos < instCount_ ? sites_[fetchPos] : 0;
    }
#endif

    ExecStats stats_;
};

} // namespace msim::cpu

#endif // MSIM_CPU_REPLAY_ENGINE_HH_
