/**
 * @file
 * Compact out-of-order replay engine for recorded traces.
 *
 * PipelineCore is the reference timing model; it keeps a deque of
 * full-width DynInst records and rebuilds an isa::Inst per dynamic
 * instruction when replaying.  That generality costs more than the
 * simulation itself once a trace is recorded: replay needs no fetch
 * buffer, no store-forwarding ring scan, and no per-instruction
 * allocation.
 *
 * ReplayEngine is an exact transliteration of the reference
 * out-of-order scheduler onto replay-shaped data structures:
 *
 *  - The instruction window is a fixed ring of lean Slot records
 *    (the window can never exceed CoreConfig::windowSize), indexed by
 *    sequence number; no deque churn, the whole window stays cache-hot.
 *  - Operands are read straight from the trace's structure-of-arrays
 *    columns; no isa::Inst is materialized.
 *  - Issue selection is dependency-driven: an instruction enters the
 *    ready set only when its last unknown source producer issues, via
 *    per-slot waiter chains.  Ready instructions are bucketed by
 *    functional-unit class and merged in ascending sequence order,
 *    which reproduces the reference program-order scan exactly (within
 *    a cycle a unit class only ever goes from free to busy, so a busy
 *    class can be skipped wholesale without reordering issues).
 *  - Store-to-load forwarding uses the trace's precomputed candidate
 *    store plus an O(1) ring-residency comparison.
 *
 * Every cycle performs the same retire / execute / dispatch /
 * accounting sequence with the same fast-forward rule as
 * PipelineCore::step(), so results are bit-identical to feeding the
 * trace live (enforced by tests/test_replay.cc).  The in-order
 * configurations replay inside PipelineCore itself, where program-order
 * issue makes the reference scan already cheap.
 */

#ifndef MSIM_CPU_REPLAY_ENGINE_HH_
#define MSIM_CPU_REPLAY_ENGINE_HH_

#include <algorithm>
#include <queue>
#include <vector>

#include "cpu/accounting.hh"
#include "cpu/branch_predictor.hh"
#include "isa/timing.hh"
#include "mem/hierarchy.hh"
#include "prog/recorded_trace.hh"

namespace msim::cpu
{

struct CoreConfig;

/** See file comment. One engine instance runs one trace once. */
class ReplayEngine
{
  public:
    /**
     * @param config  Pipeline parameters; must be an out-of-order
     *                configuration.
     * @param memory  The memory port accesses are issued to.
     */
    ReplayEngine(const CoreConfig &config, mem::MemoryPort &memory);

    /** Replay @p trace to completion and return the execution stats. */
    ExecStats run(const prog::RecordedTrace &trace);

  private:
    static constexpr Cycle kNever = ~Cycle{0};
    static constexpr u32 kNil = ~u32{0};

    /** One window entry; fits the whole window in a few cache lines. */
    struct Slot
    {
        u64 seq;
        Addr addr;
        Cycle readyTime;
        Cycle depTime;     ///< max known source ready time
        Cycle memFreeTime;
        u32 fwdCand;       ///< load: candidate store ordinal
        u32 storeOrd;      ///< store: forwarding-ring ordinal
        u32 waiterHead;    ///< chain of (slot << 2 | src) waiting on dst
        u32 waiterNext[3];
        isa::Op op;
        u8 cls;            ///< functional-unit class of op
        u8 unknownSrcs;
        mem::HitLevel level;
        bool issued;
        bool mispredicted;
    };

    using MinHeap =
        std::priority_queue<Cycle, std::vector<Cycle>, std::greater<>>;

    /**
     * Inline mirror of FuPool with the identical reservation policy
     * (first earliest-free unit of the class); keeps the per-issue unit
     * bookkeeping out of call-heavy shared code on the replay hot path.
     */
    struct UnitClass
    {
        Cycle busy[2] = {0, 0}; ///< per-unit busy-until (Table 2: <= 2)
        unsigned count = 1;
    };

    Slot &at(u64 seq) { return slots_[seq & slotMask_]; }
    const Slot &at(u64 seq) const { return slots_[seq & slotMask_]; }

    bool
    unitAvailable(unsigned cls, Cycle t) const
    {
        const UnitClass &u = units_[cls];
        for (unsigned i = 0; i < u.count; ++i)
            if (u.busy[i] <= t)
                return true;
        return false;
    }

    Cycle
    unitNextFree(unsigned cls, Cycle t) const
    {
        const UnitClass &u = units_[cls];
        Cycle m = u.busy[0];
        for (unsigned i = 1; i < u.count; ++i)
            m = std::min(m, u.busy[i]);
        return std::max(t, m);
    }

    Cycle
    unitReserve(isa::Op op, Cycle t)
    {
        const unsigned n = static_cast<unsigned>(op);
        UnitClass &u = units_[opCls_[n]];
        unsigned best = 0;
        for (unsigned i = 1; i < u.count; ++i)
            if (u.busy[i] < u.busy[best])
                best = i;
        const Cycle start = std::max(t, u.busy[best]);
        u.busy[best] = start + (opPipe_[n] ? 1u : opLat_[n]);
        return start + opLat_[n];
    }

    unsigned tryRetire();
    unsigned tryExecute();
    unsigned tryDispatch();
    void issueSlot(Slot &s);
    void wakeWaiters(Slot &producer);
    void expireEvents();
    StallClass classifyBlock() const;
    Cycle nextEventTime() const;
    Cycle forwardingReady(const Slot &load) const;

    // Configuration (retireWidth resolved).
    unsigned issueWidth_;
    unsigned windowSize_;
    unsigned memQueueSize_;
    unsigned maxSpecBranches_;
    unsigned takenBranchesPerCycle_;
    unsigned mispredictPenalty_;
    unsigned retireWidth_;

    mem::MemoryPort &mem_;
    BranchPredictor predictor_;

    // Functional units and opcode timing, flattened for inlining.
    UnitClass units_[isa::kNumFuClasses];
    u8 opCls_[isa::kNumOps] = {};
    u8 opLat_[isa::kNumOps] = {};
    bool opPipe_[isa::kNumOps] = {};

    // Trace columns (raw pointers into the RecordedTrace) and cursors.
    const u8 *ops_ = nullptr;
    const u8 *flags_ = nullptr;
    const u8 *numSrcs_ = nullptr;
    const u32 *srcProds_ = nullptr;
    const Addr *memAddrs_ = nullptr;
    const u32 *branchPcs_ = nullptr;
    const u32 *loadFwds_ = nullptr;
    u64 instCount_ = 0;
    u64 fetchPos_ = 0;
    u64 srcPos_ = 0;
    u64 memPos_ = 0;
    u64 branchPos_ = 0;
    u64 loadPos_ = 0;

    // Window ring (capacity = windowSize rounded up to a power of two).
    std::vector<Slot> slots_;
    u64 slotMask_ = 0;
    u64 headSeq_ = 0;
    u64 windowCount_ = 0;

    // No value-readiness table: the trace records each source's
    // producer instruction index, the producer's index equals its
    // sequence number, and a retired producer's value is always ready
    // (an instruction cannot retire before its result time).  Exact
    // ready times in the past are interchangeable — only times beyond
    // the current cycle order the heap or bound the fast-forward — so
    // dependences resolve entirely within the window ring.

    // Store-to-load forwarding: data-ready cycle per store ordinal
    // (kNever until the store issues), plus the dispatched-store count
    // that decides forwarding-ring residency.
    std::vector<Cycle> storeDone_;
    u32 dispatchedStores_ = 0;

    // Issue scheduling: (depTime, seq) min-heap of instructions whose
    // sources all have known ready times, drained into per-unit-class
    // sequence-ordered buckets once that time arrives.
    std::vector<std::pair<Cycle, u64>> readyHeap_;
    std::vector<u64> eligClass_[isa::kNumFuClasses];

    /// Memory-queue occupancy: +1 at dispatch, -1 when the heap entry
    /// pushed at issue time expires.
    unsigned memqUsed_ = 0;
    MinHeap memqFrees_;

    /// Unresolved speculated branches: +1 at dispatch, -1 at resolution.
    unsigned specBranches_ = 0;
    MinHeap branchResolves_;

    /// Stall classes of stores still holding memory-queue slots after
    /// retirement, with their release times (for attribution).
    std::vector<std::pair<Cycle, StallClass>> pendingStores_;

    Cycle now_ = 0;
    Cycle dispatchBlockedUntil_ = 0;
    bool awaitingRedirect_ = false;

    ExecStats stats_;
};

} // namespace msim::cpu

#endif // MSIM_CPU_REPLAY_ENGINE_HH_
