/**
 * @file
 * Branch prediction: a 2K-entry bimodal table of 2-bit saturating
 * counters plus a 32-entry return-address stack (Table 2).
 *
 * The paper uses a bimodal *agree* predictor; at the granularity the
 * paper reports (per-benchmark misprediction rates and their change
 * under VIS) plain bimodal is equivalent for these workloads — the
 * branches VIS eliminates are data-dependent and hard for both.
 */

#ifndef MSIM_CPU_BRANCH_PREDICTOR_HH_
#define MSIM_CPU_BRANCH_PREDICTOR_HH_

#include <vector>

#include "common/types.hh"

namespace msim::cpu
{

/** Bimodal predictor with saturating 2-bit counters. */
class BranchPredictor
{
  public:
    /** @param entries  Table size; must be a power of two. */
    explicit BranchPredictor(unsigned entries = 2048);

    /**
     * Predict and train on one dynamic branch at static site @p pc with
     * outcome @p taken.  Inline: this sits on the per-branch dispatch
     * path of both replay engines.
     * @return true iff the prediction was correct.
     */
    bool
    predictAndUpdate(u32 pc, bool taken)
    {
        ++lookups_;
        u8 &ctr = counters[indexOf(pc)];
        const bool predicted_taken = ctr >= 2;
        if (taken && ctr < 3)
            ++ctr;
        else if (!taken && ctr > 0)
            --ctr;
        const bool correct = predicted_taken == taken;
        if (!correct)
            ++mispredicts_;
        return correct;
    }

    u64 lookups() const { return lookups_; }
    u64 mispredicts() const { return mispredicts_; }

    double
    mispredictRate() const
    {
        return lookups_ ? static_cast<double>(mispredicts_) / lookups_ : 0.0;
    }

  private:
    unsigned
    indexOf(u32 pc) const
    {
        // Fibonacci hash spreads the trace builder's small dense pc ids.
        const u32 h = pc * 2654435761u;
        return h & (static_cast<unsigned>(counters.size()) - 1);
    }

    std::vector<u8> counters; ///< 2-bit, initialized weakly taken
    u64 lookups_ = 0;
    u64 mispredicts_ = 0;
};

/** Fixed-depth return-address stack. */
class ReturnAddressStack
{
  public:
    explicit ReturnAddressStack(unsigned depth = 32);

    void push(u64 addr);

    /** Pop a prediction; returns 0 when empty (mispredicts by definition). */
    u64 pop();

  private:
    std::vector<u64> stack;
    unsigned top = 0;   ///< number of valid entries
    unsigned depth;
};

} // namespace msim::cpu

#endif // MSIM_CPU_BRANCH_PREDICTOR_HH_
