#include "cpu/ref_replay_engine.hh"

#include <algorithm>
#include <bit>

#include "common/logging.hh"
#include "cpu/core.hh"

namespace msim::cpu
{

RefReplayEngine::RefReplayEngine(const CoreConfig &config,
                                 mem::MemoryPort &memory)
    : issueWidth_(config.issueWidth), windowSize_(config.windowSize),
      memQueueSize_(config.memQueueSize),
      maxSpecBranches_(config.maxSpecBranches),
      takenBranchesPerCycle_(config.takenBranchesPerCycle),
      mispredictPenalty_(config.mispredictPenalty),
      retireWidth_(config.retireWidth ? config.retireWidth
                                      : config.issueWidth),
      mem_(memory), predictor_(config.predictorEntries)
{
    const u64 cap = std::bit_ceil<u64>(std::max(1u, windowSize_));
    slots_.resize(cap);
    slotMask_ = cap - 1;

    for (unsigned c = 0; c < isa::kNumFuClasses; ++c) {
        const unsigned n = isa::defaultFuCount(
            static_cast<isa::FuClass>(c), config.issueWidth);
        units_[c].count = std::min<unsigned>(
            n, sizeof(UnitClass::busy) / sizeof(Cycle));
    }
    for (unsigned n = 0; n < isa::kNumOps; ++n) {
        const auto op = static_cast<isa::Op>(n);
        const isa::OpTiming t = isa::timingOf(op);
        opCls_[n] = static_cast<u8>(isa::fuClassOf(op));
        opLat_[n] = static_cast<u8>(t.latency);
        opPipe_[n] = t.pipelined;
    }
}

Cycle
RefReplayEngine::forwardingReady(const Slot &load) const
{
    const u32 cand = load.fwdCand;
    if (cand == prog::kNoFwdStore)
        return kNever;
    if (cand + prog::kFwdWindow < dispatchedStores_)
        return kNever; // evicted before this load issued
    return storeDone_[cand];
}

void
RefReplayEngine::issueSlot(Slot &s)
{
    using isa::Op;
    s.issued = true;
    const Cycle done = unitReserve(s.op, now_);

    switch (s.op) {
      case Op::Load: {
        const Cycle fwd = forwardingReady(s);
        if (fwd != kNever) {
            s.readyTime = std::max(done, fwd);
            s.level = mem::HitLevel::L1;
            ++stats_.loadsL1;
        } else {
            const auto res = mem_.access(s.addr, mem::AccessKind::Load, done);
            s.readyTime = res.ready;
            s.level = res.level;
            switch (res.level) {
              case mem::HitLevel::L1: ++stats_.loadsL1; break;
              case mem::HitLevel::L2: ++stats_.loadsL2; break;
              case mem::HitLevel::Memory: ++stats_.loadsMem; break;
            }
        }
        s.memFreeTime = s.readyTime;
        memqFrees_.push(s.memFreeTime);
        break;
      }
      case Op::Store: {
        const auto res = mem_.access(s.addr, mem::AccessKind::Store, done);
        s.readyTime = done; // retirement does not wait for stores
        s.memFreeTime = res.ready;
        s.level = res.level;
        memqFrees_.push(s.memFreeTime);
        storeDone_[s.storeOrd] = done;
        break;
      }
      case Op::Prefetch: {
        const auto res =
            mem_.access(s.addr, mem::AccessKind::Prefetch, done);
        s.readyTime = done;
        s.memFreeTime = done;
        memqFrees_.push(done);
        ++stats_.prefetchesIssued;
        if (res.dropped)
            ++stats_.prefetchesDropped;
        break;
      }
      case Op::Branch: {
        s.readyTime = done; // the branch resolves when it executes
        branchResolves_.push(done);
        if (s.mispredicted) {
            dispatchBlockedUntil_ = done + mispredictPenalty_;
            awaitingRedirect_ = false;
        }
        break;
      }
      default: {
        s.readyTime = done;
        break;
      }
    }
}

void
RefReplayEngine::wakeWaiters(Slot &producer)
{
    u32 link = producer.waiterHead;
    producer.waiterHead = kNil;
    const Cycle t = producer.readyTime;
    while (link != kNil) {
        Slot &w = slots_[link >> 2];
        const unsigned si = link & 3;
        link = w.waiterNext[si];
        w.depTime = std::max(w.depTime, t);
        if (--w.unknownSrcs == 0) {
            readyHeap_.emplace_back(w.depTime, w.seq);
            std::push_heap(readyHeap_.begin(), readyHeap_.end(),
                           std::greater<>{});
        }
    }
}

unsigned
RefReplayEngine::tryRetire()
{
    unsigned retired = 0;
    while (retired < retireWidth_ && windowCount_ != 0) {
        Slot &head = at(headSeq_);
        if (!head.issued)
            break;
        if (head.readyTime > now_)
            break;
        if (head.op == isa::Op::Store && head.memFreeTime > now_) {
            // The store retires but keeps its memory-queue slot until
            // the cache accepts it; remember what it is waiting on.
            const StallClass cls = head.level == mem::HitLevel::L1
                                       ? StallClass::MemL1Hit
                                       : StallClass::MemL1Miss;
            pendingStores_.emplace_back(head.memFreeTime, cls);
        }
        ++stats_.retired;
        ++retired;
        ++headSeq_;
        --windowCount_;
    }
    return retired;
}

unsigned
RefReplayEngine::tryExecute()
{
    while (!readyHeap_.empty() && readyHeap_.front().first <= now_) {
        const u64 seq = readyHeap_.front().second;
        std::pop_heap(readyHeap_.begin(), readyHeap_.end(),
                      std::greater<>{});
        readyHeap_.pop_back();
        auto &bucket = eligClass_[at(seq).cls];
        bucket.insert(
            std::lower_bound(bucket.begin(), bucket.end(), seq), seq);
    }

    size_t pos[isa::kNumFuClasses];
    bool avail[isa::kNumFuClasses];
    for (unsigned c = 0; c < isa::kNumFuClasses; ++c) {
        pos[c] = 0;
        avail[c] = !eligClass_[c].empty() && unitAvailable(c, now_);
    }

    unsigned issued = 0;
    while (issued < issueWidth_) {
        unsigned best = isa::kNumFuClasses;
        u64 bestSeq = 0;
        for (unsigned c = 0; c < isa::kNumFuClasses; ++c) {
            if (!avail[c] || pos[c] >= eligClass_[c].size())
                continue;
            const u64 s = eligClass_[c][pos[c]];
            if (best == isa::kNumFuClasses || s < bestSeq) {
                best = c;
                bestSeq = s;
            }
        }
        if (best == isa::kNumFuClasses)
            break;
        Slot &s = at(bestSeq);
        issueSlot(s);
        if (s.waiterHead != kNil)
            wakeWaiters(s);
        auto &bucket = eligClass_[best];
        bucket.erase(bucket.begin() +
                     static_cast<std::ptrdiff_t>(pos[best]));
        ++issued;
        avail[best] =
            pos[best] < bucket.size() && unitAvailable(best, now_);
    }
    return issued;
}

unsigned
RefReplayEngine::tryDispatch()
{
    using isa::Op;
    unsigned dispatched = 0;
    unsigned taken_this_cycle = 0;
    while (dispatched < issueWidth_ && fetchPos_ < instCount_) {
        if (awaitingRedirect_ || now_ < dispatchBlockedUntil_)
            break;
        if (windowCount_ >= windowSize_)
            break;
        if (specBranches_ >= maxSpecBranches_)
            break;
        const Op op = static_cast<Op>(ops_[fetchPos_]);
        const bool is_mem =
            op == Op::Load || op == Op::Store || op == Op::Prefetch;
        if (is_mem && memqUsed_ >= memQueueSize_)
            break;

        const u64 seq = headSeq_ + windowCount_;
        Slot &s = slots_[seq & slotMask_];
        s.seq = seq;
        s.op = op;
        s.cls = static_cast<u8>(isa::fuClassOf(op));
        s.readyTime = kNever;
        s.depTime = 0;
        s.memFreeTime = 0;
        s.waiterHead = kNil;
        s.issued = false;
        s.mispredicted = false;

        bool taken = false;
        if (op == Op::Branch) {
            taken = (flags_[fetchPos_] & isa::kFlagTaken) != 0;
            const bool correct =
                predictor_.predictAndUpdate(branchPcs_[branchPos_++],
                                            taken);
            ++stats_.branches;
            ++specBranches_;
            if (!correct) {
                ++stats_.mispredicts;
                s.mispredicted = true;
            }
        }
        if (is_mem) {
            s.addr = memAddrs_[memPos_];
            if (op == Op::Load)
                s.fwdCand = memAux_[memPos_];
            else if (op == Op::Store)
                s.storeOrd = dispatchedStores_++;
            ++memPos_;
            ++memqUsed_;
        }

        // A producer outside the window has retired, so its value is
        // ready in the past and cannot affect the heap order or the
        // fast-forward bound; only in-window producers matter.
        Cycle dep = 0;
        unsigned unknown = 0;
        const unsigned ns = numSrcs_[fetchPos_];
        for (unsigned i = 0; i < ns; ++i) {
            const u32 prod = srcProds_[srcPos_ + i];
            if (prod == prog::kNoProducer || prod < headSeq_)
                continue; // produced before the window: always ready
            Slot &p = slots_[prod & slotMask_];
            if (!p.issued) {
                s.waiterNext[i] = p.waiterHead;
                p.waiterHead =
                    static_cast<u32>((seq & slotMask_) << 2) | i;
                ++unknown;
            } else {
                dep = std::max(dep, p.readyTime);
            }
        }
        srcPos_ += ns;
        s.unknownSrcs = static_cast<u8>(unknown);
        s.depTime = dep;
        if (unknown == 0) {
            readyHeap_.emplace_back(dep, seq);
            std::push_heap(readyHeap_.begin(), readyHeap_.end(),
                           std::greater<>{});
        }

        ++fetchPos_;
        ++windowCount_;
        ++dispatched;

        if (s.mispredicted) {
            awaitingRedirect_ = true;
            break; // no fetch past an unresolved mispredicted branch
        }
        if (taken && ++taken_this_cycle >= takenBranchesPerCycle_)
            break; // fetch limit: one taken branch per cycle
    }
    return dispatched;
}

void
RefReplayEngine::expireEvents()
{
    while (!memqFrees_.empty() && memqFrees_.top() <= now_) {
        memqFrees_.pop();
        --memqUsed_;
    }
    while (!branchResolves_.empty() && branchResolves_.top() <= now_) {
        branchResolves_.pop();
        --specBranches_;
    }
    std::erase_if(pendingStores_,
                  [this](const auto &p) { return p.first <= now_; });
}

StallClass
RefReplayEngine::classifyBlock() const
{
    if (windowCount_ != 0) {
        const Slot &head = at(headSeq_);
        if (head.issued && head.readyTime > now_ &&
            head.op == isa::Op::Load) {
            return head.level == mem::HitLevel::L1 ? StallClass::MemL1Hit
                                                   : StallClass::MemL1Miss;
        }
        return StallClass::FuStall;
    }
    if (awaitingRedirect_ || now_ < dispatchBlockedUntil_)
        return StallClass::FuStall;
    // Dispatch blocked by a full memory queue: charge the earliest
    // pending store's memory level.
    const std::pair<Cycle, StallClass> *oldest = nullptr;
    for (const auto &p : pendingStores_) {
        if (p.first > now_ && (!oldest || p.first < oldest->first))
            oldest = &p;
    }
    if (oldest)
        return oldest->second;
    return StallClass::FuStall;
}

Cycle
RefReplayEngine::nextEventTime() const
{
    Cycle next = kNever;
    if (windowCount_ != 0) {
        const Slot &head = at(headSeq_);
        if (head.issued && head.readyTime > now_)
            next = std::min(next, head.readyTime);
    }
    for (unsigned c = 0; c < isa::kNumFuClasses; ++c) {
        if (eligClass_[c].empty())
            continue;
        const Cycle t = std::max(now_ + 1, unitNextFree(c, now_));
        next = std::min(next, t);
    }
    for (const auto &[dep, seq] : readyHeap_) {
        Cycle t = std::max(now_ + 1, dep);
        t = std::max(t, unitNextFree(at(seq).cls, now_));
        next = std::min(next, t);
    }
    if (!memqFrees_.empty())
        next = std::min(next, memqFrees_.top());
    if (!branchResolves_.empty())
        next = std::min(next, branchResolves_.top());
    if (dispatchBlockedUntil_ > now_)
        next = std::min(next, dispatchBlockedUntil_);
    return next;
}

ExecStats
RefReplayEngine::run(const prog::RecordedTrace &trace)
{
    ops_ = trace.opCol().data();
    flags_ = trace.flagsCol().data();
    numSrcs_ = trace.numSrcsCol().data();
    srcProds_ = trace.srcProdCol().data();
    memAddrs_ = trace.memAddrCol().data();
    branchPcs_ = trace.branchPcCol().data();
    memAux_ = trace.memAuxCol().data();
#if MSIM_OBS_ENABLED
    sites_ = trace.siteCol().data();
#endif
    instCount_ = trace.instCount();

    storeDone_.assign(trace.numStores(), kNever);

    while (windowCount_ != 0 || fetchPos_ < instCount_) {
        expireEvents();

        const unsigned retired = tryRetire();
        const unsigned issued = tryExecute();
        const unsigned dispatched = tryDispatch();

        const double r = static_cast<double>(retired) / retireWidth_;
        stats_.charge(StallClass::Busy, r);
        StallClass block = StallClass::Busy;
        if (retired < retireWidth_) {
            block = classifyBlock();
            stats_.charge(block, 1.0 - r);
        }
#if MSIM_OBS_ENABLED
        if (siteAttr_) [[unlikely]] {
            // Per-site mirror of this cycle's charges, in integral
            // ticks of 1/retireWidth (see obs/site.hh): a Busy tick at
            // each retired instruction's own site, the remainder at
            // the blocker's.
            for (unsigned i = 0; i < retired; ++i)
                siteAttr_->retire(sites_[headSeq_ - retired + i]);
            if (retired < retireWidth_)
                siteAttr_->charge(blockSite(),
                                  static_cast<unsigned>(block),
                                  retireWidth_ - retired);
        }
#endif

        if (retired == 0 && issued == 0 && dispatched == 0 &&
            (windowCount_ != 0 || fetchPos_ < instCount_)) {
            const Cycle next = nextEventTime();
            if (next == kNever) {
                if (windowCount_ != 0) {
                    const Slot &head = at(headSeq_);
                    panic("replay deadlock at cycle %llu: window=%llu "
                          "head{op=%s issued=%d ready=%llu} memq=%u "
                          "spec=%u",
                          static_cast<unsigned long long>(now_),
                          static_cast<unsigned long long>(windowCount_),
                          isa::opName(head.op), head.issued,
                          static_cast<unsigned long long>(head.readyTime),
                          memqUsed_, specBranches_);
                }
                ++now_; // dispatch-only state; proceeds next cycle
                continue;
            }
            if (next > now_ + 1) {
                const Cycle dt = next - now_ - 1;
                stats_.charge(block, static_cast<double>(dt));
#if MSIM_OBS_ENABLED
                if (siteAttr_) [[unlikely]]
                    siteAttr_->charge(blockSite(),
                                      static_cast<unsigned>(block),
                                      dt * retireWidth_);
#endif
                now_ = next;
                continue;
            }
        }
        ++now_;
    }
    stats_.cycles = now_;

    for (unsigned i = 0; i < isa::kNumOps; ++i) {
        const auto op = static_cast<isa::Op>(i);
        const u64 n = trace.countOf(op);
        if (n == 0)
            continue;
        switch (isa::mixClassOf(op)) {
          case isa::MixClass::Fu: stats_.mixFu += n; break;
          case isa::MixClass::Branch: stats_.mixBranch += n; break;
          case isa::MixClass::Memory: stats_.mixMemory += n; break;
          case isa::MixClass::Vis: stats_.mixVis += n; break;
        }
    }
    return stats_;
}

} // namespace msim::cpu
