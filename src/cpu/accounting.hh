/**
 * @file
 * Execution-time accounting per the paper's Section 2.3.4 convention.
 *
 * Every cycle, the fraction of instructions retired relative to the
 * maximum retire rate is Busy time; the remainder is charged to the
 * first instruction that could not retire: FU stall if it waits on a
 * non-memory producer, L1-hit or L1-miss memory time otherwise
 * (classified by where the blocking access was satisfied).
 */

#ifndef MSIM_CPU_ACCOUNTING_HH_
#define MSIM_CPU_ACCOUNTING_HH_

#include <string>

#include "common/types.hh"

namespace msim::cpu
{

/** The four execution-time components of Figure 1. */
enum class StallClass : u8
{
    Busy,
    FuStall,
    MemL1Hit,
    MemL1Miss
};

/** Per-run execution statistics. */
struct ExecStats
{
    Cycle cycles = 0;
    u64 retired = 0;

    // Execution-time components, in (fractional) cycles.
    double busy = 0.0;
    double fuStall = 0.0;
    double memL1Hit = 0.0;
    double memL1Miss = 0.0;

    // Figure-2 instruction mix of retired instructions.
    u64 mixFu = 0;
    u64 mixBranch = 0;
    u64 mixMemory = 0;
    u64 mixVis = 0;

    // Branch behaviour.
    u64 branches = 0;
    u64 mispredicts = 0;

    // Load classification by satisfaction level.
    u64 loadsL1 = 0;
    u64 loadsL2 = 0;
    u64 loadsMem = 0;

    u64 prefetchesIssued = 0;
    u64 prefetchesDropped = 0;

    /**
     * Charge @p amount cycles to a component. Inline: this runs twice
     * per simulated cycle on the replay hot path.
     */
    void
    charge(StallClass cls, double amount)
    {
        switch (cls) {
          case StallClass::Busy:
            busy += amount;
            break;
          case StallClass::FuStall:
            fuStall += amount;
            break;
          case StallClass::MemL1Hit:
            memL1Hit += amount;
            break;
          case StallClass::MemL1Miss:
            memL1Miss += amount;
            break;
        }
    }

    double mispredictRate() const;

    /** Total memory component (L1 hit + L1 miss). */
    double memTotal() const { return memL1Hit + memL1Miss; }

    /** Components as fractions of total cycles. */
    double fracBusy() const;
    double fracFuStall() const;
    double fracMemL1Hit() const;
    double fracMemL1Miss() const;

    /** One-line summary for debugging. */
    std::string summary() const;
};

} // namespace msim::cpu

#endif // MSIM_CPU_ACCOUNTING_HH_
