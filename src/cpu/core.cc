#include "cpu/core.hh"

#include <algorithm>
#include <cstdlib>

#include "common/env.hh"
#include "common/logging.hh"
#include "cpu/ref_replay_engine.hh"
#include "cpu/replay_engine.hh"

namespace msim::cpu
{

namespace
{

constexpr unsigned kFetchBufCap = 512;
constexpr unsigned kFwdRingSize = 64;

} // namespace

bool
CoreConfig::defaultEventSkip()
{
    static const bool on = envBool("MSIM_EVENT_SKIP", true);
    return on;
}

CoreConfig
CoreConfig::inOrder1Way()
{
    CoreConfig c;
    c.outOfOrder = false;
    c.issueWidth = 1;
    return c;
}

CoreConfig
CoreConfig::inOrder4Way()
{
    CoreConfig c;
    c.outOfOrder = false;
    c.issueWidth = 4;
    return c;
}

CoreConfig
CoreConfig::outOfOrder4Way()
{
    CoreConfig c;
    c.outOfOrder = true;
    c.issueWidth = 4;
    return c;
}

PipelineCore::PipelineCore(const CoreConfig &config, mem::MemoryPort &memory)
    : cfg(config), mem_(memory), fuPool(config.issueWidth),
      predictor(config.predictorEntries), fwdRing(kFwdRingSize)
{
    if (cfg.retireWidth == 0)
        cfg.retireWidth = cfg.issueWidth;
}

Cycle
PipelineCore::readyOf(ValId id) const
{
    if (id == kNoVal || id >= valReady.size())
        return 0; // immediates and pre-run values are always ready
    return valReady[id];
}

void
PipelineCore::reserveValIds(size_t count)
{
    if (count > valReady.size()) {
        valReady.resize(count, 0);
        valClass.resize(count, static_cast<u8>(StallClass::FuStall));
    }
}

void
PipelineCore::setReady(ValId id, Cycle t)
{
    if (id == kNoVal)
        return;
    if (id >= valReady.size()) {
        // Grow geometrically so a long trace costs O(n) total copying.
        size_t n = std::max<size_t>(valReady.size() * 2, 8192);
        n = std::max<size_t>(n, static_cast<size_t>(id) + 1);
        reserveValIds(n);
    }
    valReady[id] = t;
}

StallClass
PipelineCore::classOf(ValId id) const
{
    if (id == kNoVal || id >= valClass.size())
        return StallClass::FuStall;
    return static_cast<StallClass>(valClass[id]);
}

void
PipelineCore::setClass(ValId id, StallClass cls)
{
    if (id != kNoVal && id < valClass.size())
        valClass[id] = static_cast<u8>(cls);
}

void
PipelineCore::feed(const isa::Inst &inst)
{
    fetchBuf.push_back(inst);
    if (!manualPump && fetchBuf.size() > kFetchBufCap)
        pump(false);
}

void
PipelineCore::runTo(Cycle target)
{
    while (now < target && !done())
        step();
}

void
PipelineCore::finish()
{
    pump(true);
    stats_.cycles = now;
}

void
PipelineCore::runRecorded(const prog::RecordedTrace &trace)
{
    if (cfg.outOfOrder) {
        // Out-of-order replay runs in the dedicated compact engine
        // (dependency-driven wakeup over a ring window); it produces
        // stats bit-identical to feeding the trace live.
        if (cfg.referenceEngine) {
            RefReplayEngine engine(cfg, mem_);
#if MSIM_OBS_ENABLED
            engine.setSiteAttribution(siteAttr_);
#endif
            stats_ = engine.run(trace);
        } else {
            ReplayEngine engine(cfg, mem_);
#if MSIM_OBS_ENABLED
            engine.setTimeline(timeline_);
            engine.setSiteAttribution(siteAttr_);
#endif
            stats_ = engine.run(trace);
        }
        now = stats_.cycles;
        return;
    }

    replay_ = &trace;
    cursor_.emplace(trace);
    reserveValIds(static_cast<size_t>(trace.maxValId()) + 1);
    storeDone_.assign(trace.numStores(), kNever);

    while (!done())
        step();
    stats_.cycles = now;

    // Retirement skipped the per-instruction mix tally in replay mode;
    // the totals are a pure function of the trace's opcode counts.
    for (unsigned i = 0; i < isa::kNumOps; ++i) {
        const auto op = static_cast<isa::Op>(i);
        const u64 n = trace.countOf(op);
        if (n == 0)
            continue;
        switch (isa::mixClassOf(op)) {
          case isa::MixClass::Fu: stats_.mixFu += n; break;
          case isa::MixClass::Branch: stats_.mixBranch += n; break;
          case isa::MixClass::Memory: stats_.mixMemory += n; break;
          case isa::MixClass::Vis: stats_.mixVis += n; break;
        }
    }
}

void
PipelineCore::pump(bool draining)
{
    if (draining) {
        while (!window.empty() || !fetchBuf.empty())
            step();
    } else {
        while (fetchBuf.size() > kFetchBufCap / 2)
            step();
    }
}

void
PipelineCore::expireEvents()
{
    while (!memqFrees.empty() && memqFrees.top() <= now) {
        memqFrees.pop();
        --memqUsed;
    }
    while (!branchResolves.empty() && branchResolves.top() <= now) {
        branchResolves.pop();
        --specBranches;
    }
    std::erase_if(pendingStores,
                  [this](const auto &p) { return p.first <= now; });
}

Cycle
PipelineCore::forwardingReady(const DynInst &load) const
{
    const Addr lo = load.inst.addr;
    const Addr hi = lo + load.inst.memSize;
    const RingEntry *best = nullptr;
    for (const auto &e : fwdRing) {
        if (!e.valid || e.seq >= load.seq)
            continue;
        if (lo >= e.addr && hi <= e.addr + e.size) {
            if (!best || e.seq > best->seq)
                best = &e;
        }
    }
    return best ? best->dataReady : kNever;
}

Cycle
PipelineCore::replayForwardingReady(const DynInst &load) const
{
    // The reference scan picks the youngest older covering store still
    // in the ring. The candidate is precomputed at record time; the
    // ring holds the last kFwdRingSize dispatched stores, so residency
    // is one comparison, and an unissued candidate's dataReady is
    // kNever exactly like the reference ring entry's.
    const u32 cand = load.fwdCand;
    if (cand == prog::kNoFwdStore)
        return kNever;
    if (cand + kFwdRingSize < dispatchedStores_)
        return kNever; // evicted before this load issued
    return storeDone_[cand];
}

bool
PipelineCore::canIssue(const DynInst &di) const
{
    for (unsigned i = 0; i < di.inst.numSrcs; ++i)
        if (readyOf(di.inst.src[i]) > now)
            return false;
    return fuPool.available(di.inst.op, now);
}

void
PipelineCore::issue(DynInst &di)
{
    using isa::Op;
    di.issued = true;
    const Cycle done = fuPool.reserve(di.inst.op, now);

    switch (di.inst.op) {
      case Op::Load: {
        const Cycle fwd =
            replay_ ? replayForwardingReady(di) : forwardingReady(di);
        if (fwd != kNever) {
            di.readyTime = std::max(done, fwd);
            di.level = mem::HitLevel::L1;
            ++stats_.loadsL1;
        } else {
            const auto res =
                mem_.access(di.inst.addr, mem::AccessKind::Load, done);
            di.readyTime = res.ready;
            di.level = res.level;
            switch (res.level) {
              case mem::HitLevel::L1: ++stats_.loadsL1; break;
              case mem::HitLevel::L2: ++stats_.loadsL2; break;
              case mem::HitLevel::Memory: ++stats_.loadsMem; break;
            }
        }
        di.memFreeTime = di.readyTime;
        memqFrees.push(di.memFreeTime);
        setReady(di.inst.dst, di.readyTime);
        setClass(di.inst.dst, di.level == mem::HitLevel::L1
                                  ? StallClass::MemL1Hit
                                  : StallClass::MemL1Miss);
        break;
      }
      case Op::Store: {
        const auto res =
            mem_.access(di.inst.addr, mem::AccessKind::Store, done);
        di.readyTime = done; // retirement does not wait for stores
        di.memFreeTime = res.ready;
        di.level = res.level;
        memqFrees.push(di.memFreeTime);
        if (replay_)
            storeDone_[di.storeOrd] = done;
        else if (di.fwdRing >= 0)
            fwdRing[di.fwdRing].dataReady = done;
        break;
      }
      case Op::Prefetch: {
        const auto res =
            mem_.access(di.inst.addr, mem::AccessKind::Prefetch, done);
        di.readyTime = done;
        di.memFreeTime = done;
        memqFrees.push(done);
        ++stats_.prefetchesIssued;
        if (res.dropped)
            ++stats_.prefetchesDropped;
        break;
      }
      case Op::Branch: {
        di.readyTime = done; // the branch resolves when it executes
        branchResolves.push(done);
        if (di.mispredicted) {
            dispatchBlockedUntil = done + cfg.mispredictPenalty;
            awaitingRedirect = false;
        }
        break;
      }
      default: {
        di.readyTime = done;
        setReady(di.inst.dst, done);
        break;
      }
    }
}

unsigned
PipelineCore::tryRetire()
{
    unsigned retired = 0;
    while (retired < cfg.retireWidth && !window.empty()) {
        DynInst &head = window.front();
        if (!head.issued)
            break;
        // The out-of-order core commits in order from its window; the
        // in-order core has no ROB -- an issued instruction has already
        // written back, so only stall-on-use (at issue) delays it.
        if (cfg.outOfOrder && head.readyTime > now)
            break;
        // retire-order-monotonicity (live-path mirror of the replay
        // engine's check): commits are in program order at
        // non-decreasing cycles, and out-of-order commit waits for the
        // head's result.
        MSIM_AUDIT_CHECK(now >= auditLastRetire_,
                         "retire time regressed: %llu < %llu",
                         static_cast<unsigned long long>(now),
                         static_cast<unsigned long long>(auditLastRetire_));
        MSIM_AUDIT_CHECK(!cfg.outOfOrder || head.readyTime <= now,
                         "retiring head seq %llu ready=%llu at %llu",
                         static_cast<unsigned long long>(head.seq),
                         static_cast<unsigned long long>(head.readyTime),
                         static_cast<unsigned long long>(now));
#if MSIM_AUDIT_ENABLED
        auditLastRetire_ = now;
#endif
        if (head.inst.isStore() && head.memFreeTime > now) {
            // The store retires but keeps its memory-queue slot until the
            // cache accepts it; remember what it is waiting on.
            const StallClass cls = head.level == mem::HitLevel::L1
                                       ? StallClass::MemL1Hit
                                       : StallClass::MemL1Miss;
            pendingStores.emplace_back(head.memFreeTime, cls);
        }
        if (!replay_) {
            // Replay derives the mix totals from the trace's opcode
            // counts in one pass at the end (see runRecorded).
            switch (isa::mixClassOf(head.inst.op)) {
              case isa::MixClass::Fu: ++stats_.mixFu; break;
              case isa::MixClass::Branch: ++stats_.mixBranch; break;
              case isa::MixClass::Memory: ++stats_.mixMemory; break;
              case isa::MixClass::Vis: ++stats_.mixVis; break;
            }
        }
        ++stats_.retired;
        ++retired;
        window.pop_front();
    }
    return retired;
}

unsigned
PipelineCore::tryExecute()
{
    unsigned issued = 0;
    size_t keep = 0;
    bool stop = false;
    for (size_t i = 0; i < unissued.size(); ++i) {
        DynInst *di = unissued[i];
        if (di->issued)
            continue; // already handled (defensive; should not happen)
        if (!stop && issued < cfg.issueWidth && canIssue(*di)) {
            issue(*di);
            ++issued;
            continue;
        }
        if (!cfg.outOfOrder)
            stop = true; // in-order issue: younger instructions must wait
        unissued[keep++] = di;
    }
    unissued.resize(keep);
    return issued;
}

unsigned
PipelineCore::tryDispatch()
{
    unsigned dispatched = 0;
    unsigned taken_this_cycle = 0;
    while (dispatched < cfg.issueWidth && !fetchBuf.empty()) {
        if (awaitingRedirect || now < dispatchBlockedUntil)
            break;
        if (window.size() >= cfg.windowSize)
            break;
        if (specBranches >= cfg.maxSpecBranches)
            break;
        const isa::Inst &inst = fetchBuf.front();
        if (inst.isMem() && memqUsed >= cfg.memQueueSize)
            break;

        DynInst di;
        di.inst = inst;
        di.seq = nextSeq++;
        if (inst.dst != kNoVal)
            setReady(inst.dst, kNever);

        if (inst.isBranch()) {
            const bool correct =
                predictor.predictAndUpdate(inst.pc, inst.taken());
            ++stats_.branches;
            ++specBranches;
            if (!correct) {
                ++stats_.mispredicts;
                di.mispredicted = true;
            }
        }
        if (inst.isStore()) {
            fwdRing[fwdNext] =
                RingEntry{di.seq, inst.addr, inst.memSize, kNever, true};
            di.fwdRing = static_cast<int>(fwdNext);
            fwdNext = (fwdNext + 1) % kFwdRingSize;
        }
        if (inst.isMem())
            ++memqUsed;

        const bool was_taken_branch = inst.isBranch() && inst.taken();
        const bool mispredicted = di.mispredicted;
        window.push_back(di);
        unissued.push_back(&window.back());
        fetchBuf.pop_front();
        ++dispatched;

        if (mispredicted) {
            awaitingRedirect = true;
            break; // no fetch past an unresolved mispredicted branch
        }
        if (was_taken_branch &&
            ++taken_this_cycle >= cfg.takenBranchesPerCycle) {
            break; // fetch limit: one taken branch per cycle
        }
    }
    // window-occupancy: the structural limits dispatch stalls on can
    // never be exceeded.
    MSIM_AUDIT_CHECK(window.size() <= cfg.windowSize,
                     "window %zu > size %u", window.size(),
                     cfg.windowSize);
    MSIM_AUDIT_CHECK(memqUsed <= cfg.memQueueSize, "memq %u > size %u",
                     memqUsed, cfg.memQueueSize);
    MSIM_AUDIT_CHECK(specBranches <= cfg.maxSpecBranches,
                     "spec branches %u > max %u", specBranches,
                     cfg.maxSpecBranches);
    return dispatched;
}

unsigned
PipelineCore::tryDispatchReplay()
{
    unsigned dispatched = 0;
    unsigned taken_this_cycle = 0;
    while (dispatched < cfg.issueWidth && !cursor_->atEnd()) {
        if (awaitingRedirect || now < dispatchBlockedUntil)
            break;
        if (window.size() >= cfg.windowSize)
            break;
        if (specBranches >= cfg.maxSpecBranches)
            break;
        const isa::Op op = cursor_->peekOp();
        const bool is_mem = op == isa::Op::Load || op == isa::Op::Store ||
                            op == isa::Op::Prefetch;
        if (is_mem && memqUsed >= cfg.memQueueSize)
            break;

        window.emplace_back();
        DynInst &di = window.back();
        cursor_->next(di.inst, di.fwdCand, di.storeOrd);
        di.seq = nextSeq++;
        if (di.inst.dst != kNoVal)
            setReady(di.inst.dst, kNever);

        if (di.inst.isBranch()) {
            const bool correct =
                predictor.predictAndUpdate(di.inst.pc, di.inst.taken());
            ++stats_.branches;
            ++specBranches;
            if (!correct) {
                ++stats_.mispredicts;
                di.mispredicted = true;
            }
        }
        if (di.inst.isStore())
            ++dispatchedStores_;
        if (is_mem)
            ++memqUsed;

        unissued.push_back(&di);
        ++dispatched;

        if (di.mispredicted) {
            awaitingRedirect = true;
            break; // no fetch past an unresolved mispredicted branch
        }
        if (di.inst.isBranch() && di.inst.taken() &&
            ++taken_this_cycle >= cfg.takenBranchesPerCycle) {
            break; // fetch limit: one taken branch per cycle
        }
    }
    // window-occupancy, as in tryDispatch().
    MSIM_AUDIT_CHECK(window.size() <= cfg.windowSize,
                     "window %zu > size %u", window.size(),
                     cfg.windowSize);
    MSIM_AUDIT_CHECK(memqUsed <= cfg.memQueueSize, "memq %u > size %u",
                     memqUsed, cfg.memQueueSize);
    MSIM_AUDIT_CHECK(specBranches <= cfg.maxSpecBranches,
                     "spec branches %u > max %u", specBranches,
                     cfg.maxSpecBranches);
    return dispatched;
}

StallClass
PipelineCore::classifyBlock() const
{
    if (!window.empty()) {
        const DynInst &head = window.front();
        if (head.issued && head.readyTime > now && head.inst.isLoad()) {
            return head.level == mem::HitLevel::L1 ? StallClass::MemL1Hit
                                                   : StallClass::MemL1Miss;
        }
        if (!cfg.outOfOrder && !head.issued) {
            // Stall-on-use: charge the latest-arriving blocked source.
            Cycle worst = 0;
            StallClass cls = StallClass::FuStall;
            for (unsigned i = 0; i < head.inst.numSrcs; ++i) {
                const Cycle r = readyOf(head.inst.src[i]);
                if (r > now && r >= worst) {
                    worst = r;
                    cls = classOf(head.inst.src[i]);
                }
            }
            return cls;
        }
        return StallClass::FuStall;
    }
    if (awaitingRedirect || now < dispatchBlockedUntil)
        return StallClass::FuStall;
    // Dispatch blocked by a full memory queue: charge the earliest
    // pending store's memory level.
    const std::pair<Cycle, StallClass> *oldest = nullptr;
    for (const auto &p : pendingStores) {
        if (p.first > now && (!oldest || p.first < oldest->first))
            oldest = &p;
    }
    if (oldest)
        return oldest->second;
    return StallClass::FuStall;
}

Cycle
PipelineCore::nextEventTime() const
{
    Cycle next = kNever;
    if (!window.empty()) {
        const DynInst &head = window.front();
        if (head.issued && head.readyTime > now)
            next = std::min(next, head.readyTime);
    }
    for (const DynInst *di : unissued) {
        if (di->issued)
            continue;
        Cycle t = now + 1;
        for (unsigned i = 0; i < di->inst.numSrcs; ++i)
            t = std::max(t, readyOf(di->inst.src[i]));
        if (t != kNever) {
            t = std::max(t, fuPool.nextFree(di->inst.op, now));
            next = std::min(next, t);
        }
        if (!cfg.outOfOrder)
            break; // only the oldest unissued matters in order
    }
    if (!memqFrees.empty())
        next = std::min(next, memqFrees.top());
    if (!branchResolves.empty())
        next = std::min(next, branchResolves.top());
    if (dispatchBlockedUntil > now)
        next = std::min(next, dispatchBlockedUntil);
    return next;
}

void
PipelineCore::step()
{
#if MSIM_OBS_ENABLED
    if (now >= obsNextAt_) [[unlikely]] {
        obsNextAt_ = timeline_->sample(
            now, stats_.retired, stats_.busy, stats_.fuStall,
            stats_.memL1Hit, stats_.memL1Miss,
            static_cast<u32>(window.size()), memqUsed);
    }
#endif
    expireEvents();

    const unsigned retired = tryRetire();
    const unsigned issued = tryExecute();
    const unsigned dispatched =
        replay_ ? tryDispatchReplay() : tryDispatch();

    const double r = static_cast<double>(retired) / cfg.retireWidth;
    stats_.charge(StallClass::Busy, r);
    StallClass block = StallClass::Busy;
    if (retired < cfg.retireWidth) {
        block = classifyBlock();
        stats_.charge(block, 1.0 - r);
    }

    if (retired == 0 && issued == 0 && dispatched == 0 && !done()) {
        // Nothing happened this cycle: fast-forward to the next event
        // (computed against the *current* cycle so an event one cycle
        // out is found), charging the idle gap to the blocking class.
        const Cycle next = nextEventTime();
        if (next == kNever) {
            if (!window.empty()) {
                const DynInst &head = window.front();
                panic("pipeline deadlock at cycle %llu: window=%zu "
                      "unissued=%zu head{op=%s issued=%d ready=%llu "
                      "srcs=%u} memq=%u spec=%u",
                      static_cast<unsigned long long>(now),
                      window.size(), unissued.size(),
                      isa::opName(head.inst.op), head.issued,
                      static_cast<unsigned long long>(head.readyTime),
                      head.inst.numSrcs, memqUsed, specBranches);
            }
            ++now;
            return; // dispatch-only state; it will proceed next cycle
        }
        if (next > now + 1) {
            const Cycle dt = next - now - 1;
            stats_.charge(block, static_cast<double>(dt));
            now = next;
            return;
        }
    }
    ++now;
}

} // namespace msim::cpu
