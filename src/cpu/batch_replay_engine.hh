/**
 * @file
 * Batched multi-configuration trace replay: one traversal of a
 * recorded trace drives a whole sweep group.
 *
 * Every paper table is a sweep — the same benchmark trace replayed
 * against N machine configurations — and after the trace and memory
 * fast paths the dominant per-point cost is streaming and re-decoding
 * the identical prog::RecordedTrace SoA columns once per point.  The
 * batch engine amortizes that: the trace is consumed in fixed-size
 * chunks, each chunk's per-instruction dispatch facts (unit class,
 * memory kind, branch outcome, source-producer distances) are decoded
 * exactly once into a packed 8-byte DecodedInst stream, and then every
 * lane — one ReplayEngine plus its own memory hierarchy per
 * configuration — is stepped through the chunk before the traversal
 * advances.  Trace memory traffic and decode are paid once per group
 * instead of once per point, and each lane's hot state (window ring,
 * time rings, cache tag stores) stays resident across chunks.
 *
 * Two whole-trace facts are additionally shared across lanes up front:
 *
 *  - Branch outcomes (taken bits) are extracted from the flags column
 *    in one pass.
 *  - Branch *predictions* depend only on the dynamic branch sequence
 *    and the predictor table size, never on machine timing, so the
 *    per-branch mispredict column is computed once per distinct
 *    predictorEntries value in the group and shared by every lane with
 *    that size — the predictor is evaluated once per batch instead of
 *    once per lane.
 *
 * Lanes pause only between whole cycles (ReplayEngine::advanceTo), so
 * each lane executes the exact cycle sequence of an uninterrupted
 * sequential replay: results are bit-identical to sim::replayTrace,
 * enforced by tests/test_batch_replay.cc and the audit fuzzer's batch
 * mode.  Dispatch may overrun a chunk boundary by less than one issue
 * width; the decode window carries that margin.
 *
 * Lanes whose configuration the lockstep path cannot drive (in-order
 * cores, the preserved reference engine, windows >= 2^16-1 that the
 * u16 source deltas cannot express) are rejected by supports(); the
 * caller (sim::replayTraceBatch) falls back to sequential replay for
 * those.
 */

#ifndef MSIM_CPU_BATCH_REPLAY_ENGINE_HH_
#define MSIM_CPU_BATCH_REPLAY_ENGINE_HH_

#include <span>
#include <vector>

#include "cpu/replay_engine.hh"

namespace msim::mem
{
class BatchMemory;
}

namespace msim::cpu
{

struct CoreConfig;

/** See file comment. One instance replays one trace over many lanes. */
class BatchReplayEngine
{
  public:
    /** One configuration's replay: core parameters + its own memory. */
    struct Lane
    {
        const CoreConfig *config;
        mem::MemoryPort *memory;
    };

    /**
     * Default chunk length (dynamic instructions per lockstep step):
     * large enough that per-chunk lane switching and decode setup are
     * noise, small enough that the decoded stream (8 B/inst) and the
     * chunk's column slices stay cache-resident while N lanes consume
     * them.  Swept on the djpeg L1 sweep: throughput is flat within a
     * few percent from 1 Ki to 128 Ki; 16 Ki sat at the shallow
     * optimum.
     */
    static constexpr u64 kDefaultChunk = 16384;

    /** Can the lockstep path drive @p config bit-identically? */
    static bool supports(const CoreConfig &config);

    /**
     * @param trace  The recorded trace all lanes replay.
     * @param lanes  One entry per configuration; every config must
     *               satisfy supports().  Pointers must outlive run().
     * @param chunkInstructions  Lockstep granularity (clamped to >= 1).
     */
    BatchReplayEngine(const prog::RecordedTrace &trace,
                      std::span<const Lane> lanes,
                      u64 chunkInstructions = kDefaultChunk);

    /**
     * Attach the batched memory layer serving (some of) the lanes'
     * ports: after each chunk decode, run() hands it the chunk's
     * memory-lane window (mem::BatchMemory::setChunkWindow) so the
     * shared line-address columns cover every ordinal the chunk can
     * dispatch.  Optional — lanes on plain Hierarchy ports need no
     * per-chunk notification.  Call before run().
     */
    void setBatchMemory(mem::BatchMemory *bm) { batchMem_ = bm; }

    /** Drive every lane to completion; call exactly once. */
    void run();

    /** Final stats for @p lane; call once per lane, after run(). */
    ExecStats takeStats(size_t lane);

    /**
     * Minimum of values[k] over lanes with running[k] != 0, or ~u64{0}
     * when every lane has finished (including empty spans; mismatched
     * span lengths sweep the common prefix).  Cross-lane sweeps (the
     * min-cursor audit, per-lane horizon reductions) read the dense SoA
     * progress columns below through the runtime-dispatched
     * simd::Ops::minActiveU64 kernel — select-and-min over 4 lanes per
     * AVX2 step, scalar twin bit-identical by construction (integer
     * min is exact and order-insensitive; see common/simd.hh).
     * bench_micro BM_LaneHorizonMinReduction measures both paths.
     */
    static u64 minActiveLane(std::span<const u8> running,
                             std::span<const u64> values);

#if MSIM_OBS_ENABLED
    /**
     * Attach a timeline recorder to lane @p k's engine ("one track per
     * sweep lane"); call before run().
     */
    void
    setLaneTimeline(size_t k, obs::TimelineRecorder *tl)
    {
        engines_[k].setTimeline(tl);
    }

    /**
     * Attach a per-site attribution table to lane @p k's engine (one
     * table per sweep lane, like timelines); call before run().
     */
    void
    setLaneSiteAttribution(size_t k, obs::SiteAttribution *sa)
    {
        engines_[k].setSiteAttribution(sa);
    }
#endif

  private:
    void decodeChunk(u64 start, u64 end, u64 limit);

    const prog::RecordedTrace &trace_;
    u64 chunk_;
    unsigned margin_ = 1; ///< max issueWidth over lanes (overrun bound)

    std::vector<Lane> lanes_;
    std::vector<ReplayEngine> engines_;

    // Per-lane progress as structure-of-arrays columns (one entry per
    // lane): run()'s lockstep loop and the cross-lane reductions
    // (minActiveLane) sweep dense parallel arrays instead of chasing
    // per-lane objects.
    std::vector<u8> laneRunning_;
    std::vector<u64> laneCursor_;
    std::vector<u64> laneWindow_;

    /** Per-opcode cls | memKind bits of DecodedInst::meta. */
    u8 metaTable_[isa::kNumOps] = {};

    /** Decoded window for the current chunk (reused across chunks). */
    std::vector<ReplayEngine::DecodedInst> decoded_;
    u64 srcCursorNext_ = 0; ///< CSR offset of the next chunk's start
    u64 memCursorNext_ = 0; ///< memory-lane ordinal of the next start

    // Memory-lane span of the chunk just decoded ([begin, end) covers
    // instructions [start, limit), i.e. including the decode margin).
    u64 chunkMemBegin_ = 0;
    u64 chunkMemEnd_ = 0;
    mem::BatchMemory *batchMem_ = nullptr;

    /** Taken bit per dynamic branch (one extraction pass, all lanes). */
    std::vector<u8> branchTaken_;

    /** Mispredict column per distinct predictorEntries in the group. */
    std::vector<std::pair<unsigned, std::vector<u8>>> mispredicts_;
};

} // namespace msim::cpu

#endif // MSIM_CPU_BATCH_REPLAY_ENGINE_HH_
