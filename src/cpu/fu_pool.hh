/**
 * @file
 * Functional-unit pool with Table-2 counts and latencies.
 *
 * Fully pipelined units accept one operation per cycle; the FP divider
 * is occupied for its whole latency. Requests reserve the earliest-free
 * unit of the right class.
 */

#ifndef MSIM_CPU_FU_POOL_HH_
#define MSIM_CPU_FU_POOL_HH_

#include <vector>

#include "isa/inst.hh"
#include "isa/timing.hh"

namespace msim::cpu
{

/** All functional units of one core. */
class FuPool
{
  public:
    /** Build the pool for an @p issue_width -way machine (Table 2). */
    explicit FuPool(unsigned issue_width);

    /**
     * Is a unit of @p op's class free at cycle @p t?
     */
    bool available(isa::Op op, Cycle t) const;

    /**
     * Reserve a unit for @p op starting at @p t (must be available).
     * @return the cycle the result becomes available.
     */
    Cycle reserve(isa::Op op, Cycle t);

    /** Earliest cycle >= @p t at which a unit of @p op's class frees. */
    Cycle nextFree(isa::Op op, Cycle t) const;

    /** Class-level variants: one check covers every op of the class. */
    bool availableClass(isa::FuClass cls, Cycle t) const;
    Cycle nextFreeClass(isa::FuClass cls, Cycle t) const;

  private:
    const std::vector<Cycle> &unitsFor(isa::Op op) const;
    std::vector<Cycle> &unitsFor(isa::Op op);

    std::vector<Cycle> units[isa::kNumFuClasses]; ///< per-unit busy-until
};

} // namespace msim::cpu

#endif // MSIM_CPU_FU_POOL_HH_
