/**
 * @file
 * Reference out-of-order replay engine: the pre-optimization
 * ReplayEngine, preserved as the in-binary baseline.
 *
 * ReplayEngine (replay_engine.hh) later replaced the per-class
 * eligibility buckets with a single ordered list, moved the event
 * expiry to the points that read the queues, and consumed the trace's
 * precomputed memory lane. This class keeps the original scheduler
 * verbatim so the bit-identity tests (tests/test_mem_fastpath.cc) and
 * the before/after sweep benchmark (bench/bench_mem_fastpath.cpp)
 * have a faithful pre-PR model to compare against. Selected with
 * CoreConfig::referenceEngine. Do not optimize this file.
 *
 * The only mechanical adaptation: the per-load forwarding-candidate
 * column became the per-memory-op aux lane, so loads read
 * memAux_[memPos_] instead of loadFwds_[loadPos_++] — the identical
 * values in a different layout.
 */

#ifndef MSIM_CPU_REF_REPLAY_ENGINE_HH_
#define MSIM_CPU_REF_REPLAY_ENGINE_HH_

#include <algorithm>
#include <queue>
#include <vector>

#include "cpu/accounting.hh"
#include "cpu/branch_predictor.hh"
#include "isa/timing.hh"
#include "mem/hierarchy.hh"
#include "obs/site.hh"
#include "prog/recorded_trace.hh"

namespace msim::cpu
{

struct CoreConfig;

/** See file comment. One engine instance runs one trace once. */
class RefReplayEngine
{
  public:
    RefReplayEngine(const CoreConfig &config, mem::MemoryPort &memory);

    /** Replay @p trace to completion and return the execution stats. */
    ExecStats run(const prog::RecordedTrace &trace);

#if MSIM_OBS_ENABLED
    /**
     * Attribute retired instructions and stall charges per kernel site
     * while running (read-only hook; see obs/site.hh). Caller resets
     * @p sa for the trace's site table and this engine's retire width.
     */
    void setSiteAttribution(obs::SiteAttribution *sa) { siteAttr_ = sa; }
#endif

  private:
    static constexpr Cycle kNever = ~Cycle{0};
    static constexpr u32 kNil = ~u32{0};

    /** One window entry; fits the whole window in a few cache lines. */
    struct Slot
    {
        u64 seq;
        Addr addr;
        Cycle readyTime;
        Cycle depTime;     ///< max known source ready time
        Cycle memFreeTime;
        u32 fwdCand;       ///< load: candidate store ordinal
        u32 storeOrd;      ///< store: forwarding-ring ordinal
        u32 waiterHead;    ///< chain of (slot << 2 | src) waiting on dst
        u32 waiterNext[3];
        isa::Op op;
        u8 cls;            ///< functional-unit class of op
        u8 unknownSrcs;
        mem::HitLevel level;
        bool issued;
        bool mispredicted;
    };

    using MinHeap =
        std::priority_queue<Cycle, std::vector<Cycle>, std::greater<>>;

    /** Inline mirror of FuPool (see ReplayEngine). */
    struct UnitClass
    {
        Cycle busy[2] = {0, 0}; ///< per-unit busy-until (Table 2: <= 2)
        unsigned count = 1;
    };

    Slot &at(u64 seq) { return slots_[seq & slotMask_]; }
    const Slot &at(u64 seq) const { return slots_[seq & slotMask_]; }

    bool
    unitAvailable(unsigned cls, Cycle t) const
    {
        const UnitClass &u = units_[cls];
        for (unsigned i = 0; i < u.count; ++i)
            if (u.busy[i] <= t)
                return true;
        return false;
    }

    Cycle
    unitNextFree(unsigned cls, Cycle t) const
    {
        const UnitClass &u = units_[cls];
        Cycle m = u.busy[0];
        for (unsigned i = 1; i < u.count; ++i)
            m = std::min(m, u.busy[i]);
        return std::max(t, m);
    }

    Cycle
    unitReserve(isa::Op op, Cycle t)
    {
        const unsigned n = static_cast<unsigned>(op);
        UnitClass &u = units_[opCls_[n]];
        unsigned best = 0;
        for (unsigned i = 1; i < u.count; ++i)
            if (u.busy[i] < u.busy[best])
                best = i;
        const Cycle start = std::max(t, u.busy[best]);
        u.busy[best] = start + (opPipe_[n] ? 1u : opLat_[n]);
        return start + opLat_[n];
    }

    unsigned tryRetire();
    unsigned tryExecute();
    unsigned tryDispatch();
    void issueSlot(Slot &s);
    void wakeWaiters(Slot &producer);
    void expireEvents();
    StallClass classifyBlock() const;
    Cycle nextEventTime() const;
    Cycle forwardingReady(const Slot &load) const;

    // Configuration (retireWidth resolved).
    unsigned issueWidth_;
    unsigned windowSize_;
    unsigned memQueueSize_;
    unsigned maxSpecBranches_;
    unsigned takenBranchesPerCycle_;
    unsigned mispredictPenalty_;
    unsigned retireWidth_;

    mem::MemoryPort &mem_;
    BranchPredictor predictor_;

    // Functional units and opcode timing, flattened for inlining.
    UnitClass units_[isa::kNumFuClasses];
    u8 opCls_[isa::kNumOps] = {};
    u8 opLat_[isa::kNumOps] = {};
    bool opPipe_[isa::kNumOps] = {};

    // Trace columns (raw pointers into the RecordedTrace) and cursors.
    const u8 *ops_ = nullptr;
    const u8 *flags_ = nullptr;
    const u8 *numSrcs_ = nullptr;
    const u32 *srcProds_ = nullptr;
    const Addr *memAddrs_ = nullptr;
    const u32 *branchPcs_ = nullptr;
    const u32 *memAux_ = nullptr;
    const u16 *sites_ = nullptr;
    u64 instCount_ = 0;
    u64 fetchPos_ = 0;
    u64 srcPos_ = 0;
    u64 memPos_ = 0;
    u64 branchPos_ = 0;

    // Window ring (capacity = windowSize rounded up to a power of two).
    std::vector<Slot> slots_;
    u64 slotMask_ = 0;
    u64 headSeq_ = 0;
    u64 windowCount_ = 0;

    // Store-to-load forwarding state (see ReplayEngine).
    std::vector<Cycle> storeDone_;
    u32 dispatchedStores_ = 0;

    // Issue scheduling: (depTime, seq) min-heap of instructions whose
    // sources all have known ready times, drained into per-unit-class
    // sequence-ordered buckets once that time arrives.
    std::vector<std::pair<Cycle, u64>> readyHeap_;
    std::vector<u64> eligClass_[isa::kNumFuClasses];

    /// Memory-queue occupancy: +1 at dispatch, -1 when the heap entry
    /// pushed at issue time expires.
    unsigned memqUsed_ = 0;
    MinHeap memqFrees_;

    /// Unresolved speculated branches: +1 at dispatch, -1 at resolution.
    unsigned specBranches_ = 0;
    MinHeap branchResolves_;

    /// Stall classes of stores still holding memory-queue slots after
    /// retirement, with their release times (for attribution).
    std::vector<std::pair<Cycle, StallClass>> pendingStores_;

    Cycle now_ = 0;
    Cycle dispatchBlockedUntil_ = 0;
    bool awaitingRedirect_ = false;

#if MSIM_OBS_ENABLED
    obs::SiteAttribution *siteAttr_ = nullptr;

    u16
    blockSite() const
    {
        if (windowCount_ != 0)
            return sites_[headSeq_];
        return fetchPos_ < instCount_ ? sites_[fetchPos_] : 0;
    }
#endif

    ExecStats stats_;
};

} // namespace msim::cpu

#endif // MSIM_CPU_REF_REPLAY_ENGINE_HH_
