#include "cpu/replay_engine.hh"

#include <algorithm>
#include <bit>

#include "common/logging.hh"
#include "cpu/core.hh"
#include "obs/metrics.hh"

namespace msim::cpu
{

namespace
{

// Adaptive width cutover for the decoded-mode column scheduler: below
// these occupancies a bit-walk of the sparse set is cheaper than one
// full 64-lane kernel call; at or above them the one-shot vector form
// wins.  Perf knobs only — both forms compute the identical function
// (pinned by tests/test_simd.cc and the audit-build kernel checkers),
// so the crossover cannot affect simulation output.
constexpr int kWideWaiters = 16;  ///< wait-set / waiter-mask popcount
constexpr unsigned kWideRetire = 16; ///< retire width (power of two)

} // namespace

#if MSIM_OBS_ENABLED
namespace
{

/** Per-kernel invocation counters for the decoded-path SIMD calls. */
struct SimdKernelMetrics
{
    obs::MetricId le, minMasked, maxBroadcast, wakeDec;
};

const SimdKernelMetrics &
simdKernelMetrics()
{
    static const SimdKernelMetrics m = {
        obs::metricId("simd.le_bitmap64", obs::MetricKind::Counter),
        obs::metricId("simd.min_masked_u64", obs::MetricKind::Counter),
        obs::metricId("simd.max_broadcast_u64", obs::MetricKind::Counter),
        obs::metricId("simd.wake_dec_u8", obs::MetricKind::Counter),
    };
    return m;
}

} // namespace
#endif

ReplayEngine::ReplayEngine(const CoreConfig &config, mem::MemoryPort &memory)
    : issueWidth_(config.issueWidth), windowSize_(config.windowSize),
      memQueueSize_(config.memQueueSize),
      maxSpecBranches_(config.maxSpecBranches),
      takenBranchesPerCycle_(config.takenBranchesPerCycle),
      mispredictPenalty_(config.mispredictPenalty),
      retireWidth_(config.retireWidth ? config.retireWidth
                                      : config.issueWidth),
      eventSkip_(config.eventSkip), mem_(memory),
      predictor_(config.predictorEntries)
{
    const u64 cap = std::bit_ceil<u64>(std::max(1u, windowSize_));
    slots_.resize(cap);
    slotMask_ = cap - 1;
    for (auto &q : elig_)
        q.seqs.reserve(cap);

    for (unsigned c = 0; c < isa::kNumFuClasses; ++c) {
        const unsigned n = isa::defaultFuCount(
            static_cast<isa::FuClass>(c), config.issueWidth);
        units_[c].count = std::min<unsigned>(
            n, sizeof(UnitClass::busy) / sizeof(Cycle));
    }
    for (unsigned n = 0; n < isa::kNumOps; ++n) {
        const auto op = static_cast<isa::Op>(n);
        const isa::OpTiming t = isa::timingOf(op);
        OpInfo &info = opInfo_[n];
        info.cls = static_cast<u8>(isa::fuClassOf(op));
        info.latency = static_cast<u8>(t.latency);
        info.pipelined = t.pipelined ? 1 : 0;
        switch (op) {
          case isa::Op::Load: info.memKind = prog::kMemLoad; break;
          case isa::Op::Store: info.memKind = prog::kMemStore; break;
          case isa::Op::Prefetch: info.memKind = prog::kMemPrefetch; break;
          default: info.memKind = kNotMem; break;
        }
    }

    readyHeap_.reserve(cap);
    readyNext_.reserve(cap);
    // SIMD dispatch is resolved once per engine: a run never mixes
    // levels, and the batch benches install their forced-scalar
    // override before constructing engines.
    simd_ = &simd::ops();
    // The rings hold at most one entry per held occupancy slot: both
    // counters increment at dispatch and only drop in the drains that
    // also pop the ring, so the occupancy gates bound the ring sizes.
    memqFrees_.init(memQueueSize_);
    branchResolves_.init(maxSpecBranches_);
}

Cycle
ReplayEngine::forwardingReady(const Slot &load) const
{
    // The reference scan picks the youngest older covering store still
    // in the forwarding ring. The candidate is precomputed at record
    // time; the ring holds the last kFwdWindow dispatched stores, so
    // residency is one comparison, and an unissued candidate's
    // data-ready time is kNever exactly like the reference ring entry.
    const u32 cand = load.aux;
    if (cand == prog::kNoFwdStore)
        return kNever;
    if (cand + prog::kFwdWindow < dispatchedStores_)
        return kNever; // evicted before this load issued
    return storeDone_[cand];
}

void
ReplayEngine::issueSlot(Slot &s)
{
    using isa::Op;
    s.issued = true;
    const Cycle done = unitReserve(s.op, now_);

    switch (s.op) {
      case Op::Load: {
        const Cycle fwd = forwardingReady(s);
        if (fwd != kNever) {
            s.readyTime = std::max(done, fwd);
            s.level = mem::HitLevel::L1;
            ++stats_.loadsL1;
        } else {
            const auto res =
                mem_.accessAt(s.memOrd, s.addr, mem::AccessKind::Load, done);
            s.readyTime = res.ready;
            s.level = res.level;
            switch (res.level) {
              case mem::HitLevel::L1: ++stats_.loadsL1; break;
              case mem::HitLevel::L2: ++stats_.loadsL2; break;
              case mem::HitLevel::Memory: ++stats_.loadsMem; break;
            }
        }
        s.memFreeTime = s.readyTime;
        memqFrees_.push(s.memFreeTime);
        break;
      }
      case Op::Store: {
        const auto res =
            mem_.accessAt(s.memOrd, s.addr, mem::AccessKind::Store, done);
        s.readyTime = done; // retirement does not wait for stores
        s.memFreeTime = res.ready;
        s.level = res.level;
        memqFrees_.push(s.memFreeTime);
        storeDone_[s.aux] = done;
        break;
      }
      case Op::Prefetch: {
        const auto res =
            mem_.accessAt(s.memOrd, s.addr, mem::AccessKind::Prefetch,
                          done);
        s.readyTime = done;
        s.memFreeTime = done;
        memqFrees_.push(done);
        ++stats_.prefetchesIssued;
        if (res.dropped)
            ++stats_.prefetchesDropped;
        break;
      }
      case Op::Branch: {
        s.readyTime = done; // the branch resolves when it executes
        branchResolves_.push(done);
        if (s.mispredicted) {
            dispatchBlockedUntil_ = done + mispredictPenalty_;
            awaitingRedirect_ = false;
        }
        break;
      }
      default: {
        s.readyTime = done;
        break;
      }
    }
}

void
ReplayEngine::wakeWaiters(Slot &producer)
{
    // The producer's value becomes available at its readyTime (loads
    // and ALU ops write that very cycle into valReady_), so folding it
    // into each waiter's running depTime maximum reproduces the
    // reference recomputation over all sources. Woken instructions go
    // through the ready heap (never straight into the eligible list):
    // the producer's result time is beyond the current cycle, so the
    // reference could not issue them this cycle either.
    u32 link = producer.waiterHead;
    producer.waiterHead = kNil;
    const Cycle t = producer.readyTime;
    while (link != kNil) {
        const u64 idx = link >> 2;
        Slot &w = slots_[idx];
        const unsigned si = link & 3;
        link = w.waiterNext[si];
        w.depTime = std::max(w.depTime, t);
        if (--w.unknownSrcs == 0) {
            const u64 wseq = seqOf(idx);
            if (w.depTime <= now_ + 1) {
                readyNext_.push_back(wseq);
            } else {
                readyHeap_.emplace_back(w.depTime, wseq);
                std::push_heap(readyHeap_.begin(), readyHeap_.end(),
                               std::greater<>{});
            }
        }
    }
}

unsigned
ReplayEngine::tryRetire()
{
    unsigned retired = 0;
    while (retired < retireWidth_ && windowCount_ != 0) {
        Slot &head = at(headSeq_);
        if (!head.issued)
            break;
        if (head.readyTime > now_)
            break;
        // retire-order-monotonicity: retirement happens in program
        // order (headSeq_ is the ring head) at non-decreasing cycles,
        // and only for issued instructions whose result is ready. The
        // loop conditions above enforce this today; the checks pin the
        // contract against future reorderings of the retire path.
        MSIM_AUDIT_CHECK(now_ >= auditLastRetire_,
                         "retire time regressed: %llu < %llu",
                         static_cast<unsigned long long>(now_),
                         static_cast<unsigned long long>(auditLastRetire_));
        MSIM_AUDIT_CHECK(head.issued && head.readyTime <= now_,
                         "retiring head seq %llu issued=%d ready=%llu "
                         "at %llu",
                         static_cast<unsigned long long>(headSeq_),
                         head.issued,
                         static_cast<unsigned long long>(head.readyTime),
                         static_cast<unsigned long long>(now_));
#if MSIM_AUDIT_ENABLED
        auditLastRetire_ = now_;
#endif
        if (head.op == isa::Op::Store && head.memFreeTime > now_) {
            // The store retires but keeps its memory-queue slot until
            // the cache accepts it; remember what it is waiting on.
            // Expired entries are filtered by the reader; compact the
            // list only when it grows (outstanding stores are bounded
            // by the memory queue, so this stays small).
            if (pendingStores_.size() >= 64) {
                std::erase_if(pendingStores_, [this](const auto &p) {
                    return p.first <= now_;
                });
            }
            const StallClass cls = head.level == mem::HitLevel::L1
                                       ? StallClass::MemL1Hit
                                       : StallClass::MemL1Miss;
            pendingStores_.emplace_back(head.memFreeTime, cls);
        }
        // The instruction-mix tally is folded from the trace's opcode
        // counts in one pass at the end of run().
        ++stats_.retired;
        ++retired;
        ++headSeq_;
        --windowCount_;
    }
    return retired;
}

void
ReplayEngine::eligInsert(u64 seq)
{
    const unsigned c = at(seq).cls;
    elig_[c].insert(seq);
    eligMask_ |= static_cast<u8>(1u << c);
}

unsigned
ReplayEngine::tryExecute()
{
    // Reference semantics: scan all unissued in program order and issue
    // every source-ready instruction with a free unit, up to the issue
    // width.  Only dep-ready instructions are tracked here, queued per
    // unit class in ascending sequence order; each step issues the
    // minimum-sequence head among free classes, which is exactly the
    // next instruction the reference scan would have issued (skipped
    // busy-class entries do not consume issue width).  Availability is
    // resolved lazily at the first touch of a class — before which no
    // same-class issue can have happened — and re-resolved only after
    // an issue from that class, since nothing else changes its units
    // within a cycle; a class resolved busy stays busy for the rest of
    // the cycle, parking its whole queue in O(1).
    if (!readyNext_.empty()) {
        // Staged at some cycle t with dep == t + 1; now_ > t here, so
        // every entry is eligible — drain unconditionally.
        for (const u64 seq : readyNext_)
            eligInsert(seq);
        readyNext_.clear();
    }
    while (!readyHeap_.empty() && readyHeap_.front().first <= now_) {
        const u64 seq = readyHeap_.front().second;
        std::pop_heap(readyHeap_.begin(), readyHeap_.end(),
                      std::greater<>{});
        readyHeap_.pop_back();
        eligInsert(seq);
    }

    if (eligMask_ == 0)
        return 0; // nothing dep-ready anywhere: the common stall cycle

    u8 busyCls = 0;     // classes resolved busy for the rest of the cycle
    u8 resolvedCls = 0; // classes whose availability is currently known
    unsigned issued = 0;
    while (issued < issueWidth_) {
        unsigned bestC = isa::kNumFuClasses;
        u64 bestSeq = ~u64{0};
        for (u8 m = eligMask_ & static_cast<u8>(~busyCls); m;
             m &= static_cast<u8>(m - 1)) {
            const auto c = static_cast<unsigned>(std::countr_zero(m));
            if (!(resolvedCls & (1u << c))) {
                if (!unitAvailable(c, now_)) {
                    busyCls |= static_cast<u8>(1u << c);
                    continue;
                }
                resolvedCls |= static_cast<u8>(1u << c);
            }
            const u64 seq = elig_[c].front();
            if (seq < bestSeq) {
                bestC = c;
                bestSeq = seq;
            }
        }
        if (bestC == isa::kNumFuClasses)
            break;
        elig_[bestC].popFront();
        if (elig_[bestC].empty())
            eligMask_ &= static_cast<u8>(~(1u << bestC));
        resolvedCls &= static_cast<u8>(~(1u << bestC)); // units changed
        Slot &s = at(bestSeq);
        issueSlot(s);
        if (s.waiterHead != kNil)
            wakeWaiters(s);
        ++issued;
    }
    return issued;
}

void
ReplayEngine::drainMemq()
{
    while (!memqFrees_.empty() && memqFrees_.front() <= now_) {
        memqFrees_.popFront();
        --memqUsed_;
    }
}

void
ReplayEngine::drainBranches()
{
    while (!branchResolves_.empty() && branchResolves_.front() <= now_) {
        branchResolves_.popFront();
        --specBranches_;
    }
}

unsigned
ReplayEngine::tryDispatch()
{
    using isa::Op;
    // Nothing inside the loop clears these gates mid-cycle (a resolving
    // branch does so in issueSlot, not here), so check them once; the
    // mispredict that *sets* awaitingRedirect_ also breaks the loop.
    if (awaitingRedirect_ || now_ < dispatchBlockedUntil_)
        return 0;
    unsigned dispatched = 0;
    unsigned taken_this_cycle = 0;
    while (dispatched < issueWidth_ && fetchPos_ < instCount_) {
        if (windowCount_ >= windowSize_)
            break;
        // The occupancy gates drain their event queues lazily: the
        // drained count equals what the reference's start-of-cycle
        // expiry would have left, because the threshold is the same
        // now_ and nothing else reads the counts.
        if (specBranches_ >= maxSpecBranches_) {
            drainBranches();
            if (specBranches_ >= maxSpecBranches_)
                break;
        }
        // Decoded-mode runs never reach this dispatcher: advanceTo
        // routes them to advanceDecoded, whose fused loop reads the
        // batch driver's DecodedInst records and drives the column
        // scheduler.  This member-state path resolves everything from
        // the raw trace columns.
        const unsigned opn = ops_[fetchPos_];
        const OpInfo info = opInfo_[opn];
        const u8 cls = info.cls;
        const u8 mk = info.memKind;
        if (mk != kNotMem && memqUsed_ >= memQueueSize_) {
            drainMemq();
            if (memqUsed_ >= memQueueSize_)
                break;
        }

        // readyTime, depTime and memFreeTime need no reset: readyTime
        // and memFreeTime are only read once issueSlot assigned them,
        // and depTime is written unconditionally below.
        const u64 seq = headSeq_ + windowCount_;
        Slot &s = slots_[seq & slotMask_];
        s.op = static_cast<Op>(opn);
        s.cls = cls;
        s.waiterHead = kNil;
        s.issued = false;
        s.mispredicted = false;

        bool taken = false;
        if (s.op == Op::Branch) {
            taken = (flags_[fetchPos_] & isa::kFlagTaken) != 0;
            // Sampled replay binds a mid-trace slice and supplies the
            // whole-trace prediction sequence through the shared
            // column, rebased to the slice's first branch; without a
            // column this path trains a private predictor from cold.
            const bool mispredicted =
                mispredictCol_ != nullptr
                    ? mispredictCol_[branchPos_++] != 0
                    : !predictor_.predictAndUpdate(
                          branchPcs_[branchPos_++], taken);
            ++stats_.branches;
            ++specBranches_;
            if (mispredicted) {
                ++stats_.mispredicts;
                s.mispredicted = true;
            }
        }
        if (mk != kNotMem) {
            // One cursor over the dense memory lane: kind, address and
            // the precomputed ordinal arrive together.
            s.addr = memAddrs_[memPos_];
            s.memOrd = static_cast<u32>(memPos_);
            const u32 aux = memAux_[memPos_];
            ++memPos_;
            ++memqUsed_;
            s.aux = aux;
            if (mk == prog::kMemStore) {
                // Stores dispatch in order, so the recorded ordinal is
                // exactly the running dispatched-store count.
                dispatchedStores_ = aux + 1;
            }
        }

        // A producer outside the window has retired, so its value is
        // ready in the past and cannot affect the heap order or the
        // fast-forward bound; only in-window producers matter.
        Cycle dep = 0;
        unsigned unknown = 0;
        const unsigned ns = numSrcs_[fetchPos_];
        for (unsigned i = 0; i < ns; ++i) {
            const u32 p32 = srcProds_[srcPos_ + i];
            if (p32 == prog::kNoProducer || p32 < headSeq_)
                continue; // produced before the window: always ready
            Slot &p = slots_[p32 & slotMask_];
            if (!p.issued) {
                s.waiterNext[i] = p.waiterHead;
                p.waiterHead =
                    static_cast<u32>((seq & slotMask_) << 2) | i;
                ++unknown;
            } else {
                dep = std::max(dep, p.readyTime);
            }
        }
        srcPos_ += ns;
        s.unknownSrcs = static_cast<u8>(unknown);
        s.depTime = dep;
        if (unknown == 0) {
            if (dep <= now_) {
                // Already source-ready: skip the heap round-trip. The
                // new sequence number exceeds everything queued, and
                // the earliest possible issue (next cycle's execute)
                // matches the heap route exactly.
                elig_[s.cls].pushBack(seq);
                eligMask_ |= static_cast<u8>(1u << s.cls);
            } else if (dep == now_ + 1) {
                readyNext_.push_back(seq);
            } else {
                readyHeap_.emplace_back(dep, seq);
                std::push_heap(readyHeap_.begin(), readyHeap_.end(),
                               std::greater<>{});
            }
        }

        ++fetchPos_;
        ++windowCount_;
        ++dispatched;

        if (s.mispredicted) {
            awaitingRedirect_ = true;
            break; // no fetch past an unresolved mispredicted branch
        }
        if (taken && ++taken_this_cycle >= takenBranchesPerCycle_)
            break; // fetch limit: one taken branch per cycle
    }
    // window-occupancy: dispatch may never exceed the structural
    // limits its admission tests stall on.
    MSIM_AUDIT_CHECK(windowCount_ <= windowSize_,
                     "window %llu > size %u",
                     static_cast<unsigned long long>(windowCount_),
                     windowSize_);
    MSIM_AUDIT_CHECK(memqUsed_ <= memQueueSize_, "memq %u > size %u",
                     memqUsed_, memQueueSize_);
    MSIM_AUDIT_CHECK(specBranches_ <= maxSpecBranches_,
                     "spec branches %u > max %u", specBranches_,
                     maxSpecBranches_);
    return dispatched;
}

StallClass
ReplayEngine::classifyBlock() const
{
    if (windowCount_ != 0) {
        const Slot &head = at(headSeq_);
        if (head.issued && head.readyTime > now_ &&
            head.op == isa::Op::Load) {
            return head.level == mem::HitLevel::L1 ? StallClass::MemL1Hit
                                                   : StallClass::MemL1Miss;
        }
        return StallClass::FuStall;
    }
    if (awaitingRedirect_ || now_ < dispatchBlockedUntil_)
        return StallClass::FuStall;
    // Dispatch blocked by a full memory queue: charge the earliest
    // pending store's memory level. Entries at or below now_ are
    // skipped, so lazily compacted leftovers cannot change the answer.
    const std::pair<Cycle, StallClass> *oldest = nullptr;
    for (const auto &p : pendingStores_) {
        if (p.first > now_ && (!oldest || p.first < oldest->first))
            oldest = &p;
    }
    if (oldest)
        return oldest->second;
    return StallClass::FuStall;
}

Cycle
ReplayEngine::nextEventTime()
{
    // Same value as the reference nextEventTime(): instructions with an
    // unissued producer contribute kNever there and are exactly the
    // ones absent from elig_/readyHeap_ here. The event queues are
    // drained first so a stale released entry cannot shorten the
    // fast-forward (the reference drained them at cycle start).
    drainMemq();
    drainBranches();
    Cycle next = kNever;
    if (windowCount_ != 0) {
        const Slot &head = at(headSeq_);
        if (head.issued && head.readyTime > now_)
            next = std::min(next, head.readyTime);
    }
    for (unsigned c = 0; c < isa::kNumFuClasses; ++c) {
        if (elig_[c].empty())
            continue;
        // Eligible instructions' sources are all ready (<= now), so
        // only the unit's next free time can push them past now + 1.
        const Cycle t = std::max(now_ + 1, unitNextFree(c, now_));
        next = std::min(next, t);
    }
    for (const u64 seq : readyNext_) {
        // Staged entries have dep <= now_ + 1 by construction.
        next = std::min(next,
                        std::max(now_ + 1, unitNextFree(at(seq).cls, now_)));
    }
    for (const auto &[dep, seq] : readyHeap_) {
        Cycle t = std::max(now_ + 1, dep);
        t = std::max(t, unitNextFree(at(seq).cls, now_));
        next = std::min(next, t);
    }
    if (!memqFrees_.empty())
        next = std::min(next, memqFrees_.front());
    if (!branchResolves_.empty())
        next = std::min(next, branchResolves_.front());
    if (dispatchBlockedUntil_ > now_)
        next = std::min(next, dispatchBlockedUntil_);
    return next;
}

/**
 * Event-driven cycle skipping (see the theory note in DESIGN.md): after
 * every cycle — no dead-witness cycle required — bound the earliest
 * future cycle at which any phase can act.  Unlike nextEventTime(),
 * which folds per-entry unit free times over a full ready-heap walk,
 * every component here is O(1): the heap is ordered by dependence time,
 * so its front is the minimum, and unit contention is left out of the
 * bound entirely (landing at a cycle where the unit is still busy makes
 * the instruction eligible, which forces plain ticking from there).
 *
 * The bound additionally stops at every cycle where classifyBlock()
 * could change its answer — the head's completion, the end of a
 * redirect penalty, each pending store's release — so the stall class
 * of the whole skipped span equals the class at its first cycle and the
 * one bulk charge is bit-identical to per-cycle accounting.
 */
Cycle
ReplayEngine::skipHorizon(u64 fetchLimit, bool final) const
{
    // Events already staged for the next cycle: just tick.
    if (!readyNext_.empty())
        return 0;
    if (eligMask_ != 0)
        return 0;
    if (!readyHeap_.empty() && readyHeap_.front().first <= now_ + 1)
        return 0;
    // A lane at its chunk limit pauses on the next whole-cycle
    // boundary; the next chunk's dispatches may land at now_ + 1.
    if (!final && fetchPos_ >= fetchLimit)
        return 0;

    Cycle h = kNever;
    if (windowCount_ != 0) {
        const Slot &head = at(headSeq_);
        if (head.issued) {
            if (head.readyTime <= now_ + 1)
                return 0; // retire event next cycle
            h = head.readyTime;
        }
    }
    if (!readyHeap_.empty())
        h = std::min(h, readyHeap_.front().first);

    // Dispatch: the gates only drain their event rings lazily, so the
    // occupancy counters can exceed the rings' live prefixes; the ring
    // fronts still lower-bound when a gate can open, and a counter at
    // its limit with an empty ring (dispatched but unissued occupants)
    // can only open after an issue event, which is covered above.
    if (!awaitingRedirect_ && fetchPos_ < instCount_ &&
        windowCount_ < windowSize_) {
        Cycle t = std::max(now_ + 1, dispatchBlockedUntil_);
        bool gated = false;
        const unsigned opn = ops_[fetchPos_];
        const u8 mk = opInfo_[opn].memKind;
        if (static_cast<isa::Op>(opn) == isa::Op::Branch &&
            specBranches_ >= maxSpecBranches_) {
            if (branchResolves_.empty())
                gated = true;
            else
                t = std::max(t, branchResolves_.front());
        }
        if (!gated && mk != kNotMem && memqUsed_ >= memQueueSize_) {
            if (memqFrees_.empty())
                gated = true;
            else
                t = std::max(t, memqFrees_.front());
        }
        if (!gated) {
            if (t <= now_ + 1)
                return 0; // dispatch may proceed next cycle
            h = std::min(h, t);
        }
    }

    // Drained-window classification stops: with nothing in flight,
    // classifyBlock() switches answers at the end of the redirect
    // penalty and at each pending store's release time (all release
    // times are memqFrees_ entries, pushed at issue).
    if (windowCount_ == 0) {
        if (dispatchBlockedUntil_ > now_)
            h = std::min(h, dispatchBlockedUntil_);
        if (!memqFrees_.empty())
            h = std::min(h, std::max(now_ + 1, memqFrees_.front()));
    }

    if (h == kNever) {
        // An unissued instruction's minimal-sequence representative has
        // every producer issued and therefore sits in the ready
        // structures checked above, so an unbounded horizon with work
        // in flight is a real deadlock, exactly like the legacy path.
        if (windowCount_ != 0) {
            const Slot &head = at(headSeq_);
            panic("replay deadlock at cycle %llu: window=%llu "
                  "head{op=%s issued=%d ready=%llu} memq=%u spec=%u "
                  "next fill=%llu",
                  static_cast<unsigned long long>(now_),
                  static_cast<unsigned long long>(windowCount_),
                  isa::opName(head.op), head.issued,
                  static_cast<unsigned long long>(head.readyTime),
                  memqUsed_, specBranches_,
                  static_cast<unsigned long long>(mem_.nextFillTime(now_)));
        }
        return 0;
    }
    return h;
}

#if MSIM_AUDIT_ENABLED
void
ReplayEngine::auditSkipSpan(Cycle now, Cycle h, u64 headSeq, u64 wcount,
                            bool eligEmpty, u64 waitBits) const
{
    MSIM_AUDIT_CHECK(h > now + 1 && eligEmpty && readyNext_.empty(),
                     "skip span [%llu, %llu) with staged work",
                     static_cast<unsigned long long>(now + 1),
                     static_cast<unsigned long long>(h));
    for (u64 wb = waitBits; wb != 0; wb &= wb - 1) {
        const unsigned idx = std::countr_zero(wb);
        MSIM_AUDIT_CHECK(depCol_[idx] >= h,
                         "wait event (slot %u, dep %llu) inside skip "
                         "span [%llu, %llu)",
                         idx,
                         static_cast<unsigned long long>(depCol_[idx]),
                         static_cast<unsigned long long>(now + 1),
                         static_cast<unsigned long long>(h));
    }
    for (const auto &[dep, seq] : readyHeap_) {
        MSIM_AUDIT_CHECK(dep >= h,
                         "ready event (seq %llu, dep %llu) inside skip "
                         "span [%llu, %llu)",
                         static_cast<unsigned long long>(seq),
                         static_cast<unsigned long long>(dep),
                         static_cast<unsigned long long>(now + 1),
                         static_cast<unsigned long long>(h));
    }
    if (wcount != 0) {
        const Slot &head = slots_[headSeq & slotMask_];
        MSIM_AUDIT_CHECK(!head.issued || head.readyTime >= h,
                         "head retire at %llu inside skip span "
                         "[%llu, %llu)",
                         static_cast<unsigned long long>(head.readyTime),
                         static_cast<unsigned long long>(now + 1),
                         static_cast<unsigned long long>(h));
    }
}
#endif

void
ReplayEngine::bind(const prog::RecordedTrace &trace)
{
    trace_ = &trace;
    ops_ = trace.opCol().data();
    flags_ = trace.flagsCol().data();
    numSrcs_ = trace.numSrcsCol().data();
    srcProds_ = trace.srcProdCol().data();
    memAddrs_ = trace.memAddrCol().data();
    memKinds_ = trace.memKindCol().data();
    memAux_ = trace.memAuxCol().data();
    branchPcs_ = trace.branchPcCol().data();
    sites_ = trace.siteCol().data();
    instCount_ = trace.instCount();

    storeDone_.assign(trace.numStores(), kNever);
}

void
ReplayEngine::warmMemory(const prog::RecordedTrace &trace, u64 memBegin,
                         u64 memEnd, mem::Hierarchy &memory)
{
    // prog's memory-lane kinds and mem's request kinds agree on the
    // three core-issued values, so the cast below is the mapping.
    static_assert(prog::kMemLoad ==
                  static_cast<u8>(mem::AccessKind::Load));
    static_assert(prog::kMemStore ==
                  static_cast<u8>(mem::AccessKind::Store));
    static_assert(prog::kMemPrefetch ==
                  static_cast<u8>(mem::AccessKind::Prefetch));
    const Addr *addrs = trace.memAddrCol().data();
    const u8 *kinds = trace.memKindCol().data();
    memEnd = std::min<u64>(memEnd, trace.memAddrCol().size());
    for (u64 m = memBegin; m < memEnd; ++m)
        memory.warmAccess(addrs[m],
                          static_cast<mem::AccessKind>(kinds[m]));
}

bool
ReplayEngine::advanceTo(u64 fetchLimit)
{
    return decoded_ ? advanceDecoded(fetchLimit) : advanceRaw(fetchLimit);
}

// Flattening the per-cycle step (retire / execute / dispatch and their
// helpers) into the run loop keeps the cycle state in registers across
// the phases instead of reloading members around three calls per
// simulated cycle.
[[gnu::flatten]] bool
ReplayEngine::advanceRaw(u64 fetchLimit)
{
    const bool final = fetchLimit >= instCount_;
    while (windowCount_ != 0 || fetchPos_ < instCount_) {
        // Pause only between whole cycles: dispatch inside the cycle is
        // bounded by instCount_ alone, so the fetch cursor may overrun
        // the limit by less than one issue width, and resuming from
        // here continues bit-identically to an uninterrupted run.
        if (!final && fetchPos_ >= fetchLimit)
            return false;
#if MSIM_OBS_ENABLED
        if (now_ >= obsNextAt_) [[unlikely]] {
            // Normalize the lazily-drained occupancy before sampling so
            // the row is identical whether the clock ticked or jumped
            // to this cycle (the drain history differs, the true
            // occupancy does not).
            drainMemq();
            obsNextAt_ = timeline_->sample(
                now_, stats_.retired, stats_.busy, stats_.fuStall,
                stats_.memL1Hit, stats_.memL1Miss,
                static_cast<u32>(windowCount_), memqUsed_);
        }
#endif
        const unsigned retired = tryRetire();
        const unsigned issued = tryExecute();
        const unsigned dispatched = tryDispatch();

        const double r = static_cast<double>(retired) / retireWidth_;
        stats_.charge(StallClass::Busy, r);
        StallClass block = StallClass::Busy;
        if (retired < retireWidth_) {
            block = classifyBlock();
            stats_.charge(block, 1.0 - r);
        }
#if MSIM_OBS_ENABLED
        if (siteAttr_) [[unlikely]] {
            // Mirror this cycle's charges per site, in integral ticks
            // of 1/retireWidth: one Busy tick at each retired
            // instruction's own site (tryRetire already advanced
            // headSeq_ past them), the remainder at the blocker's.
            for (unsigned i = 0; i < retired; ++i)
                siteAttr_->retire(sites_[headSeq_ - retired + i]);
            if (retired < retireWidth_)
                siteAttr_->charge(
                    blockSite(headSeq_, windowCount_, fetchPos_),
                    static_cast<unsigned>(block), retireWidth_ - retired);
        }
#endif

        if (eventSkip_) {
            // Event-driven scheduling: bound the next event after
            // *every* cycle — no dead-witness cycle needed — and jump
            // straight to it, charging the span to the blocking class
            // (constant across the span; see skipHorizon()).
            if (windowCount_ != 0 || fetchPos_ < instCount_) {
                Cycle h = skipHorizon(fetchLimit, final);
#if MSIM_OBS_ENABLED
                if (h > obsNextAt_)
                    h = obsNextAt_; // land exactly on the sample cycle
#endif
                if (h > now_ + 1) {
#if MSIM_AUDIT_ENABLED
                    auditSkipSpan(now_, h, headSeq_, windowCount_,
                                  eligMask_ == 0, 0);
#endif
                    const Cycle dt = h - now_ - 1;
                    const StallClass spanCls =
                        retired < retireWidth_ ? block : classifyBlock();
                    stats_.charge(spanCls, static_cast<double>(dt));
#if MSIM_OBS_ENABLED
                    if (siteAttr_) [[unlikely]]
                        siteAttr_->charge(
                            blockSite(headSeq_, windowCount_, fetchPos_),
                            static_cast<unsigned>(spanCls),
                            dt * retireWidth_);
#endif
                    now_ = h;
                    continue;
                }
            }
        } else if (retired == 0 && issued == 0 && dispatched == 0 &&
                   (windowCount_ != 0 || fetchPos_ < instCount_)) {
            // Legacy fast-forward, kept for in-binary A/B: after a
            // witnessed dead cycle, jump to the next event (computed
            // against the *current* cycle so an event one cycle out is
            // found), charging the idle gap to the blocking class.
            Cycle next = nextEventTime();
            if (next == kNever) {
                if (windowCount_ != 0) {
                    const Slot &head = at(headSeq_);
                    panic("replay deadlock at cycle %llu: window=%llu "
                          "head{op=%s issued=%d ready=%llu} memq=%u "
                          "spec=%u",
                          static_cast<unsigned long long>(now_),
                          static_cast<unsigned long long>(windowCount_),
                          isa::opName(head.op), head.issued,
                          static_cast<unsigned long long>(head.readyTime),
                          memqUsed_, specBranches_);
                }
                ++now_; // dispatch-only state; proceeds next cycle
                continue;
            }
#if MSIM_OBS_ENABLED
            if (next > obsNextAt_)
                next = obsNextAt_; // land exactly on the sample cycle
#endif
            if (next > now_ + 1) {
                const Cycle dt = next - now_ - 1;
                stats_.charge(block, static_cast<double>(dt));
#if MSIM_OBS_ENABLED
                if (siteAttr_) [[unlikely]]
                    siteAttr_->charge(
                        blockSite(headSeq_, windowCount_, fetchPos_),
                        static_cast<unsigned>(block), dt * retireWidth_);
#endif
                now_ = next;
                continue;
            }
        }
        ++now_;
    }
    return true;
}

/**
 * Decoded-mode twin of advanceRaw: one fused cycle loop with every
 * per-cycle helper inlined by hand and the hot cursors mirrored into
 * locals, so they live in registers across the virtual memory-port
 * calls that would otherwise force member reloads.  Scheduling state
 * is the per-class slot bitmaps (eligBits_): the issue scan picks the
 * minimum-sequence eligible instruction with a rotate and a trailing-
 * zero count instead of walking per-class sorted queues.  The
 * program-order equivalence proof on tryExecute applies unchanged —
 * availability caching has no side effects, so discovering a class
 * busy only when one of its entries is the minimum excludes the same
 * entries the eager per-head resolution would have, and each pick is
 * still the global minimum sequence among free classes.
 *
 * Accounting uses local accumulators and a multiplication by the
 * exact reciprocal of the retire width.  Both are bit-identical to
 * the sequential per-cycle member updates because the batch gate
 * (BatchReplayEngine::supports) requires a power-of-two retire width:
 * every charge is then a multiple of 2^-k (k <= 6) and every partial
 * sum stays far below 2^52, so all the additions are exact, the order
 * of association cannot change the result, and the reciprocal product
 * equals the quotient.
 */
bool
ReplayEngine::advanceDecoded(u64 fetchLimit)
{
    using isa::Op;
    const bool final = fetchLimit >= instCount_;
    const u64 cap = slotMask_ + 1;
    const u64 capMask = cap == 64 ? ~u64{0} : (u64{1} << cap) - 1;
    const double invRw = 1.0 / retireWidth_; // exact: power of two
    const bool eventSkip = eventSkip_;

    // Hot members mirrored into locals for the duration of the call;
    // every exit path goes through flush().
    Cycle now = now_;
    u64 headSeq = headSeq_;
    u64 wcount = windowCount_;
    u64 fetchPos = fetchPos_;
    u64 memPos = memPos_;
    u64 branchPos = branchPos_;
    unsigned memqUsed = memqUsed_;
    unsigned specBranches = specBranches_;
    u32 dispStores = dispatchedStores_;
    Cycle dispBlocked = dispatchBlockedUntil_;
    bool awaitingRedirect = awaitingRedirect_;
    u64 eligAll = eligAll_;
    u64 waitBits = waitBits_;
    u64 issuedBits = issuedBits_;
    u64 storeBits = storeBits_;
    Cycle minWait = minWaitDep_;
    u64 retiredTotal = 0;
    double accBusy = 0.0, accFu = 0.0, accHit = 0.0, accMiss = 0.0;
    const simd::Ops &sv = *simd_;
#if MSIM_OBS_ENABLED
    u64 nLe = 0, nMinMasked = 0, nMaxBroadcast = 0, nWakeDec = 0;
#endif

    const auto flush = [&] {
        now_ = now;
        headSeq_ = headSeq;
        windowCount_ = wcount;
        fetchPos_ = fetchPos;
        memPos_ = memPos;
        branchPos_ = branchPos;
        memqUsed_ = memqUsed;
        specBranches_ = specBranches;
        dispatchedStores_ = dispStores;
        dispatchBlockedUntil_ = dispBlocked;
        awaitingRedirect_ = awaitingRedirect;
        eligAll_ = eligAll;
        waitBits_ = waitBits;
        issuedBits_ = issuedBits;
        storeBits_ = storeBits;
        minWaitDep_ = minWait;
        stats_.retired += retiredTotal;
        stats_.busy += accBusy;
        stats_.fuStall += accFu;
        stats_.memL1Hit += accHit;
        stats_.memL1Miss += accMiss;
#if MSIM_OBS_ENABLED
        const SimdKernelMetrics &skm = simdKernelMetrics();
        if (nLe)
            obs::count(skm.le, nLe);
        if (nMinMasked)
            obs::count(skm.minMasked, nMinMasked);
        if (nMaxBroadcast)
            obs::count(skm.maxBroadcast, nMaxBroadcast);
        if (nWakeDec)
            obs::count(skm.wakeDec, nWakeDec);
        nLe = nMinMasked = nMaxBroadcast = nWakeDec = 0;
#endif
    };

    const auto chargeAcc = [&](StallClass cls, double amount) {
        switch (cls) {
          case StallClass::Busy: accBusy += amount; break;
          case StallClass::FuStall: accFu += amount; break;
          case StallClass::MemL1Hit: accHit += amount; break;
          case StallClass::MemL1Miss: accMiss += amount; break;
        }
    };

    /** Slot bitmap rotated to head-relative order (bit r = the entry
     *  at sequence headSeq + r). */
    const auto rotHead = [&](u64 mask) {
        const auto h = static_cast<unsigned>(headSeq & slotMask_);
        return cap == 64 ? std::rotr(mask, h)
                         : ((mask >> h) | (mask << (cap - h))) & capMask;
    };

    /** Relative position (= seq - headSeq) of the minimum-sequence
     *  entry of @p candMask; the caller guarantees candMask != 0. */
    const auto minRel = [&](u64 candMask) {
        return static_cast<unsigned>(std::countr_zero(rotHead(candMask)));
    };

    const auto issue = [&](Slot &s, u64 idx) {
        s.issued = true;
        const OpInfo info = opInfo_[static_cast<unsigned>(s.op)];
        UnitClass &u = units_[info.cls];
        unsigned best = 0;
        for (unsigned i = 1; i < u.count; ++i)
            if (u.busy[i] < u.busy[best])
                best = i;
        const Cycle start = std::max(now, u.busy[best]);
        u.busy[best] = start + (info.pipelined ? 1u : info.latency);
        const Cycle done = start + info.latency;

        switch (s.op) {
          case Op::Load: {
            const u32 cand = s.aux;
            Cycle fwd = kNever;
            if (cand != prog::kNoFwdStore &&
                cand + prog::kFwdWindow >= dispStores)
                fwd = storeDone_[cand];
            if (fwd != kNever) {
                s.readyTime = std::max(done, fwd);
                s.level = mem::HitLevel::L1;
                ++stats_.loadsL1;
            } else {
                const auto res = mem_.accessAt(
                    s.memOrd, s.addr, mem::AccessKind::Load, done);
                s.readyTime = res.ready;
                s.level = res.level;
                switch (res.level) {
                  case mem::HitLevel::L1: ++stats_.loadsL1; break;
                  case mem::HitLevel::L2: ++stats_.loadsL2; break;
                  case mem::HitLevel::Memory: ++stats_.loadsMem; break;
                }
            }
            s.memFreeTime = s.readyTime;
            memqFrees_.push(s.memFreeTime);
            break;
          }
          case Op::Store: {
            const auto res = mem_.accessAt(
                s.memOrd, s.addr, mem::AccessKind::Store, done);
            s.readyTime = done; // retirement does not wait for stores
            s.memFreeTime = res.ready;
            s.level = res.level;
            memqFrees_.push(s.memFreeTime);
            storeDone_[s.aux] = done;
            break;
          }
          case Op::Prefetch: {
            const auto res = mem_.accessAt(
                s.memOrd, s.addr, mem::AccessKind::Prefetch, done);
            s.readyTime = done;
            s.memFreeTime = done;
            memqFrees_.push(done);
            ++stats_.prefetchesIssued;
            if (res.dropped)
                ++stats_.prefetchesDropped;
            break;
          }
          case Op::Branch: {
            s.readyTime = done; // the branch resolves when it executes
            branchResolves_.push(done);
            if (s.mispredicted) {
                dispBlocked = done + mispredictPenalty_;
                awaitingRedirect = false;
            }
            break;
          }
          default: {
            s.readyTime = done;
            break;
          }
        }
        readyCol_[idx] = s.readyTime;
        issuedBits |= u64{1} << idx;
    };

    /// classifyBlock() over the local mirrors.
    const auto classifyLocal = [&]() -> StallClass {
        if (wcount != 0) {
            const Slot &head = slots_[headSeq & slotMask_];
            if (head.issued && head.readyTime > now &&
                head.op == Op::Load) {
                return head.level == mem::HitLevel::L1
                           ? StallClass::MemL1Hit
                           : StallClass::MemL1Miss;
            }
            return StallClass::FuStall;
        }
        if (awaitingRedirect || now < dispBlocked)
            return StallClass::FuStall;
        const std::pair<Cycle, StallClass> *oldest = nullptr;
        for (const auto &p : pendingStores_) {
            if (p.first > now && (!oldest || p.first < oldest->first))
                oldest = &p;
        }
        return oldest ? oldest->second : StallClass::FuStall;
    };

    /// skipHorizon() over the local mirrors; see the member version
    /// for the soundness and classify-constancy arguments.
    const auto skipHorizonLocal = [&]() -> Cycle {
        if (eligAll != 0)
            return 0;
        // minWait is the exact minimum dependence time over the wait
        // set (recomputed at every drain), so it subsumes the raw
        // path's readyNext_ staging check and ready-heap front.
        if (waitBits != 0 && minWait <= now + 1)
            return 0;
        if (!final && fetchPos >= fetchLimit)
            return 0;

        Cycle h = kNever;
        if (wcount != 0) {
            const Slot &head = slots_[headSeq & slotMask_];
            if (head.issued) {
                if (head.readyTime <= now + 1)
                    return 0;
                h = head.readyTime;
            }
        }
        if (waitBits != 0)
            h = std::min(h, minWait);

        if (!awaitingRedirect && fetchPos < instCount_ &&
            wcount < windowSize_) {
            Cycle t = std::max(now + 1, dispBlocked);
            bool gated = false;
            const DecodedInst d = decoded_[fetchPos - decodedBase_];
            if (static_cast<Op>(d.op) == Op::Branch &&
                specBranches >= maxSpecBranches_) {
                if (branchResolves_.empty())
                    gated = true;
                else
                    t = std::max(t, branchResolves_.front());
            }
            const unsigned mkBits = (d.meta >> kDecMemShift) & 3u;
            if (!gated && mkBits != kDecMemNone &&
                memqUsed >= memQueueSize_) {
                if (memqFrees_.empty())
                    gated = true;
                else
                    t = std::max(t, memqFrees_.front());
            }
            if (!gated) {
                if (t <= now + 1)
                    return 0;
                h = std::min(h, t);
            }
        }

        if (wcount == 0) {
            if (dispBlocked > now)
                h = std::min(h, dispBlocked);
            if (!memqFrees_.empty())
                h = std::min(h, std::max(now + 1, memqFrees_.front()));
        }

        if (h == kNever) {
            if (wcount != 0) {
                const Slot &head = slots_[headSeq & slotMask_];
                panic("replay deadlock at cycle %llu: window=%llu "
                      "head{op=%s issued=%d ready=%llu} memq=%u "
                      "spec=%u next fill=%llu",
                      static_cast<unsigned long long>(now),
                      static_cast<unsigned long long>(wcount),
                      isa::opName(head.op), head.issued,
                      static_cast<unsigned long long>(head.readyTime),
                      memqUsed, specBranches,
                      static_cast<unsigned long long>(
                          mem_.nextFillTime(now)));
            }
            return 0;
        }
        return h;
    };

    while (wcount != 0 || fetchPos < instCount_) {
        if (!final && fetchPos >= fetchLimit) {
            flush();
            return false;
        }
#if MSIM_OBS_ENABLED
        if (now >= obsNextAt_) [[unlikely]] {
            // Normalize the lazily-drained occupancy before sampling
            // (see advanceRaw). Cumulative values are the flushed
            // members plus the local accumulators; the mirrors
            // themselves stay untouched.
            while (!memqFrees_.empty() && memqFrees_.front() <= now) {
                memqFrees_.popFront();
                --memqUsed;
            }
            obsNextAt_ = timeline_->sample(
                now, stats_.retired + retiredTotal, stats_.busy + accBusy,
                stats_.fuStall + accFu, stats_.memL1Hit + accHit,
                stats_.memL1Miss + accMiss, static_cast<u32>(wcount),
                memqUsed);
        }
#endif

        // --- retire (mirror of tryRetire, bitmap form) ----------------
        // One compare->bitmap over the result-time column gives every
        // issued slot whose result is due; rotating to head-relative
        // order turns the retire scan into a count of leading ones,
        // capped by the retire width and the window occupancy.  Bits
        // of retired-but-not-recycled slots are stale but sit at
        // relative positions >= wcount, which the cap excludes.  The
        // scalar head-slot probe in front costs one load on the (most
        // common) nothing-retires cycle, and the full-column scan only
        // pays when the window is wide enough that one vector compare
        // beats walking the retire run slot-by-slot (see kWideWindow);
        // both forms compute the identical leading-ones count.
        unsigned retired = 0;
        const u64 headIdx = headSeq & slotMask_;
        if (wcount != 0 && ((issuedBits >> headIdx) & 1) != 0 &&
            readyCol_[headIdx] <= now) {
            if (retireWidth_ >= kWideRetire) {
                const u64 due =
                    sv.leBitmap64(readyCol_, now) & issuedBits;
#if MSIM_OBS_ENABLED
                ++nLe;
#endif
                const u64 run =
                    static_cast<u64>(std::countr_one(rotHead(due)));
                retired = static_cast<unsigned>(std::min(
                    {run, static_cast<u64>(retireWidth_), wcount}));
            } else {
                const unsigned lim = static_cast<unsigned>(
                    std::min<u64>(retireWidth_, wcount));
                while (retired < lim) {
                    const u64 idx = (headSeq + retired) & slotMask_;
                    if (((issuedBits >> idx) & 1) == 0 ||
                        readyCol_[idx] > now)
                        break;
                    ++retired;
                }
            }
        }
        if (retired != 0) {
#if MSIM_AUDIT_ENABLED
            // Scalar recheck of the bitmap count, plus the raw path's
            // retire-order-monotonicity contract.
            {
                unsigned nref = 0;
                u64 hs = headSeq;
                u64 wc = wcount;
                while (nref < retireWidth_ && wc != 0) {
                    const Slot &head = slots_[hs & slotMask_];
                    if (!head.issued || head.readyTime > now)
                        break;
                    ++nref;
                    ++hs;
                    --wc;
                }
                MSIM_AUDIT_CHECK(retired == nref,
                                 "bitmap retire count %u != scalar %u",
                                 retired, nref);
                MSIM_AUDIT_CHECK(now >= auditLastRetire_,
                                 "retire time regressed: %llu < %llu",
                                 static_cast<unsigned long long>(now),
                                 static_cast<unsigned long long>(
                                     auditLastRetire_));
                auditLastRetire_ = now;
            }
#endif
            // Stores retiring with their memory-queue slot still held:
            // walk just the store bits of the retired prefix, in
            // program order (same pendingStores_ append/compact
            // sequence as the per-entry loop).
            const u64 retiredRel =
                retired == 64 ? ~u64{0} : (u64{1} << retired) - 1;
            u64 stRel = rotHead(storeBits) & retiredRel;
            while (stRel != 0) {
                const unsigned rel = std::countr_zero(stRel);
                stRel &= stRel - 1;
                const Slot &head = slots_[(headSeq + rel) & slotMask_];
                if (head.memFreeTime > now) {
                    if (pendingStores_.size() >= 64) {
                        std::erase_if(pendingStores_, [&](const auto &p) {
                            return p.first <= now;
                        });
                    }
                    const StallClass cls =
                        head.level == mem::HitLevel::L1
                            ? StallClass::MemL1Hit
                            : StallClass::MemL1Miss;
                    pendingStores_.emplace_back(head.memFreeTime, cls);
                }
            }
            retiredTotal += retired;
            headSeq += retired;
            wcount -= retired;
        }

        // --- execute (mirror of tryExecute, bitmap form) --------------
        // Drain the wait set in one shot: every waiting slot whose
        // dependence time fell due becomes eligible.  The raw path's
        // readyNext_ staging lane and ready heap pop the same set —
        // entries staged with dep == stage-cycle + 1 satisfy dep <= now
        // here, heap pops stop at dep > now — and the bitmap OR is
        // order-insensitive, so the eligible sets match exactly.  The
        // minWait gate keeps quiet cycles at one compare.  A dense wait
        // set takes one compare->bitmap plus one masked min-reduction;
        // a sparse one (the common case at sweep-default windows) walks
        // its set bits, fusing the ready scan with the min recompute —
        // identical ready set and minimum either way.
        if (waitBits != 0 && minWait <= now) {
            u64 ready;
            if (std::popcount(waitBits) >= kWideWaiters) {
                ready = sv.leBitmap64(depCol_, now) & waitBits;
#if MSIM_OBS_ENABLED
                ++nLe;
#endif
                waitBits &= ~ready;
                if (waitBits != 0) {
                    minWait = sv.minMaskedU64(depCol_, waitBits);
#if MSIM_OBS_ENABLED
                    ++nMinMasked;
#endif
                } else {
                    minWait = kNever;
                }
            } else {
                ready = 0;
                Cycle nextMin = kNever;
                for (u64 wb = waitBits; wb != 0; wb &= wb - 1) {
                    const unsigned idx = std::countr_zero(wb);
                    const Cycle d = depCol_[idx];
                    if (d <= now)
                        ready |= u64{1} << idx;
                    else
                        nextMin = std::min(nextMin, d);
                }
                waitBits &= ~ready;
                minWait = nextMin;
            }
            for (unsigned c = 0; c < isa::kNumFuClasses; ++c) {
                const u64 m = waitCls_[c] & ready;
                if (m != 0) {
                    eligBits_[c] |= m;
                    waitCls_[c] &= ~m;
                }
            }
            eligAll |= ready;
        }

        // Availability is re-resolved at every pick: unitAvailable is
        // pure, unit state only changes at an issue, and a class found
        // busy is excluded for the rest of the cycle by masking its
        // entries out of the candidate set — the same entries the
        // EligQueue path's lazy busy-class parking removes.
        unsigned issued = 0;
        for (u64 cand = eligAll; issued < issueWidth_ && cand != 0;) {
            const unsigned rel = minRel(cand);
            const u64 idx = (headSeq + rel) & slotMask_;
            Slot &s = slots_[idx];
            const unsigned c = s.cls;
            if (!unitAvailable(c, now)) {
                cand &= ~eligBits_[c]; // busy for the rest of the cycle
                continue;
            }
            const u64 bit = u64{1} << idx;
            eligBits_[c] &= ~bit;
            eligAll &= ~bit;
            cand &= ~bit;
            issue(s, idx);
            // Wake every waiter of this producer at once: max-broadcast
            // the result time into their dependence column, decrement
            // their unissued-producer counts, and move the newly
            // complete ones into the wait set.  The result time is
            // always >= now + 1 (latencies are >= 1), so a woken entry
            // never becomes eligible this same cycle — exactly the raw
            // path's readyNext_/heap routing.
            const u64 wm = waiterMask_[idx];
            if (wm != 0) {
                waiterMask_[idx] = 0;
                u64 newly;
                if (std::popcount(wm) >= kWideWaiters) {
                    sv.maxBroadcastU64(depCol_, wm, s.readyTime);
                    newly = sv.wakeDecU8(unknownCol_, wm);
#if MSIM_OBS_ENABLED
                    ++nMaxBroadcast;
                    ++nWakeDec;
#endif
                } else {
                    // Sparse waiter set: walk the bits — same max
                    // broadcast and newly-zero result as the kernels.
                    newly = 0;
                    for (u64 m = wm; m != 0; m &= m - 1) {
                        const unsigned w = std::countr_zero(m);
                        depCol_[w] = std::max(depCol_[w], s.readyTime);
                        if (--unknownCol_[w] == 0)
                            newly |= u64{1} << w;
                    }
                }
                if (newly != 0) {
                    waitBits |= newly;
                    for (u64 nn = newly; nn != 0; nn &= nn - 1) {
                        const unsigned widx = std::countr_zero(nn);
                        waitCls_[slots_[widx].cls] |= u64{1} << widx;
                        minWait = std::min(minWait, depCol_[widx]);
                    }
                }
            }
            ++issued;
        }

        // --- dispatch (mirror of dispatchImpl<true>) ------------------
        unsigned dispatched = 0;
        if (!awaitingRedirect && now >= dispBlocked) {
            unsigned takenThisCycle = 0;
            while (dispatched < issueWidth_ && fetchPos < instCount_) {
                if (wcount >= windowSize_)
                    break;
                if (specBranches >= maxSpecBranches_) {
                    while (!branchResolves_.empty() &&
                           branchResolves_.front() <= now) {
                        branchResolves_.popFront();
                        --specBranches;
                    }
                    if (specBranches >= maxSpecBranches_)
                        break;
                }
                const DecodedInst d = decoded_[fetchPos - decodedBase_];
                const unsigned mkBits = (d.meta >> kDecMemShift) & 3u;
                if (mkBits != kDecMemNone && memqUsed >= memQueueSize_) {
                    while (!memqFrees_.empty() &&
                           memqFrees_.front() <= now) {
                        memqFrees_.popFront();
                        --memqUsed;
                    }
                    if (memqUsed >= memQueueSize_)
                        break;
                }

                const u64 seq = fetchPos; // == headSeq + wcount
                MSIM_AUDIT_CHECK(seq == headSeq + wcount,
                                 "dispatch cursor skew: %llu != %llu",
                                 static_cast<unsigned long long>(seq),
                                 static_cast<unsigned long long>(
                                     headSeq + wcount));
                const u64 idx = seq & slotMask_;
                const u64 bit = u64{1} << idx;
                Slot &s = slots_[idx];
                s.op = static_cast<Op>(d.op);
                s.cls = static_cast<u8>(d.meta & kDecClsMask);
                s.issued = false;
                s.mispredicted = false;
                // Recycle the slot's column state (the previous
                // occupant retired): stale issued/store bits would
                // otherwise leak into the retire bitmaps, and the
                // waiter bitmap is this instruction's future waiters.
                issuedBits &= ~bit;
                storeBits &= ~bit;
                waiterMask_[idx] = 0;

                bool taken = false;
                if (s.op == Op::Branch) {
                    taken = (d.meta & kDecTakenBit) != 0;
                    ++stats_.branches;
                    ++specBranches;
                    if (mispredictCol_[branchPos++] != 0) {
                        ++stats_.mispredicts;
                        s.mispredicted = true;
                    }
                }
                if (mkBits != kDecMemNone) {
                    s.addr = memAddrs_[memPos];
                    s.memOrd = static_cast<u32>(memPos);
                    const u32 aux = memAux_[memPos];
                    ++memPos;
                    ++memqUsed;
                    s.aux = aux;
                    if (mkBits == prog::kMemStore) {
                        dispStores = aux + 1;
                        storeBits |= bit;
                    }
                }

                // Producer registration is a bitmap per producer slot
                // instead of the raw path's intrusive chains, so the
                // unissued-producer count is over *distinct* producers
                // (the chains decrement once per source edge, the
                // bitmap once per producer — both reach zero at the
                // same wake, with the same dependence maximum).
                Cycle dep = 0;
                unsigned unknown = 0;
                const unsigned ns = d.meta >> kDecSrcShift;
                for (unsigned i = 0; i < ns; ++i) {
                    const u16 delta = d.srcDelta[i];
                    if (delta == 0)
                        continue;
                    const u64 prod = seq - delta;
                    if (prod < headSeq)
                        continue; // produced before the window
                    const u64 pIdx = prod & slotMask_;
                    Slot &p = slots_[pIdx];
                    if (!p.issued) {
                        if ((waiterMask_[pIdx] & bit) == 0) {
                            waiterMask_[pIdx] |= bit;
                            ++unknown;
                        }
                    } else {
                        dep = std::max(dep, p.readyTime);
                    }
                }
                unknownCol_[idx] = static_cast<u8>(unknown);
                depCol_[idx] = dep;
                if (unknown == 0) {
                    if (dep <= now) {
                        eligBits_[s.cls] |= bit;
                        eligAll |= bit;
                    } else {
                        // Known future dependence: one wait set covers
                        // the raw path's readyNext_ staging lane
                        // (dep == now + 1) and its ready heap; the
                        // drain gate is the exact minimum either way.
                        waitBits |= bit;
                        waitCls_[s.cls] |= bit;
                        minWait = std::min(minWait, dep);
                    }
                }

                ++fetchPos;
                ++wcount;
                ++dispatched;

                if (s.mispredicted) {
                    awaitingRedirect = true;
                    break; // no fetch past an unresolved mispredict
                }
                if (taken &&
                    ++takenThisCycle >= takenBranchesPerCycle_)
                    break; // fetch limit: one taken branch per cycle
            }
            MSIM_AUDIT_CHECK(wcount <= windowSize_,
                             "window %llu > size %u",
                             static_cast<unsigned long long>(wcount),
                             windowSize_);
            MSIM_AUDIT_CHECK(memqUsed <= memQueueSize_,
                             "memq %u > size %u", memqUsed,
                             memQueueSize_);
            MSIM_AUDIT_CHECK(specBranches <= maxSpecBranches_,
                             "spec branches %u > max %u", specBranches,
                             maxSpecBranches_);
        }

        // --- accounting (mirror of advanceRaw) ------------------------
        const double r = static_cast<double>(retired) * invRw;
        accBusy += r;
        StallClass block = StallClass::Busy;
        if (retired < retireWidth_) {
            block = classifyLocal();
            chargeAcc(block, 1.0 - r);
        }
#if MSIM_OBS_ENABLED
        if (siteAttr_) [[unlikely]] {
            // Same tick mirroring as advanceRaw, over the local
            // mirrors: headSeq already moved past this cycle's
            // retirements, so the oldest is at headSeq - retired.
            for (unsigned i = 0; i < retired; ++i)
                siteAttr_->retire(sites_[headSeq - retired + i]);
            if (retired < retireWidth_)
                siteAttr_->charge(blockSite(headSeq, wcount, fetchPos),
                                  static_cast<unsigned>(block),
                                  retireWidth_ - retired);
        }
#endif

        if (eventSkip) {
            // Event-driven scheduling (see advanceRaw): evaluate the
            // horizon after every cycle and jump, charging the span to
            // its constant blocking class.
            if (wcount != 0 || fetchPos < instCount_) {
                Cycle h = skipHorizonLocal();
#if MSIM_OBS_ENABLED
                if (h > obsNextAt_)
                    h = obsNextAt_; // land exactly on the sample cycle
#endif
                if (h > now + 1) {
#if MSIM_AUDIT_ENABLED
                    auditSkipSpan(now, h, headSeq, wcount, eligAll == 0,
                                  waitBits);
#endif
                    const Cycle dt = h - now - 1;
                    const StallClass spanCls = retired < retireWidth_
                                                   ? block
                                                   : classifyLocal();
                    chargeAcc(spanCls, static_cast<double>(dt));
#if MSIM_OBS_ENABLED
                    if (siteAttr_) [[unlikely]]
                        siteAttr_->charge(
                            blockSite(headSeq, wcount, fetchPos),
                            static_cast<unsigned>(spanCls),
                            dt * retireWidth_);
#endif
                    now = h;
                    continue;
                }
            }
        } else if (retired == 0 && issued == 0 && dispatched == 0 &&
                   (wcount != 0 || fetchPos < instCount_)) {
            // Fast-forward: inline nextEventTime() over the local
            // mirrors, event queues drained first exactly like the
            // member version.
            while (!memqFrees_.empty() && memqFrees_.front() <= now) {
                memqFrees_.popFront();
                --memqUsed;
            }
            while (!branchResolves_.empty() &&
                   branchResolves_.front() <= now) {
                branchResolves_.popFront();
                --specBranches;
            }
            Cycle next = kNever;
            if (wcount != 0) {
                const Slot &head = slots_[headSeq & slotMask_];
                if (head.issued && head.readyTime > now)
                    next = std::min(next, head.readyTime);
            }
            for (unsigned c = 0; c < isa::kNumFuClasses; ++c) {
                if (eligBits_[c] == 0)
                    continue;
                next = std::min(next,
                                std::max(now + 1, unitNextFree(c, now)));
            }
            // Wait-set entries subsume the raw path's readyNext_
            // (dep <= now + 1, so the dep max is a no-op there) and
            // ready-heap walks.
            for (u64 wb = waitBits; wb != 0; wb &= wb - 1) {
                const unsigned idx = std::countr_zero(wb);
                Cycle t = std::max(now + 1, depCol_[idx]);
                t = std::max(t, unitNextFree(slots_[idx].cls, now));
                next = std::min(next, t);
            }
            if (!memqFrees_.empty())
                next = std::min(next, memqFrees_.front());
            if (!branchResolves_.empty())
                next = std::min(next, branchResolves_.front());
            if (dispBlocked > now)
                next = std::min(next, dispBlocked);

            if (next == kNever) {
                if (wcount != 0) {
                    const Slot &head = slots_[headSeq & slotMask_];
                    panic("replay deadlock at cycle %llu: window=%llu "
                          "head{op=%s issued=%d ready=%llu} memq=%u "
                          "spec=%u",
                          static_cast<unsigned long long>(now),
                          static_cast<unsigned long long>(wcount),
                          isa::opName(head.op), head.issued,
                          static_cast<unsigned long long>(
                              head.readyTime),
                          memqUsed, specBranches);
                }
                ++now; // dispatch-only state; proceeds next cycle
                continue;
            }
#if MSIM_OBS_ENABLED
            if (next > obsNextAt_)
                next = obsNextAt_; // land exactly on the sample cycle
#endif
            if (next > now + 1) {
                const Cycle dt = next - now - 1;
                chargeAcc(block, static_cast<double>(dt));
#if MSIM_OBS_ENABLED
                if (siteAttr_) [[unlikely]]
                    siteAttr_->charge(blockSite(headSeq, wcount, fetchPos),
                                      static_cast<unsigned>(block),
                                      dt * retireWidth_);
#endif
                now = next;
                continue;
            }
        }
        ++now;
    }
    flush();
    return true;
}

ExecStats
ReplayEngine::takeStats()
{
    stats_.cycles = now_;

    // Retirement skipped the per-instruction mix tally; the totals are
    // a pure function of the trace's opcode counts.
    for (unsigned i = 0; i < isa::kNumOps; ++i) {
        const auto op = static_cast<isa::Op>(i);
        const u64 n = trace_->countOf(op);
        if (n == 0)
            continue;
        switch (isa::mixClassOf(op)) {
          case isa::MixClass::Fu: stats_.mixFu += n; break;
          case isa::MixClass::Branch: stats_.mixBranch += n; break;
          case isa::MixClass::Memory: stats_.mixMemory += n; break;
          case isa::MixClass::Vis: stats_.mixVis += n; break;
        }
    }
    return stats_;
}

ExecStats
ReplayEngine::run(const prog::RecordedTrace &trace)
{
    bind(trace);
    advanceTo(instCount_);
    return takeStats();
}

} // namespace msim::cpu
