#include "cpu/replay_engine.hh"

#include <algorithm>
#include <bit>

#include "common/logging.hh"
#include "cpu/core.hh"

namespace msim::cpu
{

ReplayEngine::ReplayEngine(const CoreConfig &config, mem::MemoryPort &memory)
    : issueWidth_(config.issueWidth), windowSize_(config.windowSize),
      memQueueSize_(config.memQueueSize),
      maxSpecBranches_(config.maxSpecBranches),
      takenBranchesPerCycle_(config.takenBranchesPerCycle),
      mispredictPenalty_(config.mispredictPenalty),
      retireWidth_(config.retireWidth ? config.retireWidth
                                      : config.issueWidth),
      mem_(memory), predictor_(config.predictorEntries)
{
    const u64 cap = std::bit_ceil<u64>(std::max(1u, windowSize_));
    slots_.resize(cap);
    slotMask_ = cap - 1;
    for (auto &q : elig_)
        q.seqs.reserve(cap);

    for (unsigned c = 0; c < isa::kNumFuClasses; ++c) {
        const unsigned n = isa::defaultFuCount(
            static_cast<isa::FuClass>(c), config.issueWidth);
        units_[c].count = std::min<unsigned>(
            n, sizeof(UnitClass::busy) / sizeof(Cycle));
    }
    for (unsigned n = 0; n < isa::kNumOps; ++n) {
        const auto op = static_cast<isa::Op>(n);
        const isa::OpTiming t = isa::timingOf(op);
        OpInfo &info = opInfo_[n];
        info.cls = static_cast<u8>(isa::fuClassOf(op));
        info.latency = static_cast<u8>(t.latency);
        info.pipelined = t.pipelined ? 1 : 0;
        switch (op) {
          case isa::Op::Load: info.memKind = prog::kMemLoad; break;
          case isa::Op::Store: info.memKind = prog::kMemStore; break;
          case isa::Op::Prefetch: info.memKind = prog::kMemPrefetch; break;
          default: info.memKind = kNotMem; break;
        }
    }

    readyHeap_.reserve(cap);
    readyNext_.reserve(cap);
    // The rings hold at most one entry per held occupancy slot: both
    // counters increment at dispatch and only drop in the drains that
    // also pop the ring, so the occupancy gates bound the ring sizes.
    memqFrees_.init(memQueueSize_);
    branchResolves_.init(maxSpecBranches_);
}

Cycle
ReplayEngine::forwardingReady(const Slot &load) const
{
    // The reference scan picks the youngest older covering store still
    // in the forwarding ring. The candidate is precomputed at record
    // time; the ring holds the last kFwdWindow dispatched stores, so
    // residency is one comparison, and an unissued candidate's
    // data-ready time is kNever exactly like the reference ring entry.
    const u32 cand = load.aux;
    if (cand == prog::kNoFwdStore)
        return kNever;
    if (cand + prog::kFwdWindow < dispatchedStores_)
        return kNever; // evicted before this load issued
    return storeDone_[cand];
}

void
ReplayEngine::issueSlot(Slot &s)
{
    using isa::Op;
    s.issued = true;
    const Cycle done = unitReserve(s.op, now_);

    switch (s.op) {
      case Op::Load: {
        const Cycle fwd = forwardingReady(s);
        if (fwd != kNever) {
            s.readyTime = std::max(done, fwd);
            s.level = mem::HitLevel::L1;
            ++stats_.loadsL1;
        } else {
            const auto res = mem_.access(s.addr, mem::AccessKind::Load, done);
            s.readyTime = res.ready;
            s.level = res.level;
            switch (res.level) {
              case mem::HitLevel::L1: ++stats_.loadsL1; break;
              case mem::HitLevel::L2: ++stats_.loadsL2; break;
              case mem::HitLevel::Memory: ++stats_.loadsMem; break;
            }
        }
        s.memFreeTime = s.readyTime;
        memqFrees_.push(s.memFreeTime);
        break;
      }
      case Op::Store: {
        const auto res = mem_.access(s.addr, mem::AccessKind::Store, done);
        s.readyTime = done; // retirement does not wait for stores
        s.memFreeTime = res.ready;
        s.level = res.level;
        memqFrees_.push(s.memFreeTime);
        storeDone_[s.aux] = done;
        break;
      }
      case Op::Prefetch: {
        const auto res =
            mem_.access(s.addr, mem::AccessKind::Prefetch, done);
        s.readyTime = done;
        s.memFreeTime = done;
        memqFrees_.push(done);
        ++stats_.prefetchesIssued;
        if (res.dropped)
            ++stats_.prefetchesDropped;
        break;
      }
      case Op::Branch: {
        s.readyTime = done; // the branch resolves when it executes
        branchResolves_.push(done);
        if (s.mispredicted) {
            dispatchBlockedUntil_ = done + mispredictPenalty_;
            awaitingRedirect_ = false;
        }
        break;
      }
      default: {
        s.readyTime = done;
        break;
      }
    }
}

void
ReplayEngine::wakeWaiters(Slot &producer)
{
    // The producer's value becomes available at its readyTime (loads
    // and ALU ops write that very cycle into valReady_), so folding it
    // into each waiter's running depTime maximum reproduces the
    // reference recomputation over all sources. Woken instructions go
    // through the ready heap (never straight into the eligible list):
    // the producer's result time is beyond the current cycle, so the
    // reference could not issue them this cycle either.
    u32 link = producer.waiterHead;
    producer.waiterHead = kNil;
    const Cycle t = producer.readyTime;
    while (link != kNil) {
        const u64 idx = link >> 2;
        Slot &w = slots_[idx];
        const unsigned si = link & 3;
        link = w.waiterNext[si];
        w.depTime = std::max(w.depTime, t);
        if (--w.unknownSrcs == 0) {
            const u64 wseq = seqOf(idx);
            if (w.depTime <= now_ + 1) {
                readyNext_.push_back(wseq);
            } else {
                readyHeap_.emplace_back(w.depTime, wseq);
                std::push_heap(readyHeap_.begin(), readyHeap_.end(),
                               std::greater<>{});
            }
        }
    }
}

unsigned
ReplayEngine::tryRetire()
{
    unsigned retired = 0;
    while (retired < retireWidth_ && windowCount_ != 0) {
        Slot &head = at(headSeq_);
        if (!head.issued)
            break;
        if (head.readyTime > now_)
            break;
        // retire-order-monotonicity: retirement happens in program
        // order (headSeq_ is the ring head) at non-decreasing cycles,
        // and only for issued instructions whose result is ready. The
        // loop conditions above enforce this today; the checks pin the
        // contract against future reorderings of the retire path.
        MSIM_AUDIT_CHECK(now_ >= auditLastRetire_,
                         "retire time regressed: %llu < %llu",
                         static_cast<unsigned long long>(now_),
                         static_cast<unsigned long long>(auditLastRetire_));
        MSIM_AUDIT_CHECK(head.issued && head.readyTime <= now_,
                         "retiring head seq %llu issued=%d ready=%llu "
                         "at %llu",
                         static_cast<unsigned long long>(headSeq_),
                         head.issued,
                         static_cast<unsigned long long>(head.readyTime),
                         static_cast<unsigned long long>(now_));
#if MSIM_AUDIT_ENABLED
        auditLastRetire_ = now_;
#endif
        if (head.op == isa::Op::Store && head.memFreeTime > now_) {
            // The store retires but keeps its memory-queue slot until
            // the cache accepts it; remember what it is waiting on.
            // Expired entries are filtered by the reader; compact the
            // list only when it grows (outstanding stores are bounded
            // by the memory queue, so this stays small).
            if (pendingStores_.size() >= 64) {
                std::erase_if(pendingStores_, [this](const auto &p) {
                    return p.first <= now_;
                });
            }
            const StallClass cls = head.level == mem::HitLevel::L1
                                       ? StallClass::MemL1Hit
                                       : StallClass::MemL1Miss;
            pendingStores_.emplace_back(head.memFreeTime, cls);
        }
        // The instruction-mix tally is folded from the trace's opcode
        // counts in one pass at the end of run().
        ++stats_.retired;
        ++retired;
        ++headSeq_;
        --windowCount_;
    }
    return retired;
}

void
ReplayEngine::eligInsert(u64 seq)
{
    const unsigned c = at(seq).cls;
    elig_[c].insert(seq);
    eligMask_ |= static_cast<u8>(1u << c);
}

unsigned
ReplayEngine::tryExecute()
{
    // Reference semantics: scan all unissued in program order and issue
    // every source-ready instruction with a free unit, up to the issue
    // width.  Only dep-ready instructions are tracked here, queued per
    // unit class in ascending sequence order; each step issues the
    // minimum-sequence head among free classes, which is exactly the
    // next instruction the reference scan would have issued (skipped
    // busy-class entries do not consume issue width).  Availability is
    // resolved lazily at the first touch of a class — before which no
    // same-class issue can have happened — and re-resolved only after
    // an issue from that class, since nothing else changes its units
    // within a cycle; a class resolved busy stays busy for the rest of
    // the cycle, parking its whole queue in O(1).
    if (!readyNext_.empty()) {
        // Staged at some cycle t with dep == t + 1; now_ > t here, so
        // every entry is eligible — drain unconditionally.
        for (const u64 seq : readyNext_)
            eligInsert(seq);
        readyNext_.clear();
    }
    while (!readyHeap_.empty() && readyHeap_.front().first <= now_) {
        const u64 seq = readyHeap_.front().second;
        std::pop_heap(readyHeap_.begin(), readyHeap_.end(),
                      std::greater<>{});
        readyHeap_.pop_back();
        eligInsert(seq);
    }

    if (eligMask_ == 0)
        return 0; // nothing dep-ready anywhere: the common stall cycle

    u8 busyCls = 0;     // classes resolved busy for the rest of the cycle
    u8 resolvedCls = 0; // classes whose availability is currently known
    unsigned issued = 0;
    while (issued < issueWidth_) {
        unsigned bestC = isa::kNumFuClasses;
        u64 bestSeq = ~u64{0};
        for (u8 m = eligMask_ & static_cast<u8>(~busyCls); m;
             m &= static_cast<u8>(m - 1)) {
            const auto c = static_cast<unsigned>(std::countr_zero(m));
            if (!(resolvedCls & (1u << c))) {
                if (!unitAvailable(c, now_)) {
                    busyCls |= static_cast<u8>(1u << c);
                    continue;
                }
                resolvedCls |= static_cast<u8>(1u << c);
            }
            const u64 seq = elig_[c].front();
            if (seq < bestSeq) {
                bestC = c;
                bestSeq = seq;
            }
        }
        if (bestC == isa::kNumFuClasses)
            break;
        elig_[bestC].popFront();
        if (elig_[bestC].empty())
            eligMask_ &= static_cast<u8>(~(1u << bestC));
        resolvedCls &= static_cast<u8>(~(1u << bestC)); // units changed
        Slot &s = at(bestSeq);
        issueSlot(s);
        if (s.waiterHead != kNil)
            wakeWaiters(s);
        ++issued;
    }
    return issued;
}

void
ReplayEngine::drainMemq()
{
    while (!memqFrees_.empty() && memqFrees_.front() <= now_) {
        memqFrees_.popFront();
        --memqUsed_;
    }
}

void
ReplayEngine::drainBranches()
{
    while (!branchResolves_.empty() && branchResolves_.front() <= now_) {
        branchResolves_.popFront();
        --specBranches_;
    }
}

unsigned
ReplayEngine::tryDispatch()
{
    using isa::Op;
    // Nothing inside the loop clears these gates mid-cycle (a resolving
    // branch does so in issueSlot, not here), so check them once; the
    // mispredict that *sets* awaitingRedirect_ also breaks the loop.
    if (awaitingRedirect_ || now_ < dispatchBlockedUntil_)
        return 0;
    unsigned dispatched = 0;
    unsigned taken_this_cycle = 0;
    while (dispatched < issueWidth_ && fetchPos_ < instCount_) {
        if (windowCount_ >= windowSize_)
            break;
        // The occupancy gates drain their event queues lazily: the
        // drained count equals what the reference's start-of-cycle
        // expiry would have left, because the threshold is the same
        // now_ and nothing else reads the counts.
        if (specBranches_ >= maxSpecBranches_) {
            drainBranches();
            if (specBranches_ >= maxSpecBranches_)
                break;
        }
        const unsigned opn = ops_[fetchPos_];
        const OpInfo info = opInfo_[opn];
        const u8 mk = info.memKind;
        if (mk != kNotMem && memqUsed_ >= memQueueSize_) {
            drainMemq();
            if (memqUsed_ >= memQueueSize_)
                break;
        }

        // readyTime, depTime and memFreeTime need no reset: readyTime
        // and memFreeTime are only read once issueSlot assigned them,
        // and depTime is written unconditionally below.
        const u64 seq = headSeq_ + windowCount_;
        Slot &s = slots_[seq & slotMask_];
        s.op = static_cast<Op>(opn);
        s.cls = info.cls;
        s.waiterHead = kNil;
        s.issued = false;
        s.mispredicted = false;

        bool taken = false;
        if (s.op == Op::Branch) {
            taken = (flags_[fetchPos_] & isa::kFlagTaken) != 0;
            const bool correct =
                predictor_.predictAndUpdate(branchPcs_[branchPos_++],
                                            taken);
            ++stats_.branches;
            ++specBranches_;
            if (!correct) {
                ++stats_.mispredicts;
                s.mispredicted = true;
            }
        }
        if (mk != kNotMem) {
            // One cursor over the dense memory lane: kind, address and
            // the precomputed ordinal arrive together.
            s.addr = memAddrs_[memPos_];
            const u32 aux = memAux_[memPos_];
            ++memPos_;
            ++memqUsed_;
            s.aux = aux;
            if (mk == prog::kMemStore) {
                // Stores dispatch in order, so the recorded ordinal is
                // exactly the running dispatched-store count.
                dispatchedStores_ = aux + 1;
            }
        }

        // A producer outside the window has retired, so its value is
        // ready in the past and cannot affect the heap order or the
        // fast-forward bound; only in-window producers matter.
        Cycle dep = 0;
        unsigned unknown = 0;
        const unsigned ns = numSrcs_[fetchPos_];
        for (unsigned i = 0; i < ns; ++i) {
            const u32 prod = srcProds_[srcPos_ + i];
            if (prod == prog::kNoProducer || prod < headSeq_)
                continue; // produced before the window: always ready
            Slot &p = slots_[prod & slotMask_];
            if (!p.issued) {
                s.waiterNext[i] = p.waiterHead;
                p.waiterHead =
                    static_cast<u32>((seq & slotMask_) << 2) | i;
                ++unknown;
            } else {
                dep = std::max(dep, p.readyTime);
            }
        }
        srcPos_ += ns;
        s.unknownSrcs = static_cast<u8>(unknown);
        s.depTime = dep;
        if (unknown == 0) {
            if (dep <= now_) {
                // Already source-ready: skip the heap round-trip. The
                // new sequence number exceeds everything queued, and
                // the earliest possible issue (next cycle's execute)
                // matches the heap route exactly.
                elig_[s.cls].pushBack(seq);
                eligMask_ |= static_cast<u8>(1u << s.cls);
            } else if (dep == now_ + 1) {
                readyNext_.push_back(seq);
            } else {
                readyHeap_.emplace_back(dep, seq);
                std::push_heap(readyHeap_.begin(), readyHeap_.end(),
                               std::greater<>{});
            }
        }

        ++fetchPos_;
        ++windowCount_;
        ++dispatched;

        if (s.mispredicted) {
            awaitingRedirect_ = true;
            break; // no fetch past an unresolved mispredicted branch
        }
        if (taken && ++taken_this_cycle >= takenBranchesPerCycle_)
            break; // fetch limit: one taken branch per cycle
    }
    // window-occupancy: dispatch may never exceed the structural
    // limits its admission tests stall on.
    MSIM_AUDIT_CHECK(windowCount_ <= windowSize_,
                     "window %llu > size %u",
                     static_cast<unsigned long long>(windowCount_),
                     windowSize_);
    MSIM_AUDIT_CHECK(memqUsed_ <= memQueueSize_, "memq %u > size %u",
                     memqUsed_, memQueueSize_);
    MSIM_AUDIT_CHECK(specBranches_ <= maxSpecBranches_,
                     "spec branches %u > max %u", specBranches_,
                     maxSpecBranches_);
    return dispatched;
}

StallClass
ReplayEngine::classifyBlock() const
{
    if (windowCount_ != 0) {
        const Slot &head = at(headSeq_);
        if (head.issued && head.readyTime > now_ &&
            head.op == isa::Op::Load) {
            return head.level == mem::HitLevel::L1 ? StallClass::MemL1Hit
                                                   : StallClass::MemL1Miss;
        }
        return StallClass::FuStall;
    }
    if (awaitingRedirect_ || now_ < dispatchBlockedUntil_)
        return StallClass::FuStall;
    // Dispatch blocked by a full memory queue: charge the earliest
    // pending store's memory level. Entries at or below now_ are
    // skipped, so lazily compacted leftovers cannot change the answer.
    const std::pair<Cycle, StallClass> *oldest = nullptr;
    for (const auto &p : pendingStores_) {
        if (p.first > now_ && (!oldest || p.first < oldest->first))
            oldest = &p;
    }
    if (oldest)
        return oldest->second;
    return StallClass::FuStall;
}

Cycle
ReplayEngine::nextEventTime()
{
    // Same value as the reference nextEventTime(): instructions with an
    // unissued producer contribute kNever there and are exactly the
    // ones absent from elig_/readyHeap_ here. The event queues are
    // drained first so a stale released entry cannot shorten the
    // fast-forward (the reference drained them at cycle start).
    drainMemq();
    drainBranches();
    Cycle next = kNever;
    if (windowCount_ != 0) {
        const Slot &head = at(headSeq_);
        if (head.issued && head.readyTime > now_)
            next = std::min(next, head.readyTime);
    }
    for (unsigned c = 0; c < isa::kNumFuClasses; ++c) {
        if (elig_[c].empty())
            continue;
        // Eligible instructions' sources are all ready (<= now), so
        // only the unit's next free time can push them past now + 1.
        const Cycle t = std::max(now_ + 1, unitNextFree(c, now_));
        next = std::min(next, t);
    }
    for (const u64 seq : readyNext_) {
        // Staged entries have dep <= now_ + 1 by construction.
        next = std::min(next,
                        std::max(now_ + 1, unitNextFree(at(seq).cls, now_)));
    }
    for (const auto &[dep, seq] : readyHeap_) {
        Cycle t = std::max(now_ + 1, dep);
        t = std::max(t, unitNextFree(at(seq).cls, now_));
        next = std::min(next, t);
    }
    if (!memqFrees_.empty())
        next = std::min(next, memqFrees_.front());
    if (!branchResolves_.empty())
        next = std::min(next, branchResolves_.front());
    if (dispatchBlockedUntil_ > now_)
        next = std::min(next, dispatchBlockedUntil_);
    return next;
}

// Flattening the per-cycle step (retire / execute / dispatch and their
// helpers) into the run loop keeps the cycle state in registers across
// the phases instead of reloading members around three calls per
// simulated cycle.
[[gnu::flatten]] ExecStats
ReplayEngine::run(const prog::RecordedTrace &trace)
{
    ops_ = trace.opCol().data();
    flags_ = trace.flagsCol().data();
    numSrcs_ = trace.numSrcsCol().data();
    srcProds_ = trace.srcProdCol().data();
    memAddrs_ = trace.memAddrCol().data();
    memKinds_ = trace.memKindCol().data();
    memAux_ = trace.memAuxCol().data();
    branchPcs_ = trace.branchPcCol().data();
    instCount_ = trace.instCount();

    storeDone_.assign(trace.numStores(), kNever);

    while (windowCount_ != 0 || fetchPos_ < instCount_) {
        const unsigned retired = tryRetire();
        const unsigned issued = tryExecute();
        const unsigned dispatched = tryDispatch();

        const double r = static_cast<double>(retired) / retireWidth_;
        stats_.charge(StallClass::Busy, r);
        StallClass block = StallClass::Busy;
        if (retired < retireWidth_) {
            block = classifyBlock();
            stats_.charge(block, 1.0 - r);
        }

        if (retired == 0 && issued == 0 && dispatched == 0 &&
            (windowCount_ != 0 || fetchPos_ < instCount_)) {
            // Nothing happened this cycle: fast-forward to the next
            // event (computed against the *current* cycle so an event
            // one cycle out is found), charging the idle gap to the
            // blocking class.
            const Cycle next = nextEventTime();
            if (next == kNever) {
                if (windowCount_ != 0) {
                    const Slot &head = at(headSeq_);
                    panic("replay deadlock at cycle %llu: window=%llu "
                          "head{op=%s issued=%d ready=%llu} memq=%u "
                          "spec=%u",
                          static_cast<unsigned long long>(now_),
                          static_cast<unsigned long long>(windowCount_),
                          isa::opName(head.op), head.issued,
                          static_cast<unsigned long long>(head.readyTime),
                          memqUsed_, specBranches_);
                }
                ++now_; // dispatch-only state; proceeds next cycle
                continue;
            }
            if (next > now_ + 1) {
                const Cycle dt = next - now_ - 1;
                stats_.charge(block, static_cast<double>(dt));
                now_ = next;
                continue;
            }
        }
        ++now_;
    }
    stats_.cycles = now_;

    // Retirement skipped the per-instruction mix tally; the totals are
    // a pure function of the trace's opcode counts.
    for (unsigned i = 0; i < isa::kNumOps; ++i) {
        const auto op = static_cast<isa::Op>(i);
        const u64 n = trace.countOf(op);
        if (n == 0)
            continue;
        switch (isa::mixClassOf(op)) {
          case isa::MixClass::Fu: stats_.mixFu += n; break;
          case isa::MixClass::Branch: stats_.mixBranch += n; break;
          case isa::MixClass::Memory: stats_.mixMemory += n; break;
          case isa::MixClass::Vis: stats_.mixVis += n; break;
        }
    }
    return stats_;
}

} // namespace msim::cpu
