#include "cpu/branch_predictor.hh"

#include "common/bits.hh"
#include "common/logging.hh"

namespace msim::cpu
{

BranchPredictor::BranchPredictor(unsigned entries)
    : counters(entries, 2) // weakly taken
{
    if (!isPow2(entries))
        fatal("branch predictor size %u not a power of two", entries);
}

unsigned
BranchPredictor::indexOf(u32 pc) const
{
    // Fibonacci hash spreads the trace builder's small dense pc ids.
    const u32 h = pc * 2654435761u;
    return h & (static_cast<unsigned>(counters.size()) - 1);
}

bool
BranchPredictor::predictAndUpdate(u32 pc, bool taken)
{
    ++lookups_;
    u8 &ctr = counters[indexOf(pc)];
    const bool predicted_taken = ctr >= 2;
    if (taken && ctr < 3)
        ++ctr;
    else if (!taken && ctr > 0)
        --ctr;
    const bool correct = predicted_taken == taken;
    if (!correct)
        ++mispredicts_;
    return correct;
}

ReturnAddressStack::ReturnAddressStack(unsigned depth)
    : stack(depth, 0), depth(depth)
{}

void
ReturnAddressStack::push(u64 addr)
{
    if (top == depth) {
        // overflow discards the oldest entry
        for (unsigned i = 1; i < depth; ++i)
            stack[i - 1] = stack[i];
        --top;
    }
    stack[top++] = addr;
}

u64
ReturnAddressStack::pop()
{
    if (top == 0)
        return 0;
    return stack[--top];
}

} // namespace msim::cpu
