#include "cpu/branch_predictor.hh"

#include "common/bits.hh"
#include "common/logging.hh"

namespace msim::cpu
{

BranchPredictor::BranchPredictor(unsigned entries)
    : counters(entries, 2) // weakly taken
{
    if (!isPow2(entries))
        fatal("branch predictor size %u not a power of two", entries);
}

ReturnAddressStack::ReturnAddressStack(unsigned depth)
    : stack(depth, 0), depth(depth)
{}

void
ReturnAddressStack::push(u64 addr)
{
    if (top == depth) {
        // overflow discards the oldest entry
        for (unsigned i = 1; i < depth; ++i)
            stack[i - 1] = stack[i];
        --top;
    }
    stack[top++] = addr;
}

u64
ReturnAddressStack::pop()
{
    if (top == 0)
        return 0;
    return stack[--top];
}

} // namespace msim::cpu
