#include "cpu/fu_pool.hh"

#include <algorithm>

namespace msim::cpu
{

FuPool::FuPool(unsigned issue_width)
{
    for (unsigned c = 0; c < isa::kNumFuClasses; ++c) {
        const auto cls = static_cast<isa::FuClass>(c);
        units[c].assign(isa::defaultFuCount(cls, issue_width), 0);
    }
}

const std::vector<Cycle> &
FuPool::unitsFor(isa::Op op) const
{
    return units[static_cast<unsigned>(isa::fuClassOf(op))];
}

std::vector<Cycle> &
FuPool::unitsFor(isa::Op op)
{
    return units[static_cast<unsigned>(isa::fuClassOf(op))];
}

bool
FuPool::available(isa::Op op, Cycle t) const
{
    const auto &u = unitsFor(op);
    return std::any_of(u.begin(), u.end(),
                       [t](Cycle busy) { return busy <= t; });
}

Cycle
FuPool::reserve(isa::Op op, Cycle t)
{
    auto &u = unitsFor(op);
    auto it = std::min_element(u.begin(), u.end());
    const Cycle start = std::max(t, *it);
    const isa::OpTiming timing = isa::timingOf(op);
    *it = start + (timing.pipelined ? 1 : timing.latency);
    return start + timing.latency;
}

Cycle
FuPool::nextFree(isa::Op op, Cycle t) const
{
    const auto &u = unitsFor(op);
    const Cycle earliest = *std::min_element(u.begin(), u.end());
    return std::max(t, earliest);
}

bool
FuPool::availableClass(isa::FuClass cls, Cycle t) const
{
    const auto &u = units[static_cast<unsigned>(cls)];
    return std::any_of(u.begin(), u.end(),
                       [t](Cycle busy) { return busy <= t; });
}

Cycle
FuPool::nextFreeClass(isa::FuClass cls, Cycle t) const
{
    const auto &u = units[static_cast<unsigned>(cls)];
    return std::max(t, *std::min_element(u.begin(), u.end()));
}

} // namespace msim::cpu
