/**
 * @file
 * Unified pipeline timing model covering both of the paper's processor
 * configurations:
 *
 *  - In-order issue, out-of-order completion (UltraSPARC-II / 21164
 *    class): instructions begin execution strictly in program order,
 *    loads are non-blocking with stall-on-use semantics.
 *  - Out-of-order issue (R10000 / 21264 class): 64-entry instruction
 *    window, 32-entry memory queue, any ready instruction may issue.
 *
 * Shared machinery: Table-2 functional units, bimodal branch prediction
 * with a trace-driven mispredict model (fetch stalls from a mispredicted
 * branch's dispatch until it resolves plus a redirect penalty; no
 * wrong-path execution), at most one taken branch fetched per cycle, at
 * most 16 unresolved speculated branches, store-to-load forwarding, and
 * the Section-2.3.4 retire-based execution-time accounting.
 *
 * The core consumes the dynamic instruction stream produced by the
 * trace builder (isa::InstSink) and simulates incrementally, so traces
 * are never materialized. Idle stretches (e.g. the tail of an L2 miss)
 * are fast-forwarded in one step with their stall time charged to the
 * blocking instruction's component.
 *
 * Two drive modes share the cycle-level machinery:
 *
 *  - Live (feed()/finish()): the reference path. Issue selection scans
 *    the window in program order each cycle, and store-to-load
 *    forwarding scans the 64-entry store ring per load.
 *  - Replay (runRecorded()): streams a prog::RecordedTrace through the
 *    pipeline. In-order configurations replay here, with forwarding
 *    from the trace's precomputed candidate store plus an O(1)
 *    ring-residency check; out-of-order replay is delegated to the
 *    compact dependency-driven ReplayEngine (cpu/replay_engine.hh).
 *    Both are exact transliterations of the reference selection — same
 *    candidates in the same program order each cycle — so replay
 *    results are bit-identical to the live path (enforced by the
 *    replay-fidelity test suite).
 */

#ifndef MSIM_CPU_CORE_HH_
#define MSIM_CPU_CORE_HH_

#include <deque>
#include <optional>
#include <queue>
#include <vector>

#include "audit/invariants.hh"
#include "cpu/accounting.hh"
#include "cpu/branch_predictor.hh"
#include "cpu/fu_pool.hh"
#include "isa/inst.hh"
#include "mem/hierarchy.hh"
#include "obs/site.hh"
#include "obs/timeline.hh"
#include "prog/recorded_trace.hh"

namespace msim::cpu
{

/** Core configuration (Table 2). */
struct CoreConfig
{
    bool outOfOrder = true;
    unsigned issueWidth = 4;
    unsigned windowSize = 64;
    unsigned memQueueSize = 32;
    unsigned maxSpecBranches = 16;
    unsigned takenBranchesPerCycle = 1;
    unsigned mispredictPenalty = 4;
    unsigned retireWidth = 0; ///< 0 means issueWidth
    unsigned predictorEntries = 2048;

    /**
     * Replay out-of-order traces on the preserved pre-optimization
     * RefReplayEngine instead of the fast ReplayEngine. Bit-identical
     * results; used by the regression tests and A/B benchmarks.
     */
    bool referenceEngine = false;

    /**
     * Event-driven cycle skipping in ReplayEngine: jump the clock to
     * the next-event horizon instead of ticking through provably dead
     * cycles (bit-identical results; see DESIGN.md "Event-driven cycle
     * skipping").  Defaults from the MSIM_EVENT_SKIP environment
     * variable (unset or nonzero = on, "0" = off) so one binary can
     * A/B both scheduling loops; tests and benches set it directly.
     */
    bool eventSkip = defaultEventSkip();

    /** Process-wide MSIM_EVENT_SKIP default (read once). */
    static bool defaultEventSkip();

    /** The three Figure-1 configurations. */
    static CoreConfig inOrder1Way();
    static CoreConfig inOrder4Way();
    static CoreConfig outOfOrder4Way();
};

/** The timing core; see file comment. */
class PipelineCore : public isa::InstSink
{
  public:
    /**
     * @param config  Pipeline parameters.
     * @param memory  The memory port this core issues accesses to.
     */
    PipelineCore(const CoreConfig &config, mem::MemoryPort &memory);

    void feed(const isa::Inst &inst) override;
    void finish() override;

    /**
     * Replay drive: stream @p trace through the pipeline to completion
     * (no feed()/finish() needed). Statistics end up in stats() exactly
     * as if the trace had been fed live.
     */
    void runRecorded(const prog::RecordedTrace &trace);

    /**
     * Pre-size the value-readiness tables for @p count SSA ids, e.g.
     * from a recorded trace's maxValId(); avoids growth during the run.
     */
    void reserveValIds(size_t count);

    /**
     * Multi-core driving: when manual pumping is enabled, feed() only
     * buffers (the whole trace can be queued up front) and an external
     * scheduler advances each core's clock in quanta with runTo(), so
     * cores sharing a cache level stay loosely synchronized.
     */
    void setManualPump(bool manual) { manualPump = manual; }

    /** Advance the pipeline until @p target or until out of work. */
    void runTo(Cycle target);

    /** True when every buffered instruction has retired. */
    bool done() const { return window.empty() && fetchEmpty(); }

    Cycle nowCycle() const { return now; }

    /** Results; valid after finish(). */
    const ExecStats &stats() const { return stats_; }

#if MSIM_OBS_ENABLED
    /**
     * Attach a per-run timeline recorder (nullptr detaches). Live and
     * in-order-replay cycles sample in step(); out-of-order replay
     * forwards the recorder to the inner fast ReplayEngine (the
     * preserved reference engine stays hook-free).
     */
    void
    setTimeline(obs::TimelineRecorder *tl)
    {
        timeline_ = tl;
        obsNextAt_ = tl ? now + tl->period() : obs::kNeverCycle;
    }

    /**
     * Attach a per-site attribution table (nullptr detaches).
     * Out-of-order replay forwards it to the inner engine — fast or
     * reference, both carry the hook (see obs/site.hh).
     */
    void setSiteAttribution(obs::SiteAttribution *sa) { siteAttr_ = sa; }
#endif

  private:
    static constexpr Cycle kNever = ~Cycle{0};

    struct DynInst
    {
        isa::Inst inst;
        u64 seq = 0;
        Cycle readyTime = kNever;  ///< result/resolution availability
        Cycle memFreeTime = 0;     ///< when its memory-queue slot frees
        int fwdRing = -1;          ///< store's slot in the forwarding ring
        bool issued = false;
        bool mispredicted = false;
        mem::HitLevel level = mem::HitLevel::L1;

        // Replay-mode state (in-order replay; see ReplayEngine for the
        // out-of-order path).
        u32 fwdCand = ~u32{0};     ///< load: candidate store ordinal
        u32 storeOrd = ~u32{0};    ///< store: forwarding-ring ordinal
    };

    struct RingEntry
    {
        u64 seq = 0;
        Addr addr = 0;
        unsigned size = 0;
        Cycle dataReady = kNever;
        bool valid = false;
    };

    using MinHeap =
        std::priority_queue<Cycle, std::vector<Cycle>, std::greater<>>;

    /** Simulate cycles until the fetch buffer drains below its cap. */
    void pump(bool draining);

    /** Simulate one cycle (possibly fast-forwarding an idle gap). */
    void step();

    /** Release counter slots whose release time has arrived. */
    void expireEvents();

    unsigned tryRetire();
    unsigned tryExecute();
    unsigned tryDispatch();

    // Replay-mode counterparts (see file comment).
    unsigned tryDispatchReplay();
    Cycle replayForwardingReady(const DynInst &load) const;

    bool canIssue(const DynInst &di) const;
    void issue(DynInst &di);

    /** Classify what the pipeline is blocked on this cycle. */
    StallClass classifyBlock() const;

    /** Earliest future cycle at which anything can change. */
    Cycle nextEventTime() const;

    Cycle readyOf(ValId id) const;
    void setReady(ValId id, Cycle t);

    /** Stall class of the producer of a value (loads record theirs). */
    StallClass classOf(ValId id) const;
    void setClass(ValId id, StallClass cls);

    /** Try store-to-load forwarding; returns kNever if no match. */
    Cycle forwardingReady(const DynInst &load) const;

    /** Any instructions left to dispatch? */
    bool
    fetchEmpty() const
    {
        return replay_ ? cursor_->atEnd() : fetchBuf.empty();
    }

    /** Window entry for a dispatched-but-unretired sequence number. */
    DynInst &
    windowAt(u64 seq)
    {
        return window[static_cast<size_t>(seq - window.front().seq)];
    }

    const DynInst &
    windowAt(u64 seq) const
    {
        return window[static_cast<size_t>(seq - window.front().seq)];
    }

    CoreConfig cfg;
    mem::MemoryPort &mem_;
    FuPool fuPool;
    BranchPredictor predictor;

    std::deque<isa::Inst> fetchBuf;
    std::deque<DynInst> window;
    std::vector<DynInst *> unissued; ///< program-order, lazily compacted
    std::vector<Cycle> valReady;
    std::vector<u8> valClass;
    std::vector<RingEntry> fwdRing;
    unsigned fwdNext = 0;

    /// Memory-queue occupancy: +1 at dispatch, -1 when the heap entry
    /// pushed at issue time expires.
    unsigned memqUsed = 0;
    MinHeap memqFrees;

    /// Unresolved speculated branches: +1 at dispatch, -1 at resolution.
    unsigned specBranches = 0;
    MinHeap branchResolves;

    /// Stall classes of stores still holding memory-queue slots after
    /// retirement, with their release times (for attribution).
    std::vector<std::pair<Cycle, StallClass>> pendingStores;

    // Replay state (in-order configurations only; the out-of-order
    // path runs in ReplayEngine).
    const prog::RecordedTrace *replay_ = nullptr;
    std::optional<prog::RecordedTrace::Cursor> cursor_;
    std::vector<Cycle> storeDone_; ///< store ordinal -> data-ready cycle
    u32 dispatchedStores_ = 0;

#if MSIM_AUDIT_ENABLED
    /// Cycle of the most recent retirement (retire-order audit).
    Cycle auditLastRetire_ = 0;
#endif

#if MSIM_OBS_ENABLED
    obs::TimelineRecorder *timeline_ = nullptr;
    obs::SiteAttribution *siteAttr_ = nullptr;
    Cycle obsNextAt_ = obs::kNeverCycle;
#endif

    Cycle now = 0;
    bool manualPump = false;
    Cycle dispatchBlockedUntil = 0;
    bool awaitingRedirect = false; ///< mispredicted branch not yet issued
    u64 nextSeq = 0;

    ExecStats stats_;
};

} // namespace msim::cpu

#endif // MSIM_CPU_CORE_HH_
