/**
 * @file
 * Unified pipeline timing model covering both of the paper's processor
 * configurations:
 *
 *  - In-order issue, out-of-order completion (UltraSPARC-II / 21164
 *    class): instructions begin execution strictly in program order,
 *    loads are non-blocking with stall-on-use semantics.
 *  - Out-of-order issue (R10000 / 21264 class): 64-entry instruction
 *    window, 32-entry memory queue, any ready instruction may issue.
 *
 * Shared machinery: Table-2 functional units, bimodal branch prediction
 * with a trace-driven mispredict model (fetch stalls from a mispredicted
 * branch's dispatch until it resolves plus a redirect penalty; no
 * wrong-path execution), at most one taken branch fetched per cycle, at
 * most 16 unresolved speculated branches, store-to-load forwarding, and
 * the Section-2.3.4 retire-based execution-time accounting.
 *
 * The core consumes the dynamic instruction stream produced by the
 * trace builder (isa::InstSink) and simulates incrementally, so traces
 * are never materialized. Idle stretches (e.g. the tail of an L2 miss)
 * are fast-forwarded in one step with their stall time charged to the
 * blocking instruction's component.
 */

#ifndef MSIM_CPU_CORE_HH_
#define MSIM_CPU_CORE_HH_

#include <deque>
#include <queue>
#include <vector>

#include "cpu/accounting.hh"
#include "cpu/branch_predictor.hh"
#include "cpu/fu_pool.hh"
#include "isa/inst.hh"
#include "mem/hierarchy.hh"

namespace msim::cpu
{

/** Core configuration (Table 2). */
struct CoreConfig
{
    bool outOfOrder = true;
    unsigned issueWidth = 4;
    unsigned windowSize = 64;
    unsigned memQueueSize = 32;
    unsigned maxSpecBranches = 16;
    unsigned takenBranchesPerCycle = 1;
    unsigned mispredictPenalty = 4;
    unsigned retireWidth = 0; ///< 0 means issueWidth
    unsigned predictorEntries = 2048;

    /** The three Figure-1 configurations. */
    static CoreConfig inOrder1Way();
    static CoreConfig inOrder4Way();
    static CoreConfig outOfOrder4Way();
};

/** The timing core; see file comment. */
class PipelineCore : public isa::InstSink
{
  public:
    /**
     * @param config  Pipeline parameters.
     * @param memory  The memory port this core issues accesses to.
     */
    PipelineCore(const CoreConfig &config, mem::MemoryPort &memory);

    void feed(const isa::Inst &inst) override;
    void finish() override;

    /**
     * Multi-core driving: when manual pumping is enabled, feed() only
     * buffers (the whole trace can be queued up front) and an external
     * scheduler advances each core's clock in quanta with runTo(), so
     * cores sharing a cache level stay loosely synchronized.
     */
    void setManualPump(bool manual) { manualPump = manual; }

    /** Advance the pipeline until @p target or until out of work. */
    void runTo(Cycle target);

    /** True when every buffered instruction has retired. */
    bool done() const { return window.empty() && fetchBuf.empty(); }

    Cycle nowCycle() const { return now; }

    /** Results; valid after finish(). */
    const ExecStats &stats() const { return stats_; }

  private:
    static constexpr Cycle kNever = ~Cycle{0};

    struct DynInst
    {
        isa::Inst inst;
        u64 seq = 0;
        Cycle readyTime = kNever;  ///< result/resolution availability
        Cycle memFreeTime = 0;     ///< when its memory-queue slot frees
        int fwdRing = -1;          ///< store's slot in the forwarding ring
        bool issued = false;
        bool mispredicted = false;
        mem::HitLevel level = mem::HitLevel::L1;
    };

    struct RingEntry
    {
        u64 seq = 0;
        Addr addr = 0;
        unsigned size = 0;
        Cycle dataReady = kNever;
        bool valid = false;
    };

    using MinHeap =
        std::priority_queue<Cycle, std::vector<Cycle>, std::greater<>>;

    /** Simulate cycles until the fetch buffer drains below its cap. */
    void pump(bool draining);

    /** Simulate one cycle (possibly fast-forwarding an idle gap). */
    void step();

    /** Release counter slots whose release time has arrived. */
    void expireEvents();

    unsigned tryRetire();
    unsigned tryExecute();
    unsigned tryDispatch();

    bool canIssue(const DynInst &di) const;
    void issue(DynInst &di);

    /** Classify what the pipeline is blocked on this cycle. */
    StallClass classifyBlock() const;

    /** Earliest future cycle at which anything can change. */
    Cycle nextEventTime() const;

    Cycle readyOf(ValId id) const;
    void setReady(ValId id, Cycle t);

    /** Stall class of the producer of a value (loads record theirs). */
    StallClass classOf(ValId id) const;
    void setClass(ValId id, StallClass cls);

    /** Try store-to-load forwarding; returns kNever if no match. */
    Cycle forwardingReady(const DynInst &load) const;

    CoreConfig cfg;
    mem::MemoryPort &mem_;
    FuPool fuPool;
    BranchPredictor predictor;

    std::deque<isa::Inst> fetchBuf;
    std::deque<DynInst> window;
    std::vector<DynInst *> unissued; ///< program-order, lazily compacted
    std::vector<Cycle> valReady;
    std::vector<u8> valClass;
    std::vector<RingEntry> fwdRing;
    unsigned fwdNext = 0;

    /// Memory-queue occupancy: +1 at dispatch, -1 when the heap entry
    /// pushed at issue time expires.
    unsigned memqUsed = 0;
    MinHeap memqFrees;

    /// Unresolved speculated branches: +1 at dispatch, -1 at resolution.
    unsigned specBranches = 0;
    MinHeap branchResolves;

    /// Stall classes of stores still holding memory-queue slots after
    /// retirement, with their release times (for attribution).
    std::vector<std::pair<Cycle, StallClass>> pendingStores;

    Cycle now = 0;
    bool manualPump = false;
    Cycle dispatchBlockedUntil = 0;
    bool awaitingRedirect = false; ///< mispredicted branch not yet issued
    u64 nextSeq = 0;

    ExecStats stats_;
};

} // namespace msim::cpu

#endif // MSIM_CPU_CORE_HH_
