#include "mem/ref_cache.hh"

#include <algorithm>
#include <limits>

#include "common/bits.hh"
#include "common/logging.hh"

namespace msim::mem
{

RefCache::RefCache(const CacheConfig &config, Level &next, HitLevel level)
    : CacheLevel(config, next, level), numSets(checkedNumSets(config)),
      sets(numSets, std::vector<Way>(config.assoc)),
      portFree(config.ports, 0), mshrs(config.numMshrs)
{
    if (!isPow2(config.lineBytes) || numSets == 0 || !isPow2(numSets))
        fatal("cache: bad geometry (size %u, assoc %u, line %u)",
              config.sizeBytes, config.assoc, config.lineBytes);
}

Cycle
RefCache::allocPort(Cycle t)
{
    auto it = std::min_element(portFree.begin(), portFree.end());
    const Cycle start = std::max(t, *it);
    *it = start + 1; // one request per port per cycle
    return start;
}

unsigned
RefCache::busyMshrs(Cycle t) const
{
    unsigned n = 0;
    for (const auto &m : mshrs)
        if (m.active(t))
            ++n;
    return n;
}

unsigned
RefCache::busyLoadMshrs(Cycle t) const
{
    unsigned n = 0;
    for (const auto &m : mshrs)
        if (m.active(t) && m.isLoad)
            ++n;
    return n;
}

Cycle
RefCache::earliestMshrFree() const
{
    Cycle best = std::numeric_limits<Cycle>::max();
    for (const auto &m : mshrs)
        best = std::min(best, m.fillTime);
    return best;
}

RefCache::Mshr *
RefCache::findMshr(Addr line, Cycle t)
{
    for (auto &m : mshrs)
        if (m.active(t) && m.line == line)
            return &m;
    return nullptr;
}

RefCache::Mshr *
RefCache::findFreeMshr(Cycle t)
{
    for (auto &m : mshrs)
        if (!m.active(t))
            return &m;
    return nullptr;
}

int
RefCache::lookup(Addr line, u64 use_stamp)
{
    auto &set = sets[line & (numSets - 1)];
    for (unsigned w = 0; w < set.size(); ++w) {
        if (set[w].valid && set[w].tag == line) {
            set[w].lastUse = use_stamp;
            return static_cast<int>(w);
        }
    }
    return -1;
}

void
RefCache::insert(Addr line, bool dirty, Cycle fill_time, u64 use_stamp)
{
    auto &set = sets[line & (numSets - 1)];
    Way *victim = &set[0];
    for (auto &w : set) {
        if (!w.valid) {
            victim = &w;
            break;
        }
        if (w.lastUse < victim->lastUse)
            victim = &w;
    }
    if (victim->valid && victim->dirty) {
        writebacks_.inc();
        next.accessLine(victim->tag, AccessKind::Writeback, fill_time);
    }
    victim->tag = line;
    victim->valid = true;
    victim->dirty = dirty;
    victim->lastUse = use_stamp;
}

AccessResult
RefCache::access(Addr addr, AccessKind kind, Cycle t)
{
    return accessImpl(addr / cfg.lineBytes, kind, t);
}

AccessResult
RefCache::accessLine(Addr line_addr, AccessKind kind, Cycle t)
{
    return accessImpl(line_addr, kind, t);
}

AccessResult
RefCache::accessImpl(Addr line, AccessKind kind, Cycle t)
{
    accesses_.inc();
    AccessResult result;

    // Writebacks from an upper level: update in place on hit, otherwise
    // forward without allocating (a writeback buffer in spirit).
    if (kind == AccessKind::Writeback) {
        const int way = lookup(line, ++useStamp);
        if (way >= 0) {
            sets[line & (numSets - 1)][way].dirty = true;
            hits_.inc();
        } else {
            next.accessLine(line, AccessKind::Writeback, t);
            misses_.inc();
        }
        result.ready = t + cfg.hitLatency;
        result.level = level_;
        return result;
    }

    Cycle arrival = std::max(t, inputBlockedUntil);
    for (;;) {
        const Cycle start = allocPort(arrival);
        mshrOcc.advance(start, busyMshrs(start));
        result.contended = result.contended || start != t;

        // 1. Request to a line already in flight: combine onto its MSHR.
        if (Mshr *m = findMshr(line, start)) {
            if (m->combines < cfg.maxCombines) {
                ++m->combines;
                combined_.inc();
                if (kind == AccessKind::Store) {
                    const int way = lookup(line, ++useStamp);
                    if (way >= 0)
                        sets[line & (numSets - 1)][way].dirty = true;
                }
                if (kind == AccessKind::Prefetch) {
                    result.ready = start;
                    return result;
                }
                result.ready = std::max(start + cfg.hitLatency, m->fillTime);
                result.level = m->level;
                return result;
            }
            // Combine slots exhausted: the cache input backs up until the
            // fill returns; the retried request then hits.
            if (kind == AccessKind::Prefetch) {
                prefetchDrops_.inc();
                result.dropped = true;
                result.ready = start;
                return result;
            }
            blocked_.inc();
            inputBlockedUntil = std::max(inputBlockedUntil, m->fillTime);
            arrival = m->fillTime;
            result.contended = true;
            continue;
        }

        // 2. Tag lookup.
        if (lookup(line, ++useStamp) >= 0) {
            hits_.inc();
            if (kind == AccessKind::Store) {
                auto &set = sets[line & (numSets - 1)];
                for (auto &w : set)
                    if (w.valid && w.tag == line)
                        w.dirty = true;
            }
            result.ready = start + cfg.hitLatency;
            result.level = level_;
            return result;
        }

        // 3. Miss: allocate an MSHR and fetch from below.
        Mshr *m = findFreeMshr(start);
        if (!m) {
            if (kind == AccessKind::Prefetch) {
                prefetchDrops_.inc();
                result.dropped = true;
                result.ready = start;
                return result;
            }
            // All MSHRs busy: the cache stops accepting requests.
            blocked_.inc();
            const Cycle free_at = earliestMshrFree();
            inputBlockedUntil = std::max(inputBlockedUntil, free_at);
            arrival = free_at;
            result.contended = true;
            continue;
        }

        misses_.inc();
        if (kind == AccessKind::Load)
            loadMisses_.inc();

        const AccessResult below =
            next.accessLine(line, kind, start + cfg.hitLatency);

        m->line = line;
        m->fillTime = below.ready;
        m->combines = 1;
        m->isLoad = kind == AccessKind::Load;
        m->level = below.level;
        if (kind == AccessKind::Load)
            loadOverlap_.sample(busyLoadMshrs(start));

        insert(line, kind == AccessKind::Store, below.ready, useStamp);

        result.ready = kind == AccessKind::Prefetch ? start : below.ready;
        result.level = below.level;
        return result;
    }
}

} // namespace msim::mem
