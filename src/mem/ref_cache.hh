/**
 * @file
 * Reference cache model: the original linear-scan implementation,
 * preserved verbatim as the pre-optimization baseline.
 *
 * Cache (cache.hh) replaced the per-access MSHR scans, min_element
 * port pick, and vector<vector<Way>> tag store with incrementally
 * maintained structures. RefCache keeps the straightforward code so
 * that (a) the bit-identity regression tests can run every benchmark
 * through both models and compare all counters and timings, and
 * (b) the before/after benchmarks (bench_mem_fastpath) measure the
 * real pre-PR cost inside the same binary. Do not optimize this file;
 * its value is being obviously equivalent to the seed model.
 */

#ifndef MSIM_MEM_REF_CACHE_HH_
#define MSIM_MEM_REF_CACHE_HH_

#include <vector>

#include "mem/cache.hh"

namespace msim::mem
{

/** One cache level (reference implementation; see file comment). */
class RefCache final : public CacheLevel
{
  public:
    RefCache(const CacheConfig &config, Level &next, HitLevel level);

    AccessResult access(Addr addr, AccessKind kind, Cycle t) override;

    AccessResult accessLine(Addr line_addr, AccessKind kind,
                            Cycle t) override;

    Cycle
    nextFillTime(Cycle t) const override
    {
        Cycle next = ~Cycle{0};
        for (const Mshr &m : mshrs)
            if (m.fillTime > t && m.fillTime < next)
                next = m.fillTime;
        return next;
    }

  private:
    struct Way
    {
        Addr tag = 0;
        u64 lastUse = 0;
        bool valid = false;
        bool dirty = false;
    };

    struct Mshr
    {
        Addr line = 0;
        Cycle fillTime = 0;   ///< when the line arrives from below
        u32 combines = 0;
        bool isLoad = false;
        HitLevel level = HitLevel::L1;

        bool active(Cycle t) const { return fillTime > t; }
    };

    AccessResult accessImpl(Addr line_addr, AccessKind kind, Cycle t);

    /** Reserve a request port at or after @p t; returns the start cycle. */
    Cycle allocPort(Cycle t);

    unsigned busyMshrs(Cycle t) const;
    unsigned busyLoadMshrs(Cycle t) const;
    Cycle earliestMshrFree() const;
    Mshr *findMshr(Addr line, Cycle t);
    Mshr *findFreeMshr(Cycle t);

    /** Tag lookup; returns the way index or -1. */
    int lookup(Addr line, u64 use_stamp);

    /** Insert @p line, writing back a dirty victim at @p fill_time. */
    void insert(Addr line, bool dirty, Cycle fill_time, u64 use_stamp);

    unsigned numSets;
    std::vector<std::vector<Way>> sets;
    std::vector<Cycle> portFree;
    std::vector<Mshr> mshrs;
    Cycle inputBlockedUntil = 0;
    u64 useStamp = 0;
};

} // namespace msim::mem

#endif // MSIM_MEM_REF_CACHE_HH_
