/**
 * @file
 * Non-blocking set-associative write-back cache with MSHRs.
 *
 * Timing is timestamp-based: each request carries its arrival cycle and
 * the cache tracks when its ports and MSHRs free up. Key behaviours the
 * paper depends on:
 *
 *  - 12 MSHRs, each combining up to 8 outstanding requests to one line.
 *  - When every MSHR is busy (or a line's combine slots are exhausted)
 *    the cache stops accepting *all* requests — including hits — until
 *    one frees. This is what turns dense byte-granularity write streams
 *    (64 writes per 64-byte line) into the "L1 hit / MSHR contention"
 *    stall component of Figure 1.
 *  - Prefetches are non-binding: dropped, not queued, when resources
 *    are unavailable.
 *  - Dirty victims are written back to the next level when the
 *    replacement line arrives.
 */

#ifndef MSIM_MEM_CACHE_HH_
#define MSIM_MEM_CACHE_HH_

#include <vector>

#include "common/stats.hh"
#include "mem/access.hh"
#include "mem/config.hh"

namespace msim::mem
{

/** Anything a cache can forward misses to. */
class Level
{
  public:
    virtual ~Level() = default;

    /** Issue a whole-line request at time @p t. */
    virtual AccessResult accessLine(Addr line_addr, AccessKind kind,
                                    Cycle t) = 0;
};

/** One cache level. */
class Cache : public Level
{
  public:
    /**
     * @param config  Geometry and timing.
     * @param next    Next level (deeper cache or DRAM).
     * @param level   This level's HitLevel tag for classification.
     */
    Cache(const CacheConfig &config, Level &next, HitLevel level);

    /** Byte-granularity access from the core side. */
    AccessResult access(Addr addr, AccessKind kind, Cycle t);

    /** Line-granularity access from an upper cache. */
    AccessResult accessLine(Addr line_addr, AccessKind kind,
                            Cycle t) override;

    // --- Statistics ---------------------------------------------------------

    u64 accesses() const { return accesses_.value(); }
    u64 hits() const { return hits_.value(); }
    u64 misses() const { return misses_.value(); }
    u64 loadMisses() const { return loadMisses_.value(); }
    u64 writebacks() const { return writebacks_.value(); }
    u64 prefetchDrops() const { return prefetchDrops_.value(); }
    u64 combinedRequests() const { return combined_.value(); }
    u64 blockedRequests() const { return blocked_.value(); }

    double
    missRate() const
    {
        return accesses() ? static_cast<double>(misses()) / accesses() : 0.0;
    }

    /** Time-weighted MSHR occupancy statistics. */
    const OccupancyTracker &mshrOccupancy() const { return mshrOcc; }

    /** Distribution of concurrently outstanding *load* misses. */
    const Distribution &loadOverlap() const { return loadOverlap_; }

  private:
    struct Way
    {
        Addr tag = 0;
        u64 lastUse = 0;
        bool valid = false;
        bool dirty = false;
    };

    struct Mshr
    {
        Addr line = 0;
        Cycle fillTime = 0;   ///< when the line arrives from below
        u32 combines = 0;
        bool isLoad = false;
        HitLevel level = HitLevel::L1;

        bool active(Cycle t) const { return fillTime > t; }
    };

    AccessResult accessImpl(Addr line_addr, AccessKind kind, Cycle t);

    /** Reserve a request port at or after @p t; returns the start cycle. */
    Cycle allocPort(Cycle t);

    unsigned busyMshrs(Cycle t) const;
    unsigned busyLoadMshrs(Cycle t) const;
    Cycle earliestMshrFree() const;
    Mshr *findMshr(Addr line, Cycle t);
    Mshr *findFreeMshr(Cycle t);

    /** Tag lookup; returns the way index or -1. */
    int lookup(Addr line, u64 use_stamp);

    /** Insert @p line, writing back a dirty victim at @p fill_time. */
    void insert(Addr line, bool dirty, Cycle fill_time, u64 use_stamp);

    CacheConfig cfg;
    Level &next;
    HitLevel level_;

    unsigned numSets;
    std::vector<std::vector<Way>> sets;
    std::vector<Cycle> portFree;
    std::vector<Mshr> mshrs;
    Cycle inputBlockedUntil = 0;
    u64 useStamp = 0;

    Counter accesses_;
    Counter hits_;
    Counter misses_;
    Counter loadMisses_;
    Counter writebacks_;
    Counter prefetchDrops_;
    Counter combined_;
    Counter blocked_;
    OccupancyTracker mshrOcc;
    Distribution loadOverlap_;
};

} // namespace msim::mem

#endif // MSIM_MEM_CACHE_HH_
