/**
 * @file
 * Non-blocking set-associative write-back cache with MSHRs.
 *
 * Timing is timestamp-based: each request carries its arrival cycle and
 * the cache tracks when its ports and MSHRs free up. Key behaviours the
 * paper depends on:
 *
 *  - 12 MSHRs, each combining up to 8 outstanding requests to one line.
 *  - When every MSHR is busy (or a line's combine slots are exhausted)
 *    the cache stops accepting *all* requests — including hits — until
 *    one frees. This is what turns dense byte-granularity write streams
 *    (64 writes per 64-byte line) into the "L1 hit / MSHR contention"
 *    stall component of Figure 1.
 *  - Prefetches are non-binding: dropped, not queued, when resources
 *    are unavailable.
 *  - Dirty victims are written back to the next level when the
 *    replacement line arrives.
 *
 * Two implementations share this contract through CacheLevel:
 *
 *  - Cache (this file) is the fast path: the tag store is one flat
 *    structure-of-arrays block, the per-access MSHR scans are replaced
 *    by incrementally maintained sorted fill-time arrays plus an
 *    open-addressed line→MSHR map, and port scheduling keeps a small
 *    sorted array instead of calling min_element. All of it is exact
 *    for arbitrary (including non-monotonic) request times, so timing
 *    and every counter stay bit-identical to the reference.
 *  - RefCache (ref_cache.hh) is the original linear-scan model, kept
 *    verbatim as the in-binary baseline for the bit-identity tests and
 *    the before/after benchmarks.
 */

#ifndef MSIM_MEM_CACHE_HH_
#define MSIM_MEM_CACHE_HH_

#include <algorithm>
#include <vector>

#include "audit/invariants.hh"
#include "common/stats.hh"
#include "mem/access.hh"
#include "mem/config.hh"

namespace msim::mem
{

/**
 * Validate a CacheConfig's structural fields (nonzero assoc, line
 * size, ports, MSHRs) with fatal() and return its set count. Shared by
 * the fast and reference models so both reject the same configs.
 */
unsigned checkedNumSets(const CacheConfig &config);

/** Anything a cache can forward misses to. */
class Level
{
  public:
    virtual ~Level() = default;

    /** Issue a whole-line request at time @p t. */
    virtual AccessResult accessLine(Addr line_addr, AccessKind kind,
                                    Cycle t) = 0;

    /**
     * Functional warming: advance tag/LRU/dirty state exactly as a
     * timed request would move it, with no ports, MSHRs, latencies, or
     * statistics.  Used by the sampled-replay fast-forward (DESIGN.md
     * §12).  Default no-op: DRAM holds no state worth warming.
     */
    virtual void warmLine(Addr /*line_addr*/, AccessKind /*kind*/) {}
};

/**
 * Common surface of the cache implementations: the byte-granularity
 * core-side entry point plus every statistic the runners snapshot.
 * Holds the counters so both models update the identical state.
 */
class CacheLevel : public Level
{
  public:
    CacheLevel(const CacheConfig &config, Level &next_level, HitLevel level)
        : cfg(config), next(next_level), level_(level),
          mshrOcc(config.numMshrs), loadOverlap_(config.numMshrs)
    {}

    /** Byte-granularity access from the core side. */
    virtual AccessResult access(Addr addr, AccessKind kind, Cycle t) = 0;

    // --- Statistics ---------------------------------------------------------

    u64 accesses() const { return accesses_.value(); }
    u64 hits() const { return hits_.value(); }
    u64 misses() const { return misses_.value(); }
    u64 loadMisses() const { return loadMisses_.value(); }
    u64 writebacks() const { return writebacks_.value(); }
    u64 prefetchDrops() const { return prefetchDrops_.value(); }
    u64 combinedRequests() const { return combined_.value(); }
    u64 blockedRequests() const { return blocked_.value(); }

    double
    missRate() const
    {
        return accesses() ? static_cast<double>(misses()) / accesses() : 0.0;
    }

    /** Time-weighted MSHR occupancy statistics. */
    const OccupancyTracker &mshrOccupancy() const { return mshrOcc; }

    /** Distribution of concurrently outstanding *load* misses. */
    const Distribution &loadOverlap() const { return loadOverlap_; }

    /**
     * Earliest MSHR fill time strictly after @p t, or ~Cycle{0} when
     * nothing is in flight.  Cheap (no tag-store walk); used by the
     * event-skip scheduler's deadlock diagnostics and the
     * skip-horizon-soundness audit.
     */
    virtual Cycle nextFillTime(Cycle t) const = 0;

  protected:
    CacheConfig cfg;
    Level &next;
    HitLevel level_;

    Counter accesses_;
    Counter hits_;
    Counter misses_;
    Counter loadMisses_;
    Counter writebacks_;
    Counter prefetchDrops_;
    Counter combined_;
    Counter blocked_;
    OccupancyTracker mshrOcc;
    Distribution loadOverlap_;
};

/**
 * A view into an externally owned structure-of-arrays tag store shared
 * by every cache of one geometry class (same lineBytes x numSets x
 * assoc).  Layout is lane-major per set: slot =
 * set * setStride + laneBase + way with setStride = laneCount * assoc
 * and laneBase = laneIndex * assoc, so one set's tags across all lanes
 * of the class are contiguous and a single simd::eqU64Bitmap call
 * probes every lane x way slot at once (see mem/batch.hh).  At
 * laneCount == 1 the layout degenerates to the standalone flat store.
 */
struct TagArenaView
{
    Addr *tags = nullptr;
    u64 *lastUse = nullptr;
    u8 *dirty = nullptr;
    size_t setStride = 0; ///< slots between consecutive sets
    size_t laneBase = 0;  ///< first slot of this lane within a set
};

/** One cache level (fast implementation; see file comment). */
class Cache final : public CacheLevel
{
  public:
    /**
     * @param config  Geometry and timing.
     * @param next    Next level (deeper cache or DRAM).
     * @param level   This level's HitLevel tag for classification.
     */
    Cache(const CacheConfig &config, Level &next, HitLevel level);

    /**
     * Rebind the tag store onto a shared arena slice (see TagArenaView).
     * Must run before the first access or warm touch: this lane's
     * arena slots are reset to the just-constructed state (invalid
     * tags, zero LRU stamps, clean), not migrated.  The arena must
     * outlive the cache and provide numSets * setStride slots.
     */
    void bindTagArena(const TagArenaView &view);

    unsigned sets() const { return numSets; }
    unsigned ways() const { return assoc_; }
    unsigned lineShift() const { return lineShift_; }
    Addr setMask() const { return setMask_; }

    /**
     * Read-only residency probe (no LRU update, no counters): is
     * @p line cached right now?  Timing-free surface for the batched
     * memory layer's tag-SoA audit and the tests.
     */
    bool
    hasLine(Addr line) const
    {
        const size_t base = slotBase(line);
        for (size_t w = 0; w < assoc_; ++w)
            if (tags_[base + w] == line)
                return true;
        return false;
    }

    AccessResult
    access(Addr addr, AccessKind kind, Cycle t) override
    {
        return accessImpl(addr >> lineShift_, kind, t);
    }

    /** Line-granularity access from an upper cache. */
    AccessResult
    accessLine(Addr line_addr, AccessKind kind, Cycle t) override
    {
        return accessImpl(line_addr, kind, t);
    }

    /** Byte-granularity functional warming from the core side. */
    void warm(Addr addr, AccessKind kind) { warmLine(addr >> lineShift_, kind); }

    void warmLine(Addr line_addr, AccessKind kind) override;

    /**
     * Reset every timing-coupled structure (ports, MSHRs, the
     * fill-time mirrors, the blocked-input watermark) to its
     * just-constructed state while keeping the tag store, LRU stamps,
     * dirty bits and all statistics.  Sampled replay calls this between
     * measured chunks: each chunk runs a fresh engine whose clock
     * restarts at cycle 0, so timestamps left over from the previous
     * chunk's future would otherwise read as busy resources.
     */
    void quiesce();

    Cycle
    nextFillTime(Cycle t) const override
    {
        // sortedFill_ holds every MSHR's fill time in ascending order
        // (expired entries included), so the first entry beyond t is
        // the answer.
        const auto it =
            std::upper_bound(sortedFill_.begin(), sortedFill_.end(), t);
        return it == sortedFill_.end() ? ~Cycle{0} : *it;
    }

  private:
    /// Sentinel for "no line": unreachable because real line numbers
    /// are byte addresses divided by the line size.
    static constexpr Addr kNoLine = ~Addr{0};
    static constexpr u32 kNoMshr = ~u32{0};

    AccessResult accessImpl(Addr line_addr, AccessKind kind, Cycle t);

    /** Reserve a request port at or after @p t; returns the start cycle. */
    Cycle allocPort(Cycle t);

    unsigned busyMshrs(Cycle t) const;
    unsigned busyLoadMshrs(Cycle t) const;
    Cycle earliestMshrFree() const { return sortedFill_.front(); }

    /** Index of the MSHR in flight for @p line at @p t, or kNoMshr. */
    u32 findMshr(Addr line, Cycle t) const;

    /** Reference-order linear scan used below the dupUntil_ watermark. */
    u32 findMshrScan(Addr line, Cycle t) const;

    /** Lowest-index MSHR free at @p t, or kNoMshr. */
    u32 findFreeMshr(Cycle t) const;

    /** Point MSHR @p idx at @p line with the given fill time. */
    void allocateMshr(u32 idx, Addr line, Cycle fill_time, bool is_load,
                      HitLevel level);

    /** Tag lookup; returns the flat way slot or -1. */
    s64 lookup(Addr line, u64 use_stamp);

    /** Insert @p line, writing back a dirty victim at @p fill_time. */
    void insert(Addr line, bool dirty, Cycle fill_time, u64 use_stamp);

    /** insert() for the warming path: victim writebacks warm downward. */
    void warmInsert(Addr line, bool dirty);

    // Sorted-array bookkeeping (all arrays stay tiny: <= numMshrs and
    // <= ports entries, so shifting beats any tree).
    static void sortedErase(std::vector<Cycle> &v, Cycle value);
    static void sortedInsert(std::vector<Cycle> &v, Cycle value);

    u32 hashSlot(Addr line) const;
    void mapInsert(Addr line, u32 idx);
    void mapErase(Addr line, u32 idx);

#if MSIM_AUDIT_ENABLED
    /// mshr-conservation: sorted fill arrays mirror the MSHR columns.
    void auditMshrState() const;
    /// tag-store-consistency: the set slice holding @p line is sane.
    void auditTagSet(Addr line) const;
    /// port-occupancy: portFree stays sorted with `ports` entries.
    void auditPorts() const;
#endif

    /** First flat slot of the set holding @p line. */
    size_t
    slotBase(Addr line) const
    {
        return static_cast<size_t>(line & setMask_) * setStride_ +
               laneBase_;
    }

    unsigned numSets;
    unsigned assoc_;
    unsigned lineShift_;
    Addr setMask_;

    // Tag store as three parallel columns; tags_[slot] == kNoLine marks
    // an invalid way.  Standalone caches point the cursors at their own
    // vectors (slot = set * assoc + way); caches bound to a shared
    // class arena point into it with the arena's stride/base
    // (bindTagArena), which is the only layout difference between the
    // two modes — every lookup/insert path goes through slotBase().
    std::vector<Addr> tagStore_;
    std::vector<u64> useStore_;
    std::vector<u8> dirtyStore_;
    Addr *tags_ = nullptr;
    u64 *lastUse_ = nullptr;
    u8 *dirty_ = nullptr;
    size_t setStride_ = 0;
    size_t laneBase_ = 0;

    /// Port free times, ascending; [0] is always the next-free port.
    std::vector<Cycle> portFree;

    // MSHR state as parallel columns.
    std::vector<Addr> mshrLine_;
    std::vector<Cycle> mshrFill_;
    std::vector<u32> mshrCombines_;
    std::vector<u8> mshrIsLoad_;
    std::vector<HitLevel> mshrLevel_;

    /// All MSHR fill times, ascending: busyMshrs(t) and
    /// earliestMshrFree() read it directly instead of scanning MSHRs.
    std::vector<Cycle> sortedFill_;
    /// Fill times of load MSHRs only, ascending (for busyLoadMshrs).
    std::vector<Cycle> sortedLoadFill_;

    // Open-addressed line → MSHR-index map (linear probing with
    // backward-shift deletion; capacity >= 4x numMshrs keeps probe
    // chains short). An entry always points at the most recent MSHR
    // allocated for its line, and is erased when that MSHR is
    // re-pointed; findMshr re-checks the fill time, so stale entries
    // for expired fills are harmless.
    std::vector<Addr> mapKey_;
    std::vector<u32> mapVal_;
    u32 mapMask_ = 0;

    // Exactness guard for the map. Request times are not globally
    // monotone (an L1 writes back dirty victims at future fill times
    // while later demands arrive at earlier cycles), so a query can
    // reach back to a moment when an *older* MSHR for the same line was
    // still filling — the reference scan would return the older,
    // lower-index one, while the map knows only the newest. Every MSHR
    // (re)allocation therefore raises dupUntil_ to the fill time of any
    // state it displaces; queries strictly below the watermark take the
    // reference scan, queries at or above it provably have at most one
    // live candidate per line and use the map.
    Cycle dupUntil_ = 0;

    Cycle inputBlockedUntil = 0;
    u64 useStamp = 0;
};

} // namespace msim::mem

#endif // MSIM_MEM_CACHE_HH_
