/**
 * @file
 * Cross-lane batched memory hierarchy for sweep replay.
 *
 * The batch replay engine (cpu::BatchReplayEngine) steps N machine
 * configs through one trace in lockstep chunks.  With N independent
 * Hierarchy objects every lane re-derives the same per-access facts
 * from the same address stream: the line number (addr >> lineShift)
 * is recomputed N times per memory op, and each lane's tag store is a
 * private allocation with no relationship to its neighbours even when
 * the sweep varies nothing but, say, the L1 size — in which case many
 * lanes share the exact cache geometry.
 *
 * BatchMemory replaces those per-lane hierarchies with one shared
 * object structured around two observations:
 *
 *  1. The *address column* of a chunk is lane-invariant.  Per decoded
 *     chunk the driver hands over the memory-op window once
 *     (setChunkWindow) and the shared line-address column is derived
 *     with one simd::shrU64Col sweep per distinct L1 line size — not
 *     one shift per lane per access.  Lane ports then look their line
 *     numbers up by memory-lane ordinal (MemoryPort::accessAt).
 *
 *  2. Lanes with identical cache geometry (same lineBytes x numSets x
 *     assoc at a level, plus the same upstream line granularity for
 *     the L2, which receives L1 line numbers) are grouped into a
 *     *geometry class* whose tag stores live in one shared arena laid
 *     out lane-major per set: slot = set * (laneCount * assoc) +
 *     lane * assoc + way.  One set's tags across every lane of the
 *     class are contiguous, so a single simd::eqU64Bitmap call
 *     classifies a line against all lane x way slots at once
 *     (probeClass).  Each member Cache is rebound onto its arena
 *     slice (Cache::bindTagArena) and is otherwise unchanged.
 *
 * Timing — MSHRs, ports, DRAM banks, LRU stamps — stays strictly
 * per-lane: lanes issue at different cycles in different orders, and
 * hit/miss classification feeds back into per-lane timing (MSHR
 * combining, prefetch drops), so a cross-lane *timed* probe cannot be
 * bit-identical to per-lane evaluation.  The multi-lane probe kernel
 * is therefore load-bearing on the timing-free surfaces — the
 * tag-SoA audit invariant, the tests and bench_micro — while the
 * timed path consumes the shared line column per lane.  Results are
 * bit-identical to per-lane Hierarchy objects by construction
 * (enforced by tests/test_mem_batch.cc and audit_fuzz --mode
 * membatch).
 */

#ifndef MSIM_MEM_BATCH_HH_
#define MSIM_MEM_BATCH_HH_

#include <memory>
#include <span>
#include <vector>

#include "mem/dram.hh"
#include "mem/hierarchy.hh"

namespace msim::mem
{

/**
 * Process-wide gate for the batched memory layer: when false,
 * sim::replayTraceBatch gives every lane a private Hierarchy exactly
 * as before.  Default on; MSIM_MEM_BATCH=0 (or "off") disables, and
 * ScopedBatchMem overrides either way for A/B harnesses.
 */
bool batchMemEnabled();

/** RAII override of batchMemEnabled() (nests; restores on destruction). */
class ScopedBatchMem
{
  public:
    explicit ScopedBatchMem(bool on);
    ~ScopedBatchMem();

    ScopedBatchMem(const ScopedBatchMem &) = delete;
    ScopedBatchMem &operator=(const ScopedBatchMem &) = delete;

  private:
    int prev_;
};

/** See file comment. */
class BatchMemory
{
  public:
    /**
     * Which configurations the batched layer can drive: the fast cache
     * model only.  The reference model is kept verbatim from the
     * original implementation and grows no new entry points; reference
     * lanes keep private Hierarchy objects (the caller mixes freely).
     */
    static bool supports(const MemConfig &config);

    /** One lane per entry of @p configs; all must pass supports(). */
    explicit BatchMemory(std::span<const MemConfig> configs);

    BatchMemory(const BatchMemory &) = delete;
    BatchMemory &operator=(const BatchMemory &) = delete;

    /**
     * Attach the trace's dense memory-address column (the backing
     * array must outlive replay).  Chunk windows index into it.
     */
    void bind(const Addr *memAddrs, u64 memOps);

    /**
     * Precompute the shared line-address columns for memory-lane
     * ordinals [memBegin, memEnd): one simd::shrU64Col sweep per
     * distinct L1 line size.  Called by the batch driver after each
     * chunk decode; accesses with ordinals below the window (issued by
     * instructions still in flight from earlier chunks) fall back to
     * per-access decomposition in the lane port.
     */
    void setChunkWindow(u64 memBegin, u64 memEnd);

    size_t laneCount() const { return lanes_.size(); }

    /** The port lane @p lane's core issues accesses to. */
    MemoryPort &port(size_t lane) { return *lanes_[lane]->port; }

    const CacheLevel &l1(size_t lane) const { return *lanes_[lane]->l1; }
    const CacheLevel &l2(size_t lane) const { return *lanes_[lane]->l2; }
    const Dram &dram(size_t lane) const { return *lanes_[lane]->dram; }

    // --- Geometry classes (tests, audit, bench_micro) ----------------

    /** Distinct geometry classes at @p level (0 = L1, 1 = L2). */
    size_t classCount(unsigned level) const;

    /** Lane indices of class @p cls at @p level, in lane order. */
    const std::vector<size_t> &classMembers(unsigned level,
                                            size_t cls) const;

    /**
     * Timing-free multi-lane tag probe: classify @p line (already in
     * the level's line-number space) against every member lane of the
     * class with one simd::eqU64Bitmap sweep over the set's lane-major
     * arena slots.  Bit k of @p outMemberBits is set iff member k
     * holds the line; writes ceil(members / 64) words.  Read-only (no
     * LRU update).  Under audit builds the result is checked against a
     * per-lane recompute through each member cache's own slot
     * arithmetic (batchmem-tag-soa invariant).
     */
    void probeClass(unsigned level, size_t cls, Addr line,
                    u64 *outMemberBits) const;

  private:
    /** Shared per-chunk line column for one distinct L1 line shift. */
    struct ShiftGroup
    {
        unsigned shift = 0;
        u64 base = 0; ///< memory-lane ordinal of lines[0]
        u64 end = 0;  ///< one past the last covered ordinal
        std::vector<Addr> lines;
    };

    /**
     * One geometry class: the shared lane-major tag arena plus the
     * facts needed to address it (see file comment for the layout).
     */
    struct TagClass
    {
        u32 spaceLineBytes; ///< line granularity of the address space
        u32 lineBytes;
        u32 numSets;
        u32 assoc;
        std::vector<size_t> members;
        std::vector<Addr> tags;
        std::vector<u64> use;
        std::vector<u8> dirty;

        size_t setStride() const { return members.size() * assoc; }
    };

    /** MemoryPort view of one lane (accessAt consumes the column). */
    class LanePort final : public MemoryPort
    {
      public:
        LanePort(Cache &l1, Cache &l2, const ShiftGroup &group)
            : l1_(l1), l2_(l2), group_(group)
        {}

        AccessResult
        access(Addr addr, AccessKind kind, Cycle t) override
        {
            return l1_.access(addr, kind, t);
        }

        AccessResult accessAt(u64 ord, Addr addr, AccessKind kind,
                              Cycle t) override;

        Cycle
        nextFillTime(Cycle t) const override
        {
            return std::min(l1_.nextFillTime(t), l2_.nextFillTime(t));
        }

      private:
        Cache &l1_;
        Cache &l2_;
        const ShiftGroup &group_;
    };

    /** Everything owned per lane; the tag stores live in the arenas. */
    struct Lane
    {
        std::unique_ptr<Dram> dram;
        std::unique_ptr<Cache> l2;
        std::unique_ptr<Cache> l1;
        std::unique_ptr<LanePort> port;
    };

    ShiftGroup &groupForShift(unsigned shift);
    void buildClasses(std::span<const MemConfig> configs);

#if MSIM_AUDIT_ENABLED
    void auditClassProbes(Addr byteAddr) const;
#endif

    const Addr *memAddrs_ = nullptr;
    u64 memOps_ = 0;

    std::vector<std::unique_ptr<Lane>> lanes_;
    // Deques-in-spirit: both vectors are fully built before any
    // pointer/reference into them is taken (ShiftGroup refs are held
    // by lane ports, arena pointers by the member caches).
    std::vector<std::unique_ptr<ShiftGroup>> shiftGroups_;
    std::vector<TagClass> classes_[2]; ///< [0] = L1, [1] = L2
};

} // namespace msim::mem

#endif // MSIM_MEM_BATCH_HH_
