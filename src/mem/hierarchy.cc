#include "mem/hierarchy.hh"

namespace msim::mem
{

Hierarchy::Hierarchy(const MemConfig &config)
    : dram_(std::make_unique<Dram>(config.dram))
{
    if (config.model == CacheModel::Fast) {
        l2Fast_ = std::make_unique<Cache>(config.l2, *dram_, HitLevel::L2);
        l1Fast_ = std::make_unique<Cache>(config.l1, *l2Fast_, HitLevel::L1);
    } else {
        l2Ref_ =
            std::make_unique<RefCache>(config.l2, *dram_, HitLevel::L2);
        l1Ref_ =
            std::make_unique<RefCache>(config.l1, *l2Ref_, HitLevel::L1);
    }
}

} // namespace msim::mem
