#include "mem/hierarchy.hh"

namespace msim::mem
{

Hierarchy::Hierarchy(const MemConfig &config)
    : dram_(std::make_unique<Dram>(config.dram)),
      l2_(std::make_unique<Cache>(config.l2, *dram_, HitLevel::L2)),
      l1_(std::make_unique<Cache>(config.l1, *l2_, HitLevel::L1))
{}

} // namespace msim::mem
