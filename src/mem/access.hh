/**
 * @file
 * Request/response types shared by the memory-hierarchy levels.
 */

#ifndef MSIM_MEM_ACCESS_HH_
#define MSIM_MEM_ACCESS_HH_

#include "common/types.hh"

namespace msim::mem
{

/** What kind of request this is (affects MSHR-full policy and stats). */
enum class AccessKind : u8
{
    Load,
    Store,
    Prefetch,
    Writeback ///< dirty-line eviction from an upper level
};

/** Where a request was satisfied. */
enum class HitLevel : u8
{
    L1 = 1,
    L2 = 2,
    Memory = 3
};

/** Outcome of a hierarchy access. */
struct AccessResult
{
    /** Cycle at which the data (or write acknowledgment) is available. */
    Cycle ready = 0;

    /** Deepest level the request had to travel to. */
    HitLevel level = HitLevel::L1;

    /** True if the request waited on MSHR or port availability. */
    bool contended = false;

    /** True if a prefetch was dropped for lack of resources. */
    bool dropped = false;
};

} // namespace msim::mem

#endif // MSIM_MEM_ACCESS_HH_
