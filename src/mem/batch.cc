#include "mem/batch.hh"

#include <cstdlib>
#include <cstring>

#include "audit/invariants.hh"
#include "common/bits.hh"
#include "common/logging.hh"
#include "common/simd.hh"
#include "obs/metrics.hh"

namespace msim::mem
{

namespace
{

/// ScopedBatchMem override: -1 = none, else 0/1. Process-wide like
/// simd::ScopedLevel — the A/B harnesses run the sides sequentially.
int g_override = -1;

bool
envEnabled()
{
    static const bool enabled = [] {
        const char *v = std::getenv("MSIM_MEM_BATCH");
        if (!v)
            return true;
        return !(std::strcmp(v, "0") == 0 || std::strcmp(v, "off") == 0);
    }();
    return enabled;
}

#if MSIM_OBS_ENABLED

/** Batched-memory instrumentation: layout gauges + kernel calls. */
struct BatchMemMetrics
{
    obs::MetricId lanes, classes, shrCol, colElems, eqProbe, fallback;
};

const BatchMemMetrics &
batchMemMetrics()
{
    static const BatchMemMetrics m = {
        obs::metricId("membatch.lanes", obs::MetricKind::Gauge),
        obs::metricId("membatch.classes", obs::MetricKind::Gauge),
        obs::metricId("simd.shr_u64_col", obs::MetricKind::Counter),
        obs::metricId("membatch.col_elems", obs::MetricKind::Counter),
        obs::metricId("simd.eq_u64_bitmap", obs::MetricKind::Counter),
        obs::metricId("membatch.ord_fallback", obs::MetricKind::Counter),
    };
    return m;
}

#endif // MSIM_OBS_ENABLED

} // namespace

bool
batchMemEnabled()
{
    if (g_override >= 0)
        return g_override != 0;
    return envEnabled();
}

ScopedBatchMem::ScopedBatchMem(bool on) : prev_(g_override)
{
    g_override = on ? 1 : 0;
}

ScopedBatchMem::~ScopedBatchMem()
{
    g_override = prev_;
}

bool
BatchMemory::supports(const MemConfig &config)
{
    return config.model == CacheModel::Fast;
}

BatchMemory::BatchMemory(std::span<const MemConfig> configs)
{
    lanes_.reserve(configs.size());
    for (const MemConfig &cfg : configs) {
        if (!supports(cfg))
            panic("batched memory lane requires the fast cache model");
        auto lane = std::make_unique<Lane>();
        lane->dram = std::make_unique<Dram>(cfg.dram);
        lane->l2 =
            std::make_unique<Cache>(cfg.l2, *lane->dram, HitLevel::L2);
        lane->l1 =
            std::make_unique<Cache>(cfg.l1, *lane->l2, HitLevel::L1);
        lanes_.push_back(std::move(lane));
    }

    // One shared line column per distinct L1 line size; lane ports keep
    // a reference into their group (stable: groups are heap-allocated
    // and the group list never shrinks).
    for (size_t k = 0; k < configs.size(); ++k) {
        ShiftGroup &g = groupForShift(log2i(configs[k].l1.lineBytes));
        lanes_[k]->port = std::make_unique<LanePort>(
            *lanes_[k]->l1, *lanes_[k]->l2, g);
    }

    buildClasses(configs);

#if MSIM_OBS_ENABLED
    const BatchMemMetrics &m = batchMemMetrics();
    obs::gaugeSet(m.lanes, static_cast<double>(lanes_.size()));
    obs::gaugeSet(m.classes, static_cast<double>(classes_[0].size() +
                                                 classes_[1].size()));
#endif
}

BatchMemory::ShiftGroup &
BatchMemory::groupForShift(unsigned shift)
{
    for (auto &g : shiftGroups_)
        if (g->shift == shift)
            return *g;
    shiftGroups_.push_back(std::make_unique<ShiftGroup>());
    shiftGroups_.back()->shift = shift;
    return *shiftGroups_.back();
}

void
BatchMemory::buildClasses(std::span<const MemConfig> configs)
{
    for (unsigned level = 0; level < 2; ++level) {
        auto &classes = classes_[level];
        for (size_t k = 0; k < configs.size(); ++k) {
            const CacheConfig &c =
                level == 0 ? configs[k].l1 : configs[k].l2;
            // The L2 is indexed with L1 line numbers (Cache::accessLine
            // receives them from the upper level), so two L2s only
            // share a tag space when their upstream line granularity
            // matches too.
            const u32 space =
                level == 0 ? c.lineBytes : configs[k].l1.lineBytes;
            const u32 sets = checkedNumSets(c);
            TagClass *match = nullptr;
            for (TagClass &tc : classes) {
                if (tc.spaceLineBytes == space &&
                    tc.lineBytes == c.lineBytes && tc.numSets == sets &&
                    tc.assoc == c.assoc) {
                    match = &tc;
                    break;
                }
            }
            if (!match) {
                classes.push_back(
                    {space, c.lineBytes, sets, c.assoc, {}, {}, {}, {}});
                match = &classes.back();
            }
            match->members.push_back(k);
        }

        // Membership is final: allocate each class arena and rebind the
        // member caches onto their lane-major slices.  bindTagArena
        // resets every slot the lane owns, and the lanes tile the
        // arena completely, so the initial fill value is irrelevant.
        for (TagClass &tc : classes) {
            const size_t slots =
                static_cast<size_t>(tc.numSets) * tc.setStride();
            tc.tags.assign(slots, 0);
            tc.use.assign(slots, 0);
            tc.dirty.assign(slots, 0);
            for (size_t m = 0; m < tc.members.size(); ++m) {
                const TagArenaView view{tc.tags.data(), tc.use.data(),
                                        tc.dirty.data(), tc.setStride(),
                                        m * tc.assoc};
                Cache &cache = level == 0 ? *lanes_[tc.members[m]]->l1
                                          : *lanes_[tc.members[m]]->l2;
                cache.bindTagArena(view);
            }
        }
    }
}

void
BatchMemory::bind(const Addr *memAddrs, u64 memOps)
{
    memAddrs_ = memAddrs;
    memOps_ = memOps;
}

void
BatchMemory::setChunkWindow(u64 memBegin, u64 memEnd)
{
    // An empty trace binds a null column base (vector::data() on an
    // empty column); that is fine as long as the window is empty too.
    MSIM_AUDIT_CHECK((memAddrs_ != nullptr || memEnd == 0) &&
                         memBegin <= memEnd && memEnd <= memOps_,
                     "chunk window [%llu, %llu) outside memory lane "
                     "(%llu ops, bound %d)",
                     static_cast<unsigned long long>(memBegin),
                     static_cast<unsigned long long>(memEnd),
                     static_cast<unsigned long long>(memOps_),
                     memAddrs_ != nullptr);
    const size_t n = static_cast<size_t>(memEnd - memBegin);
    const simd::Ops &sv = simd::ops();
    for (auto &gp : shiftGroups_) {
        ShiftGroup &g = *gp;
        g.lines.resize(n);
        if (n != 0)
            sv.shrU64Col(memAddrs_ + memBegin, n, g.shift,
                         g.lines.data());
        g.base = memBegin;
        g.end = memEnd;
    }
#if MSIM_OBS_ENABLED
    const BatchMemMetrics &m = batchMemMetrics();
    obs::count(m.shrCol, shiftGroups_.size());
    obs::count(m.colElems, n * shiftGroups_.size());
#endif
#if MSIM_AUDIT_ENABLED
    // Exercise the SoA probe invariant once per chunk on a live
    // address (probeClass self-checks against per-lane recompute).
    if (n != 0)
        auditClassProbes(memAddrs_[memBegin]);
#endif
}

AccessResult
BatchMemory::LanePort::accessAt(u64 ord, Addr addr, AccessKind kind,
                                Cycle t)
{
    const ShiftGroup &g = group_;
    if (ord >= g.base && ord < g.end) {
        const Addr line = g.lines[ord - g.base];
        // batchmem-column-consistency: the shared column entry for
        // this ordinal must equal the per-access decomposition.
        MSIM_AUDIT_CHECK(line == addr >> g.shift,
                         "column[%llu] = %llu != addr %llu >> %u",
                         static_cast<unsigned long long>(ord),
                         static_cast<unsigned long long>(line),
                         static_cast<unsigned long long>(addr), g.shift);
        return l1_.accessLine(line, kind, t);
    }
    // In flight since before the current chunk window (bounded by the
    // lane's window size, so rare): decompose the address directly.
#if MSIM_OBS_ENABLED
    obs::count(batchMemMetrics().fallback);
#endif
    return l1_.access(addr, kind, t);
}

size_t
BatchMemory::classCount(unsigned level) const
{
    return classes_[level].size();
}

const std::vector<size_t> &
BatchMemory::classMembers(unsigned level, size_t cls) const
{
    return classes_[level][cls].members;
}

void
BatchMemory::probeClass(unsigned level, size_t cls, Addr line,
                        u64 *outMemberBits) const
{
    const TagClass &c = classes_[level][cls];
    const size_t stride = c.setStride();
    const size_t base =
        static_cast<size_t>(line & (c.numSets - 1)) * stride;
    const size_t nw = (c.members.size() + 63) / 64;

    // One sweep classifies every lane x way slot of the set; the
    // member reduction folds each lane's way bits into one residency
    // bit.
    std::vector<u64> slotWords((stride + 63) / 64);
    simd::ops().eqU64Bitmap(c.tags.data() + base, stride, line,
                            slotWords.data());
#if MSIM_OBS_ENABLED
    obs::count(batchMemMetrics().eqProbe);
#endif
    for (size_t w = 0; w < nw; ++w)
        outMemberBits[w] = 0;
    for (size_t m = 0; m < c.members.size(); ++m) {
        bool hit = false;
        for (size_t way = 0; way < c.assoc && !hit; ++way) {
            const size_t bit = m * c.assoc + way;
            hit = ((slotWords[bit / 64] >> (bit % 64)) & 1) != 0;
        }
        if (hit)
            outMemberBits[m / 64] |= u64{1} << (m % 64);
    }

#if MSIM_AUDIT_ENABLED
    // batchmem-tag-soa: the arena probe must agree with each member
    // cache's own view through its private slot arithmetic.
    for (size_t m = 0; m < c.members.size(); ++m) {
        const Cache &cache = level == 0 ? *lanes_[c.members[m]]->l1
                                        : *lanes_[c.members[m]]->l2;
        const bool ref = cache.hasLine(line);
        const bool got = ((outMemberBits[m / 64] >> (m % 64)) & 1) != 0;
        MSIM_AUDIT_CHECK(ref == got,
                         "class L%u/%zu member %zu line %llu: arena "
                         "probe %d != cache residency %d",
                         level + 1, cls, m,
                         static_cast<unsigned long long>(line), got,
                         ref);
    }
#endif
}

#if MSIM_AUDIT_ENABLED
void
BatchMemory::auditClassProbes(Addr byteAddr) const
{
    for (unsigned level = 0; level < 2; ++level) {
        for (size_t i = 0; i < classes_[level].size(); ++i) {
            const TagClass &c = classes_[level][i];
            std::vector<u64> bits((c.members.size() + 63) / 64);
            probeClass(level, i, byteAddr >> log2i(c.spaceLineBytes),
                       bits.data());
        }
    }
}
#endif

} // namespace msim::mem
