/**
 * @file
 * Memory-system configuration (paper Table 3 defaults).
 */

#ifndef MSIM_MEM_CONFIG_HH_
#define MSIM_MEM_CONFIG_HH_

#include "common/types.hh"

namespace msim::mem
{

/** Parameters for one cache level. */
struct CacheConfig
{
    u32 sizeBytes = 64 * 1024;
    u32 assoc = 2;
    u32 lineBytes = 64;
    u32 ports = 2;          ///< request ports (accesses accepted per cycle)
    Cycle hitLatency = 2;   ///< ns == cycles at 1 GHz
    u32 numMshrs = 12;
    u32 maxCombines = 8;    ///< max outstanding requests combined per line
};

/** Parameters for main memory. */
struct DramConfig
{
    Cycle totalLatency = 100; ///< total L2-miss latency (Table 3)
    u32 interleave = 4;       ///< number of interleaved banks
    Cycle bankBusy = 25;      ///< per-line bank occupancy (bandwidth limit)
    u32 lineBytes = 64;
};

/**
 * Which cache implementation the hierarchy instantiates. Both produce
 * bit-identical timing; Reference is the original linear-scan model
 * kept for regression tests and before/after benchmarks.
 */
enum class CacheModel : u8
{
    Fast,
    Reference,
};

/** The full two-level hierarchy configuration. */
struct MemConfig
{
    CacheConfig l1{64 * 1024, 2, 64, 2, 2, 12, 8};
    CacheConfig l2{128 * 1024, 4, 64, 1, 20, 12, 8};
    DramConfig dram{};
    CacheModel model = CacheModel::Fast;
};

} // namespace msim::mem

#endif // MSIM_MEM_CONFIG_HH_
