#include "mem/dram.hh"

#include <algorithm>

#include "common/bits.hh"
#include "common/logging.hh"

namespace msim::mem
{

Dram::Dram(const DramConfig &config)
    : cfg(config), bankFree(config.interleave, 0)
{
    // interleave == 0 would make every access divide by zero below.
    if (config.interleave == 0)
        fatal("dram: interleave must be nonzero");
}

AccessResult
Dram::accessLine(Addr line_addr, AccessKind kind, Cycle t)
{
    const unsigned bank = static_cast<unsigned>(line_addr % cfg.interleave);
    const Cycle start = std::max(t, bankFree[bank]);
    bankFree[bank] = start + cfg.bankBusy;

    if (kind == AccessKind::Writeback)
        writes_.inc();
    else
        reads_.inc();

    AccessResult result;
    result.ready = start + cfg.totalLatency;
    result.level = HitLevel::Memory;
    result.contended = start != t;
    return result;
}

} // namespace msim::mem
