/**
 * @file
 * Interleaved main-memory model.
 *
 * Lines map to one of `interleave` banks by line address. Each access
 * occupies its bank for `bankBusy` cycles (the bandwidth limit) and the
 * data returns `totalLatency` cycles after the access starts, matching
 * Table 3's "total memory latency for L2 misses: 100 ns" with 4-way
 * interleaving.
 */

#ifndef MSIM_MEM_DRAM_HH_
#define MSIM_MEM_DRAM_HH_

#include <algorithm>
#include <vector>

#include "common/stats.hh"
#include "mem/access.hh"
#include "mem/cache.hh"
#include "mem/config.hh"

namespace msim::mem
{

/** Bank-interleaved DRAM. */
class Dram : public Level
{
  public:
    explicit Dram(const DramConfig &config);

    /** Issue a line fetch (or writeback) at time @p t. */
    AccessResult accessLine(Addr line_addr, AccessKind kind,
                            Cycle t) override;

    u64 reads() const { return reads_.value(); }
    u64 writes() const { return writes_.value(); }

    /** Forget bank-busy times (see Cache::quiesce); keeps counters. */
    void
    quiesce()
    {
        std::fill(bankFree.begin(), bankFree.end(), Cycle{0});
    }

  private:
    DramConfig cfg;
    std::vector<Cycle> bankFree;
    Counter reads_;
    Counter writes_;
};

} // namespace msim::mem

#endif // MSIM_MEM_DRAM_HH_
