/**
 * @file
 * The full two-level memory hierarchy (Table 3): on-chip L1, off-chip
 * L2, interleaved DRAM. This is the object the CPU cores talk to.
 */

#ifndef MSIM_MEM_HIERARCHY_HH_
#define MSIM_MEM_HIERARCHY_HH_

#include <algorithm>
#include <memory>

#include "mem/cache.hh"
#include "mem/config.hh"
#include "mem/dram.hh"
#include "mem/ref_cache.hh"

namespace msim::mem
{

/**
 * What a core sees: a byte-addressable memory port. Hierarchy is the
 * standard single-core implementation; multi-core runs substitute a
 * view whose private L1 misses into a shared L2 (sim/multicore.cc).
 */
class MemoryPort
{
  public:
    virtual ~MemoryPort() = default;

    /** Core-side access; @p addr is a byte address. */
    virtual AccessResult access(Addr addr, AccessKind kind, Cycle t) = 0;

    /**
     * access() plus the request's dynamic memory-lane ordinal @p ord
     * (the index of this access in the trace's dense memory lane).
     * Ports that precompute per-chunk columns keyed by ordinal — the
     * batched memory layer's lane views (mem::BatchMemory) — override
     * this to skip per-access address decomposition; everything else
     * inherits the plain forward.  Timing and results are identical to
     * access() by contract (audited in the batch layer).
     */
    virtual AccessResult
    accessAt(u64 /*ord*/, Addr addr, AccessKind kind, Cycle t)
    {
        return access(addr, kind, t);
    }

    /**
     * Earliest cache fill strictly after @p t anywhere behind this
     * port, or ~Cycle{0} when none is in flight.  Diagnostic surface
     * for the event-skip scheduler (fills are not scheduler events —
     * memory timing resolves at access() time — so this only feeds
     * deadlock messages and audits); ports that cannot answer cheaply
     * report "nothing pending".
     */
    virtual Cycle nextFillTime(Cycle) const { return ~Cycle{0}; }
};

/**
 * Owns and wires L1 -> L2 -> DRAM. MemConfig::model selects the cache
 * implementation (fast by default; the reference model backs the
 * bit-identity tests and A/B benchmarks). The hot entry point branches
 * once and then calls the concrete type, so the fast path keeps its
 * devirtualized inner calls.
 */
class Hierarchy : public MemoryPort
{
  public:
    explicit Hierarchy(const MemConfig &config);

    AccessResult
    access(Addr addr, AccessKind kind, Cycle t) override
    {
        if (l1Fast_)
            return l1Fast_->access(addr, kind, t);
        return l1Ref_->access(addr, kind, t);
    }

    /// Same devirtualized branch as access(): the default base
    /// implementation would pay a second virtual dispatch per request.
    AccessResult
    accessAt(u64, Addr addr, AccessKind kind, Cycle t) override
    {
        if (l1Fast_)
            return l1Fast_->access(addr, kind, t);
        return l1Ref_->access(addr, kind, t);
    }

    const CacheLevel &
    l1() const
    {
        if (l1Fast_)
            return *l1Fast_;
        return *l1Ref_;
    }

    const CacheLevel &
    l2() const
    {
        if (l2Fast_)
            return *l2Fast_;
        return *l2Ref_;
    }
    const Dram &dram() const { return *dram_; }

    Cycle
    nextFillTime(Cycle t) const override
    {
        return std::min(l1().nextFillTime(t), l2().nextFillTime(t));
    }

    /**
     * Whether this hierarchy supports the sampled-replay warm/quiesce
     * protocol.  Only the fast cache model does; the reference model is
     * kept verbatim from the original linear-scan implementation and
     * deliberately grows no new entry points.
     */
    bool supportsWarmup() const { return l1Fast_ != nullptr; }

    /** Functional warming of the whole stack; @p addr is a byte address. */
    void
    warmAccess(Addr addr, AccessKind kind)
    {
        l1Fast_->warm(addr, kind);
    }

    /** Reset all timing-coupled state between measured sample chunks. */
    void
    quiesce()
    {
        l1Fast_->quiesce();
        l2Fast_->quiesce();
        dram_->quiesce();
    }

  private:
    std::unique_ptr<Dram> dram_;
    std::unique_ptr<Cache> l2Fast_;
    std::unique_ptr<Cache> l1Fast_;
    std::unique_ptr<RefCache> l2Ref_;
    std::unique_ptr<RefCache> l1Ref_;
};

} // namespace msim::mem

#endif // MSIM_MEM_HIERARCHY_HH_
