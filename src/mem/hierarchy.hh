/**
 * @file
 * The full two-level memory hierarchy (Table 3): on-chip L1, off-chip
 * L2, interleaved DRAM. This is the object the CPU cores talk to.
 */

#ifndef MSIM_MEM_HIERARCHY_HH_
#define MSIM_MEM_HIERARCHY_HH_

#include <memory>

#include "mem/cache.hh"
#include "mem/config.hh"
#include "mem/dram.hh"

namespace msim::mem
{

/**
 * What a core sees: a byte-addressable memory port. Hierarchy is the
 * standard single-core implementation; multi-core runs substitute a
 * view whose private L1 misses into a shared L2 (sim/multicore.cc).
 */
class MemoryPort
{
  public:
    virtual ~MemoryPort() = default;

    /** Core-side access; @p addr is a byte address. */
    virtual AccessResult access(Addr addr, AccessKind kind, Cycle t) = 0;
};

/** Owns and wires L1 -> L2 -> DRAM. */
class Hierarchy : public MemoryPort
{
  public:
    explicit Hierarchy(const MemConfig &config);

    AccessResult
    access(Addr addr, AccessKind kind, Cycle t) override
    {
        return l1_->access(addr, kind, t);
    }

    const Cache &l1() const { return *l1_; }
    const Cache &l2() const { return *l2_; }
    const Dram &dram() const { return *dram_; }

  private:
    std::unique_ptr<Dram> dram_;
    std::unique_ptr<Cache> l2_;
    std::unique_ptr<Cache> l1_;
};

} // namespace msim::mem

#endif // MSIM_MEM_HIERARCHY_HH_
