#include "mem/cache.hh"

#include <algorithm>

#include "common/bits.hh"
#include "common/logging.hh"

namespace msim::mem
{

namespace
{

/** Smallest power of two >= v (v >= 1). */
u32
pow2AtLeast(u32 v)
{
    u32 p = 1;
    while (p < v)
        p <<= 1;
    return p;
}

} // namespace

unsigned
checkedNumSets(const CacheConfig &config)
{
    // Validate before the set count is computed: a zero assoc or line
    // size would divide by zero in the initializer, and zero ports or
    // MSHRs would index empty arrays on the first access.
    if (config.assoc == 0 || config.lineBytes == 0 || config.ports == 0 ||
        config.numMshrs == 0)
        fatal("cache: bad config (assoc %u, line %u, ports %u, mshrs %u):"
              " all must be nonzero",
              config.assoc, config.lineBytes, config.ports,
              config.numMshrs);
    return config.sizeBytes / (config.lineBytes * config.assoc);
}

Cache::Cache(const CacheConfig &config, Level &next, HitLevel level)
    : CacheLevel(config, next, level), numSets(checkedNumSets(config)),
      assoc_(config.assoc)
{
    if (!isPow2(config.lineBytes) || numSets == 0 || !isPow2(numSets))
        fatal("cache: bad geometry (size %u, assoc %u, line %u)",
              config.sizeBytes, config.assoc, config.lineBytes);
    lineShift_ = log2i(config.lineBytes);
    setMask_ = numSets - 1;

    tagStore_.assign(static_cast<size_t>(numSets) * assoc_, kNoLine);
    useStore_.assign(tagStore_.size(), 0);
    dirtyStore_.assign(tagStore_.size(), 0);
    tags_ = tagStore_.data();
    lastUse_ = useStore_.data();
    dirty_ = dirtyStore_.data();
    setStride_ = assoc_;
    laneBase_ = 0;

    portFree.assign(config.ports, 0);

    mshrLine_.assign(config.numMshrs, kNoLine);
    mshrFill_.assign(config.numMshrs, 0);
    mshrCombines_.assign(config.numMshrs, 0);
    mshrIsLoad_.assign(config.numMshrs, 0);
    mshrLevel_.assign(config.numMshrs, HitLevel::L1);

    sortedFill_.assign(config.numMshrs, 0);
    sortedLoadFill_.clear();
    sortedLoadFill_.reserve(config.numMshrs);

    const u32 cap = pow2AtLeast(std::max<u32>(16, 4 * config.numMshrs));
    mapKey_.assign(cap, kNoLine);
    mapVal_.assign(cap, kNoMshr);
    mapMask_ = cap - 1;
}

void
Cache::bindTagArena(const TagArenaView &view)
{
    MSIM_AUDIT_CHECK(accesses_.value() == 0,
                     "bindTagArena after %llu accesses",
                     static_cast<unsigned long long>(accesses_.value()));
    tags_ = view.tags;
    lastUse_ = view.lastUse;
    dirty_ = view.dirty;
    setStride_ = view.setStride;
    laneBase_ = view.laneBase;
    // This lane's slots start just-constructed; the standalone backing
    // vectors are released (the arena owns the state from here on).
    for (size_t set = 0; set < numSets; ++set) {
        const size_t base = set * setStride_ + laneBase_;
        for (size_t w = 0; w < assoc_; ++w) {
            tags_[base + w] = kNoLine;
            lastUse_[base + w] = 0;
            dirty_[base + w] = 0;
        }
    }
    tagStore_.clear();
    tagStore_.shrink_to_fit();
    useStore_.clear();
    useStore_.shrink_to_fit();
    dirtyStore_.clear();
    dirtyStore_.shrink_to_fit();
}

void
Cache::sortedErase(std::vector<Cycle> &v, Cycle value)
{
    auto it = std::lower_bound(v.begin(), v.end(), value);
    v.erase(it);
}

void
Cache::sortedInsert(std::vector<Cycle> &v, Cycle value)
{
    auto it = std::upper_bound(v.begin(), v.end(), value);
    v.insert(it, value);
}

u32
Cache::hashSlot(Addr line) const
{
    return static_cast<u32>((line * 0x9e3779b97f4a7c15ull) >> 32) & mapMask_;
}

void
Cache::mapInsert(Addr line, u32 idx)
{
    u32 i = hashSlot(line);
    while (mapKey_[i] != line && mapKey_[i] != kNoLine)
        i = (i + 1) & mapMask_;
    mapKey_[i] = line;
    mapVal_[i] = idx;
}

void
Cache::mapErase(Addr line, u32 idx)
{
    u32 i = hashSlot(line);
    while (mapKey_[i] != line) {
        if (mapKey_[i] == kNoLine)
            return;
        i = (i + 1) & mapMask_;
    }
    if (mapVal_[i] != idx)
        return; // a newer MSHR owns the entry now
    // Backward-shift deletion keeps every surviving key reachable from
    // its home slot without tombstones.
    u32 j = i;
    for (;;) {
        j = (j + 1) & mapMask_;
        if (mapKey_[j] == kNoLine)
            break;
        const u32 home = hashSlot(mapKey_[j]);
        if (((j - home) & mapMask_) >= ((j - i) & mapMask_)) {
            mapKey_[i] = mapKey_[j];
            mapVal_[i] = mapVal_[j];
            i = j;
        }
    }
    mapKey_[i] = kNoLine;
    mapVal_[i] = kNoMshr;
}

#if MSIM_AUDIT_ENABLED

void
Cache::auditMshrState() const
{
    // mshr-conservation: every MSHR's fill time appears in sortedFill_
    // exactly once (multiset equality via sorted compare), and the
    // load-only mirror matches the load MSHRs the same way.
    std::vector<Cycle> fills(mshrFill_.begin(), mshrFill_.end());
    std::sort(fills.begin(), fills.end());
    MSIM_AUDIT_CHECK(fills == sortedFill_,
                     "sortedFill_ is not a permutation of mshrFill_ "
                     "(%zu mshrs)",
                     mshrFill_.size());

    std::vector<Cycle> load_fills;
    for (u32 i = 0; i < mshrFill_.size(); ++i)
        if (mshrIsLoad_[i])
            load_fills.push_back(mshrFill_[i]);
    std::sort(load_fills.begin(), load_fills.end());
    MSIM_AUDIT_CHECK(load_fills == sortedLoadFill_,
                     "sortedLoadFill_ mismatch (%zu load mshrs vs %zu "
                     "tracked)",
                     load_fills.size(), sortedLoadFill_.size());
}

void
Cache::auditTagSet(Addr line) const
{
    const Addr set = line & setMask_;
    const size_t base = slotBase(line);
    for (size_t s = base; s < base + assoc_; ++s) {
        if (tags_[s] == kNoLine)
            continue;
        MSIM_AUDIT_CHECK((tags_[s] & setMask_) == set,
                         "tag %llu stored in set %llu maps to set %llu",
                         static_cast<unsigned long long>(tags_[s]),
                         static_cast<unsigned long long>(set),
                         static_cast<unsigned long long>(tags_[s] &
                                                         setMask_));
        for (size_t r = s + 1; r < base + assoc_; ++r)
            MSIM_AUDIT_CHECK(tags_[r] != tags_[s],
                             "tag %llu duplicated in ways %zu and %zu",
                             static_cast<unsigned long long>(tags_[s]),
                             s - base, r - base);
    }
}

void
Cache::auditPorts() const
{
    MSIM_AUDIT_CHECK(portFree.size() == cfg.ports,
                     "portFree has %zu entries, config has %u ports",
                     portFree.size(), cfg.ports);
    for (size_t i = 1; i < portFree.size(); ++i)
        MSIM_AUDIT_CHECK(portFree[i - 1] <= portFree[i],
                         "portFree not sorted at [%zu]", i);
}

#endif // MSIM_AUDIT_ENABLED

Cycle
Cache::allocPort(Cycle t)
{
    // portFree is kept ascending, so [0] is the reference's
    // min_element. Re-inserting the bumped value is a short shift
    // (ports <= 2 in every paper configuration).
    const Cycle start = std::max(t, portFree[0]);
    const Cycle busy = start + 1; // one request per port per cycle
    size_t i = 1;
    for (; i < portFree.size() && portFree[i] < busy; ++i)
        portFree[i - 1] = portFree[i];
    portFree[i - 1] = busy;
#if MSIM_AUDIT_ENABLED
    auditPorts();
#endif
    return start;
}

unsigned
Cache::busyMshrs(Cycle t) const
{
    // Active means fillTime > t; sortedFill_ is ascending.
    const auto it =
        std::upper_bound(sortedFill_.begin(), sortedFill_.end(), t);
    return static_cast<unsigned>(sortedFill_.end() - it);
}

unsigned
Cache::busyLoadMshrs(Cycle t) const
{
    const auto it =
        std::upper_bound(sortedLoadFill_.begin(), sortedLoadFill_.end(), t);
    return static_cast<unsigned>(sortedLoadFill_.end() - it);
}

u32
Cache::findMshrScan(Addr line, Cycle t) const
{
    for (u32 i = 0; i < mshrLine_.size(); ++i)
        if (mshrFill_[i] > t && mshrLine_[i] == line)
            return i;
    return kNoMshr;
}

u32
Cache::findMshr(Addr line, Cycle t) const
{
    if (t < dupUntil_)
        return findMshrScan(line, t);
    u32 i = hashSlot(line);
    while (mapKey_[i] != line) {
        if (mapKey_[i] == kNoLine)
            return kNoMshr;
        i = (i + 1) & mapMask_;
    }
    const u32 idx = mapVal_[i];
    return mshrFill_[idx] > t ? idx : kNoMshr;
}

u32
Cache::findFreeMshr(Cycle t) const
{
    // Cheap reject: if every fill time is in the future nothing is
    // free; otherwise the reference picks the lowest free index, which
    // the short scan reproduces.
    if (sortedFill_.front() > t)
        return kNoMshr;
    for (u32 i = 0; i < mshrFill_.size(); ++i)
        if (mshrFill_[i] <= t)
            return i;
    return kNoMshr;
}

void
Cache::allocateMshr(u32 idx, Addr line, Cycle fill_time, bool is_load,
                    HitLevel level)
{
    const Cycle old_fill = mshrFill_[idx];
    if (mshrLine_[idx] != kNoLine) {
        mapErase(mshrLine_[idx], idx);
        // A query that reaches back below the displaced fill time could
        // still see the old binding in the reference scan.
        dupUntil_ = std::max(dupUntil_, old_fill);
    }
    // An older MSHR for this same line (already expired at the current
    // time, or findMshr would have combined) can still be live for
    // earlier query times; remember how long.
    for (u32 i = 0; i < mshrLine_.size(); ++i)
        if (i != idx && mshrLine_[i] == line)
            dupUntil_ = std::max(dupUntil_, mshrFill_[i]);

    sortedErase(sortedFill_, old_fill);
    sortedInsert(sortedFill_, fill_time);
    if (mshrIsLoad_[idx])
        sortedErase(sortedLoadFill_, old_fill);
    if (is_load)
        sortedInsert(sortedLoadFill_, fill_time);

    mshrLine_[idx] = line;
    mshrFill_[idx] = fill_time;
    mshrIsLoad_[idx] = is_load;
    mshrLevel_[idx] = level;
    mapInsert(line, idx);
#if MSIM_AUDIT_ENABLED
    auditMshrState();
#endif
}

s64
Cache::lookup(Addr line, u64 use_stamp)
{
    const size_t base = slotBase(line);
    for (size_t s = base; s < base + assoc_; ++s) {
        if (tags_[s] == line) {
            lastUse_[s] = use_stamp;
            return static_cast<s64>(s);
        }
    }
    return -1;
}

void
Cache::insert(Addr line, bool dirty, Cycle fill_time, u64 use_stamp)
{
    const size_t base = slotBase(line);
    size_t victim = base;
    for (size_t s = base; s < base + assoc_; ++s) {
        if (tags_[s] == kNoLine) {
            victim = s;
            break;
        }
        if (lastUse_[s] < lastUse_[victim])
            victim = s;
    }
    if (tags_[victim] != kNoLine && dirty_[victim]) {
        writebacks_.inc();
        next.accessLine(tags_[victim], AccessKind::Writeback, fill_time);
    }
    tags_[victim] = line;
    dirty_[victim] = dirty;
    lastUse_[victim] = use_stamp;
#if MSIM_AUDIT_ENABLED
    auditTagSet(line);
#endif
}

void
Cache::warmInsert(Addr line, bool dirty)
{
    const size_t base = slotBase(line);
    size_t victim = base;
    for (size_t s = base; s < base + assoc_; ++s) {
        if (tags_[s] == kNoLine) {
            victim = s;
            break;
        }
        if (lastUse_[s] < lastUse_[victim])
            victim = s;
    }
    if (tags_[victim] != kNoLine && dirty_[victim])
        next.warmLine(tags_[victim], AccessKind::Writeback);
    tags_[victim] = line;
    dirty_[victim] = dirty;
    lastUse_[victim] = useStamp;
#if MSIM_AUDIT_ENABLED
    auditTagSet(line);
#endif
}

void
Cache::warmLine(Addr line, AccessKind kind)
{
    // Mirror of accessImpl's tag-state effects with no ports, MSHRs,
    // latencies, or counters: what a request does to tags, LRU order
    // and dirty bits is independent of when it happens, so functional
    // warming replays exactly those updates.  Prefetches always
    // install (a timed prefetch may be dropped by resource pressure,
    // which warming cannot see) — that is the documented approximation
    // of sampled replay, not a divergence bug.
    if (kind == AccessKind::Writeback) {
        const s64 slot = lookup(line, ++useStamp);
        if (slot >= 0)
            dirty_[slot] = 1;
        else
            next.warmLine(line, AccessKind::Writeback);
        return;
    }

    if (const s64 slot = lookup(line, ++useStamp); slot >= 0) {
        if (kind == AccessKind::Store)
            dirty_[slot] = 1;
        return;
    }

    next.warmLine(line, kind);
    warmInsert(line, kind == AccessKind::Store);
}

void
Cache::quiesce()
{
    std::fill(portFree.begin(), portFree.end(), 0);
    std::fill(mshrLine_.begin(), mshrLine_.end(), kNoLine);
    std::fill(mshrFill_.begin(), mshrFill_.end(), 0);
    std::fill(mshrCombines_.begin(), mshrCombines_.end(), 0);
    std::fill(mshrIsLoad_.begin(), mshrIsLoad_.end(), 0);
    std::fill(mshrLevel_.begin(), mshrLevel_.end(), HitLevel::L1);
    std::fill(sortedFill_.begin(), sortedFill_.end(), 0);
    sortedLoadFill_.clear();
    std::fill(mapKey_.begin(), mapKey_.end(), kNoLine);
    std::fill(mapVal_.begin(), mapVal_.end(), kNoMshr);
    dupUntil_ = 0;
    inputBlockedUntil = 0;
#if MSIM_AUDIT_ENABLED
    auditMshrState();
    auditPorts();
#endif
}

AccessResult
Cache::accessImpl(Addr line, AccessKind kind, Cycle t)
{
    accesses_.inc();
    AccessResult result;

    // Writebacks from an upper level: update in place on hit, otherwise
    // forward without allocating (a writeback buffer in spirit).
    if (kind == AccessKind::Writeback) {
        const s64 slot = lookup(line, ++useStamp);
        if (slot >= 0) {
            dirty_[slot] = 1;
            hits_.inc();
        } else {
            next.accessLine(line, AccessKind::Writeback, t);
            misses_.inc();
        }
        result.ready = t + cfg.hitLatency;
        result.level = level_;
        return result;
    }

    Cycle arrival = std::max(t, inputBlockedUntil);
    for (;;) {
        const Cycle start = allocPort(arrival);
        const unsigned busy = busyMshrs(start);
        mshrOcc.advance(start, busy);
        result.contended = result.contended || start != t;

        // 1. Request to a line already in flight: combine onto its
        // MSHR.  findMshr can only return an MSHR whose fill time
        // exceeds `start`, so the busy count already computed for the
        // occupancy tracker proves the probe is futile when zero.
        if (const u32 m = busy != 0 ? findMshr(line, start) : kNoMshr;
            m != kNoMshr) {
            if (mshrCombines_[m] < cfg.maxCombines) {
                ++mshrCombines_[m];
                MSIM_AUDIT_CHECK(mshrCombines_[m] <= cfg.maxCombines,
                                 "mshr %u combined %u > cap %u", m,
                                 mshrCombines_[m], cfg.maxCombines);
                combined_.inc();
                if (kind == AccessKind::Store) {
                    const s64 slot = lookup(line, ++useStamp);
                    if (slot >= 0)
                        dirty_[slot] = 1;
                }
                if (kind == AccessKind::Prefetch) {
                    result.ready = start;
                    return result;
                }
                result.ready =
                    std::max(start + cfg.hitLatency, mshrFill_[m]);
                result.level = mshrLevel_[m];
                return result;
            }
            // Combine slots exhausted: the cache input backs up until the
            // fill returns; the retried request then hits.
            if (kind == AccessKind::Prefetch) {
                prefetchDrops_.inc();
                result.dropped = true;
                result.ready = start;
                return result;
            }
            blocked_.inc();
            inputBlockedUntil = std::max(inputBlockedUntil, mshrFill_[m]);
            arrival = mshrFill_[m];
            result.contended = true;
            continue;
        }

        // 2. Tag lookup. On a store hit the way lookup() matched is
        // marked dirty directly — no second scan of the set.
        if (const s64 slot = lookup(line, ++useStamp); slot >= 0) {
            hits_.inc();
            if (kind == AccessKind::Store)
                dirty_[slot] = 1;
            result.ready = start + cfg.hitLatency;
            result.level = level_;
            return result;
        }

        // 3. Miss: allocate an MSHR and fetch from below.
        const u32 m = findFreeMshr(start);
        if (m == kNoMshr) {
            if (kind == AccessKind::Prefetch) {
                prefetchDrops_.inc();
                result.dropped = true;
                result.ready = start;
                return result;
            }
            // All MSHRs busy: the cache stops accepting requests.
            blocked_.inc();
            const Cycle free_at = earliestMshrFree();
            inputBlockedUntil = std::max(inputBlockedUntil, free_at);
            arrival = free_at;
            result.contended = true;
            continue;
        }

        misses_.inc();
        if (kind == AccessKind::Load)
            loadMisses_.inc();

        const AccessResult below =
            next.accessLine(line, kind, start + cfg.hitLatency);

        allocateMshr(m, line, below.ready, kind == AccessKind::Load,
                     below.level);
        mshrCombines_[m] = 1;
        if (kind == AccessKind::Load)
            loadOverlap_.sample(busyLoadMshrs(start));

        insert(line, kind == AccessKind::Store, below.ready, useStamp);

        result.ready = kind == AccessKind::Prefetch ? start : below.ready;
        result.level = below.level;
        return result;
    }
}

} // namespace msim::mem
