/**
 * @file
 * Shared infrastructure for the VSDK-style image kernels: benchmark
 * variants, default workload geometry, arena upload helpers, and the
 * software-prefetch distance used by the +PF variants.
 */

#ifndef MSIM_KERNELS_COMMON_HH_
#define MSIM_KERNELS_COMMON_HH_

#include "img/image.hh"
#include "prog/trace_builder.hh"
#include "prog/variant.hh"

namespace msim::kernels
{

using Variant = prog::Variant;

/** Default image geometry (paper: 1024x640, scaled for simulation time). */
constexpr unsigned kImgW = 320;
constexpr unsigned kImgH = 200;
constexpr unsigned kImgBands = 3;

/** Dot-product length (paper: 1048576, scaled). */
constexpr unsigned kDotN = 262144;

/**
 * Prefetch distance in bytes for streaming kernels, per Mowry's
 * algorithm: far enough ahead to cover the ~100-cycle memory latency at
 * roughly one 64-byte line per few iterations.
 */
constexpr unsigned kPrefetchBytes = 256;

/** Upload an image into the arena; returns its base address. */
Addr uploadImage(prog::TraceBuilder &tb, const img::Image &im,
                 const char *name);

/** Download a same-shaped image from the arena. */
img::Image downloadImage(const prog::TraceBuilder &tb, Addr base,
                         unsigned width, unsigned height, unsigned bands);

/**
 * Emit the prefetches for one iteration of a streaming loop: one
 * prefetch per stream each time @p offset crosses a cache line.
 */
void maybePrefetch(prog::TraceBuilder &tb, Variant variant,
                   std::initializer_list<Addr> streams, unsigned offset,
                   unsigned step);

} // namespace msim::kernels

#endif // MSIM_KERNELS_COMMON_HH_
