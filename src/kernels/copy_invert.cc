#include "kernels/copy_invert.hh"

#include "common/logging.hh"
#include "img/synth.hh"

namespace msim::kernels
{

using prog::TraceBuilder;
using prog::Val;

namespace
{

void
emitLoop(TraceBuilder &tb, Variant variant, Addr s, Addr d, unsigned n,
         bool invert)
{
    const u32 loop_pc = tb.makePc("cpy.loop");
    const Val all_ones = tb.imm(~u64{0});
    Val idx = tb.imm(0);
    if (variant == Variant::Scalar) {
        const Val k255 = tb.imm(255);
        for (unsigned i = 0; i < n; i += 4) {
            for (unsigned e = 0; e < 4; ++e) {
                Val v = tb.load(s + i + e, 1, idx);
                if (invert)
                    v = tb.sub(k255, v);
                tb.store(d + i + e, 1, v, idx);
            }
            idx = tb.addi(idx, 4);
            Val c = tb.cmpLt(idx, tb.imm(n));
            tb.branch(loop_pc, i + 4 < n, c);
        }
    } else {
        for (unsigned i = 0; i < n; i += 8) {
            maybePrefetch(tb, variant, {s, d}, i, 8);
            Val v = tb.vload(s + i, idx);
            if (invert)
                v = tb.vxor(v, all_ones); // 255 - v == ~v per byte
            tb.vstore(d + i, v, idx);
            idx = tb.addi(idx, 8);
            Val c = tb.cmpLt(idx, tb.imm(n));
            tb.branch(loop_pc, i + 8 < n, c);
        }
    }
}

void
run(TraceBuilder &tb, Variant variant, unsigned width, unsigned height,
    unsigned bands, bool invert)
{
    const img::Image src = img::makeTestImage(width, height, bands, 71);
    const Addr s = uploadImage(tb, src, "cpy.src");
    const Addr d = tb.alloc(src.sizeBytes(), "cpy.dst");

    emitLoop(tb, variant, s, d, width * height * bands, invert);

    const img::Image out = downloadImage(tb, d, width, height, bands);
    for (size_t i = 0; i < src.sizeBytes(); ++i) {
        const u8 want =
            invert ? static_cast<u8>(255 - src.data()[i]) : src.data()[i];
        if (out.data()[i] != want)
            panic("copy/invert mismatch at %zu: got %u want %u", i,
                  out.data()[i], want);
    }
}

} // namespace

void
runCopy(TraceBuilder &tb, Variant variant, unsigned width, unsigned height,
        unsigned bands)
{
    run(tb, variant, width, height, bands, false);
}

void
runInvert(TraceBuilder &tb, Variant variant, unsigned width,
          unsigned height, unsigned bands)
{
    run(tb, variant, width, height, bands, true);
}

} // namespace msim::kernels
