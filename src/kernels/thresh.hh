/**
 * @file
 * VSDK-style double-limit thresholding: if low[b] <= v <= high[b] the
 * destination gets map[b], otherwise the source value passes through
 * (used in chroma-keying / blue-screening per the paper's Table 1).
 */

#ifndef MSIM_KERNELS_THRESH_HH_
#define MSIM_KERNELS_THRESH_HH_

#include <array>

#include "kernels/common.hh"

namespace msim::kernels
{

/** Per-band threshold parameters. */
struct ThreshParams
{
    std::array<u8, 3> low{90, 80, 70};
    std::array<u8, 3> high{170, 160, 150};
    std::array<u8, 3> map{255, 0, 128};
};

/**
 * Emit (and functionally verify) the thresholding benchmark.
 *
 * The scalar path has two data-dependent branches per sample (the
 * hard-to-predict ones the paper reports at ~6% misprediction, dropping
 * to ~0% with VIS). The VIS path uses partitioned fcmp compares and a
 * masked partial store, eliminating the branches entirely.
 */
void runThresh(prog::TraceBuilder &tb, Variant variant,
               unsigned width = kImgW, unsigned height = kImgH,
               unsigned bands = kImgBands,
               const ThreshParams &params = ThreshParams{});

} // namespace msim::kernels

#endif // MSIM_KERNELS_THRESH_HH_
