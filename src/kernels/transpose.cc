#include "kernels/transpose.hh"

#include "common/logging.hh"
#include "img/synth.hh"

namespace msim::kernels
{

using prog::TraceBuilder;
using prog::Val;

namespace
{

void
emitScalar(TraceBuilder &tb, Addr s, Addr d, unsigned w, unsigned h)
{
    const u32 pc = tb.makePc("tr.loop");
    Val idx = tb.imm(0);
    for (unsigned y = 0; y < h; ++y) {
        for (unsigned x = 0; x < w; ++x) {
            Val v = tb.load(s + size_t{y} * w + x, 1, idx);
            tb.store(d + size_t{x} * h + y, 1, v, idx);
            tb.branch(pc, x + 1 < w, idx);
        }
        idx = tb.addi(idx, 1);
    }
}

void
emitVis(TraceBuilder &tb, Variant variant, Addr s, Addr d, unsigned w,
        unsigned h)
{
    const u32 pc = tb.makePc("tr.vloop");
    for (unsigned by = 0; by < h; by += 8) {
        for (unsigned bx = 0; bx < w; bx += 8) {
            maybePrefetch(tb, variant, {s + size_t{by} * w}, bx, 8);
            Val r[8];
            for (unsigned row = 0; row < 8; ++row)
                r[row] = tb.vload(s + size_t{by + row} * w + bx);

            // Three perfect-shuffle rounds. One round maps flat index
            // (b,k,i) -> (k,i,b): out[2k+?] interleaves lanes of r[k]
            // and r[k+4] (low half via fpmerge directly, high half via
            // a 4-byte faligndata first).
            for (unsigned round = 0; round < 3; ++round) {
                tb.visAlignAddr(4); // GSR.align = 4 for the high halves
                Val next[8];
                for (unsigned k = 0; k < 4; ++k) {
                    Val lo_a = r[k];
                    Val lo_b = r[k + 4];
                    next[2 * k] = tb.vfpmerge(lo_a, lo_b);
                    Val hi_a = tb.vfaligndata(r[k], r[k]);
                    Val hi_b = tb.vfaligndata(r[k + 4], r[k + 4]);
                    next[2 * k + 1] = tb.vfpmerge(hi_a, hi_b);
                }
                for (unsigned k = 0; k < 8; ++k)
                    r[k] = next[k];
            }

            for (unsigned col = 0; col < 8; ++col)
                tb.vstore(d + size_t{bx + col} * h + by, r[col]);
            tb.branch(pc, bx + 8 < w);
        }
    }
}

} // namespace

void
runTranspose(TraceBuilder &tb, Variant variant, unsigned width,
             unsigned height)
{
    if (width % 8 || height % 8)
        fatal("transpose: dimensions must be multiples of 8");
    const img::Image src = img::makeTestImage(width, height, 1, 49);
    const Addr s = uploadImage(tb, src, "tr.src");
    const Addr d = tb.alloc(src.sizeBytes(), "tr.dst");

    if (variant == Variant::Scalar)
        emitScalar(tb, s, d, width, height);
    else
        emitVis(tb, variant, s, d, width, height);

    const img::Image out =
        downloadImage(tb, d, height, width, 1); // transposed shape
    for (unsigned y = 0; y < height; ++y)
        for (unsigned x = 0; x < width; ++x)
            if (out.at(y, x, 0) != src.at(x, y, 0))
                panic("transpose mismatch at (%u,%u): got %u want %u", x,
                      y, out.at(y, x, 0), src.at(x, y, 0));
}

} // namespace msim::kernels
