#include "kernels/lookup.hh"

#include "common/logging.hh"
#include "img/synth.hh"

namespace msim::kernels
{

using prog::TraceBuilder;
using prog::Val;

namespace
{

/** A gamma-like map with enough structure to catch indexing bugs. */
u8
tableEntry(unsigned i)
{
    const unsigned v = (i * i) / 255u;
    return static_cast<u8>(255 - v);
}

} // namespace

void
runLookup(TraceBuilder &tb, Variant variant, unsigned width,
          unsigned height, unsigned bands)
{
    const img::Image src = img::makeTestImage(width, height, bands, 47);
    const Addr s = uploadImage(tb, src, "lut.src");
    const Addr d = tb.alloc(src.sizeBytes(), "lut.dst");
    const Addr table = tb.alloc(256, "lut.table");
    for (unsigned i = 0; i < 256; ++i)
        tb.arena().write(table + i, 1, tableEntry(i));

    const unsigned n = width * height * bands;
    const u32 loop_pc = tb.makePc("lut.loop");
    Val idx = tb.imm(0);

    if (variant == Variant::Scalar) {
        for (unsigned i = 0; i < n; i += 4) {
            for (unsigned e = 0; e < 4; ++e) {
                Val v = tb.load(s + i + e, 1, idx);
                // The indirect A[B[i]] access pattern.
                Val mapped = tb.load(table + v.data, 1, v);
                tb.store(d + i + e, 1, mapped, idx);
            }
            idx = tb.addi(idx, 4);
            tb.branch(loop_pc, i + 4 < n, idx);
        }
    } else {
        // Gather stays scalar; results are packed into a register and
        // written with one 8-byte store per 8 pixels.
        for (unsigned i = 0; i < n; i += 8) {
            maybePrefetch(tb, variant, {s, d}, i, 8);
            Val packed = tb.imm(0);
            for (unsigned e = 0; e < 8; ++e) {
                Val v = tb.load(s + i + e, 1, idx);
                Val mapped = tb.load(table + v.data, 1, v);
                packed = tb.orOp(packed, tb.shl(mapped, 8 * e));
            }
            tb.vstore(d + i, packed, idx);
            idx = tb.addi(idx, 8);
            tb.branch(loop_pc, i + 8 < n, idx);
        }
    }

    const img::Image out = downloadImage(tb, d, width, height, bands);
    for (size_t i = 0; i < src.sizeBytes(); ++i) {
        const u8 want = tableEntry(src.data()[i]);
        if (out.data()[i] != want)
            panic("lookup mismatch at %zu: got %u want %u", i,
                  out.data()[i], want);
    }
}

} // namespace msim::kernels
