#include "kernels/scaling.hh"

#include "common/bits.hh"
#include "common/logging.hh"
#include "common/saturate.hh"
#include "img/synth.hh"

namespace msim::kernels
{

using prog::TraceBuilder;
using prog::Val;

namespace
{

u8
refScale(u8 v, int scale_fx, int offset)
{
    return satU8(((s64{v} * scale_fx) >> 8) + offset);
}

void
emitScalar(TraceBuilder &tb, Addr s, Addr d, unsigned n, int scale_fx,
           int offset)
{
    const prog::ScopedSite site(tb, "scale.loop");
    const u32 loop_pc = tb.makePc("scale.loop");
    const u32 low_pc = tb.makePc("scale.satlow");
    const u32 high_pc = tb.makePc("scale.sathigh");
    const Val k0 = tb.imm(0);
    const Val k255 = tb.imm(255);
    const Val kscale = tb.imm(static_cast<u64>(scale_fx));
    const Val koff = tb.imm(static_cast<u64>(static_cast<s64>(offset)));

    Val idx = tb.imm(0);
    for (unsigned i = 0; i < n; i += 2) {
        for (unsigned e = 0; e < 2; ++e) {
            Val v = tb.load(s + i + e, 1, idx);
            Val p = tb.mul(v, kscale);
            Val sh = tb.sra(p, 8);
            Val sum = tb.add(sh, koff);

            Val res = sum;
            Val c_low = tb.cmpLt(sum, k0);
            const bool is_low = sum.s() < 0;
            tb.branch(low_pc, is_low, c_low);
            if (is_low) {
                res = k0;
            } else {
                Val c_high = tb.cmpLt(k255, sum);
                const bool is_high = sum.s() > 255;
                tb.branch(high_pc, is_high, c_high);
                if (is_high)
                    res = k255;
            }
            tb.store(d + i + e, 1, res, idx);
        }
        idx = tb.addi(idx, 2);
        Val c = tb.cmpLt(idx, tb.imm(n));
        tb.branch(loop_pc, i + 2 < n, c);
    }
}

void
emitVis(TraceBuilder &tb, Variant variant, Addr s, Addr d, unsigned n,
        int scale_fx, int offset)
{
    const prog::ScopedSite site(tb, "scale.vloop");
    const u32 loop_pc = tb.makePc("scale.vloop");
    tb.setGsrScale(7); // identity extraction with saturation

    // fmul8x16au: (pixel * scale_fx + 128) >> 8 == (pixel*scale)>>8
    // with the +128 rounding; offset folded in with fpadd16.
    const u16 coeff = static_cast<u16>(static_cast<s16>(scale_fx));
    const Val vcoeff = tb.imm(static_cast<u64>(coeff) << 16);
    u64 off_lanes = 0;
    for (unsigned l = 0; l < 4; ++l)
        off_lanes = setHalfLane(off_lanes, l,
                                static_cast<u16>(static_cast<s16>(offset)));
    const Val voffset = tb.imm(off_lanes);

    Val idx = tb.imm(0);
    for (unsigned i = 0; i < n; i += 4) {
        maybePrefetch(tb, variant, {s, d}, i, 4);
        Val v4 = tb.load(s + i, 4, idx);
        Val prod = tb.vfmul8x16au(v4, vcoeff);
        Val sum = tb.vfpadd16(prod, voffset);
        Val packed = tb.vfpack16(sum);
        tb.store(d + i, 4, packed, idx);

        idx = tb.addi(idx, 4);
        Val c = tb.cmpLt(idx, tb.imm(n));
        tb.branch(loop_pc, i + 4 < n, c);
    }
}

} // namespace

void
runScaling(TraceBuilder &tb, Variant variant, unsigned width,
           unsigned height, unsigned bands, int scale_fx, int offset)
{
    const img::Image src = img::makeTestImage(width, height, bands, 51);
    const Addr s = uploadImage(tb, src, "scale.src");
    const Addr d = tb.alloc(src.sizeBytes(), "scale.dst");

    const unsigned n = width * height * bands;
    if (variant == Variant::Scalar)
        emitScalar(tb, s, d, n, scale_fx, offset);
    else
        emitVis(tb, variant, s, d, n, scale_fx, offset);

    const img::Image out = downloadImage(tb, d, width, height, bands);
    const unsigned tolerance = variant == Variant::Scalar ? 0 : 1;
    for (size_t i = 0; i < src.sizeBytes(); ++i) {
        const u8 want = refScale(src.data()[i], scale_fx, offset);
        const unsigned diff = static_cast<unsigned>(
            out.data()[i] > want ? out.data()[i] - want
                                 : want - out.data()[i]);
        if (diff > tolerance)
            panic("scaling mismatch at %zu: got %u want %u", i,
                  out.data()[i], want);
    }
}

} // namespace msim::kernels
