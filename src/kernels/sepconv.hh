/**
 * @file
 * VSDK-style separable 3x3 convolution: a horizontal 3-tap pass into a
 * 16-bit intermediate buffer followed by a vertical 3-tap pass with
 * normalization and saturation (the VSDK provides both general and
 * separable convolution; the paper's conv benchmark is the general one).
 */

#ifndef MSIM_KERNELS_SEPCONV_HH_
#define MSIM_KERNELS_SEPCONV_HH_

#include <array>

#include "kernels/common.hh"

namespace msim::kernels
{

/** Horizontal and vertical 3-tap vectors plus the final right shift. */
struct SepTaps
{
    std::array<int, 3> h{1, 2, 1};
    std::array<int, 3> v{1, 2, 1};
    unsigned shift = 4; ///< normalizes sum(h)*sum(v) = 16
};

/**
 * Emit (and functionally verify) the separable convolution benchmark
 * on a one-band image. Interior pixels only; the border is copied.
 */
void runSepconv(prog::TraceBuilder &tb, Variant variant,
                unsigned width = kImgW, unsigned height = kImgH,
                const SepTaps &taps = SepTaps{});

} // namespace msim::kernels

#endif // MSIM_KERNELS_SEPCONV_HH_
