#include "kernels/addition.hh"

#include "common/logging.hh"
#include "img/synth.hh"

namespace msim::kernels
{

using prog::TraceBuilder;
using prog::Val;

namespace
{

/** Scalar path: unrolled-by-4 byte loop. */
void
emitScalar(TraceBuilder &tb, Addr a, Addr b, Addr d, unsigned n)
{
    const prog::ScopedSite site(tb, "add.loop");
    const u32 loop_pc = tb.makePc("add.loop");
    Val idx = tb.imm(0);
    for (unsigned i = 0; i < n; i += 4) {
        for (unsigned e = 0; e < 4; ++e) {
            Val x = tb.load(a + i + e, 1, idx);
            Val y = tb.load(b + i + e, 1, idx);
            Val s = tb.add(x, y);
            Val m = tb.shr(s, 1);
            tb.store(d + i + e, 1, m, idx);
        }
        idx = tb.addi(idx, 4);
        Val c = tb.cmpLt(idx, tb.imm(n));
        tb.branch(loop_pc, i + 4 < n, c);
    }
}

/** VIS path: 8 pixels/iteration, row-wise with edge masks. */
void
emitVis(TraceBuilder &tb, Variant variant, Addr a, Addr b, Addr d,
        unsigned row_bytes, unsigned rows)
{
    const prog::ScopedSite site(tb, "add.vloop");
    const u32 loop_pc = tb.makePc("add.vloop");
    const u32 row_pc = tb.makePc("add.vrow");

    // fpack16 scale 2: ((x+y) << 4 << 2) >> 7 == (x+y) >> 1.
    tb.setGsrScale(2);

    for (unsigned r = 0; r < rows; ++r) {
        const Addr ra = a + static_cast<Addr>(r) * row_bytes;
        const Addr rb = b + static_cast<Addr>(r) * row_bytes;
        const Addr rd = d + static_cast<Addr>(r) * row_bytes;

        // Boundary mask for the first block of the row (VSDK idiom).
        Val mask = tb.vedge8(rd, rd + row_bytes - 1);

        Val idx = tb.imm(0);
        for (unsigned i = 0; i < row_bytes; i += 8) {
            maybePrefetch(tb, variant, {ra, rb, rd}, i, 8);

            Val va = tb.vload(ra + i, idx);
            Val vb = tb.vload(rb + i, idx);

            // Upper four lanes via faligndata (GSR.align set to 4).
            tb.visAlignAddr(ra + i + 4, idx);
            Val va_hi = tb.vfaligndata(va, va);
            Val vb_hi = tb.vfaligndata(vb, vb);

            Val lo = tb.vfpack16(tb.vfpadd16(tb.vfexpand(va),
                                             tb.vfexpand(vb)));
            Val hi = tb.vfpack16(tb.vfpadd16(tb.vfexpand(va_hi),
                                             tb.vfexpand(vb_hi)));

            if (i == 0) {
                // First block: edge-masked partial stores.
                tb.vstorePartial(rd + i, lo, tb.andOp(mask, tb.imm(0xf)));
                tb.vstorePartial(rd + i + 4, hi,
                                 tb.andOp(tb.shr(mask, 4), tb.imm(0xf)));
            } else {
                tb.store(rd + i, 4, lo, idx);
                tb.store(rd + i + 4, 4, hi, idx);
            }

            idx = tb.addi(idx, 8);
            Val c = tb.cmpLt(idx, tb.imm(row_bytes));
            tb.branch(loop_pc, i + 8 < row_bytes, c);
        }
        tb.branch(row_pc, r + 1 < rows);
    }
}

} // namespace

void
runAddition(TraceBuilder &tb, Variant variant, unsigned width,
            unsigned height, unsigned bands)
{
    const img::Image src1 = img::makeTestImage(width, height, bands, 11);
    const img::Image src2 = img::makeTestImage(width, height, bands, 22);
    const Addr a = uploadImage(tb, src1, "add.src1");
    const Addr b = uploadImage(tb, src2, "add.src2");
    const Addr d = tb.alloc(src1.sizeBytes(), "add.dst");

    const unsigned row_bytes = width * bands;
    if (variant == Variant::Scalar)
        emitScalar(tb, a, b, d, row_bytes * height);
    else
        emitVis(tb, variant, a, b, d, row_bytes, height);

    // Verify against a native reference.
    const img::Image out =
        downloadImage(tb, d, width, height, bands);
    for (size_t i = 0; i < src1.sizeBytes(); ++i) {
        const u8 want =
            static_cast<u8>((src1.data()[i] + src2.data()[i]) >> 1);
        if (out.data()[i] != want)
            panic("addition mismatch at %zu: got %u want %u", i,
                  out.data()[i], want);
    }
}

} // namespace msim::kernels
