/**
 * @file
 * VSDK-style general 3x3 convolution with saturation, on a one-band
 * image (the VSDK convolution kernels operate on single-band data).
 */

#ifndef MSIM_KERNELS_CONV_HH_
#define MSIM_KERNELS_CONV_HH_

#include <array>

#include "kernels/common.hh"

namespace msim::kernels
{

/** The 3x3 kernel matrix, in 8.4 fixed point-friendly integer taps. */
using ConvTaps = std::array<int, 9>;

/** Default sharpening kernel; produces a realistic saturation rate. */
constexpr ConvTaps kDefaultTaps{0, -1, 0, -1, 6, -1, 0, -1, 0};

/**
 * Emit (and functionally verify) the 3x3 convolution benchmark.
 *
 * The scalar path performs 9 multiply-accumulates per pixel followed by
 * explicit saturation tests — the data-dependent, hard-to-predict
 * branches whose elimination by VIS the paper highlights (conv's
 * misprediction rate drops from ~10% to ~0%). The VIS path computes 4
 * pixels at a time with faligndata-aligned tap windows, fmul8x16au and
 * fpadd16, with saturation implicit in fpack16.
 */
void runConv(prog::TraceBuilder &tb, Variant variant,
             unsigned width = kImgW, unsigned height = kImgH,
             const ConvTaps &taps = kDefaultTaps);

} // namespace msim::kernels

#endif // MSIM_KERNELS_CONV_HH_
