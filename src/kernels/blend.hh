/**
 * @file
 * VSDK-style alpha blending:
 * dst = (alpha * src1 + (255 - alpha) * src2) / 255 per 8-bit sample.
 */

#ifndef MSIM_KERNELS_BLEND_HH_
#define MSIM_KERNELS_BLEND_HH_

#include "kernels/common.hh"

namespace msim::kernels
{

/**
 * Emit (and functionally verify) the blend benchmark.
 *
 * The scalar path computes the exact blend with the classic /255
 * strength-reduction; the VIS path uses fmul8x16 (an 8.8 fixed-point
 * multiply, i.e. /256), which the paper's methodology explicitly allows
 * ("the loss in accuracy ... should be visually imperceptible"); the
 * verifier therefore tolerates |diff| <= 2 on the VIS paths.
 */
void runBlend(prog::TraceBuilder &tb, Variant variant,
              unsigned width = kImgW, unsigned height = kImgH,
              unsigned bands = kImgBands);

} // namespace msim::kernels

#endif // MSIM_KERNELS_BLEND_HH_
