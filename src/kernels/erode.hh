/**
 * @file
 * 3x3 binary erosion on a thresholded (0/255) image: a pixel stays set
 * only if its whole 3x3 neighborhood is set (used after chroma-keying
 * to despeckle masks). The scalar code short-circuits with
 * data-dependent branches; the VIS variant is branch-free logical ANDs
 * over faligndata-aligned rows.
 */

#ifndef MSIM_KERNELS_ERODE_HH_
#define MSIM_KERNELS_ERODE_HH_

#include "kernels/common.hh"

namespace msim::kernels
{

/** Emit (and functionally verify) the erosion benchmark. */
void runErode(prog::TraceBuilder &tb, Variant variant,
              unsigned width = kImgW, unsigned height = kImgH,
              u8 threshold = 128);

} // namespace msim::kernels

#endif // MSIM_KERNELS_ERODE_HH_
