/**
 * @file
 * 8x8-blocked image transpose.
 *
 * The VIS variant transposes each 8x8 byte tile in registers with three
 * rounds of fpmerge/faligndata perfect shuffles (rotating the 6-bit
 * element index by one position per round, so three rounds swap the row
 * and column fields) — the subword-rearrangement style of optimization
 * the paper's Section 3.2.3 overhead numbers come from.
 */

#ifndef MSIM_KERNELS_TRANSPOSE_HH_
#define MSIM_KERNELS_TRANSPOSE_HH_

#include "kernels/common.hh"

namespace msim::kernels
{

/**
 * Emit (and functionally verify) the transpose benchmark on a one-band
 * image; @p width and @p height must be multiples of 8.
 */
void runTranspose(prog::TraceBuilder &tb, Variant variant,
                  unsigned width = kImgW, unsigned height = kImgH);

} // namespace msim::kernels

#endif // MSIM_KERNELS_TRANSPOSE_HH_
