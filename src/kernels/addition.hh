/**
 * @file
 * VSDK-style image addition: dst = (src1 + src2) / 2 per 8-bit sample.
 */

#ifndef MSIM_KERNELS_ADDITION_HH_
#define MSIM_KERNELS_ADDITION_HH_

#include "kernels/common.hh"

namespace msim::kernels
{

/**
 * Emit (and functionally verify) the addition benchmark.
 *
 * The scalar path is an unrolled byte loop; the VIS path processes 8
 * pixels per iteration via fexpand/fpadd16/fpack16 with faligndata used
 * to reach the upper four byte lanes, and edge-masked partial stores at
 * row boundaries. Panics if the simulated output mismatches a natively
 * computed reference.
 */
void runAddition(prog::TraceBuilder &tb, Variant variant,
                 unsigned width = kImgW, unsigned height = kImgH,
                 unsigned bands = kImgBands);

} // namespace msim::kernels

#endif // MSIM_KERNELS_ADDITION_HH_
