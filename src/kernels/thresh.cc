#include "kernels/thresh.hh"

#include <vector>

#include "common/bits.hh"
#include "common/logging.hh"
#include "img/synth.hh"

namespace msim::kernels
{

using prog::TraceBuilder;
using prog::Val;

namespace
{

void
emitScalar(TraceBuilder &tb, const ThreshParams &p, Addr s, Addr d,
           unsigned n, unsigned bands)
{
    const prog::ScopedSite site(tb, "thresh.loop");
    const u32 loop_pc = tb.makePc("thresh.loop");
    const u32 low_pc = tb.makePc("thresh.low");
    const u32 high_pc = tb.makePc("thresh.high");

    Val idx = tb.imm(0);
    for (unsigned i = 0; i < n; i += 2) {
        for (unsigned e = 0; e < 2; ++e) {
            const unsigned band = (i + e) % bands;
            Val v = tb.load(s + i + e, 1, idx);
            Val c1 = tb.cmpLt(v, tb.imm(p.low[band]));
            const bool below = v.data < p.low[band];
            tb.branch(low_pc, below, c1);
            if (below) {
                tb.store(d + i + e, 1, v, idx);
            } else {
                Val c2 = tb.cmpLt(tb.imm(p.high[band]), v);
                const bool above = v.data > p.high[band];
                tb.branch(high_pc, above, c2);
                if (above)
                    tb.store(d + i + e, 1, v, idx);
                else
                    tb.store(d + i + e, 1, tb.imm(p.map[band]), idx);
            }
        }
        idx = tb.addi(idx, 2);
        Val c = tb.cmpLt(idx, tb.imm(n));
        tb.branch(loop_pc, i + 2 < n, c);
    }
}

void
emitVis(TraceBuilder &tb, Variant variant, const ThreshParams &p, Addr s,
        Addr d, unsigned n, unsigned bands)
{
    const prog::ScopedSite site(tb, "thresh.vloop");
    const u32 loop_pc = tb.makePc("thresh.vloop");

    // Lane-packed limits/map values for each of the `bands` possible
    // phase alignments of a 4-sample block (kept in registers, as a
    // compiler would hoist them).
    std::vector<Val> lows(bands), highs(bands), maps(bands);
    for (unsigned ph = 0; ph < bands; ++ph) {
        u64 lo = 0, hi = 0, mp = 0;
        for (unsigned l = 0; l < 4; ++l) {
            const unsigned band = (ph + l) % bands;
            lo = setHalfLane(lo, l, static_cast<u16>(p.low[band] << 4));
            hi = setHalfLane(hi, l, static_cast<u16>(p.high[band] << 4));
            mp = setByteLane(mp, l, p.map[band]);
        }
        lows[ph] = tb.imm(lo);
        highs[ph] = tb.imm(hi);
        maps[ph] = tb.imm(mp);
    }

    Val idx = tb.imm(0);
    for (unsigned i = 0; i < n; i += 4) {
        maybePrefetch(tb, variant, {s, d}, i, 4);
        const unsigned ph = i % bands;
        Val v4 = tb.load(s + i, 4, idx);
        Val ev = tb.vfexpand(v4);
        Val c1 = tb.vfcmple16(lows[ph], ev);  // low <= v
        Val c2 = tb.vfcmple16(ev, highs[ph]); // v <= high
        Val mask = tb.andOp(c1, c2);
        // Pass-through store, then overwrite the in-range lanes with the
        // map values via a masked partial store — no branches.
        tb.store(d + i, 4, v4, idx);
        tb.vstorePartial(d + i, maps[ph], mask, idx);

        idx = tb.addi(idx, 4);
        Val c = tb.cmpLt(idx, tb.imm(n));
        tb.branch(loop_pc, i + 4 < n, c);
    }
}

} // namespace

void
runThresh(TraceBuilder &tb, Variant variant, unsigned width,
          unsigned height, unsigned bands, const ThreshParams &params)
{
    const img::Image src = img::makeTestImage(width, height, bands, 61);
    const Addr s = uploadImage(tb, src, "thresh.src");
    const Addr d = tb.alloc(src.sizeBytes(), "thresh.dst");

    const unsigned n = width * height * bands;
    if (variant == Variant::Scalar)
        emitScalar(tb, params, s, d, n, bands);
    else
        emitVis(tb, variant, params, s, d, n, bands);

    const img::Image out = downloadImage(tb, d, width, height, bands);
    for (size_t i = 0; i < src.sizeBytes(); ++i) {
        const unsigned band = i % bands;
        const u8 v = src.data()[i];
        const u8 want = (v >= params.low[band] && v <= params.high[band])
                            ? params.map[band]
                            : v;
        if (out.data()[i] != want)
            panic("thresh mismatch at %zu: got %u want %u", i,
                  out.data()[i], want);
    }
}

} // namespace msim::kernels
