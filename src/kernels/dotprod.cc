#include "kernels/dotprod.hh"

#include "common/bits.hh"
#include "common/logging.hh"
#include "common/rng.hh"

namespace msim::kernels
{

using prog::TraceBuilder;
using prog::Val;

namespace
{

void
emitScalar(TraceBuilder &tb, Addr a, Addr b, Addr out, unsigned n)
{
    const prog::ScopedSite site(tb, "dot.loop");
    const u32 loop_pc = tb.makePc("dot.loop");
    Val acc = tb.imm(0);
    Val idx = tb.imm(0);
    for (unsigned i = 0; i < n; i += 4) {
        for (unsigned e = 0; e < 4; ++e) {
            Val x = tb.load(a + 2 * (i + e), 2, idx, /*sign=*/true);
            Val y = tb.load(b + 2 * (i + e), 2, idx, /*sign=*/true);
            Val p = tb.mul(x, y);
            acc = tb.add(acc, p);
        }
        idx = tb.addi(idx, 4);
        Val c = tb.cmpLt(idx, tb.imm(n));
        tb.branch(loop_pc, i + 4 < n, c);
    }
    tb.store(out, 8, acc);
}

void
emitVis(TraceBuilder &tb, Variant variant, Addr a, Addr b, Addr out,
        unsigned n)
{
    const prog::ScopedSite site(tb, "dot.vloop");
    const u32 loop_pc = tb.makePc("dot.vloop");
    // Two 2x32-bit accumulators (even/odd lane pairs).
    Val acc_lo = tb.imm(0);
    Val acc_hi = tb.imm(0);
    Val idx = tb.imm(0);
    const bool pmadd = tb.features().hasPmaddwd;
    for (unsigned i = 0; i < n; i += 4) {
        maybePrefetch(tb, variant, {a, b}, 2 * i, 8);
        Val va = tb.vload(a + 2 * Addr{i}, idx);
        Val vb = tb.vload(b + 2 * Addr{i}, idx);

        if (pmadd) {
            // MMX-class ISA: one packed multiply-add does all 4 lanes
            // (pair sums land in the two 32-bit accumulator lanes).
            acc_lo = tb.vfpadd32(acc_lo, tb.vpmaddwd(va, vb));
            idx = tb.addi(idx, 4);
            Val c = tb.cmpLt(idx, tb.imm(n));
            tb.branch(loop_pc, i + 4 < n, c);
            continue;
        }

        // Lanes 0..1: exact 32-bit products via the muld pair.
        Val su = tb.vfmuld8sux16(va, vb);
        Val ul = tb.vfmuld8ulx16(va, vb);
        acc_lo = tb.vfpadd32(acc_lo, tb.vfpadd32(su, ul));

        // Lanes 2..3: shift them down with faligndata, then repeat.
        tb.visAlignAddr(4, idx); // align offset 4 bytes
        Val va_hi = tb.vfaligndata(va, va);
        Val vb_hi = tb.vfaligndata(vb, vb);
        Val su2 = tb.vfmuld8sux16(va_hi, vb_hi);
        Val ul2 = tb.vfmuld8ulx16(va_hi, vb_hi);
        acc_hi = tb.vfpadd32(acc_hi, tb.vfpadd32(su2, ul2));

        idx = tb.addi(idx, 4);
        Val c = tb.cmpLt(idx, tb.imm(n));
        tb.branch(loop_pc, i + 4 < n, c);
    }
    // Final reduction: extract the four 32-bit partial sums.
    Val w0 = tb.andOp(acc_lo, tb.imm(0xffffffffu));
    Val w1 = tb.shr(acc_lo, 32);
    Val w2 = tb.andOp(acc_hi, tb.imm(0xffffffffu));
    Val w3 = tb.shr(acc_hi, 32);
    auto sext32 = [&](Val v) {
        return tb.sra(tb.shl(v, 32), 32);
    };
    Val sum = tb.add(tb.add(sext32(w0), sext32(w1)),
                     tb.add(sext32(w2), sext32(w3)));
    tb.store(out, 8, sum);
}

} // namespace

void
runDotprod(TraceBuilder &tb, Variant variant, unsigned n)
{
    const Addr a = tb.alloc(2 * static_cast<size_t>(n), "dot.a");
    const Addr b = tb.alloc(2 * static_cast<size_t>(n), "dot.b");
    const Addr out = tb.alloc(8, "dot.out");

    // Small random 16-bit values; per-lane 32-bit accumulators must not
    // overflow (n/2 products per lane, |x*y| <= 2^14).
    Rng rng(0xd07);
    s64 want = 0;
    for (unsigned i = 0; i < n; ++i) {
        const s16 x = static_cast<s16>(rng.nextBelow(256)) - 128;
        const s16 y = static_cast<s16>(rng.nextBelow(256)) - 128;
        tb.arena().write(a + 2 * Addr{i}, 2, static_cast<u16>(x));
        tb.arena().write(b + 2 * Addr{i}, 2, static_cast<u16>(y));
        want += s64{x} * y;
    }

    if (variant == Variant::Scalar)
        emitScalar(tb, a, b, out, n);
    else
        emitVis(tb, variant, a, b, out, n);

    const s64 got = static_cast<s64>(tb.arena().read(out, 8));
    if (got != want)
        panic("dotprod mismatch: got %lld want %lld",
              static_cast<long long>(got), static_cast<long long>(want));
}

} // namespace msim::kernels
