/**
 * @file
 * Two further VSDK kernels, image copy and inversion (255 - v). The
 * paper studied all 14 VSDK kernels but reported six; these two round
 * out the suite and serve as simple substrate tests.
 */

#ifndef MSIM_KERNELS_COPY_INVERT_HH_
#define MSIM_KERNELS_COPY_INVERT_HH_

#include "kernels/common.hh"

namespace msim::kernels
{

/** Emit (and verify) an image copy. */
void runCopy(prog::TraceBuilder &tb, Variant variant,
             unsigned width = kImgW, unsigned height = kImgH,
             unsigned bands = kImgBands);

/** Emit (and verify) image inversion: dst = 255 - src. */
void runInvert(prog::TraceBuilder &tb, Variant variant,
               unsigned width = kImgW, unsigned height = kImgH,
               unsigned bands = kImgBands);

} // namespace msim::kernels

#endif // MSIM_KERNELS_COPY_INVERT_HH_
