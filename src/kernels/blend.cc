#include "kernels/blend.hh"

#include <cstdlib>

#include "common/bits.hh"
#include "common/logging.hh"
#include "img/synth.hh"

namespace msim::kernels
{

using prog::TraceBuilder;
using prog::Val;

namespace
{

/** Exact scalar blend of one sample: (al*x + (255-al)*y + 127) / 255. */
u8
refBlend(u8 al, u8 x, u8 y)
{
    const u32 sum = u32{al} * x + (255u - al) * y;
    // x/255 == (x + 128 + ((x + 128) >> 8)) >> 8 for x in [0, 255*255]
    return static_cast<u8>((sum + 128 + ((sum + 128) >> 8)) >> 8);
}

void
emitScalar(TraceBuilder &tb, Addr a1, Addr a2, Addr aa, Addr d, unsigned n)
{
    const prog::ScopedSite site(tb, "blend.loop");
    const u32 loop_pc = tb.makePc("blend.loop");
    const Val k255 = tb.imm(255);
    const Val k128 = tb.imm(128);
    Val idx = tb.imm(0);
    for (unsigned i = 0; i < n; i += 2) {
        for (unsigned e = 0; e < 2; ++e) {
            Val al = tb.load(aa + i + e, 1, idx);
            Val x = tb.load(a1 + i + e, 1, idx);
            Val y = tb.load(a2 + i + e, 1, idx);
            Val inv = tb.sub(k255, al);
            Val p1 = tb.mul(al, x);
            Val p2 = tb.mul(inv, y);
            Val sum = tb.add(p1, p2);
            Val biased = tb.add(sum, k128);
            Val t = tb.shr(biased, 8);
            Val t2 = tb.add(biased, t);
            Val q = tb.shr(t2, 8);
            tb.store(d + i + e, 1, q, idx);
        }
        idx = tb.addi(idx, 2);
        Val c = tb.cmpLt(idx, tb.imm(n));
        tb.branch(loop_pc, i + 2 < n, c);
    }
}

/** VIS path: 4 samples/iteration via fmul8x16 (8.8 fixed point). */
void
emitVis(TraceBuilder &tb, Variant variant, Addr a1, Addr a2, Addr aa,
        Addr d, unsigned n)
{
    const prog::ScopedSite site(tb, "blend.vloop");
    const u32 loop_pc = tb.makePc("blend.vloop");

    // fexpand yields alpha<<4 per lane; fmul8x16 computes
    // (pixel*coeff+128)>>8, so with coeff = alpha<<4 the result is
    // approximately (pixel*alpha)>>4, a 12-bit value; fpack16 with
    // scale 3 extracts bits 11..4.
    tb.setGsrScale(3);
    // 255<<4 per 16-bit lane, for computing the inverse alpha.
    u64 k255x4 = 0;
    for (unsigned l = 0; l < 4; ++l)
        k255x4 = setHalfLane(k255x4, l, 255u << 4);
    const Val vk255 = tb.imm(k255x4);

    Val idx = tb.imm(0);
    for (unsigned i = 0; i < n; i += 4) {
        maybePrefetch(tb, variant, {a1, a2, aa, d}, i, 4);

        Val va = tb.vload(aa + i - (aa + i) % 8, idx); // aligned 8B window
        // Extract the 4 alpha bytes of interest with faligndata.
        tb.visAlignAddr(aa + i, idx);
        Val al4 = tb.vfaligndata(va, va);
        Val ea = tb.vfexpand(al4);
        Val inv = tb.vfpsub16(vk255, ea);

        Val x4 = tb.load(a1 + i, 4, idx);
        Val y4 = tb.load(a2 + i, 4, idx);
        Val p1 = tb.vfmul8x16(x4, ea);
        Val p2 = tb.vfmul8x16(y4, inv);
        Val sum = tb.vfpadd16(p1, p2);
        Val packed = tb.vfpack16(sum);
        tb.store(d + i, 4, packed, idx);

        idx = tb.addi(idx, 4);
        Val c = tb.cmpLt(idx, tb.imm(n));
        tb.branch(loop_pc, i + 4 < n, c);
    }
}

} // namespace

void
runBlend(TraceBuilder &tb, Variant variant, unsigned width, unsigned height,
         unsigned bands)
{
    const img::Image src1 = img::makeTestImage(width, height, bands, 31);
    const img::Image src2 = img::makeTestImage(width, height, bands, 32);
    const img::Image alpha = img::makeTestImage(width, height, bands, 33);
    const Addr a1 = uploadImage(tb, src1, "blend.src1");
    const Addr a2 = uploadImage(tb, src2, "blend.src2");
    const Addr aa = uploadImage(tb, alpha, "blend.alpha");
    const Addr d = tb.alloc(src1.sizeBytes(), "blend.dst");

    const unsigned n = width * height * bands;
    if (variant == Variant::Scalar)
        emitScalar(tb, a1, a2, aa, d, n);
    else
        emitVis(tb, variant, a1, a2, aa, d, n);

    const img::Image out = downloadImage(tb, d, width, height, bands);
    const unsigned tolerance = variant == Variant::Scalar ? 0 : 4;
    for (size_t i = 0; i < src1.sizeBytes(); ++i) {
        const u8 want =
            refBlend(alpha.data()[i], src1.data()[i], src2.data()[i]);
        const unsigned diff = static_cast<unsigned>(
            std::abs(int(out.data()[i]) - int(want)));
        if (diff > tolerance)
            panic("blend mismatch at %zu: got %u want %u (tol %u)", i,
                  out.data()[i], want, tolerance);
    }
}

} // namespace msim::kernels
