#include "kernels/erode.hh"

#include <algorithm>

#include "common/logging.hh"
#include "img/synth.hh"

namespace msim::kernels
{

using prog::TraceBuilder;
using prog::Val;

namespace
{

/** Binarize an image at @p threshold. */
img::Image
binarize(const img::Image &src, u8 threshold)
{
    img::Image out = src;
    for (size_t i = 0; i < out.sizeBytes(); ++i)
        out.data()[i] = out.data()[i] >= threshold ? 255 : 0;
    return out;
}

img::Image
refErode(const img::Image &mask)
{
    img::Image out(mask.width(), mask.height(), 1);
    for (unsigned y = 1; y + 1 < mask.height(); ++y)
        for (unsigned x = 1; x + 1 < mask.width(); ++x) {
            bool all = true;
            for (int dy = -1; dy <= 1; ++dy)
                for (int dx = -1; dx <= 1; ++dx)
                    all = all && mask.at(x + dx, y + dy, 0) == 255;
            out.at(x, y, 0) = all ? 255 : 0;
        }
    return out;
}

void
emitScalar(TraceBuilder &tb, Addr s, Addr d, unsigned w, unsigned h,
           const img::Image &mask)
{
    const u32 loop_pc = tb.makePc("er.loop");
    const u32 exit_pc = tb.makePc("er.exit");
    Val idx = tb.imm(0);
    for (unsigned y = 1; y + 1 < h; ++y) {
        for (unsigned x = 1; x + 1 < w; ++x) {
            // Short-circuit scan of the neighborhood: a data-dependent
            // early-exit branch per neighbor.
            bool all = true;
            for (int dy = -1; dy <= 1 && all; ++dy) {
                for (int dx = -1; dx <= 1 && all; ++dx) {
                    Val v = tb.load(
                        s + size_t{y + dy} * w + (x + dx), 1, idx);
                    Val c = tb.cmpEq(v, tb.imm(255));
                    const bool set =
                        mask.at(x + dx, y + dy, 0) == 255;
                    tb.branch(exit_pc, !set, c);
                    all = set;
                }
            }
            tb.store(d + size_t{y} * w + x, 1,
                     tb.imm(all ? 255 : 0), idx);
            idx = tb.addi(idx, 1);
            tb.branch(loop_pc, x + 2 < w, idx);
        }
    }
}

void
emitVis(TraceBuilder &tb, Variant variant, Addr s, Addr d, unsigned w,
        unsigned h)
{
    const u32 loop_pc = tb.makePc("er.vloop");
    for (unsigned y = 1; y + 1 < h; ++y) {
        for (unsigned x = 1; x + 1 < w; x += 8) {
            maybePrefetch(tb, variant, {s + size_t{y} * w}, x, 8);
            Val acc{};
            bool first = true;
            for (int dy = -1; dy <= 1; ++dy) {
                const Addr base = s + size_t{y + dy} * w + (x - 1);
                const Addr blk = base & ~Addr{7};
                const unsigned off0 = static_cast<unsigned>(base & 7);
                Val d0 = tb.vload(blk);
                Val d1 = tb.vload(blk + 8);
                Val d2 = tb.vload(blk + 16);
                for (int dx = 0; dx < 3; ++dx) {
                    tb.visAlignAddr(base + dx);
                    Val win = off0 + dx < 8 ? tb.vfaligndata(d0, d1)
                                            : tb.vfaligndata(d1, d2);
                    acc = first ? win : tb.vand(acc, win);
                    first = false;
                }
            }
            // Mask the tail lanes beyond the interior.
            const unsigned valid = std::min<u64>(8, (w - 1) - x);
            if (valid == 8) {
                tb.vstore(d + size_t{y} * w + x, acc);
            } else {
                Val edge = tb.vedge8(d + size_t{y} * w + x,
                                     d + size_t{y} * w + (w - 2));
                Val m = tb.andOp(tb.orOp(edge, tb.imm(0xff)),
                                 tb.imm((u64{1} << valid) - 1));
                tb.vstorePartial(d + size_t{y} * w + x, acc, m);
            }
            tb.branch(loop_pc, x + 8 < w - 1);
        }
    }
}

} // namespace

void
runErode(TraceBuilder &tb, Variant variant, unsigned width,
         unsigned height, u8 threshold)
{
    const img::Image mask =
        binarize(img::makeTestImage(width, height, 1, 53), threshold);
    const Addr s = uploadImage(tb, mask, "er.src");
    const Addr d = tb.alloc(mask.sizeBytes() + 64, "er.dst");

    if (variant == Variant::Scalar)
        emitScalar(tb, s, d, width, height, mask);
    else
        emitVis(tb, variant, s, d, width, height);

    const img::Image want = refErode(mask);
    const img::Image out = downloadImage(tb, d, width, height, 1);
    for (unsigned y = 1; y + 1 < height; ++y)
        for (unsigned x = 1; x + 1 < width; ++x)
            if (out.at(x, y, 0) != want.at(x, y, 0))
                panic("erode mismatch at (%u,%u): got %u want %u", x, y,
                      out.at(x, y, 0), want.at(x, y, 0));
}

} // namespace msim::kernels
