/**
 * @file
 * VSDK-style table lookup (colormap application): dst = table[src].
 *
 * This is one of the kernels the paper classifies as VIS-inapplicable:
 * a data-dependent gather has no packed equivalent, so the "VIS"
 * variant differs from scalar only in using 8-byte stores for the
 * gathered results (a common hand-optimization of the era).
 */

#ifndef MSIM_KERNELS_LOOKUP_HH_
#define MSIM_KERNELS_LOOKUP_HH_

#include "kernels/common.hh"

namespace msim::kernels
{

/** Emit (and functionally verify) the lookup benchmark. */
void runLookup(prog::TraceBuilder &tb, Variant variant,
               unsigned width = kImgW, unsigned height = kImgH,
               unsigned bands = kImgBands);

} // namespace msim::kernels

#endif // MSIM_KERNELS_LOOKUP_HH_
