#include "kernels/conv.hh"

#include "common/logging.hh"
#include "common/saturate.hh"
#include "img/synth.hh"

namespace msim::kernels
{

using prog::TraceBuilder;
using prog::Val;

namespace
{

/** Native reference: saturating 3x3 convolution, borders copied. */
img::Image
refConv(const img::Image &src, const ConvTaps &taps)
{
    img::Image dst = src;
    for (unsigned y = 1; y + 1 < src.height(); ++y) {
        for (unsigned x = 1; x + 1 < src.width(); ++x) {
            s64 sum = 0;
            for (int dy = -1; dy <= 1; ++dy)
                for (int dx = -1; dx <= 1; ++dx)
                    sum += taps[(dy + 1) * 3 + (dx + 1)] *
                           src.at(x + dx, y + dy, 0);
            dst.at(x, y, 0) = satU8(sum);
        }
    }
    return dst;
}

/** Copy the one-pixel border (both variants do this scalar). */
void
emitBorderCopy(TraceBuilder &tb, Addr s, Addr d, unsigned w, unsigned h)
{
    const prog::ScopedSite site(tb, "conv.border");
    const u32 pc = tb.makePc("conv.border");
    unsigned count = 0;
    auto copy_px = [&](unsigned x, unsigned y) {
        const Addr off = static_cast<Addr>(y) * w + x;
        Val v = tb.load(s + off, 1);
        tb.store(d + off, 1, v);
        ++count;
        tb.branch(pc, (count & 3) != 0);
    };
    for (unsigned x = 0; x < w; ++x) {
        copy_px(x, 0);
        copy_px(x, h - 1);
    }
    for (unsigned y = 1; y + 1 < h; ++y) {
        copy_px(0, y);
        copy_px(w - 1, y);
    }
}

void
emitScalar(TraceBuilder &tb, const ConvTaps &taps, Addr s, Addr d,
           unsigned w, unsigned h)
{
    const prog::ScopedSite site(tb, "conv.loop");
    const u32 loop_pc = tb.makePc("conv.loop");
    const u32 low_pc = tb.makePc("conv.satlow");
    const u32 high_pc = tb.makePc("conv.sathigh");
    const Val k0 = tb.imm(0);
    const Val k255 = tb.imm(255);

    Val idx = tb.imm(0);
    for (unsigned y = 1; y + 1 < h; ++y) {
        for (unsigned x = 1; x + 1 < w; ++x) {
            Val sum = tb.imm(0);
            bool first = true;
            for (int dy = -1; dy <= 1; ++dy) {
                for (int dx = -1; dx <= 1; ++dx) {
                    const Addr off =
                        static_cast<Addr>(y + dy) * w + (x + dx);
                    Val px = tb.load(s + off, 1, idx);
                    Val prod =
                        tb.mul(px, tb.imm(static_cast<u64>(
                                   taps[(dy + 1) * 3 + (dx + 1)])));
                    sum = first ? prod : tb.add(sum, prod);
                    first = false;
                }
            }
            // Explicit saturation: two data-dependent branches.
            Val res = sum;
            Val c_low = tb.cmpLt(sum, k0);
            const bool is_low = sum.s() < 0;
            tb.branch(low_pc, is_low, c_low);
            if (is_low) {
                res = k0;
            } else {
                Val c_high = tb.cmpLt(k255, sum);
                const bool is_high = sum.s() > 255;
                tb.branch(high_pc, is_high, c_high);
                if (is_high)
                    res = k255;
            }
            tb.store(d + static_cast<Addr>(y) * w + x, 1, res, idx);

            idx = tb.addi(idx, 1);
            Val c = tb.cmpLt(idx, tb.imm(w - 1));
            tb.branch(loop_pc, x + 1 < w - 1, c);
        }
    }
}

void
emitVis(TraceBuilder &tb, Variant variant, const ConvTaps &taps, Addr s,
        Addr d, unsigned w, unsigned h)
{
    const prog::ScopedSite site(tb, "conv.vloop");
    const u32 loop_pc = tb.makePc("conv.vloop");
    tb.setGsrScale(7); // fpack16 identity scaling with saturation

    // Tap coefficients as fmul8x16au operands: tap*256 in the upper
    // 16 bits of a 32-bit register value.
    Val coeff[9];
    for (unsigned t = 0; t < 9; ++t) {
        const u16 fixed = static_cast<u16>(static_cast<s16>(taps[t] * 256));
        coeff[t] = tb.imm(static_cast<u64>(fixed) << 16);
    }

    Val idx = tb.imm(0);
    for (unsigned y = 1; y + 1 < h; ++y) {
        const unsigned interior = w - 2;
        for (unsigned x = 1; x + 1 < w; x += 4) {
            maybePrefetch(tb, variant,
                          {s + static_cast<Addr>(y) * w,
                           d + static_cast<Addr>(y) * w},
                          x, 4);
            Val acc{};
            bool first = true;
            for (int dy = -1; dy <= 1; ++dy) {
                const Addr base =
                    s + static_cast<Addr>(y + dy) * w + (x - 1);
                const Addr blk = base & ~Addr{7};
                const unsigned off0 = static_cast<unsigned>(base & 7);
                Val d0 = tb.vload(blk, idx);
                Val d1 = tb.vload(blk + 8, idx);
                Val d2{};
                for (int dx = 0; dx < 3; ++dx) {
                    tb.visAlignAddr(base + dx, idx);
                    // Pick the register pair holding the tap window; a
                    // third load is needed when the window slides past
                    // the second 8-byte block.
                    Val win;
                    if (off0 + dx < 8) {
                        win = tb.vfaligndata(d0, d1);
                    } else {
                        if (d2.id == kNoVal)
                            d2 = tb.vload(blk + 16, idx);
                        win = tb.vfaligndata(d1, d2);
                    }
                    Val prod =
                        tb.vfmul8x16au(win, coeff[(dy + 1) * 3 + dx]);
                    acc = first ? prod : tb.vfpadd16(acc, prod);
                    first = false;
                }
            }
            Val packed = tb.vfpack16(acc); // saturation is implicit

            const unsigned remaining = interior - (x - 1);
            if (remaining >= 4) {
                tb.store(d + static_cast<Addr>(y) * w + x, 4, packed, idx);
            } else {
                // Row tail: edge-masked partial store.
                const Addr dst = d + static_cast<Addr>(y) * w + x;
                Val edge = tb.vedge8(dst, dst + remaining - 1);
                // Fold the edge mask with the tail width (the edge op
                // models the VSDK boundary handling; the tail bound is
                // what determines the lanes actually written here).
                Val mask = tb.andOp(tb.orOp(edge, tb.imm(0xff)),
                                    tb.imm((u64{1} << remaining) - 1));
                tb.vstorePartial(dst, packed, mask, idx);
            }

            idx = tb.addi(idx, 4);
            Val c = tb.cmpLt(idx, tb.imm(interior));
            tb.branch(loop_pc, x + 4 < w - 1, c);
        }
    }
}

} // namespace

void
runConv(TraceBuilder &tb, Variant variant, unsigned width, unsigned height,
        const ConvTaps &taps)
{
    const img::Image src = img::makeTestImage(width, height, 1, 41);
    const Addr s = uploadImage(tb, src, "conv.src");
    const Addr d = tb.alloc(src.sizeBytes(), "conv.dst");

    emitBorderCopy(tb, s, d, width, height);
    if (variant == Variant::Scalar)
        emitScalar(tb, taps, s, d, width, height);
    else
        emitVis(tb, variant, taps, s, d, width, height);

    const img::Image want = refConv(src, taps);
    const img::Image out = downloadImage(tb, d, width, height, 1);
    unsigned bad = 0;
    for (size_t i = 0; i < want.sizeBytes(); ++i) {
        if (out.data()[i] != want.data()[i]) {
            fprintf(stderr, "conv mismatch at %zu (x=%zu y=%zu): got %u want %u\n",
                    i, i % width, i / width, out.data()[i], want.data()[i]);
            if (++bad > 20) break;
        }
    }
    if (bad) panic("conv mismatches: %u", bad);
}

} // namespace msim::kernels
