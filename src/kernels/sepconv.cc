#include "kernels/sepconv.hh"

#include <algorithm>
#include <vector>

#include "common/bits.hh"
#include "common/logging.hh"
#include "common/saturate.hh"
#include "img/synth.hh"

namespace msim::kernels
{

using prog::TraceBuilder;
using prog::Val;

namespace
{

/** Pack the same 16-bit value into all four lanes. */
u64
lanes16v(s16 v)
{
    u64 r = 0;
    for (unsigned l = 0; l < 4; ++l)
        r = setHalfLane(r, l, static_cast<u16>(v));
    return r;
}

/** Native reference. */
img::Image
refSepconv(const img::Image &src, const SepTaps &taps)
{
    const unsigned w = src.width(), h = src.height();
    img::Image dst = src;
    std::vector<s32> tmp(size_t{w} * h, 0);
    for (unsigned y = 0; y < h; ++y)
        for (unsigned x = 1; x + 1 < w; ++x)
            tmp[y * w + x] = taps.h[0] * src.at(x - 1, y, 0) +
                             taps.h[1] * src.at(x, y, 0) +
                             taps.h[2] * src.at(x + 1, y, 0);
    for (unsigned y = 1; y + 1 < h; ++y)
        for (unsigned x = 1; x + 1 < w; ++x) {
            const s32 sum = taps.v[0] * tmp[(y - 1) * w + x] +
                            taps.v[1] * tmp[y * w + x] +
                            taps.v[2] * tmp[(y + 1) * w + x];
            dst.at(x, y, 0) = satU8(sum >> taps.shift);
        }
    return dst;
}

void
emitBorderCopy(TraceBuilder &tb, Addr s, Addr d, unsigned w, unsigned h)
{
    const u32 pc = tb.makePc("sep.border");
    unsigned count = 0;
    auto cp = [&](unsigned x, unsigned y) {
        Val v = tb.load(s + size_t{y} * w + x, 1);
        tb.store(d + size_t{y} * w + x, 1, v);
        tb.branch(pc, (++count & 3) != 0);
    };
    for (unsigned x = 0; x < w; ++x) {
        cp(x, 0);
        cp(x, h - 1);
    }
    for (unsigned y = 1; y + 1 < h; ++y) {
        cp(0, y);
        cp(w - 1, y);
    }
}

void
emitScalar(TraceBuilder &tb, const SepTaps &taps, Addr s, Addr d,
           Addr tmp, unsigned w, unsigned h)
{
    const u32 hpc = tb.makePc("sep.h");
    const u32 vpc = tb.makePc("sep.v");
    const u32 lo_pc = tb.makePc("sep.lo");
    const u32 hi_pc = tb.makePc("sep.hi");

    // Horizontal pass into the 16-bit intermediate buffer.
    Val idx = tb.imm(0);
    for (unsigned y = 0; y < h; ++y) {
        for (unsigned x = 1; x + 1 < w; ++x) {
            Val acc{};
            for (int k = -1; k <= 1; ++k) {
                Val px = tb.load(s + size_t{y} * w + x + k, 1, idx);
                Val prod = tb.mul(
                    px, tb.imm(static_cast<u64>(taps.h[k + 1])));
                acc = k == -1 ? prod : tb.add(acc, prod);
            }
            tb.store(tmp + 2 * (size_t{y} * w + x), 2, acc, idx);
            idx = tb.addi(idx, 1);
            tb.branch(hpc, x + 2 < w, idx);
        }
    }

    // Vertical pass with normalization and saturation branches.
    for (unsigned y = 1; y + 1 < h; ++y) {
        for (unsigned x = 1; x + 1 < w; ++x) {
            Val acc{};
            for (int k = -1; k <= 1; ++k) {
                Val t = tb.load(tmp + 2 * (size_t{y + k} * w + x), 2,
                                idx, true);
                Val prod = tb.mul(
                    t, tb.imm(static_cast<u64>(taps.v[k + 1])));
                acc = k == -1 ? prod : tb.add(acc, prod);
            }
            Val v = tb.sra(acc, taps.shift);
            Val res = v;
            const s64 sv = v.s();
            Val c_lo = tb.cmpLt(v, tb.imm(0));
            tb.branch(lo_pc, sv < 0, c_lo);
            if (sv < 0) {
                res = tb.imm(0);
            } else {
                Val c_hi = tb.cmpLt(tb.imm(255), v);
                tb.branch(hi_pc, sv > 255, c_hi);
                if (sv > 255)
                    res = tb.imm(255);
            }
            tb.store(d + size_t{y} * w + x, 1, res, idx);
            tb.branch(vpc, x + 2 < w);
        }
    }
}

void
emitVis(TraceBuilder &tb, Variant variant, const SepTaps &taps, Addr s,
        Addr d, Addr tmp, unsigned w, unsigned h)
{
    const u32 hpc = tb.makePc("sep.vh");
    const u32 vpc = tb.makePc("sep.vv");

    // Horizontal pass: 4 intermediate values per iteration via
    // fmul8x16au over faligndata windows (conv's pattern).
    Val hcoeff[3];
    for (int k = 0; k < 3; ++k)
        hcoeff[k] = tb.imm(
            u64(u16(s16(taps.h[k] * 256))) << 16);
    for (unsigned y = 0; y < h; ++y) {
        for (unsigned x = 1; x + 1 < w; x += 4) {
            maybePrefetch(tb, variant, {s + size_t{y} * w}, x, 4);
            const Addr base = s + size_t{y} * w + (x - 1);
            const Addr blk = base & ~Addr{7};
            const unsigned off0 = static_cast<unsigned>(base & 7);
            Val d0 = tb.vload(blk);
            Val d1 = tb.vload(blk + 8);
            Val d2{};
            Val acc{};
            for (int k = 0; k < 3; ++k) {
                tb.visAlignAddr(base + k);
                Val win;
                if (off0 + k < 8) {
                    win = tb.vfaligndata(d0, d1);
                } else {
                    if (d2.id == kNoVal)
                        d2 = tb.vload(blk + 16);
                    win = tb.vfaligndata(d1, d2);
                }
                Val prod = tb.vfmul8x16au(win, hcoeff[k]);
                acc = k == 0 ? prod : tb.vfpadd16(acc, prod);
            }
            // Store 4 s16 lanes into the intermediate buffer (tail
            // lanes beyond the interior are never read back).
            tb.vstore(tmp + 2 * (size_t{y} * w + x), acc);
            tb.branch(hpc, x + 4 < w - 1);
        }
    }

    // Vertical pass: 16-bit lanes via the 3-op multiply emulation, with
    // fpack16 providing saturation. Values are in units of 1 (h pass
    // used 8.8 coefficients), so pack with scale 7 after >>shift via
    // multiply by 256>>shift.
    tb.setGsrScale(7);
    const Val norm = tb.imm(lanes16v(static_cast<s16>(256 >> taps.shift)));
    for (unsigned y = 1; y + 1 < h; ++y) {
        for (unsigned x = 1; x + 1 < w; x += 4) {
            Val acc{};
            for (int k = -1; k <= 1; ++k) {
                Val t = tb.vload(tmp + 2 * (size_t{y + k} * w + x));
                // Lane times small integer tap: strength-reduced to
                // packed adds for 1/2, the 3-op multiply otherwise.
                Val prod;
                const int c = taps.v[k + 1];
                if (c == 1) {
                    prod = t;
                } else if (c == 2) {
                    prod = tb.vfpadd16(t, t);
                } else {
                    const Val cv =
                        tb.imm(lanes16v(static_cast<s16>(c << 8)));
                    prod = tb.vfpadd16(tb.vfmul8sux16(t, cv),
                                       tb.vfmul8ulx16(t, cv));
                }
                acc = k == -1 ? prod : tb.vfpadd16(acc, prod);
            }
            // (acc * (256>>shift)) >> 8 == acc >> shift, then saturate.
            Val su = tb.vfmul8sux16(acc, norm);
            Val ul = tb.vfmul8ulx16(acc, norm);
            Val scaled = tb.vfpadd16(su, ul);
            Val packed = tb.vfpack16(scaled);
            // Mask the tail so the border column / next row stay clean.
            const unsigned valid =
                std::min<unsigned>(4, (w - 1) - x);
            if (valid == 4) {
                tb.store(d + size_t{y} * w + x, 4, packed);
            } else {
                Val edge = tb.vedge8(d + size_t{y} * w + x,
                                     d + size_t{y} * w + (w - 2));
                Val mask = tb.andOp(tb.orOp(edge, tb.imm(0xff)),
                                    tb.imm((u64{1} << valid) - 1));
                tb.vstorePartial(d + size_t{y} * w + x, packed, mask);
            }
            tb.branch(vpc, x + 4 < w - 1);
        }
    }
}

} // namespace

void
runSepconv(TraceBuilder &tb, Variant variant, unsigned width,
           unsigned height, const SepTaps &taps)
{
    const img::Image src = img::makeTestImage(width, height, 1, 45);
    const Addr s = uploadImage(tb, src, "sep.src");
    const Addr d = tb.alloc(src.sizeBytes(), "sep.dst");
    const Addr tmp = tb.alloc(2 * src.sizeBytes() + 64, "sep.tmp");

    if (variant == Variant::Scalar)
        emitScalar(tb, taps, s, d, tmp, width, height);
    else
        emitVis(tb, variant, taps, s, d, tmp, width, height);
    emitBorderCopy(tb, s, d, width, height);

    const img::Image want = refSepconv(src, taps);
    const img::Image out = downloadImage(tb, d, width, height, 1);
    for (size_t i = 0; i < want.sizeBytes(); ++i) {
        const unsigned diff = static_cast<unsigned>(
            out.data()[i] > want.data()[i]
                ? out.data()[i] - want.data()[i]
                : want.data()[i] - out.data()[i]);
        // The VIS vertical pass truncates differently by at most 1.
        const unsigned tol = variant == Variant::Scalar ? 0 : 1;
        if (diff > tol)
            panic("sepconv mismatch at %zu: got %u want %u", i,
                  out.data()[i], want.data()[i]);
    }
}

} // namespace msim::kernels
