#include "kernels/common.hh"

namespace msim::kernels
{

Addr
uploadImage(prog::TraceBuilder &tb, const img::Image &im, const char *name)
{
    const Addr base = tb.alloc(im.sizeBytes(), name);
    tb.arena().writeBytes(base, im.data(), im.sizeBytes());
    return base;
}

img::Image
downloadImage(const prog::TraceBuilder &tb, Addr base, unsigned width,
              unsigned height, unsigned bands)
{
    img::Image im(width, height, bands);
    tb.arena().readBytes(base, im.data(), im.sizeBytes());
    return im;
}

void
maybePrefetch(prog::TraceBuilder &tb, Variant variant,
              std::initializer_list<Addr> streams, unsigned offset,
              unsigned step)
{
    if (variant != Variant::VisPrefetch)
        return;
    // Issue one prefetch per stream whenever this iteration's window
    // crosses into a new 64-byte line.
    if ((offset % 64) < step) {
        for (Addr s : streams)
            tb.prefetch(s + offset + kPrefetchBytes);
    }
}

} // namespace msim::kernels
