/**
 * @file
 * VSDK-style 16x16 dot product over a large linear array (paper:
 * 1048576 elements, randomly initialized).
 */

#ifndef MSIM_KERNELS_DOTPROD_HH_
#define MSIM_KERNELS_DOTPROD_HH_

#include "kernels/common.hh"

namespace msim::kernels
{

/**
 * Emit (and functionally verify) the dot-product benchmark.
 *
 * Scalar: 16-bit loads, integer multiply, 64-bit accumulate. VIS: the
 * full-precision 16x16 multiply must be emulated with the
 * fmuld8sux16/fmuld8ulx16 pair plus fpadd32 (the overhead the paper
 * cites as the reason dotprod benefits least from VIS).
 */
void runDotprod(prog::TraceBuilder &tb, Variant variant,
                unsigned n = kDotN);

} // namespace msim::kernels

#endif // MSIM_KERNELS_DOTPROD_HH_
