/**
 * @file
 * VSDK-style linear image scaling: dst = sat(src * scale + offset) with
 * an 8.8 fixed-point scale factor.
 */

#ifndef MSIM_KERNELS_SCALING_HH_
#define MSIM_KERNELS_SCALING_HH_

#include "kernels/common.hh"

namespace msim::kernels
{

/**
 * Emit (and functionally verify) the scaling benchmark.
 *
 * @param scale_fx  Scale factor in 8.8 fixed point (default 1.25).
 * @param offset    Additive offset (default -16, producing saturation).
 */
void runScaling(prog::TraceBuilder &tb, Variant variant,
                unsigned width = kImgW, unsigned height = kImgH,
                unsigned bands = kImgBands, int scale_fx = 320,
                int offset = -16);

} // namespace msim::kernels

#endif // MSIM_KERNELS_SCALING_HH_
