#include "common/stats.hh"

namespace msim
{

double
Distribution::mean() const
{
    return samples_ ? static_cast<double>(total) / samples_ : 0.0;
}

double
Distribution::fracAtLeast(u64 v) const
{
    if (!samples_)
        return 0.0;
    u64 n = 0;
    for (u64 i = v; i < buckets.size(); ++i)
        n += buckets[i];
    return static_cast<double>(n) / samples_;
}

double
OccupancyTracker::fracAtLeast(unsigned n) const
{
    if (!elapsed)
        return 0.0;
    u64 t = 0;
    const auto &w = histogram.weights();
    for (unsigned i = n; i < w.size(); ++i)
        t += w[i];
    return static_cast<double>(t) / elapsed;
}

} // namespace msim
