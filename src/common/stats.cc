#include "common/stats.hh"

#include <cmath>

namespace msim
{

double
MeanVar::stddev() const
{
    return std::sqrt(variance());
}

double
MeanVar::ci95() const
{
    return n_ > 1 ? 1.96 * stddev() / std::sqrt(static_cast<double>(n_))
                  : 0.0;
}

double
Distribution::mean() const
{
    return samples_ ? static_cast<double>(total) / samples_ : 0.0;
}

double
Distribution::fracAtLeast(u64 v) const
{
    if (!samples_)
        return 0.0;
    // sample() saturates values beyond the last bucket into it, so the
    // top bucket means "at least maxBucket". Clamp the query the same
    // way: without it, fracAtLeast(maxBucket + 1) returned 0 even when
    // saturated samples were present.
    const u64 start = v < buckets.size() ? v : buckets.size() - 1;
    u64 n = 0;
    for (u64 i = start; i < buckets.size(); ++i)
        n += buckets[i];
    return static_cast<double>(n) / samples_;
}

double
OccupancyTracker::fracAtLeast(unsigned n) const
{
    if (!elapsed)
        return 0.0;
    const auto &w = histogram.weights();
    // Same top-bucket saturation/clamp convention as
    // Distribution::fracAtLeast above.
    const unsigned start =
        n < w.size() ? n : static_cast<unsigned>(w.size() - 1);
    u64 t = 0;
    for (unsigned i = start; i < w.size(); ++i)
        t += w[i];
    return static_cast<double>(t) / elapsed;
}

} // namespace msim
