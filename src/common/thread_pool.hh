/**
 * @file
 * Persistent worker pool for the experiment driver.
 *
 * The previous harness spawned a fresh batch of std::threads per
 * runJobs call and let any worker exception reach std::terminate.  The
 * pool here is created once per process (lazily, hardware_concurrency
 * workers), hands out work through a shared atomic index, and captures
 * the first exception a task throws so parallelFor can rethrow it on
 * the calling thread.  The caller participates in draining the index,
 * so parallelFor degrades gracefully to plain sequential execution on a
 * single-CPU host or when the pool is busy.
 */

#ifndef MSIM_COMMON_THREAD_POOL_HH_
#define MSIM_COMMON_THREAD_POOL_HH_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace msim
{

/** See file comment. Use the process-wide instance from globalPool(). */
class ThreadPool
{
  public:
    explicit ThreadPool(unsigned workers);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    unsigned workerCount() const { return static_cast<unsigned>(threads_.size()); }

    /**
     * Run fn(0) .. fn(count-1), distributing indices over the pool's
     * workers plus the calling thread.  Blocks until every index has
     * finished.  If any invocation throws, the remaining indices are
     * abandoned (tasks already running complete) and the first captured
     * exception is rethrown here, on the caller.
     *
     * Re-entrant calls (fn itself calling parallelFor) run inline on
     * the calling thread rather than deadlocking the pool.
     *
     * @param maxThreads  Concurrency ceiling including the caller
     *                    (0 = no limit beyond the pool size).
     */
    void parallelFor(size_t count, const std::function<void(size_t)> &fn,
                     unsigned maxThreads = 0);

  private:
    struct Batch; // one parallelFor invocation's shared state

    void workerLoop();

    std::vector<std::thread> threads_;
    std::mutex m_;
    std::condition_variable cv_;
    Batch *batch_ = nullptr; // the active invocation, if any
    bool shutdown_ = false;
};

/** The lazily-created process-wide pool (hardware_concurrency workers). */
ThreadPool &globalPool();

} // namespace msim

#endif // MSIM_COMMON_THREAD_POOL_HH_
