/**
 * @file
 * Strict environment-toggle parsing.
 *
 * Every MSIM_* boolean toggle goes through envBool so a typo fails
 * loudly instead of silently taking the default path: a user who set
 * MSIM_EVENT_SKIP=of believes skipping is off, and any measurement
 * made under that belief is garbage.  Unset or empty means "use the
 * default"; anything else must be one of the accepted spellings.
 */

#ifndef MSIM_COMMON_ENV_HH_
#define MSIM_COMMON_ENV_HH_

#include <cctype>
#include <cstdlib>
#include <string>

#include "common/logging.hh"

namespace msim
{

/**
 * Parse boolean env toggle @p name: unset/empty returns @p def;
 * 0|off|false and 1|on|true (case-insensitive) parse; anything else
 * is fatal with the accepted spellings.
 */
inline bool
envBool(const char *name, bool def)
{
    const char *v = std::getenv(name);
    if (!v || !*v)
        return def;
    std::string s(v);
    for (char &c : s)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    if (s == "0" || s == "off" || s == "false")
        return false;
    if (s == "1" || s == "on" || s == "true")
        return true;
    fatal("%s=\"%s\" is not recognized; accepted values: "
          "0|off|false, 1|on|true (or unset for the default)",
          name, v);
}

} // namespace msim

#endif // MSIM_COMMON_ENV_HH_
