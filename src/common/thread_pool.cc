#include "common/thread_pool.hh"

#include <atomic>
#include <exception>

#include "obs/span.hh"

namespace msim
{

struct ThreadPool::Batch
{
    size_t count = 0;
    unsigned poolSlots = 0; // pool workers allowed (caller not counted)
    const std::function<void(size_t)> *fn = nullptr;
    std::atomic<size_t> next{0};
    std::atomic<bool> failed{false};
    std::exception_ptr error; // first failure, guarded by errorLock
    std::mutex errorLock;
    unsigned active = 0; // workers currently inside run(), under pool m_

    /** Drain indices until exhausted or a failure is flagged. */
    void
    run()
    {
        for (;;) {
            const size_t i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= count || failed.load(std::memory_order_relaxed))
                return;
            try {
                (*fn)(i);
            } catch (...) {
                std::lock_guard lock(errorLock);
                if (!failed.exchange(true))
                    error = std::current_exception();
                return;
            }
        }
    }
};

ThreadPool::ThreadPool(unsigned workers)
{
    threads_.reserve(workers);
    for (unsigned i = 0; i < workers; ++i)
        threads_.emplace_back([this, i] {
#if MSIM_OBS_ENABLED
            obs::setObsThreadLabel("pool-worker-" + std::to_string(i));
#endif
            workerLoop();
        });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard lock(m_);
        shutdown_ = true;
    }
    cv_.notify_all();
    for (auto &t : threads_)
        t.join();
}

void
ThreadPool::workerLoop()
{
    std::unique_lock lock(m_);
    for (;;) {
        cv_.wait(lock, [this] {
            return shutdown_ ||
                   (batch_ != nullptr && batch_->active < batch_->poolSlots);
        });
        if (shutdown_)
            return;
        Batch *b = batch_;
        ++b->active;
        lock.unlock();
        {
            // One span per drained batch: worker-utilization tracks in
            // the trace come from these (busy vs. idle gaps per tid).
            MSIM_OBS_SPAN(span, "pool.work");
            b->run();
        }
        lock.lock();
        if (--b->active == 0 && batch_ == b)
            batch_ = nullptr; // fully drained; let the next call start
        cv_.notify_all();
    }
}

void
ThreadPool::parallelFor(size_t count, const std::function<void(size_t)> &fn,
                        unsigned maxThreads)
{
    if (count == 0)
        return;

    Batch b;
    b.count = count;
    b.fn = &fn;
    b.poolSlots = maxThreads == 0 ? workerCount() : maxThreads - 1;
    // No point waking more workers than there are items (the caller
    // takes one item stream too).
    if (count - 1 < b.poolSlots)
        b.poolSlots = static_cast<unsigned>(count - 1);

    {
        std::unique_lock lock(m_);
        // One batch at a time; a nested call (fn itself using the pool)
        // would self-deadlock here, so run it inline instead.
        if (batch_ != nullptr) {
            lock.unlock();
            b.run();
            if (b.error)
                std::rethrow_exception(b.error);
            return;
        }
        batch_ = &b;
    }
    cv_.notify_all();

    {
        MSIM_OBS_SPAN(span, "pool.work", "caller");
        b.run(); // the caller is a worker too
    }

    {
        std::unique_lock lock(m_);
        if (batch_ == &b)
            batch_ = nullptr; // stop idle workers from joining late
        cv_.wait(lock, [&b] { return b.active == 0; });
    }
    if (b.error)
        std::rethrow_exception(b.error);
}

ThreadPool &
globalPool()
{
    static ThreadPool pool([] {
        const unsigned hw = std::thread::hardware_concurrency();
        return hw > 1 ? hw - 1 : 1u; // the caller participates as well
    }());
    return pool;
}

} // namespace msim
