/**
 * @file
 * Minimal ASCII table formatter used by the benchmark harnesses to print
 * the rows/series of the paper's figures and tables.
 */

#ifndef MSIM_COMMON_TABLE_HH_
#define MSIM_COMMON_TABLE_HH_

#include <string>
#include <vector>

namespace msim
{

/** Accumulates rows of string cells and renders an aligned ASCII table. */
class Table
{
  public:
    /** Create a table with the given column headers. */
    explicit Table(std::vector<std::string> headers);

    /** Append a row; must have the same arity as the header row. */
    void addRow(std::vector<std::string> cells);

    /** Convenience: format a double with @p precision decimals. */
    static std::string num(double v, int precision = 1);

    /** Render the table with aligned columns. */
    std::string render() const;

  private:
    std::vector<std::vector<std::string>> rows;
};

} // namespace msim

#endif // MSIM_COMMON_TABLE_HH_
