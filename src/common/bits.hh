/**
 * @file
 * Bit-manipulation helpers shared by the VIS semantics and the caches.
 *
 * Packed 64-bit values use the convention that lane 0 occupies the least
 * significant bits (lane 0 of a packed-byte value is bits [7:0]). This
 * differs from SPARC's big-endian register pictures but is internally
 * consistent everywhere in msim, including the trace builder's memory
 * accessors.
 */

#ifndef MSIM_COMMON_BITS_HH_
#define MSIM_COMMON_BITS_HH_

#include <bit>

#include "common/types.hh"

namespace msim
{

/** Extract byte lane @p i (0..7, lane 0 least significant). */
constexpr u8
byteLane(u64 v, unsigned i)
{
    return static_cast<u8>(v >> (8 * i));
}

/** Replace byte lane @p i of @p v with @p b. */
constexpr u64
setByteLane(u64 v, unsigned i, u8 b)
{
    const u64 mask = u64{0xff} << (8 * i);
    return (v & ~mask) | (u64{b} << (8 * i));
}

/** Extract 16-bit lane @p i (0..3, lane 0 least significant). */
constexpr u16
halfLane(u64 v, unsigned i)
{
    return static_cast<u16>(v >> (16 * i));
}

/** Replace 16-bit lane @p i of @p v with @p h. */
constexpr u64
setHalfLane(u64 v, unsigned i, u16 h)
{
    const u64 mask = u64{0xffff} << (16 * i);
    return (v & ~mask) | (u64{h} << (16 * i));
}

/** Extract 32-bit lane @p i (0..1, lane 0 least significant). */
constexpr u32
wordLane(u64 v, unsigned i)
{
    return static_cast<u32>(v >> (32 * i));
}

/** Replace 32-bit lane @p i of @p v with @p w. */
constexpr u64
setWordLane(u64 v, unsigned i, u32 w)
{
    const u64 mask = u64{0xffffffff} << (32 * i);
    return (v & ~mask) | (u64{w} << (32 * i));
}

/** Sign-extend the low @p bits of @p v. */
constexpr s64
signExtend(u64 v, unsigned bits)
{
    const unsigned shift = 64 - bits;
    return static_cast<s64>(v << shift) >> shift;
}

/** True iff @p v is a power of two (and nonzero). */
constexpr bool
isPow2(u64 v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** log2 of a power of two. */
constexpr unsigned
log2i(u64 v)
{
    return static_cast<unsigned>(std::countr_zero(v));
}

/** Round @p v up to a multiple of power-of-two @p align. */
constexpr u64
roundUp(u64 v, u64 align)
{
    return (v + align - 1) & ~(align - 1);
}

} // namespace msim

#endif // MSIM_COMMON_BITS_HH_
