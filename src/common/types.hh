/**
 * @file
 * Fundamental scalar type aliases used throughout msim.
 */

#ifndef MSIM_COMMON_TYPES_HH_
#define MSIM_COMMON_TYPES_HH_

#include <cstddef>
#include <cstdint>

namespace msim
{

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using s8 = std::int8_t;
using s16 = std::int16_t;
using s32 = std::int32_t;
using s64 = std::int64_t;

/** Simulated time. The core runs at 1 GHz, so 1 cycle == 1 ns (Table 2). */
using Cycle = std::uint64_t;

/** Virtual byte address inside a benchmark's arena. */
using Addr = std::uint64_t;

/** SSA value identifier produced by the trace builder. 0 means "none". */
using ValId = std::uint32_t;

constexpr ValId kNoVal = 0;

} // namespace msim

#endif // MSIM_COMMON_TYPES_HH_
