/**
 * @file
 * Lightweight statistics primitives: scalar counters, distributions, and
 * a time-weighted occupancy tracker (used for MSHR-occupancy results).
 */

#ifndef MSIM_COMMON_STATS_HH_
#define MSIM_COMMON_STATS_HH_

#include <string>
#include <vector>

#include "common/types.hh"

namespace msim
{

/** A simple saturating-free accumulating counter. */
class Counter
{
  public:
    void inc(u64 by = 1) { count_ += by; }
    u64 value() const { return count_; }
    void reset() { count_ = 0; }

  private:
    u64 count_ = 0;
};

/** Distribution over small integer buckets [0, maxBucket]. */
class Distribution
{
  public:
    explicit Distribution(unsigned max_bucket = 32)
        : buckets(max_bucket + 1, 0)
    {}

    /** Record one sample; values beyond the last bucket clamp into it. */
    void
    sample(u64 v)
    {
        const u64 idx = v < buckets.size() ? v : buckets.size() - 1;
        ++buckets[idx];
        ++samples_;
        total += v;
        if (v > max_)
            max_ = v;
    }

    u64 samples() const { return samples_; }
    u64 maxSeen() const { return max_; }
    double mean() const;
    u64 bucket(unsigned i) const { return buckets[i]; }
    unsigned numBuckets() const { return static_cast<unsigned>(buckets.size()); }

    /**
     * Fraction of samples with value >= @p v. The top bucket holds all
     * saturated samples (see sample()), so queries beyond the last
     * bucket clamp to it and report the saturated fraction rather
     * than 0.
     */
    double fracAtLeast(u64 v) const;

  private:
    std::vector<u64> buckets;
    u64 samples_ = 0;
    u64 total = 0;
    u64 max_ = 0;
};

/**
 * Streaming mean/variance accumulator (Welford's algorithm) with a
 * normal-theory 95% confidence half-width.  Used by sampled replay to
 * turn per-chunk measurements into an estimate with error bars; the
 * update order is fixed by the caller's sample order, so estimates are
 * bit-reproducible for a given sample sequence.
 */
class MeanVar
{
  public:
    void
    add(double x)
    {
        ++n_;
        const double d = x - mean_;
        mean_ += d / static_cast<double>(n_);
        m2_ += d * (x - mean_);
    }

    u64 samples() const { return n_; }
    double mean() const { return n_ ? mean_ : 0.0; }

    /** Unbiased sample variance; 0 with fewer than two samples. */
    double
    variance() const
    {
        return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
    }

    double stddev() const;

    /**
     * Half-width of the normal-theory 95% confidence interval for the
     * mean: 1.96 * stddev / sqrt(n).  0 with fewer than two samples
     * (no spread information — the caller decides how to present it).
     */
    double ci95() const;

  private:
    u64 n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
};

/**
 * Tracks the time-weighted occupancy of a resource pool (e.g. how many
 * MSHRs are in use, integrated over cycles).
 */
class OccupancyTracker
{
  public:
    explicit OccupancyTracker(unsigned capacity)
        : histogram(capacity)
    {}

    /**
     * Advance simulated time to @p now with the pool holding @p occupied
     * entries since the previous call.
     */
    void
    advance(Cycle now, unsigned occupied)
    {
        if (now > last) {
            const u64 dt = now - last;
            weighted += dt * occupied;
            elapsed += dt;
            histogram.sampleWeighted(occupied, dt);
            last = now;
        }
        if (occupied > peak)
            peak = occupied;
        lastOcc = occupied;
    }

    /**
     * The @p occupied value from the most recent advance() call, i.e.
     * the pool's occupancy as of the last access to the resource. Used
     * by the obs timeline to sample MSHR occupancy without touching
     * the timing path.
     */
    unsigned lastOccupancy() const { return lastOcc; }

    double
    meanOccupancy() const
    {
        return elapsed ? static_cast<double>(weighted) / elapsed : 0.0;
    }

    unsigned peakOccupancy() const { return peak; }

    /**
     * Fraction of elapsed time with occupancy >= @p n. Occupancy
     * levels beyond the capacity saturate into the top histogram
     * bucket, and queries beyond it clamp to the top bucket likewise.
     */
    double fracAtLeast(unsigned n) const;

  private:
    /** Cycle-weighted histogram over occupancy levels. */
    class WeightedHist
    {
      public:
        explicit WeightedHist(unsigned capacity)
            : w(capacity + 1, 0)
        {}

        void
        sampleWeighted(unsigned level, u64 weight)
        {
            const unsigned idx =
                level < w.size() ? level : static_cast<unsigned>(w.size() - 1);
            w[idx] += weight;
        }

        const std::vector<u64> &weights() const { return w; }

      private:
        std::vector<u64> w;
    };

    WeightedHist histogram;
    Cycle last = 0;
    u64 weighted = 0;
    u64 elapsed = 0;
    unsigned peak = 0;
    unsigned lastOcc = 0;
};

} // namespace msim

#endif // MSIM_COMMON_STATS_HH_
