/**
 * @file
 * Small deterministic xorshift64* generator.
 *
 * Used for synthetic image/video content and for randomized property
 * tests. Deterministic across platforms so that simulated traces (and
 * therefore every reproduced figure) are bit-stable.
 */

#ifndef MSIM_COMMON_RNG_HH_
#define MSIM_COMMON_RNG_HH_

#include "common/types.hh"

namespace msim
{

/** xorshift64* PRNG. Never returns the zero state. */
class Rng
{
  public:
    explicit Rng(u64 seed = 0x9e3779b97f4a7c15ull)
        : state(seed ? seed : 1)
    {}

    /** Next 64 random bits. */
    u64
    next()
    {
        u64 x = state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        state = x;
        return x * 0x2545f4914f6cdd1dull;
    }

    /** Uniform integer in [0, bound). @p bound must be nonzero. */
    u64 nextBelow(u64 bound) { return next() % bound; }

    /** Uniform double in [0, 1). */
    double
    nextDouble()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

  private:
    u64 state;
};

} // namespace msim

#endif // MSIM_COMMON_RNG_HH_
