#include "common/simd.hh"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cctype>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "audit/invariants.hh"
#include "common/logging.hh"

#if defined(__x86_64__) || defined(_M_X64)
#define MSIM_SIMD_X86 1
#include <immintrin.h>
#elif defined(__aarch64__) && defined(__ARM_NEON)
#define MSIM_SIMD_NEON_ARCH 1
#include <arm_neon.h>
#endif

namespace msim::simd
{

// ---------------------------------------------------------------------------
// Scalar reference kernels. These define the semantics; every vector
// form below must be bit-identical to these on all inputs.
// ---------------------------------------------------------------------------

namespace scalar
{

u64
minActiveU64(const u8 *running, const u64 *values, size_t n)
{
    u64 m = ~u64{0};
    for (size_t k = 0; k < n; ++k) {
        const u64 v = running[k] ? values[k] : ~u64{0};
        m = std::min(m, v);
    }
    return m;
}

u64
leBitmap64(const u64 *values, u64 threshold)
{
    u64 bits = 0;
    for (unsigned i = 0; i < 64; ++i)
        bits |= static_cast<u64>(values[i] <= threshold) << i;
    return bits;
}

u64
minMaskedU64(const u64 *values, u64 mask)
{
    u64 m = ~u64{0};
    while (mask) {
        const unsigned i = std::countr_zero(mask);
        mask &= mask - 1;
        m = std::min(m, values[i]);
    }
    return m;
}

void
maxBroadcastU64(u64 *values, u64 mask, u64 t)
{
    while (mask) {
        const unsigned i = std::countr_zero(mask);
        mask &= mask - 1;
        values[i] = std::max(values[i], t);
    }
}

u64
wakeDecU8(u8 *counts, u64 mask)
{
    u64 zero = 0;
    u64 m = mask;
    while (m) {
        const unsigned i = std::countr_zero(m);
        m &= m - 1;
        if (static_cast<u8>(--counts[i]) == 0)
            zero |= u64{1} << i;
    }
    return zero;
}

void
eqByteBitmap(const u8 *bytes, size_t n, u8 value, u64 *outWords)
{
    const size_t words = (n + 63) / 64;
    for (size_t w = 0; w < words; ++w)
        outWords[w] = 0;
    for (size_t i = 0; i < n; ++i)
        if (bytes[i] == value)
            outWords[i >> 6] |= u64{1} << (i & 63);
}

void
testBitBitmap(const u8 *bytes, size_t n, u8 bit, u64 *outWords)
{
    const size_t words = (n + 63) / 64;
    for (size_t w = 0; w < words; ++w)
        outWords[w] = 0;
    for (size_t i = 0; i < n; ++i)
        if ((bytes[i] & bit) != 0)
            outWords[i >> 6] |= u64{1} << (i & 63);
}

u64
popcountWords(const u64 *words, size_t n)
{
    u64 total = 0;
    for (size_t i = 0; i < n; ++i)
        total += static_cast<u64>(std::popcount(words[i]));
    return total;
}

void
shrU64Col(const u64 *in, size_t n, unsigned shift, u64 *out)
{
    for (size_t i = 0; i < n; ++i)
        out[i] = in[i] >> shift;
}

void
eqU64Bitmap(const u64 *values, size_t n, u64 needle, u64 *outWords)
{
    const size_t words = (n + 63) / 64;
    for (size_t w = 0; w < words; ++w)
        outWords[w] = 0;
    for (size_t i = 0; i < n; ++i)
        if (values[i] == needle)
            outWords[i >> 6] |= u64{1} << (i & 63);
}

} // namespace scalar

// ---------------------------------------------------------------------------
// x86-64 kernels.
// ---------------------------------------------------------------------------

#if MSIM_SIMD_X86

namespace sse2
{

// SSE2 has byte compares + movemask but no 64-bit compares (pcmpgtq is
// SSE4.2) and no pshufb (SSSE3), so this tier vectorizes only the
// byte->bitmap kernels; the 64-bit-lane kernels stay on the scalar
// entries in its table.

void
eqByteBitmap(const u8 *bytes, size_t n, u8 value, u64 *outWords)
{
    const size_t words = (n + 63) / 64;
    for (size_t w = 0; w < words; ++w)
        outWords[w] = 0;
    const __m128i vv = _mm_set1_epi8(static_cast<char>(value));
    size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        const __m128i b =
            _mm_loadu_si128(reinterpret_cast<const __m128i *>(bytes + i));
        const u32 m =
            static_cast<u32>(_mm_movemask_epi8(_mm_cmpeq_epi8(b, vv)));
        // i is a multiple of 16, so the 16 bits never straddle a word.
        outWords[i >> 6] |= static_cast<u64>(m) << (i & 63);
    }
    for (; i < n; ++i)
        if (bytes[i] == value)
            outWords[i >> 6] |= u64{1} << (i & 63);
}

void
testBitBitmap(const u8 *bytes, size_t n, u8 bit, u64 *outWords)
{
    const size_t words = (n + 63) / 64;
    for (size_t w = 0; w < words; ++w)
        outWords[w] = 0;
    const __m128i bv = _mm_set1_epi8(static_cast<char>(bit));
    const __m128i zero = _mm_setzero_si128();
    size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        const __m128i b =
            _mm_loadu_si128(reinterpret_cast<const __m128i *>(bytes + i));
        const u32 eqz = static_cast<u32>(
            _mm_movemask_epi8(_mm_cmpeq_epi8(_mm_and_si128(b, bv), zero)));
        outWords[i >> 6] |= static_cast<u64>(~eqz & 0xffffu) << (i & 63);
    }
    for (; i < n; ++i)
        if ((bytes[i] & bit) != 0)
            outWords[i >> 6] |= u64{1} << (i & 63);
}

void
shrU64Col(const u64 *in, size_t n, unsigned shift, u64 *out)
{
    const __m128i sv = _mm_cvtsi32_si128(static_cast<int>(shift));
    size_t i = 0;
    for (; i + 2 <= n; i += 2) {
        const __m128i v =
            _mm_loadu_si128(reinterpret_cast<const __m128i *>(in + i));
        _mm_storeu_si128(reinterpret_cast<__m128i *>(out + i),
                         _mm_srl_epi64(v, sv));
    }
    for (; i < n; ++i)
        out[i] = in[i] >> shift;
}

// eqU64Bitmap needs a 64-bit lane compare (pcmpeqq is SSE4.1), so the
// SSE2 tier keeps the scalar entry for it.

} // namespace sse2

namespace avx2
{

// AVX2 has no unsigned 64-bit compare/min/max; all order comparisons
// below flip the sign bit and use the signed compare, which is the
// standard exact mapping (a <u b  <=>  (a ^ MSB) <s (b ^ MSB)).

namespace
{
constexpr long long kSignBit = static_cast<long long>(0x8000000000000000ULL);
} // namespace

[[gnu::target("avx2")]] static inline u64
hmin4(__m256i acc)
{
    alignas(32) u64 lanes[4];
    _mm256_store_si256(reinterpret_cast<__m256i *>(lanes), acc);
    return std::min(std::min(lanes[0], lanes[1]),
                    std::min(lanes[2], lanes[3]));
}

/** Per-4-lane selector: lane j active iff bit j of m4. */
[[gnu::target("avx2")]] static inline __m256i
laneSelect4(u64 m4)
{
    const __m256i laneBits = _mm256_set_epi64x(8, 4, 2, 1);
    const __m256i mv = _mm256_set1_epi64x(static_cast<long long>(m4));
    return _mm256_cmpeq_epi64(_mm256_and_si256(mv, laneBits), laneBits);
}

[[gnu::target("avx2")]] u64
minActiveU64(const u8 *running, const u64 *values, size_t n)
{
    const __m256i ones = _mm256_set1_epi64x(-1);
    const __m256i sign = _mm256_set1_epi64x(kSignBit);
    const __m256i zero = _mm256_setzero_si256();
    __m256i acc = ones;
    size_t k = 0;
    for (; k + 4 <= n; k += 4) {
        u32 r4;
        std::memcpy(&r4, running + k, sizeof r4);
        const __m256i rb =
            _mm256_cvtepu8_epi64(_mm_cvtsi32_si128(static_cast<int>(r4)));
        const __m256i dead = _mm256_cmpeq_epi64(rb, zero);
        __m256i v = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(values + k));
        v = _mm256_or_si256(v, dead); // inactive lanes -> ~0
        const __m256i accGt = _mm256_cmpgt_epi64(
            _mm256_xor_si256(acc, sign), _mm256_xor_si256(v, sign));
        acc = _mm256_blendv_epi8(acc, v, accGt);
    }
    u64 m = hmin4(acc);
    for (; k < n; ++k)
        m = std::min(m, running[k] ? values[k] : ~u64{0});
    return m;
}

[[gnu::target("avx2")]] u64
leBitmap64(const u64 *values, u64 threshold)
{
    const __m256i sign = _mm256_set1_epi64x(kSignBit);
    const __m256i tv = _mm256_xor_si256(
        _mm256_set1_epi64x(static_cast<long long>(threshold)), sign);
    u64 gt = 0;
    for (unsigned g = 0; g < 16; ++g) {
        const __m256i v = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(values + 4 * g));
        const __m256i cmp =
            _mm256_cmpgt_epi64(_mm256_xor_si256(v, sign), tv); // v > t
        const u64 m4 = static_cast<u64>(
            _mm256_movemask_pd(_mm256_castsi256_pd(cmp)));
        gt |= m4 << (4 * g);
    }
    return ~gt;
}

[[gnu::target("avx2")]] u64
minMaskedU64(const u64 *values, u64 mask)
{
    if (mask == 0)
        return ~u64{0};
    const __m256i ones = _mm256_set1_epi64x(-1);
    const __m256i sign = _mm256_set1_epi64x(kSignBit);
    __m256i acc = ones;
    for (unsigned g = 0; g < 16; ++g) {
        const u64 m4 = (mask >> (4 * g)) & 0xf;
        if (m4 == 0)
            continue;
        const __m256i sel = laneSelect4(m4);
        __m256i v = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(values + 4 * g));
        v = _mm256_blendv_epi8(ones, v, sel); // unselected -> ~0
        const __m256i accGt = _mm256_cmpgt_epi64(
            _mm256_xor_si256(acc, sign), _mm256_xor_si256(v, sign));
        acc = _mm256_blendv_epi8(acc, v, accGt);
    }
    return hmin4(acc);
}

[[gnu::target("avx2")]] void
maxBroadcastU64(u64 *values, u64 mask, u64 t)
{
    if (mask == 0)
        return;
    const __m256i sign = _mm256_set1_epi64x(kSignBit);
    const __m256i tv = _mm256_set1_epi64x(static_cast<long long>(t));
    const __m256i tvS = _mm256_xor_si256(tv, sign);
    for (unsigned g = 0; g < 16; ++g) {
        const u64 m4 = (mask >> (4 * g)) & 0xf;
        if (m4 == 0)
            continue;
        const __m256i sel = laneSelect4(m4);
        const __m256i v = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(values + 4 * g));
        const __m256i vGt =
            _mm256_cmpgt_epi64(_mm256_xor_si256(v, sign), tvS); // v > t
        const __m256i mx = _mm256_blendv_epi8(tv, v, vGt);      // max(v, t)
        const __m256i out = _mm256_blendv_epi8(v, mx, sel);
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(values + 4 * g),
                            out);
    }
}

[[gnu::target("avx2")]] u64
wakeDecU8(u8 *counts, u64 mask)
{
    if (mask == 0)
        return 0;
    // Expand 32 mask bits to 32 byte lanes: replicate each mask byte
    // across its 8-byte group (pshufb), then test the per-lane bit.
    const __m256i bitSel =
        _mm256_set1_epi64x(static_cast<long long>(0x8040201008040201ULL));
    const __m256i byteIdx = _mm256_setr_epi8(
        0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 1, 1, 1, 1, //
        2, 2, 2, 2, 2, 2, 2, 2, 3, 3, 3, 3, 3, 3, 3, 3);
    const __m256i one = _mm256_set1_epi8(1);
    const __m256i zero = _mm256_setzero_si256();
    u64 newly = 0;
    for (unsigned h = 0; h < 2; ++h) {
        const u32 m32 = static_cast<u32>(mask >> (32 * h));
        if (m32 == 0)
            continue;
        const __m256i mv = _mm256_set1_epi32(static_cast<int>(m32));
        const __m256i mb = _mm256_shuffle_epi8(mv, byteIdx);
        const __m256i sel = _mm256_cmpeq_epi8(
            _mm256_and_si256(mb, bitSel), bitSel);
        __m256i c = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(counts + 32 * h));
        c = _mm256_sub_epi8(c, _mm256_and_si256(sel, one));
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(counts + 32 * h),
                            c);
        const __m256i z = _mm256_cmpeq_epi8(c, zero);
        const u32 zm = static_cast<u32>(
            _mm256_movemask_epi8(_mm256_and_si256(z, sel)));
        newly |= static_cast<u64>(zm) << (32 * h);
    }
    return newly;
}

[[gnu::target("avx2")]] void
eqByteBitmap(const u8 *bytes, size_t n, u8 value, u64 *outWords)
{
    const size_t words = (n + 63) / 64;
    for (size_t w = 0; w < words; ++w)
        outWords[w] = 0;
    const __m256i vv = _mm256_set1_epi8(static_cast<char>(value));
    size_t i = 0;
    for (; i + 32 <= n; i += 32) {
        const __m256i b = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(bytes + i));
        const u32 m = static_cast<u32>(
            _mm256_movemask_epi8(_mm256_cmpeq_epi8(b, vv)));
        outWords[i >> 6] |= static_cast<u64>(m) << (i & 63);
    }
    for (; i < n; ++i)
        if (bytes[i] == value)
            outWords[i >> 6] |= u64{1} << (i & 63);
}

[[gnu::target("avx2")]] void
testBitBitmap(const u8 *bytes, size_t n, u8 bit, u64 *outWords)
{
    const size_t words = (n + 63) / 64;
    for (size_t w = 0; w < words; ++w)
        outWords[w] = 0;
    const __m256i bv = _mm256_set1_epi8(static_cast<char>(bit));
    const __m256i zero = _mm256_setzero_si256();
    size_t i = 0;
    for (; i + 32 <= n; i += 32) {
        const __m256i b = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(bytes + i));
        const u32 eqz = static_cast<u32>(_mm256_movemask_epi8(
            _mm256_cmpeq_epi8(_mm256_and_si256(b, bv), zero)));
        outWords[i >> 6] |= static_cast<u64>(~eqz) << (i & 63);
    }
    for (; i < n; ++i)
        if ((bytes[i] & bit) != 0)
            outWords[i >> 6] |= u64{1} << (i & 63);
}

[[gnu::target("avx2")]] u64
popcountWords(const u64 *words, size_t n)
{
    // pshufb nibble-LUT popcount + psadbw accumulate.
    const __m256i lut = _mm256_setr_epi8(
        0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, //
        0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
    const __m256i low = _mm256_set1_epi8(0x0f);
    const __m256i zero = _mm256_setzero_si256();
    __m256i acc = zero;
    size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256i v = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(words + i));
        const __m256i lo = _mm256_and_si256(v, low);
        const __m256i hi =
            _mm256_and_si256(_mm256_srli_epi16(v, 4), low);
        const __m256i cnt = _mm256_add_epi8(
            _mm256_shuffle_epi8(lut, lo), _mm256_shuffle_epi8(lut, hi));
        acc = _mm256_add_epi64(acc, _mm256_sad_epu8(cnt, zero));
    }
    alignas(32) u64 lanes[4];
    _mm256_store_si256(reinterpret_cast<__m256i *>(lanes), acc);
    u64 total = lanes[0] + lanes[1] + lanes[2] + lanes[3];
    for (; i < n; ++i)
        total += static_cast<u64>(std::popcount(words[i]));
    return total;
}

[[gnu::target("avx2")]] void
shrU64Col(const u64 *in, size_t n, unsigned shift, u64 *out)
{
    const __m128i sv = _mm_cvtsi32_si128(static_cast<int>(shift));
    size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256i v = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(in + i));
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(out + i),
                            _mm256_srl_epi64(v, sv));
    }
    for (; i < n; ++i)
        out[i] = in[i] >> shift;
}

[[gnu::target("avx2")]] void
eqU64Bitmap(const u64 *values, size_t n, u64 needle, u64 *outWords)
{
    const size_t words = (n + 63) / 64;
    for (size_t w = 0; w < words; ++w)
        outWords[w] = 0;
    const __m256i nv = _mm256_set1_epi64x(static_cast<long long>(needle));
    size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256i v = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(values + i));
        const u64 m4 = static_cast<u64>(_mm256_movemask_pd(
            _mm256_castsi256_pd(_mm256_cmpeq_epi64(v, nv))));
        // i is a multiple of 4, so the 4 bits never straddle a word.
        outWords[i >> 6] |= m4 << (i & 63);
    }
    for (; i < n; ++i)
        if (values[i] == needle)
            outWords[i >> 6] |= u64{1} << (i & 63);
}

} // namespace avx2

#endif // MSIM_SIMD_X86

// ---------------------------------------------------------------------------
// aarch64 NEON kernels (byte-bitmap + popcount + 64-bit compare tiers;
// the masked 64-bit update kernels stay scalar — NEON's 2-wide u64
// lanes with manual blends measured no better than the scalar loop).
// ---------------------------------------------------------------------------

#if MSIM_SIMD_NEON_ARCH

namespace neon
{

static inline u64
bitmap16(uint8x16_t cmp)
{
    const uint8x16_t bits = vreinterpretq_u8_u64(
        vdupq_n_u64(0x8040201008040201ULL));
    const uint8x16_t sel = vandq_u8(cmp, bits);
    const u64 lo = vaddv_u8(vget_low_u8(sel));
    const u64 hi = vaddv_u8(vget_high_u8(sel));
    return lo | (hi << 8);
}

void
eqByteBitmap(const u8 *bytes, size_t n, u8 value, u64 *outWords)
{
    const size_t words = (n + 63) / 64;
    for (size_t w = 0; w < words; ++w)
        outWords[w] = 0;
    const uint8x16_t vv = vdupq_n_u8(value);
    size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        const uint8x16_t b = vld1q_u8(bytes + i);
        outWords[i >> 6] |= bitmap16(vceqq_u8(b, vv)) << (i & 63);
    }
    for (; i < n; ++i)
        if (bytes[i] == value)
            outWords[i >> 6] |= u64{1} << (i & 63);
}

void
testBitBitmap(const u8 *bytes, size_t n, u8 bit, u64 *outWords)
{
    const size_t words = (n + 63) / 64;
    for (size_t w = 0; w < words; ++w)
        outWords[w] = 0;
    const uint8x16_t bv = vdupq_n_u8(bit);
    size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        const uint8x16_t b = vld1q_u8(bytes + i);
        const uint8x16_t hasBit =
            vtstq_u8(b, bv); // 0xff where (b & bit) != 0
        outWords[i >> 6] |= bitmap16(hasBit) << (i & 63);
    }
    for (; i < n; ++i)
        if ((bytes[i] & bit) != 0)
            outWords[i >> 6] |= u64{1} << (i & 63);
}

u64
leBitmap64(const u64 *values, u64 threshold)
{
    const uint64x2_t tv = vdupq_n_u64(threshold);
    u64 bits = 0;
    for (unsigned g = 0; g < 32; ++g) {
        const uint64x2_t v = vld1q_u64(values + 2 * g);
        const uint64x2_t le = vcleq_u64(v, tv);
        bits |= (vgetq_lane_u64(le, 0) & 1) << (2 * g);
        bits |= (vgetq_lane_u64(le, 1) & 1) << (2 * g + 1);
    }
    return bits;
}

u64
popcountWords(const u64 *words, size_t n)
{
    u64 total = 0;
    size_t i = 0;
    for (; i + 2 <= n; i += 2) {
        const uint8x16_t v =
            vreinterpretq_u8_u64(vld1q_u64(words + i));
        total += vaddvq_u8(vcntq_u8(v));
    }
    for (; i < n; ++i)
        total += static_cast<u64>(std::popcount(words[i]));
    return total;
}

void
shrU64Col(const u64 *in, size_t n, unsigned shift, u64 *out)
{
    const int64x2_t sv = vdupq_n_s64(-static_cast<s64>(shift));
    size_t i = 0;
    for (; i + 2 <= n; i += 2) {
        const uint64x2_t v = vld1q_u64(in + i);
        vst1q_u64(out + i, vshlq_u64(v, sv));
    }
    for (; i < n; ++i)
        out[i] = in[i] >> shift;
}

void
eqU64Bitmap(const u64 *values, size_t n, u64 needle, u64 *outWords)
{
    const size_t words = (n + 63) / 64;
    for (size_t w = 0; w < words; ++w)
        outWords[w] = 0;
    const uint64x2_t nv = vdupq_n_u64(needle);
    size_t i = 0;
    for (; i + 2 <= n; i += 2) {
        const uint64x2_t eq = vceqq_u64(vld1q_u64(values + i), nv);
        u64 m2 = vgetq_lane_u64(eq, 0) & 1;
        m2 |= (vgetq_lane_u64(eq, 1) & 1) << 1;
        outWords[i >> 6] |= m2 << (i & 63);
    }
    for (; i < n; ++i)
        if (values[i] == needle)
            outWords[i >> 6] |= u64{1} << (i & 63);
}

} // namespace neon

#endif // MSIM_SIMD_NEON_ARCH

// ---------------------------------------------------------------------------
// Audit wrappers: in audit builds the dispatched tables route every
// vector kernel through a checker that re-runs the scalar twin on the
// same inputs and asserts exact equality ("simd-kernel-identity").
// ---------------------------------------------------------------------------

#if MSIM_AUDIT_ENABLED

namespace
{

template <u64 (*Fn)(const u8 *, const u64 *, size_t)>
u64
checkedMinActive(const u8 *running, const u64 *values, size_t n)
{
    const u64 got = Fn(running, values, n);
    const u64 ref = scalar::minActiveU64(running, values, n);
    MSIM_AUDIT_CHECK(got == ref,
                     "simd minActiveU64 %llx != scalar %llx (n=%zu)",
                     (unsigned long long)got, (unsigned long long)ref, n);
    return got;
}

template <u64 (*Fn)(const u64 *, u64)>
u64
checkedLeBitmap(const u64 *values, u64 threshold)
{
    const u64 got = Fn(values, threshold);
    const u64 ref = scalar::leBitmap64(values, threshold);
    MSIM_AUDIT_CHECK(got == ref, "simd leBitmap64 %llx != scalar %llx",
                     (unsigned long long)got, (unsigned long long)ref);
    return got;
}

template <u64 (*Fn)(const u64 *, u64)>
u64
checkedMinMasked(const u64 *values, u64 mask)
{
    const u64 got = Fn(values, mask);
    const u64 ref = scalar::minMaskedU64(values, mask);
    MSIM_AUDIT_CHECK(got == ref,
                     "simd minMaskedU64 %llx != scalar %llx (mask %llx)",
                     (unsigned long long)got, (unsigned long long)ref,
                     (unsigned long long)mask);
    return got;
}

template <void (*Fn)(u64 *, u64, u64)>
void
checkedMaxBroadcast(u64 *values, u64 mask, u64 t)
{
    u64 ref[64];
    std::memcpy(ref, values, sizeof ref);
    Fn(values, mask, t);
    scalar::maxBroadcastU64(ref, mask, t);
    MSIM_AUDIT_CHECK(std::memcmp(ref, values, sizeof ref) == 0,
                     "simd maxBroadcastU64 diverged (mask %llx t %llx)",
                     (unsigned long long)mask, (unsigned long long)t);
}

template <u64 (*Fn)(u8 *, u64)>
u64
checkedWakeDec(u8 *counts, u64 mask)
{
    u8 ref[64];
    std::memcpy(ref, counts, sizeof ref);
    const u64 got = Fn(counts, mask);
    const u64 refZero = scalar::wakeDecU8(ref, mask);
    MSIM_AUDIT_CHECK(got == refZero &&
                         std::memcmp(ref, counts, sizeof ref) == 0,
                     "simd wakeDecU8 diverged (mask %llx: %llx vs %llx)",
                     (unsigned long long)mask, (unsigned long long)got,
                     (unsigned long long)refZero);
    return got;
}

template <void (*Fn)(const u8 *, size_t, u8, u64 *)>
void
checkedEqByte(const u8 *bytes, size_t n, u8 value, u64 *outWords)
{
    Fn(bytes, n, value, outWords);
    std::vector<u64> ref((n + 63) / 64);
    scalar::eqByteBitmap(bytes, n, value, ref.data());
    MSIM_AUDIT_CHECK(
        std::memcmp(ref.data(), outWords, ref.size() * sizeof(u64)) == 0,
        "simd eqByteBitmap diverged (n=%zu value=%u)", n, (unsigned)value);
}

template <void (*Fn)(const u8 *, size_t, u8, u64 *)>
void
checkedTestBit(const u8 *bytes, size_t n, u8 bit, u64 *outWords)
{
    Fn(bytes, n, bit, outWords);
    std::vector<u64> ref((n + 63) / 64);
    scalar::testBitBitmap(bytes, n, bit, ref.data());
    MSIM_AUDIT_CHECK(
        std::memcmp(ref.data(), outWords, ref.size() * sizeof(u64)) == 0,
        "simd testBitBitmap diverged (n=%zu bit=%u)", n, (unsigned)bit);
}

template <u64 (*Fn)(const u64 *, size_t)>
u64
checkedPopcount(const u64 *words, size_t n)
{
    const u64 got = Fn(words, n);
    const u64 ref = scalar::popcountWords(words, n);
    MSIM_AUDIT_CHECK(got == ref,
                     "simd popcountWords %llu != scalar %llu (n=%zu)",
                     (unsigned long long)got, (unsigned long long)ref, n);
    return got;
}

template <void (*Fn)(const u64 *, size_t, unsigned, u64 *)>
void
checkedShrCol(const u64 *in, size_t n, unsigned shift, u64 *out)
{
    Fn(in, n, shift, out);
    std::vector<u64> ref(n);
    scalar::shrU64Col(in, n, shift, ref.data());
    MSIM_AUDIT_CHECK(
        n == 0 ||
            std::memcmp(ref.data(), out, n * sizeof(u64)) == 0,
        "simd shrU64Col diverged (n=%zu shift=%u)", n, shift);
}

template <void (*Fn)(const u64 *, size_t, u64, u64 *)>
void
checkedEqU64(const u64 *values, size_t n, u64 needle, u64 *outWords)
{
    Fn(values, n, needle, outWords);
    std::vector<u64> ref((n + 63) / 64);
    scalar::eqU64Bitmap(values, n, needle, ref.data());
    MSIM_AUDIT_CHECK(
        std::memcmp(ref.data(), outWords, ref.size() * sizeof(u64)) == 0,
        "simd eqU64Bitmap diverged (n=%zu needle=%llx)", n,
        (unsigned long long)needle);
}

} // namespace

#define MSIM_SIMD_KERNEL(checker, fn) checker<fn>
#else
#define MSIM_SIMD_KERNEL(checker, fn) fn
#endif // MSIM_AUDIT_ENABLED

// ---------------------------------------------------------------------------
// Dispatch tables, detection, override.
// ---------------------------------------------------------------------------

namespace
{

const Ops kScalarOps = {
    Level::Scalar,        scalar::minActiveU64,  scalar::leBitmap64,
    scalar::minMaskedU64, scalar::maxBroadcastU64, scalar::wakeDecU8,
    scalar::eqByteBitmap, scalar::testBitBitmap, scalar::popcountWords,
    scalar::shrU64Col,    scalar::eqU64Bitmap,
};

#if MSIM_SIMD_X86
const Ops kSse2Ops = {
    Level::SSE2,
    scalar::minActiveU64,
    scalar::leBitmap64,
    scalar::minMaskedU64,
    scalar::maxBroadcastU64,
    scalar::wakeDecU8,
    MSIM_SIMD_KERNEL(checkedEqByte, sse2::eqByteBitmap),
    MSIM_SIMD_KERNEL(checkedTestBit, sse2::testBitBitmap),
    scalar::popcountWords,
    MSIM_SIMD_KERNEL(checkedShrCol, sse2::shrU64Col),
    scalar::eqU64Bitmap,
};

const Ops kAvx2Ops = {
    Level::AVX2,
    MSIM_SIMD_KERNEL(checkedMinActive, avx2::minActiveU64),
    MSIM_SIMD_KERNEL(checkedLeBitmap, avx2::leBitmap64),
    MSIM_SIMD_KERNEL(checkedMinMasked, avx2::minMaskedU64),
    MSIM_SIMD_KERNEL(checkedMaxBroadcast, avx2::maxBroadcastU64),
    MSIM_SIMD_KERNEL(checkedWakeDec, avx2::wakeDecU8),
    MSIM_SIMD_KERNEL(checkedEqByte, avx2::eqByteBitmap),
    MSIM_SIMD_KERNEL(checkedTestBit, avx2::testBitBitmap),
    MSIM_SIMD_KERNEL(checkedPopcount, avx2::popcountWords),
    MSIM_SIMD_KERNEL(checkedShrCol, avx2::shrU64Col),
    MSIM_SIMD_KERNEL(checkedEqU64, avx2::eqU64Bitmap),
};
#endif

#if MSIM_SIMD_NEON_ARCH
const Ops kNeonOps = {
    Level::NEON,
    scalar::minActiveU64,
    MSIM_SIMD_KERNEL(checkedLeBitmap, neon::leBitmap64),
    scalar::minMaskedU64,
    scalar::maxBroadcastU64,
    scalar::wakeDecU8,
    MSIM_SIMD_KERNEL(checkedEqByte, neon::eqByteBitmap),
    MSIM_SIMD_KERNEL(checkedTestBit, neon::testBitBitmap),
    MSIM_SIMD_KERNEL(checkedPopcount, neon::popcountWords),
    MSIM_SIMD_KERNEL(checkedShrCol, neon::shrU64Col),
    MSIM_SIMD_KERNEL(checkedEqU64, neon::eqU64Bitmap),
};
#endif

constexpr u8 kNoOverride = 0xff;
std::atomic<u8> g_override{kNoOverride};

Level
clampToHost(Level req)
{
    const Level det = detectedLevel();
    switch (req) {
    case Level::Scalar:
        return Level::Scalar;
#if MSIM_SIMD_X86
    case Level::SSE2:
        return Level::SSE2;
    case Level::AVX2:
        return det == Level::AVX2 ? Level::AVX2 : Level::SSE2;
#endif
#if MSIM_SIMD_NEON_ARCH
    case Level::NEON:
        return Level::NEON;
#endif
    default:
        // Requested family the host does not have: no vector form is
        // usable, run scalar rather than guessing at a substitute.
        (void)det;
        return Level::Scalar;
    }
}

Level
envLevel()
{
    static const Level level = [] {
        const char *v = std::getenv("MSIM_SIMD");
        if (!v || !*v)
            return detectedLevel();
        std::string s(v);
        for (char &c : s)
            c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
        if (s == "0" || s == "off" || s == "scalar")
            return Level::Scalar;
        if (s == "1" || s == "auto" || s == "native")
            return detectedLevel();
        if (s == "sse2")
            return clampToHost(Level::SSE2);
        if (s == "avx2")
            return clampToHost(Level::AVX2);
        if (s == "neon")
            return clampToHost(Level::NEON);
        // A typo here must not silently run the native path: the whole
        // point of the toggle is a believed-forced dispatch tier.
        fatal("MSIM_SIMD=\"%s\" is not recognized; accepted values: "
              "0|off|scalar, 1|auto|native, sse2, avx2, neon", v);
    }();
    return level;
}

} // namespace

const char *
levelName(Level level)
{
    switch (level) {
    case Level::Scalar:
        return "scalar";
    case Level::SSE2:
        return "sse2";
    case Level::AVX2:
        return "avx2";
    case Level::NEON:
        return "neon";
    }
    return "unknown";
}

Level
detectedLevel()
{
#if MSIM_SIMD_X86
    static const Level level =
        __builtin_cpu_supports("avx2") ? Level::AVX2 : Level::SSE2;
    return level;
#elif MSIM_SIMD_NEON_ARCH
    return Level::NEON;
#else
    return Level::Scalar;
#endif
}

Level
activeLevel()
{
    const u8 ov = g_override.load(std::memory_order_relaxed);
    if (ov != kNoOverride)
        return clampToHost(static_cast<Level>(ov));
    return envLevel();
}

const Ops &
opsFor(Level level)
{
    switch (clampToHost(level)) {
#if MSIM_SIMD_X86
    case Level::SSE2:
        return kSse2Ops;
    case Level::AVX2:
        return kAvx2Ops;
#endif
#if MSIM_SIMD_NEON_ARCH
    case Level::NEON:
        return kNeonOps;
#endif
    default:
        return kScalarOps;
    }
}

const Ops &
ops()
{
    return opsFor(activeLevel());
}

ScopedLevel::ScopedLevel(Level level)
    : prev_(g_override.exchange(static_cast<u8>(level),
                                std::memory_order_relaxed))
{
}

ScopedLevel::~ScopedLevel()
{
    g_override.store(prev_, std::memory_order_relaxed);
}

} // namespace msim::simd
