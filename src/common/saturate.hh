/**
 * @file
 * Saturation and clamping helpers used by the image kernels, the VIS
 * pack semantics, and the codecs.
 */

#ifndef MSIM_COMMON_SATURATE_HH_
#define MSIM_COMMON_SATURATE_HH_

#include "common/types.hh"

namespace msim
{

/** Clamp @p v into [lo, hi]. */
template <typename T>
constexpr T
clamp(T v, T lo, T hi)
{
    return v < lo ? lo : (v > hi ? hi : v);
}

/** Saturate a wide signed value to an unsigned 8-bit pixel. */
constexpr u8
satU8(s64 v)
{
    return static_cast<u8>(clamp<s64>(v, 0, 255));
}

/** Saturate a wide signed value to a signed 16-bit sample. */
constexpr s16
satS16(s64 v)
{
    return static_cast<s16>(clamp<s64>(v, -32768, 32767));
}

/** Saturate a wide signed value to a signed 32-bit sample. */
constexpr s32
satS32(s64 v)
{
    return static_cast<s32>(clamp<s64>(v, s64{-2147483647} - 1, 2147483647));
}

} // namespace msim

#endif // MSIM_COMMON_SATURATE_HH_
