/**
 * @file
 * Error-reporting helpers in the gem5 fatal/panic idiom.
 *
 * panic() flags an internal simulator bug (aborts); fatal() flags a user
 * error such as an inconsistent configuration (clean exit). Both are
 * implemented as [[noreturn]] functions taking a printf-style format.
 */

#ifndef MSIM_COMMON_LOGGING_HH_
#define MSIM_COMMON_LOGGING_HH_

#include <cstdarg>

namespace msim
{

/** Report an internal invariant violation and abort. */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report an unrecoverable user/configuration error and exit(1). */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report a non-fatal condition worth the user's attention. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Informational message. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Number of log lines dropped (truncated or lost) because a message
 * overflowed the formatting buffer. Surfaced as the obs metric
 * "log.dropped_lines" when a telemetry session flushes.
 */
unsigned long long droppedLogLines();

} // namespace msim

#endif // MSIM_COMMON_LOGGING_HH_
