/**
 * @file
 * Portable host-SIMD kernel layer for the replay engines.
 *
 * A small fixed set of data-parallel kernels (min-reductions, masked
 * column updates, compare->bitmap builds, popcount tallies) behind a
 * runtime-dispatched function table. Each kernel exists in a scalar
 * reference form (namespace simd::scalar, always compiled) plus
 * whichever vector forms the target architecture offers:
 *
 *   x86-64:  SSE2 (baseline, byte-bitmap kernels) and AVX2 (all
 *            kernels; compiled with [[gnu::target("avx2")]] so the
 *            translation unit builds for generic x86-64 and the AVX2
 *            bodies are only ever executed after a cpuid check).
 *   aarch64: NEON (byte-bitmap + popcount kernels).
 *   others:  scalar only.
 *
 * Dispatch policy: the host's best level is detected once (cpuid) and
 * combined with the MSIM_SIMD environment variable, parsed once at
 * first use. A process-wide override (ScopedLevel / sim::withSimd) can
 * force any level at or below the detected one — that is the A/B lever
 * the differential tests, audit_fuzz and the benches use. Engines read
 * ops() once per run; the table pointer for a level never changes.
 *
 * Bit-identity contract: every vector kernel computes exactly the
 * function its scalar twin computes — same results, same tail handling,
 * no reordering-sensitive arithmetic (all kernels are integer min/max/
 * compare/popcount, which are associative and exact). Under audit
 * builds (MSIM_AUDIT_ENABLED) the dispatched table wraps each vector
 * kernel in a checker that re-runs the scalar twin on the same inputs
 * and MSIM_AUDIT_CHECKs equality, so audit_fuzz exercises the identity
 * on every call, not just in test_simd.
 *
 * MSIM_SIMD values: "0" / "off" / "scalar" force scalar; unset / "1" /
 * "auto" / "native" use the detected level; "sse2" / "avx2" / "neon"
 * request a specific level (clamped to what the host supports).
 */

#ifndef MSIM_COMMON_SIMD_HH_
#define MSIM_COMMON_SIMD_HH_

#include <cstddef>

#include "common/types.hh"

namespace msim::simd
{

/** Dispatch levels, ordered weakest-first within each architecture. */
enum class Level : u8
{
    Scalar = 0,
    SSE2 = 1,
    AVX2 = 2,
    NEON = 3,
};

/** Human-readable level name ("scalar", "sse2", ...). */
const char *levelName(Level level);

/** Best level the host CPU supports (cpuid; cached). */
Level detectedLevel();

/**
 * Level the next ops() call dispatches to: the ScopedLevel override if
 * one is active, else the MSIM_SIMD-filtered detected level.
 */
Level activeLevel();

/**
 * The kernel table. All fixed-size kernels operate on exactly 64
 * entries — the replay engine's window columns are padded to 64 slots —
 * with a u64 bitmap selecting the live lanes. Sized kernels take an
 * explicit element count and make no alignment assumptions.
 */
struct Ops
{
    Level level;

    /**
     * Min over values[k] for k in [0, n) where running[k] != 0;
     * ~0ull when no lane is active (including n == 0).
     */
    u64 (*minActiveU64)(const u8 *running, const u64 *values, size_t n);

    /** Bit i set iff values[i] <= threshold (unsigned), i in [0, 64). */
    u64 (*leBitmap64)(const u64 *values, u64 threshold);

    /** Min over values[i] for set bits of mask; ~0ull when mask == 0. */
    u64 (*minMaskedU64)(const u64 *values, u64 mask);

    /** values[i] = max(values[i], t) for every set bit of mask. */
    void (*maxBroadcastU64)(u64 *values, u64 mask, u64 t);

    /**
     * counts[i] -= 1 for every set bit of mask; returns the set bits
     * whose count reached exactly zero. Masked lanes must hold a
     * nonzero count (they wrap to 255 otherwise, same as the scalar
     * twin, and are then not reported as newly zero).
     */
    u64 (*wakeDecU8)(u8 *counts, u64 mask);

    /**
     * outWords[i/64] bit i%64 set iff bytes[i] == value, i in [0, n).
     * Writes ceil(n/64) words; tail bits above n are zero.
     */
    void (*eqByteBitmap)(const u8 *bytes, size_t n, u8 value,
                         u64 *outWords);

    /** Same layout; bit set iff (bytes[i] & bit) != 0. */
    void (*testBitBitmap)(const u8 *bytes, size_t n, u8 bit,
                          u64 *outWords);

    /** Total population count of words[0..n). */
    u64 (*popcountWords)(const u64 *words, size_t n);

    /**
     * out[i] = in[i] >> shift for i in [0, n); shift in [0, 63].
     * The batched memory layer derives a chunk's shared line-address
     * column from the raw byte-address column with one call per
     * distinct line size.
     */
    void (*shrU64Col)(const u64 *in, size_t n, unsigned shift, u64 *out);

    /**
     * outWords[i/64] bit i%64 set iff values[i] == needle, i in [0, n).
     * Writes ceil(n/64) words; tail bits above n are zero.  This is
     * the multi-lane tag probe: with a geometry class's tags laid out
     * lane-major per set (see mem::TagArena), one call classifies a
     * line against every lane x way slot of the set.
     */
    void (*eqU64Bitmap)(const u64 *values, size_t n, u64 needle,
                        u64 *outWords);
};

/** Table for the currently active level (override / env / detected). */
const Ops &ops();

/** Table for a specific level, clamped to what the host supports. */
const Ops &opsFor(Level level);

/**
 * Scalar reference implementations. Always compiled; the dispatched
 * tables fall back to these entries per-kernel where a level has no
 * vector form, and tests/audit wrappers compare against them.
 */
namespace scalar
{
u64 minActiveU64(const u8 *running, const u64 *values, size_t n);
u64 leBitmap64(const u64 *values, u64 threshold);
u64 minMaskedU64(const u64 *values, u64 mask);
void maxBroadcastU64(u64 *values, u64 mask, u64 t);
u64 wakeDecU8(u8 *counts, u64 mask);
void eqByteBitmap(const u8 *bytes, size_t n, u8 value, u64 *outWords);
void testBitBitmap(const u8 *bytes, size_t n, u8 bit, u64 *outWords);
u64 popcountWords(const u64 *words, size_t n);
void shrU64Col(const u64 *in, size_t n, unsigned shift, u64 *out);
void eqU64Bitmap(const u64 *values, size_t n, u64 needle, u64 *outWords);
} // namespace scalar

/**
 * RAII process-wide dispatch override for A/B runs: while alive, ops()
 * returns the table for `level` (clamped to the detected level).
 * Nests; restores the previous override on destruction. Engines cache
 * the table pointer at construction, so install the override before
 * building the engine (sim::replayTrace* constructs engines per call,
 * which is what the tests and benches use).
 */
class ScopedLevel
{
  public:
    explicit ScopedLevel(Level level);
    ~ScopedLevel();

    ScopedLevel(const ScopedLevel &) = delete;
    ScopedLevel &operator=(const ScopedLevel &) = delete;

  private:
    u8 prev_;
};

} // namespace msim::simd

#endif // MSIM_COMMON_SIMD_HH_
