#include "common/table.hh"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/logging.hh"

namespace msim
{

Table::Table(std::vector<std::string> headers)
{
    rows.push_back(std::move(headers));
}

void
Table::addRow(std::vector<std::string> cells)
{
    if (cells.size() != rows.front().size()) {
        panic("table row has %zu cells, expected %zu", cells.size(),
              rows.front().size());
    }
    rows.push_back(std::move(cells));
}

std::string
Table::num(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
Table::render() const
{
    std::vector<size_t> widths(rows.front().size(), 0);
    for (const auto &row : rows)
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    std::ostringstream out;
    for (size_t r = 0; r < rows.size(); ++r) {
        for (size_t c = 0; c < rows[r].size(); ++c) {
            out << rows[r][c]
                << std::string(widths[c] - rows[r][c].size() + 2, ' ');
        }
        out << '\n';
        if (r == 0) {
            size_t total = 0;
            for (size_t w : widths)
                total += w + 2;
            out << std::string(total, '-') << '\n';
        }
    }
    return out.str();
}

} // namespace msim
