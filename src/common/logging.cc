#include "common/logging.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace msim
{

namespace
{

std::mutex &
sinkMutex()
{
    // Leaked so reports from threads exiting after main() stay safe.
    static std::mutex *mu = new std::mutex;
    return *mu;
}

std::atomic<unsigned long long> droppedLines{0};

/**
 * Format the whole line into one buffer and emit it with a single
 * write under the sink mutex, so concurrent reports from pool workers
 * and audit sinks cannot interleave mid-line. Messages longer than the
 * buffer are truncated (marked "...") and counted as dropped.
 */
void
vreport(const char *tag, const char *fmt, std::va_list args)
{
    char buf[1024];
    int off = std::snprintf(buf, sizeof(buf), "%s: ", tag);
    if (off < 0)
        off = 0;
    bool truncated = false;
    if (static_cast<size_t>(off) < sizeof(buf)) {
        const int n =
            std::vsnprintf(buf + off, sizeof(buf) - off, fmt, args);
        if (n >= 0 && static_cast<size_t>(n) < sizeof(buf) - off) {
            off += n;
        } else {
            truncated = true;
            off = static_cast<int>(sizeof(buf)) - 1;
        }
    } else {
        truncated = true;
        off = static_cast<int>(sizeof(buf)) - 1;
    }
    if (truncated) {
        droppedLines.fetch_add(1, std::memory_order_relaxed);
        std::memcpy(buf + off - 3, "...", 3);
    }
    buf[off] = '\n';

    std::lock_guard<std::mutex> lock(sinkMutex());
    std::fwrite(buf, 1, static_cast<size_t>(off) + 1, stderr);
    std::fflush(stderr);
}

} // namespace

unsigned long long
droppedLogLines()
{
    return droppedLines.load(std::memory_order_relaxed);
}

void
panic(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    vreport("panic", fmt, args);
    va_end(args);
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    vreport("fatal", fmt, args);
    va_end(args);
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    vreport("warn", fmt, args);
    va_end(args);
}

void
inform(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    vreport("info", fmt, args);
    va_end(args);
}

} // namespace msim
