#include "jpeg/traced_xform.hh"

#include "common/bits.hh"
#include "common/logging.hh"
#include "jpeg/dct.hh"
#include "jpeg/zigzag.hh"

namespace msim::jpeg
{

u64
lanesOf16(s16 v)
{
    u64 r = 0;
    for (unsigned l = 0; l < 4; ++l)
        r = setHalfLane(r, l, static_cast<u16>(v));
    return r;
}

Val
visMul3(TraceBuilder &tb, Val x, Val cvec)
{
    // One instruction on MMX-class ISAs, the 3-op emulation on VIS.
    return tb.vmul16(x, cvec);
}

TracedTables::TracedTables(TraceBuilder &tb, const QuantTable &luma,
                           const QuantTable &chroma)
    : lumaT(luma), chromaT(chroma)
{
    zigzag = tb.alloc(64, "tab.zigzag");
    for (unsigned i = 0; i < 64; ++i)
        tb.arena().write(zigzag + i, 1, kZigzag[i]);

    auto upload_q = [&tb](const QuantTable &q, const char *name) {
        const Addr base = tb.alloc(64 * 8, name);
        for (unsigned i = 0; i < 64; ++i) {
            tb.arena().write(base + 8 * i, 4, quantRecip(q[i]));
            tb.arena().write(base + 8 * i + 4, 2, q[i] / 2);
            tb.arena().write(base + 8 * i + 6, 2, q[i]);
        }
        return base;
    };
    qLuma = upload_q(luma, "tab.qluma");
    qChroma = upload_q(chroma, "tab.qchroma");

    scratch_a = tb.alloc(128, "tab.scratchA");
    scratch_b = tb.alloc(128, "tab.scratchB");
}

TracedBitWriter::TracedBitWriter(TraceBuilder &tb, Addr base,
                                 size_t capacity)
    : tb(tb), base_(base), capacity(capacity), accVal(tb.imm(0))
{}

void
TracedBitWriter::put(u32 code, unsigned len)
{
    if (!len)
        return;
    accVal = tb.orOp(tb.shl(accVal, len), tb.imm(code));
    acc = (acc << len) | (code & ((u32{1} << len) - 1));
    nbits += len;
    flushBytes();
}

void
TracedBitWriter::flushBytes()
{
    // One flush-check branch per put (compiled bit-writer idiom).
    const u32 pc = tb.sitePc("bw.flush");
    tb.branch(pc, nbits >= 8, accVal);
    while (nbits >= 8) {
        nbits -= 8;
        const u8 byte = static_cast<u8>(acc >> nbits);
        if (pos >= capacity)
            panic("traced bit writer overflow at %zu bytes", pos);
        Val b = tb.shr(accVal, nbits);
        tb.store(base_ + pos, 1, Val{b.id, byte});
        ++pos;
    }
}

size_t
TracedBitWriter::finish()
{
    if (nbits)
        put((1u << (8 - nbits)) - 1, 8 - nbits);
    return pos;
}

TracedHuff::TracedHuff(TraceBuilder &tb, const HuffTable &table)
    : table_(&table)
{
    const unsigned n = table.numSymbols();
    enc = tb.alloc(4 * n, "huff.enc");
    for (unsigned s = 0; s < n; ++s) {
        tb.arena().write(enc + 4 * s, 2, table.codeOf(s));
        tb.arena().write(enc + 4 * s + 2, 2, table.lenOf(s));
    }
    // Decode tables: we only need addresses for realistic loads; the
    // authoritative decode runs natively.
    mincode = tb.alloc(4 * (kMaxCodeLen + 1), "huff.mincode");
    maxcode = tb.alloc(4 * (kMaxCodeLen + 1), "huff.maxcode");
    valptr = tb.alloc(2 * (kMaxCodeLen + 1), "huff.valptr");
    vals = tb.alloc(2 * n, "huff.vals");
}

void
TracedHuff::emitEncode(TraceBuilder &tb, TracedBitWriter &bw,
                       unsigned sym) const
{
    Val code = tb.load(enc + 4 * sym, 2);
    Val len = tb.load(enc + 4 * sym + 2, 2);
    (void)code;
    (void)len;
    bw.put(table_->codeOf(sym), table_->lenOf(sym));
}

TracedBitReader::TracedBitReader(TraceBuilder &tb,
                                 const std::vector<u8> &bits, Addr base)
    : tb(tb), base(base), reader(bits), accVal(tb.imm(0))
{
    tb.arena().writeBytes(base, bits.data(), bits.size());
}

void
TracedBitReader::consumeBits(unsigned n)
{
    const u32 pc = tb.sitePc("br.bit");
    for (unsigned i = 0; i < n; ++i) {
        if (bits_consumed % 8 == 0) {
            Val byte = tb.load(base + bits_consumed / 8, 1);
            accVal = tb.orOp(tb.shl(accVal, 8), byte);
        }
        accVal = tb.shr(accVal, 1);
        ++bits_consumed;
    }
}

unsigned
TracedBitReader::decodeSym(const TracedHuff &huff)
{
    const u32 walk_pc = tb.sitePc("br.walk");
    unsigned len = 0;
    const unsigned sym = huff.table().decode(reader, len);
    // Canonical walk: per level, accumulate one bit and compare against
    // maxcode[l], branching back while the code is too large.
    for (unsigned l = 1; l <= len; ++l) {
        consumeBits(1);
        Val maxv = tb.load(huff.maxcode + 4 * l, 4);
        Val cmp = tb.cmpLe(accVal, maxv);
        tb.branch(walk_pc, l < len, cmp);
    }
    Val vp = tb.load(huff.valptr + 2 * len, 2);
    Val sv = tb.load(huff.vals + 2 * sym, 2, vp);
    (void)sv;
    return sym;
}

u32
TracedBitReader::getBits(unsigned n)
{
    const u32 v = reader.getBits(n);
    consumeBits(n);
    return v;
}

namespace
{

void
fdctQuantImpl(TraceBuilder &tb, Variant variant,
              const TracedTables &tables, bool chroma, Addr src,
              unsigned stride, Addr dst, bool residual_input)
{
    const prog::ScopedSite site(tb, "jpg.dct");
    const bool vis = variant != Variant::Scalar;
    const DctMatrixT &M = dctMatrix();
    const QuantTable &q = tables.table(chroma);
    const Addr sa = tables.scratchA();
    const Addr sb = tables.scratchB();
    const Val k128 = tb.imm(128);

    // --- Load (+ level shift) + row pass (scalar in both variants) ---
    Val px[64];
    for (unsigned y = 0; y < 8; ++y)
        for (unsigned x = 0; x < 8; ++x) {
            if (residual_input) {
                px[y * 8 + x] = tb.load(
                    src + 2 * (static_cast<Addr>(y) * stride + x), 2,
                    Val{}, true);
            } else {
                Val v = tb.load(src + static_cast<Addr>(y) * stride + x,
                                1);
                px[y * 8 + x] = tb.sub(v, k128);
            }
        }

    for (unsigned r = 0; r < 8; ++r) {
        for (unsigned k = 0; k < 8; ++k) {
            Val acc{};
            for (unsigned n = 0; n < 8; ++n) {
                Val p = tb.mul(px[r * 8 + n],
                               tb.imm(static_cast<u64>(
                                   static_cast<s64>(M[k][n]))));
                acc = n == 0 ? p : tb.add(acc, p);
            }
            Val t = tb.sra(tb.addi(acc, 1 << (kDctBits - 1)),
                           kDctBits);
            tb.store(sa + 2 * (r * 8 + k), 2, t);
        }
    }

    // --- Column pass --------------------------------------------------
    if (!vis) {
        for (unsigned c = 0; c < 8; ++c) {
            Val col[8];
            for (unsigned n = 0; n < 8; ++n)
                col[n] = tb.load(sa + 2 * (n * 8 + c), 2, Val{}, true);
            for (unsigned k = 0; k < 8; ++k) {
                Val acc{};
                for (unsigned n = 0; n < 8; ++n) {
                    Val p = tb.mul(col[n],
                                   tb.imm(static_cast<u64>(
                                       static_cast<s64>(M[k][n]))));
                    acc = n == 0 ? p : tb.add(acc, p);
                }
                Val f = tb.sra(tb.addi(acc, 1 << (kDctBits - 1)),
                               kDctBits);
                tb.store(sb + 2 * (k * 8 + c), 2, f);
            }
        }
    } else {
        for (unsigned g = 0; g < 2; ++g) {
            Val in[8];
            for (unsigned n = 0; n < 8; ++n)
                in[n] = tb.vload(sa + 2 * (n * 8) + 8 * g);
            for (unsigned k = 0; k < 8; ++k) {
                Val acc{};
                for (unsigned n = 0; n < 8; ++n) {
                    // 8-bit basis constants: c8 = M >> 3 so that the
                    // (x*c)>>8 primitive yields x*cos directly.
                    Val cvec = tb.imm(lanesOf16(
                        static_cast<s16>(M[k][n] >> 3)));
                    Val p = visMul3(tb, in[n], cvec);
                    acc = n == 0 ? p : tb.vfpadd16(acc, p);
                }
                tb.vstore(sb + 2 * (k * 8) + 8 * g, acc);
            }
        }
    }

    // --- Quantize (scalar in both variants; paper: VIS-inapplicable) --
    Val qv[64];
    const u32 sign_pc = tb.sitePc("quant.sign");
    const u32 sign2_pc = tb.sitePc("quant.sign2");
    for (unsigned i = 0; i < 64; ++i) {
        Val c = tb.load(sb + 2 * i, 2, Val{}, true);
        Val recip = tb.load(tables.quantEntry(chroma, i), 4);
        Val half = tb.load(tables.quantEntry(chroma, i) + 4, 2);
        const bool neg = c.s() < 0;
        Val is_neg = tb.cmpLt(c, tb.imm(0));
        tb.branch(sign_pc, neg, is_neg);
        Val mag = neg ? tb.sub(tb.imm(0), c) : c;
        Val biased = tb.add(mag, half);
        Val prod = tb.mul(biased, recip);
        Val v = tb.shr(prod, kQuantRecipBits);
        if (neg) {
            tb.branch(sign2_pc, true, is_neg);
            v = tb.sub(tb.imm(0), v);
        }
        // Keep the value consistent with the native quantOne contract.
        const s16 want = quantOne(static_cast<s32>(c.s()), q[i]);
        qv[i] = Val{v.id, static_cast<u64>(static_cast<s64>(want))};
    }

    // --- Zig-zag gather + store (scalar; scatter-gather, no VIS) ------
    for (unsigned i = 0; i < 64; ++i) {
        Val zz = tb.load(tables.zigzagAddr() + i, 1);
        tb.store(dst + 2 * i, 2, qv[kZigzag[i]], zz);
    }
}

} // namespace

void
emitFdctQuantBlock(TraceBuilder &tb, Variant variant,
                   const TracedTables &tables, bool chroma, Addr src,
                   unsigned stride, Addr dst)
{
    fdctQuantImpl(tb, variant, tables, chroma, src, stride, dst, false);
}

void
emitFdctQuantResidual(TraceBuilder &tb, Variant variant,
                      const TracedTables &tables, bool chroma, Addr src,
                      unsigned stride, Addr dst)
{
    fdctQuantImpl(tb, variant, tables, chroma, src, stride, dst, true);
}

void
emitIdctBlock(TraceBuilder &tb, Variant variant,
              const TracedTables &tables, bool chroma, Addr src, Addr dst,
              unsigned stride, bool residual)
{
    const prog::ScopedSite site(tb, "jpg.idct");
    const bool vis = variant != Variant::Scalar;
    const DctMatrixT &M = dctMatrix();
    const Addr sa = tables.scratchA();
    const Addr sb = tables.scratchB();

    // --- Zig-zag ungather + dequant (scalar in both variants) ---------
    Val nat[64];
    for (unsigned i = 0; i < 64; ++i) {
        Val zz = tb.load(tables.zigzagAddr() + i, 1);
        Val c = tb.load(src + 2 * i, 2, zz, true);
        Val qq = tb.load(tables.quantEntry(chroma, kZigzag[i]) + 6, 2);
        nat[kZigzag[i]] = tb.mul(c, qq);
    }
    for (unsigned i = 0; i < 64; ++i)
        tb.store(sa + 2 * i, 2, nat[i]);

    // --- Inverse column pass -------------------------------------------
    if (!vis) {
        for (unsigned c = 0; c < 8; ++c) {
            Val col[8];
            for (unsigned k = 0; k < 8; ++k)
                col[k] = tb.load(sa + 2 * (k * 8 + c), 2, Val{}, true);
            for (unsigned n = 0; n < 8; ++n) {
                Val acc{};
                for (unsigned k = 0; k < 8; ++k) {
                    Val p = tb.mul(col[k],
                                   tb.imm(static_cast<u64>(
                                       static_cast<s64>(M[k][n]))));
                    acc = k == 0 ? p : tb.add(acc, p);
                }
                Val f = tb.sra(tb.addi(acc, 1 << (kDctBits - 1)),
                               kDctBits);
                tb.store(sb + 2 * (n * 8 + c), 2, f);
            }
        }
    } else {
        for (unsigned g = 0; g < 2; ++g) {
            Val in[8];
            for (unsigned k = 0; k < 8; ++k)
                in[k] = tb.vload(sa + 2 * (k * 8) + 8 * g);
            for (unsigned n = 0; n < 8; ++n) {
                Val acc{};
                for (unsigned k = 0; k < 8; ++k) {
                    Val cvec = tb.imm(lanesOf16(
                        static_cast<s16>(M[k][n] >> 3)));
                    Val p = visMul3(tb, in[k], cvec);
                    acc = k == 0 ? p : tb.vfpadd16(acc, p);
                }
                tb.vstore(sb + 2 * (n * 8) + 8 * g, acc);
            }
        }
    }

    // --- Inverse row pass (scalar) + output ----------------------------
    const u32 clamp_lo_pc = tb.sitePc("idct.lo");
    const u32 clamp_hi_pc = tb.sitePc("idct.hi");
    for (unsigned r = 0; r < 8; ++r) {
        Val row[8];
        for (unsigned k = 0; k < 8; ++k)
            row[k] = tb.load(sb + 2 * (r * 8 + k), 2, Val{}, true);
        for (unsigned n = 0; n < 8; ++n) {
            Val acc{};
            for (unsigned k = 0; k < 8; ++k) {
                Val p = tb.mul(row[k],
                               tb.imm(static_cast<u64>(
                                   static_cast<s64>(M[k][n]))));
                acc = k == 0 ? p : tb.add(acc, p);
            }
            Val v = tb.sra(tb.addi(acc, 1 << (kDctBits - 1)),
                           kDctBits);
            if (residual) {
                tb.store(dst + 2 * (static_cast<Addr>(r) * stride + n),
                         2, v);
                continue;
            }
            if (!vis) {
                // Scalar saturation: two data-dependent branches.
                Val sum = tb.addi(v, 128);
                Val res = sum;
                const s64 s = sum.s();
                Val c_low = tb.cmpLt(sum, tb.imm(0));
                tb.branch(clamp_lo_pc, s < 0, c_low);
                if (s < 0) {
                    res = tb.imm(0);
                } else {
                    Val c_high = tb.cmpLt(tb.imm(255), sum);
                    tb.branch(clamp_hi_pc, s > 255, c_high);
                    if (s > 255)
                        res = tb.imm(255);
                }
                tb.store(dst + static_cast<Addr>(r) * stride + n, 1, res);
            } else {
                // Stage and pack 4 at a time below.
                tb.store(sa + 2 * (r * 8 + n), 2, v);
            }
        }
        if (vis && !residual) {
            // Pack row r: +128 then fpack16 saturation, no branches.
            tb.setGsrScale(7);
            for (unsigned g = 0; g < 2; ++g) {
                Val v4 = tb.vload(sa + 2 * (r * 8) + 8 * g);
                Val biased = tb.vfpadd16(v4, tb.imm(lanesOf16(128)));
                Val packed = tb.vfpack16(biased);
                tb.store(dst + static_cast<Addr>(r) * stride + 4 * g, 4,
                         packed);
            }
        }
    }
}


// --------------------------------------------------------------------
// Entropy emission (shared by JPEG and MPEG traced codecs)
// --------------------------------------------------------------------

/** Emit the encode ops for one block band; returns via native logic. */
void
emitEncodeBlock(TraceBuilder &tb, TracedBitWriter &bw,
                const TracedHuff &dc_h, const TracedHuff &ac_h,
                Addr block_addr, const s16 *zz, int &dc_pred,
                unsigned ss_start, unsigned ss_end)
{
    const prog::ScopedSite site(tb, "jpg.vlc");
    const u32 zero_pc = tb.sitePc("jent.zero");
    const u32 cat_pc = tb.sitePc("jent.cat");

    std::vector<Sym> syms;
    int pred = dc_pred;
    blockToSymbols(zz, pred, ss_start, ss_end, syms);

    // Coefficient scan: one load + zero-test branch per position.
    for (unsigned i = ss_start; i <= ss_end; ++i) {
        Val c = tb.load(block_addr + 2 * i, 2, Val{}, true);
        Val z = tb.cmpEq(c, tb.imm(0));
        tb.branch(zero_pc, zz[i] == 0 && i > ss_start, z);
    }

    bool first = ss_start == 0;
    for (const Sym &s : syms) {
        // Category computation: shift/test loop (cat iterations).
        for (unsigned k = 0; k < (s.nbits ? s.nbits : 1u); ++k) {
            Val t = tb.shr(tb.imm(1), 1);
            tb.branch(cat_pc, k + 1 < s.nbits, t);
        }
        if (first) {
            dc_h.emitEncode(tb, bw, s.sym);
            first = false;
        } else {
            ac_h.emitEncode(tb, bw, s.sym);
        }
        if (s.nbits)
            bw.put(s.bits, s.nbits);
    }
    dc_pred = pred;
}

/** Emit the statistics-pass ops for one block band (progressive). */
void
emitStatsBlock(TraceBuilder &tb, Addr block_addr, const s16 *zz,
               int &dc_pred, unsigned ss_start, unsigned ss_end,
               Addr freq_table)
{
    const prog::ScopedSite site(tb, "jpg.stats");
    const u32 zero_pc = tb.sitePc("jent.stat");

    std::vector<Sym> syms;
    blockToSymbols(zz, dc_pred, ss_start, ss_end, syms);

    for (unsigned i = ss_start; i <= ss_end; ++i) {
        Val c = tb.load(block_addr + 2 * i, 2, Val{}, true);
        Val z = tb.cmpEq(c, tb.imm(0));
        tb.branch(zero_pc, zz[i] == 0 && i > ss_start, z);
    }
    for (const Sym &s : syms) {
        // Histogram increment: load, add, store.
        Val f = tb.load(freq_table + 4 * s.sym, 4);
        tb.store(freq_table + 4 * s.sym, 4, tb.addi(f, 1));
    }
}

/** Emit the decode ops for one block band; fills @p dst (zig-zag s16). */
void
emitDecodeBlock(TraceBuilder &tb, TracedBitReader &br,
                const TracedHuff &dc_h, const TracedHuff &ac_h,
                int &dc_pred, unsigned ss_start, unsigned ss_end,
                Addr dst)
{
    const prog::ScopedSite site(tb, "jpg.vld");
    const u32 sign_pc = tb.sitePc("jdec.sign");

    unsigned i = ss_start;
    if (ss_start == 0) {
        const unsigned cat = br.decodeSym(dc_h);
        const u32 bits = br.getBits(cat);
        const int diff = magnitudeExtend(bits, cat);
        dc_pred += diff;
        Val v = tb.addi(tb.imm(static_cast<u64>(static_cast<s64>(diff))),
                        0);
        tb.branch(sign_pc, diff < 0, v);
        tb.store(dst, 2,
                 Val{v.id, static_cast<u64>(static_cast<s64>(dc_pred))});
        i = 1;
    }
    while (i <= ss_end) {
        const unsigned sym = br.decodeSym(ac_h);
        if (sym == 0x00)
            break;
        if (sym == 0xf0) {
            i += 16;
            continue;
        }
        const unsigned run = sym >> 4;
        const unsigned cat = sym & 0xf;
        i += run;
        const u32 bits = br.getBits(cat);
        const int v = magnitudeExtend(bits, cat);
        Val vv = tb.addi(tb.imm(bits), 0);
        tb.branch(sign_pc, v < 0, vv);
        tb.store(dst + 2 * i, 2,
                 Val{vv.id, static_cast<u64>(static_cast<s64>(v))});
        ++i;
    }
}

/** Zero a 64-coefficient block buffer. */
void
emitZeroBlock(TraceBuilder &tb, Variant variant, Addr dst)
{
    const prog::ScopedSite site(tb, "jpg.zero");
    if (variant == Variant::Scalar) {
        for (unsigned i = 0; i < 16; ++i)
            tb.store(dst + 8 * i, 8, tb.imm(0));
    } else {
        for (unsigned i = 0; i < 16; ++i)
            tb.vstore(dst + 8 * i, tb.imm(0));
    }
}


} // namespace msim::jpeg
