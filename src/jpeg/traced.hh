/**
 * @file
 * The four JPEG benchmarks (cjpeg, djpeg, cjpeg-np, djpeg-np) emitted
 * through the trace builder.
 *
 * Progressive encoding performs all block transforms into a
 * coefficient buffer and then runs a statistics pass plus an encode
 * pass per scan over it (the multi-pass traversal responsible for the
 * paper's cache-size sensitivity); the non-progressive codecs run a
 * blocked pipeline that never leaves an 8x8 working set (which is why
 * the paper finds them insensitive to cache size).
 */

#ifndef MSIM_JPEG_TRACED_HH_
#define MSIM_JPEG_TRACED_HH_

#include "prog/trace_builder.hh"
#include "prog/variant.hh"

namespace msim::jpeg
{

/** Default geometry (paper: 1024x640, scaled for simulation time). */
constexpr unsigned kJpegW = 320;
constexpr unsigned kJpegH = 200;

/**
 * JPEG encoding benchmark (cjpeg / cjpeg-np). Verifies by natively
 * decoding the produced stream and checking PSNR against the source.
 */
void runCjpeg(prog::TraceBuilder &tb, prog::Variant variant,
              bool progressive, unsigned width = kJpegW,
              unsigned height = kJpegH);

/**
 * JPEG decoding benchmark (djpeg / djpeg-np). The input stream is
 * produced by the native encoder; output is verified against the
 * native decoder (bit-exact for the scalar variant).
 */
void runDjpeg(prog::TraceBuilder &tb, prog::Variant variant,
              bool progressive, unsigned width = kJpegW,
              unsigned height = kJpegH);

} // namespace msim::jpeg

#endif // MSIM_JPEG_TRACED_HH_
