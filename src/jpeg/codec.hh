/**
 * @file
 * Native JPEG-style codec: baseline (single scan, fixed tables, blocked
 * pipeline) and progressive (spectral-selection scans with per-scan
 * optimized Huffman tables, multi-pass over the coefficient buffer).
 *
 * This is the reference implementation: the traced benchmarks
 * (jpeg/traced.cc) share every table and arithmetic helper with it, and
 * their outputs are verified against it.
 */

#ifndef MSIM_JPEG_CODEC_HH_
#define MSIM_JPEG_CODEC_HH_

#include <vector>

#include "img/image.hh"
#include "jpeg/color.hh"
#include "jpeg/huffman.hh"
#include "jpeg/quant.hh"

namespace msim::jpeg
{

/** Quantized coefficients of one plane, 64 s16 per block, zig-zag order. */
struct CoeffPlane
{
    unsigned wBlocks = 0;
    unsigned hBlocks = 0;
    std::vector<s16> data;

    s16 *block(unsigned bx, unsigned by)
    {
        return &data[(size_t{by} * wBlocks + bx) * 64];
    }

    const s16 *block(unsigned bx, unsigned by) const
    {
        return &data[(size_t{by} * wBlocks + bx) * 64];
    }
};

/** One entropy symbol: Huffman symbol plus raw magnitude bits. */
struct Sym
{
    u8 sym = 0;
    u8 nbits = 0;
    u32 bits = 0;
};

/** One encoded scan. */
struct Scan
{
    unsigned plane = 0;   ///< 0=Y, 1=Cb, 2=Cr; kAllPlanes for a DC scan
    unsigned ssStart = 0; ///< first zig-zag index coded
    unsigned ssEnd = 63;  ///< last zig-zag index coded
    HuffTable dc;         ///< DC category table (if the scan codes DC)
    HuffTable ac;         ///< AC run/size table (if the scan codes AC)
    std::vector<u8> bits; ///< entropy-coded payload
};

constexpr unsigned kAllPlanes = 3;

/** A complete in-memory encoded image. */
struct EncodedJpeg
{
    unsigned width = 0;
    unsigned height = 0;
    bool progressive = false;
    QuantTable qLuma{};
    QuantTable qChroma{};
    std::vector<Scan> scans;
};

/** Fixed (baseline) tables, built once from a synthetic profile. */
const HuffTable &fixedDcTable();
const HuffTable &fixedAcTable();

/** Forward-transform one padded plane: DCT + quant + zig-zag per block. */
CoeffPlane transformPlane(const Plane &padded, const QuantTable &q);

/** Inverse: dequant + IDCT per block back into a padded plane. */
Plane reconstructPlane(const CoeffPlane &coeffs, const QuantTable &q);

/**
 * Entropy symbols of one block's [ss_start, ss_end] band.
 * @param dc_pred  DC predictor, updated in place (used when ss_start==0).
 */
void blockToSymbols(const s16 *zz, int &dc_pred, unsigned ss_start,
                    unsigned ss_end, std::vector<Sym> &out);

/**
 * Decode one block band from the reader; inverse of blockToSymbols.
 */
void symbolsToBlock(BitReader &br, const HuffTable &dc,
                    const HuffTable &ac, int &dc_pred, unsigned ss_start,
                    unsigned ss_end, s16 *zz);

/** Full native encode. */
EncodedJpeg encodeJpeg(const img::Image &rgb, bool progressive,
                       int quality = 75);

/** Full native decode. */
img::Image decodeJpeg(const EncodedJpeg &enc);

/** The scan structure used for progressive encoding of a plane count. */
std::vector<std::pair<unsigned, std::pair<unsigned, unsigned>>>
progressiveScanPlan();

} // namespace msim::jpeg

#endif // MSIM_JPEG_CODEC_HH_
