/**
 * @file
 * Quantization tables and the reciprocal-multiply quantizer shared by
 * the native reference codec and the traced benchmark code (identical
 * arithmetic on both sides keeps them bit-consistent).
 */

#ifndef MSIM_JPEG_QUANT_HH_
#define MSIM_JPEG_QUANT_HH_

#include <array>

#include "common/types.hh"

namespace msim::jpeg
{

/** One 64-entry table in row-major order. */
using QuantTable = std::array<u16, 64>;

/** Fraction bits of the quantizer reciprocals. */
constexpr int kQuantRecipBits = 19;

/** Annex-K style luminance base table. */
const QuantTable &lumaBaseTable();

/** Annex-K style chrominance base table. */
const QuantTable &chromaBaseTable();

/** Scale a base table by JPEG quality (1..100, 50 = base). */
QuantTable scaleTable(const QuantTable &base, int quality);

/** Reciprocal for quantization: floor(2^kQuantRecipBits / q). */
constexpr u32
quantRecip(u16 q)
{
    return static_cast<u32>((u64{1} << kQuantRecipBits) / q);
}

/**
 * Quantize one coefficient: sign(c) * ((|c| + q/2) * recip) >> bits.
 * This reciprocal form (not exact division) is the shared contract
 * between the reference codec and the traced code.
 */
constexpr s16
quantOne(s32 c, u16 q)
{
    const u32 recip = quantRecip(q);
    const u32 mag = static_cast<u32>(c < 0 ? -c : c) + q / 2;
    const s32 v = static_cast<s32>(
        (static_cast<u64>(mag) * recip) >> kQuantRecipBits);
    return static_cast<s16>(c < 0 ? -v : v);
}

/** Dequantize one coefficient. */
constexpr s32
dequantOne(s16 c, u16 q)
{
    return static_cast<s32>(c) * q;
}

} // namespace msim::jpeg

#endif // MSIM_JPEG_QUANT_HH_
